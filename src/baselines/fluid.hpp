// Flow-level fluid estimator (§2.2's "control-theoretic / fluid model"
// class of continuous simulators). Each link is an M/M/1 station fed by the
// traffic matrix; a path's steady-state mean delay is the sum of per-link
// sojourns plus deterministic serialization and propagation:
//
//   delay(path) = sum_l [ 1/(mu_l - lambda_l) + prop_l ]
//
// By construction it yields only steady-state *means* — no distribution, no
// percentiles — which is exactly the limitation the paper holds against
// this simulator class ("they cannot produce useful statistics such as
// distribution of latency"). It needs no training and is instantaneous.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "topo/graph.hpp"
#include "topo/routing.hpp"
#include "traffic/traffic_gen.hpp"

namespace dqn::baselines {

class fluid_estimator {
 public:
  // Per-flow mean end-to-end delay estimates (seconds). Links at or above
  // capacity get +inf. `mean_packet_size` in bytes.
  [[nodiscard]] static std::map<std::uint32_t, double> predict_mean_delays(
      const topo::topology& topo, const topo::routing& routes,
      const std::vector<traffic::flow_spec>& flows,
      const std::vector<double>& flow_rates_pps, double mean_packet_size);
};

}  // namespace dqn::baselines
