// Flow-level fluid estimator (§2.2's "control-theoretic / fluid model"
// class of continuous simulators). Each link is an M/M/1 station fed by the
// traffic matrix; a path's steady-state mean delay is the sum of per-link
// sojourns plus deterministic serialization and propagation:
//
//   delay(path) = sum_l [ 1/(mu_l - lambda_l) + prop_l ]
//
// By construction it yields only steady-state *means* — no distribution, no
// percentiles — which is exactly the limitation the paper holds against
// this simulator class ("they cannot produce useful statistics such as
// distribution of latency"). It needs no training and is instantaneous.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "des/run_api.hpp"
#include "topo/graph.hpp"
#include "topo/routing.hpp"
#include "traffic/traffic_gen.hpp"

namespace dqn::baselines {

class fluid_estimator : public des::estimator {
 public:
  fluid_estimator() = default;

  // Scenario-bound form for the unified run API: the traffic matrix
  // (flows + rates) is the fluid model's input interface, so it is part of
  // the estimator state, not of the per-run request. `topo`/`routes` must
  // outlive the estimator.
  fluid_estimator(const topo::topology& topo, const topo::routing& routes,
                  std::vector<traffic::flow_spec> flows,
                  std::vector<double> flow_rates_pps, double mean_packet_size);

  // Per-flow mean end-to-end delay estimates (seconds). Links at or above
  // capacity get +inf. `mean_packet_size` in bytes.
  [[nodiscard]] static std::map<std::uint32_t, double> predict_mean_delays(
      const topo::topology& topo, const topo::routing& routes,
      const std::vector<traffic::flow_spec>& flows,
      const std::vector<double>& flow_rates_pps, double mean_packet_size);

  // Unified estimator contract: replay the request's streams with each
  // packet delivered at send + the flow's steady-state mean delay. Requires
  // the scenario-bound constructor; throws std::logic_error otherwise.
  [[nodiscard]] des::run_result run(const des::run_request& request) override;
  [[nodiscard]] const char* estimator_name() const noexcept override {
    return "fluid";
  }

 private:
  const topo::topology* topo_ = nullptr;
  const topo::routing* routes_ = nullptr;
  std::vector<traffic::flow_spec> flows_;
  std::vector<double> flow_rates_pps_;
  double mean_packet_size_ = 0;
};

}  // namespace dqn::baselines
