#include "baselines/mimicnet.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "des/run_recorder.hpp"
#include "nn/adam.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/sink.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace dqn::baselines {

namespace {

constexpr double rate_smoothing = 0.95;

// Fat-tree layer of a device, derived from the builder's naming scheme.
int layer_of(const topo::topology& topo, topo::node_id node) {
  const auto& name = topo.at(node).name;
  if (name.starts_with("tor")) return 0;
  if (name.starts_with("agg")) return 1;
  if (name.starts_with("core")) return 2;
  return -1;  // host or non-fat-tree device
}

// Per-flow packet-rate EMA keyed by flow, updated in send-time order.
class flow_rate_tracker {
 public:
  double update(std::uint32_t flow, double send_time) {
    auto& entry = flows_[flow];
    if (entry.has_prev) {
      const double iat = std::max(send_time - entry.prev_time, 1e-9);
      entry.ema = rate_smoothing * entry.ema + (1 - rate_smoothing) * (1.0 / iat);
    }
    entry.prev_time = send_time;
    entry.has_prev = true;
    return entry.ema;
  }

 private:
  struct state {
    double prev_time = 0;
    double ema = 0;
    bool has_prev = false;
  };
  std::unordered_map<std::uint32_t, state> flows_;
};

}  // namespace

void mimicnet_estimator::train_segment(
    segment_model& model, const std::vector<std::array<double, feature_width_>>& x,
    const std::vector<double>& y, std::size_t epochs, std::uint64_t seed) {
  if (x.size() < 8)
    throw std::invalid_argument{"mimicnet: too few segment training examples"};
  util::rng rng{seed};
  model.net = nn::mlp{{feature_width_, 24, 12, 1}, nn::activation::tanh, rng};
  std::vector<double> flat;
  flat.reserve(x.size() * feature_width_);
  for (const auto& row : x) flat.insert(flat.end(), row.begin(), row.end());
  model.features.fit(flat, feature_width_);
  model.target.fit(y);

  nn::param_list params;
  model.net.collect_params(params);
  nn::adam optimizer{params, {}};
  const std::size_t n = x.size();
  nn::matrix xin{n, feature_width_};
  nn::matrix yin{n, 1};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < feature_width_; ++f)
      xin(i, f) = model.features.transform_one(f, x[i][f]);
    yin(i, 0) = model.target.transform(y[i]);
  }
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    const nn::matrix pred = model.net.forward(xin);
    nn::matrix grad{n, 1};
    for (std::size_t i = 0; i < n; ++i)
      grad(i, 0) = 2.0 * (pred(i, 0) - yin(i, 0)) / static_cast<double>(n);
    (void)model.net.backward(grad);
    optimizer.step();
  }
}

double mimicnet_estimator::predict_segment(const segment_model& model,
                                           std::array<double, feature_width_> x) const {
  nn::matrix xin{1, feature_width_};
  for (std::size_t f = 0; f < feature_width_; ++f)
    xin(0, f) = model.features.transform_one(f, x[f]);
  const nn::matrix y = model.net.forward_const(xin);
  return std::max(0.0, model.target.inverse(y(0, 0)));
}

void mimicnet_estimator::train(const topo::topology& topo,
                               const des::run_result& reference, std::size_t epochs,
                               std::uint64_t seed) {
  if (reference.hops.empty())
    throw std::invalid_argument{"mimicnet::train: reference run has no hop records"};

  // Group the reference hops per packet, ordered along the path.
  std::unordered_map<std::uint64_t, std::vector<const des::hop_record*>> by_pid;
  for (const auto& hop : reference.hops) by_pid[hop.pid].push_back(&hop);
  // dqn-order-insensitive: each entry's hop list is sorted independently;
  // no cross-entry state is read or written, so visit order cannot matter.
  for (auto& [pid, hops] : by_pid)
    std::sort(hops.begin(), hops.end(),
              [](const des::hop_record* a, const des::hop_record* b) {
                return a->arrival < b->arrival;
              });

  // Per-flow send-rate EMA in send-time order.
  std::vector<const des::delivery_record*> deliveries;
  deliveries.reserve(reference.deliveries.size());
  for (const auto& d : reference.deliveries) deliveries.push_back(&d);
  std::sort(deliveries.begin(), deliveries.end(),
            [](const des::delivery_record* a, const des::delivery_record* b) {
              return a->send_time < b->send_time;
            });

  flow_rate_tracker tracker;
  std::vector<std::array<double, feature_width_>> up_x, core_x, down_x;
  std::vector<double> up_y, core_y, down_y;
  for (const auto* d : deliveries) {
    const double rate_ema = tracker.update(d->flow_id, d->send_time);
    const auto it = by_pid.find(d->pid);
    if (it == by_pid.end() || it->second.empty()) continue;
    const auto& hops = it->second;
    double up = 0, core = 0, down = 0;
    std::size_t up_hops = 0, core_hops = 0, down_hops = 0;
    // Before the apex layer: up; core layer: core; after: down.
    int apex = 0;
    for (const auto* h : hops) apex = std::max(apex, layer_of(topo, h->device));
    bool past_apex = false;
    for (const auto* h : hops) {
      const int layer = layer_of(topo, h->device);
      const double sojourn = h->departure - h->arrival;
      if (layer == 2) {
        core += sojourn;
        ++core_hops;
        past_apex = true;
      } else if (!past_apex && layer < apex) {
        up += sojourn;
        ++up_hops;
      } else if (!past_apex && layer == apex) {
        up += sojourn;
        ++up_hops;
        past_apex = true;
      } else {
        down += sojourn;
        ++down_hops;
      }
    }
    const double len = static_cast<double>(hops.front()->size_bytes);
    if (up_hops > 0) {
      up_x.push_back({len, rate_ema, static_cast<double>(up_hops)});
      up_y.push_back(up);
    }
    if (core_hops > 0) {
      core_x.push_back({len, rate_ema, static_cast<double>(core_hops)});
      core_y.push_back(core);
    }
    if (down_hops > 0) {
      down_x.push_back({len, rate_ema, static_cast<double>(down_hops)});
      down_y.push_back(down);
    }
  }

  train_segment(up_, up_x, up_y, epochs, util::derive_seed(seed, 1));
  if (!core_x.empty())
    train_segment(core_, core_x, core_y, epochs, util::derive_seed(seed, 2));
  if (!down_x.empty())
    train_segment(down_, down_x, down_y, epochs, util::derive_seed(seed, 3));
  trained_ = true;
}

des::run_result mimicnet_estimator::predict(
    const topo::topology& topo, const topo::routing& routes,
    const std::vector<traffic::packet_stream>& host_streams, double horizon) const {
  if (!trained_) throw std::logic_error{"mimicnet::predict: not trained"};
  const auto hosts = topo.hosts();
  if (host_streams.size() != hosts.size())
    throw std::invalid_argument{"mimicnet::predict: one stream per host"};

  // Flatten to send-time order for the EMA tracker.
  struct send_item {
    traffic::packet pkt;
    double time;
  };
  std::vector<send_item> sends;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (const auto& ev : host_streams[i]) {
      if (ev.time > horizon) break;
      traffic::packet pkt = ev.pkt;
      pkt.src_host = hosts[i];
      pkt.dst_host = hosts.at(static_cast<std::size_t>(pkt.dst_host));
      sends.push_back({pkt, ev.time});
    }
  }
  std::sort(sends.begin(), sends.end(),
            [](const send_item& a, const send_item& b) { return a.time < b.time; });

  flow_rate_tracker tracker;
  des::run_result result;
  result.deliveries.reserve(sends.size());
  for (const auto& item : sends) {
    const double rate_ema = tracker.update(item.pkt.flow_id, item.time);
    const auto path =
        routes.flow_path(item.pkt.src_host, item.pkt.dst_host, item.pkt.flow_id);
    const double len = static_cast<double>(item.pkt.size_bytes);

    // Exact link delays along the path (Eq. 5 per link).
    double link_delay = 0;
    std::size_t up_hops = 0, core_hops = 0, down_hops = 0;
    int apex = 0;
    for (const auto node : path) apex = std::max(apex, layer_of(topo, node));
    bool past_apex = false;
    for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
      const std::size_t port =
          routes.egress_port(path[hop], item.pkt.dst_host, item.pkt.flow_id);
      const auto& link = topo.link_at(topo.peer_of(path[hop], port).link_index);
      link_delay += len * 8.0 / link.bandwidth_bps + link.propagation_delay;
      const int layer = layer_of(topo, path[hop]);
      if (layer < 0) continue;  // host NIC hop
      if (layer == 2) {
        ++core_hops;
        past_apex = true;
      } else if (!past_apex) {
        ++up_hops;
        if (layer == apex) past_apex = true;
      } else {
        ++down_hops;
      }
    }

    double queueing = 0;
    if (up_hops > 0)
      queueing += predict_segment(up_, {len, rate_ema, static_cast<double>(up_hops)});
    if (core_hops > 0)
      queueing +=
          predict_segment(core_, {len, rate_ema, static_cast<double>(core_hops)});
    if (down_hops > 0)
      queueing +=
          predict_segment(down_, {len, rate_ema, static_cast<double>(down_hops)});

    des::delivery_record d;
    d.pid = item.pkt.pid;
    d.flow_id = item.pkt.flow_id;
    d.src = item.pkt.src_host;
    d.dst = item.pkt.dst_host;
    d.send_time = item.time;
    d.delivery_time = item.time + link_delay + queueing;
    result.deliveries.push_back(d);
  }
  std::sort(result.deliveries.begin(), result.deliveries.end(),
            [](const des::delivery_record& a, const des::delivery_record& b) {
              return a.delivery_time < b.delivery_time;
            });
  return result;
}

void mimicnet_estimator::set_target(const topo::topology& topo,
                                    const topo::routing& routes) {
  target_topo_ = &topo;
  target_routes_ = &routes;
}

des::run_result mimicnet_estimator::run(const des::run_request& request) {
  if (!trained_) throw std::logic_error{"mimicnet::run: not trained"};
  if (target_topo_ == nullptr)
    throw std::logic_error{
        "mimicnet::run: no target network bound; call set_target first"};
  if (request.host_streams == nullptr)
    throw std::invalid_argument{"mimicnet::run: host_streams is null"};
  obs::scoped_timer timer{request.sink, "mimicnet", "run"};
  des::run_recorder recorder{request.sink, estimator_name(), "-"};
  util::stopwatch watch;
  auto result = predict(*target_topo_, *target_routes_, *request.host_streams,
                        request.horizon);
  result.wall_seconds = watch.elapsed_seconds();
  recorder.complete(result);
  if (request.sink != nullptr)
    request.sink->count("mimicnet.deliveries",
                        static_cast<double>(result.deliveries.size()));
  return result;
}

}  // namespace dqn::baselines
