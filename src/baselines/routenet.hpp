// RouteNet-style end-to-end performance estimator (the paper's main
// comparison target, §6.1).
//
// RouteNet's defining property — and the source of its failure mode the
// paper demonstrates — is its *input interface*: it embeds the traffic
// matrix (per-flow average rates), the topology, and the routing, and reads
// out per-path KPIs. It never sees inter-arrival processes, so two traffic
// models with the same matrix are indistinguishable to it (Figure 8, Table
// 4). We reproduce that interface faithfully: per-path features are derived
// from the traffic matrix and the link-level load aggregation the GNN's
// message passing would compute (sum/max of traffic crossing each traversed
// link); the readout is an MLP trained on DES ground truth. The GNN
// message-passing layers are replaced by these closed-form aggregations —
// a documented CPU-scale substitution (DESIGN.md §2) that preserves both
// the information available to the model and its generalisation behaviour.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "core/metrics.hpp"
#include "des/records.hpp"
#include "des/run_api.hpp"
#include "nn/mlp.hpp"
#include "nn/scaler.hpp"
#include "topo/graph.hpp"
#include "topo/routing.hpp"
#include "traffic/traffic_gen.hpp"

namespace dqn::baselines {

struct path_kpis {
  double avg_rtt = 0;
  double p99_rtt = 0;
  double avg_jitter = 0;
  double p99_jitter = 0;
};

class routenet_estimator : public des::estimator {
 public:
  routenet_estimator();

  // One training example per (flow, run): traffic-matrix-derived features
  // against ground-truth KPIs from a DES run.
  struct training_example {
    std::vector<double> features;
    path_kpis kpis;
  };

  // Derive per-flow features from the embedding inputs RouteNet uses.
  [[nodiscard]] static std::vector<training_example> make_examples(
      const topo::topology& topo, const topo::routing& routes,
      const std::vector<traffic::flow_spec>& flows,
      const std::vector<double>& flow_rates_pps, double mean_packet_size,
      const des::run_result& truth);

  void train(const std::vector<training_example>& examples, std::size_t epochs = 200,
             std::uint64_t seed = 11);

  [[nodiscard]] path_kpis predict(const std::vector<double>& features) const;

  // Predict KPIs for every flow of a scenario.
  [[nodiscard]] std::map<std::uint32_t, path_kpis> predict_flows(
      const topo::topology& topo, const topo::routing& routes,
      const std::vector<traffic::flow_spec>& flows,
      const std::vector<double>& flow_rates_pps, double mean_packet_size) const;

  [[nodiscard]] static std::size_t feature_width() noexcept { return 8; }

  // Unified run API. RouteNet's input interface is the traffic matrix, so
  // the scenario (topology, routing, flows, per-flow rates) is bound once
  // here; run() then replays a request's streams with each packet delivered
  // at send + the flow's predicted avgRTT. The degenerate per-flow-constant
  // latency distribution this produces is RouteNet's documented limitation,
  // preserved on purpose. `topo`/`routes` must outlive the estimator.
  void set_scenario(const topo::topology& topo, const topo::routing& routes,
                    std::vector<traffic::flow_spec> flows,
                    std::vector<double> flow_rates_pps, double mean_packet_size);

  // Throws std::logic_error when untrained or no scenario is bound.
  [[nodiscard]] des::run_result run(const des::run_request& request) override;
  [[nodiscard]] const char* estimator_name() const noexcept override {
    return "routenet";
  }

 private:
  [[nodiscard]] static std::vector<double> path_features(
      const topo::topology& topo, const topo::routing& routes,
      const traffic::flow_spec& flow, const std::vector<traffic::flow_spec>& flows,
      const std::vector<double>& flow_rates_pps, double mean_packet_size);

  nn::mlp net_;
  nn::min_max_scaler feature_scaler_;
  std::array<nn::target_scaler, 4> target_scalers_;
  bool trained_ = false;

  // Scenario binding for the unified run API (null until set_scenario).
  const topo::topology* topo_ = nullptr;
  const topo::routing* routes_ = nullptr;
  std::vector<traffic::flow_spec> flows_;
  std::vector<double> flow_rates_pps_;
  double mean_packet_size_ = 0;
};

// Compare RouteNet's per-flow constant KPI predictions against DES truth
// using the same (flow, bucket) sampling as core::compare_runs: the per-flow
// prediction is replicated across that flow's buckets.
[[nodiscard]] core::metric_comparison compare_routenet(
    const des::run_result& truth, const std::map<std::uint32_t, path_kpis>& predictions,
    double bucket_seconds, std::size_t min_packets_per_bucket = 8);

}  // namespace dqn::baselines
