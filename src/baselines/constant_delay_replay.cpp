#include "baselines/constant_delay_replay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dqn::baselines {

des::run_result replay_constant_delays(
    const topo::topology& topo,
    const std::vector<traffic::packet_stream>& host_streams, double horizon,
    const std::map<std::uint32_t, double>& delay_by_flow) {
  const auto hosts = topo.hosts();
  if (host_streams.size() != hosts.size())
    throw std::invalid_argument{
        "replay_constant_delays: one stream per host required"};

  des::run_result result;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (const auto& ev : host_streams[i]) {
      if (ev.time > horizon) break;
      const auto it = delay_by_flow.find(ev.pkt.flow_id);
      if (it == delay_by_flow.end() || !std::isfinite(it->second)) {
        ++result.drops;
        continue;
      }
      if (ev.pkt.dst_host < 0 ||
          static_cast<std::size_t>(ev.pkt.dst_host) >= hosts.size())
        throw std::invalid_argument{
            "replay_constant_delays: dst_host index out of range"};
      des::delivery_record d;
      d.pid = ev.pkt.pid;
      d.flow_id = ev.pkt.flow_id;
      d.src = hosts[i];
      d.dst = hosts[static_cast<std::size_t>(ev.pkt.dst_host)];
      d.send_time = ev.time;
      d.delivery_time = ev.time + it->second;
      result.deliveries.push_back(d);
    }
  }
  std::sort(result.deliveries.begin(), result.deliveries.end(),
            [](const des::delivery_record& a, const des::delivery_record& b) {
              if (a.delivery_time != b.delivery_time)
                return a.delivery_time < b.delivery_time;
              return a.pid < b.pid;
            });
  return result;
}

}  // namespace dqn::baselines
