// MimicNet-style cluster mimic (Zhang et al., SIGCOMM 2021), the paper's
// FatTree-only comparison target (Tables 5 and 7).
//
// MimicNet's idea: DES-simulate one observable cluster of a datacenter
// fat-tree to collect accurate per-packet behaviour, train "mimics" of the
// cluster- and core-traversal delays, then compose mimics into arbitrary
// scale fat-trees. We reproduce that pipeline: per-segment delay models
// (up-path: host->core, core hop, down-path: core->host) are trained from
// DES hop records of a reference fat-tree, and full-network inference
// composes the three segment predictions per packet. Its character matches
// the paper's findings: excellent RTT accuracy on fat-trees at any scale,
// weaker jitter fidelity (the mimic smooths queueing noise), fast inference,
// and no applicability beyond the fat-tree family.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "des/records.hpp"
#include "des/run_api.hpp"
#include "nn/mlp.hpp"
#include "nn/scaler.hpp"
#include "topo/graph.hpp"
#include "topo/routing.hpp"
#include "traffic/packet.hpp"

namespace dqn::baselines {

class mimicnet_estimator : public des::estimator {
 public:
  mimicnet_estimator() = default;

  // Train the segment mimics from a reference fat-tree DES run. Hop records
  // must be enabled in the run. `topo`/`routes` describe the reference
  // network; segments are identified from each packet's hop sequence.
  void train(const topo::topology& topo, const des::run_result& reference,
             std::size_t epochs = 60, std::uint64_t seed = 23);

  // Predict delivery times for the given host streams on a (possibly
  // larger) fat-tree: per packet, compose predicted segment delays along the
  // routed path. Returns a run_result comparable with DES.
  [[nodiscard]] des::run_result predict(
      const topo::topology& topo, const topo::routing& routes,
      const std::vector<traffic::packet_stream>& host_streams, double horizon) const;

  [[nodiscard]] bool trained() const noexcept { return trained_; }

  // Unified run API: bind the (possibly larger) target fat-tree once, then
  // run() forwards to predict(). `topo`/`routes` must outlive the estimator.
  void set_target(const topo::topology& topo, const topo::routing& routes);

  // Throws std::logic_error when untrained or no target is bound.
  [[nodiscard]] des::run_result run(const des::run_request& request) override;
  [[nodiscard]] const char* estimator_name() const noexcept override {
    return "mimicnet";
  }

 private:
  // Segment feature vector: [packet len, source-rate EMA, hops in segment].
  static constexpr std::size_t feature_width_ = 3;

  struct segment_model {
    nn::mlp net;
    nn::min_max_scaler features;
    nn::target_scaler target;
  };

  void train_segment(segment_model& model,
                     const std::vector<std::array<double, feature_width_>>& x,
                     const std::vector<double>& y, std::size_t epochs,
                     std::uint64_t seed);
  [[nodiscard]] double predict_segment(const segment_model& model,
                                       std::array<double, feature_width_> x) const;

  segment_model up_;    // host -> top of its pod (ToR + Agg queueing)
  segment_model core_;  // core layer traversal
  segment_model down_;  // pod top -> destination host
  bool trained_ = false;
  const topo::topology* target_topo_ = nullptr;
  const topo::routing* target_routes_ = nullptr;
};

}  // namespace dqn::baselines
