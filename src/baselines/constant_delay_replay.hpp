// Shared replay helper for the flow-level baselines (fluid, RouteNet): both
// predict one constant end-to-end delay per flow, so their unified-API run()
// is "replay the injected host streams, stamping each packet's delivery at
// send + delay(flow)". The resulting run_result is record-compatible with
// the DES and the engine — which is exactly what makes the baselines'
// limitation (no intra-flow delay variation) measurable with the same §6
// metric pipeline.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "des/records.hpp"
#include "topo/graph.hpp"
#include "traffic/packet.hpp"

namespace dqn::baselines {

// Build a run_result from per-flow constant delays. Packets whose flow maps
// to a non-finite delay (e.g. a fluid link at capacity) are counted as
// drops. Host src/dst indices are translated to topology node ids, mirroring
// des::network::run.
[[nodiscard]] des::run_result replay_constant_delays(
    const topo::topology& topo,
    const std::vector<traffic::packet_stream>& host_streams, double horizon,
    const std::map<std::uint32_t, double>& delay_by_flow);

}  // namespace dqn::baselines
