#include "baselines/fluid.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

#include "baselines/constant_delay_replay.hpp"
#include "des/run_recorder.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/sink.hpp"
#include "util/stopwatch.hpp"

namespace dqn::baselines {

fluid_estimator::fluid_estimator(const topo::topology& topo,
                                 const topo::routing& routes,
                                 std::vector<traffic::flow_spec> flows,
                                 std::vector<double> flow_rates_pps,
                                 double mean_packet_size)
    : topo_{&topo},
      routes_{&routes},
      flows_{std::move(flows)},
      flow_rates_pps_{std::move(flow_rates_pps)},
      mean_packet_size_{mean_packet_size} {}

des::run_result fluid_estimator::run(const des::run_request& request) {
  if (topo_ == nullptr)
    throw std::logic_error{
        "fluid_estimator::run: construct with a scenario (topology, routing, "
        "flows, rates) before using the unified run API"};
  if (request.host_streams == nullptr)
    throw std::invalid_argument{"fluid_estimator::run: host_streams is null"};
  obs::scoped_timer timer{request.sink, "fluid", "run"};
  des::run_recorder recorder{request.sink, estimator_name(), "-"};
  util::stopwatch watch;
  const auto delays = predict_mean_delays(*topo_, *routes_, flows_,
                                          flow_rates_pps_, mean_packet_size_);
  auto result = replay_constant_delays(*topo_, *request.host_streams,
                                       request.horizon, delays);
  result.wall_seconds = watch.elapsed_seconds();
  recorder.complete(result);
  if (request.sink != nullptr) {
    request.sink->count("fluid.deliveries",
                        static_cast<double>(result.deliveries.size()));
    request.sink->count("fluid.drops", static_cast<double>(result.drops));
  }
  return result;
}

std::map<std::uint32_t, double> fluid_estimator::predict_mean_delays(
    const topo::topology& topo, const topo::routing& routes,
    const std::vector<traffic::flow_spec>& flows,
    const std::vector<double>& flow_rates_pps, double mean_packet_size) {
  if (flows.size() != flow_rates_pps.size())
    throw std::invalid_argument{"fluid_estimator: one rate per flow required"};
  const auto hosts = topo.hosts();
  auto host_node = [&](std::int32_t index) {
    return hosts.at(static_cast<std::size_t>(index));
  };

  // Aggregate the traffic matrix onto directed link loads (pps).
  // Directed link key: link index * 2 + (0 if used a->b else 1).
  std::vector<double> link_pps(topo.link_count() * 2, 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const auto dst = host_node(flows[f].dst_host);
    const auto path =
        routes.flow_path(host_node(flows[f].src_host), dst, flows[f].flow_id);
    for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
      const std::size_t port =
          routes.egress_port(path[hop], dst, flows[f].flow_id);
      const auto peer = topo.peer_of(path[hop], port);
      const auto& link = topo.link_at(peer.link_index);
      const bool forward_direction = link.node_a == path[hop];
      link_pps[peer.link_index * 2 + (forward_direction ? 0 : 1)] +=
          flow_rates_pps[f];
    }
  }

  std::map<std::uint32_t, double> delays;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const auto dst = host_node(flows[f].dst_host);
    const auto path =
        routes.flow_path(host_node(flows[f].src_host), dst, flows[f].flow_id);
    double delay = 0;
    for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
      const std::size_t port =
          routes.egress_port(path[hop], dst, flows[f].flow_id);
      const auto peer = topo.peer_of(path[hop], port);
      const auto& link = topo.link_at(peer.link_index);
      const bool forward_direction = link.node_a == path[hop];
      const double lambda =
          link_pps[peer.link_index * 2 + (forward_direction ? 0 : 1)];
      const double mu = link.bandwidth_bps / (8.0 * mean_packet_size);
      if (lambda >= mu) {
        delay = std::numeric_limits<double>::infinity();
        break;
      }
      // M/M/1 sojourn (queueing + service) plus propagation.
      delay += 1.0 / (mu - lambda) + link.propagation_delay;
    }
    delays[flows[f].flow_id] = delay;
  }
  return delays;
}

}  // namespace dqn::baselines
