#include "baselines/routenet.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "baselines/constant_delay_replay.hpp"
#include "des/run_recorder.hpp"
#include "nn/adam.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/sink.hpp"
#include "stats/descriptive.hpp"
#include "stats/wasserstein.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace dqn::baselines {

routenet_estimator::routenet_estimator() = default;

std::vector<double> routenet_estimator::path_features(
    const topo::topology& topo, const topo::routing& routes,
    const traffic::flow_spec& flow, const std::vector<traffic::flow_spec>& flows,
    const std::vector<double>& flow_rates_pps, double mean_packet_size) {
  const auto hosts = topo.hosts();
  auto host_node = [&](std::int32_t index) {
    return hosts.at(static_cast<std::size_t>(index));
  };

  // Per-link traffic aggregation: the closed-form analogue of the link-state
  // message passing — every link's load is the sum of the matrix rates of
  // flows routed across it.
  std::vector<double> link_load_bps(topo.link_count(), 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const auto path = routes.flow_path(host_node(flows[f].src_host),
                                       host_node(flows[f].dst_host),
                                       flows[f].flow_id);
    const double bps = flow_rates_pps[f] * mean_packet_size * 8.0;
    for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
      // Find the link used between path[hop] and path[hop+1] for this flow.
      const std::size_t port =
          routes.egress_port(path[hop], host_node(flows[f].dst_host),
                             flows[f].flow_id);
      link_load_bps[topo.peer_of(path[hop], port).link_index] += bps;
    }
  }

  const auto path = routes.flow_path(host_node(flow.src_host),
                                     host_node(flow.dst_host), flow.flow_id);
  double sum_util = 0, max_util = 0, min_bw = 0;
  std::size_t links_on_path = 0;
  for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
    const std::size_t port =
        routes.egress_port(path[hop], host_node(flow.dst_host), flow.flow_id);
    const auto peer = topo.peer_of(path[hop], port);
    const auto& link = topo.link_at(peer.link_index);
    const double util = link_load_bps[peer.link_index] / link.bandwidth_bps;
    sum_util += util;
    max_util = std::max(max_util, util);
    min_bw = links_on_path == 0 ? link.bandwidth_bps
                                : std::min(min_bw, link.bandwidth_bps);
    ++links_on_path;
  }
  const std::size_t flow_index = [&] {
    for (std::size_t f = 0; f < flows.size(); ++f)
      if (flows[f].flow_id == flow.flow_id) return f;
    throw std::invalid_argument{"routenet: flow not in scenario"};
  }();

  return {
      flow_rates_pps[flow_index] * mean_packet_size * 8.0,  // flow rate, bps
      static_cast<double>(path.size() - 1),                 // hop count
      sum_util,
      max_util,
      sum_util / static_cast<double>(
          std::max<std::size_t>(links_on_path, 1)),  // mean utilization
      min_bw,
      mean_packet_size,
      static_cast<double>(flow.priority),
  };
}

std::vector<routenet_estimator::training_example> routenet_estimator::make_examples(
    const topo::topology& topo, const topo::routing& routes,
    const std::vector<traffic::flow_spec>& flows,
    const std::vector<double>& flow_rates_pps, double mean_packet_size,
    const des::run_result& truth) {
  if (flows.size() != flow_rates_pps.size())
    throw std::invalid_argument{"routenet: one rate per flow required"};
  const auto per_flow = des::per_flow_latencies(truth);
  std::vector<training_example> examples;
  for (const auto& flow : flows) {
    const auto it = per_flow.find(flow.flow_id);
    if (it == per_flow.end() || it->second.size() < 4) continue;
    training_example ex;
    ex.features =
        path_features(topo, routes, flow, flows, flow_rates_pps, mean_packet_size);
    const auto& lat = it->second;
    const auto jit = stats::jitter_series(lat);
    ex.kpis.avg_rtt = stats::mean(lat);
    ex.kpis.p99_rtt = stats::percentile(lat, 0.99);
    ex.kpis.avg_jitter = stats::mean(jit);
    ex.kpis.p99_jitter = stats::percentile(jit, 0.99);
    examples.push_back(std::move(ex));
  }
  return examples;
}

void routenet_estimator::train(const std::vector<training_example>& examples,
                               std::size_t epochs, std::uint64_t seed) {
  if (examples.size() < 4)
    throw std::invalid_argument{"routenet::train: need >= 4 examples"};
  util::rng rng{seed};
  net_ = nn::mlp{{feature_width(), 32, 16, 4}, nn::activation::tanh, rng};

  std::vector<double> flat_features;
  for (const auto& ex : examples)
    flat_features.insert(flat_features.end(), ex.features.begin(), ex.features.end());
  feature_scaler_.fit(flat_features, feature_width());

  std::array<std::vector<double>, 4> targets;
  for (const auto& ex : examples) {
    targets[0].push_back(ex.kpis.avg_rtt);
    targets[1].push_back(ex.kpis.p99_rtt);
    targets[2].push_back(ex.kpis.avg_jitter);
    targets[3].push_back(ex.kpis.p99_jitter);
  }
  for (std::size_t k = 0; k < 4; ++k) target_scalers_[k].fit(targets[k]);

  nn::param_list params;
  net_.collect_params(params);
  nn::adam optimizer{params, {}};

  const std::size_t n = examples.size();
  nn::matrix x{n, feature_width()};
  nn::matrix y{n, 4};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < feature_width(); ++f)
      x(i, f) = feature_scaler_.transform_one(f, examples[i].features[f]);
    for (std::size_t k = 0; k < 4; ++k)
      y(i, k) = target_scalers_[k].transform(targets[k][i]);
  }
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    const nn::matrix pred = net_.forward(x);
    nn::matrix grad{n, 4};
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t k = 0; k < 4; ++k)
        grad(i, k) = 2.0 * (pred(i, k) - y(i, k)) / static_cast<double>(n);
    (void)net_.backward(grad);
    optimizer.step();
  }
  trained_ = true;
}

path_kpis routenet_estimator::predict(const std::vector<double>& features) const {
  if (!trained_) throw std::logic_error{"routenet::predict: not trained"};
  if (features.size() != feature_width())
    throw std::invalid_argument{"routenet::predict: bad feature width"};
  nn::matrix x{1, feature_width()};
  for (std::size_t f = 0; f < feature_width(); ++f)
    x(0, f) = feature_scaler_.transform_one(f, features[f]);
  const nn::matrix y = net_.forward_const(x);
  path_kpis kpis;
  kpis.avg_rtt = std::max(0.0, target_scalers_[0].inverse(y(0, 0)));
  kpis.p99_rtt = std::max(0.0, target_scalers_[1].inverse(y(0, 1)));
  kpis.avg_jitter = std::max(0.0, target_scalers_[2].inverse(y(0, 2)));
  kpis.p99_jitter = std::max(0.0, target_scalers_[3].inverse(y(0, 3)));
  return kpis;
}

void routenet_estimator::set_scenario(const topo::topology& topo,
                                      const topo::routing& routes,
                                      std::vector<traffic::flow_spec> flows,
                                      std::vector<double> flow_rates_pps,
                                      double mean_packet_size) {
  if (flows.size() != flow_rates_pps.size())
    throw std::invalid_argument{"routenet::set_scenario: one rate per flow"};
  topo_ = &topo;
  routes_ = &routes;
  flows_ = std::move(flows);
  flow_rates_pps_ = std::move(flow_rates_pps);
  mean_packet_size_ = mean_packet_size;
}

des::run_result routenet_estimator::run(const des::run_request& request) {
  if (!trained_) throw std::logic_error{"routenet::run: not trained"};
  if (topo_ == nullptr)
    throw std::logic_error{
        "routenet::run: no scenario bound; call set_scenario first"};
  if (request.host_streams == nullptr)
    throw std::invalid_argument{"routenet::run: host_streams is null"};
  obs::scoped_timer timer{request.sink, "routenet", "run"};
  des::run_recorder recorder{request.sink, estimator_name(), "-"};
  util::stopwatch watch;
  const auto kpis =
      predict_flows(*topo_, *routes_, flows_, flow_rates_pps_, mean_packet_size_);
  std::map<std::uint32_t, double> delays;
  for (const auto& [flow_id, kpi] : kpis) delays[flow_id] = kpi.avg_rtt;
  auto result = replay_constant_delays(*topo_, *request.host_streams,
                                       request.horizon, delays);
  result.wall_seconds = watch.elapsed_seconds();
  recorder.complete(result);
  if (request.sink != nullptr)
    request.sink->count("routenet.deliveries",
                        static_cast<double>(result.deliveries.size()));
  return result;
}

std::map<std::uint32_t, path_kpis> routenet_estimator::predict_flows(
    const topo::topology& topo, const topo::routing& routes,
    const std::vector<traffic::flow_spec>& flows,
    const std::vector<double>& flow_rates_pps, double mean_packet_size) const {
  std::map<std::uint32_t, path_kpis> out;
  for (const auto& flow : flows)
    out[flow.flow_id] =
        predict(path_features(topo, routes, flow, flows, flow_rates_pps,
                              mean_packet_size));
  return out;
}

core::metric_comparison compare_routenet(
    const des::run_result& truth, const std::map<std::uint32_t, path_kpis>& predictions,
    double bucket_seconds, std::size_t min_packets_per_bucket) {
  core::metric_samples t, p;
  for (const auto& [key, latencies] : core::bucketed_latencies(truth, bucket_seconds)) {
    if (latencies.size() < std::max<std::size_t>(min_packets_per_bucket, 2)) continue;
    const auto it = predictions.find(key.first);
    if (it == predictions.end()) continue;
    core::append_bucket_metrics(latencies, t);
    p.avg_rtt.push_back(it->second.avg_rtt);
    p.p99_rtt.push_back(it->second.p99_rtt);
    p.avg_jitter.push_back(it->second.avg_jitter);
    p.p99_jitter.push_back(it->second.p99_jitter);
  }
  if (t.avg_rtt.size() < 4)
    throw std::runtime_error{"compare_routenet: not enough paired samples"};
  core::metric_comparison cmp;
  cmp.samples = t.avg_rtt.size();
  cmp.w1_avg_rtt = stats::normalized_w1(p.avg_rtt, t.avg_rtt);
  cmp.w1_p99_rtt = stats::normalized_w1(p.p99_rtt, t.p99_rtt);
  cmp.w1_avg_jitter = stats::normalized_w1(p.avg_jitter, t.avg_jitter);
  cmp.w1_p99_jitter = stats::normalized_w1(p.p99_jitter, t.p99_jitter);
  // A constant per-flow prediction can have zero variance across samples of
  // a single flow; Pearson is computed over all flows jointly and can still
  // degenerate when the prediction set is constant — report rho = 0 then.
  auto safe_pearson = [](const std::vector<double>& a, const std::vector<double>& b) {
    try {
      return stats::pearson(a, b);
    } catch (const std::exception&) {
      return stats::correlation_result{};
    }
  };
  cmp.rho_avg_rtt = safe_pearson(p.avg_rtt, t.avg_rtt);
  cmp.rho_p99_rtt = safe_pearson(p.p99_rtt, t.p99_rtt);
  cmp.rho_avg_jitter = safe_pearson(p.avg_jitter, t.avg_jitter);
  cmp.rho_p99_jitter = safe_pearson(p.p99_jitter, t.p99_jitter);
  return cmp;
}

}  // namespace dqn::baselines
