#include "stats/dbscan.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>
#include <stdexcept>

namespace dqn::stats {

namespace {

constexpr int kUnvisited = -2;

// Generic DBSCAN over an abstract neighbour oracle.
template <typename NeighbourFn>
std::vector<int> run_dbscan(std::size_t n, std::size_t min_points,
                            NeighbourFn&& neighbours_of) {
  std::vector<int> labels(n, kUnvisited);
  int next_cluster = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (labels[i] != kUnvisited) continue;
    auto seeds = neighbours_of(i);
    if (seeds.size() < min_points) {
      labels[i] = dbscan_noise;
      continue;
    }
    const int cluster = next_cluster++;
    labels[i] = cluster;
    std::deque<std::size_t> frontier(seeds.begin(), seeds.end());
    while (!frontier.empty()) {
      const std::size_t j = frontier.front();
      frontier.pop_front();
      if (labels[j] == dbscan_noise) labels[j] = cluster;  // border point
      if (labels[j] != kUnvisited) continue;
      labels[j] = cluster;
      auto j_neighbours = neighbours_of(j);
      if (j_neighbours.size() >= min_points)
        frontier.insert(frontier.end(), j_neighbours.begin(), j_neighbours.end());
    }
  }
  return labels;
}

}  // namespace

std::vector<int> dbscan_1d(std::span<const double> points, const dbscan_params& params) {
  if (params.eps <= 0) throw std::invalid_argument{"dbscan: eps must be > 0"};
  if (params.min_points == 0)
    throw std::invalid_argument{"dbscan: min_points must be > 0"};
  const std::size_t n = points.size();

  // Sort-order index so neighbourhood queries are O(log n + k).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return points[a] < points[b]; });
  std::vector<double> sorted(n);
  for (std::size_t r = 0; r < n; ++r) sorted[r] = points[order[r]];

  auto neighbours_of = [&](std::size_t i) {
    const double x = points[i];
    const auto lo = std::lower_bound(sorted.begin(), sorted.end(), x - params.eps);
    const auto hi = std::upper_bound(sorted.begin(), sorted.end(), x + params.eps);
    std::vector<std::size_t> out;
    out.reserve(static_cast<std::size_t>(hi - lo));
    for (auto it = lo; it != hi; ++it)
      out.push_back(order[static_cast<std::size_t>(it - sorted.begin())]);
    return out;
  };
  return run_dbscan(n, params.min_points, neighbours_of);
}

std::vector<int> dbscan(std::span<const double> points, std::size_t dim,
                        const dbscan_params& params) {
  if (dim == 0) throw std::invalid_argument{"dbscan: dim must be > 0"};
  if (points.size() % dim != 0)
    throw std::invalid_argument{"dbscan: points.size() must be a multiple of dim"};
  if (params.eps <= 0) throw std::invalid_argument{"dbscan: eps must be > 0"};
  if (params.min_points == 0)
    throw std::invalid_argument{"dbscan: min_points must be > 0"};
  const std::size_t n = points.size() / dim;
  const double eps2 = params.eps * params.eps;

  auto neighbours_of = [&](std::size_t i) {
    std::vector<std::size_t> out;
    for (std::size_t j = 0; j < n; ++j) {
      double d2 = 0;
      for (std::size_t k = 0; k < dim; ++k) {
        const double diff = points[i * dim + k] - points[j * dim + k];
        d2 += diff * diff;
      }
      if (d2 <= eps2) out.push_back(j);
    }
    return out;
  };
  return run_dbscan(n, params.min_points, neighbours_of);
}

}  // namespace dqn::stats
