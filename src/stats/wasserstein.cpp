#include "stats/wasserstein.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace dqn::stats {

namespace {

// W1 between empirical CDFs = integral |F_a(x) - F_b(x)| dx, computed by a
// merge sweep over the pooled sample points. Handles different sample sizes.
double w1_sorted(const std::vector<double>& a, const std::vector<double>& b) {
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  double distance = 0;
  double prev = std::min(a.front(), b.front());
  while (ia < a.size() || ib < b.size()) {
    const double xa = ia < a.size() ? a[ia] : std::numeric_limits<double>::infinity();
    const double xb = ib < b.size() ? b[ib] : std::numeric_limits<double>::infinity();
    const double x = std::min(xa, xb);
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    distance += std::abs(fa - fb) * (x - prev);
    prev = x;
    while (ia < a.size() && a[ia] == x) ++ia;
    while (ib < b.size() && b[ib] == x) ++ib;
  }
  return distance;
}

}  // namespace

double wasserstein1(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty())
    throw std::invalid_argument{"wasserstein1: empty sample"};
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  return w1_sorted(sa, sb);
}

double normalized_w1(std::span<const double> prediction, std::span<const double> label) {
  const double numerator = wasserstein1(prediction, label);
  // W1(0-vector, label) = mean |label| for an empirical label sample.
  double denom = 0;
  for (double x : label) denom += std::abs(x);
  denom /= static_cast<double>(label.size());
  if (denom == 0)
    throw std::invalid_argument{"normalized_w1: label distribution is identically zero"};
  return numerator / denom;
}

}  // namespace dqn::stats
