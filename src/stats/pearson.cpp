#include "stats/pearson.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dqn::stats {

correlation_result pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size())
    throw std::invalid_argument{"pearson: size mismatch"};
  if (x.size() < 4)
    throw std::invalid_argument{"pearson: need at least 4 samples for a CI"};
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0 || syy == 0)
    throw std::invalid_argument{"pearson: zero variance input"};
  double rho = sxy / std::sqrt(sxx * syy);
  rho = std::clamp(rho, -1.0, 1.0);

  // Fisher z-transform CI. Degenerate |rho| == 1 collapses to a point.
  correlation_result result;
  result.rho = rho;
  if (std::abs(rho) >= 1.0 - 1e-15) {
    result.ci_low = result.ci_high = rho;
    return result;
  }
  const double z = 0.5 * std::log((1 + rho) / (1 - rho));
  const double se = 1.0 / std::sqrt(n - 3.0);
  constexpr double z975 = 1.959963984540054;
  const double lo = z - z975 * se;
  const double hi = z + z975 * se;
  result.ci_low = std::tanh(lo);
  result.ci_high = std::tanh(hi);
  return result;
}

}  // namespace dqn::stats
