#include "stats/ecdf.hpp"

#include <algorithm>
#include <stdexcept>

namespace dqn::stats {

ecdf::ecdf(std::span<const double> samples) : sorted_(samples.begin(), samples.end()) {
  if (sorted_.empty()) throw std::invalid_argument{"ecdf: empty sample"};
  std::sort(sorted_.begin(), sorted_.end());
}

double ecdf::operator()(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::vector<std::pair<double, double>> ecdf::curve(std::size_t points) const {
  if (points < 2) throw std::invalid_argument{"ecdf::curve: need at least 2 points"};
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, (*this)(x));
  }
  return out;
}

}  // namespace dqn::stats
