// Wasserstein-1 distance between empirical distributions, and the paper's
// normalized variant:
//
//   w1 = W1(prediction, label) / W1(0-vector, label)
//
// which is 0 for a perfect predictor and ~1 for a predictor that outputs all
// zeros (§5.2). The denominator equals the mean absolute value of the label
// distribution's quantile function, i.e. E|X| for the label sample.
#pragma once

#include <span>

namespace dqn::stats {

// Exact W1 between two empirical distributions (possibly different sizes),
// computed as the L1 distance between quantile functions.
[[nodiscard]] double wasserstein1(std::span<const double> a, std::span<const double> b);

// The paper's normalized w1 (lower is better; 0 = exact distribution match).
[[nodiscard]] double normalized_w1(std::span<const double> prediction,
                                   std::span<const double> label);

}  // namespace dqn::stats
