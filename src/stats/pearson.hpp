// Pearson correlation with the Fisher-z 95% confidence interval, as reported
// in the paper's Appendix C (Tables 8-10).
#pragma once

#include <span>

namespace dqn::stats {

struct correlation_result {
  double rho = 0;      // Pearson correlation coefficient
  double ci_low = 0;   // lower bound of the 95% CI (Fisher z-transform)
  double ci_high = 0;  // upper bound of the 95% CI
};

[[nodiscard]] correlation_result pearson(std::span<const double> x,
                                         std::span<const double> y);

}  // namespace dqn::stats
