// DBSCAN density clustering (Schubert et al., TODS 2017), used by the
// statistical error correction (SEC) stage: residuals of nearby sojourn-time
// predictions are clustered into bins, and the per-bin mean error is
// subtracted at inference (§4.3).
//
// The implementation is exact (no spatial index) over 1-D points, which is
// the shape SEC needs (clustering along the predicted-sojourn axis); an
// overload accepts n-D points for generality and is used by the tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dqn::stats {

inline constexpr int dbscan_noise = -1;

struct dbscan_params {
  double eps = 0.1;           // neighbourhood radius
  std::size_t min_points = 4; // core-point density threshold (incl. self)
};

// Returns one label per point: cluster ids 0..k-1, or dbscan_noise.
[[nodiscard]] std::vector<int> dbscan_1d(std::span<const double> points,
                                         const dbscan_params& params);

// General n-D version (Euclidean metric); `dim` must divide points.size().
[[nodiscard]] std::vector<int> dbscan(std::span<const double> points, std::size_t dim,
                                      const dbscan_params& params);

}  // namespace dqn::stats
