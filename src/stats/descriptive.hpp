// Descriptive statistics used across the evaluation harnesses: means,
// variances, percentiles, and jitter extraction from latency series.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dqn::stats {

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);  // population variance
[[nodiscard]] double stddev(std::span<const double> xs);

// Linear-interpolation percentile, q in [0, 1] (matches numpy's default).
[[nodiscard]] double percentile(std::span<const double> xs, double q);

// Jitter series per the paper's usage: absolute successive differences of a
// per-path latency series (RFC 3393 style instantaneous delay variation).
[[nodiscard]] std::vector<double> jitter_series(std::span<const double> latencies);

// Min-max bounds (throws on empty input).
struct min_max {
  double lo = 0;
  double hi = 0;
};
[[nodiscard]] min_max bounds(std::span<const double> xs);

}  // namespace dqn::stats
