// Empirical CDF helper for the CDF-plot benches (Figures 10, 12, 14).
#pragma once

#include <span>
#include <vector>

namespace dqn::stats {

class ecdf {
 public:
  explicit ecdf(std::span<const double> samples);

  // P(X <= x) under the empirical distribution.
  [[nodiscard]] double operator()(double x) const noexcept;

  [[nodiscard]] const std::vector<double>& sorted_samples() const noexcept {
    return sorted_;
  }

  // Evaluate the ECDF at `points` evenly spaced values between the sample
  // min and max; returns (x, F(x)) pairs — convenient for printing CDFs.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace dqn::stats
