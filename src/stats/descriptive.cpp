#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dqn::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument{"mean: empty input"};
  double acc = 0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  const double m = mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument{"percentile: empty input"};
  if (q < 0 || q > 1) throw std::invalid_argument{"percentile: q must be in [0,1]"};
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

std::vector<double> jitter_series(std::span<const double> latencies) {
  std::vector<double> jitter;
  if (latencies.size() < 2) return jitter;
  jitter.reserve(latencies.size() - 1);
  for (std::size_t i = 1; i < latencies.size(); ++i)
    jitter.push_back(std::abs(latencies[i] - latencies[i - 1]));
  return jitter;
}

min_max bounds(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument{"bounds: empty input"};
  const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  return {*lo, *hi};
}

}  // namespace dqn::stats
