#include "core/device_model.hpp"

#include <algorithm>
#include <deque>
#include <vector>
#include <stdexcept>

#include "obs/journey.hpp"
#include "obs/sink.hpp"
#include "util/annotations.hpp"
#include "util/check.hpp"

namespace dqn::core {

namespace {

// Per-packet steady-state kernels of device_model::process. process() itself
// stages buffers (feature rows, sojourn vectors, egress streams) and so
// cannot be allocation-free; the per-packet arithmetic it runs over those
// pre-sized buffers lives here, where DQN_HOT_PATH holds (ast_lint.py rule:
// no allocation, no string-keyed obs inside marked bodies).

// Strict-priority prior bound: clamp each class-0 sojourn into
// [W_0, W_0 + max_packet * 8 / C] (rows is the flattened feature matrix).
DQN_HOT_PATH void clamp_sp_waits(const traffic::packet_stream& queue,
                                 const std::vector<double>& rows,
                                 std::vector<double>& sojourns,
                                 double line_bps) noexcept {
  const double residual_service_bound = 1600.0 * 8.0 / line_bps;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (queue[i].pkt.priority != 0) continue;
    const double w0 = rows[i * feature_count + f_own_class_work];
    sojourns[i] = std::clamp(sojourns[i], w0, w0 + residual_service_bound);
  }
}

// Feasibility projection along the transmission order: successive starts are
// at least one service time apart while the line is busy; predictions only
// move later. departures is pre-sized to queue.size() by the caller.
DQN_HOT_PATH void project_departures(const traffic::packet_stream& queue,
                                     const std::vector<double>& sojourns,
                                     const std::vector<std::size_t>& tx_order,
                                     std::vector<double>& departures,
                                     double line_bps) noexcept {
  double line_free_at = 0;
  for (const std::size_t i : tx_order) {
    const double arrival = queue[i].time;
    const double departure =
        std::max(arrival + sojourns[i], std::max(arrival, line_free_at));
    departures[i] = departure;
    line_free_at = departure + static_cast<double>(queue[i].pkt.size_bytes) *
                                   8.0 / line_bps;
  }
}

}  // namespace

device_model::device_model(std::shared_ptr<const ptm_model> ptm, scheduler_context ctx)
    : fallback_{std::move(ptm)}, ctx_{std::move(ctx)} {}

std::vector<traffic::packet_stream> device_model::process(
    const std::vector<traffic::packet_stream>& ingress, const forward_fn& forward,
    bool apply_sec, std::vector<predicted_hop>* hops,
    std::vector<traffic::packet>* dropped,
    std::span<const double> port_bandwidths, const journey_capture* journeys,
    obs::sink* sink, nn::workspace* workspace, delay_provider* delay,
    std::int64_t device_id, std::size_t iteration) const {
  const std::size_t ports = ingress.size();
  // PFM: exact forwarding into per-egress-queue arrival series.
  std::vector<traffic::packet_stream> queues =
      apply_forwarding(ingress, forward, ports);

  obs::journey_tracer* const tracer =
      (journeys != nullptr && journeys->tracer != nullptr &&
       journeys->tracer->enabled())
          ? journeys->tracer
          : nullptr;
  obs::counter_handle pfm_forwarded;
  obs::counter_handle device_drops;
  if (sink != nullptr) {
    pfm_forwarded = sink->counter_handle_for("pfm.forwarded");
    device_drops = sink->counter_handle_for("pfm.drops");
    std::size_t total = 0;
    for (const auto& queue : queues) total += queue.size();
    pfm_forwarded.add(static_cast<double>(total));
  }

  std::vector<traffic::packet_stream> egress(ports);
  for (std::size_t out = 0; out < ports; ++out) {
    auto& queue = queues[out];
    if (queue.empty()) continue;
    const double line_bps = port_bandwidths.size() == ports
                                ? port_bandwidths[out]
                                : ctx_.bandwidth_bps;

    // Buffer management (drop-tail): the queue's byte backlog at each
    // arrival is an exact function of the ingress series (Lindley
    // recursion), so drops are decided deterministically — no learning
    // involved, like the PFM. Dropped packets leave the stream (their
    // latency is +inf).
    if (ctx_.buffer_bytes > 0) {
      // Exact FIFO drop-tail replay over the arrival series: track each kept
      // packet's (service start, service end) on the egress line and the
      // bytes waiting (excluding the packet in service, matching the DES
      // traffic manager's accounting). Deterministic, like the PFM.
      struct in_system_packet {
        double start, end;
        std::uint32_t bytes;
      };
      traffic::packet_stream kept;
      kept.reserve(queue.size());
      std::deque<in_system_packet> in_system;
      double bytes_in_system = 0;
      double last_end = 0;
      for (const auto& ev : queue) {
        while (!in_system.empty() && in_system.front().end <= ev.time) {
          bytes_in_system -= in_system.front().bytes;
          in_system.pop_front();
        }
        // FIFO: only the head can be in service; everything behind waits.
        const double in_service_bytes =
            (!in_system.empty() && in_system.front().start <= ev.time)
                ? in_system.front().bytes
                : 0.0;
        const double waiting_bytes = bytes_in_system - in_service_bytes;
        if (waiting_bytes + ev.pkt.size_bytes >
            static_cast<double>(ctx_.buffer_bytes)) {
          if (dropped != nullptr) dropped->push_back(ev.pkt);
          device_drops.add();
          continue;
        }
        const double service =
            static_cast<double>(ev.pkt.size_bytes) * 8.0 / line_bps;
        const double start = std::max(ev.time, last_end);
        last_end = start + service;
        in_system.push_back({start, last_end, ev.pkt.size_bytes});
        bytes_in_system += ev.pkt.size_bytes;
        kept.push_back(ev);
      }
      queue = std::move(kept);
      if (queue.empty()) continue;
    }
    // Sojourn prediction over the arrival series, dispatched through the
    // delay-provider API (delay_provider.hpp): the engine-selected backend
    // (PTM / analytical / tiered) sees the full device state and returns one
    // sojourn per queued packet.
    scheduler_context port_ctx = ctx_;
    port_ctx.bandwidth_bps = line_bps;
    const auto rows = compute_features(queue, port_ctx);
    std::vector<double> raw_sojourns;
    std::vector<double>* const raw = tracer != nullptr ? &raw_sojourns : nullptr;
    // Offered load of the egress line over the window: byte-work brought by
    // the series divided by the span it arrived in (the tiered policy's
    // routing signal; may exceed 1 under overload).
    double busy_seconds = 0;
    for (const auto& ev : queue)
      busy_seconds += static_cast<double>(ev.pkt.size_bytes) * 8.0 / line_bps;
    const double window_seconds = queue.back().time - queue.front().time;
    const double utilization =
        queue.size() < 2 ? 0.0
                         : busy_seconds / std::max(window_seconds, 1e-12);

    device_state dstate;
    dstate.device = device_id;
    dstate.port = out;
    dstate.iteration = iteration;
    dstate.arrivals = &queue;
    dstate.feature_rows = rows;
    dstate.ctx = &port_ctx;
    dstate.utilization = utilization;
    dstate.apply_sec = apply_sec;
    dstate.workspace = workspace;
    dstate.raw_out = raw;
    delay_provider* const provider = delay != nullptr ? delay : &fallback_;
    auto sojourns = provider->estimate_sojourn(dstate, window_seconds);
    DQN_ENSURE(sojourns.size() == queue.size(), "device_model: provider '",
               provider->name(), "' returned ", sojourns.size(),
               " sojourns for ", queue.size(), " packets");

    // Scheduler-theoretic bound (prior knowledge, like the PFM): under
    // non-preemptive strict priority, the highest class waits exactly its
    // own-class backlog plus at most one residual lower-priority service:
    //   W_0 <= sojourn <= W_0 + max_packet * 8 / C.
    if (ctx_.kind == des::scheduler_kind::sp)
      clamp_sp_waits(queue, rows, sojourns, line_bps);

    // Post-PTM feasibility projection: the egress line serialises packets,
    // so successive transmission starts are at least one service time apart
    // while the line is busy. The constraint applies in *transmission*
    // order — which under SP/WFQ differs from arrival order (high-priority
    // packets jump the queue) — so project along the predicted-departure
    // ordering. Pushing predictions later (never earlier) removes
    // per-packet noise no physical line could produce — the same
    // prior-knowledge principle as the PFM.
    std::vector<std::size_t> tx_order(queue.size());
    for (std::size_t i = 0; i < tx_order.size(); ++i) tx_order[i] = i;
    if (ctx_.kind != des::scheduler_kind::fifo) {
      // Under FIFO the transmission order *is* the arrival order (already
      // the case), and keeping it makes the projection an exact FIFO
      // replay; for the other disciplines the predicted departures define
      // the order.
      std::sort(tx_order.begin(), tx_order.end(),
                [&](std::size_t a, std::size_t b) {
                  const double da = queue[a].time + sojourns[a];
                  const double db = queue[b].time + sojourns[b];
                  if (da != db) return da < db;
                  return queue[a].pkt.pid < queue[b].pkt.pid;
                });
    }
    std::vector<double> departures(queue.size());
    project_departures(queue, sojourns, tx_order, departures, line_bps);
    traffic::packet_stream& out_stream = egress[out];
    out_stream.reserve(queue.size());
    for (std::size_t i = 0; i < queue.size(); ++i) {
      out_stream.push_back({queue[i].pkt, departures[i]});
      if (hops != nullptr)
        hops->push_back({queue[i].pkt.pid, out, queue[i].time, departures[i]});
      if (tracer != nullptr && tracer->sampled(queue[i].pkt.pid)) {
        obs::journey_hop hop;
        hop.device = journeys->device;
        hop.queue = out;
        hop.arrival = queue[i].time;
        hop.raw_delay = raw_sojourns[i];
        hop.corrected_delay = departures[i] - queue[i].time;
        hop.departure = departures[i];
        tracer->record_hop(queue[i].pkt.pid, hop);
      }
    }
    // Re-sequencing: egress streams are time series again (§3.2.4).
    std::sort(out_stream.begin(), out_stream.end());
  }
  return egress;
}

traffic::packet_stream apply_link(const traffic::packet_stream& in,
                                  double bandwidth_bps, double propagation_delay) {
  if (bandwidth_bps <= 0)
    throw std::invalid_argument{"apply_link: bandwidth must be > 0"};
  traffic::packet_stream out;
  out.reserve(in.size());
  for (const auto& ev : in) {
    const double latency =
        static_cast<double>(ev.pkt.size_bytes) * 8.0 / bandwidth_bps +
        propagation_delay;
    out.push_back({ev.pkt, ev.time + latency});
  }
  // A constant-per-size shift can reorder mixed-size packets.
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dqn::core
