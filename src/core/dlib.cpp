#include "core/dlib.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "util/check.hpp"

namespace dqn::core {

device_model_library::device_model_library(std::filesystem::path directory)
    : directory_{std::move(directory)} {
  std::filesystem::create_directories(directory_);
}

std::filesystem::path device_model_library::default_directory() {
  if (const char* env = std::getenv("DQN_MODEL_DIR"); env != nullptr && *env != '\0')
    return env;
  return "dqn_models";
}

std::string device_model_library::model_key(ptm_arch arch, std::size_t ports,
                                            std::uint64_t seed) {
  return std::string{"ptm_"} + to_string(arch) + "_k" + std::to_string(ports) +
         "_s" + std::to_string(seed);
}

std::filesystem::path device_model_library::path_for(const std::string& key) const {
  DQN_ENSURE(!key.empty() && key.find('/') == std::string::npos,
             "device_model_library: bad key '", key,
             "' (must be non-empty, no '/')");
  return directory_ / (key + ".dqnmodel");
}

bool device_model_library::contains(const std::string& key) const {
  return std::filesystem::exists(path_for(key));
}

void device_model_library::store(const std::string& key, const ptm_model& model) const {
  const auto path = path_for(key);
  const auto tmp = path.string() + ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary};
    if (!out) throw std::runtime_error{"device_model_library: cannot write " + tmp};
    model.save(out);
    out.flush();
    if (!out) {
      // Never rename a short write over the cache: a truncated model file
      // would poison every later fetch_or_train until manually deleted.
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw std::runtime_error{"device_model_library: write failed: " + tmp};
    }
  }
  std::filesystem::rename(tmp, path);
}

ptm_model device_model_library::fetch(const std::string& key) const {
  const auto path = path_for(key);
  std::ifstream in{path, std::ios::binary};
  if (!in)
    throw std::runtime_error{"device_model_library: no such model: " + key};
  ptm_model model;
  model.load(in);
  return model;
}

}  // namespace dqn::core
