#include "core/ptm.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "util/check.hpp"

#include "core/features.hpp"
#include "obs/scoped_timer.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace dqn::core {

const char* to_string(ptm_arch arch) noexcept {
  switch (arch) {
    case ptm_arch::mlp: return "mlp";
    case ptm_arch::attention: return "attention";
  }
  return "?";
}

std::size_t ptm_dataset::count() const {
  if (time_steps == 0) return 0;
  return windows.size() / (time_steps * feature_count);
}

void ptm_dataset::append(const ptm_dataset& other) {
  if (time_steps == 0) time_steps = other.time_steps;
  DQN_ENSURE(time_steps == other.time_steps,
             "ptm_dataset::append: time_steps mismatch: ", time_steps, " vs ",
             other.time_steps);
  windows.insert(windows.end(), other.windows.begin(), other.windows.end());
  targets.insert(targets.end(), other.targets.begin(), other.targets.end());
}

ptm_model::ptm_model(const ptm_config& config) : config_{config} {
  util::rng rng{config.seed};
  if (config_.arch == ptm_arch::attention) {
    nn::seq_regressor_config seq;
    seq.input_dim = feature_count;
    seq.lstm_hidden = config_.lstm_hidden;
    seq.heads = config_.heads;
    seq.key_dim = config_.key_dim;
    seq.value_dim = config_.value_dim;
    seq.attention_out = config_.attention_out;
    attention_net_ = nn::seq_regressor{seq, rng};
  } else {
    std::vector<std::size_t> dims;
    dims.push_back(config_.time_steps * feature_count);
    for (std::size_t h : config_.mlp_hidden) dims.push_back(h);
    dims.push_back(1);
    mlp_net_ = nn::mlp{dims, nn::activation::tanh, rng};
  }
}

namespace {

// x -> log1p(x / scale) for the heavy-tailed features (features.hpp).
void apply_feature_log(std::span<double> flat_windows) {
  for (std::size_t i = 0; i < flat_windows.size(); ++i) {
    const double scale = feature_log_scale[i % feature_count];
    if (scale > 0) flat_windows[i] = std::log1p(flat_windows[i] / scale);
  }
}

// Residual learning: the regression target is the *deviation* of the sojourn
// from the class-resolved work-conserving bound W_k (the unfinished work of
// the packet's own-and-higher classes). W_k is exactly the FIFO wait under
// FIFO and the non-preemptive SP wait ignoring future arrivals under SP, so
// the DNN spends its capacity only on the genuinely intractable part
// (future-arrival preemption, weighted interleaving). asinh gives a
// symmetric log-like transform for the signed residual.
double residual_to_net(double sojourn_seconds, double prior_bound) {
  return std::asinh((sojourn_seconds - prior_bound) / sojourn_log_scale);
}

double residual_from_net(double net_value, double prior_bound) {
  return prior_bound + std::sinh(net_value) * sojourn_log_scale;
}

// The prior bound of window i is a raw feature of its final time step.
double window_prior_bound(std::span<const double> windows, std::size_t i,
                          std::size_t time_steps) {
  return windows[(i * time_steps + time_steps - 1) * feature_count +
                 f_own_class_work];
}

// Scheduler kind of window i, decoded from the one-hot of its final step.
std::size_t window_scheduler(std::span<const double> windows, std::size_t i,
                             std::size_t time_steps) {
  const std::size_t row = (i * time_steps + time_steps - 1) * feature_count;
  for (std::size_t f = f_sched_fifo; f <= f_sched_wfq; ++f)
    if (windows[row + f] > 0.5) return f - f_sched_fifo;
  return 0;  // default to FIFO if the one-hot is absent
}

}  // namespace

nn::seq_batch ptm_model::scale_windows(std::span<const double> windows) const {
  const std::size_t window_size = config_.time_steps * feature_count;
  DQN_CHECK(windows.size() % window_size == 0,
            "ptm_model: windows size ", windows.size(),
            " not a multiple of window ", window_size);
  const std::size_t n = windows.size() / window_size;
  nn::seq_batch batch{n, config_.time_steps, feature_count};
  std::copy(windows.begin(), windows.end(), batch.data().begin());
  apply_feature_log(batch.data());
  feature_scaler_.transform(batch);
  return batch;
}

nn::seq_batch& ptm_model::scale_windows_into(std::span<const double> windows,
                                             nn::workspace& ws) const {
  const std::size_t window_size = config_.time_steps * feature_count;
  DQN_CHECK(windows.size() % window_size == 0,
            "ptm_model: windows size ", windows.size(),
            " not a multiple of window ", window_size);
  const std::size_t n = windows.size() / window_size;
  nn::seq_batch& batch = ws.take_seq(n, config_.time_steps, feature_count);
  std::copy(windows.begin(), windows.end(), batch.data().begin());
  apply_feature_log(batch.data());
  feature_scaler_.transform(batch);
  return batch;
}

training_report ptm_model::train(
    const ptm_dataset& data, const std::function<void(std::size_t, double)>& on_epoch) {
  DQN_ENSURE(data.time_steps == config_.time_steps,
             "ptm_model::train: dataset has time_steps=", data.time_steps,
             ", model wants ", config_.time_steps);
  const std::size_t n = data.count();
  DQN_ENSURE(n > 0 && data.targets.size() == n,
             "ptm_model::train: empty or inconsistent dataset (", n,
             " windows, ", data.targets.size(), " targets)");

  util::stopwatch watch;
  {
    std::vector<double> transformed(data.windows.begin(), data.windows.end());
    apply_feature_log(transformed);
    feature_scaler_.fit(transformed, feature_count);
  }
  {
    std::vector<double> net_targets(data.targets.size());
    for (std::size_t i = 0; i < data.targets.size(); ++i)
      net_targets[i] = residual_to_net(
          data.targets[i],
          window_prior_bound(data.windows, i, config_.time_steps));
    target_scaler_.fit(net_targets);
  }
  const nn::seq_batch all = scale_windows(data.windows);

  nn::param_list params;
  if (config_.arch == ptm_arch::attention)
    attention_net_.collect_params(params);
  else
    mlp_net_.collect_params(params);
  nn::adam optimizer{params, config_.adam};

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  util::rng shuffle_rng{util::derive_seed(config_.seed, 0x5ec5)};

  training_report report;
  // Per-batch telemetry through pre-resolved handles: the batch loop is the
  // training hot path, so it must not take the registry's name lock.
  obs::counter_handle batches_handle;
  obs::histogram_handle batch_mse_handle;
  if (config_.sink != nullptr) {
    batches_handle = config_.sink->counter_handle_for("ptm.batches");
    batch_mse_handle = config_.sink->histogram_handle_for("ptm.batch_mse");
  }
  const std::size_t batch_size = std::min(config_.batch_size, n);
  // Batch staging buffers hoisted out of the loops: every iteration reuses
  // the same allocations instead of constructing fresh tensors per batch.
  nn::seq_batch batch{batch_size, config_.time_steps, feature_count};
  nn::matrix targets{batch_size, 1};
  nn::matrix flat{batch_size, config_.time_steps * feature_count};
  nn::matrix sample_row{config_.time_steps, feature_count};
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    obs::scoped_timer epoch_timer{config_.sink, "ptm", "epoch", epoch};
    shuffle_rng.shuffle(order);
    double epoch_loss = 0;
    double grad_norm = 0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin + batch_size <= n; begin += batch_size) {
      for (std::size_t b = 0; b < batch_size; ++b) {
        const std::size_t src = order[begin + b];
        all.sample_into(src, sample_row);
        batch.set_sample(b, sample_row);
        targets(b, 0) = target_scaler_.transform(residual_to_net(
            data.targets[src],
            window_prior_bound(data.windows, src, config_.time_steps)));
      }
      double loss = 0;
      if (config_.arch == ptm_arch::attention) {
        const nn::matrix pred = attention_net_.forward(batch);
        loss = attention_net_.backward_mse(pred, targets);
      } else {
        std::copy(batch.data().begin(), batch.data().end(), flat.data().begin());
        const nn::matrix pred = mlp_net_.forward(flat);
        nn::matrix grad{batch_size, 1};  // backward consumes it; cheap next to the GEMMs
        for (std::size_t b = 0; b < batch_size; ++b) {
          const double diff = pred(b, 0) - targets(b, 0);
          loss += diff * diff;
          grad(b, 0) = 2.0 * diff / static_cast<double>(batch_size);
        }
        loss /= static_cast<double>(batch_size);
        (void)mlp_net_.backward(grad);
      }
      if (config_.sink != nullptr && begin + 2 * batch_size > n) {
        // Gradient L2 norm of the epoch's final batch (pre-step, so the
        // grads are still the raw backward output) — the training-health
        // signal next to the loss curve.
        double grad_sq = 0;
        for (const auto& p : params)
          for (const double g : *p.grad) grad_sq += g * g;
        grad_norm = std::sqrt(grad_sq);
      }
      optimizer.step();
      epoch_loss += loss;
      ++batches;
      batches_handle.add();
      batch_mse_handle.observe(loss);
    }
    const double mse = batches > 0 ? epoch_loss / static_cast<double>(batches) : 0.0;
    report.epoch_mse.push_back(mse);
    if (config_.sink != nullptr) {
      epoch_timer.set_value(mse);
      config_.sink->observe("ptm.epoch_mse", mse);
      config_.sink->observe("ptm.grad_norm", grad_norm);
      config_.sink->gauge("ptm.last_mse", mse);
      config_.sink->count("ptm.epochs");
    }
    if (on_epoch) on_epoch(epoch, mse);
  }
  trained_ = true;
  report.train_seconds = watch.elapsed_seconds();
  return report;
}

std::vector<double> ptm_model::predict(std::span<const double> windows,
                                       bool apply_sec,
                                       std::vector<double>* raw_out) const {
  // One workspace per thread keeps this overload thread-safe (the documented
  // contract) while still running the zero-allocation forward path.
  thread_local nn::workspace ws;
  return predict(windows, ws, apply_sec, raw_out);
}

std::vector<double> ptm_model::predict(std::span<const double> windows,
                                       nn::workspace& ws, bool apply_sec,
                                       std::vector<double>* raw_out) const {
  if (!trained_) throw std::logic_error{"ptm_model::predict: model not trained"};
  ws.reset();
  const nn::seq_batch& batch = scale_windows_into(windows, ws);
  const std::size_t n = batch.batch();
  std::vector<double> out(n);
  if (config_.arch == ptm_arch::attention) {
    const nn::matrix& pred = attention_net_.forward(batch, ws);
    for (std::size_t i = 0; i < n; ++i) out[i] = pred(i, 0);
  } else {
    nn::matrix& flat = ws.take(n, config_.time_steps * feature_count);
    std::copy(batch.data().begin(), batch.data().end(), flat.data().begin());
    const nn::matrix& pred = mlp_net_.forward(flat, ws);
    for (std::size_t i = 0; i < n; ++i) out[i] = pred(i, 0);
  }
  if (config_.sink != nullptr) {
    // Pre-resolved handle, same idiom as the SEC metrics below: one name
    // lookup per call, lock-free store.
    obs::gauge_handle ws_bytes = config_.sink->gauge_handle_for("nn.workspace_bytes");
    ws_bytes.set(static_cast<double>(ws.bytes()));
  }
  if (raw_out != nullptr) {
    raw_out->clear();
    raw_out->resize(n);
  }
  // SEC telemetry goes through pre-resolved handles (one name lookup per
  // predict call, lock-free per packet); null handles when no sink is set.
  obs::counter_handle sec_corrections;
  obs::histogram_handle sec_relative;
  if (config_.sink != nullptr && apply_sec) {
    sec_corrections = config_.sink->counter_handle_for("sec.corrections");
    sec_relative = config_.sink->histogram_handle_for("sec.relative_correction");
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    // Clamp to (slightly beyond) the training range: scaled outputs past it
    // are extrapolation noise that the inverse transform would amplify.
    double y = std::clamp(out[i], 0.0, 1.0);
    y = residual_from_net(
        target_scaler_.inverse(y),
        window_prior_bound(windows, i, config_.time_steps));
    if (raw_out != nullptr) (*raw_out)[i] = std::max(0.0, y);
    if (apply_sec) {
      const auto& table = sec_[window_scheduler(windows, i, config_.time_steps)];
      if (table.fitted()) {
        const double rel = table.relative_correction(y);
        if (rel != 0.0) {
          sec_corrections.add();
          sec_relative.observe(std::abs(rel));
          y = std::max(0.0, y * (1.0 - rel));
        }
      }
    }
    out[i] = std::max(0.0, y);  // sojourn times cannot be negative
  }
  return out;
}

std::vector<nn::matrix> ptm_model::attention_maps(std::span<const double> window) {
  if (config_.arch != ptm_arch::attention)
    throw std::logic_error{"attention_maps: PTM uses the MLP architecture"};
  if (!trained_) throw std::logic_error{"attention_maps: model not trained"};
  if (window.size() != config_.time_steps * feature_count)
    throw std::invalid_argument{"attention_maps: expected exactly one window"};
  const nn::seq_batch batch = scale_windows(window);
  (void)attention_net_.forward(batch);  // training-mode forward fills caches
  std::vector<nn::matrix> maps;
  for (std::size_t head = 0; head < config_.heads; ++head)
    maps.push_back(attention_net_.attention().attention_weights(0, head));
  return maps;
}

void ptm_model::fit_sec(const ptm_dataset& validation, double eps_fraction,
                        std::size_t min_points) {
  const auto predictions = predict(validation.windows, /*apply_sec=*/false);
  // Fit one table per scheduler kind: residual structure is
  // discipline-specific (Figure 6).
  std::array<std::vector<double>, 5> pred_by_kind;
  std::array<std::vector<double>, 5> truth_by_kind;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const std::size_t kind =
        window_scheduler(validation.windows, i, config_.time_steps);
    pred_by_kind[kind].push_back(predictions[i]);
    truth_by_kind[kind].push_back(validation.targets[i]);
  }
  for (std::size_t kind = 0; kind < sec_.size(); ++kind)
    sec_[kind].fit(pred_by_kind[kind], truth_by_kind[kind], eps_fraction,
                   min_points);
}

void ptm_model::save(std::ostream& out) const {
  const std::uint8_t arch = static_cast<std::uint8_t>(config_.arch);
  const std::uint64_t time_steps = config_.time_steps;
  const std::uint8_t is_trained = trained_ ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&arch), sizeof arch);
  out.write(reinterpret_cast<const char*>(&time_steps), sizeof time_steps);
  out.write(reinterpret_cast<const char*>(&is_trained), sizeof is_trained);
  if (config_.arch == ptm_arch::attention)
    attention_net_.save(out);
  else
    mlp_net_.save(out);
  feature_scaler_.save(out);
  target_scaler_.save(out);
  for (const auto& table : sec_) table.save(out);
}

void ptm_model::load(std::istream& in) {
  std::uint8_t arch = 0, is_trained = 0;
  std::uint64_t time_steps = 0;
  in.read(reinterpret_cast<char*>(&arch), sizeof arch);
  in.read(reinterpret_cast<char*>(&time_steps), sizeof time_steps);
  in.read(reinterpret_cast<char*>(&is_trained), sizeof is_trained);
  if (!in) throw std::runtime_error{"ptm_model::load: truncated stream"};
  config_.arch = static_cast<ptm_arch>(arch);
  config_.time_steps = static_cast<std::size_t>(time_steps);
  if (config_.arch == ptm_arch::attention)
    attention_net_.load(in);
  else
    mlp_net_.load(in);
  feature_scaler_.load(in);
  target_scaler_.load(in);
  for (auto& table : sec_) table.load(in);
  trained_ = is_trained != 0;
}

}  // namespace dqn::core
