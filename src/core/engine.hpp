// SInit + SRun (§3.1.1): composes trained device models along the target
// topology into a DeepQueueNet model (Figure 1) and executes it.
//
// Execution is the Iterative Re-Sequencing Algorithm (IRSA, Algorithm 1):
// every device repeatedly re-infers its egress streams from its upstream
// neighbours' previous-iteration egress streams until the network reaches a
// fixed point; Theorem 3.1 bounds the iterations by the topology diameter.
// Devices whose ingress did not change between iterations are skipped, so
// feed-forward cuts of the topology converge in their hop depth.
//
// Parallelism: the device set is sharded across `partitions` persistent
// worker threads — the CPU analogue of the paper's model-parallel multi-GPU
// inference (Figure 11; DESIGN.md §2). Shards are built topology-aware by
// default (topo/sharding.hpp: BFS-grown clusters minimizing cross-shard
// links, MimicNet-style), device batches are the stealable unit
// (util/work_stealing_pool.hpp rebalances stragglers within an IRSA
// iteration), and iteration state is double-buffered so the per-packet path
// takes no locks. Delivery records are bit-identical across shard counts and
// strategies (tests/test_determinism.cpp).
#pragma once

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/device_model.hpp"
#include "des/records.hpp"
#include "des/run_api.hpp"
#include "obs/telemetry/telemetry_config.hpp"
#include "topo/graph.hpp"
#include "topo/routing.hpp"
#include "topo/sharding.hpp"
#include "util/work_stealing_pool.hpp"

namespace dqn::obs {
class metric_registry;
class sink;
}  // namespace dqn::obs

namespace dqn::core {

// Engine configuration. Remains an aggregate — brace/designated init keeps
// working — but the preferred construction style is the documented builder
// chain:
//
//   auto cfg = core::engine_config{}
//                  .with_partitions(4)
//                  .with_sec(false)
//                  .with_sink(&sink);
struct engine_config {
  std::size_t partitions = 1;      // "number of GPUs"
  std::size_t max_iterations = 0;  // 0 = 1 + diameter(G) (Theorem 3.1)
  bool apply_sec = true;           // §6.1 ablation hook
  double convergence_epsilon = 1e-9;
  bool record_hops = false;        // per-device predicted hops (visibility)
  // Model host NICs as single-queue FIFO devices (the DES does): the PTM
  // predicts the NIC queueing each injected stream experiences before its
  // first link. Computed once — injections are fixed across IRSA iterations.
  bool model_host_nics = true;
  // Skip re-inferring devices whose ingress did not change since the last
  // iteration (a work-saving refinement over the paper's Algorithm 1, which
  // recomputes every device each iteration). Disable to measure the paper's
  // execution profile — with the skip, late iterations run only a few
  // devices and parallel speedup is Amdahl-limited.
  bool irsa_skip_unchanged = true;
  // Optional observability (obs/sink.hpp): per-iteration IRSA timings and
  // convergence deltas, per-partition busy time, skip counts, and the full
  // engine_stats re-expressed as registry metrics. Null = zero-overhead.
  obs::sink* sink = nullptr;
  // Which sojourn backend the run rides on (core/delay_provider.hpp): the
  // paper's PTM (default), the queueing-theoretic closed forms, or the
  // tiered policy that routes each device by utilization. A run_request may
  // override this per run (des::run_request::delay).
  des::delay_policy delay;
  // Opt-in live telemetry (obs/telemetry/): with enabled == true and a
  // non-null sink, run() idempotently starts the sink's background sampler
  // (and, when telemetry.metrics_port >= 0, the /metrics endpoint) before
  // the first IRSA iteration. Default-off: zero threads, zero overhead.
  obs::telemetry::telemetry_config telemetry;
  // How devices are assigned to workers (topo/sharding.hpp). `topology`
  // (default) BFS-grows connected shards that minimize cross-shard links;
  // `round_robin` is the legacy interleaving, kept as the determinism
  // reference. Either way results are bit-identical — the strategy only
  // decides where a device is computed.
  topo::shard_strategy sharding = topo::shard_strategy::topology;
  // Pin worker w to core w % hardware_concurrency (Linux; graceful no-op
  // elsewhere). Helps on dedicated many-core boxes by keeping each shard's
  // working set on one core's cache; hurts on oversubscribed machines.
  bool pin_threads = false;
  // Devices per stealable batch. 0 = auto: shards split into ~4 batches per
  // worker, small enough that a straggling shard rebalances within an IRSA
  // iteration, large enough that deque traffic stays off the profile.
  std::size_t steal_batch = 0;

  // Number of parallel inference partitions ("GPUs"); must be >= 1.
  engine_config& with_partitions(std::size_t n) noexcept {
    partitions = n;
    return *this;
  }
  // Iteration cap; 0 restores the 1 + diameter(G) bound of Theorem 3.1.
  engine_config& with_max_iterations(std::size_t n) noexcept {
    max_iterations = n;
    return *this;
  }
  // Enable/disable statistical error correction (§6.1 ablation).
  engine_config& with_sec(bool enabled) noexcept {
    apply_sec = enabled;
    return *this;
  }
  // Fixed-point tolerance on per-packet egress times.
  engine_config& with_convergence_epsilon(double eps) noexcept {
    convergence_epsilon = eps;
    return *this;
  }
  // Record per-device predicted hops into the run_result (visibility).
  engine_config& with_hop_records(bool enabled) noexcept {
    record_hops = enabled;
    return *this;
  }
  // Model host NICs as single-queue FIFO devices.
  engine_config& with_host_nic_model(bool enabled) noexcept {
    model_host_nics = enabled;
    return *this;
  }
  // Skip devices whose ingress is unchanged since the previous iteration.
  engine_config& with_irsa_skip(bool enabled) noexcept {
    irsa_skip_unchanged = enabled;
    return *this;
  }
  // Attach an observability sink (nullptr detaches).
  engine_config& with_sink(obs::sink* s) noexcept {
    sink = s;
    return *this;
  }
  // Enable the live telemetry plane on the configured sink.
  engine_config& with_telemetry(obs::telemetry::telemetry_config t) {
    telemetry = std::move(t);
    return *this;
  }
  // Install a full delay policy (backend + tiering knobs).
  engine_config& with_delay_policy(des::delay_policy policy) noexcept {
    delay = policy;
    return *this;
  }
  // Select the sojourn backend, keeping the policy's other knobs.
  engine_config& with_delay_backend(des::delay_backend backend) noexcept {
    delay.backend = backend;
    return *this;
  }
  // Select the device-to-worker sharding strategy.
  engine_config& with_sharding(topo::shard_strategy strategy) noexcept {
    sharding = strategy;
    return *this;
  }
  // Pin worker threads to cores (Linux best-effort).
  engine_config& with_pinning(bool enabled) noexcept {
    pin_threads = enabled;
    return *this;
  }
  // Devices per stealable batch (0 = auto).
  engine_config& with_steal_batch(std::size_t devices) noexcept {
    steal_batch = devices;
    return *this;
  }
};

struct engine_stats {
  std::size_t iterations = 0;          // IRSA iterations actually run
  std::size_t device_inferences = 0;   // devices (re)computed across iterations
  std::size_t devices_skipped = 0;     // IRSA-skip hits across iterations
  std::size_t workers = 1;             // worker threads the run executed on
  std::uint64_t steals = 0;            // work-stealing rebalances across iterations
  // Device-device links whose endpoints landed on different workers (the
  // boundary-exchange cut of the run's shard plan; see topo/sharding.hpp).
  std::size_t cross_shard_links = 0;
  double wall_seconds = 0;             // measured wall clock of run()
  // CPU-time accounting: total CPU time spent inside shard work, and its
  // critical path (sum over iterations of the slowest worker's CPU time).
  double busy_seconds = 0;
  double critical_path_seconds = 0;
  // How unevenly iteration work landed after stealing: 0 = every worker
  // equally busy, 1 = the slowest worker carried twice its fair share
  // (critical_path * workers / busy - 1, clamped at 0).
  double shard_imbalance = 0;

  // DIAGNOSTIC ONLY. The pre-sharded engine ran partitions thread-per-core
  // on one core and *projected* multi-core wall time from per-thread CPU
  // clocks; `wall_seconds` is now genuinely parallel, so the projection
  // survives only to sanity-check measurements (projected ≈ measured when
  // >= `workers` cores are free). Table 7 and the CI perf gate use measured
  // wall time.
  [[nodiscard]] double projected_wall_seconds() const noexcept {
    return wall_seconds - busy_seconds + critical_path_seconds;
  }

  // engine_stats is re-expressed on top of the obs registry: publish writes
  // every field as an "engine.*" counter/gauge, and from_registry
  // reconstructs an identical struct from those metrics (the struct is a
  // cached view; the registry is the source of truth when a sink is wired).
  void publish(obs::sink& sink) const;
  [[nodiscard]] static engine_stats from_registry(const obs::metric_registry& registry);
};

// Lifecycle: construct -> [set_device_context]* -> run() -> {stats(),
// egress_stream()}; run() may be called again with new streams (each run
// resets stats and egress state). Misuse is rejected loudly rather than
// silently degraded:
//  * set_device_context after the first run() throws std::logic_error
//    (overrides would not apply retroactively to completed runs);
//  * egress_stream before any run() throws std::logic_error;
//  * egress_stream with a node/port outside the topology throws
//    std::out_of_range naming the offending coordinates.
class dqn_network : public des::estimator {
 public:
  dqn_network(const topo::topology& topo, const topo::routing& routes,
              std::shared_ptr<const ptm_model> ptm, scheduler_context ctx,
              engine_config config);

  // Heterogeneous TM deployments: override the scheduler context of
  // individual devices (mirrors des::network_config::tm_overrides). Must be
  // called before the first run(); throws std::logic_error afterwards.
  void set_device_context(topo::node_id node, scheduler_context ctx);

  // Same contract as des::network::run: host_streams[i] feeds
  // topo.hosts()[i], src/dst are host indices. Returns delivery records (and
  // hop records when record_hops is set) comparable 1:1 with the DES.
  [[nodiscard]] des::run_result run(
      const std::vector<traffic::packet_stream>& host_streams, double horizon);

  // Unified estimator contract (des/run_api.hpp); a non-null request.sink
  // overrides the configured sink for this run.
  [[nodiscard]] des::run_result run(const des::run_request& request) override;
  [[nodiscard]] const char* estimator_name() const noexcept override {
    return "deepqueuenet";
  }

  [[nodiscard]] const engine_stats& stats() const noexcept { return stats_; }

  // The sojourn backend the next run() will dispatch through (selected by
  // engine_config::delay, or per run by run_request::delay_policy).
  [[nodiscard]] const delay_provider& provider() const noexcept {
    return *provider_;
  }

  // Packet-level visibility: the final egress stream of any device port.
  // Valid only after run(); out-of-range (node, port) throws.
  [[nodiscard]] const traffic::packet_stream& egress_stream(topo::node_id node,
                                                            std::size_t port) const;

 private:
  [[nodiscard]] traffic::packet_stream ingress_of(
      const std::vector<std::vector<traffic::packet_stream>>& egress,
      topo::node_id node, std::size_t port) const;

  // Reuse pool_ when its shape matches; (re)build it otherwise. The pool —
  // and its parked worker threads — survives across run() calls, so repeated
  // runs and all IRSA iterations share one thread-creation cost.
  util::work_stealing_pool& ensure_pool(std::size_t workers);

  const topo::topology* topo_;
  const topo::routing* routes_;
  std::shared_ptr<const ptm_model> ptm_;
  std::unique_ptr<delay_provider> provider_;
  device_model device_;
  device_model host_nic_;  // FIFO NIC model for host uplinks
  std::unordered_map<topo::node_id, device_model> device_overrides_;
  engine_config config_;
  engine_stats stats_;
  bool ran_ = false;
  std::unique_ptr<util::work_stealing_pool> pool_;
  std::vector<std::vector<traffic::packet_stream>> final_egress_;
};

}  // namespace dqn::core
