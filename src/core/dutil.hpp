// Device Model Utilities (DUtil, §3.1.1): produce trained device models.
//
// Training data comes from single-device DES runs exactly as §5.2 describes:
// packet streams over a K-port switch with random routing schemes, arrival
// processes drawn from {MAP, Poisson, On-Off}, per-port load factors in
// [0.1, 0.8], schedulers among {FIFO, SP, DRR, WFQ} with priorities 1..3 and
// weights 1..9. Counts are CPU-scaled; the paper's 3,500-stream corpus is a
// configuration away.
#pragma once

#include <functional>
#include <vector>

#include "core/ptm.hpp"
#include "des/single_device.hpp"
#include "des/traffic_manager.hpp"
#include "util/rng.hpp"

namespace dqn::core {

struct dutil_config {
  std::size_t ports = 4;  // K
  std::vector<des::scheduler_kind> schedulers = {
      des::scheduler_kind::fifo, des::scheduler_kind::sp,
      des::scheduler_kind::drr, des::scheduler_kind::wfq};
  std::size_t classes = 3;         // multi-class disciplines use up to this many
  std::size_t streams = 48;        // training stream samples (paper: 3,500)
  std::size_t packets_per_stream = 1500;  // approximate packets per sample
  double load_lo = 0.1;            // §5.2 load-factor range
  double load_hi = 0.8;
  double bandwidth_bps = 10e9;
  std::size_t flows_per_port = 2;
  double validation_fraction = 0.2;  // §5.2: train on 80%, evaluate on 20%
  ptm_config ptm;
  std::uint64_t seed = 42;
  // Optional observability: train_device_model times its corpus-generation,
  // training, and SEC-fit phases and counts streams/windows produced; the
  // sink is also forwarded to ptm_config.sink (unless one is already set)
  // so per-epoch training metrics land in the same place. Null = no-op.
  obs::sink* sink = nullptr;
};

// One randomly-configured single-switch stream sample: its windows/targets
// plus the configuration that generated it (for exogenous evaluation).
struct stream_sample {
  ptm_dataset data;
  des::scheduler_kind scheduler = des::scheduler_kind::fifo;
  double load = 0;
};

// Generate one sample with the given scheduler (or a random one from the
// config when `scheduler` is nullptr).
[[nodiscard]] stream_sample generate_stream_sample(
    const dutil_config& config, util::rng& rng,
    const des::scheduler_kind* scheduler = nullptr,
    const double* load_override = nullptr);

struct device_model_bundle {
  ptm_model model;
  training_report report;
  ptm_dataset validation;  // the held-out 20%
};

// The full DUtil pipeline: generate the corpus, split 80/20, train, fit SEC.
[[nodiscard]] device_model_bundle train_device_model(
    const dutil_config& config,
    const std::function<void(std::size_t, double)>& on_epoch = {});

// Normalized w1 of the (SEC-corrected) model on a dataset — the Table 2
// metric: W1(prediction, label) / W1(0, label).
[[nodiscard]] double evaluate_w1(const ptm_model& model, const ptm_dataset& data,
                                 bool apply_sec = true);

}  // namespace dqn::core
