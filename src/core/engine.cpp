#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "des/run_recorder.hpp"
#include "nn/kernels/gemm.hpp"
#include "nn/workspace.hpp"
#include "obs/journey.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "util/check.hpp"
#include "util/keyed_vector.hpp"
#include "util/stopwatch.hpp"

namespace dqn::core {

namespace {

bool streams_equal(const traffic::packet_stream& a, const traffic::packet_stream& b,
                   double eps) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].pkt.pid != b[i].pkt.pid) return false;
    if (std::abs(a[i].time - b[i].time) > eps) return false;
  }
  return true;
}

}  // namespace

void engine_stats::publish(obs::sink& sink) const {
  sink.count("engine.iterations", static_cast<double>(iterations));
  sink.count("engine.device_inferences", static_cast<double>(device_inferences));
  sink.count("engine.devices_skipped", static_cast<double>(devices_skipped));
  sink.count("engine.steals", static_cast<double>(steals));
  sink.gauge("engine.workers", static_cast<double>(workers));
  sink.gauge("engine.cross_shard_links", static_cast<double>(cross_shard_links));
  sink.gauge("engine.wall_seconds", wall_seconds);
  sink.gauge("engine.busy_seconds", busy_seconds);
  sink.gauge("engine.critical_path_seconds", critical_path_seconds);
  sink.gauge("engine.shard_imbalance", shard_imbalance);
  sink.gauge("engine.projected_wall_seconds", projected_wall_seconds());
}

engine_stats engine_stats::from_registry(const obs::metric_registry& registry) {
  engine_stats stats;
  stats.iterations = static_cast<std::size_t>(registry.counter("engine.iterations"));
  stats.device_inferences =
      static_cast<std::size_t>(registry.counter("engine.device_inferences"));
  stats.devices_skipped =
      static_cast<std::size_t>(registry.counter("engine.devices_skipped"));
  stats.steals = static_cast<std::uint64_t>(registry.counter("engine.steals"));
  stats.workers = static_cast<std::size_t>(registry.gauge("engine.workers"));
  stats.cross_shard_links =
      static_cast<std::size_t>(registry.gauge("engine.cross_shard_links"));
  stats.wall_seconds = registry.gauge("engine.wall_seconds");
  stats.busy_seconds = registry.gauge("engine.busy_seconds");
  stats.critical_path_seconds = registry.gauge("engine.critical_path_seconds");
  stats.shard_imbalance = registry.gauge("engine.shard_imbalance");
  return stats;
}

dqn_network::dqn_network(const topo::topology& topo, const topo::routing& routes,
                         std::shared_ptr<const ptm_model> ptm, scheduler_context ctx,
                         engine_config config)
    : topo_{&topo},
      routes_{&routes},
      ptm_{ptm},
      provider_{make_delay_provider(ptm, config.delay)},
      device_{ptm, std::move(ctx)},
      host_nic_{std::move(ptm),
                scheduler_context{des::scheduler_kind::fifo, {},
                                  device_.context().bandwidth_bps}},
      config_{config} {
  DQN_ENSURE(config_.partitions > 0, "dqn_network: partitions >= 1");
}

util::work_stealing_pool& dqn_network::ensure_pool(std::size_t workers) {
  if (pool_ == nullptr || pool_->size() != workers ||
      pool_->pinned() != config_.pin_threads)
    pool_ = std::make_unique<util::work_stealing_pool>(workers,
                                                       config_.pin_threads);
  return *pool_;
}

void dqn_network::set_device_context(topo::node_id node, scheduler_context ctx) {
  if (ran_)
    throw std::logic_error{
        "dqn_network::set_device_context: called after run(); device overrides "
        "must be installed before the first run (they do not apply "
        "retroactively)"};
  (void)topo_->at(node);  // bounds check
  device_overrides_.insert_or_assign(node, device_model{ptm_, std::move(ctx)});
}

traffic::packet_stream dqn_network::ingress_of(
    const std::vector<std::vector<traffic::packet_stream>>& egress,
    topo::node_id node, std::size_t port) const {
  // The ingress of (node, port) is the upstream peer's egress through the
  // connecting link device (Eq. 5).
  const auto peer = topo_->peer_of(node, port);
  const auto& link = topo_->link_at(peer.link_index);
  return apply_link(egress[static_cast<std::size_t>(peer.node)][peer.port],
                    link.bandwidth_bps, link.propagation_delay);
}

des::run_result dqn_network::run(
    const std::vector<traffic::packet_stream>& host_streams, double horizon) {
  const auto hosts = topo_->hosts();
  const auto devices = topo_->devices();
  DQN_ENSURE(host_streams.size() == hosts.size(),
             "dqn_network::run: one stream per host required (got ",
             host_streams.size(), " streams for ", hosts.size(), " hosts)");

  util::stopwatch watch;
  stats_ = {};
  ran_ = true;
  obs::sink* const sink = config_.sink;
  // Opt-in live telemetry: idempotent, so repeated runs against the same
  // sink reuse the already-running sampler/endpoint.
  if (sink != nullptr && config_.telemetry.enabled)
    sink->start_telemetry(config_.telemetry);
  obs::scoped_timer run_timer{sink, "engine", "run"};
  // Hot-path metrics go through pre-resolved handles (lock-free to record);
  // journey tracing is active only when the sink's tracer was configured.
  obs::histogram_handle device_seconds_handle;
  obs::histogram_handle partition_busy_handle;
  obs::gauge_handle pool_depth_handle;
  obs::journey_tracer* tracer = nullptr;
  if (sink != nullptr) {
    device_seconds_handle =
        sink->histogram_handle_for("engine.device_infer_seconds");
    partition_busy_handle =
        sink->histogram_handle_for("engine.partition_busy_seconds");
    pool_depth_handle = sink->gauge_handle_for("engine.pool_queue_depth");
    if (sink->journeys().enabled()) tracer = &sink->journeys();
    // Which GEMM backend this run's inference rides on (selected once at
    // startup; see nn/kernels/gemm.hpp).
    nn::kernels::report_dispatch(*sink);
  }
  // Arm the sojourn backend for this run: resolve its metric handles and
  // size its per-device tiering state (slot 0 = the host-NIC pseudo-device).
  provider_->bind_sink(sink);
  provider_->prepare(topo_->node_count() + 1);

  // SInit: place the injected streams as the hosts' (fixed) egress streams,
  // translating host indices to node ids.
  obs::scoped_timer sinit_timer{sink, "engine", "sinit"};
  std::vector<std::vector<traffic::packet_stream>> egress(topo_->node_count());
  for (std::size_t i = 0; i < topo_->node_count(); ++i)
    egress[i].resize(topo_->port_count(static_cast<topo::node_id>(i)));
  // pid -> send time, feeding the exported delivery records below. A sorted
  // keyed vector rather than an unordered map: delivery export must be
  // deterministic across runs and partition counts, and keyed vectors make
  // any future traversal ordered by construction (dqn-unordered-iteration).
  util::keyed_vector<std::uint64_t, double> send_times;
  // The host-NIC loop runs on this thread; one workspace serves every host.
  nn::workspace host_nic_workspace;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    auto& out = egress[static_cast<std::size_t>(hosts[i])][0];
    for (const auto& ev : host_streams[i]) {
      if (ev.time > horizon) break;
      traffic::packet pkt = ev.pkt;
      pkt.src_host = hosts[i];
      DQN_ENSURE(pkt.dst_host >= 0 &&
                     static_cast<std::size_t>(pkt.dst_host) < hosts.size(),
                 "dqn_network::run: dst_host ", pkt.dst_host,
                 " out of range for ", hosts.size(), " hosts (pid ", pkt.pid,
                 ")");
      pkt.dst_host = hosts[static_cast<std::size_t>(pkt.dst_host)];
      send_times.push_back(pkt.pid, ev.time);
      if (tracer != nullptr && tracer->sampled(pkt.pid))
        tracer->record_send(pkt.pid, pkt.flow_id, ev.time);
      out.push_back({pkt, ev.time});
    }
    if (config_.model_host_nics && !out.empty()) {
      // NIC queueing prediction: the host's single FIFO egress queue at the
      // access link's rate.
      const double nic_bps =
          topo_->link_at(topo_->at(hosts[i]).links[0]).bandwidth_bps;
      const double bandwidths[1] = {nic_bps};
      auto egress_streams = host_nic_.process(
          {out}, [](std::uint32_t, std::size_t) { return std::size_t{0}; },
          config_.apply_sec, nullptr, nullptr, bandwidths, nullptr, sink,
          &host_nic_workspace, provider_.get(), /*device_id=*/-1,
          /*iteration=*/0);
      out = std::move(egress_streams[0]);
    }
  }
  send_times.finalize();
  sinit_timer.stop();

  // Per-device cached ingress (for skip detection), hop records, and drops.
  std::vector<std::vector<traffic::packet_stream>> last_ingress(topo_->node_count());
  std::vector<std::vector<predicted_hop>> device_hops(topo_->node_count());
  std::vector<std::vector<traffic::packet>> device_drops(topo_->node_count());

  const std::size_t max_iterations =
      config_.max_iterations > 0 ? config_.max_iterations : 1 + topo_->diameter();

  // Shard the devices across the persistent worker pool. The topology
  // strategy (default) BFS-grows connected shards so boundary windows mostly
  // stay worker-local; round_robin remains the legacy interleaving. Results
  // are identical either way — the shard only decides where a device runs.
  const std::size_t workers =
      std::max<std::size_t>(1, std::min(config_.partitions, devices.size()));
  util::work_stealing_pool& pool = ensure_pool(workers);
  const topo::shard_plan plan =
      topo::shard_devices(*topo_, devices, workers, config_.sharding);
  stats_.workers = workers;
  stats_.cross_shard_links = plan.cross_shard_links;

  // Chop each shard into contiguous device batches — the stealable unit. A
  // worker drains its own shard in BFS order (cache-warm neighbourhoods) and
  // steals batches from stragglers; ~4 batches per worker by default keeps
  // rebalancing possible without measurable deque traffic.
  const std::size_t batch_size =
      config_.steal_batch > 0
          ? config_.steal_batch
          : std::max<std::size_t>(1, devices.size() / (workers * 4));
  std::vector<std::vector<std::size_t>> batches;  // batch -> device indices
  std::vector<std::vector<std::size_t>> seeds(workers);
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    const auto& shard = plan.shards[s];
    for (std::size_t start = 0; start < shard.size(); start += batch_size) {
      const auto end = std::min(shard.size(), start + batch_size);
      seeds[s].push_back(batches.size());
      batches.emplace_back(
          shard.begin() + static_cast<std::ptrdiff_t>(start),
          shard.begin() + static_cast<std::ptrdiff_t>(end));
    }
  }

  std::vector<std::uint8_t> changed(devices.size(), 0);
  std::vector<std::size_t> worker_inferences(workers, 0);
  std::vector<std::size_t> worker_skips(workers, 0);
  // One inference workspace per worker, alive across devices and IRSA
  // iterations: after the first pass the arenas have grown to their
  // high-water shapes and the PTM forward path stops allocating entirely.
  // Stealing moves a batch to another worker's workspace, which only
  // affects arena warmth, never numerics.
  std::vector<nn::workspace> worker_workspaces(workers);
  std::vector<double> worker_busy(workers, 0.0);
  std::vector<std::size_t> iteration_inferences(workers, 0);
  // Shard event labels, built once per run (the event path is per
  // iteration x worker — allocating labels there is measurable on large
  // topologies).
  std::vector<std::string> shard_labels;
  shard_labels.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    shard_labels.push_back("shard_" + std::to_string(w));
  if (sink != nullptr)
    sink->gauge("engine.steal_batch_devices", static_cast<double>(batch_size));

  // Double-buffered boundary exchange: devices read iteration t-1 state
  // (Algorithm 1 "pull the packet flows from iteration t-1") from the read
  // buffer and write t state into their own slot of the write buffer —
  // exclusively theirs, so the per-packet path takes no locks. Buffers swap
  // at the iteration barrier. Host slots are seeded identically in both
  // buffers once (host egress is fixed across iterations); device slots are
  // either freshly inferred or copied from the read buffer on an IRSA skip,
  // so the write buffer never leaks t-2 state.
  auto egress_other = egress;
  auto* read_buffer = &egress;
  auto* write_buffer = &egress_other;

  for (std::size_t iteration = 0; iteration < max_iterations; ++iteration) {
    obs::scoped_timer iteration_timer{sink, "engine", "iteration", iteration};
    std::fill(changed.begin(), changed.end(), std::uint8_t{0});
    std::fill(worker_busy.begin(), worker_busy.end(), 0.0);
    std::fill(iteration_inferences.begin(), iteration_inferences.end(),
              std::size_t{0});
    const auto& read = *read_buffer;
    auto& write = *write_buffer;

    // Worker spans cannot see the main thread's span stack, so the
    // iteration span's id is passed in as the explicit parent.
    const std::uint64_t iteration_span = iteration_timer.id();
    const util::work_stealing_pool::task_fn infer_batch = [&](std::size_t batch,
                                                              std::size_t worker) {
      // Sampled per batch (not per device) from inside the workers so the
      // background telemetry sampler sees mid-iteration depth, not the
      // post-barrier zero.
      pool_depth_handle.set(static_cast<double>(pool.remaining()));
      const double cpu_start = util::thread_cpu_seconds();
      for (const std::size_t d : batches[batch]) {
        const topo::node_id node = devices[d];
        const auto n = static_cast<std::size_t>(node);
        obs::scoped_span device_span{sink,
                                     "engine",
                                     "device",
                                     static_cast<std::uint64_t>(node),
                                     0.0,
                                     iteration_span};
        const std::size_t ports = topo_->port_count(node);
        std::vector<traffic::packet_stream> ingress(ports);
        std::vector<double> port_bandwidths(ports);
        for (std::size_t p = 0; p < ports; ++p) {
          ingress[p] = ingress_of(read, node, p);
          port_bandwidths[p] =
              topo_->link_at(topo_->at(node).links[p]).bandwidth_bps;
        }
        // IRSA skip: unchanged ingress => unchanged egress. The write
        // buffer still needs this device's t-1 state (it holds t-2).
        if (config_.irsa_skip_unchanged && last_ingress[n].size() == ports) {
          bool same = true;
          for (std::size_t p = 0; p < ports && same; ++p)
            same = streams_equal(ingress[p], last_ingress[n][p],
                                 config_.convergence_epsilon);
          if (same) {
            write[n] = read[n];
            ++worker_skips[worker];
            continue;
          }
        }
        // Destination-based forwarding needs the packet's dst, so bind a
        // per-device forward over (fid -> dst) collected from the ingress
        // (a keyed vector: deterministic, and cheaper to build + probe than
        // a hash map at per-device ingress sizes).
        util::keyed_vector<std::uint32_t, topo::node_id> flow_dst;
        for (const auto& stream : ingress)
          for (const auto& ev : stream)
            flow_dst.push_back(ev.pkt.flow_id, ev.pkt.dst_host);
        flow_dst.finalize();
        auto forward_by_flow = [this, node, &flow_dst](std::uint32_t fid,
                                                       std::size_t) {
          return routes_->egress_port(node, flow_dst.at(fid), fid);
        };
        std::vector<predicted_hop>* hops = nullptr;
        if (config_.record_hops) {
          device_hops[n].clear();
          hops = &device_hops[n];
        }
        const device_model* model = &device_;
        if (const auto it = device_overrides_.find(node);
            it != device_overrides_.end())
          model = &it->second;
        device_drops[n].clear();
        const journey_capture capture{tracer, static_cast<std::int64_t>(node)};
        write[n] = model->process(ingress, forward_by_flow, config_.apply_sec,
                                  hops, &device_drops[n], port_bandwidths,
                                  tracer != nullptr ? &capture : nullptr, sink,
                                  &worker_workspaces[worker], provider_.get(),
                                  static_cast<std::int64_t>(node), iteration);
        device_span.set_value(1.0);  // 1 = inferred (skips end with value 0)
        device_seconds_handle.observe(device_span.stop());
        ++worker_inferences[worker];
        ++iteration_inferences[worker];
        bool did_change = false;
        for (std::size_t p = 0; p < ports && !did_change; ++p)
          did_change = !streams_equal(write[n][p], read[n][p],
                                      config_.convergence_epsilon);
        changed[d] = did_change ? 1 : 0;
        last_ingress[n] = std::move(ingress);
      }
      worker_busy[worker] += util::thread_cpu_seconds() - cpu_start;
    };
    stats_.steals += pool.run_round(seeds, infer_batch);

    double iteration_max = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      const double busy = worker_busy[w];
      stats_.busy_seconds += busy;
      iteration_max = std::max(iteration_max, busy);
      if (sink != nullptr) {
        // Per-worker device-inference timing: one event per (iteration,
        // worker), duration = CPU busy time, value = devices inferred.
        sink->event("engine", shard_labels[w], iteration, sink->now() - busy,
                    busy, static_cast<double>(iteration_inferences[w]));
        partition_busy_handle.observe(busy);
      }
    }
    stats_.critical_path_seconds += iteration_max;

    std::swap(read_buffer, write_buffer);
    ++stats_.iterations;
    const auto changed_devices = static_cast<std::size_t>(
        std::count_if(changed.begin(), changed.end(),
                      [](std::uint8_t c) { return c != 0; }));
    if (sink != nullptr) {
      // Convergence delta: how many devices still changed this iteration —
      // the IRSA fixed point is reached when this hits zero.
      iteration_timer.set_value(static_cast<double>(changed_devices));
      sink->gauge("engine.last_changed_devices",
                  static_cast<double>(changed_devices));
    }
    if (changed_devices == 0 && iteration > 0) break;
  }
  for (std::size_t count : worker_inferences) stats_.device_inferences += count;
  for (std::size_t count : worker_skips) stats_.devices_skipped += count;
  // 0 = perfectly balanced; clamp against CPU-clock jitter on tiny runs.
  if (stats_.busy_seconds > 0)
    stats_.shard_imbalance =
        std::max(0.0, stats_.critical_path_seconds *
                              static_cast<double>(workers) /
                              stats_.busy_seconds -
                          1.0);

  // After the final swap the read buffer holds the fixed point.
  const auto& final_state = *read_buffer;

  // Collect deliveries: the ingress streams of host nodes.
  des::run_result result;
  for (const auto& drops : device_drops)
    result.drops += drops.size();
  for (const topo::node_id host : hosts) {
    const traffic::packet_stream inbound = ingress_of(final_state, host, 0);
    for (const auto& ev : inbound) {
      if (ev.pkt.dst_host != host) continue;
      des::delivery_record d;
      d.pid = ev.pkt.pid;
      d.flow_id = ev.pkt.flow_id;
      d.src = ev.pkt.src_host;
      d.dst = ev.pkt.dst_host;
      d.send_time = send_times.at(ev.pkt.pid);
      d.delivery_time = ev.time;
      if (tracer != nullptr && tracer->sampled(ev.pkt.pid))
        tracer->record_delivery(ev.pkt.pid, ev.time);
      result.deliveries.push_back(d);
    }
  }
  std::sort(result.deliveries.begin(), result.deliveries.end(),
            [](const des::delivery_record& a, const des::delivery_record& b) {
              if (a.delivery_time != b.delivery_time)
                return a.delivery_time < b.delivery_time;
              return a.pid < b.pid;
            });

  if (config_.record_hops) {
    for (const topo::node_id node : devices) {
      for (const auto& hop : device_hops[static_cast<std::size_t>(node)]) {
        des::hop_record h;
        h.pid = hop.pid;
        h.device = node;
        h.out_port = hop.out_port;
        h.arrival = hop.arrival;
        h.departure = hop.departure;
        result.hops.push_back(h);
      }
    }
  }

  final_egress_ = std::move(*read_buffer);
  run_timer.stop();
  stats_.wall_seconds = watch.elapsed_seconds();
  result.wall_seconds = stats_.wall_seconds;
  if (sink != nullptr) {
    stats_.publish(*sink);
    provider_->publish(*sink);
    sink->count("engine.deliveries", static_cast<double>(result.deliveries.size()));
    sink->count("engine.drops", static_cast<double>(result.drops));
  }
  return result;
}

des::run_result dqn_network::run(const des::run_request& request) {
  DQN_ENSURE(request.host_streams != nullptr,
             "dqn_network::run: request.host_streams is null");
  obs::sink* const saved = config_.sink;
  if (request.sink != nullptr) config_.sink = request.sink;
  const des::delay_backend backend =
      request.delay.has_value() ? request.delay->backend
                                : config_.delay.backend;
  des::run_recorder recorder{config_.sink, estimator_name(),
                             des::to_string(backend)};
  // A per-run delay policy swaps in a fresh provider for this run only,
  // restored alongside the sink (the same save/swap/restore contract).
  std::unique_ptr<delay_provider> saved_provider;
  if (request.delay.has_value()) {
    saved_provider = std::move(provider_);
    provider_ = make_delay_provider(ptm_, *request.delay);
  }
  // Per-run worker override (run_request::threads), same contract: the
  // configured partition count is restored when the run returns. The
  // persistent pool is rebuilt lazily by ensure_pool when the size changes.
  const std::size_t saved_partitions = config_.partitions;
  if (request.threads > 0) config_.partitions = request.threads;
  const auto restore = [&] {
    config_.sink = saved;
    config_.partitions = saved_partitions;
    if (saved_provider != nullptr) provider_ = std::move(saved_provider);
  };
  try {
    des::run_result result = run(*request.host_streams, request.horizon);
    recorder.complete(result);
    restore();
    return result;
  } catch (...) {
    restore();
    throw;
  }
}

const traffic::packet_stream& dqn_network::egress_stream(topo::node_id node,
                                                         std::size_t port) const {
  if (final_egress_.empty())
    throw std::logic_error{
        "dqn_network::egress_stream: no completed run; call run() before "
        "reading egress traces"};
  DQN_CHECK_RANGE(node, final_egress_.size());
  DQN_CHECK(port < final_egress_[static_cast<std::size_t>(node)].size(),
            "dqn_network::egress_stream: port ", port,
            " out of range for node ", node, " (",
            final_egress_[static_cast<std::size_t>(node)].size(), " ports)");
  return final_egress_[static_cast<std::size_t>(node)][port];
}

}  // namespace dqn::core
