#include "core/features.hpp"

#include <algorithm>
#include <array>

#include "util/check.hpp"

namespace dqn::core {

double scheduler_context::weight_of(const traffic::packet& pkt) const {
  if (class_weights.empty()) return 1.0;
  const std::size_t klass =
      std::min<std::size_t>(pkt.priority, class_weights.size() - 1);
  return class_weights[klass];
}

std::vector<double> compute_features(const traffic::packet_stream& arrivals,
                                     const scheduler_context& ctx) {
  std::vector<double> rows(arrivals.size() * feature_count, 0.0);
  // One extra slot holds the total across all classes.
  constexpr std::size_t max_classes = 16;
  double ema_bytes = 0;
  double ema_rate = 0;
  double unfinished = 0;  // Lindley recursion over the egress line
  // Per-class cumulative work W[c] = unfinished work contributed by classes
  // <= c, each drained at the full line rate (work conservation).
  std::array<double, max_classes> class_work{};
  std::array<double, max_classes> own_only_work{};
  // Precompute per-class GPS shares from the weight table (1 for FIFO/SP).
  std::array<double, max_classes> gps_share;
  gps_share.fill(1.0);
  if (!ctx.class_weights.empty()) {
    double weight_total = 0;
    for (double w : ctx.class_weights) weight_total += w;
    for (std::size_t c = 0; c < max_classes; ++c) {
      const std::size_t clamped = std::min(c, ctx.class_weights.size() - 1);
      gps_share[c] = ctx.class_weights[clamped] / weight_total;
    }
  }
  double prev_service = 0;
  double prev_time = arrivals.empty() ? 0.0 : arrivals.front().time;
  bool first = true;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const auto& ev = arrivals[i];
    const double len = ev.pkt.size_bytes;
    const double iat = first ? 0.0 : std::max(0.0, ev.time - prev_time);
    prev_time = ev.time;
    if (!first) {
      unfinished = std::max(0.0, unfinished + prev_service - iat);
      for (auto& w : class_work) w = std::max(0.0, w - iat);
      for (auto& w : own_only_work) w = std::max(0.0, w - iat);
    }
    prev_service = len * 8.0 / ctx.bandwidth_bps;
    const std::size_t klass = std::min<std::size_t>(ev.pkt.priority, max_classes - 1);
    const double higher_work = klass == 0 ? 0.0 : class_work[klass - 1];
    const double own_work = class_work[klass];
    const double own_only = own_only_work[klass];
    for (std::size_t c = klass; c < max_classes; ++c)
      class_work[c] += prev_service;
    own_only_work[klass] += prev_service;
    if (first) {
      ema_bytes = len;
      ema_rate = 0;
      first = false;
    } else {
      ema_bytes = workload_smoothing * ema_bytes + (1 - workload_smoothing) * len;
      const double inst_rate = len / std::max(iat, 1e-9);
      ema_rate = workload_smoothing * ema_rate + (1 - workload_smoothing) * inst_rate;
    }
    double* row = rows.data() + i * feature_count;
    row[f_len] = len;
    row[f_iat] = iat;
    row[f_workload_bytes] = ema_bytes;
    row[f_workload_rate] = ema_rate;
    row[f_sched_fifo] = ctx.kind == des::scheduler_kind::fifo ? 1.0 : 0.0;
    row[f_sched_sp] = ctx.kind == des::scheduler_kind::sp ? 1.0 : 0.0;
    row[f_sched_wrr] = ctx.kind == des::scheduler_kind::wrr ? 1.0 : 0.0;
    row[f_sched_drr] = ctx.kind == des::scheduler_kind::drr ? 1.0 : 0.0;
    row[f_sched_wfq] = ctx.kind == des::scheduler_kind::wfq ? 1.0 : 0.0;
    row[f_priority] = ev.pkt.priority;
    row[f_weight] = ctx.weight_of(ev.pkt);
    row[f_protocol] = ev.pkt.protocol == 6 ? 1.0 : 0.0;
    row[f_unfinished_work] = unfinished;
    row[f_higher_class_work] = higher_work;
    row[f_own_class_work] = own_work;
    row[f_own_only_work] = own_only;
    row[f_gps_wait] = own_only / gps_share[klass];
  }
  return rows;
}

std::vector<double> make_windows(std::span<const double> feature_rows,
                                 std::size_t time_steps) {
  DQN_ENSURE(time_steps > 0, "make_windows: time_steps >= 1");
  DQN_ENSURE(feature_rows.size() % feature_count == 0, "make_windows: ",
             feature_rows.size(), " rows not a multiple of feature_count ",
             feature_count);
  const std::size_t n = feature_rows.size() / feature_count;
  std::vector<double> windows(n * time_steps * feature_count, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < time_steps; ++t) {
      // Window position t corresponds to source row i - (time_steps-1) + t,
      // clamped to 0 (front padding repeats the first packet).
      const std::ptrdiff_t src =
          std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(i) -
                                          static_cast<std::ptrdiff_t>(time_steps - 1) +
                                          static_cast<std::ptrdiff_t>(t));
      std::copy_n(feature_rows.data() + static_cast<std::size_t>(src) * feature_count,
                  feature_count,
                  windows.data() + (i * time_steps + t) * feature_count);
    }
  }
  return windows;
}

}  // namespace dqn::core
