// Packet-level traffic-management model (PTM, §3.2.2/§4.2): the per-device
// DNN that predicts each packet's sojourn time (scheduler waiting time) from
// a sliding window of augmented packet features.
//
// Two architectures are provided:
//  * `attention` — the paper's Figure 5 network: BLSTM encoder stack +
//    multi-head self-attention + dense head (Table 1, CPU-scaled widths);
//  * `mlp` — a flattened-window MLP. Same inputs, same targets, ~30x
//    cheaper inference; the default for network-scale simulation on CPU
//    (DESIGN.md §2 documents this GPU→CPU substitution).
#pragma once

#include <array>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "des/traffic_manager.hpp"

#include "core/sec.hpp"
#include "obs/sink.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"
#include "nn/scaler.hpp"
#include "nn/seq_regressor.hpp"
#include "nn/workspace.hpp"

namespace dqn::core {

enum class ptm_arch : std::uint8_t { mlp, attention };

[[nodiscard]] const char* to_string(ptm_arch arch) noexcept;

struct ptm_config {
  ptm_arch arch = ptm_arch::mlp;
  std::size_t time_steps = 21;  // Table 1
  // Attention variant (paper's (200,100) BLSTM scaled for CPU training).
  std::vector<std::size_t> lstm_hidden = {32, 16};
  std::size_t heads = 3;       // Table 1: 3 parallel heads
  std::size_t key_dim = 16;
  std::size_t value_dim = 16;
  std::size_t attention_out = 32;
  // MLP variant.
  std::vector<std::size_t> mlp_hidden = {64, 32};
  // Training (§5.2: Adam, lr 1e-3, batch 256, MSE).
  nn::adam_config adam;
  std::size_t batch_size = 256;
  std::size_t epochs = 12;
  std::uint64_t seed = 7;
  // Optional observability: train() records one "ptm"/"epoch" trace event
  // per epoch (duration = epoch wall time, value = scaled-space MSE) plus
  // gradient-norm and loss histograms. Null = no-op.
  obs::sink* sink = nullptr;
};

// Flattened training data: `windows` is (count, time_steps, feature_count)
// raw (unscaled) features; `targets` are sojourn times in seconds.
struct ptm_dataset {
  std::size_t time_steps = 0;
  std::vector<double> windows;
  std::vector<double> targets;

  [[nodiscard]] std::size_t count() const;
  void append(const ptm_dataset& other);
};

struct training_report {
  std::vector<double> epoch_mse;  // scaled-space MSE per epoch (Figure 7)
  double train_seconds = 0;
};

class ptm_model {
 public:
  ptm_model() = default;
  explicit ptm_model(const ptm_config& config);

  // Train on `data` (fits feature/target scalers first). `on_epoch` is
  // called after each epoch with (epoch, mse).
  training_report train(
      const ptm_dataset& data,
      const std::function<void(std::size_t, double)>& on_epoch = {});

  // Fit the SEC table from held-out data (uncorrected predictions vs truth).
  void fit_sec(const ptm_dataset& validation, double eps_fraction = 0.02,
               std::size_t min_points = 8);

  // Predict sojourn seconds for raw windows; thread-safe (const). SEC is
  // applied when fitted unless `apply_sec` is false (the §6.1 ablation).
  // `raw_out`, if non-null, receives the pre-SEC sojourns (same length as
  // the return value) — the journey tracer reports both so per-packet hops
  // show what SEC changed. When config().sink is set, predict records
  // "sec.corrections" / "sec.relative_correction" through lock-free handles.
  [[nodiscard]] std::vector<double> predict(
      std::span<const double> windows, bool apply_sec = true,
      std::vector<double>* raw_out = nullptr) const;

  // Workspace-taking predict: the entire forward pass (scaled windows, layer
  // activations) runs out of `ws`, so the steady state allocates nothing.
  // The engine hands each partition worker its own workspace; callers that
  // share one across threads get data races. Resets `ws` on entry. When
  // config().sink is set, records the "nn.workspace_bytes" gauge through a
  // pre-resolved handle. The signature-compatible overload above uses a
  // thread_local workspace, keeping predict thread-safe for existing callers.
  [[nodiscard]] std::vector<double> predict(
      std::span<const double> windows, nn::workspace& ws, bool apply_sec = true,
      std::vector<double>* raw_out = nullptr) const;

  [[nodiscard]] const ptm_config& config() const noexcept { return config_; }
  [[nodiscard]] bool trained() const noexcept { return trained_; }
  // SEC is fit per scheduler kind: the residual structure differs between
  // disciplines (Figure 6), so corrections must not cross-contaminate.
  [[nodiscard]] const sec_table& sec(des::scheduler_kind kind) const noexcept {
    return sec_[static_cast<std::size_t>(kind)];
  }

  // Interpretability (attention architecture only): run one raw window
  // through the network and return each head's attention matrix (T x T,
  // row i = the distribution packet i attends over the window). Throws for
  // the MLP architecture. Not thread-safe (uses the training forward pass).
  [[nodiscard]] std::vector<nn::matrix> attention_maps(
      std::span<const double> window);

  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  [[nodiscard]] nn::seq_batch scale_windows(std::span<const double> windows) const;
  // Allocation-free variant: the scaled batch is a workspace slot.
  [[nodiscard]] nn::seq_batch& scale_windows_into(std::span<const double> windows,
                                                  nn::workspace& ws) const;

  ptm_config config_;
  nn::seq_regressor attention_net_;
  nn::mlp mlp_net_;
  nn::min_max_scaler feature_scaler_;
  nn::target_scaler target_scaler_;
  std::array<sec_table, 5> sec_;  // indexed by des::scheduler_kind
  bool trained_ = false;
};

}  // namespace dqn::core
