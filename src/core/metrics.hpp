// Evaluation metrics (§6, Appendix C). The paper reports, per scenario:
//   avgRTT / p99RTT / avgJitter / p99Jitter, each as
//   * a normalized Wasserstein distance w1 between the predicted and
//     ground-truth distributions, computed path-wise, and
//   * a Pearson correlation rho with a 95% CI.
//
// Sampling unit: (flow, time-bucket). Each flow's deliveries are grouped
// into send-time buckets; per bucket we compute the mean / p99 RTT and
// jitter. Bucketing by *send* time pairs predicted and ground-truth samples
// exactly, and yields enough samples for meaningful CIs (Appendix C).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "des/records.hpp"
#include "stats/pearson.hpp"

namespace dqn::core {

// Latency series of every (flow, send-time-bucket) pair, ordered by send
// time within the bucket. The shared sampling unit of all §6 metrics.
using bucket_key = std::pair<std::uint32_t, std::int64_t>;
[[nodiscard]] std::map<bucket_key, std::vector<double>> bucketed_latencies(
    const des::run_result& result, double bucket_seconds);

// Per-bucket KPIs appended to a metric_samples accumulator.
struct metric_samples;
void append_bucket_metrics(const std::vector<double>& latencies, metric_samples& out);

struct metric_samples {
  std::vector<double> avg_rtt;
  std::vector<double> p99_rtt;
  std::vector<double> avg_jitter;
  std::vector<double> p99_jitter;
};

// Compute per-(flow, bucket) samples from a run. Buckets shorter than
// `min_packets_per_bucket` deliveries are skipped.
[[nodiscard]] metric_samples compute_metric_samples(
    const des::run_result& result, double bucket_seconds,
    std::size_t min_packets_per_bucket = 8);

struct metric_comparison {
  double w1_avg_rtt = 0;
  double w1_p99_rtt = 0;
  double w1_avg_jitter = 0;
  double w1_p99_jitter = 0;
  stats::correlation_result rho_avg_rtt;
  stats::correlation_result rho_p99_rtt;
  stats::correlation_result rho_avg_jitter;
  stats::correlation_result rho_p99_jitter;
  std::size_t samples = 0;
};

// Compare prediction vs ground truth. Both runs must come from the same
// ingress streams; samples are paired by (flow, bucket) and unpaired
// buckets are dropped.
[[nodiscard]] metric_comparison compare_runs(const des::run_result& truth,
                                             const des::run_result& prediction,
                                             double bucket_seconds,
                                             std::size_t min_packets_per_bucket = 8);

}  // namespace dqn::core
