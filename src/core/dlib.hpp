// Device Model Library (DLib, §3.1.1): stores and indexes trained device
// models on disk so simulations (and benches) reuse them instead of
// retraining. Keys encode the architecture, port count, and training seed.
#pragma once

#include <cstdio>
#include <exception>
#include <filesystem>
#include <optional>
#include <string>

#include "core/ptm.hpp"

namespace dqn::core {

class device_model_library {
 public:
  // Directory is created if missing. Default honours DQN_MODEL_DIR, falling
  // back to "./dqn_models".
  explicit device_model_library(std::filesystem::path directory = default_directory());

  [[nodiscard]] static std::filesystem::path default_directory();

  // Deterministic key for a trained PTM.
  [[nodiscard]] static std::string model_key(ptm_arch arch, std::size_t ports,
                                             std::uint64_t seed);

  [[nodiscard]] bool contains(const std::string& key) const;
  void store(const std::string& key, const ptm_model& model) const;
  [[nodiscard]] ptm_model fetch(const std::string& key) const;

  // Fetch if present, otherwise call `train`, store, and return the result.
  // A cached file that fails to deserialize (truncated, or written by an
  // older format revision) is treated as a miss and retrained over, not a
  // fatal error — a stale cache must never brick the demo flow.
  template <typename TrainFn>
  [[nodiscard]] ptm_model fetch_or_train(const std::string& key, TrainFn&& train) const {
    if (contains(key)) {
      try {
        return fetch(key);
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "[dlib] cached model %s is unreadable (%s); retraining\n",
                     key.c_str(), e.what());
      }
    }
    ptm_model model = train();
    store(key, model);
    return model;
  }

  [[nodiscard]] const std::filesystem::path& directory() const noexcept {
    return directory_;
  }

 private:
  [[nodiscard]] std::filesystem::path path_for(const std::string& key) const;

  std::filesystem::path directory_;
};

}  // namespace dqn::core
