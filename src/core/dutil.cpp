#include "core/dutil.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

#include "core/features.hpp"
#include "obs/scoped_timer.hpp"
#include "stats/wasserstein.hpp"
#include "traffic/arrivals.hpp"
#include "traffic/packet_size.hpp"

namespace dqn::core {

namespace {

std::unique_ptr<traffic::arrival_process> random_arrivals(double rate,
                                                          util::rng& rng) {
  // §5.2: arrivals follow one of MAP, Poisson, or On-Off.
  switch (rng.uniform_int(3)) {
    case 0:
      return std::make_unique<traffic::poisson_arrivals>(rate);
    case 1: {
      const double p_on = 0.5 / (0.2 + 0.5);
      return std::make_unique<traffic::onoff_arrivals>(p_on / rate);
    }
    default: {
      const double burst = rng.uniform(2.0, 6.0);
      auto process = queueing::map_process::mmpp2(rate / 50.0, rate / 80.0,
                                                  rate * burst, rate / burst);
      process = process.scaled(rate / process.mean_rate());
      return std::make_unique<traffic::map_arrivals>(std::move(process), rng);
    }
  }
}

des::tm_config make_tm(const dutil_config& config, des::scheduler_kind kind,
                       std::size_t classes, util::rng& rng) {
  des::tm_config tm;
  tm.kind = kind;
  tm.classes = kind == des::scheduler_kind::fifo ? 1 : classes;
  if (kind == des::scheduler_kind::wrr || kind == des::scheduler_kind::drr ||
      kind == des::scheduler_kind::wfq) {
    tm.class_weights.resize(tm.classes);
    // §5.2: weights randomly selected from 1 to 9.
    for (auto& w : tm.class_weights)
      w = static_cast<double>(rng.uniform_int(1, 9));
  }
  (void)config;
  return tm;
}

}  // namespace

stream_sample generate_stream_sample(const dutil_config& config, util::rng& rng,
                                     const des::scheduler_kind* scheduler,
                                     const double* load_override) {
  DQN_ENSURE(config.ports > 0, "dutil: ports >= 1");
  stream_sample sample;
  sample.scheduler =
      scheduler != nullptr
          ? *scheduler
          : config.schedulers[rng.uniform_int(config.schedulers.size())];
  sample.load = load_override != nullptr
                    ? *load_override
                    : rng.uniform(config.load_lo, config.load_hi);

  const std::size_t classes =
      sample.scheduler == des::scheduler_kind::fifo ? 1 : config.classes;
  const des::tm_config tm = make_tm(config, sample.scheduler, classes, rng);

  // Random routing scheme (§5.2: 3,500 randomly generated routing schemes):
  // flows_per_port flows per ingress port, each mapped to a random egress.
  const std::size_t k = config.ports;
  const std::size_t flows = k * config.flows_per_port;
  std::vector<std::size_t> flow_out(flows);
  for (auto& out : flow_out) out = rng.uniform_int(k);
  auto forward = [&flow_out](std::uint32_t fid, std::size_t) {
    return flow_out[fid % flow_out.size()];
  };

  // Per-flow class assignment (priority 0..classes-1, §5.2: 1 to 3).
  std::vector<std::uint8_t> flow_class(flows);
  for (auto& c : flow_class)
    c = static_cast<std::uint8_t>(rng.uniform_int(classes));

  // Calibrate per-port rate to the load factor. Load is measured against
  // egress capacity; with uniform random forwarding the per-egress arrival
  // rate equals the per-ingress rate in expectation.
  traffic::trimodal_size sizes;
  const double capacity_pps = config.bandwidth_bps / (8.0 * sizes.mean_size());
  const double port_rate = sample.load * capacity_pps;
  const double flow_rate = port_rate / static_cast<double>(config.flows_per_port);
  const double horizon = static_cast<double>(config.packets_per_stream) /
                         (port_rate * static_cast<double>(k));

  std::vector<traffic::packet_stream> ingress(k);
  std::uint64_t next_pid = 0;
  for (std::size_t port = 0; port < k; ++port) {
    std::vector<traffic::packet_stream> flows_here;
    for (std::size_t f = 0; f < config.flows_per_port; ++f) {
      const auto fid = static_cast<std::uint32_t>(port * config.flows_per_port + f);
      auto arrivals = random_arrivals(flow_rate, rng);
      traffic::packet_stream stream;
      arrivals->reset(rng);
      double t = arrivals->next_interarrival(rng);
      while (t < horizon) {
        traffic::packet p;
        p.pid = next_pid++;
        p.flow_id = fid;
        p.size_bytes = sizes.next_size(rng);
        p.priority = flow_class[fid];
        p.protocol = rng.bernoulli(0.5) ? 6 : 17;
        stream.push_back({p, t});
        t += arrivals->next_interarrival(rng);
      }
      flows_here.push_back(std::move(stream));
    }
    ingress[port] = traffic::merge_streams(std::move(flows_here));
  }

  des::single_switch_config sw;
  sw.ports = k;
  sw.tm = tm;
  sw.bandwidth_bps = config.bandwidth_bps;
  auto result = des::run_single_switch(sw, ingress, forward, horizon);

  // Per egress queue: arrival-ordered series -> features, windows, targets.
  scheduler_context ctx;
  ctx.kind = tm.kind;
  ctx.class_weights = tm.class_weights;
  ctx.bandwidth_bps = config.bandwidth_bps;
  std::vector<std::vector<des::hop_record>> by_egress(k);
  for (const auto& hop : result.hops) by_egress[hop.out_port].push_back(hop);

  sample.data.time_steps = config.ptm.time_steps;
  for (auto& hops : by_egress) {
    if (hops.empty()) continue;
    std::sort(hops.begin(), hops.end(),
              [](const des::hop_record& a, const des::hop_record& b) {
                if (a.arrival != b.arrival) return a.arrival < b.arrival;
                return a.pid < b.pid;
              });
    traffic::packet_stream arrivals;
    arrivals.reserve(hops.size());
    for (const auto& h : hops) {
      traffic::packet p;
      p.pid = h.pid;
      p.flow_id = h.flow_id;
      p.size_bytes = h.size_bytes;
      p.protocol = h.protocol;
      p.priority = h.priority;
      p.weight = h.weight;
      arrivals.push_back({p, h.arrival});
    }
    const auto rows = compute_features(arrivals, ctx);
    auto windows = make_windows(rows, config.ptm.time_steps);
    sample.data.windows.insert(sample.data.windows.end(), windows.begin(),
                               windows.end());
    for (const auto& h : hops)
      sample.data.targets.push_back(h.departure - h.arrival);
  }
  return sample;
}

device_model_bundle train_device_model(
    const dutil_config& config,
    const std::function<void(std::size_t, double)>& on_epoch) {
  util::rng rng{config.seed};
  ptm_dataset train;
  ptm_dataset validation;
  train.time_steps = config.ptm.time_steps;
  validation.time_steps = config.ptm.time_steps;
  // §5.2: 80% of the stream samples train, 20% evaluate. Interleave the
  // split so both sets cover the full scheduler/load mix.
  {
    obs::scoped_timer corpus_timer{config.sink, "dutil", "corpus"};
    const std::size_t period = std::max<std::size_t>(
        2,
        static_cast<std::size_t>(std::lround(1.0 / config.validation_fraction)));
    for (std::size_t s = 0; s < config.streams; ++s) {
      auto sample = generate_stream_sample(config, rng);
      const bool is_validation = s % period == period - 1;
      (is_validation ? validation : train).append(sample.data);
    }
    corpus_timer.set_value(static_cast<double>(config.streams));
  }
  if (train.count() == 0)
    throw std::runtime_error{"train_device_model: no training data produced"};
  if (config.sink != nullptr) {
    config.sink->count("dutil.streams", static_cast<double>(config.streams));
    config.sink->count("dutil.train_windows", static_cast<double>(train.count()));
    config.sink->count("dutil.validation_windows",
                       static_cast<double>(validation.count()));
  }

  device_model_bundle bundle;
  ptm_config ptm_cfg = config.ptm;
  ptm_cfg.seed = util::derive_seed(config.seed, 0x97);
  if (ptm_cfg.sink == nullptr) ptm_cfg.sink = config.sink;
  bundle.model = ptm_model{ptm_cfg};
  {
    obs::scoped_timer train_timer{config.sink, "dutil", "train"};
    bundle.report = bundle.model.train(train, on_epoch);
  }
  if (validation.count() > 0) {
    obs::scoped_timer sec_timer{config.sink, "dutil", "sec_fit"};
    bundle.model.fit_sec(validation);
  }
  bundle.validation = std::move(validation);
  return bundle;
}

double evaluate_w1(const ptm_model& model, const ptm_dataset& data, bool apply_sec) {
  DQN_ENSURE(data.count() > 0, "evaluate_w1: empty dataset");
  const auto predictions = model.predict(data.windows, apply_sec);
  return stats::normalized_w1(predictions, data.targets);
}

}  // namespace dqn::core
