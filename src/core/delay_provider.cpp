#include "core/delay_provider.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/sink.hpp"
#include "queueing/sojourn.hpp"
#include "util/check.hpp"

namespace dqn::core {

namespace {

// Feature rows arrive flattened (n, feature_count).
std::size_t row_count(const device_state& state) {
  DQN_ENSURE(state.feature_rows.size() % feature_count == 0,
             "delay_provider: feature rows not a multiple of feature_count (",
             state.feature_rows.size(), ")");
  return state.feature_rows.size() / feature_count;
}

}  // namespace

void delay_provider::bind_sink(obs::sink* /*sink*/) {}
void delay_provider::prepare(std::size_t /*device_slots*/) {}
void delay_provider::publish(obs::sink& /*sink*/) {}

std::unique_ptr<delay_provider> make_delay_provider(
    std::shared_ptr<const ptm_model> ptm, const des::delay_policy& policy) {
  switch (policy.backend) {
    case des::delay_backend::ptm:
      return std::make_unique<ptm_delay_provider>(std::move(ptm));
    case des::delay_backend::analytical:
      return std::make_unique<analytical_delay_provider>();
    case des::delay_backend::tiered:
      return std::make_unique<tiered_delay_provider>(std::move(ptm), policy);
  }
  throw std::invalid_argument{"make_delay_provider: unknown backend"};
}

// ---------------------------------------------------------------------------
// PTM backend
// ---------------------------------------------------------------------------

ptm_delay_provider::ptm_delay_provider(std::shared_ptr<const ptm_model> ptm)
    : ptm_{std::move(ptm)} {
  if (!ptm_ || !ptm_->trained())
    throw std::invalid_argument{"ptm_delay_provider: needs a trained PTM"};
}

void ptm_delay_provider::bind_sink(obs::sink* sink) {
  latency_seconds_ = sink != nullptr
                         ? sink->histogram_handle_for("delay.ptm_seconds")
                         : obs::histogram_handle{};
}

double ptm_delay_provider::warm_cost_hint() const noexcept {
  // A window prediction is time_steps rows through the transformer + MLP —
  // orders of magnitude above the analytical backend's table read.
  return 64.0 * static_cast<double>(ptm_->config().time_steps);
}

std::vector<double> ptm_delay_provider::predict_windows(
    std::span<const double> windows, bool apply_sec,
    std::vector<double>* raw_out) const {
  return ptm_->predict(windows, apply_sec, raw_out);
}

std::vector<double> ptm_delay_provider::estimate_sojourn(
    const device_state& state, double /*window_seconds*/) {
  const auto windows =
      make_windows(state.feature_rows, ptm_->config().time_steps);
  auto sojourns =
      state.workspace != nullptr
          ? ptm_->predict(windows, *state.workspace, state.apply_sec,
                          state.raw_out)
          : ptm_->predict(windows, state.apply_sec, state.raw_out);
  if (latency_seconds_)
    for (const double s : sojourns) latency_seconds_.observe(s);
  return sojourns;
}

// ---------------------------------------------------------------------------
// Analytical backend
// ---------------------------------------------------------------------------

void analytical_delay_provider::bind_sink(obs::sink* sink) {
  latency_seconds_ =
      sink != nullptr ? sink->histogram_handle_for("delay.analytical_seconds")
                      : obs::histogram_handle{};
}

double analytical_delay_provider::warm_cost_hint() const noexcept {
  return 1.0;  // one table read per packet
}

std::vector<double> analytical_delay_provider::estimate_sojourn(
    const device_state& state, double /*window_seconds*/) {
  DQN_ENSURE(state.ctx != nullptr,
             "analytical_delay_provider: device_state.ctx is required");
  const std::size_t n = row_count(state);
  // Pick the closed-form wait for the discipline. FIFO's Lindley unfinished
  // work is the *exact* waiting time; SP's own-or-higher-class work is the
  // W_0 bound of the device model's prior-knowledge clamp; the weighted
  // disciplines use the GPS wait estimate (exact under permanent backlog).
  std::size_t column = f_gps_wait;
  switch (state.ctx->kind) {
    case des::scheduler_kind::fifo: column = f_unfinished_work; break;
    case des::scheduler_kind::sp: column = f_own_class_work; break;
    default: column = f_gps_wait; break;
  }
  std::vector<double> sojourns(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double wait = state.feature_rows[i * feature_count + column];
    DQN_INVARIANT(wait >= 0 && std::isfinite(wait),
                  "analytical_delay_provider: bad feature wait ", wait);
    sojourns[i] = wait;
  }
  if (latency_seconds_)
    for (const double s : sojourns) latency_seconds_.observe(s);
  if (state.raw_out != nullptr) *state.raw_out = sojourns;  // no SEC stage
  return sojourns;
}

std::vector<double> analytical_delay_provider::ldqbd_reference_waits(
    const scheduler_context& ctx, double lambda_pps, double mean_packet_bytes,
    std::size_t classes, std::size_t truncation_level) {
  DQN_ENSURE(lambda_pps > 0, "ldqbd_reference_waits: lambda must be > 0 (got ",
             lambda_pps, ")");
  DQN_ENSURE(mean_packet_bytes > 0,
             "ldqbd_reference_waits: mean packet size must be > 0 (got ",
             mean_packet_bytes, ")");
  DQN_ENSURE(ctx.bandwidth_bps > 0,
             "ldqbd_reference_waits: line rate must be > 0");
  const double mu = ctx.bandwidth_bps / (mean_packet_bytes * 8.0);

  // Poisson arrivals are the one-state MAP d0 = [[-lambda]], d1 = [[lambda]].
  queueing::matrix d0{1, 1};
  queueing::matrix d1{1, 1};
  d0(0, 0) = -lambda_pps;
  d1(0, 0) = lambda_pps;
  queueing::map_process arrivals{std::move(d0), std::move(d1)};

  queueing::scheduler_model_config config;
  const std::size_t k = std::max<std::size_t>(classes, 1);
  config.class_probs.assign(k, 1.0 / static_cast<double>(k));
  config.service_rate = mu;
  config.truncation_level = truncation_level;
  if (ctx.kind == des::scheduler_kind::sp) {
    config.discipline = queueing::scheduler_discipline::sp;
  } else {
    // FIFO collapses to single-class WFQ; WRR/DRR/WFQ share the GPS-style
    // state-dependent service split of Appendix B.1.2.
    config.discipline = queueing::scheduler_discipline::wfq;
    config.weights = ctx.class_weights.size() == k ? ctx.class_weights
                                                   : std::vector<double>(k, 1.0);
  }
  queueing::ldqbd_scheduler_model model{std::move(arrivals), std::move(config)};
  model.solve();
  return queueing::stationary_mean_waits(model, mu);
}

// ---------------------------------------------------------------------------
// Tiered backend
// ---------------------------------------------------------------------------

tiered_delay_provider::tiered_delay_provider(
    std::shared_ptr<const ptm_model> ptm, des::delay_policy policy)
    : ptm_{std::move(ptm)}, policy_{policy} {
  DQN_ENSURE(policy_.utilization_threshold >= 0,
             "tiered_delay_provider: threshold must be >= 0 (got ",
             policy_.utilization_threshold, ")");
  DQN_ENSURE(policy_.hysteresis >= 0,
             "tiered_delay_provider: hysteresis must be >= 0 (got ",
             policy_.hysteresis, ")");
}

void tiered_delay_provider::bind_sink(obs::sink* sink) {
  ptm_.bind_sink(sink);
  analytical_.bind_sink(sink);
}

void tiered_delay_provider::prepare(std::size_t device_slots) {
  // Slot 0 is the host-NIC pseudo-device (device id -1); hysteresis and
  // budget state survive across IRSA iterations but not across prepare().
  tiers_.assign(device_slots, device_tier{});
}

double tiered_delay_provider::warm_cost_hint() const noexcept {
  const tier_stats s = stats();
  const std::uint64_t total = s.analytical_packets + s.ptm_packets;
  if (total == 0) return ptm_.warm_cost_hint();
  const double f = s.analytical_fraction();
  return f * analytical_.warm_cost_hint() + (1.0 - f) * ptm_.warm_cost_hint();
}

tiered_delay_provider::tier tiered_delay_provider::decide(std::size_t slot,
                                                          double utilization) {
  const double threshold = policy_.utilization_threshold;
  const double band = policy_.hysteresis;
  // Strict comparison: threshold 0 means "never analytical" (pure PTM) even
  // for idle zero-utilization windows, so the two policy extremes reproduce
  // the pure backends exactly.
  if (slot >= tiers_.size())  // unprepared: stateless threshold decision
    return utilization < threshold ? tier::analytical : tier::ptm;

  device_tier& state = tiers_[slot];
  if (state.pinned_ptm) return tier::ptm;
  switch (state.current) {
    case tier::unset:
      state.current = utilization < threshold ? tier::analytical : tier::ptm;
      break;
    case tier::analytical:
      if (utilization > threshold + band) {
        state.current = tier::ptm;
        promotions_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case tier::ptm:
      if (utilization < threshold - band) {
        state.current = tier::analytical;
        demotions_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
  }
  return state.current;
}

std::vector<double> tiered_delay_provider::estimate_sojourn(
    const device_state& state, double window_seconds) {
  const std::size_t n = row_count(state);
  const std::size_t slot = static_cast<std::size_t>(state.device + 1);
  tier chosen = decide(slot, state.utilization);

  if (chosen == tier::analytical && slot < tiers_.size() &&
      !tiers_[slot].budget_checked && policy_.error_budget > 0 && n > 0) {
    // One-shot spot check on the device's first analytical window: run both
    // backends and promote permanently if the analytical mean deviates from
    // the PTM's by more than the budget (relative to the PTM mean plus one
    // mean service time, so near-zero waits don't divide by zero).
    tiers_[slot].budget_checked = true;
    device_state probe = state;
    probe.raw_out = nullptr;
    const auto analytical = analytical_.estimate_sojourn(probe, window_seconds);
    const auto learned = ptm_.estimate_sojourn(state, window_seconds);
    analytical_calls_.fetch_add(1, std::memory_order_relaxed);
    ptm_calls_.fetch_add(1, std::memory_order_relaxed);
    double mean_analytical = 0;
    double mean_learned = 0;
    for (const double s : analytical) mean_analytical += s;
    for (const double s : learned) mean_learned += s;
    mean_analytical /= static_cast<double>(n);
    mean_learned /= static_cast<double>(n);
    double mean_service = 0;
    if (state.arrivals != nullptr && !state.arrivals->empty() &&
        state.ctx != nullptr && state.ctx->bandwidth_bps > 0) {
      for (const auto& ev : *state.arrivals)
        mean_service += static_cast<double>(ev.pkt.size_bytes);
      mean_service *= 8.0 / (static_cast<double>(state.arrivals->size()) *
                             state.ctx->bandwidth_bps);
    }
    const double tolerance =
        policy_.error_budget * (mean_learned + mean_service);
    if (std::abs(mean_analytical - mean_learned) > tolerance) {
      tiers_[slot].pinned_ptm = true;
      tiers_[slot].current = tier::ptm;
      budget_promotions_.fetch_add(1, std::memory_order_relaxed);
      ptm_packets_.fetch_add(n, std::memory_order_relaxed);
      return learned;  // state.raw_out already holds the PTM raw values
    }
    analytical_packets_.fetch_add(n, std::memory_order_relaxed);
    if (state.raw_out != nullptr) *state.raw_out = analytical;
    return analytical;
  }

  if (chosen == tier::ptm) {
    ptm_calls_.fetch_add(1, std::memory_order_relaxed);
    ptm_packets_.fetch_add(n, std::memory_order_relaxed);
    return ptm_.estimate_sojourn(state, window_seconds);
  }
  analytical_calls_.fetch_add(1, std::memory_order_relaxed);
  analytical_packets_.fetch_add(n, std::memory_order_relaxed);
  return analytical_.estimate_sojourn(state, window_seconds);
}

tiered_delay_provider::tier_stats tiered_delay_provider::stats() const noexcept {
  tier_stats s;
  s.analytical_packets = analytical_packets_.load(std::memory_order_relaxed);
  s.ptm_packets = ptm_packets_.load(std::memory_order_relaxed);
  s.analytical_calls = analytical_calls_.load(std::memory_order_relaxed);
  s.ptm_calls = ptm_calls_.load(std::memory_order_relaxed);
  s.promotions = promotions_.load(std::memory_order_relaxed);
  s.demotions = demotions_.load(std::memory_order_relaxed);
  s.budget_promotions = budget_promotions_.load(std::memory_order_relaxed);
  return s;
}

void tiered_delay_provider::publish(obs::sink& sink) {
  // Counters are monotone totals; emit the delta since the last publish so a
  // sink shared across runs accumulates correctly. The fraction is the
  // lifetime ratio (a gauge: last write wins).
  const tier_stats now = stats();
  const util::lock_guard lock{publish_mutex_};
  const auto delta = [](std::uint64_t current, std::uint64_t prior) {
    return static_cast<double>(current - prior);
  };
  sink.count("tiered.analytical_packets",
             delta(now.analytical_packets, published_.analytical_packets));
  sink.count("tiered.ptm_packets",
             delta(now.ptm_packets, published_.ptm_packets));
  sink.count("tiered.analytical_calls",
             delta(now.analytical_calls, published_.analytical_calls));
  sink.count("tiered.ptm_calls", delta(now.ptm_calls, published_.ptm_calls));
  sink.count("tiered.promotions", delta(now.promotions, published_.promotions));
  sink.count("tiered.demotions", delta(now.demotions, published_.demotions));
  sink.count("tiered.budget_promotions",
             delta(now.budget_promotions, published_.budget_promotions));
  sink.gauge("tiered.analytical_fraction", now.analytical_fraction());
  published_ = now;
}

}  // namespace dqn::core
