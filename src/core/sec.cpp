#include "core/sec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "util/check.hpp"

namespace dqn::core {

namespace {

// Floor for the relative-error denominator: sub-nanosecond predictions carry
// no meaningful relative structure.
constexpr double relative_floor = 1e-9;
// Corrections are clamped so one polluted bin cannot flip signs or scale a
// prediction by more than ~4x.
constexpr double max_relative = 0.75;

double relative_error_of(double prediction, double truth) {
  return (prediction - truth) / std::max(prediction, relative_floor);
}

double median_of(std::vector<double>& values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace

void sec_table::fit(std::span<const double> predictions,
                    std::span<const double> truths, double eps_fraction,
                    std::size_t min_points) {
  DQN_ENSURE(predictions.size() == truths.size(),
             "sec_table::fit: ", predictions.size(), " predictions vs ",
             truths.size(), " truths");
  bins_.clear();
  if (predictions.size() < min_points) return;

  double lo = predictions[0], hi = predictions[0];
  for (double p : predictions) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  const double range = hi - lo;
  if (range <= 0) {
    std::vector<double> errors;
    errors.reserve(predictions.size());
    for (std::size_t i = 0; i < predictions.size(); ++i)
      errors.push_back(relative_error_of(predictions[i], truths[i]));
    bins_.push_back({lo, hi, median_of(errors), predictions.size()});
    return;
  }

  // First choice: DBSCAN along the prediction axis (§4.3).
  stats::dbscan_params params;
  params.eps = std::max(range * eps_fraction, 1e-12);
  params.min_points = min_points;
  const auto labels = stats::dbscan_1d(predictions, params);

  std::map<int, std::pair<bin, std::vector<double>>> clusters;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (labels[i] == stats::dbscan_noise) continue;
    auto& [b, errors] = clusters[labels[i]];
    if (errors.empty()) {
      b.lo = predictions[i];
      b.hi = predictions[i];
    } else {
      b.lo = std::min(b.lo, predictions[i]);
      b.hi = std::max(b.hi, predictions[i]);
    }
    errors.push_back(relative_error_of(predictions[i], truths[i]));
  }
  for (auto& [label, entry] : clusters) {
    entry.first.relative_error = median_of(entry.second);
    entry.first.count = entry.second.size();
    bins_.push_back(entry.first);
  }
  std::sort(bins_.begin(), bins_.end(),
            [](const bin& a, const bin& b) { return a.lo < b.lo; });

  // Dense prediction axes chain into one DBSCAN cluster; refine with
  // equal-count quantile bins so the correction stays local. Bin in log
  // space of the prediction (sojourns span decades).
  const std::size_t quantile_bins =
      std::min<std::size_t>(32, predictions.size() / (4 * min_points));
  if (bins_.size() < 4 && quantile_bins >= 4) {
    bins_.clear();
    std::vector<std::size_t> order(predictions.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return predictions[a] < predictions[b];
    });
    const std::size_t per_bin = order.size() / quantile_bins;
    for (std::size_t q = 0; q < quantile_bins; ++q) {
      const std::size_t begin = q * per_bin;
      const std::size_t end =
          q + 1 == quantile_bins ? order.size() : begin + per_bin;
      bin b;
      b.lo = predictions[order[begin]];
      b.hi = predictions[order[end - 1]];
      std::vector<double> errors;
      errors.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i)
        errors.push_back(
            relative_error_of(predictions[order[i]], truths[order[i]]));
      b.relative_error = median_of(errors);
      b.count = errors.size();
      bins_.push_back(b);
    }
  }
  for (auto& b : bins_)
    b.relative_error = std::clamp(b.relative_error, -max_relative, max_relative);
}

// Corrections below this relative magnitude are statistically
// indistinguishable from an unbiased model on held-out data; applying them
// would inject validation-set noise into every prediction.
constexpr double significance_threshold = 0.05;

double sec_table::relative_correction(double prediction) const noexcept {
  if (bins_.empty() || prediction <= 0) return 0.0;
  const bin* best = nullptr;
  double best_distance = std::numeric_limits<double>::infinity();
  auto it = std::lower_bound(bins_.begin(), bins_.end(), prediction,
                             [](const bin& b, double p) { return b.hi < p; });
  if (it != bins_.end() && prediction >= it->lo && prediction <= it->hi) {
    best = &*it;
  } else {
    for (const auto& b : bins_) {
      const double centre = 0.5 * (b.lo + b.hi);
      const double distance = std::abs(prediction - centre);
      if (distance < best_distance) {
        best_distance = distance;
        best = &b;
      }
    }
  }
  DQN_INVARIANT(best != nullptr,
                "sec_table::correct: no bin selected despite non-empty table");
  if (std::abs(best->relative_error) < significance_threshold) return 0.0;
  return best->relative_error;
}

double sec_table::correct(double prediction) const noexcept {
  const double rel = relative_correction(prediction);
  if (rel == 0.0) return prediction;
  return std::max(0.0, prediction * (1.0 - rel));
}

void sec_table::save(std::ostream& out) const {
  const std::uint64_t n = bins_.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  for (const auto& b : bins_) {
    out.write(reinterpret_cast<const char*>(&b.lo), sizeof b.lo);
    out.write(reinterpret_cast<const char*>(&b.hi), sizeof b.hi);
    out.write(reinterpret_cast<const char*>(&b.relative_error),
              sizeof b.relative_error);
    const std::uint64_t count = b.count;
    out.write(reinterpret_cast<const char*>(&count), sizeof count);
  }
}

void sec_table::load(std::istream& in) {
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  if (!in) throw std::runtime_error{"sec_table::load: truncated stream"};
  bins_.assign(static_cast<std::size_t>(n), {});
  for (auto& b : bins_) {
    std::uint64_t count = 0;
    in.read(reinterpret_cast<char*>(&b.lo), sizeof b.lo);
    in.read(reinterpret_cast<char*>(&b.hi), sizeof b.hi);
    in.read(reinterpret_cast<char*>(&b.relative_error), sizeof b.relative_error);
    in.read(reinterpret_cast<char*>(&count), sizeof count);
    b.count = static_cast<std::size_t>(count);
  }
  if (!in) throw std::runtime_error{"sec_table::load: truncated stream"};
}

}  // namespace dqn::core
