#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "stats/wasserstein.hpp"

namespace dqn::core {

std::map<bucket_key, std::vector<double>> bucketed_latencies(
    const des::run_result& result, double bucket_seconds) {
  if (bucket_seconds <= 0)
    throw std::invalid_argument{"metrics: bucket_seconds must be > 0"};
  // Collect (send_time, latency) per flow, ordered by send time so jitter is
  // computed over the emission order.
  std::map<std::uint32_t, std::vector<std::pair<double, double>>> flows;
  for (const auto& d : result.deliveries)
    flows[d.flow_id].emplace_back(d.send_time, d.latency());
  std::map<bucket_key, std::vector<double>> buckets;
  for (auto& [flow, samples] : flows) {
    std::sort(samples.begin(), samples.end());
    for (const auto& [send, latency] : samples) {
      const auto b = static_cast<std::int64_t>(std::floor(send / bucket_seconds));
      buckets[{flow, b}].push_back(latency);
    }
  }
  return buckets;
}

void append_bucket_metrics(const std::vector<double>& latencies,
                           metric_samples& out) {
  out.avg_rtt.push_back(stats::mean(latencies));
  out.p99_rtt.push_back(stats::percentile(latencies, 0.99));
  const auto jitter = stats::jitter_series(latencies);
  out.avg_jitter.push_back(stats::mean(jitter));
  out.p99_jitter.push_back(stats::percentile(jitter, 0.99));
}

metric_samples compute_metric_samples(const des::run_result& result,
                                      double bucket_seconds,
                                      std::size_t min_packets_per_bucket) {
  metric_samples out;
  for (const auto& [key, latencies] : bucketed_latencies(result, bucket_seconds)) {
    if (latencies.size() < std::max<std::size_t>(min_packets_per_bucket, 2)) continue;
    append_bucket_metrics(latencies, out);
  }
  return out;
}

metric_comparison compare_runs(const des::run_result& truth,
                               const des::run_result& prediction,
                               double bucket_seconds,
                               std::size_t min_packets_per_bucket) {
  const auto truth_buckets = bucketed_latencies(truth, bucket_seconds);
  const auto pred_buckets = bucketed_latencies(prediction, bucket_seconds);

  metric_samples t, p;
  for (const auto& [key, truth_lat] : truth_buckets) {
    const auto it = pred_buckets.find(key);
    if (it == pred_buckets.end()) continue;
    const auto& pred_lat = it->second;
    const std::size_t floor_count = std::max<std::size_t>(min_packets_per_bucket, 2);
    if (truth_lat.size() < floor_count || pred_lat.size() < floor_count) continue;
    append_bucket_metrics(truth_lat, t);
    append_bucket_metrics(pred_lat, p);
  }
  if (t.avg_rtt.size() < 4)
    throw std::runtime_error{
        "compare_runs: not enough paired (flow, bucket) samples; lengthen the "
        "run or shrink the bucket"};

  metric_comparison cmp;
  cmp.samples = t.avg_rtt.size();
  cmp.w1_avg_rtt = stats::normalized_w1(p.avg_rtt, t.avg_rtt);
  cmp.w1_p99_rtt = stats::normalized_w1(p.p99_rtt, t.p99_rtt);
  cmp.w1_avg_jitter = stats::normalized_w1(p.avg_jitter, t.avg_jitter);
  cmp.w1_p99_jitter = stats::normalized_w1(p.p99_jitter, t.p99_jitter);
  cmp.rho_avg_rtt = stats::pearson(p.avg_rtt, t.avg_rtt);
  cmp.rho_p99_rtt = stats::pearson(p.p99_rtt, t.p99_rtt);
  cmp.rho_avg_jitter = stats::pearson(p.avg_jitter, t.avg_jitter);
  cmp.rho_p99_jitter = stats::pearson(p.p99_jitter, t.p99_jitter);
  return cmp;
}

}  // namespace dqn::core
