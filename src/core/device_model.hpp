// The DeepQueueNet device model (Figure 4): PFM routes each ingress packet
// to its egress queue exactly; the PTM adds a predicted sojourn to every
// packet; the link model (Eq. 5) adds serialization + propagation. These are
// the "operators" the network model composes (§3.2.3).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/delay_provider.hpp"
#include "core/features.hpp"
#include "core/pfm.hpp"
#include "core/ptm.hpp"
#include "traffic/packet.hpp"

namespace dqn::obs {
class journey_tracer;
class sink;
}  // namespace dqn::obs

namespace dqn::core {

// One packet's predicted passage through a device (the DQN analogue of a
// des::hop_record; gives the packet-level visibility of §1).
struct predicted_hop {
  std::uint64_t pid = 0;
  std::size_t out_port = 0;
  double arrival = 0;    // at the egress queue
  double departure = 0;  // arrival + predicted sojourn
};

// Optional per-packet journey capture for process(): when `tracer` is
// non-null, every sampled packet's hop through this device is recorded
// (upserted, so IRSA re-runs overwrite with the converged value) with its
// PFM queue choice, pre-SEC PTM sojourn, and final corrected delay.
struct journey_capture {
  obs::journey_tracer* tracer = nullptr;
  std::int64_t device = -1;  // topology node id recorded with each hop
};

class device_model {
 public:
  // The PTM is shared: one trained K-port model serves every device whose
  // degree is <= K (§6.1).
  device_model(std::shared_ptr<const ptm_model> ptm, scheduler_context ctx);

  // ingress[i]: time-ordered stream at ingress port i. Returns egress
  // streams ordered by predicted departure time. `hops`, if non-null,
  // receives the per-packet predictions; `dropped`, if non-null, receives
  // the packets the drop model discarded (scheduler_context::buffer_bytes).
  // `port_bandwidths`, when it has one entry per port, overrides the
  // context's uniform line rate for each egress port (heterogeneous links);
  // it feeds the unfinished-work feature, the drop replay, and the
  // feasibility projection. `journeys` opts sampled packets into per-hop
  // journey tracing (see journey_capture); `sink` records PFM/drop counters
  // through lock-free handles — both default to off and cost one branch.
  // `workspace`, if non-null, is the caller-owned inference arena handed to
  // every PTM predict call (one per worker thread; the engine reuses it
  // across devices and IRSA iterations so steady state allocates nothing).
  // Null falls back to the PTM's thread_local workspace.
  //
  // `delay` selects the sojourn backend (delay_provider.hpp): the engine
  // passes its configured provider; null falls back to this model's own PTM
  // backend (the pre-redesign behaviour). `device_id`/`iteration` identify
  // the call for the provider's per-device tiering state (-1 = host NIC).
  [[nodiscard]] std::vector<traffic::packet_stream> process(
      const std::vector<traffic::packet_stream>& ingress, const forward_fn& forward,
      bool apply_sec = true, std::vector<predicted_hop>* hops = nullptr,
      std::vector<traffic::packet>* dropped = nullptr,
      std::span<const double> port_bandwidths = {},
      const journey_capture* journeys = nullptr,
      obs::sink* sink = nullptr,
      nn::workspace* workspace = nullptr,
      delay_provider* delay = nullptr,
      std::int64_t device_id = -1,
      std::size_t iteration = 0) const;

  [[nodiscard]] const scheduler_context& context() const noexcept { return ctx_; }

 private:
  // Fallback backend when process() receives no provider: the shared PTM
  // behind the classic interface. Providers carry per-call metric state, so
  // the member is mutable; estimate_sojourn on the PTM backend is
  // thread-safe (the handles record through relaxed atomics).
  mutable ptm_delay_provider fallback_;
  scheduler_context ctx_;
};

// Link device (Eq. 5): tau_out = tau_in + len/C + l/c.
[[nodiscard]] traffic::packet_stream apply_link(const traffic::packet_stream& in,
                                                double bandwidth_bps,
                                                double propagation_delay);

}  // namespace dqn::core
