// Device-level delay providers: the tiered-estimation layer between the
// engine's per-device inference loop and the sojourn models it can ride on
// (ROADMAP "tiered estimation"; the interface mirrors Sniper's QueueModel
// hierarchy — one computeQueueDelay-style virtual, interchangeable backends,
// and a counter for the fraction served analytically).
//
// Three backends implement the interface:
//  * ptm_delay_provider       — the paper's learned PTM (+ SEC correction),
//                               exactly the pre-redesign inference path;
//  * analytical_delay_provider — queueing-theoretic closed forms evaluated
//                               per packet from the Lindley features the
//                               feature stage already computes (exact FIFO
//                               waits; SP/GPS priors for the rest), with the
//                               LDQBD/MAP machinery of src/queueing as the
//                               stationary reference (queueing/sojourn.hpp);
//  * tiered_delay_provider    — routes each device per iteration by a
//                               utilization threshold with hysteresis plus a
//                               one-shot error-budget spot check
//                               (des::delay_policy), so cold devices skip
//                               DNN inference entirely.
//
// Threading contract (matches the engine's partition loop): estimate_sojourn
// may be called concurrently for *different* devices; two concurrent calls
// for the same device id are a data race. bind_sink/prepare/publish are
// run-boundary calls made by a single thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/features.hpp"
#include "core/ptm.hpp"
#include "des/run_api.hpp"
#include "obs/handles.hpp"
#include "traffic/packet.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace dqn::obs {
class sink;
}  // namespace dqn::obs

namespace dqn::core {

// Everything a backend may consult about one egress queue's arrival series.
// Views are non-owning and valid only for the duration of the call.
struct device_state {
  std::int64_t device = -1;   // topology node id; -1 = host NIC model
  std::size_t port = 0;       // egress port within the device
  std::size_t iteration = 0;  // IRSA iteration this estimate belongs to
  const traffic::packet_stream* arrivals = nullptr;  // time-ordered series
  std::span<const double> feature_rows;  // (n, feature_count) raw features
  const scheduler_context* ctx = nullptr;  // port-resolved line rate
  // Offered load of the egress line over the arrival window: byte-work
  // brought by the series divided by the span it arrives in (0 for a
  // single-packet window; may exceed 1 under overload).
  double utilization = 0;
  bool apply_sec = true;            // §6.1 ablation flag (PTM backend only)
  nn::workspace* workspace = nullptr;  // caller-owned inference arena
  // Pre-correction sojourns for journey tracing (same length as the return
  // value); backends without a correction stage echo their estimates.
  std::vector<double>* raw_out = nullptr;
};

class delay_provider {
 public:
  virtual ~delay_provider() = default;

  // Predicted sojourn seconds (scheduler waiting time), one per packet in
  // state.arrivals, over the observation window `window_seconds`.
  [[nodiscard]] virtual std::vector<double> estimate_sojourn(
      const device_state& state, double window_seconds) = 0;

  // Short stable identifier: "ptm", "analytical", "tiered".
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  // Relative steady-state cost per packet (arbitrary units; the tiered
  // policy and schedulers-of-providers can rank backends by it).
  [[nodiscard]] virtual double warm_cost_hint() const noexcept = 0;

  // Run boundary: resolve lock-free metric handles against `sink` (nullptr
  // detaches). The engine calls this once per run, before any estimates.
  virtual void bind_sink(obs::sink* sink);

  // Run boundary: size per-device state for ids in [-1, device_slots - 1).
  // Stateless backends ignore it.
  virtual void prepare(std::size_t device_slots);

  // Run boundary: export counters/gauges accumulated since the last publish
  // (the engine calls this at the end of every sunk run).
  virtual void publish(obs::sink& sink);
};

// Construct the backend selected by `policy` over a shared trained PTM.
[[nodiscard]] std::unique_ptr<delay_provider> make_delay_provider(
    std::shared_ptr<const ptm_model> ptm, const des::delay_policy& policy);

// ---------------------------------------------------------------------------
// Learned backend: windows the feature rows and runs ptm_model::predict
// (+ SEC). This class is the only first-party predict call site outside the
// PTM itself — scripts/lint.sh enforces that everything else goes through a
// provider.
// ---------------------------------------------------------------------------
class ptm_delay_provider final : public delay_provider {
 public:
  explicit ptm_delay_provider(std::shared_ptr<const ptm_model> ptm);

  [[nodiscard]] std::vector<double> estimate_sojourn(
      const device_state& state, double window_seconds) override;
  [[nodiscard]] const char* name() const noexcept override { return "ptm"; }
  [[nodiscard]] double warm_cost_hint() const noexcept override;
  void bind_sink(obs::sink* sink) override;

  // Window-level access for model-study code (SEC residual figures, PTM
  // ablations, attention inspection): same contract as ptm_model::predict,
  // routed through the provider so the lint rule holds tree-wide.
  [[nodiscard]] std::vector<double> predict_windows(
      std::span<const double> windows, bool apply_sec = true,
      std::vector<double>* raw_out = nullptr) const;

  [[nodiscard]] const std::shared_ptr<const ptm_model>& model() const noexcept {
    return ptm_;
  }

 private:
  std::shared_ptr<const ptm_model> ptm_;
  obs::histogram_handle latency_seconds_;  // delay.ptm_seconds
};

// ---------------------------------------------------------------------------
// Analytical backend: per-packet closed forms from the raw feature rows.
// FIFO waits are the exact Lindley unfinished work; strict priority uses the
// own-or-higher-class work (the W_0 bound of §3.2.2's prior-knowledge
// clamp); weighted schedulers use the GPS wait estimate. No DNN, no SEC —
// cost is one table read per packet.
// ---------------------------------------------------------------------------
class analytical_delay_provider final : public delay_provider {
 public:
  analytical_delay_provider() = default;

  [[nodiscard]] std::vector<double> estimate_sojourn(
      const device_state& state, double window_seconds) override;
  [[nodiscard]] const char* name() const noexcept override {
    return "analytical";
  }
  [[nodiscard]] double warm_cost_hint() const noexcept override;
  void bind_sink(obs::sink* sink) override;

  // Stationary per-class mean waits for `ctx`'s discipline at arrival rate
  // `lambda_pps`, from the Appendix-B LDQBD model fed by a Poisson MAP
  // (queueing/sojourn.hpp adapter): the slow-but-exact reference the tests
  // hold this backend's empirical means against. `classes` <= 1 collapses to
  // single-class (M/M/1-like) service.
  [[nodiscard]] static std::vector<double> ldqbd_reference_waits(
      const scheduler_context& ctx, double lambda_pps, double mean_packet_bytes,
      std::size_t classes = 1, std::size_t truncation_level = 30);

 private:
  obs::histogram_handle latency_seconds_;  // delay.analytical_seconds
};

// ---------------------------------------------------------------------------
// Tiered backend: per-device dispatch between the two above.
// ---------------------------------------------------------------------------
class tiered_delay_provider final : public delay_provider {
 public:
  struct tier_stats {
    std::uint64_t analytical_packets = 0;
    std::uint64_t ptm_packets = 0;
    std::uint64_t analytical_calls = 0;
    std::uint64_t ptm_calls = 0;
    std::uint64_t promotions = 0;         // analytical -> ptm (threshold)
    std::uint64_t demotions = 0;          // ptm -> analytical (threshold)
    std::uint64_t budget_promotions = 0;  // analytical -> ptm (error budget)

    [[nodiscard]] double analytical_fraction() const noexcept {
      const std::uint64_t total = analytical_packets + ptm_packets;
      return total == 0
                 ? 0.0
                 : static_cast<double>(analytical_packets) /
                       static_cast<double>(total);
    }
  };

  tiered_delay_provider(std::shared_ptr<const ptm_model> ptm,
                        des::delay_policy policy);

  [[nodiscard]] std::vector<double> estimate_sojourn(
      const device_state& state, double window_seconds) override;
  [[nodiscard]] const char* name() const noexcept override { return "tiered"; }
  [[nodiscard]] double warm_cost_hint() const noexcept override;
  void bind_sink(obs::sink* sink) override;
  void prepare(std::size_t device_slots) override;
  void publish(obs::sink& sink) override;

  [[nodiscard]] const des::delay_policy& policy() const noexcept {
    return policy_;
  }
  [[nodiscard]] tier_stats stats() const noexcept;

 private:
  enum class tier : std::uint8_t { unset, analytical, ptm };

  struct device_tier {
    tier current = tier::unset;
    bool budget_checked = false;
    bool pinned_ptm = false;  // error-budget promotion is permanent
  };

  // Resolve the tier for (slot, utilization), applying the hysteresis band
  // and counting transitions. Slots beyond the prepared range fall back to a
  // stateless threshold decision (no hysteresis memory).
  tier decide(std::size_t slot, double utilization);

  ptm_delay_provider ptm_;
  analytical_delay_provider analytical_;
  des::delay_policy policy_;
  std::vector<device_tier> tiers_;  // slot = device id + 1 (-1 = host NIC)

  std::atomic<std::uint64_t> analytical_packets_{0};
  std::atomic<std::uint64_t> ptm_packets_{0};
  std::atomic<std::uint64_t> analytical_calls_{0};
  std::atomic<std::uint64_t> ptm_calls_{0};
  std::atomic<std::uint64_t> promotions_{0};
  std::atomic<std::uint64_t> demotions_{0};
  std::atomic<std::uint64_t> budget_promotions_{0};
  // publish() is documented single-thread (run boundary), but the guard makes
  // the contract checkable: concurrent publish() calls would double-count
  // deltas, so published_ is mutex-protected rather than trusted.
  util::mutex publish_mutex_;
  tier_stats published_ DQN_GUARDED_BY(publish_mutex_){};
};

}  // namespace dqn::core
