#include "core/pfm.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dqn::core {

std::vector<traffic::packet_stream> apply_forwarding(
    const std::vector<traffic::packet_stream>& ingress, const forward_fn& forward,
    std::size_t ports) {
  DQN_ENSURE(ingress.size() == ports, "apply_forwarding: got ",
             ingress.size(), " streams for ", ports, " ingress ports");
  std::vector<traffic::packet_stream> egress(ports);
  for (std::size_t in_port = 0; in_port < ports; ++in_port) {
    for (const auto& ev : ingress[in_port]) {
      const std::size_t out = forward(ev.pkt.flow_id, in_port);
      DQN_CHECK(out < ports, "apply_forwarding: forward() returned port ",
                out, " of ", ports, " (flow ", ev.pkt.flow_id, ")");
      egress[out].push_back(ev);
    }
  }
  for (auto& stream : egress) std::sort(stream.begin(), stream.end());
  return egress;
}

forwarding_tensor::forwarding_tensor(std::size_t ports, std::size_t packets)
    : ports_{ports}, packets_{packets}, bits_(ports * ports * packets, 0) {
  DQN_ENSURE(ports > 0, "forwarding_tensor: ports >= 1");
}

std::size_t forwarding_tensor::index(std::size_t i, std::size_t j,
                                     std::size_t k) const {
  DQN_CHECK(i < ports_ && j < ports_ && k < packets_,
            "forwarding_tensor: index (", i, ", ", j, ", ", k,
            ") outside (", ports_, ", ", ports_, ", ", packets_, ")");
  return (i * ports_ + j) * packets_ + k;
}

void forwarding_tensor::set(std::size_t in_port, std::size_t out_port,
                            std::size_t k) {
  bits_[index(in_port, out_port, k)] = 1;
}

bool forwarding_tensor::at(std::size_t in_port, std::size_t out_port,
                           std::size_t k) const {
  return bits_[index(in_port, out_port, k)] != 0;
}

std::size_t forwarding_tensor::fanout(std::size_t in_port, std::size_t k) const {
  std::size_t total = 0;
  for (std::size_t j = 0; j < ports_; ++j)
    total += at(in_port, j, k) ? 1 : 0;
  return total;
}

forwarding_tensor build_forwarding_tensor(
    const std::vector<traffic::packet_stream>& ingress, const forward_fn& forward,
    std::size_t ports) {
  DQN_ENSURE(ingress.size() == ports, "build_forwarding_tensor: got ",
             ingress.size(), " streams for ", ports, " ports");
  std::size_t max_len = 0;
  for (const auto& s : ingress) max_len = std::max(max_len, s.size());
  forwarding_tensor tensor{ports, max_len};
  for (std::size_t i = 0; i < ports; ++i)
    for (std::size_t k = 0; k < ingress[i].size(); ++k) {
      const std::size_t j = forward(ingress[i][k].pkt.flow_id, i);
      DQN_CHECK(j < ports, "build_forwarding_tensor: forward() returned port ",
                j, " of ", ports);
      tensor.set(i, j, k);
    }
  return tensor;
}

std::vector<traffic::packet_stream> apply_tensor(
    const forwarding_tensor& tensor,
    const std::vector<traffic::packet_stream>& ingress) {
  DQN_ENSURE(ingress.size() == tensor.ports(), "apply_tensor: got ",
             ingress.size(), " streams for ", tensor.ports(), " ports");
  std::vector<traffic::packet_stream> egress(tensor.ports());
  for (std::size_t i = 0; i < tensor.ports(); ++i)
    for (std::size_t k = 0; k < ingress[i].size(); ++k)
      for (std::size_t j = 0; j < tensor.ports(); ++j)
        if (tensor.at(i, j, k)) egress[j].push_back(ingress[i][k]);
  for (auto& stream : egress) std::sort(stream.begin(), stream.end());
  return egress;
}

}  // namespace dqn::core
