// Post-PTM statistical error correction (§4.3). After training converges,
// the PTM's residuals on held-out data are clustered along the predicted-
// sojourn axis with DBSCAN; at inference, a prediction falling inside a
// bin's range has that bin's mean error subtracted. The correction is a
// by-product of training and costs one binary search per prediction.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "stats/dbscan.hpp"

namespace dqn::core {

class sec_table {
 public:
  struct bin {
    double lo = 0;
    double hi = 0;
    // Median *relative* error within the bin: (pred - truth) / pred.
    // Figure 6 plots relative error against predicted sojourn, and the
    // correction must be multiplicative to transfer across load regimes
    // (sojourns span decades; an additive offset fit at one load level is
    // systematically wrong at another).
    double relative_error = 0;
    std::size_t count = 0;
  };

  // Fit bins from validation predictions and ground-truth sojourns.
  // eps_fraction scales DBSCAN's radius relative to the prediction range.
  // When the predictions are dense along the axis, 1-D DBSCAN chains them
  // into a single cluster; in that case the fit falls back to equal-count
  // quantile bins (same per-bin mean-error correction, finer resolution).
  void fit(std::span<const double> predictions, std::span<const double> truths,
           double eps_fraction = 0.02, std::size_t min_points = 8);

  // Corrected prediction: pred * (1 - relative_error(bin)); predictions
  // outside every bin use the nearest bin. Uncorrected if no bins were fit.
  [[nodiscard]] double correct(double prediction) const noexcept;

  // The relative error this table would subtract from `prediction`: 0 when
  // no bins were fit or the matched bin's error is below the significance
  // threshold; correct(p) == max(0, p * (1 - relative_correction(p))).
  // Exposed so instrumentation can report how often and how hard SEC fires.
  [[nodiscard]] double relative_correction(double prediction) const noexcept;

  [[nodiscard]] bool fitted() const noexcept { return !bins_.empty(); }
  [[nodiscard]] const std::vector<bin>& bins() const noexcept { return bins_; }

  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  std::vector<bin> bins_;  // sorted by lo
};

}  // namespace dqn::core
