// Packet-level forwarding model (PFM, §3.2.2): exact forwarding of the
// ingress packet streams to egress queues via the device's forward() table
// (Eq. 6). Semantically this is the paper's 0/1 forwarding tensor F of shape
// K x K x N applied to the stacked ingress streams (Eq. 7); the hot path
// applies it sparsely (one gather per packet), and the dense tensor is
// available for inspection and tests.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "traffic/packet.hpp"

namespace dqn::core {

// forward(flow_id, in_port) -> out_port (Eq. 6).
using forward_fn = std::function<std::size_t(std::uint32_t, std::size_t)>;

// Route every packet of every ingress stream to its egress queue; each
// returned stream is time-ordered by (original) arrival time.
[[nodiscard]] std::vector<traffic::packet_stream> apply_forwarding(
    const std::vector<traffic::packet_stream>& ingress, const forward_fn& forward,
    std::size_t ports);

// Dense forwarding tensor F = [f_{i,j,k}] with f = 1 iff the k-th packet of
// ingress port i goes to egress port j. N is the padded max stream length.
class forwarding_tensor {
 public:
  forwarding_tensor(std::size_t ports, std::size_t packets);

  void set(std::size_t in_port, std::size_t out_port, std::size_t k);
  [[nodiscard]] bool at(std::size_t in_port, std::size_t out_port,
                        std::size_t k) const;

  [[nodiscard]] std::size_t ports() const noexcept { return ports_; }
  [[nodiscard]] std::size_t packets() const noexcept { return packets_; }

  // Row-sum invariant: each real packet is forwarded to exactly one egress.
  [[nodiscard]] std::size_t fanout(std::size_t in_port, std::size_t k) const;

 private:
  [[nodiscard]] std::size_t index(std::size_t i, std::size_t j, std::size_t k) const;

  std::size_t ports_;
  std::size_t packets_;
  std::vector<std::uint8_t> bits_;
};

[[nodiscard]] forwarding_tensor build_forwarding_tensor(
    const std::vector<traffic::packet_stream>& ingress, const forward_fn& forward,
    std::size_t ports);

// Apply the dense tensor (reference implementation of Eq. 7's product); the
// result must equal apply_forwarding's — checked by the property tests.
[[nodiscard]] std::vector<traffic::packet_stream> apply_tensor(
    const forwarding_tensor& tensor,
    const std::vector<traffic::packet_stream>& ingress);

}  // namespace dqn::core
