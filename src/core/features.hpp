// Pre-PTM data augmentation & feature engineering (§4.1).
//
// The PTM sees, for every packet in a sliding window over an egress queue's
// arrival series, the paper's augmented packet vector: length, inter-arrival
// time, scheduler one-hot, priority, weight, and a workload EMA (smoothing
// factor 0.95). We add a byte-rate EMA alongside the paper's byte EMA — the
// window alone carries rate information, the EMAs carry longer memory.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "des/traffic_manager.hpp"
#include "traffic/packet.hpp"

namespace dqn::core {

inline constexpr std::size_t feature_count = 17;
inline constexpr double workload_smoothing = 0.95;  // §4.1

// Feature indices within a packet's feature vector.
enum feature_index : std::size_t {
  f_len = 0,
  f_iat = 1,
  f_workload_bytes = 2,
  f_workload_rate = 3,
  f_sched_fifo = 4,
  f_sched_sp = 5,
  f_sched_wrr = 6,
  f_sched_drr = 7,
  f_sched_wfq = 8,
  f_priority = 9,
  f_weight = 10,
  f_protocol = 11,
  // Unfinished work (seconds) in the egress queue at this arrival, from the
  // Lindley recursion U_i = max(0, U_{i-1} + s_{i-1} - iat_i) with
  // s = len*8/C. For any work-conserving discipline this equals the total
  // backlog the packet finds — the queueing-theoretic prior the paper's
  // methodology asks us to express explicitly (§1: "express our prior
  // knowledge of the network as much as possible"). The DNN learns the
  // scheduler-specific deviation around it.
  f_unfinished_work = 12,
  // Class-resolved unfinished work (same Lindley machinery restricted to
  // sub-streams): the work contributed by strictly higher-priority classes,
  // and by the packet's own-or-higher classes. Under SP the former is the
  // dominant term of the packet's wait; under weighted schedulers the DNN
  // learns the interpolation. Both are 0/total under FIFO.
  f_higher_class_work = 13,
  f_own_class_work = 14,
  // Own-class-only unfinished work, and the GPS wait estimate derived from
  // it: under generalized processor sharing a backlogged class k drains at
  // share w_k / sum(w), so its arriving packet expects roughly
  // own_only_work / share of waiting. Exact under permanent backlog; the
  // DNN learns the deviation (idle classes donate their share).
  f_own_only_work = 15,
  f_gps_wait = 16,
};

// Heavy-tailed features (lengths, inter-arrival times, workload EMAs) span
// several decades; the PTM maps them through x -> log1p(x / scale) before
// min-max normalisation so the network sees the full dynamic range. A scale
// of 0 disables the transform for that feature (one-hots, priorities, ...).
inline constexpr double feature_log_scale[feature_count] = {
    1.0,   // len (bytes)
    1e-9,  // iat (seconds -> ~ns resolution)
    1.0,   // workload EMA (bytes)
    1.0,   // workload rate EMA (bytes/s)
    0, 0, 0, 0, 0,  // scheduler one-hot
    0,     // priority
    0,     // weight
    0,     // protocol
    1e-9,  // unfinished work (seconds)
    1e-9,  // higher-priority-class unfinished work
    1e-9,  // own-or-higher-class unfinished work
    1e-9,  // own-class-only unfinished work
    1e-9,  // GPS wait estimate
};

// The sojourn-time regression target gets the same treatment:
// y -> log1p(y / sojourn_log_scale).
inline constexpr double sojourn_log_scale = 1e-9;

// Scheduler context a device contributes to its packets' features: the
// discipline one-hot and the flow-class weight table (Eqs. 8-9).
struct scheduler_context {
  des::scheduler_kind kind = des::scheduler_kind::fifo;
  std::vector<double> class_weights;  // empty for fifo/sp
  double bandwidth_bps = 10e9;        // egress line rate, for unfinished work
  // Drop-tail buffer per egress queue in bytes; 0 disables drop modelling.
  // The device model drops a packet when the queue's exact byte backlog
  // (from the Lindley recursion — a deterministic function of the ingress
  // stream, like the PFM) would exceed this (§2.3's buffer management;
  // dropped packets have latency +inf per §1).
  std::uint64_t buffer_bytes = 0;

  [[nodiscard]] double weight_of(const traffic::packet& pkt) const;
};

// Compute the (n, feature_count) feature rows for the arrival series of one
// egress queue. `arrivals` must be time-ordered; the EMAs run across it.
[[nodiscard]] std::vector<double> compute_features(
    const traffic::packet_stream& arrivals, const scheduler_context& ctx);

// Assemble sliding windows of `time_steps` packets ending at each index in
// [first, n): flattened (count, time_steps, feature_count). Windows whose
// history would precede the series start are front-padded with the first row.
[[nodiscard]] std::vector<double> make_windows(std::span<const double> feature_rows,
                                               std::size_t time_steps);

}  // namespace dqn::core
