// LSTM and bidirectional LSTM with explicit backprop-through-time. The PTM's
// encoder is a stack of bidirectional layers (the paper uses a 2-layer BLSTM,
// Table 1).
#pragma once

#include <iosfwd>
#include <vector>

#include "nn/matrix.hpp"
#include "nn/params.hpp"
#include "nn/seq.hpp"
#include "nn/workspace.hpp"
#include "util/rng.hpp"

namespace dqn::nn {

// Single-direction LSTM. Gate layout in the fused weight matrices is
// [input, forget, cell, output] along the column axis.
class lstm {
 public:
  lstm() = default;
  lstm(std::size_t input_dim, std::size_t hidden_dim, bool reverse, util::rng& rng);

  // x: (B, T, F) → hidden states (B, T, H). Caches activations for backward.
  [[nodiscard]] seq_batch forward(const seq_batch& x);
  [[nodiscard]] seq_batch forward_const(const seq_batch& x) const;
  // Allocation-free inference forward: all state (h, c, per-step gate
  // pre-activations) lives in `ws`; result valid until the next ws.reset().
  [[nodiscard]] const seq_batch& forward(const seq_batch& x, workspace& ws) const;

  // grad_h: (B, T, H) → grad_x (B, T, F); accumulates weight grads.
  [[nodiscard]] seq_batch backward(const seq_batch& grad_h);

  void collect_params(param_list& out);

  [[nodiscard]] std::size_t input_dim() const noexcept { return wx_.rows(); }
  [[nodiscard]] std::size_t hidden_dim() const noexcept { return wh_.rows(); }
  [[nodiscard]] bool is_reverse() const noexcept { return reverse_; }

  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  struct step_cache {
    matrix x;      // (B, F)
    matrix gates;  // (B, 4H), post-activation [i f g o]
    matrix c;      // (B, H)
    matrix h;      // (B, H)
    matrix c_prev; // (B, H)
    matrix h_prev; // (B, H)
  };

  // Run one step given x_t and previous state; fills cache if non-null.
  void step(const matrix& x_t, matrix& h, matrix& c, step_cache* cache) const;

  matrix wx_;  // (F, 4H)
  matrix wh_;  // (H, 4H)
  aligned_vector b_;  // (4H)
  matrix gwx_;
  matrix gwh_;
  aligned_vector gb_;
  bool reverse_ = false;
  std::vector<step_cache> caches_;  // indexed by processing step
  std::size_t cached_time_ = 0;
};

// Bidirectional LSTM: concatenates forward and reverse hidden states, giving
// (B, T, 2H) outputs.
class bilstm {
 public:
  bilstm() = default;
  bilstm(std::size_t input_dim, std::size_t hidden_dim, util::rng& rng);

  [[nodiscard]] seq_batch forward(const seq_batch& x);
  [[nodiscard]] seq_batch forward_const(const seq_batch& x) const;
  // Allocation-free inference forward (see lstm::forward overload).
  [[nodiscard]] const seq_batch& forward(const seq_batch& x, workspace& ws) const;
  [[nodiscard]] seq_batch backward(const seq_batch& grad_out);

  void collect_params(param_list& out);

  [[nodiscard]] std::size_t output_dim() const noexcept {
    return 2 * fwd_.hidden_dim();
  }

  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  lstm fwd_;
  lstm bwd_;
};

}  // namespace dqn::nn
