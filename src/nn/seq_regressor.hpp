// The PTM's network: a stack of bidirectional LSTM layers feeding multi-head
// self-attention, with a dense regression head on the final time step. This
// mirrors the paper's architecture (Figure 5, Table 1): 2-layer BLSTM
// encoder/decoder, 3 attention heads, sojourn-time regression trained with
// MSE + Adam. Hidden sizes are configurable so benches can use CPU-sized
// models while tests use tiny ones.
#pragma once

#include <iosfwd>
#include <vector>

#include "nn/attention.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "nn/params.hpp"
#include "nn/seq.hpp"
#include "util/rng.hpp"

namespace dqn::nn {

struct seq_regressor_config {
  std::size_t input_dim = 14;
  std::vector<std::size_t> lstm_hidden = {32, 16};  // per-direction widths
  std::size_t heads = 3;
  std::size_t key_dim = 16;
  std::size_t value_dim = 16;
  std::size_t attention_out = 32;
  std::size_t head_hidden = 32;  // regression-head hidden width
};

class seq_regressor {
 public:
  seq_regressor() = default;
  seq_regressor(const seq_regressor_config& config, util::rng& rng);

  // x: (B, T, input_dim) → (B, 1) predicted (scaled) sojourn of the final
  // packet in each window.
  [[nodiscard]] matrix forward(const seq_batch& x);
  [[nodiscard]] matrix forward_const(const seq_batch& x) const;
  // Allocation-free inference forward: the whole chain (encoder, attention,
  // head) runs out of `ws`. The CALLER owns the workspace lifecycle — this
  // method only takes slots and never resets, so `x` may itself live in `ws`.
  // Result valid until the next ws.reset().
  [[nodiscard]] const matrix& forward(const seq_batch& x, workspace& ws) const;

  // MSE loss against targets (B, 1): runs backward, accumulates grads, and
  // returns the batch loss.
  double backward_mse(const matrix& predictions, const matrix& targets);

  void collect_params(param_list& out);
  [[nodiscard]] const seq_regressor_config& config() const noexcept { return config_; }

  // The attention layer, exposing per-head weight matrices from the last
  // (training-mode) forward pass — used for interpretability.
  [[nodiscard]] const multi_head_attention& attention() const noexcept {
    return attention_;
  }

  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  seq_regressor_config config_;
  std::vector<bilstm> encoder_;
  multi_head_attention attention_;
  dense head_hidden_;
  dense head_out_;
  // Forward caches needed to route gradients.
  seq_batch last_attn_out_;
  std::size_t last_time_ = 0;
};

}  // namespace dqn::nn
