// Contiguous (batch, time, feature) tensor for sequence models. The PTM
// consumes sliding windows of `time_steps` packets (Table 1: 21) and predicts
// the sojourn time of the window's final packet.
#pragma once

#include <cstddef>

#include "nn/aligned.hpp"
#include "nn/matrix.hpp"
#include "util/check.hpp"

namespace dqn::nn {

class seq_batch {
 public:
  seq_batch() = default;
  seq_batch(std::size_t batch, std::size_t time, std::size_t features)
      : batch_{batch},
        time_{time},
        features_{features},
        data_(batch * time * features, 0.0) {}

  [[nodiscard]] std::size_t batch() const noexcept { return batch_; }
  [[nodiscard]] std::size_t time() const noexcept { return time_; }
  [[nodiscard]] std::size_t features() const noexcept { return features_; }

  [[nodiscard]] double& at(std::size_t b, std::size_t t, std::size_t f) noexcept {
    return data_[(b * time_ + t) * features_ + f];
  }
  [[nodiscard]] double at(std::size_t b, std::size_t t, std::size_t f) const noexcept {
    return data_[(b * time_ + t) * features_ + f];
  }

  [[nodiscard]] aligned_vector& data() noexcept { return data_; }
  [[nodiscard]] const aligned_vector& data() const noexcept { return data_; }

  // Reshape without shrinking the backing allocation (see matrix::resize).
  // Contents after resize are unspecified.
  void resize(std::size_t batch, std::size_t time, std::size_t features) {
    batch_ = batch;
    time_ = time;
    features_ = features;
    data_.resize(batch * time * features);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return data_.capacity(); }

  // Copy of the cross-batch slice at time t, shaped (batch, features).
  [[nodiscard]] matrix time_slice(std::size_t t) const {
    DQN_CHECK_RANGE(t, time_);
    matrix m{batch_, features_};
    for (std::size_t b = 0; b < batch_; ++b)
      for (std::size_t f = 0; f < features_; ++f) m(b, f) = at(b, t, f);
    return m;
  }

  // Allocation-free variant: writes the slice into `m`, which must already
  // have shape (batch, features) (workspace slots are pre-sized).
  void time_slice_into(std::size_t t, matrix& m) const {
    DQN_CHECK_RANGE(t, time_);
    DQN_CHECK(m.rows() == batch_ && m.cols() == features_,
              "seq_batch::time_slice_into: got ", m.rows(), "x", m.cols(),
              ", want ", batch_, "x", features_);
    for (std::size_t b = 0; b < batch_; ++b)
      for (std::size_t f = 0; f < features_; ++f) m(b, f) = at(b, t, f);
  }

  void set_time_slice(std::size_t t, const matrix& m) {
    DQN_CHECK_RANGE(t, time_);
    DQN_CHECK(m.rows() == batch_ && m.cols() == features_,
              "seq_batch::set_time_slice: got ", m.rows(), "x", m.cols(),
              ", want ", batch_, "x", features_);
    for (std::size_t b = 0; b < batch_; ++b)
      for (std::size_t f = 0; f < features_; ++f) at(b, t, f) = m(b, f);
  }

  void add_time_slice(std::size_t t, const matrix& m) {
    DQN_CHECK_RANGE(t, time_);
    DQN_CHECK(m.rows() == batch_ && m.cols() == features_,
              "seq_batch::add_time_slice: got ", m.rows(), "x", m.cols(),
              ", want ", batch_, "x", features_);
    for (std::size_t b = 0; b < batch_; ++b)
      for (std::size_t f = 0; f < features_; ++f) at(b, t, f) += m(b, f);
  }

  // Copy of sample b, shaped (time, features).
  [[nodiscard]] matrix sample(std::size_t b) const {
    DQN_CHECK_RANGE(b, batch_);
    matrix m{time_, features_};
    for (std::size_t t = 0; t < time_; ++t)
      for (std::size_t f = 0; f < features_; ++f) m(t, f) = at(b, t, f);
    return m;
  }

  // Allocation-free variant of sample(): writes into pre-shaped `m`.
  void sample_into(std::size_t b, matrix& m) const {
    DQN_CHECK_RANGE(b, batch_);
    DQN_CHECK(m.rows() == time_ && m.cols() == features_,
              "seq_batch::sample_into: got ", m.rows(), "x", m.cols(),
              ", want ", time_, "x", features_);
    for (std::size_t t = 0; t < time_; ++t)
      for (std::size_t f = 0; f < features_; ++f) m(t, f) = at(b, t, f);
  }

  void set_sample(std::size_t b, const matrix& m) {
    DQN_CHECK_RANGE(b, batch_);
    DQN_CHECK(m.rows() == time_ && m.cols() == features_,
              "seq_batch::set_sample: got ", m.rows(), "x", m.cols(),
              ", want ", time_, "x", features_);
    for (std::size_t t = 0; t < time_; ++t)
      for (std::size_t f = 0; f < features_; ++f) at(b, t, f) = m(t, f);
  }

 private:
  std::size_t batch_ = 0;
  std::size_t time_ = 0;
  std::size_t features_ = 0;
  aligned_vector data_;
};

}  // namespace dqn::nn
