#include "nn/dense.hpp"

#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "nn/kernels/epilogue.hpp"
#include "nn/kernels/gemm.hpp"

namespace dqn::nn {

double apply_activation(activation act, double x) noexcept {
  switch (act) {
    case activation::identity: return x;
    case activation::relu: return x > 0 ? x : 0;
    case activation::tanh: return std::tanh(x);
    case activation::sigmoid: return 1.0 / (1.0 + std::exp(-x));
  }
  return x;
}

double activation_grad_from_output(activation act, double y) noexcept {
  switch (act) {
    case activation::identity: return 1;
    case activation::relu: return y > 0 ? 1 : 0;
    case activation::tanh: return 1 - y * y;
    case activation::sigmoid: return y * (1 - y);
  }
  return 1;
}

dense::dense(std::size_t in_dim, std::size_t out_dim, activation act, util::rng& rng)
    : w_{matrix::glorot(in_dim, out_dim, rng)},
      b_(out_dim, 0.0),
      gw_{in_dim, out_dim},
      gb_(out_dim, 0.0),
      act_{act} {}

matrix dense::forward(const matrix& x) {
  last_x_ = x;
  last_y_ = forward_const(x);
  return last_y_;
}

matrix dense::forward_const(const matrix& x) const {
  matrix y = matmul(x, w_);
  add_row_vector(y, b_);
  if (act_ != activation::identity)
    for (auto& v : y.data()) v = apply_activation(act_, v);
  return y;
}

const matrix& dense::forward(const matrix& x, workspace& ws) const {
  matrix& y = ws.take(x.rows(), w_.cols());
  kernels::gemm_nn(x.data().data(), w_.data().data(), y.data().data(),
                   x.rows(), w_.cols(), w_.rows(), /*accumulate=*/false);
  kernels::bias_act(y.data().data(), b_.data(), y.rows(), y.cols(),
                    static_cast<kernels::unary>(act_));
  return y;
}

matrix dense::backward(const matrix& grad_y) {
  if (last_x_.empty()) throw std::logic_error{"dense::backward before forward"};
  matrix grad_pre = grad_y;
  if (act_ != activation::identity) {
    for (std::size_t i = 0; i < grad_pre.size(); ++i)
      grad_pre.data()[i] *= activation_grad_from_output(act_, last_y_.data()[i]);
  }
  matmul_tn_acc(last_x_, grad_pre, gw_);
  for (std::size_t r = 0; r < grad_pre.rows(); ++r) {
    auto row = grad_pre.row(r);
    for (std::size_t c = 0; c < grad_pre.cols(); ++c) gb_[c] += row[c];
  }
  return matmul_nt(grad_pre, w_);
}

void dense::collect_params(param_list& out) {
  out.push_back({&w_.data(), &gw_.data()});
  out.push_back({&b_, &gb_});
}

void dense::save(std::ostream& out) const {
  save_matrix(out, w_);
  const std::uint64_t n = b_.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(b_.data()),
            static_cast<std::streamsize>(n * sizeof(double)));
  const auto act = static_cast<std::int32_t>(act_);
  out.write(reinterpret_cast<const char*>(&act), sizeof act);
}

void dense::load(std::istream& in) {
  w_ = load_matrix(in);
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  b_.assign(n, 0.0);
  in.read(reinterpret_cast<char*>(b_.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  std::int32_t act = 0;
  in.read(reinterpret_cast<char*>(&act), sizeof act);
  if (!in) throw std::runtime_error{"dense::load: truncated stream"};
  act_ = static_cast<activation>(act);
  gw_ = matrix{w_.rows(), w_.cols()};
  gb_.assign(b_.size(), 0.0);
}

}  // namespace dqn::nn
