// Internal backend tables for the GEMM dispatch (nn/kernels/gemm.hpp). Each
// ISA translation unit (gemm.cpp, gemm_avx2.cpp, gemm_avx512.cpp) fills one
// table; a table whose pointers are null was not compiled in (non-x86 build
// or compiler without the ISA flags). Exposed as a header so the parity
// tests can drive every compiled backend directly.
#pragma once

#include <cstddef>

namespace dqn::nn::kernels::detail {

using gemm_fn = void (*)(const double* a, const double* b, double* c,
                         std::size_t m, std::size_t n, std::size_t k,
                         bool accumulate);

struct gemm_table {
  gemm_fn nn = nullptr;
  gemm_fn tn = nullptr;
  gemm_fn nt = nullptr;

  [[nodiscard]] bool complete() const noexcept {
    return nn != nullptr && tn != nullptr && nt != nullptr;
  }
};

[[nodiscard]] const gemm_table& naive_table() noexcept;
[[nodiscard]] const gemm_table& blocked_table() noexcept;
[[nodiscard]] const gemm_table& avx2_table() noexcept;    // null fns if absent
[[nodiscard]] const gemm_table& avx512_table() noexcept;  // null fns if absent

}  // namespace dqn::nn::kernels::detail
