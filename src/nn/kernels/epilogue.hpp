// Fused GEMM epilogues. These fold the bias add and pointwise nonlinearity
// into a single pass over the GEMM output, so the layers stop materializing
// (and re-reading) full intermediate matrices for "+ bias" and "activation"
// as separate steps.
//
// Numerics contract: each output element is computed as
// f(c + bias) with the exact same scalar formulas the layers used before
// (std::tanh, 1/(1+std::exp(-x))), in the same order (bias add first, then
// activation), so fused results are bit-identical to the unfused path.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dqn::nn::kernels {

// Mirrors nn::activation (dense.hpp) value-for-value so layer code can
// static_cast between them without a mapping table.
enum class unary : std::uint8_t { identity = 0, relu = 1, tanh = 2, sigmoid = 3 };

// c (rows×cols, row-major) := act(c + bias), bias broadcast per row.
void bias_act(double* c, const double* bias, std::size_t rows,
              std::size_t cols, unary act);

// LSTM gate epilogue: z (batch × 4·hidden, segment layout [i f g o]) gets the
// bias row added, then the segmented nonlinearity applied in place:
// sigmoid on i/f/o, tanh on g.
void lstm_gates(double* z, const double* bias, std::size_t batch,
                std::size_t hidden);

// LSTM state update from activated gates: for each (bi, j),
//   c := f·c + i·g ;  h := o·tanh(c)
// with gates laid out as in lstm_gates. c and h are batch×hidden, updated
// in place.
void lstm_state(const double* gates, double* c, double* h, std::size_t batch,
                std::size_t hidden);

}  // namespace dqn::nn::kernels
