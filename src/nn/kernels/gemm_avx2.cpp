// AVX2+FMA GEMM backend. This translation unit is the only one compiled
// with -mavx2 -mfma (see src/nn/CMakeLists.txt); when the compiler lacks the
// flags or the target is not x86-64, it degrades to an empty table and the
// dispatch in gemm.cpp never routes here.
//
// Kernel shape: NN/TN use a 4×8 register tile (4 C rows × two 256-bit
// column strips) in broadcast-A form — each B vector load feeds four FMAs,
// and the accumulators live in registers across a whole k panel before
// being added to C. NT keeps both streams contiguous over k and reduces
// 2-wide unrolled dot products. Per C element every path consumes k in
// ascending order, so results match the naive reference to FMA rounding.
#include "nn/kernels/gemm_tables.hpp"

#if defined(__AVX2__) && defined(__FMA__) && defined(__x86_64__)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>

namespace dqn::nn::kernels::detail {

namespace {

constexpr std::size_t kc_block = 256;

template <bool TransA>
inline double a_at(const double* a, std::size_t i, std::size_t kk,
                   std::size_t m, std::size_t k) noexcept {
  if constexpr (TransA)
    return a[kk * m + i];
  else
    return a[i * k + kk];
}

inline double hsum(__m256d v) noexcept {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(sum2, sum2);
  return _mm_cvtsd_f64(_mm_add_sd(sum2, swapped));
}

template <bool TransA>
void gemm_broadcast(const double* a, const double* b, double* c, std::size_t m,
                    std::size_t n, std::size_t k, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0);
  for (std::size_t k0 = 0; k0 < k; k0 += kc_block) {
    const std::size_t k1 = std::min(k, k0 + kc_block);
    std::size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      std::size_t j = 0;
      for (; j + 8 <= n; j += 8) {
        __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
        __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
        __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
        __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const double* b_row = b + kk * n + j;
          const __m256d b0 = _mm256_loadu_pd(b_row);
          const __m256d b1 = _mm256_loadu_pd(b_row + 4);
          const __m256d a0 = _mm256_set1_pd(a_at<TransA>(a, i + 0, kk, m, k));
          c00 = _mm256_fmadd_pd(a0, b0, c00);
          c01 = _mm256_fmadd_pd(a0, b1, c01);
          const __m256d a1 = _mm256_set1_pd(a_at<TransA>(a, i + 1, kk, m, k));
          c10 = _mm256_fmadd_pd(a1, b0, c10);
          c11 = _mm256_fmadd_pd(a1, b1, c11);
          const __m256d a2 = _mm256_set1_pd(a_at<TransA>(a, i + 2, kk, m, k));
          c20 = _mm256_fmadd_pd(a2, b0, c20);
          c21 = _mm256_fmadd_pd(a2, b1, c21);
          const __m256d a3 = _mm256_set1_pd(a_at<TransA>(a, i + 3, kk, m, k));
          c30 = _mm256_fmadd_pd(a3, b0, c30);
          c31 = _mm256_fmadd_pd(a3, b1, c31);
        }
        double* c0 = c + (i + 0) * n + j;
        double* c1 = c + (i + 1) * n + j;
        double* c2 = c + (i + 2) * n + j;
        double* c3 = c + (i + 3) * n + j;
        _mm256_storeu_pd(c0, _mm256_add_pd(_mm256_loadu_pd(c0), c00));
        _mm256_storeu_pd(c0 + 4, _mm256_add_pd(_mm256_loadu_pd(c0 + 4), c01));
        _mm256_storeu_pd(c1, _mm256_add_pd(_mm256_loadu_pd(c1), c10));
        _mm256_storeu_pd(c1 + 4, _mm256_add_pd(_mm256_loadu_pd(c1 + 4), c11));
        _mm256_storeu_pd(c2, _mm256_add_pd(_mm256_loadu_pd(c2), c20));
        _mm256_storeu_pd(c2 + 4, _mm256_add_pd(_mm256_loadu_pd(c2 + 4), c21));
        _mm256_storeu_pd(c3, _mm256_add_pd(_mm256_loadu_pd(c3), c30));
        _mm256_storeu_pd(c3 + 4, _mm256_add_pd(_mm256_loadu_pd(c3 + 4), c31));
      }
      // Column tail (< 8): scalar, still ascending k per element.
      for (; j < n; ++j) {
        double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const double bj = b[kk * n + j];
          s0 += a_at<TransA>(a, i + 0, kk, m, k) * bj;
          s1 += a_at<TransA>(a, i + 1, kk, m, k) * bj;
          s2 += a_at<TransA>(a, i + 2, kk, m, k) * bj;
          s3 += a_at<TransA>(a, i + 3, kk, m, k) * bj;
        }
        c[(i + 0) * n + j] += s0;
        c[(i + 1) * n + j] += s1;
        c[(i + 2) * n + j] += s2;
        c[(i + 3) * n + j] += s3;
      }
    }
    // Row tail (< 4): one-row vector kernel.
    for (; i < m; ++i) {
      double* c_row = c + i * n;
      std::size_t j = 0;
      for (; j + 8 <= n; j += 8) {
        __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const __m256d av = _mm256_set1_pd(a_at<TransA>(a, i, kk, m, k));
          const double* b_row = b + kk * n + j;
          s0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b_row), s0);
          s1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b_row + 4), s1);
        }
        _mm256_storeu_pd(c_row + j,
                         _mm256_add_pd(_mm256_loadu_pd(c_row + j), s0));
        _mm256_storeu_pd(c_row + j + 4,
                         _mm256_add_pd(_mm256_loadu_pd(c_row + j + 4), s1));
      }
      for (; j < n; ++j) {
        double s = 0;
        for (std::size_t kk = k0; kk < k1; ++kk)
          s += a_at<TransA>(a, i, kk, m, k) * b[kk * n + j];
        c_row[j] += s;
      }
    }
  }
}

void avx2_nn(const double* a, const double* b, double* c, std::size_t m,
             std::size_t n, std::size_t k, bool accumulate) {
  gemm_broadcast<false>(a, b, c, m, n, k, accumulate);
}

void avx2_tn(const double* a, const double* b, double* c, std::size_t m,
             std::size_t n, std::size_t k, bool accumulate) {
  gemm_broadcast<true>(a, b, c, m, n, k, accumulate);
}

void avx2_nt(const double* a, const double* b, double* c, std::size_t m,
             std::size_t n, std::size_t k, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* c_row = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* b_row = b + j * k;
      __m256d s0 = _mm256_setzero_pd();
      __m256d s1 = _mm256_setzero_pd();
      std::size_t kk = 0;
      for (; kk + 8 <= k; kk += 8) {
        s0 = _mm256_fmadd_pd(_mm256_loadu_pd(a_row + kk),
                             _mm256_loadu_pd(b_row + kk), s0);
        s1 = _mm256_fmadd_pd(_mm256_loadu_pd(a_row + kk + 4),
                             _mm256_loadu_pd(b_row + kk + 4), s1);
      }
      double dot = hsum(_mm256_add_pd(s0, s1));
      for (; kk < k; ++kk) dot += a_row[kk] * b_row[kk];
      c_row[j] += dot;
    }
  }
}

}  // namespace

const gemm_table& avx2_table() noexcept {
  static const gemm_table table{avx2_nn, avx2_tn, avx2_nt};
  return table;
}

}  // namespace dqn::nn::kernels::detail

#else  // AVX2 path not compiled in

namespace dqn::nn::kernels::detail {

const gemm_table& avx2_table() noexcept {
  static const gemm_table table{};
  return table;
}

}  // namespace dqn::nn::kernels::detail

#endif
