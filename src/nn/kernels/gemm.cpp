#include "nn/kernels/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>

#include "nn/kernels/gemm_tables.hpp"
#include "obs/sink.hpp"
#include "util/annotations.hpp"

namespace dqn::nn::kernels {

namespace {

// --- Naive reference (the seed repo's triple loops, zero-skip removed) -----
//
// Kept verbatim as the semantics the fast kernels are tested against: i-k-j
// with ascending-k accumulation per output element.

void naive_nn(const double* a, const double* b, double* c, std::size_t m,
              std::size_t n, std::size_t k, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    double* c_row = c + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = a[i * k + kk];
      const double* b_row = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) c_row[j] += aik * b_row[j];
    }
  }
}

void naive_tn(const double* a, const double* b, double* c, std::size_t m,
              std::size_t n, std::size_t k, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0);
  for (std::size_t kk = 0; kk < k; ++kk) {
    const double* a_row = a + kk * m;
    const double* b_row = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double aki = a_row[i];
      double* c_row = c + i * n;
      for (std::size_t j = 0; j < n; ++j) c_row[j] += aki * b_row[j];
    }
  }
}

void naive_nt(const double* a, const double* b, double* c, std::size_t m,
              std::size_t n, std::size_t k, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* c_row = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* b_row = b + j * k;
      double acc = 0;
      for (std::size_t kk = 0; kk < k; ++kk) acc += a_row[kk] * b_row[kk];
      c_row[j] += acc;
    }
  }
}

// --- Portable cache-blocked scalar kernel ----------------------------------
//
// Broadcast-A form shared by NN and TN (they differ only in how A is
// indexed): k is blocked so the B panel a row of C accumulates against stays
// L2-resident, and rows are processed in 4-row bundles so each B row loaded
// serves four accumulating C rows. Per C element, k is still consumed in
// ascending order — same association as the naive reference.

constexpr std::size_t kc_block = 256;  // B panel: 256 rows × n cols

template <bool TransA>
inline double a_at(const double* a, std::size_t i, std::size_t kk,
                   std::size_t m, std::size_t k) noexcept {
  if constexpr (TransA)
    return a[kk * m + i];
  else
    return a[i * k + kk];
}

template <bool TransA>
void blocked_broadcast(const double* a, const double* b, double* c,
                       std::size_t m, std::size_t n, std::size_t k,
                       bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0);
  for (std::size_t k0 = 0; k0 < k; k0 += kc_block) {
    const std::size_t k1 = std::min(k, k0 + kc_block);
    std::size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      double* c0 = c + (i + 0) * n;
      double* c1 = c + (i + 1) * n;
      double* c2 = c + (i + 2) * n;
      double* c3 = c + (i + 3) * n;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const double* b_row = b + kk * n;
        const double a0 = a_at<TransA>(a, i + 0, kk, m, k);
        const double a1 = a_at<TransA>(a, i + 1, kk, m, k);
        const double a2 = a_at<TransA>(a, i + 2, kk, m, k);
        const double a3 = a_at<TransA>(a, i + 3, kk, m, k);
        for (std::size_t j = 0; j < n; ++j) {
          const double bj = b_row[j];
          c0[j] += a0 * bj;
          c1[j] += a1 * bj;
          c2[j] += a2 * bj;
          c3[j] += a3 * bj;
        }
      }
    }
    for (; i < m; ++i) {
      double* c_row = c + i * n;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const double aik = a_at<TransA>(a, i, kk, m, k);
        const double* b_row = b + kk * n;
        for (std::size_t j = 0; j < n; ++j) c_row[j] += aik * b_row[j];
      }
    }
  }
}

void blocked_nn(const double* a, const double* b, double* c, std::size_t m,
                std::size_t n, std::size_t k, bool accumulate) {
  blocked_broadcast<false>(a, b, c, m, n, k, accumulate);
}

void blocked_tn(const double* a, const double* b, double* c, std::size_t m,
                std::size_t n, std::size_t k, bool accumulate) {
  blocked_broadcast<true>(a, b, c, m, n, k, accumulate);
}

// NT (dot-product form): both streams are contiguous over k; 2×2 output
// tiling quarters the number of passes over B.
void blocked_nt(const double* a, const double* b, double* c, std::size_t m,
                std::size_t n, std::size_t k, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0);
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const double* a0 = a + (i + 0) * k;
    const double* a1 = a + (i + 1) * k;
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      const double* b0 = b + (j + 0) * k;
      const double* b1 = b + (j + 1) * k;
      double s00 = 0, s01 = 0, s10 = 0, s11 = 0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double x0 = a0[kk], x1 = a1[kk];
        const double y0 = b0[kk], y1 = b1[kk];
        s00 += x0 * y0;
        s01 += x0 * y1;
        s10 += x1 * y0;
        s11 += x1 * y1;
      }
      c[(i + 0) * n + j] += s00;
      c[(i + 0) * n + j + 1] += s01;
      c[(i + 1) * n + j] += s10;
      c[(i + 1) * n + j + 1] += s11;
    }
    for (; j < n; ++j) {
      const double* b0 = b + j * k;
      double s0 = 0, s1 = 0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        s0 += a0[kk] * b0[kk];
        s1 += a1[kk] * b0[kk];
      }
      c[(i + 0) * n + j] += s0;
      c[(i + 1) * n + j] += s1;
    }
  }
  for (; i < m; ++i) {
    const double* a0 = a + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const double* b0 = b + j * k;
      double s = 0;
      for (std::size_t kk = 0; kk < k; ++kk) s += a0[kk] * b0[kk];
      c[i * n + j] += s;
    }
  }
}

// --- CPU feature detection -------------------------------------------------

// __builtin_cpu_supports requires string literals, hence one function per
// feature set instead of a cpu_has(name) helper.
bool cpu_has_avx2_fma() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0 &&
         __builtin_cpu_supports("fma") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512f() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

DQN_HOT_PATH const detail::gemm_table& table_for(backend be) noexcept {
  switch (be) {
    case backend::naive: return detail::naive_table();
    case backend::blocked: return detail::blocked_table();
    case backend::avx2: return detail::avx2_table();
    case backend::avx512: return detail::avx512_table();
  }
  return detail::naive_table();
}

backend select_startup_backend() noexcept {
  if (const char* env = std::getenv("DQN_KERNEL_BACKEND")) {
    const std::string_view want{env};
    for (const backend be : {backend::naive, backend::blocked, backend::avx2,
                             backend::avx512}) {
      if (want == to_string(be) && backend_supported(be)) return be;
    }
    // Unknown or unsupported request: fall through to auto-selection
    // (startup must not throw; report_dispatch makes the outcome visible).
  }
  return best_supported_backend();
}

std::atomic<backend>& active_slot() noexcept {
  static std::atomic<backend> slot{select_startup_backend()};
  return slot;
}

}  // namespace

namespace detail {

const gemm_table& naive_table() noexcept {
  static const gemm_table table{naive_nn, naive_tn, naive_nt};
  return table;
}

const gemm_table& blocked_table() noexcept {
  static const gemm_table table{blocked_nn, blocked_tn, blocked_nt};
  return table;
}

}  // namespace detail

const char* to_string(backend be) noexcept {
  switch (be) {
    case backend::naive: return "naive";
    case backend::blocked: return "blocked";
    case backend::avx2: return "avx2";
    case backend::avx512: return "avx512";
  }
  return "?";
}

bool backend_supported(backend be) noexcept {
  switch (be) {
    case backend::naive:
    case backend::blocked: return true;
    case backend::avx2:
      return detail::avx2_table().complete() && cpu_has_avx2_fma();
    case backend::avx512:
      return detail::avx512_table().complete() && cpu_has_avx512f();
  }
  return false;
}

backend best_supported_backend() noexcept {
  if (backend_supported(backend::avx512)) return backend::avx512;
  if (backend_supported(backend::avx2)) return backend::avx2;
  return backend::blocked;
}

DQN_HOT_PATH backend active_backend() noexcept {
  return active_slot().load(std::memory_order_relaxed);
}

void force_backend(backend be) {
  if (!backend_supported(be))
    throw std::invalid_argument{std::string{"force_backend: backend '"} +
                                to_string(be) +
                                "' is not supported on this build/CPU"};
  active_slot().store(be, std::memory_order_relaxed);
}

void reset_backend() noexcept {
  active_slot().store(select_startup_backend(), std::memory_order_relaxed);
}

void report_dispatch(obs::sink& sink) {
  const backend be = active_backend();
  const auto id = static_cast<double>(static_cast<std::uint8_t>(be));
  sink.gauge_handle_for("nn.kernel_backend").set(id);
  sink.event("nn", "kernel_dispatch", 0, sink.now(), 0.0, id);
}

DQN_HOT_PATH void gemm_nn(const double* a, const double* b, double* c,
                            std::size_t m, std::size_t n, std::size_t k,
                            bool accumulate) {
  table_for(active_backend()).nn(a, b, c, m, n, k, accumulate);
}

DQN_HOT_PATH void gemm_tn(const double* a, const double* b, double* c,
                            std::size_t m, std::size_t n, std::size_t k,
                            bool accumulate) {
  table_for(active_backend()).tn(a, b, c, m, n, k, accumulate);
}

DQN_HOT_PATH void gemm_nt(const double* a, const double* b, double* c,
                            std::size_t m, std::size_t n, std::size_t k,
                            bool accumulate) {
  table_for(active_backend()).nt(a, b, c, m, n, k, accumulate);
}

namespace {

const detail::gemm_table& checked_table(backend be) {
  if (!backend_supported(be))
    throw std::invalid_argument{std::string{"gemm: backend '"} +
                                to_string(be) +
                                "' is not supported on this build/CPU"};
  return table_for(be);
}

}  // namespace

void gemm_nn(backend be, const double* a, const double* b, double* c,
             std::size_t m, std::size_t n, std::size_t k, bool accumulate) {
  checked_table(be).nn(a, b, c, m, n, k, accumulate);
}

void gemm_tn(backend be, const double* a, const double* b, double* c,
             std::size_t m, std::size_t n, std::size_t k, bool accumulate) {
  checked_table(be).tn(a, b, c, m, n, k, accumulate);
}

void gemm_nt(backend be, const double* a, const double* b, double* c,
             std::size_t m, std::size_t n, std::size_t k, bool accumulate) {
  checked_table(be).nt(a, b, c, m, n, k, accumulate);
}

void transpose_blocked(const double* in, double* out, std::size_t rows,
                       std::size_t cols) {
  constexpr std::size_t tile = 32;  // 32×32 doubles = two 4 KB pages
  for (std::size_t r0 = 0; r0 < rows; r0 += tile) {
    const std::size_t r1 = std::min(rows, r0 + tile);
    for (std::size_t c0 = 0; c0 < cols; c0 += tile) {
      const std::size_t c1 = std::min(cols, c0 + tile);
      for (std::size_t r = r0; r < r1; ++r)
        for (std::size_t c = c0; c < c1; ++c)
          out[c * rows + r] = in[r * cols + c];
    }
  }
}

}  // namespace dqn::nn::kernels
