// AVX-512F GEMM backend. Compiled with -mavx512f only for this translation
// unit (see src/nn/CMakeLists.txt); otherwise degrades to an empty table.
//
// Same structure as the AVX2 backend but with 512-bit lanes: NN/TN use a
// 4×16 register tile (4 C rows × two 512-bit column strips) in broadcast-A
// form, NT reduces 2-wide unrolled dot products with masked tails. Per C
// element every path consumes k in ascending order, so results match the
// naive reference to FMA rounding.
#include "nn/kernels/gemm_tables.hpp"

#if defined(__AVX512F__) && defined(__x86_64__)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>

// GCC's -Wmaybe-uninitialized false-positives on _mm512_maskz_loadu_pd's
// intrinsic expansion (the masked-off lanes look uninitialized to the
// analyzer even though maskz zeroes them by definition).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace dqn::nn::kernels::detail {

namespace {

constexpr std::size_t kc_block = 256;

template <bool TransA>
inline double a_at(const double* a, std::size_t i, std::size_t kk,
                   std::size_t m, std::size_t k) noexcept {
  if constexpr (TransA)
    return a[kk * m + i];
  else
    return a[i * k + kk];
}

template <bool TransA>
void gemm_broadcast(const double* a, const double* b, double* c, std::size_t m,
                    std::size_t n, std::size_t k, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0);
  for (std::size_t k0 = 0; k0 < k; k0 += kc_block) {
    const std::size_t k1 = std::min(k, k0 + kc_block);
    std::size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      std::size_t j = 0;
      for (; j + 16 <= n; j += 16) {
        __m512d c00 = _mm512_setzero_pd(), c01 = _mm512_setzero_pd();
        __m512d c10 = _mm512_setzero_pd(), c11 = _mm512_setzero_pd();
        __m512d c20 = _mm512_setzero_pd(), c21 = _mm512_setzero_pd();
        __m512d c30 = _mm512_setzero_pd(), c31 = _mm512_setzero_pd();
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const double* b_row = b + kk * n + j;
          const __m512d b0 = _mm512_loadu_pd(b_row);
          const __m512d b1 = _mm512_loadu_pd(b_row + 8);
          const __m512d a0 = _mm512_set1_pd(a_at<TransA>(a, i + 0, kk, m, k));
          c00 = _mm512_fmadd_pd(a0, b0, c00);
          c01 = _mm512_fmadd_pd(a0, b1, c01);
          const __m512d a1 = _mm512_set1_pd(a_at<TransA>(a, i + 1, kk, m, k));
          c10 = _mm512_fmadd_pd(a1, b0, c10);
          c11 = _mm512_fmadd_pd(a1, b1, c11);
          const __m512d a2 = _mm512_set1_pd(a_at<TransA>(a, i + 2, kk, m, k));
          c20 = _mm512_fmadd_pd(a2, b0, c20);
          c21 = _mm512_fmadd_pd(a2, b1, c21);
          const __m512d a3 = _mm512_set1_pd(a_at<TransA>(a, i + 3, kk, m, k));
          c30 = _mm512_fmadd_pd(a3, b0, c30);
          c31 = _mm512_fmadd_pd(a3, b1, c31);
        }
        double* c0 = c + (i + 0) * n + j;
        double* c1 = c + (i + 1) * n + j;
        double* c2 = c + (i + 2) * n + j;
        double* c3 = c + (i + 3) * n + j;
        _mm512_storeu_pd(c0, _mm512_add_pd(_mm512_loadu_pd(c0), c00));
        _mm512_storeu_pd(c0 + 8, _mm512_add_pd(_mm512_loadu_pd(c0 + 8), c01));
        _mm512_storeu_pd(c1, _mm512_add_pd(_mm512_loadu_pd(c1), c10));
        _mm512_storeu_pd(c1 + 8, _mm512_add_pd(_mm512_loadu_pd(c1 + 8), c11));
        _mm512_storeu_pd(c2, _mm512_add_pd(_mm512_loadu_pd(c2), c20));
        _mm512_storeu_pd(c2 + 8, _mm512_add_pd(_mm512_loadu_pd(c2 + 8), c21));
        _mm512_storeu_pd(c3, _mm512_add_pd(_mm512_loadu_pd(c3), c30));
        _mm512_storeu_pd(c3 + 8, _mm512_add_pd(_mm512_loadu_pd(c3 + 8), c31));
      }
      // Column tail (< 16): one masked 8-lane strip at a time.
      for (; j < n; j += 8) {
        const std::size_t lanes = std::min<std::size_t>(8, n - j);
        const __mmask8 mask = static_cast<__mmask8>((1U << lanes) - 1U);
        __m512d s0 = _mm512_setzero_pd(), s1 = _mm512_setzero_pd();
        __m512d s2 = _mm512_setzero_pd(), s3 = _mm512_setzero_pd();
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const __m512d bv = _mm512_maskz_loadu_pd(mask, b + kk * n + j);
          s0 = _mm512_fmadd_pd(
              _mm512_set1_pd(a_at<TransA>(a, i + 0, kk, m, k)), bv, s0);
          s1 = _mm512_fmadd_pd(
              _mm512_set1_pd(a_at<TransA>(a, i + 1, kk, m, k)), bv, s1);
          s2 = _mm512_fmadd_pd(
              _mm512_set1_pd(a_at<TransA>(a, i + 2, kk, m, k)), bv, s2);
          s3 = _mm512_fmadd_pd(
              _mm512_set1_pd(a_at<TransA>(a, i + 3, kk, m, k)), bv, s3);
        }
        double* c0 = c + (i + 0) * n + j;
        double* c1 = c + (i + 1) * n + j;
        double* c2 = c + (i + 2) * n + j;
        double* c3 = c + (i + 3) * n + j;
        _mm512_mask_storeu_pd(
            c0, mask, _mm512_add_pd(_mm512_maskz_loadu_pd(mask, c0), s0));
        _mm512_mask_storeu_pd(
            c1, mask, _mm512_add_pd(_mm512_maskz_loadu_pd(mask, c1), s1));
        _mm512_mask_storeu_pd(
            c2, mask, _mm512_add_pd(_mm512_maskz_loadu_pd(mask, c2), s2));
        _mm512_mask_storeu_pd(
            c3, mask, _mm512_add_pd(_mm512_maskz_loadu_pd(mask, c3), s3));
      }
    }
    // Row tail (< 4): one-row masked kernel.
    for (; i < m; ++i) {
      double* c_row = c + i * n;
      for (std::size_t j = 0; j < n; j += 8) {
        const std::size_t lanes = std::min<std::size_t>(8, n - j);
        const __mmask8 mask = static_cast<__mmask8>((1U << lanes) - 1U);
        __m512d s = _mm512_setzero_pd();
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const __m512d av = _mm512_set1_pd(a_at<TransA>(a, i, kk, m, k));
          s = _mm512_fmadd_pd(av, _mm512_maskz_loadu_pd(mask, b + kk * n + j),
                              s);
        }
        _mm512_mask_storeu_pd(
            c_row + j, mask,
            _mm512_add_pd(_mm512_maskz_loadu_pd(mask, c_row + j), s));
      }
    }
  }
}

void avx512_nn(const double* a, const double* b, double* c, std::size_t m,
               std::size_t n, std::size_t k, bool accumulate) {
  gemm_broadcast<false>(a, b, c, m, n, k, accumulate);
}

void avx512_tn(const double* a, const double* b, double* c, std::size_t m,
               std::size_t n, std::size_t k, bool accumulate) {
  gemm_broadcast<true>(a, b, c, m, n, k, accumulate);
}

void avx512_nt(const double* a, const double* b, double* c, std::size_t m,
               std::size_t n, std::size_t k, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* c_row = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* b_row = b + j * k;
      __m512d s0 = _mm512_setzero_pd();
      __m512d s1 = _mm512_setzero_pd();
      std::size_t kk = 0;
      for (; kk + 16 <= k; kk += 16) {
        s0 = _mm512_fmadd_pd(_mm512_loadu_pd(a_row + kk),
                             _mm512_loadu_pd(b_row + kk), s0);
        s1 = _mm512_fmadd_pd(_mm512_loadu_pd(a_row + kk + 8),
                             _mm512_loadu_pd(b_row + kk + 8), s1);
      }
      double dot = _mm512_reduce_add_pd(_mm512_add_pd(s0, s1));
      for (; kk < k; ++kk) dot += a_row[kk] * b_row[kk];
      c_row[j] += dot;
    }
  }
}

}  // namespace

const gemm_table& avx512_table() noexcept {
  static const gemm_table table{avx512_nn, avx512_tn, avx512_nt};
  return table;
}

}  // namespace dqn::nn::kernels::detail

#else  // AVX-512 path not compiled in

namespace dqn::nn::kernels::detail {

const gemm_table& avx512_table() noexcept {
  static const gemm_table table{};
  return table;
}

}  // namespace dqn::nn::kernels::detail

#endif
