#include "nn/kernels/epilogue.hpp"

#include <cmath>

namespace dqn::nn::kernels {

namespace {

[[nodiscard]] double sigmoid(double x) noexcept {
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

void bias_act(double* c, const double* bias, std::size_t rows,
              std::size_t cols, unary act) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = c + r * cols;
    switch (act) {
      case unary::identity:
        for (std::size_t j = 0; j < cols; ++j) row[j] += bias[j];
        break;
      case unary::relu:
        for (std::size_t j = 0; j < cols; ++j) {
          const double v = row[j] + bias[j];
          row[j] = v > 0 ? v : 0;
        }
        break;
      case unary::tanh:
        for (std::size_t j = 0; j < cols; ++j)
          row[j] = std::tanh(row[j] + bias[j]);
        break;
      case unary::sigmoid:
        for (std::size_t j = 0; j < cols; ++j) row[j] = sigmoid(row[j] + bias[j]);
        break;
    }
  }
}

void lstm_gates(double* z, const double* bias, std::size_t batch,
                std::size_t hidden) {
  const std::size_t width = 4 * hidden;
  for (std::size_t bi = 0; bi < batch; ++bi) {
    double* row = z + bi * width;
    for (std::size_t j = 0; j < hidden; ++j) row[j] = sigmoid(row[j] + bias[j]);
    for (std::size_t j = hidden; j < 2 * hidden; ++j)
      row[j] = sigmoid(row[j] + bias[j]);
    for (std::size_t j = 2 * hidden; j < 3 * hidden; ++j)
      row[j] = std::tanh(row[j] + bias[j]);
    for (std::size_t j = 3 * hidden; j < width; ++j)
      row[j] = sigmoid(row[j] + bias[j]);
  }
}

void lstm_state(const double* gates, double* c, double* h, std::size_t batch,
                std::size_t hidden) {
  const std::size_t width = 4 * hidden;
  for (std::size_t bi = 0; bi < batch; ++bi) {
    const double* g = gates + bi * width;
    double* c_row = c + bi * hidden;
    double* h_row = h + bi * hidden;
    for (std::size_t j = 0; j < hidden; ++j) {
      const double cn = g[hidden + j] * c_row[j] + g[j] * g[2 * hidden + j];
      c_row[j] = cn;
      h_row[j] = g[3 * hidden + j] * std::tanh(cn);
    }
  }
}

}  // namespace dqn::nn::kernels
