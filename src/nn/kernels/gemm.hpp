// GEMM kernel layer: cache-blocked, SIMD-vectorized matrix multiply over
// row-major double panels, with runtime backend dispatch.
//
// Three operand orders cover everything the layers need (nn/matrix.hpp keeps
// the matrix-typed wrappers on top of these):
//   gemm_nn : C (m×n) ?= A (m×k)  · B (k×n)
//   gemm_tn : C (m×n) ?= Aᵀ(k×m)ᵀ · B (k×n)   (A stored k×m)
//   gemm_nt : C (m×n) ?= A (m×k)  · Bᵀ(n×k)ᵀ  (B stored n×k)
// `accumulate` selects += (true) vs = (false). Operands must be contiguous
// row-major and must not alias C.
//
// Backends, weakest to strongest:
//   naive   — the original triple loop, retained as the parity/bench
//             reference (never auto-selected);
//   blocked — portable cache-blocked scalar kernel, the fallback floor;
//   avx2    — 4×8 register-tiled FMA micro-kernel (x86-64, AVX2+FMA);
//   avx512  — 4×16 register-tiled micro-kernel (x86-64, AVX-512F).
// The active backend is selected once, at first use: the strongest backend
// both compiled in and supported by the running CPU, overridable with the
// DQN_KERNEL_BACKEND environment variable (naive|blocked|avx2|avx512;
// silently ignored when unsupported — startup cannot throw). Tests and
// benches can pin a backend with force_backend().
//
// Numerics: all backends accumulate over k in ascending order per output
// element, so they agree with the naive reference to FMA-rounding and
// panel-partial-sum association — within 1e-10 relative of the reference
// (tests/test_kernels.cpp holds every backend to that bound).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dqn::obs {
class sink;
}  // namespace dqn::obs

namespace dqn::nn::kernels {

enum class backend : std::uint8_t { naive = 0, blocked = 1, avx2 = 2, avx512 = 3 };

[[nodiscard]] const char* to_string(backend be) noexcept;

// Compiled in AND usable on the running CPU.
[[nodiscard]] bool backend_supported(backend be) noexcept;
// Strongest supported backend (never naive; blocked is the floor).
[[nodiscard]] backend best_supported_backend() noexcept;
// The backend dispatch currently routes through.
[[nodiscard]] backend active_backend() noexcept;
// Pin the dispatch (tests/benches). Throws std::invalid_argument when `be`
// is not supported on this build/CPU.
void force_backend(backend be);
// Re-run startup selection (best supported + DQN_KERNEL_BACKEND override).
void reset_backend() noexcept;

// Record the dispatch decision on an obs sink: gauge "nn.kernel_backend"
// (numeric enum value) plus one "nn"/"kernel_dispatch" trace event whose
// value is the same id. Call once per sink; cheap either way.
void report_dispatch(obs::sink& sink);

// Dispatched entry points (the ones nn::matmul* ride on).
void gemm_nn(const double* a, const double* b, double* c, std::size_t m,
             std::size_t n, std::size_t k, bool accumulate);
void gemm_tn(const double* a, const double* b, double* c, std::size_t m,
             std::size_t n, std::size_t k, bool accumulate);
void gemm_nt(const double* a, const double* b, double* c, std::size_t m,
             std::size_t n, std::size_t k, bool accumulate);

// Explicit-backend entry points (parity tests, naive-vs-X benches). Throws
// std::invalid_argument for an unsupported backend.
void gemm_nn(backend be, const double* a, const double* b, double* c,
             std::size_t m, std::size_t n, std::size_t k, bool accumulate);
void gemm_tn(backend be, const double* a, const double* b, double* c,
             std::size_t m, std::size_t n, std::size_t k, bool accumulate);
void gemm_nt(backend be, const double* a, const double* b, double* c,
             std::size_t m, std::size_t n, std::size_t k, bool accumulate);

// Cache-blocked transpose: out (cols×rows) = inᵀ for row-major in (rows×cols).
// Blocked 32×32 so both streams stay tile-local instead of one of them
// striding a full row per element.
void transpose_blocked(const double* in, double* out, std::size_t rows,
                       std::size_t cols);

}  // namespace dqn::nn::kernels
