#include "nn/adam.hpp"

#include <cmath>
#include <stdexcept>

namespace dqn::nn {

adam::adam(param_list params, const adam_config& config)
    : params_{std::move(params)}, config_{config} {
  if (params_.empty()) throw std::invalid_argument{"adam: no parameters"};
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value->size(), 0.0);
    v_.emplace_back(p.value->size(), 0.0);
  }
}

void adam::step() {
  ++t_;
  // Global-norm gradient clipping.
  if (config_.grad_clip > 0) {
    double norm2 = 0;
    for (const auto& p : params_)
      for (double g : *p.grad) norm2 += g * g;
    const double norm = std::sqrt(norm2);
    if (norm > config_.grad_clip) {
      const double scale = config_.grad_clip / norm;
      for (const auto& p : params_)
        for (auto& g : *p.grad) g *= scale;
    }
  }
  const double bias1 = 1 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bias2 = 1 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& value = *params_[i].value;
    auto& grad = *params_[i].grad;
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < value.size(); ++j) {
      m[j] = config_.beta1 * m[j] + (1 - config_.beta1) * grad[j];
      v[j] = config_.beta2 * v[j] + (1 - config_.beta2) * grad[j] * grad[j];
      const double m_hat = m[j] / bias1;
      const double v_hat = v[j] / bias2;
      value[j] -= config_.learning_rate * m_hat / (std::sqrt(v_hat) + config_.epsilon);
      grad[j] = 0;
    }
  }
}

}  // namespace dqn::nn
