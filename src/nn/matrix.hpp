// Dense row-major matrix and the linear-algebra kernels the neural substrate
// is built on. Everything is double precision: the models are small (the
// paper's Table 1 hyper-parameters, scaled for CPU), and doubles make the
// finite-difference gradient checks in the test suite decisive.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <stdexcept>

#include "nn/aligned.hpp"
#include "util/rng.hpp"

namespace dqn::nn {

class matrix {
 public:
  matrix() = default;
  matrix(std::size_t rows, std::size_t cols)
      : rows_{rows}, cols_{cols}, data_(rows * cols, 0.0) {}
  matrix(std::size_t rows, std::size_t cols, aligned_vector data)
      : rows_{rows}, cols_{cols}, data_{std::move(data)} {
    if (data_.size() != rows * cols)
      throw std::invalid_argument{"matrix: data size does not match shape"};
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] aligned_vector& data() noexcept { return data_; }
  [[nodiscard]] const aligned_vector& data() const noexcept { return data_; }

  void fill(double value) noexcept {
    for (auto& x : data_) x = value;
  }

  // Reshape without shrinking the underlying allocation: once the buffer has
  // grown to the largest shape a call site uses, later resizes are free.
  // Contents after resize are unspecified (workspace users overwrite).
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  // Doubles currently reserved by the backing allocation (for the
  // nn.workspace_bytes gauge and the zero-allocation tests).
  [[nodiscard]] std::size_t capacity() const noexcept { return data_.capacity(); }

  // Gaussian init with the given standard deviation.
  static matrix randn(std::size_t rows, std::size_t cols, util::rng& rng,
                      double stddev) {
    matrix m{rows, cols};
    for (auto& x : m.data_) x = rng.normal(0.0, stddev);
    return m;
  }

  // Xavier/Glorot uniform init, the default for the layer weights.
  static matrix glorot(std::size_t rows, std::size_t cols, util::rng& rng) {
    matrix m{rows, cols};
    const double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
    for (auto& x : m.data_) x = rng.uniform(-limit, limit);
    return m;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  aligned_vector data_;
};

// out = a * b            (m×k · k×n → m×n)
[[nodiscard]] matrix matmul(const matrix& a, const matrix& b);
// out = aᵀ * b           (k×m · k×n → m×n); used for weight gradients.
[[nodiscard]] matrix matmul_tn(const matrix& a, const matrix& b);
// out = a * bᵀ           (m×k · n×k → m×n); used for input gradients.
[[nodiscard]] matrix matmul_nt(const matrix& a, const matrix& b);

// Accumulating variants (out += ...), used in backward passes.
void matmul_acc(const matrix& a, const matrix& b, matrix& out);
void matmul_tn_acc(const matrix& a, const matrix& b, matrix& out);
void matmul_nt_acc(const matrix& a, const matrix& b, matrix& out);

// Elementwise helpers.
void add_inplace(matrix& a, const matrix& b);
void add_row_vector(matrix& m, std::span<const double> bias);
[[nodiscard]] matrix hadamard(const matrix& a, const matrix& b);
[[nodiscard]] matrix transpose(const matrix& m);

// Binary (de)serialization of a matrix.
void save_matrix(std::ostream& out, const matrix& m);
[[nodiscard]] matrix load_matrix(std::istream& in);

}  // namespace dqn::nn
