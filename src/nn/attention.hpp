// Multi-head scaled-dot-product self-attention over packet windows. The PTM
// uses 3 parallel heads (Table 1) on top of the BLSTM encoder so the model
// can attend to the packets that actually contend for the same queue.
#pragma once

#include <iosfwd>
#include <vector>

#include "nn/matrix.hpp"
#include "nn/params.hpp"
#include "nn/seq.hpp"
#include "nn/workspace.hpp"
#include "util/rng.hpp"

namespace dqn::nn {

struct attention_config {
  std::size_t model_dim = 64;  // D: input feature width (BLSTM output)
  std::size_t heads = 3;
  std::size_t key_dim = 16;    // d_k per head
  std::size_t value_dim = 16;  // d_v per head
  std::size_t out_dim = 64;    // output projection width
};

class multi_head_attention {
 public:
  multi_head_attention() = default;
  multi_head_attention(const attention_config& config, util::rng& rng);

  // x: (B, T, D) → (B, T, out_dim). Caches per-sample activations.
  [[nodiscard]] seq_batch forward(const seq_batch& x);
  [[nodiscard]] seq_batch forward_const(const seq_batch& x) const;
  // Allocation-free inference forward: per-head scratch (q/k/v/scores) is
  // hoisted out of the sample loop into `ws` slots and reused across the
  // whole batch. Result valid until the next ws.reset().
  [[nodiscard]] const seq_batch& forward(const seq_batch& x, workspace& ws) const;

  [[nodiscard]] seq_batch backward(const seq_batch& grad_out);

  void collect_params(param_list& out);

  [[nodiscard]] const attention_config& config() const noexcept { return config_; }

  // Attention weights of head `h` for sample `b` from the last forward pass:
  // row i gives the distribution over the window positions packet i attends
  // to. Exposed for the interpretability example.
  [[nodiscard]] const matrix& attention_weights(std::size_t b, std::size_t h) const;

  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  struct head_cache {
    matrix q, k, v;  // (T, dk/dv)
    matrix attn;     // (T, T) softmax weights
  };
  struct sample_cache {
    matrix x;       // (T, D)
    matrix concat;  // (T, heads*dv)
    std::vector<head_cache> heads;
  };

  // Forward for a single sample; fills cache if non-null.
  [[nodiscard]] matrix forward_sample(const matrix& x, sample_cache* cache) const;

  attention_config config_;
  std::vector<matrix> wq_, wk_, wv_;  // per head: (D, dk), (D, dk), (D, dv)
  matrix wo_;                         // (heads*dv, out_dim)
  std::vector<matrix> gwq_, gwk_, gwv_;
  matrix gwo_;
  std::vector<sample_cache> caches_;
};

}  // namespace dqn::nn
