#include "nn/lstm.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "nn/kernels/epilogue.hpp"
#include "nn/kernels/gemm.hpp"
#include "util/check.hpp"

namespace dqn::nn {

namespace {

[[nodiscard]] double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

lstm::lstm(std::size_t input_dim, std::size_t hidden_dim, bool reverse, util::rng& rng)
    : wx_{matrix::glorot(input_dim, 4 * hidden_dim, rng)},
      wh_{matrix::glorot(hidden_dim, 4 * hidden_dim, rng)},
      b_(4 * hidden_dim, 0.0),
      gwx_{input_dim, 4 * hidden_dim},
      gwh_{hidden_dim, 4 * hidden_dim},
      gb_(4 * hidden_dim, 0.0),
      reverse_{reverse} {
  // Initialize forget-gate bias to 1: the standard trick to keep gradients
  // flowing early in training.
  for (std::size_t j = hidden_dim; j < 2 * hidden_dim; ++j) b_[j] = 1.0;
}

void lstm::step(const matrix& x_t, matrix& h, matrix& c, step_cache* cache) const {
  const std::size_t hidden = wh_.rows();
  matrix z = matmul(x_t, wx_);
  matmul_acc(h, wh_, z);
  add_row_vector(z, b_);
  const std::size_t batch = x_t.rows();
  matrix gates{batch, 4 * hidden};
  matrix c_next{batch, hidden};
  matrix h_next{batch, hidden};
  for (std::size_t bi = 0; bi < batch; ++bi) {
    for (std::size_t j = 0; j < hidden; ++j) {
      const double zi = z(bi, j);
      const double zf = z(bi, hidden + j);
      const double zg = z(bi, 2 * hidden + j);
      const double zo = z(bi, 3 * hidden + j);
      const double gi = sigmoid(zi);
      const double gf = sigmoid(zf);
      const double gg = std::tanh(zg);
      const double go = sigmoid(zo);
      gates(bi, j) = gi;
      gates(bi, hidden + j) = gf;
      gates(bi, 2 * hidden + j) = gg;
      gates(bi, 3 * hidden + j) = go;
      const double cn = gf * c(bi, j) + gi * gg;
      c_next(bi, j) = cn;
      h_next(bi, j) = go * std::tanh(cn);
    }
  }
  if (cache != nullptr) {
    cache->x = x_t;
    cache->gates = gates;
    cache->c_prev = c;
    cache->h_prev = h;
    cache->c = c_next;
    cache->h = h_next;
  }
  c = std::move(c_next);
  h = std::move(h_next);
}

seq_batch lstm::forward(const seq_batch& x) {
  DQN_CHECK(x.features() == input_dim(), "lstm::forward: got ", x.features(),
            " features, want ", input_dim());
  const std::size_t batch = x.batch(), time = x.time(), hidden = hidden_dim();
  caches_.assign(time, {});
  cached_time_ = time;
  seq_batch out{batch, time, hidden};
  matrix h{batch, hidden};
  matrix c{batch, hidden};
  for (std::size_t s = 0; s < time; ++s) {
    const std::size_t t = reverse_ ? time - 1 - s : s;
    step(x.time_slice(t), h, c, &caches_[s]);
    out.set_time_slice(t, h);
  }
  return out;
}

seq_batch lstm::forward_const(const seq_batch& x) const {
  DQN_CHECK(x.features() == input_dim(), "lstm::forward_const: got ",
            x.features(), " features, want ", input_dim());
  const std::size_t batch = x.batch(), time = x.time(), hidden = hidden_dim();
  seq_batch out{batch, time, hidden};
  matrix h{batch, hidden};
  matrix c{batch, hidden};
  for (std::size_t s = 0; s < time; ++s) {
    const std::size_t t = reverse_ ? time - 1 - s : s;
    step(x.time_slice(t), h, c, nullptr);
    out.set_time_slice(t, h);
  }
  return out;
}

const seq_batch& lstm::forward(const seq_batch& x, workspace& ws) const {
  DQN_CHECK(x.features() == input_dim(), "lstm::forward: got ", x.features(),
            " features, want ", input_dim());
  const std::size_t batch = x.batch(), time = x.time(), hidden = hidden_dim();
  seq_batch& out = ws.take_seq(batch, time, hidden);
  matrix& h = ws.take_zeroed(batch, hidden);
  matrix& c = ws.take_zeroed(batch, hidden);
  matrix& xt = ws.take(batch, input_dim());
  matrix& z = ws.take(batch, 4 * hidden);
  for (std::size_t s = 0; s < time; ++s) {
    const std::size_t t = reverse_ ? time - 1 - s : s;
    x.time_slice_into(t, xt);
    kernels::gemm_nn(xt.data().data(), wx_.data().data(), z.data().data(),
                     batch, 4 * hidden, input_dim(), /*accumulate=*/false);
    kernels::gemm_nn(h.data().data(), wh_.data().data(), z.data().data(),
                     batch, 4 * hidden, hidden, /*accumulate=*/true);
    kernels::lstm_gates(z.data().data(), b_.data(), batch, hidden);
    kernels::lstm_state(z.data().data(), c.data().data(), h.data().data(),
                        batch, hidden);
    out.set_time_slice(t, h);
  }
  return out;
}

seq_batch lstm::backward(const seq_batch& grad_h_ext) {
  if (caches_.empty()) throw std::logic_error{"lstm::backward before forward"};
  const std::size_t time = cached_time_;
  const std::size_t batch = grad_h_ext.batch();
  const std::size_t hidden = hidden_dim();
  seq_batch grad_x{batch, time, input_dim()};
  matrix dh{batch, hidden};  // recurrent gradient flowing backwards
  matrix dc{batch, hidden};
  for (std::size_t s = time; s-- > 0;) {
    const std::size_t t = reverse_ ? time - 1 - s : s;
    const step_cache& cache = caches_[s];
    // Total gradient on h_t: external + recurrent.
    add_inplace(dh, grad_h_ext.time_slice(t));
    matrix dz{batch, 4 * hidden};
    matrix dc_prev{batch, hidden};
    for (std::size_t bi = 0; bi < batch; ++bi) {
      for (std::size_t j = 0; j < hidden; ++j) {
        const double gi = cache.gates(bi, j);
        const double gf = cache.gates(bi, hidden + j);
        const double gg = cache.gates(bi, 2 * hidden + j);
        const double go = cache.gates(bi, 3 * hidden + j);
        const double tanh_c = std::tanh(cache.c(bi, j));
        const double dht = dh(bi, j);
        const double dct = dc(bi, j) + dht * go * (1 - tanh_c * tanh_c);
        const double d_go = dht * tanh_c;
        const double d_gi = dct * gg;
        const double d_gf = dct * cache.c_prev(bi, j);
        const double d_gg = dct * gi;
        dz(bi, j) = d_gi * gi * (1 - gi);
        dz(bi, hidden + j) = d_gf * gf * (1 - gf);
        dz(bi, 2 * hidden + j) = d_gg * (1 - gg * gg);
        dz(bi, 3 * hidden + j) = d_go * go * (1 - go);
        dc_prev(bi, j) = dct * gf;
      }
    }
    matmul_tn_acc(cache.x, dz, gwx_);
    matmul_tn_acc(cache.h_prev, dz, gwh_);
    for (std::size_t bi = 0; bi < batch; ++bi)
      for (std::size_t j = 0; j < 4 * hidden; ++j) gb_[j] += dz(bi, j);
    grad_x.set_time_slice(t, matmul_nt(dz, wx_));
    dh = matmul_nt(dz, wh_);
    dc = std::move(dc_prev);
  }
  return grad_x;
}

void lstm::collect_params(param_list& out) {
  out.push_back({&wx_.data(), &gwx_.data()});
  out.push_back({&wh_.data(), &gwh_.data()});
  out.push_back({&b_, &gb_});
}

void lstm::save(std::ostream& out) const {
  save_matrix(out, wx_);
  save_matrix(out, wh_);
  const std::uint64_t n = b_.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(b_.data()),
            static_cast<std::streamsize>(n * sizeof(double)));
  const std::uint8_t rev = reverse_ ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&rev), sizeof rev);
}

void lstm::load(std::istream& in) {
  wx_ = load_matrix(in);
  wh_ = load_matrix(in);
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  b_.assign(n, 0.0);
  in.read(reinterpret_cast<char*>(b_.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  std::uint8_t rev = 0;
  in.read(reinterpret_cast<char*>(&rev), sizeof rev);
  if (!in) throw std::runtime_error{"lstm::load: truncated stream"};
  DQN_ENSURE(wx_.cols() == wh_.cols() && wh_.rows() * 4 == wh_.cols() &&
                 b_.size() == wx_.cols(),
             "lstm::load: inconsistent shapes wx=", wx_.rows(), "x", wx_.cols(),
             " wh=", wh_.rows(), "x", wh_.cols(), " b=", b_.size());
  reverse_ = rev != 0;
  gwx_ = matrix{wx_.rows(), wx_.cols()};
  gwh_ = matrix{wh_.rows(), wh_.cols()};
  gb_.assign(b_.size(), 0.0);
}

bilstm::bilstm(std::size_t input_dim, std::size_t hidden_dim, util::rng& rng)
    : fwd_{input_dim, hidden_dim, /*reverse=*/false, rng},
      bwd_{input_dim, hidden_dim, /*reverse=*/true, rng} {}

namespace {

seq_batch concat_features(const seq_batch& a, const seq_batch& b) {
  seq_batch out{a.batch(), a.time(), a.features() + b.features()};
  for (std::size_t bi = 0; bi < a.batch(); ++bi)
    for (std::size_t t = 0; t < a.time(); ++t) {
      for (std::size_t f = 0; f < a.features(); ++f) out.at(bi, t, f) = a.at(bi, t, f);
      for (std::size_t f = 0; f < b.features(); ++f)
        out.at(bi, t, a.features() + f) = b.at(bi, t, f);
    }
  return out;
}

}  // namespace

seq_batch bilstm::forward(const seq_batch& x) {
  return concat_features(fwd_.forward(x), bwd_.forward(x));
}

seq_batch bilstm::forward_const(const seq_batch& x) const {
  return concat_features(fwd_.forward_const(x), bwd_.forward_const(x));
}

const seq_batch& bilstm::forward(const seq_batch& x, workspace& ws) const {
  const seq_batch& a = fwd_.forward(x, ws);
  const seq_batch& b = bwd_.forward(x, ws);
  seq_batch& out = ws.take_seq(a.batch(), a.time(), a.features() + b.features());
  for (std::size_t bi = 0; bi < a.batch(); ++bi)
    for (std::size_t t = 0; t < a.time(); ++t) {
      for (std::size_t f = 0; f < a.features(); ++f)
        out.at(bi, t, f) = a.at(bi, t, f);
      for (std::size_t f = 0; f < b.features(); ++f)
        out.at(bi, t, a.features() + f) = b.at(bi, t, f);
    }
  return out;
}

seq_batch bilstm::backward(const seq_batch& grad_out) {
  const std::size_t hidden = fwd_.hidden_dim();
  seq_batch grad_fwd{grad_out.batch(), grad_out.time(), hidden};
  seq_batch grad_bwd{grad_out.batch(), grad_out.time(), hidden};
  for (std::size_t bi = 0; bi < grad_out.batch(); ++bi)
    for (std::size_t t = 0; t < grad_out.time(); ++t) {
      for (std::size_t f = 0; f < hidden; ++f) {
        grad_fwd.at(bi, t, f) = grad_out.at(bi, t, f);
        grad_bwd.at(bi, t, f) = grad_out.at(bi, t, hidden + f);
      }
    }
  seq_batch grad_x = fwd_.backward(grad_fwd);
  const seq_batch grad_x2 = bwd_.backward(grad_bwd);
  for (std::size_t i = 0; i < grad_x.data().size(); ++i)
    grad_x.data()[i] += grad_x2.data()[i];
  return grad_x;
}

void bilstm::collect_params(param_list& out) {
  fwd_.collect_params(out);
  bwd_.collect_params(out);
}

void bilstm::save(std::ostream& out) const {
  fwd_.save(out);
  bwd_.save(out);
}

void bilstm::load(std::istream& in) {
  fwd_.load(in);
  bwd_.load(in);
}

}  // namespace dqn::nn
