#include "nn/mlp.hpp"

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace dqn::nn {

mlp::mlp(const std::vector<std::size_t>& layer_dims, activation act, util::rng& rng) {
  if (layer_dims.size() < 2)
    throw std::invalid_argument{"mlp: need at least input and output dims"};
  for (std::size_t i = 0; i + 1 < layer_dims.size(); ++i) {
    const bool last = i + 2 == layer_dims.size();
    layers_.emplace_back(layer_dims[i], layer_dims[i + 1],
                         last ? activation::identity : act, rng);
  }
}

matrix mlp::forward(const matrix& x) {
  matrix h = x;
  for (auto& layer : layers_) h = layer.forward(h);
  return h;
}

matrix mlp::forward_const(const matrix& x) const {
  matrix h = x;
  for (const auto& layer : layers_) h = layer.forward_const(h);
  return h;
}

const matrix& mlp::forward(const matrix& x, workspace& ws) const {
  if (layers_.empty()) throw std::logic_error{"mlp: not initialized"};
  const matrix* h = &x;
  for (const auto& layer : layers_) h = &layer.forward(*h, ws);
  return *h;
}

matrix mlp::backward(const matrix& grad_y) {
  matrix g = grad_y;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = it->backward(g);
  return g;
}

void mlp::collect_params(param_list& out) {
  for (auto& layer : layers_) layer.collect_params(out);
}

std::size_t mlp::in_dim() const {
  if (layers_.empty()) throw std::logic_error{"mlp: not initialized"};
  return layers_.front().in_dim();
}

std::size_t mlp::out_dim() const {
  if (layers_.empty()) throw std::logic_error{"mlp: not initialized"};
  return layers_.back().out_dim();
}

void mlp::save(std::ostream& out) const {
  const std::uint64_t n = layers_.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  for (const auto& layer : layers_) layer.save(out);
}

void mlp::load(std::istream& in) {
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  if (!in) throw std::runtime_error{"mlp::load: truncated stream"};
  layers_.assign(static_cast<std::size_t>(n), dense{});
  for (auto& layer : layers_) layer.load(in);
}

}  // namespace dqn::nn
