// MinMax feature scaling to [0, 1], matching the paper's use of
// scikit-learn's MinMaxScaler (§4.1). Fitted bounds are persisted with the
// model so that inference applies the exact training-time transform.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "nn/seq.hpp"

namespace dqn::nn {

class min_max_scaler {
 public:
  min_max_scaler() = default;

  // Fit per-feature bounds from rows of width `features`.
  void fit(std::span<const double> flat_rows, std::size_t features);
  void fit(const seq_batch& batch);

  // x' = (x - min) / (max - min); constant features map to 0.
  [[nodiscard]] double transform_one(std::size_t feature, double x) const;
  [[nodiscard]] double inverse_one(std::size_t feature, double x) const;
  void transform(seq_batch& batch) const;

  [[nodiscard]] bool fitted() const noexcept { return !lo_.empty(); }
  [[nodiscard]] std::size_t features() const noexcept { return lo_.size(); }

  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

// Scalar target scaling (the sojourn-time label), same min-max convention.
class target_scaler {
 public:
  void fit(std::span<const double> targets);
  [[nodiscard]] double transform(double y) const noexcept;
  [[nodiscard]] double inverse(double y) const noexcept;
  [[nodiscard]] bool fitted() const noexcept { return hi_ > lo_; }

  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  double lo_ = 0;
  double hi_ = 0;
};

}  // namespace dqn::nn
