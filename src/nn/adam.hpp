// Adam optimizer (Kingma & Ba). The paper trains the PTM with Adam at a
// fixed learning rate of 1e-3 (§5.2).
#pragma once

#include <vector>

#include "nn/params.hpp"

namespace dqn::nn {

struct adam_config {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double grad_clip = 5.0;  // global-norm clip; 0 disables
};

class adam {
 public:
  adam(param_list params, const adam_config& config = {});

  // Apply one update from the accumulated gradients, then zero them.
  void step();

  [[nodiscard]] std::size_t steps_taken() const noexcept { return t_; }
  [[nodiscard]] const param_list& params() const noexcept { return params_; }

 private:
  param_list params_;
  adam_config config_;
  std::vector<std::vector<double>> m_;
  std::vector<std::vector<double>> v_;
  std::size_t t_ = 0;
};

}  // namespace dqn::nn
