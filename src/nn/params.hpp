// Parameter registry: every trainable layer exposes its (value, gradient)
// vector pairs through collect_params, and the optimizer walks the flat list.
#pragma once

#include <vector>

#include "nn/aligned.hpp"

namespace dqn::nn {

struct param_ref {
  aligned_vector* value = nullptr;
  aligned_vector* grad = nullptr;
};

using param_list = std::vector<param_ref>;

inline void zero_grads(const param_list& params) {
  for (const auto& p : params)
    for (auto& g : *p.grad) g = 0.0;
}

inline std::size_t param_count(const param_list& params) {
  std::size_t n = 0;
  for (const auto& p : params) n += p.value->size();
  return n;
}

}  // namespace dqn::nn
