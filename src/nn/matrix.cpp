#include "nn/matrix.hpp"

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "nn/kernels/gemm.hpp"
#include "util/check.hpp"

namespace dqn::nn {

// The matrix-typed matmul entry points are shape-checking shims over the
// kernel layer (nn/kernels/gemm.hpp), which picks the strongest compiled-in
// backend for the running CPU once at startup.
void matmul_acc(const matrix& a, const matrix& b, matrix& out) {
  DQN_CHECK(a.cols() == b.rows(), "matmul: inner dimensions differ: ", a.rows(),
            "x", a.cols(), " * ", b.rows(), "x", b.cols());
  DQN_CHECK(out.rows() == a.rows() && out.cols() == b.cols(),
            "matmul: bad out shape ", out.rows(), "x", out.cols());
  kernels::gemm_nn(a.data().data(), b.data().data(), out.data().data(),
                   a.rows(), b.cols(), a.cols(), /*accumulate=*/true);
}

matrix matmul(const matrix& a, const matrix& b) {
  matrix out{a.rows(), b.cols()};
  matmul_acc(a, b, out);
  return out;
}

void matmul_tn_acc(const matrix& a, const matrix& b, matrix& out) {
  DQN_CHECK(a.rows() == b.rows(), "matmul_tn: leading dimensions differ: ",
            a.rows(), "x", a.cols(), " vs ", b.rows(), "x", b.cols());
  DQN_CHECK(out.rows() == a.cols() && out.cols() == b.cols(),
            "matmul_tn: bad out shape ", out.rows(), "x", out.cols());
  kernels::gemm_tn(a.data().data(), b.data().data(), out.data().data(),
                   a.cols(), b.cols(), a.rows(), /*accumulate=*/true);
}

matrix matmul_tn(const matrix& a, const matrix& b) {
  matrix out{a.cols(), b.cols()};
  matmul_tn_acc(a, b, out);
  return out;
}

void matmul_nt_acc(const matrix& a, const matrix& b, matrix& out) {
  DQN_CHECK(a.cols() == b.cols(), "matmul_nt: trailing dimensions differ: ",
            a.rows(), "x", a.cols(), " vs ", b.rows(), "x", b.cols());
  DQN_CHECK(out.rows() == a.rows() && out.cols() == b.rows(),
            "matmul_nt: bad out shape ", out.rows(), "x", out.cols());
  kernels::gemm_nt(a.data().data(), b.data().data(), out.data().data(),
                   a.rows(), b.rows(), a.cols(), /*accumulate=*/true);
}

matrix matmul_nt(const matrix& a, const matrix& b) {
  matrix out{a.rows(), b.rows()};
  matmul_nt_acc(a, b, out);
  return out;
}

void add_inplace(matrix& a, const matrix& b) {
  DQN_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
            "add_inplace: shape mismatch: ", a.rows(), "x", a.cols(), " vs ",
            b.rows(), "x", b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] += b.data()[i];
}

void add_row_vector(matrix& m, std::span<const double> bias) {
  DQN_CHECK(bias.size() == m.cols(), "add_row_vector: width mismatch: bias ",
            bias.size(), " vs ", m.cols(), " cols");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += bias[c];
  }
}

matrix hadamard(const matrix& a, const matrix& b) {
  DQN_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
            "hadamard: shape mismatch: ", a.rows(), "x", a.cols(), " vs ",
            b.rows(), "x", b.cols());
  matrix out{a.rows(), a.cols()};
  for (std::size_t i = 0; i < a.size(); ++i)
    out.data()[i] = a.data()[i] * b.data()[i];
  return out;
}

matrix transpose(const matrix& m) {
  matrix out{m.cols(), m.rows()};
  kernels::transpose_blocked(m.data().data(), out.data().data(), m.rows(),
                             m.cols());
  return out;
}

void save_matrix(std::ostream& out, const matrix& m) {
  const std::uint64_t rows = m.rows(), cols = m.cols();
  out.write(reinterpret_cast<const char*>(&rows), sizeof rows);
  out.write(reinterpret_cast<const char*>(&cols), sizeof cols);
  out.write(reinterpret_cast<const char*>(m.data().data()),
            static_cast<std::streamsize>(m.size() * sizeof(double)));
}

matrix load_matrix(std::istream& in) {
  std::uint64_t rows = 0, cols = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof rows);
  in.read(reinterpret_cast<char*>(&cols), sizeof cols);
  if (!in) throw std::runtime_error{"load_matrix: truncated header"};
  DQN_ENSURE(rows <= (std::uint64_t{1} << 32) && cols <= (std::uint64_t{1} << 32),
             "load_matrix: implausible shape ", rows, "x", cols,
             " (corrupt stream?)");
  matrix m{static_cast<std::size_t>(rows), static_cast<std::size_t>(cols)};
  in.read(reinterpret_cast<char*>(m.data().data()),
          static_cast<std::streamsize>(m.size() * sizeof(double)));
  if (!in) throw std::runtime_error{"load_matrix: truncated payload"};
  return m;
}

}  // namespace dqn::nn
