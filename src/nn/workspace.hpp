// Inference workspace: an arena of reusable aligned buffers for the forward
// hot path. Layers take() scratch matrices instead of constructing them;
// reset() rewinds the cursor without freeing, so the second and every later
// forward pass over same-shaped inputs performs ZERO heap allocations
// (tests/test_kernels.cpp asserts this with a global-new counting hook).
//
// Lifetime rules (documented in docs/PERFORMANCE.md):
//  - One workspace per thread. The engine gives each partition worker its
//    own, reused across devices and IRSA iterations. No internal locking.
//  - The CALLER of a forward chain resets; callees only take. A callee that
//    reset() mid-chain would reclaim slots its caller still holds (e.g. the
//    input batch ptm::predict stages before seq_regressor::forward).
//  - A slot reference is valid until the next reset(). take() never moves
//    existing slots (deque-backed), so references handed out earlier in the
//    same pass stay stable while later slots are created.
#pragma once

#include <cstddef>
#include <deque>

#include "nn/matrix.hpp"
#include "nn/seq.hpp"

namespace dqn::nn {

class workspace {
 public:
  workspace() = default;
  workspace(const workspace&) = delete;
  workspace& operator=(const workspace&) = delete;
  workspace(workspace&&) = default;
  workspace& operator=(workspace&&) = default;

  // Next matrix slot, reshaped to rows×cols. Contents are unspecified
  // (callers overwrite); use take_zeroed() for accumulators.
  [[nodiscard]] matrix& take(std::size_t rows, std::size_t cols) {
    matrix& m = next_matrix();
    if (rows * cols > m.capacity()) ++grow_count_;
    m.resize(rows, cols);
    return m;
  }

  [[nodiscard]] matrix& take_zeroed(std::size_t rows, std::size_t cols) {
    matrix& m = take(rows, cols);
    m.fill(0.0);
    return m;
  }

  [[nodiscard]] seq_batch& take_seq(std::size_t batch, std::size_t time,
                                    std::size_t features) {
    if (seq_cursor_ == seqs_.size()) seqs_.emplace_back();
    seq_batch& s = seqs_[seq_cursor_++];
    const std::size_t need = batch * time * features;
    if (need > s.capacity()) ++grow_count_;
    s.resize(batch, time, features);
    return s;
  }

  // Rewind both cursors; keeps every allocation for reuse.
  void reset() noexcept {
    mat_cursor_ = 0;
    seq_cursor_ = 0;
  }

  // Bytes currently held across all slots (the nn.workspace_bytes gauge).
  [[nodiscard]] std::size_t bytes() const noexcept {
    std::size_t total = 0;
    for (const matrix& m : mats_) total += m.capacity() * sizeof(double);
    for (const seq_batch& s : seqs_) total += s.capacity() * sizeof(double);
    return total;
  }

  // Times a take grew the arena (new slot or a slot's buffer). Steady state
  // over a fixed shape sequence means this stops moving — the zero-allocation
  // tests key off it alongside the operator-new hook.
  [[nodiscard]] std::size_t grow_count() const noexcept { return grow_count_; }

  [[nodiscard]] std::size_t slots_in_use() const noexcept {
    return mat_cursor_ + seq_cursor_;
  }

 private:
  [[nodiscard]] matrix& next_matrix() {
    if (mat_cursor_ == mats_.size()) mats_.emplace_back();
    return mats_[mat_cursor_++];
  }

  // deque: stable references across emplace_back, required by the lifetime
  // contract above.
  std::deque<matrix> mats_;
  std::deque<seq_batch> seqs_;
  std::size_t mat_cursor_ = 0;
  std::size_t seq_cursor_ = 0;
  std::size_t grow_count_ = 0;
};

}  // namespace dqn::nn
