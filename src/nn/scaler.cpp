#include "nn/scaler.hpp"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace dqn::nn {

void min_max_scaler::fit(std::span<const double> flat_rows, std::size_t features) {
  if (features == 0 || flat_rows.size() % features != 0)
    throw std::invalid_argument{"min_max_scaler::fit: bad shape"};
  lo_.assign(features, std::numeric_limits<double>::infinity());
  hi_.assign(features, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < flat_rows.size(); ++i) {
    const std::size_t f = i % features;
    lo_[f] = std::min(lo_[f], flat_rows[i]);
    hi_[f] = std::max(hi_[f], flat_rows[i]);
  }
}

void min_max_scaler::fit(const seq_batch& batch) {
  fit(batch.data(), batch.features());
}

double min_max_scaler::transform_one(std::size_t feature, double x) const {
  if (feature >= lo_.size())
    throw std::out_of_range{"min_max_scaler::transform_one: feature index"};
  const double range = hi_[feature] - lo_[feature];
  if (range <= 0) return 0;
  return (x - lo_[feature]) / range;
}

double min_max_scaler::inverse_one(std::size_t feature, double x) const {
  if (feature >= lo_.size())
    throw std::out_of_range{"min_max_scaler::inverse_one: feature index"};
  return lo_[feature] + x * (hi_[feature] - lo_[feature]);
}

void min_max_scaler::transform(seq_batch& batch) const {
  if (batch.features() != lo_.size())
    throw std::invalid_argument{"min_max_scaler::transform: feature width mismatch"};
  auto& data = batch.data();
  const std::size_t features = lo_.size();
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = transform_one(i % features, data[i]);
}

void min_max_scaler::save(std::ostream& out) const {
  const std::uint64_t n = lo_.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(lo_.data()),
            static_cast<std::streamsize>(n * sizeof(double)));
  out.write(reinterpret_cast<const char*>(hi_.data()),
            static_cast<std::streamsize>(n * sizeof(double)));
}

void min_max_scaler::load(std::istream& in) {
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  lo_.assign(n, 0.0);
  hi_.assign(n, 0.0);
  in.read(reinterpret_cast<char*>(lo_.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  in.read(reinterpret_cast<char*>(hi_.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  if (!in) throw std::runtime_error{"min_max_scaler::load: truncated stream"};
}

void target_scaler::fit(std::span<const double> targets) {
  if (targets.empty()) throw std::invalid_argument{"target_scaler::fit: empty"};
  const auto [lo, hi] = std::minmax_element(targets.begin(), targets.end());
  lo_ = *lo;
  hi_ = *hi;
}

double target_scaler::transform(double y) const noexcept {
  const double range = hi_ - lo_;
  if (range <= 0) return 0;
  return (y - lo_) / range;
}

double target_scaler::inverse(double y) const noexcept {
  return lo_ + y * (hi_ - lo_);
}

void target_scaler::save(std::ostream& out) const {
  out.write(reinterpret_cast<const char*>(&lo_), sizeof lo_);
  out.write(reinterpret_cast<const char*>(&hi_), sizeof hi_);
}

void target_scaler::load(std::istream& in) {
  in.read(reinterpret_cast<char*>(&lo_), sizeof lo_);
  in.read(reinterpret_cast<char*>(&hi_), sizeof hi_);
  if (!in) throw std::runtime_error{"target_scaler::load: truncated stream"};
}

}  // namespace dqn::nn
