// 64-byte-aligned storage for the neural substrate. Every double buffer the
// GEMM kernels touch (matrix, seq_batch, layer biases) allocates through
// aligned_allocator so SIMD loads never straddle a cache line and the
// kernels can assume natural vector alignment of row starts when the width
// allows it. 64 bytes covers AVX-512 (the widest path in nn/kernels) and is
// exactly one cache line, so adjacent buffers never false-share.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace dqn::nn {

inline constexpr std::size_t kernel_alignment = 64;

template <class T, std::size_t Align = kernel_alignment>
struct aligned_allocator {
  using value_type = T;

  aligned_allocator() noexcept = default;
  template <class U>
  explicit aligned_allocator(const aligned_allocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <class U>
  struct rebind {
    using other = aligned_allocator<U, Align>;
  };

  friend bool operator==(const aligned_allocator&, const aligned_allocator&) noexcept {
    return true;
  }
};

// The storage type behind nn::matrix / nn::seq_batch and the optimizer's
// parameter registry (nn/params.hpp).
using aligned_vector = std::vector<double, aligned_allocator<double>>;

}  // namespace dqn::nn
