// Plain multi-layer perceptron regressor. Used by the RouteNet baseline's
// readout, the MimicNet mimic heads, and as the PTM's fast architecture
// variant (DESIGN.md §4).
#pragma once

#include <iosfwd>
#include <vector>

#include "nn/dense.hpp"
#include "nn/matrix.hpp"
#include "nn/params.hpp"
#include "util/rng.hpp"

namespace dqn::nn {

class mlp {
 public:
  mlp() = default;
  // layer_dims = {in, hidden..., out}; hidden layers use `act`, output is linear.
  mlp(const std::vector<std::size_t>& layer_dims, activation act, util::rng& rng);

  [[nodiscard]] matrix forward(const matrix& x);
  [[nodiscard]] matrix forward_const(const matrix& x) const;
  // Allocation-free inference forward: layer outputs ping-pong through `ws`
  // slots. Result valid until the next ws.reset().
  [[nodiscard]] const matrix& forward(const matrix& x, workspace& ws) const;
  [[nodiscard]] matrix backward(const matrix& grad_y);

  void collect_params(param_list& out);

  [[nodiscard]] std::size_t in_dim() const;
  [[nodiscard]] std::size_t out_dim() const;

  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  std::vector<dense> layers_;
};

}  // namespace dqn::nn
