#include "nn/seq_regressor.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace dqn::nn {

seq_regressor::seq_regressor(const seq_regressor_config& config, util::rng& rng)
    : config_{config} {
  if (config.lstm_hidden.empty())
    throw std::invalid_argument{"seq_regressor: need at least one BLSTM layer"};
  std::size_t dim = config.input_dim;
  for (std::size_t width : config.lstm_hidden) {
    encoder_.emplace_back(dim, width, rng);
    dim = 2 * width;
  }
  attention_config attn;
  attn.model_dim = dim;
  attn.heads = config.heads;
  attn.key_dim = config.key_dim;
  attn.value_dim = config.value_dim;
  attn.out_dim = config.attention_out;
  attention_ = multi_head_attention{attn, rng};
  head_hidden_ = dense{config.attention_out, config.head_hidden, activation::tanh, rng};
  head_out_ = dense{config.head_hidden, 1, activation::identity, rng};
}

matrix seq_regressor::forward(const seq_batch& x) {
  seq_batch h = x;
  for (auto& layer : encoder_) h = layer.forward(h);
  last_attn_out_ = attention_.forward(h);
  last_time_ = x.time();
  // Regression head reads the attended representation of the final packet.
  const matrix final_step = last_attn_out_.time_slice(last_time_ - 1);
  return head_out_.forward(head_hidden_.forward(final_step));
}

matrix seq_regressor::forward_const(const seq_batch& x) const {
  seq_batch h = x;
  for (const auto& layer : encoder_) h = layer.forward_const(h);
  const seq_batch attended = attention_.forward_const(h);
  const matrix final_step = attended.time_slice(x.time() - 1);
  return head_out_.forward_const(head_hidden_.forward_const(final_step));
}

const matrix& seq_regressor::forward(const seq_batch& x, workspace& ws) const {
  const seq_batch* h = &x;
  for (const auto& layer : encoder_) h = &layer.forward(*h, ws);
  const seq_batch& attended = attention_.forward(*h, ws);
  matrix& final_step = ws.take(x.batch(), config_.attention_out);
  attended.time_slice_into(x.time() - 1, final_step);
  return head_out_.forward(head_hidden_.forward(final_step, ws), ws);
}

double seq_regressor::backward_mse(const matrix& predictions, const matrix& targets) {
  if (predictions.rows() != targets.rows() || predictions.cols() != 1 ||
      targets.cols() != 1)
    throw std::invalid_argument{"backward_mse: expected (B,1) shapes"};
  const auto batch = static_cast<double>(predictions.rows());
  matrix grad{predictions.rows(), 1};
  double loss = 0;
  for (std::size_t i = 0; i < predictions.rows(); ++i) {
    const double diff = predictions(i, 0) - targets(i, 0);
    loss += diff * diff;
    grad(i, 0) = 2.0 * diff / batch;
  }
  loss /= batch;

  const matrix grad_final = head_hidden_.backward(head_out_.backward(grad));
  seq_batch grad_attn{last_attn_out_.batch(), last_time_, config_.attention_out};
  grad_attn.set_time_slice(last_time_ - 1, grad_final);
  seq_batch g = attention_.backward(grad_attn);
  for (auto it = encoder_.rbegin(); it != encoder_.rend(); ++it) g = it->backward(g);
  return loss;
}

void seq_regressor::collect_params(param_list& out) {
  for (auto& layer : encoder_) layer.collect_params(out);
  attention_.collect_params(out);
  head_hidden_.collect_params(out);
  head_out_.collect_params(out);
}

void seq_regressor::save(std::ostream& out) const {
  const std::uint64_t layers = encoder_.size();
  const std::uint64_t input_dim = config_.input_dim;
  const std::uint64_t head_hidden = config_.head_hidden;
  out.write(reinterpret_cast<const char*>(&layers), sizeof layers);
  out.write(reinterpret_cast<const char*>(&input_dim), sizeof input_dim);
  out.write(reinterpret_cast<const char*>(&head_hidden), sizeof head_hidden);
  std::uint64_t widths[16] = {};
  for (std::size_t i = 0; i < encoder_.size() && i < 16; ++i)
    widths[i] = config_.lstm_hidden[i];
  out.write(reinterpret_cast<const char*>(widths), sizeof widths);
  for (const auto& layer : encoder_) layer.save(out);
  attention_.save(out);
  head_hidden_.save(out);
  head_out_.save(out);
}

void seq_regressor::load(std::istream& in) {
  std::uint64_t layers = 0, input_dim = 0, head_hidden = 0;
  in.read(reinterpret_cast<char*>(&layers), sizeof layers);
  in.read(reinterpret_cast<char*>(&input_dim), sizeof input_dim);
  in.read(reinterpret_cast<char*>(&head_hidden), sizeof head_hidden);
  std::uint64_t widths[16] = {};
  in.read(reinterpret_cast<char*>(widths), sizeof widths);
  if (!in) throw std::runtime_error{"seq_regressor::load: truncated stream"};
  config_.input_dim = static_cast<std::size_t>(input_dim);
  config_.head_hidden = static_cast<std::size_t>(head_hidden);
  config_.lstm_hidden.clear();
  encoder_.assign(static_cast<std::size_t>(layers), bilstm{});
  for (std::size_t i = 0; i < encoder_.size(); ++i)
    config_.lstm_hidden.push_back(static_cast<std::size_t>(widths[i]));
  for (auto& layer : encoder_) layer.load(in);
  attention_.load(in);
  config_.heads = attention_.config().heads;
  config_.key_dim = attention_.config().key_dim;
  config_.value_dim = attention_.config().value_dim;
  config_.attention_out = attention_.config().out_dim;
  head_hidden_.load(in);
  head_out_.load(in);
}

}  // namespace dqn::nn
