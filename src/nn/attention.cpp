#include "nn/attention.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "nn/kernels/gemm.hpp"
#include "util/check.hpp"

namespace dqn::nn {

multi_head_attention::multi_head_attention(const attention_config& config,
                                           util::rng& rng)
    : config_{config} {
  DQN_ENSURE(config.heads > 0, "attention: heads must be > 0");
  for (std::size_t h = 0; h < config.heads; ++h) {
    wq_.push_back(matrix::glorot(config.model_dim, config.key_dim, rng));
    wk_.push_back(matrix::glorot(config.model_dim, config.key_dim, rng));
    wv_.push_back(matrix::glorot(config.model_dim, config.value_dim, rng));
    gwq_.emplace_back(config.model_dim, config.key_dim);
    gwk_.emplace_back(config.model_dim, config.key_dim);
    gwv_.emplace_back(config.model_dim, config.value_dim);
  }
  wo_ = matrix::glorot(config.heads * config.value_dim, config.out_dim, rng);
  gwo_ = matrix{wo_.rows(), wo_.cols()};
}

matrix multi_head_attention::forward_sample(const matrix& x, sample_cache* cache) const {
  const std::size_t time = x.rows();
  const double scale = 1.0 / std::sqrt(static_cast<double>(config_.key_dim));
  matrix concat{time, config_.heads * config_.value_dim};
  if (cache != nullptr) {
    cache->x = x;
    cache->heads.assign(config_.heads, {});
  }
  for (std::size_t h = 0; h < config_.heads; ++h) {
    matrix q = matmul(x, wq_[h]);
    matrix k = matmul(x, wk_[h]);
    matrix v = matmul(x, wv_[h]);
    matrix scores = matmul_nt(q, k);
    for (auto& s : scores.data()) s *= scale;
    // Row-wise softmax with max-subtraction for stability.
    for (std::size_t i = 0; i < time; ++i) {
      auto row = scores.row(i);
      double mx = row[0];
      for (double s : row) mx = std::max(mx, s);
      double total = 0;
      for (auto& s : row) {
        s = std::exp(s - mx);
        total += s;
      }
      for (auto& s : row) s /= total;
    }
    matrix head_out = matmul(scores, v);
    for (std::size_t t = 0; t < time; ++t)
      for (std::size_t f = 0; f < config_.value_dim; ++f)
        concat(t, h * config_.value_dim + f) = head_out(t, f);
    if (cache != nullptr) {
      cache->heads[h].q = std::move(q);
      cache->heads[h].k = std::move(k);
      cache->heads[h].v = std::move(v);
      cache->heads[h].attn = std::move(scores);
    }
  }
  matrix out = matmul(concat, wo_);
  if (cache != nullptr) cache->concat = std::move(concat);
  return out;
}

seq_batch multi_head_attention::forward(const seq_batch& x) {
  DQN_CHECK(x.features() == config_.model_dim, "attention::forward: got ",
            x.features(), " features, want ", config_.model_dim);
  caches_.assign(x.batch(), {});
  seq_batch out{x.batch(), x.time(), config_.out_dim};
  for (std::size_t b = 0; b < x.batch(); ++b)
    out.set_sample(b, forward_sample(x.sample(b), &caches_[b]));
  return out;
}

seq_batch multi_head_attention::forward_const(const seq_batch& x) const {
  DQN_CHECK(x.features() == config_.model_dim, "attention::forward_const: got ",
            x.features(), " features, want ", config_.model_dim);
  seq_batch out{x.batch(), x.time(), config_.out_dim};
  for (std::size_t b = 0; b < x.batch(); ++b)
    out.set_sample(b, forward_sample(x.sample(b), nullptr));
  return out;
}

const seq_batch& multi_head_attention::forward(const seq_batch& x,
                                               workspace& ws) const {
  DQN_CHECK(x.features() == config_.model_dim, "attention::forward: got ",
            x.features(), " features, want ", config_.model_dim);
  const std::size_t batch = x.batch(), time = x.time();
  const double scale = 1.0 / std::sqrt(static_cast<double>(config_.key_dim));
  seq_batch& out = ws.take_seq(batch, time, config_.out_dim);
  matrix& xs = ws.take(time, config_.model_dim);
  matrix& q = ws.take(time, config_.key_dim);
  matrix& k = ws.take(time, config_.key_dim);
  matrix& v = ws.take(time, config_.value_dim);
  matrix& scores = ws.take(time, time);
  matrix& head_out = ws.take(time, config_.value_dim);
  matrix& concat = ws.take(time, config_.heads * config_.value_dim);
  matrix& proj = ws.take(time, config_.out_dim);
  for (std::size_t b = 0; b < batch; ++b) {
    x.sample_into(b, xs);
    for (std::size_t h = 0; h < config_.heads; ++h) {
      kernels::gemm_nn(xs.data().data(), wq_[h].data().data(), q.data().data(),
                       time, config_.key_dim, config_.model_dim, false);
      kernels::gemm_nn(xs.data().data(), wk_[h].data().data(), k.data().data(),
                       time, config_.key_dim, config_.model_dim, false);
      kernels::gemm_nn(xs.data().data(), wv_[h].data().data(), v.data().data(),
                       time, config_.value_dim, config_.model_dim, false);
      kernels::gemm_nt(q.data().data(), k.data().data(), scores.data().data(),
                       time, time, config_.key_dim, false);
      for (auto& s : scores.data()) s *= scale;
      // Row-wise softmax with max-subtraction, same order as forward_sample.
      for (std::size_t i = 0; i < time; ++i) {
        auto row = scores.row(i);
        double mx = row[0];
        for (double s : row) mx = std::max(mx, s);
        double total = 0;
        for (auto& s : row) {
          s = std::exp(s - mx);
          total += s;
        }
        for (auto& s : row) s /= total;
      }
      kernels::gemm_nn(scores.data().data(), v.data().data(),
                       head_out.data().data(), time, config_.value_dim, time,
                       false);
      for (std::size_t t = 0; t < time; ++t)
        for (std::size_t f = 0; f < config_.value_dim; ++f)
          concat(t, h * config_.value_dim + f) = head_out(t, f);
    }
    kernels::gemm_nn(concat.data().data(), wo_.data().data(),
                     proj.data().data(), time, config_.out_dim,
                     config_.heads * config_.value_dim, false);
    out.set_sample(b, proj);
  }
  return out;
}

seq_batch multi_head_attention::backward(const seq_batch& grad_out) {
  if (caches_.size() != grad_out.batch())
    throw std::logic_error{"attention::backward before forward"};
  const double scale = 1.0 / std::sqrt(static_cast<double>(config_.key_dim));
  seq_batch grad_x{grad_out.batch(), grad_out.time(), config_.model_dim};
  for (std::size_t b = 0; b < grad_out.batch(); ++b) {
    const sample_cache& cache = caches_[b];
    const matrix d_out = grad_out.sample(b);
    // Output projection.
    matmul_tn_acc(cache.concat, d_out, gwo_);
    const matrix d_concat = matmul_nt(d_out, wo_);
    matrix dx{grad_out.time(), config_.model_dim};
    for (std::size_t h = 0; h < config_.heads; ++h) {
      const head_cache& hc = cache.heads[h];
      const std::size_t time = hc.q.rows();
      matrix d_head{time, config_.value_dim};
      for (std::size_t t = 0; t < time; ++t)
        for (std::size_t f = 0; f < config_.value_dim; ++f)
          d_head(t, f) = d_concat(t, h * config_.value_dim + f);
      // head_out = attn · v
      matrix d_attn = matmul_nt(d_head, hc.v);
      matrix d_v = matmul_tn(hc.attn, d_head);
      // Softmax backward, row-wise: ds = a ∘ (da − <da, a>).
      matrix d_scores{time, time};
      for (std::size_t i = 0; i < time; ++i) {
        double dot = 0;
        for (std::size_t j = 0; j < time; ++j) dot += d_attn(i, j) * hc.attn(i, j);
        for (std::size_t j = 0; j < time; ++j)
          d_scores(i, j) = hc.attn(i, j) * (d_attn(i, j) - dot);
      }
      for (auto& s : d_scores.data()) s *= scale;
      // scores = q·kᵀ
      const matrix d_q = matmul(d_scores, hc.k);
      const matrix d_k = matmul_tn(d_scores, hc.q);
      matmul_tn_acc(cache.x, d_q, gwq_[h]);
      matmul_tn_acc(cache.x, d_k, gwk_[h]);
      matmul_tn_acc(cache.x, d_v, gwv_[h]);
      matmul_nt_acc(d_q, wq_[h], dx);
      matmul_nt_acc(d_k, wk_[h], dx);
      matmul_nt_acc(d_v, wv_[h], dx);
    }
    grad_x.set_sample(b, dx);
  }
  return grad_x;
}

void multi_head_attention::collect_params(param_list& out) {
  for (std::size_t h = 0; h < config_.heads; ++h) {
    out.push_back({&wq_[h].data(), &gwq_[h].data()});
    out.push_back({&wk_[h].data(), &gwk_[h].data()});
    out.push_back({&wv_[h].data(), &gwv_[h].data()});
  }
  out.push_back({&wo_.data(), &gwo_.data()});
}

const matrix& multi_head_attention::attention_weights(std::size_t b,
                                                      std::size_t h) const {
  if (b >= caches_.size() || h >= config_.heads)
    throw std::out_of_range{"attention_weights: no cached forward pass for index"};
  return caches_[b].heads[h].attn;
}

void multi_head_attention::save(std::ostream& out) const {
  const std::uint64_t heads = config_.heads;
  const std::uint64_t dims[4] = {config_.model_dim, config_.key_dim,
                                 config_.value_dim, config_.out_dim};
  out.write(reinterpret_cast<const char*>(&heads), sizeof heads);
  out.write(reinterpret_cast<const char*>(dims), sizeof dims);
  for (std::size_t h = 0; h < config_.heads; ++h) {
    save_matrix(out, wq_[h]);
    save_matrix(out, wk_[h]);
    save_matrix(out, wv_[h]);
  }
  save_matrix(out, wo_);
}

void multi_head_attention::load(std::istream& in) {
  std::uint64_t heads = 0;
  std::uint64_t dims[4] = {};
  in.read(reinterpret_cast<char*>(&heads), sizeof heads);
  in.read(reinterpret_cast<char*>(dims), sizeof dims);
  if (!in) throw std::runtime_error{"attention::load: truncated stream"};
  config_.heads = static_cast<std::size_t>(heads);
  config_.model_dim = static_cast<std::size_t>(dims[0]);
  config_.key_dim = static_cast<std::size_t>(dims[1]);
  config_.value_dim = static_cast<std::size_t>(dims[2]);
  config_.out_dim = static_cast<std::size_t>(dims[3]);
  wq_.clear(); wk_.clear(); wv_.clear();
  gwq_.clear(); gwk_.clear(); gwv_.clear();
  for (std::size_t h = 0; h < config_.heads; ++h) {
    wq_.push_back(load_matrix(in));
    wk_.push_back(load_matrix(in));
    wv_.push_back(load_matrix(in));
    gwq_.emplace_back(config_.model_dim, config_.key_dim);
    gwk_.emplace_back(config_.model_dim, config_.key_dim);
    gwv_.emplace_back(config_.model_dim, config_.value_dim);
  }
  wo_ = load_matrix(in);
  gwo_ = matrix{wo_.rows(), wo_.cols()};
}

}  // namespace dqn::nn
