// Fully-connected layer with optional activation, explicit forward/backward.
#pragma once

#include <iosfwd>

#include "nn/matrix.hpp"
#include "nn/params.hpp"
#include "nn/workspace.hpp"
#include "util/rng.hpp"

namespace dqn::nn {

enum class activation { identity, relu, tanh, sigmoid };

[[nodiscard]] double apply_activation(activation act, double x) noexcept;
// Derivative expressed in terms of the activation output y = act(x).
[[nodiscard]] double activation_grad_from_output(activation act, double y) noexcept;

class dense {
 public:
  dense() = default;
  dense(std::size_t in_dim, std::size_t out_dim, activation act, util::rng& rng);

  // x: (batch, in_dim) → (batch, out_dim). Caches x and y for backward.
  [[nodiscard]] matrix forward(const matrix& x);
  // Inference-only forward: no caches touched (usable concurrently from
  // multiple threads on a const layer).
  [[nodiscard]] matrix forward_const(const matrix& x) const;
  // Allocation-free inference forward: result lives in `ws` until its next
  // reset. GEMM + fused bias/activation epilogue, no intermediates.
  [[nodiscard]] const matrix& forward(const matrix& x, workspace& ws) const;

  // grad_y: (batch, out_dim) → returns grad_x; accumulates weight grads.
  [[nodiscard]] matrix backward(const matrix& grad_y);

  void collect_params(param_list& out);

  [[nodiscard]] std::size_t in_dim() const noexcept { return w_.rows(); }
  [[nodiscard]] std::size_t out_dim() const noexcept { return w_.cols(); }
  [[nodiscard]] const matrix& weights() const noexcept { return w_; }

  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  matrix w_;                     // (in, out)
  aligned_vector b_;             // (out)
  matrix gw_;
  aligned_vector gb_;
  activation act_ = activation::identity;
  matrix last_x_;
  matrix last_y_;
};

}  // namespace dqn::nn
