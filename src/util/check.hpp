// Contracts layer: the repo-wide replacement for raw assert() and silent-UB
// indexing. Four macro families, one failure funnel:
//
//   DQN_CHECK(cond, msg...)       precondition at an API boundary
//   DQN_CHECK_RANGE(index, size)  bounds check with both values in the report
//   DQN_INVARIANT(cond, msg...)   internal consistency the module owns
//   DQN_UNREACHABLE(msg...)       control flow that must never be reached
//   DQN_ENSURE(cond, msg...)      validation that survives every build mode
//                                 (I/O parsing, untrusted input)
//
// Message arguments are streamed (`DQN_CHECK(a == b, "got ", a, " want ", b)`)
// so call sites need no format strings and pay nothing until failure.
//
// CHECK / CHECK_RANGE / INVARIANT compile out to nothing when
// DQN_CONTRACTS_DISABLED is defined (the CMake option DQN_CONTRACTS=AUTO
// disables them for Release builds, mirroring NDEBUG); the condition is kept
// in an unevaluated operand so variables stay odr-used and builds stay
// warning-clean. ENSURE and UNREACHABLE are always live: malformed input and
// impossible control flow must not become silent UB in Release.
//
// Every live violation funnels through handle_contract_failure(), whose
// behaviour is pluggable per-process:
//
//   contract_mode::throw_exception  (default) throw dqn::util::contract_violation
//   contract_mode::abort_process    print the report to stderr, std::abort()
//   contract_mode::log_and_continue print to stderr, bump the global counter,
//                                   return to the caller (soak-run mode; the
//                                   obs layer can count these — see
//                                   obs::install_contract_counter)
//
// An optional observer callback fires on every violation regardless of mode;
// that is the hook the obs layer uses to export `contracts.violations`.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace dqn::util {

// Thrown by the default failure mode. Derives from std::logic_error so call
// sites that used to throw invalid_argument/out_of_range style errors keep a
// catchable common base.
class contract_violation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

// What a handler / observer sees about one failed contract.
struct contract_failure_info {
  const char* file = "";
  int line = 0;
  const char* kind = "";        // "check", "range", "invariant", ...
  const char* expression = "";  // stringified condition
  std::string message;          // formatted call-site message (may be empty)

  // "file:line: check failed: expr (message)" — the canonical report.
  [[nodiscard]] std::string to_string() const;
};

enum class contract_mode : int {
  throw_exception,
  abort_process,
  log_and_continue,
};

// Observer invoked on every violation, before the mode-specific action. Must
// not throw; exceptions escaping the observer are swallowed.
using contract_observer = void (*)(const contract_failure_info&);

[[nodiscard]] contract_mode get_contract_mode() noexcept;
void set_contract_mode(contract_mode mode) noexcept;

// Install (or, with nullptr, remove) the global observer. Returns the
// previous observer so scoped installs can restore it.
contract_observer set_contract_observer(contract_observer observer) noexcept;

// Process-wide count of violations seen by the log_and_continue handler and
// the observer path; reset between soak-run phases.
[[nodiscard]] std::uint64_t contract_violation_count() noexcept;
void reset_contract_violation_count() noexcept;

// RAII guard: switch mode (and optionally observer) for a scope — used by
// tests and soak harnesses.
class scoped_contract_mode {
 public:
  explicit scoped_contract_mode(contract_mode mode)
      : saved_mode_{get_contract_mode()} {
    set_contract_mode(mode);
  }
  scoped_contract_mode(const scoped_contract_mode&) = delete;
  scoped_contract_mode& operator=(const scoped_contract_mode&) = delete;
  ~scoped_contract_mode() { set_contract_mode(saved_mode_); }

 private:
  contract_mode saved_mode_;
};

// The single failure funnel. Applies the observer, then the configured mode.
// Returns only in log_and_continue mode.
void handle_contract_failure(const char* file, int line, const char* kind,
                             const char* expression, std::string message);

// handle_contract_failure + guaranteed no return: if the configured mode
// returns (log_and_continue), aborts anyway — an unreachable site cannot
// meaningfully continue.
[[noreturn]] void handle_unreachable(const char* file, int line,
                                     std::string message);

namespace detail {

inline void stream_parts(std::ostringstream&) {}

template <typename First, typename... Rest>
void stream_parts(std::ostringstream& os, First&& first, Rest&&... rest) {
  os << first;
  stream_parts(os, static_cast<Rest&&>(rest)...);
}

template <typename... Parts>
[[nodiscard]] std::string format_message(Parts&&... parts) {
  if constexpr (sizeof...(Parts) == 0) {
    return {};
  } else {
    std::ostringstream os;
    stream_parts(os, static_cast<Parts&&>(parts)...);
    return os.str();
  }
}

// Declared, never defined: used inside sizeof() to keep compiled-out contract
// operands odr-used (no unused-variable warnings) without evaluating them.
template <typename... Ts>
int odr_use(Ts&&...);

// Range check shared by DQN_CHECK_RANGE; kept out-of-line of the macro so
// index/size are evaluated exactly once and reported with their values.
template <typename Index, typename Size>
void check_range(Index index, Size size, const char* file, int line,
                 const char* index_expr, const char* size_expr) {
  bool ok;
  if constexpr (std::is_signed_v<Index>) {
    ok = index >= 0 && static_cast<std::uint64_t>(index) <
                           static_cast<std::uint64_t>(size);
  } else {
    ok = static_cast<std::uint64_t>(index) < static_cast<std::uint64_t>(size);
  }
  if (!ok) {
    handle_contract_failure(
        file, line, "range", index_expr,
        format_message(index_expr, " = ", index, " out of range [0, ",
                       size_expr, " = ", size, ")"));
  }
}

}  // namespace detail

#if defined(DQN_CONTRACTS_DISABLED)
inline constexpr bool contracts_enabled = false;
#else
inline constexpr bool contracts_enabled = true;
#endif

}  // namespace dqn::util

// Always-on validation: input parsing, file I/O, untrusted data.
#define DQN_ENSURE(cond, ...)                                              \
  (static_cast<bool>(cond)                                                 \
       ? static_cast<void>(0)                                              \
       : ::dqn::util::handle_contract_failure(                             \
             __FILE__, __LINE__, "ensure", #cond,                          \
             ::dqn::util::detail::format_message(__VA_ARGS__)))

// Always-on impossible-control-flow marker; never returns.
#define DQN_UNREACHABLE(...)                                               \
  ::dqn::util::handle_unreachable(                                         \
      __FILE__, __LINE__, ::dqn::util::detail::format_message(__VA_ARGS__))

#if !defined(DQN_CONTRACTS_DISABLED)

#define DQN_CHECK(cond, ...)                                               \
  (static_cast<bool>(cond)                                                 \
       ? static_cast<void>(0)                                              \
       : ::dqn::util::handle_contract_failure(                             \
             __FILE__, __LINE__, "check", #cond,                           \
             ::dqn::util::detail::format_message(__VA_ARGS__)))

#define DQN_INVARIANT(cond, ...)                                           \
  (static_cast<bool>(cond)                                                 \
       ? static_cast<void>(0)                                              \
       : ::dqn::util::handle_contract_failure(                             \
             __FILE__, __LINE__, "invariant", #cond,                       \
             ::dqn::util::detail::format_message(__VA_ARGS__)))

#define DQN_CHECK_RANGE(index, size)                                       \
  ::dqn::util::detail::check_range((index), (size), __FILE__, __LINE__,    \
                                   #index, #size)

#else  // DQN_CONTRACTS_DISABLED: compile out, keep operands odr-used.

#define DQN_CHECK(cond, ...)                             \
  static_cast<void>(sizeof(::dqn::util::detail::odr_use( \
      (cond)__VA_OPT__(, ) __VA_ARGS__)))
#define DQN_INVARIANT(cond, ...)                         \
  static_cast<void>(sizeof(::dqn::util::detail::odr_use( \
      (cond)__VA_OPT__(, ) __VA_ARGS__)))
#define DQN_CHECK_RANGE(index, size) \
  static_cast<void>(sizeof(::dqn::util::detail::odr_use((index), (size))))

#endif  // DQN_CONTRACTS_DISABLED
