#include "util/work_stealing_pool.hpp"

#include <stdexcept>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace dqn::util {

namespace {

void pin_to_core(std::size_t worker) {
#if defined(__linux__)
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(worker % cores), &set);
  // Best effort: a failure (cgroup restriction, exotic topology) simply
  // leaves the thread on the OS scheduler, which is the no-pin behaviour.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)worker;
#endif
}

}  // namespace

work_stealing_pool::work_stealing_pool(std::size_t workers, bool pin_threads)
    : pin_threads_{pin_threads} {
  if (workers == 0)
    throw std::invalid_argument{"work_stealing_pool: need at least one worker"};
  deques_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    deques_.push_back(std::make_unique<steal_deque>());
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

work_stealing_pool::~work_stealing_pool() {
  {
    const lock_guard lock{round_mutex_};
    stopping_ = true;
  }
  round_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

std::uint64_t work_stealing_pool::run_round(
    const std::vector<std::vector<std::size_t>>& seeds, const task_fn& fn) {
  if (seeds.size() != size())
    throw std::invalid_argument{
        "work_stealing_pool::run_round: one seed list per worker required"};
  std::size_t total = 0;
  for (const auto& seed : seeds) total += seed.size();
  if (total == 0) return 0;
  {
    const lock_guard lock{error_mutex_};
    first_error_ = nullptr;
  }
  const std::uint64_t steals_before =
      steals_.load(std::memory_order_relaxed);
  // Order matters: fn_ and remaining_ must be visible before any task is —
  // a worker that pops a task synchronizes through the deque mutex and
  // therefore sees both stores.
  fn_.store(&fn, std::memory_order_release);
  remaining_.store(total, std::memory_order_release);
  for (std::size_t w = 0; w < seeds.size(); ++w)
    for (const std::size_t task : seeds[w]) deques_[w]->push_back(task);
  {
    const lock_guard lock{round_mutex_};
    ++round_;
  }
  round_cv_.notify_all();
  {
    unique_lock lock{done_mutex_};
    while (remaining_.load(std::memory_order_acquire) != 0)
      done_cv_.wait(lock);
  }
  {
    const lock_guard lock{error_mutex_};
    if (first_error_ != nullptr) {
      const std::exception_ptr error = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(error);
    }
  }
  return steals_.load(std::memory_order_relaxed) - steals_before;
}

void work_stealing_pool::worker_loop(std::size_t worker) {
  if (pin_threads_) pin_to_core(worker);
  std::uint64_t seen_round = 0;
  for (;;) {
    {
      unique_lock lock{round_mutex_};
      // wait() returns with round_mutex_ re-held, so reading the guarded
      // members in the loop condition is lock-correct.
      while (!stopping_ && round_ == seen_round) round_cv_.wait(lock);
      if (stopping_) return;
      seen_round = round_;
    }
    drain_round(worker);
  }
}

void work_stealing_pool::drain_round(std::size_t worker) {
  steal_deque& own = *deques_[worker];
  std::size_t task = 0;
  for (;;) {
    if (own.pop_front(&task)) {
      execute(task, worker);
      continue;
    }
    if (remaining_.load(std::memory_order_acquire) == 0) return;
    // Own deque empty but the round is live: steal half of a victim's
    // remaining tasks. Victims are scanned round-robin from our right
    // neighbour so contention spreads instead of piling on worker 0.
    bool stole = false;
    for (std::size_t i = 1; i < deques_.size() && !stole; ++i) {
      steal_deque& victim = *deques_[(worker + i) % deques_.size()];
      const std::vector<std::size_t> stolen = victim.steal_half();
      if (stolen.empty()) continue;
      steals_.fetch_add(1, std::memory_order_relaxed);
      // Run the first stolen task now; queue the rest so they stay
      // visible to further thieves. Never holds two deque locks at once.
      for (std::size_t k = 1; k < stolen.size(); ++k)
        own.push_back(stolen[k]);
      execute(stolen[0], worker);
      stole = true;
    }
    if (!stole) {
      // Every deque is dry but some tasks are still executing on other
      // workers; nothing to do until the round ends.
      if (remaining_.load(std::memory_order_acquire) == 0) return;
      std::this_thread::yield();
    }
  }
}

void work_stealing_pool::execute(std::size_t task, std::size_t worker) {
  // Re-load per task: this task was made visible after its round's fn_, so
  // the pointer read here is the matching function even for a worker that
  // lagged across a round boundary.
  const task_fn* const fn = fn_.load(std::memory_order_acquire);
  try {
    (*fn)(task, worker);
  } catch (...) {
    const lock_guard lock{error_mutex_};
    if (first_error_ == nullptr) first_error_ = std::current_exception();
  }
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    const lock_guard lock{done_mutex_};
    done_cv_.notify_all();
  }
}

}  // namespace dqn::util
