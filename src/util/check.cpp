#include "util/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace dqn::util {

namespace {

std::atomic<contract_mode> g_mode{contract_mode::throw_exception};
std::atomic<contract_observer> g_observer{nullptr};
std::atomic<std::uint64_t> g_violations{0};

void report_to_stderr(const contract_failure_info& info) {
  const std::string report = info.to_string();
  std::fprintf(stderr, "[dqn contract] %s\n", report.c_str());
  std::fflush(stderr);
}

void notify(const contract_failure_info& info) noexcept {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  if (const contract_observer observer =
          g_observer.load(std::memory_order_acquire);
      observer != nullptr) {
    try {
      observer(info);
    } catch (...) {
      // Observers are telemetry; a throwing observer must not change the
      // failure semantics at the contract site.
    }
  }
}

}  // namespace

std::string contract_failure_info::to_string() const {
  std::string out;
  out += file;
  out += ':';
  out += std::to_string(line);
  out += ": ";
  out += kind;
  out += " failed: ";
  out += expression;
  if (!message.empty()) {
    out += " (";
    out += message;
    out += ')';
  }
  return out;
}

contract_mode get_contract_mode() noexcept {
  return g_mode.load(std::memory_order_acquire);
}

void set_contract_mode(contract_mode mode) noexcept {
  g_mode.store(mode, std::memory_order_release);
}

contract_observer set_contract_observer(contract_observer observer) noexcept {
  return g_observer.exchange(observer, std::memory_order_acq_rel);
}

std::uint64_t contract_violation_count() noexcept {
  return g_violations.load(std::memory_order_relaxed);
}

void reset_contract_violation_count() noexcept {
  g_violations.store(0, std::memory_order_relaxed);
}

void handle_contract_failure(const char* file, int line, const char* kind,
                             const char* expression, std::string message) {
  contract_failure_info info;
  info.file = file;
  info.line = line;
  info.kind = kind;
  info.expression = expression;
  info.message = std::move(message);
  notify(info);
  switch (get_contract_mode()) {
    case contract_mode::throw_exception:
      throw contract_violation{info.to_string()};
    case contract_mode::abort_process:
      report_to_stderr(info);
      std::abort();
    case contract_mode::log_and_continue:
      report_to_stderr(info);
      return;
  }
  DQN_UNREACHABLE("invalid contract_mode ",
                  static_cast<int>(get_contract_mode()));
}

void handle_unreachable(const char* file, int line, std::string message) {
  contract_failure_info info;
  info.file = file;
  info.line = line;
  info.kind = "unreachable";
  info.expression = "control flow reached a DQN_UNREACHABLE site";
  info.message = std::move(message);
  notify(info);
  if (get_contract_mode() == contract_mode::throw_exception)
    throw contract_violation{info.to_string()};
  // log_and_continue cannot continue past an unreachable site: abort.
  report_to_stderr(info);
  std::abort();
}

}  // namespace dqn::util
