// Deterministic pseudo-random number generation for simulations.
//
// All stochastic components of the library draw from dqn::util::rng so that
// every experiment is reproducible from a single 64-bit seed. The engine is
// xoshiro256** (public domain, Blackman & Vigna), which is fast, has a 256-bit
// state, and passes BigCrush. Distribution helpers are implemented directly
// (not via <random> distributions) so that sequences are stable across
// standard-library implementations.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>
#include <span>
#include <stdexcept>
#include <vector>

namespace dqn::util {

// splitmix64: used to expand a single seed into the xoshiro state, and as a
// cheap stateless hash for deriving per-stream seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Derive a decorrelated child seed from (seed, stream_id). Used to give every
// flow/port/device its own independent stream.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                                  std::uint64_t stream_id) noexcept {
  std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
  (void)splitmix64(s);
  return splitmix64(s);
}

class rng {
 public:
  using result_type = std::uint64_t;

  explicit rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1): 53 random mantissa bits.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  // Uniform integer in [0, n). Unbiased via rejection.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) {
    if (n == 0) throw std::invalid_argument{"rng::uniform_int: n must be positive"};
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument{"rng::uniform_int: empty range"};
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  // Exponential with rate lambda (mean 1/lambda).
  [[nodiscard]] double exponential(double lambda) {
    if (lambda <= 0) throw std::invalid_argument{"rng::exponential: lambda must be > 0"};
    double u = uniform();
    if (u <= 0) u = std::numeric_limits<double>::min();
    return -std::log(u) / lambda;
  }

  // Standard normal via Box-Muller (no cached spare: keeps the stream simple
  // and branch-free to reason about).
  [[nodiscard]] double normal() noexcept {
    double u1 = uniform();
    if (u1 <= 0) u1 = std::numeric_limits<double>::min();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  // Pareto with shape alpha and minimum xm (heavy tail; alpha in (1,2) gives
  // long-range-dependent aggregates, used by the trace stand-ins).
  [[nodiscard]] double pareto(double alpha, double xm) {
    if (alpha <= 0 || xm <= 0)
      throw std::invalid_argument{"rng::pareto: alpha and xm must be > 0"};
    double u = uniform();
    if (u <= 0) u = std::numeric_limits<double>::min();
    return xm / std::pow(u, 1.0 / alpha);
  }

  // Sample an index according to the (unnormalised) weights.
  [[nodiscard]] std::size_t discrete(std::span<const double> weights) {
    double total = 0;
    for (double w : weights) {
      if (w < 0) throw std::invalid_argument{"rng::discrete: negative weight"};
      total += w;
    }
    if (total <= 0) throw std::invalid_argument{"rng::discrete: all-zero weights"};
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0) return i;
    }
    return weights.size() - 1;  // guard against rounding
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform_int(static_cast<std::uint64_t>(i))]);
    }
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dqn::util
