// Capability-annotated synchronization primitives (util/annotations.hpp).
//
// std::mutex carries no clang capability attribute under libstdc++, so locks
// held through the raw std types are invisible to -Wthread-safety. These
// wrappers are the repo's locking vocabulary: same semantics and cost as the
// std types they delegate to (every method is a forwarding inline), plus the
// attributes that let the analysis prove every DQN_GUARDED_BY member is only
// touched under its mutex. First-party code uses these instead of
// std::mutex / std::lock_guard / std::unique_lock / std::condition_variable;
// scripts/lint.sh and the CI static-analysis job keep it that way.
//
//   class cache {
//     ...
//     mutable util::mutex mutex_;
//     std::map<key, value> entries_ DQN_GUARDED_BY(mutex_);
//   };
//   const util::lock_guard lock{mutex_};   // scoped acquire, like std::
//
// For condition waits, pair util::unique_lock with util::condition_variable:
// wait() reacquires before returning, so from the analysis's perspective the
// capability is held for the whole lock scope — guarded members may be read
// directly in the wait loop.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace dqn::util {

// Exclusive mutex: a std::mutex declared as a capability.
class DQN_CAPABILITY("mutex") mutex {
 public:
  mutex() = default;
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() DQN_ACQUIRE() { m_.lock(); }
  void unlock() DQN_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() DQN_TRY_ACQUIRE(true) { return m_.try_lock(); }

  // The wrapped std::mutex, for interop with std APIs that need the native
  // type (util::unique_lock uses it for condition_variable waits). Calls on
  // the native object bypass the analysis — lock through the wrapper.
  [[nodiscard]] std::mutex& native() noexcept { return m_; }

 private:
  std::mutex m_;
};

// Scoped exclusive lock: acquires on construction, releases on destruction
// (the std::lock_guard shape, visible to the analysis).
class DQN_SCOPED_CAPABILITY lock_guard {
 public:
  explicit lock_guard(mutex& m) DQN_ACQUIRE(m) : mutex_{m} { mutex_.lock(); }
  ~lock_guard() DQN_RELEASE() { mutex_.unlock(); }

  lock_guard(const lock_guard&) = delete;
  lock_guard& operator=(const lock_guard&) = delete;

 private:
  mutex& mutex_;
};

// Scoped lock over the native mutex, for condition-variable waits. The
// capability is considered held for the whole scope: condition_variable::wait
// releases and reacquires internally, which is sound because control only
// returns to the caller with the lock re-held.
class DQN_SCOPED_CAPABILITY unique_lock {
 public:
  explicit unique_lock(mutex& m) DQN_ACQUIRE(m) : lock_{m.native()} {}
  ~unique_lock() DQN_RELEASE() {}

  unique_lock(const unique_lock&) = delete;
  unique_lock& operator=(const unique_lock&) = delete;

  [[nodiscard]] std::unique_lock<std::mutex>& native() noexcept {
    return lock_;
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

// Condition variable over util::mutex. wait() returns with the lock re-held,
// so callers test their predicate on guarded members directly:
//
//   util::unique_lock lock{mutex_};
//   while (!ready_) cv_.wait(lock);   // ready_ is DQN_GUARDED_BY(mutex_)
class condition_variable {
 public:
  condition_variable() = default;
  condition_variable(const condition_variable&) = delete;
  condition_variable& operator=(const condition_variable&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(unique_lock& lock) { cv_.wait(lock.native()); }

  // Timed wait, same re-held-on-return contract as wait(). Returns
  // std::cv_status::timeout when the duration elapsed without a notify —
  // background threads (obs telemetry sampler) use this as an interruptible
  // sleep: wake instantly on notify, tick on timeout.
  template <typename Rep, typename Period>
  std::cv_status wait_for(unique_lock& lock,
                          const std::chrono::duration<Rep, Period>& duration) {
    return cv_.wait_for(lock.native(), duration);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace dqn::util
