#include "util/stopwatch.hpp"

#include <cmath>
#include <ctime>

namespace dqn::util {

std::string format_duration(double seconds) {
  if (seconds < 0) seconds = 0;
  const auto total = static_cast<std::int64_t>(std::llround(seconds * 1000.0));
  const std::int64_t ms = total % 1000;
  const std::int64_t s = (total / 1000) % 60;
  const std::int64_t m = (total / 60'000) % 60;
  const std::int64_t h = total / 3'600'000;
  std::string out;
  if (h > 0) out += std::to_string(h) + "h";
  if (h > 0 || m > 0) out += std::to_string(m) + "m";
  if (total >= 1000) {
    out += std::to_string(s) + "s";
  } else {
    out += std::to_string(ms) + "ms";
  }
  return out;
}

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace dqn::util
