// Deterministic keyed lookup table: a sorted vector of (key, value) pairs
// behind a small build -> finalize -> lookup API.
//
// This is the sanctioned replacement for std::unordered_map in paths whose
// results feed float sums, percentile inputs, or exported records: iteration
// order over an unordered container is implementation- and rehash-dependent,
// which turns any order-sensitive consumer into cross-run (and, in the
// sharded engine, cross-partition) nondeterminism. The dqn-unordered-
// iteration check (tools/tidy/ plugin + scripts/ast_lint.py builtin floor)
// flags such traversals; restructuring to this container removes the hazard
// by construction — begin()/end() walk in ascending key order, always.
//
// Usage contract: push_back() during a build phase, finalize() once, then
// lookups and traversal. Duplicate keys keep the first-inserted value
// (matching the unordered_map::emplace semantics the restructured call
// sites relied on). Lookups on a non-finalized table are a contract
// violation, not a silent wrong answer.
//
// Keys must be ordered (operator<) and ostream-streamable (diagnostics).
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace dqn::util {

template <typename Key, typename Value>
class keyed_vector {
 public:
  using entry = std::pair<Key, Value>;
  using const_iterator = typename std::vector<entry>::const_iterator;

  void reserve(std::size_t n) { entries_.reserve(n); }

  void push_back(const Key& key, Value value) {
    entries_.emplace_back(key, std::move(value));
    finalized_ = false;
  }

  // Sort by key and drop duplicates, keeping the first-inserted value per
  // key. Idempotent; required before any lookup or traversal.
  void finalize() {
    std::stable_sort(
        entries_.begin(), entries_.end(),
        [](const entry& a, const entry& b) { return a.first < b.first; });
    entries_.erase(
        std::unique(entries_.begin(), entries_.end(),
                    [](const entry& a, const entry& b) {
                      return a.first == b.first;
                    }),
        entries_.end());
    finalized_ = true;
  }

  [[nodiscard]] const Value* find(const Key& key) const {
    DQN_ENSURE(finalized_,
               "keyed_vector::find before finalize() — lookups on an "
               "unsorted table would be wrong, not just slow");
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const entry& e, const Key& k) { return e.first < k; });
    if (it == entries_.end() || it->first != key) return nullptr;
    return &it->second;
  }

  [[nodiscard]] const Value& at(const Key& key) const {
    const Value* value = find(key);
    DQN_ENSURE(value != nullptr, "keyed_vector::at: key ", key, " not found");
    return *value;
  }

  void clear() {
    entries_.clear();
    finalized_ = true;  // empty is trivially sorted
  }

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  // Ascending key order — deterministic by construction.
  [[nodiscard]] const_iterator begin() const noexcept {
    return entries_.begin();
  }
  [[nodiscard]] const_iterator end() const noexcept { return entries_.end(); }

 private:
  std::vector<entry> entries_;
  bool finalized_ = true;  // empty is trivially sorted
};

}  // namespace dqn::util
