// A small fixed-size thread pool used by the parallel DeepQueueNet engine.
//
// The paper runs model-parallel inference across 1/2/4 GPUs (Figure 11); we
// substitute worker threads for GPUs (see DESIGN.md §2). The pool supports
// submitting individual tasks and a blocking parallel_for over an index
// range, which is what the partitioned inference loop needs.
//
// Locking (checked by -Wthread-safety; see docs/CONCURRENCY.md): mutex_ is a
// leaf lock guarding the task queue and the stop flag; it is never held
// while a task runs or while joining workers.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace dqn::util {

class thread_pool {
 public:
  explicit thread_pool(std::size_t num_threads) {
    if (num_threads == 0)
      throw std::invalid_argument{"thread_pool: need at least one thread"};
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  ~thread_pool() {
    {
      const lock_guard lock{mutex_};
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  // Tasks submitted but not yet picked up by a worker — the queue depth the
  // obs telemetry plane reports as a gauge. Lock-free (relaxed: a monitoring
  // read tolerates being one task stale).
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_relaxed);
  }

  // Submit a task; the returned future propagates exceptions.
  template <typename F>
  [[nodiscard]] std::future<void> submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(f));
    auto future = task->get_future();
    {
      const lock_guard lock{mutex_};
      if (stopping_) throw std::runtime_error{"thread_pool: submit after shutdown"};
      queue_.emplace_back([task] { (*task)(); });
      pending_.store(queue_.size(), std::memory_order_relaxed);
    }
    cv_.notify_one();
    return future;
  }

  // Run f(i) for i in [0, count), blocking until every call returns. Work is
  // split into contiguous chunks, one per worker, to keep per-partition data
  // hot in a single thread (mirrors one-GPU-per-partition execution).
  template <typename F>
  void parallel_for(std::size_t count, F&& f) {
    if (count == 0) return;
    const std::size_t chunks = std::min(count, size());
    const std::size_t per_chunk = (count + chunks - 1) / chunks;
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * per_chunk;
      const std::size_t end = std::min(count, begin + per_chunk);
      if (begin >= end) break;
      futures.push_back(submit([begin, end, &f] {
        for (std::size_t i = begin; i < end; ++i) f(i);
      }));
    }
    for (auto& future : futures) future.get();
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        unique_lock lock{mutex_};
        // wait() returns with mutex_ re-held, so reading the guarded
        // members in the loop condition is lock-correct.
        while (!stopping_ && queue_.empty()) cv_.wait(lock);
        if (stopping_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
        pending_.store(queue_.size(), std::memory_order_relaxed);
      }
      task();
    }
  }

  mutex mutex_;
  condition_variable cv_;
  std::deque<std::function<void()>> queue_ DQN_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;
  bool stopping_ DQN_GUARDED_BY(mutex_) = false;
  // Mirror of queue_.size(), updated under mutex_ but readable lock-free by
  // pending(); a plain atomic so monitoring never contends with submit.
  std::atomic<std::size_t> pending_{0};
};

}  // namespace dqn::util
