// Plain-text table rendering for the benchmark harnesses. Each bench binary
// prints the same rows the paper's table reports; this helper keeps the
// formatting consistent and readable.
#pragma once

#include <string>
#include <vector>

namespace dqn::util {

class text_table {
 public:
  explicit text_table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Render with column alignment and a separator under the header.
  [[nodiscard]] std::string to_string() const;

  // Render as CSV (for post-processing / plotting).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Format a double with the given number of decimal places.
[[nodiscard]] std::string fmt(double value, int decimals = 4);

}  // namespace dqn::util
