// Plain-text table rendering for the benchmark harnesses. Each bench binary
// prints the same rows the paper's table reports; this helper keeps the
// formatting consistent and readable.
#pragma once

#include <string>
#include <vector>

namespace dqn::util {

class text_table {
 public:
  explicit text_table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Free-form lines appended after the rows in to_string() (omitted from
  // CSV). Used for warnings that must ride along with a printed table, e.g.
  // the obs summary's dropped-events / contract-violation notice.
  void add_footer(std::string line);
  [[nodiscard]] const std::vector<std::string>& footer() const noexcept {
    return footer_;
  }

  // Render with column alignment and a separator under the header.
  [[nodiscard]] std::string to_string() const;

  // Render as CSV (for post-processing / plotting).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> footer_;
};

// Format a double with the given number of decimal places.
[[nodiscard]] std::string fmt(double value, int decimals = 4);

}  // namespace dqn::util
