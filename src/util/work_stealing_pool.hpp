// Persistent work-stealing scheduler for the sharded DeepQueueNet engine.
//
// The engine's unit of work is a *device batch*: a contiguous slice of one
// shard's device list. Each worker owns a deque seeded with its shard's
// batches; it drains its own deque from the front (shard order, cache-warm)
// and, when empty, steals roughly half of a victim's remaining batches from
// the back — so a straggling shard is rebalanced *within* an IRSA iteration
// instead of serializing the barrier on its slowest worker.
//
// Execution is round-based: run_round() seeds every worker's deque, wakes
// the (persistent) workers, and blocks until every task has run. Workers
// park between rounds, so one pool amortizes thread creation across all
// IRSA iterations and all runs of an engine.
//
// Locking (checked by -Wthread-safety; see docs/CONCURRENCY.md): every
// steal_deque has its own leaf mutex; a worker NEVER holds two deque locks
// at once (stolen tasks are moved out of the victim under its lock, then
// pushed into the thief's deque under the thief's lock). round_mutex_,
// done_mutex_ and error_mutex_ are independent leaf locks; none is ever
// held while a task executes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace dqn::util {

// One worker's task deque. The owner pushes and pops at the front (FIFO in
// seed order); thieves take ceil(size/2) items from the back — the work the
// owner would reach last. A plain mutex per deque: the engine's tasks are
// millisecond-scale device batches, so one lock op per batch is noise, and
// the implementation is trivially TSan/-Wthread-safety-clean.
class steal_deque {
 public:
  // Owner: append a task at the back (seed order is preserved for pops).
  void push_back(std::size_t task) {
    const lock_guard lock{mutex_};
    tasks_.push_back(task);
  }

  // Owner: take the frontmost task. Returns false when the deque is empty.
  [[nodiscard]] bool pop_front(std::size_t* task) {
    const lock_guard lock{mutex_};
    if (tasks_.empty()) return false;
    *task = tasks_.front();
    tasks_.pop_front();
    return true;
  }

  // Thief: remove ceil(size/2) tasks from the back and return them in deque
  // order. Empty deque -> empty vector; a single remaining task IS stolen
  // (the victim may be busy inside another batch for milliseconds).
  [[nodiscard]] std::vector<std::size_t> steal_half() {
    const lock_guard lock{mutex_};
    const std::size_t take = (tasks_.size() + 1) / 2;
    std::vector<std::size_t> stolen;
    if (take == 0) return stolen;
    stolen.reserve(take);
    const std::size_t keep = tasks_.size() - take;
    for (std::size_t i = keep; i < tasks_.size(); ++i)
      stolen.push_back(tasks_[i]);
    tasks_.resize(keep);
    return stolen;
  }

  [[nodiscard]] std::size_t size() const {
    const lock_guard lock{mutex_};
    return tasks_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  mutable mutex mutex_;
  std::deque<std::size_t> tasks_ DQN_GUARDED_BY(mutex_);
};

class work_stealing_pool {
 public:
  using task_fn = std::function<void(std::size_t task, std::size_t worker)>;

  // `workers` persistent threads (>= 1). With `pin_threads`, worker w is
  // pinned to core w % hardware_concurrency via pthread_setaffinity_np on
  // Linux; elsewhere (and on affinity failure) pinning is a graceful no-op.
  explicit work_stealing_pool(std::size_t workers, bool pin_threads = false);

  work_stealing_pool(const work_stealing_pool&) = delete;
  work_stealing_pool& operator=(const work_stealing_pool&) = delete;

  ~work_stealing_pool();

  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }
  [[nodiscard]] bool pinned() const noexcept { return pin_threads_; }

  // Execute one round: seeds[w] is the ordered task list placed on worker
  // w's deque (seeds.size() must equal size()). fn(task, worker) is invoked
  // exactly once per seeded task, on whichever worker ran it. Blocks until
  // every task has finished; the first exception a task threw is rethrown
  // here (the remaining tasks still run to completion first, so the round
  // barrier holds even on failure). Returns the number of steal operations
  // the round needed — 0 when every worker drained only its own deque.
  std::uint64_t run_round(const std::vector<std::vector<std::size_t>>& seeds,
                          const task_fn& fn);

  // Tasks seeded but not yet finished in the current round (0 between
  // rounds). Monitoring-grade: a relaxed-tolerant snapshot for the
  // engine.pool_queue_depth gauge.
  [[nodiscard]] std::size_t remaining() const noexcept {
    return remaining_.load(std::memory_order_acquire);
  }

  // Steal operations since construction (across all rounds).
  [[nodiscard]] std::uint64_t total_steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop(std::size_t worker);
  void drain_round(std::size_t worker);
  void execute(std::size_t task, std::size_t worker);

  std::vector<std::unique_ptr<steal_deque>> deques_;
  std::vector<std::thread> threads_;
  bool pin_threads_ = false;

  // Round handoff: fn_ and remaining_ are stored before any task becomes
  // visible in a deque, so a worker that pops a task always observes the
  // round's function through the deque mutex's happens-before edge (workers
  // re-load fn_ per task — a laggard from the previous round that picks up
  // a fresh task runs it with the fresh function).
  std::atomic<const task_fn*> fn_{nullptr};
  std::atomic<std::size_t> remaining_{0};
  std::atomic<std::uint64_t> steals_{0};

  mutex round_mutex_;
  condition_variable round_cv_;
  std::uint64_t round_ DQN_GUARDED_BY(round_mutex_) = 0;
  bool stopping_ DQN_GUARDED_BY(round_mutex_) = false;

  mutex done_mutex_;
  condition_variable done_cv_;

  mutex error_mutex_;
  std::exception_ptr first_error_ DQN_GUARDED_BY(error_mutex_);
};

}  // namespace dqn::util
