// Wall-clock stopwatch for the timing benchmarks (Table 7, Figure 15).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace dqn::util {

class stopwatch {
 public:
  stopwatch() noexcept : start_{clock::now()} {}

  void restart() noexcept { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] std::int64_t elapsed_ms() const noexcept {
    return std::chrono::duration_cast<std::chrono::milliseconds>(clock::now() - start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Render seconds as the paper's "XhYmZs" format used in Table 7.
[[nodiscard]] std::string format_duration(double seconds);

// CPU time consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID). Used to
// attribute work to engine partitions independently of how the OS
// interleaves threads on shared cores.
[[nodiscard]] double thread_cpu_seconds();

}  // namespace dqn::util
