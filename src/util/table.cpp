#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace dqn::util {

text_table::text_table(std::vector<std::string> header) : header_{std::move(header)} {
  if (header_.empty()) throw std::invalid_argument{"text_table: empty header"};
}

void text_table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument{"text_table: row width does not match header"};
  rows_.push_back(std::move(cells));
}

void text_table::add_footer(std::string line) {
  footer_.push_back(std::move(line));
}

std::string text_table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) out << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  for (const auto& line : footer_) out << line << '\n';
  return out.str();
}

std::string text_table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) out << ',';
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

}  // namespace dqn::util
