// Compile-time concurrency and hot-path annotations.
//
// Two families live here (docs/CONCURRENCY.md is the usage guide):
//
//  1. Clang capability (thread-safety) attributes, wrapped so the tree stays
//     portable: under clang they expand to the attributes consumed by
//     -Wthread-safety, everywhere else to nothing. Lock-owning classes use
//     the annotated wrappers in util/mutex.hpp (std::mutex itself carries no
//     capability attribute under libstdc++, so raw std types are invisible
//     to the analysis); every member a mutex protects is declared
//     DQN_GUARDED_BY(that_mutex), and every function with a locking
//     precondition states it with DQN_REQUIRES. The CI static-analysis job
//     builds all first-party targets with -Wthread-safety promoted to an
//     error (CMake -DDQN_THREAD_SAFETY_ERROR=ON), so a lock-discipline
//     violation is a build break, not a TSan coin flip.
//
//  2. DQN_HOT_PATH: marks a function as a steady-state per-packet kernel.
//     scripts/ast_lint.py enforces two invariants inside every marked body:
//     no allocating constructs (new/make_unique/make_shared, std::string
//     growth, container construction or growth), and no string-keyed obs
//     calls (sink.count("...") and friends — pre-resolved handles only).
//     Under clang the macro also emits an AST annotation ("dqn::hot_path")
//     so the libclang lint engine can find marked functions semantically;
//     other compilers see an empty token (the builtin lint engine matches
//     the macro name textually).
//
// The macro set mirrors the canonical names from clang's thread-safety
// documentation with a DQN_ prefix; keep new code to these spellings so the
// lint fixtures and docs stay accurate.
#pragma once

#if defined(__clang__)
#define DQN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DQN_THREAD_ANNOTATION(x)  // no-op off clang
#endif

// ---- capability declarations ----------------------------------------------

// On a class: instances are a capability (a lock) named `x` in diagnostics.
#define DQN_CAPABILITY(x) DQN_THREAD_ANNOTATION(capability(x))

// On a class: RAII object that acquires in its constructor and releases in
// its destructor (util/mutex.hpp's lock_guard / unique_lock).
#define DQN_SCOPED_CAPABILITY DQN_THREAD_ANNOTATION(scoped_lockable)

// ---- data annotations ------------------------------------------------------

// On a member: reads and writes require holding capability `x`.
#define DQN_GUARDED_BY(x) DQN_THREAD_ANNOTATION(guarded_by(x))

// On a pointer member: the pointed-to data requires holding `x`.
#define DQN_PT_GUARDED_BY(x) DQN_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock-ordering declarations (deadlock prevention; see docs/CONCURRENCY.md).
#define DQN_ACQUIRED_BEFORE(...) \
  DQN_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define DQN_ACQUIRED_AFTER(...) \
  DQN_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// ---- function annotations --------------------------------------------------

// Caller must hold the capability (exclusively / shared).
#define DQN_REQUIRES(...) \
  DQN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define DQN_REQUIRES_SHARED(...) \
  DQN_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Function acquires / releases the capability itself.
#define DQN_ACQUIRE(...) \
  DQN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DQN_ACQUIRE_SHARED(...) \
  DQN_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define DQN_RELEASE(...) \
  DQN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DQN_RELEASE_SHARED(...) \
  DQN_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

// Function acquires only when it returns `cond` (try_lock-style).
#define DQN_TRY_ACQUIRE(...) \
  DQN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Caller must NOT hold the capability (the function acquires it itself;
// stating it catches self-deadlock on non-reentrant mutexes).
#define DQN_EXCLUDES(...) DQN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held (trusted by the analysis).
#define DQN_ASSERT_CAPABILITY(x) DQN_THREAD_ANNOTATION(assert_capability(x))

// On an accessor: the returned reference is the capability `x`.
#define DQN_RETURN_CAPABILITY(x) DQN_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch — forbidden in first-party code by policy (the tree compiles
// with zero suppressions); exists for vendored code and lint fixtures only.
#define DQN_NO_THREAD_SAFETY_ANALYSIS \
  DQN_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---- hot-path marker -------------------------------------------------------

// Steady-state per-packet kernel: scripts/ast_lint.py rejects allocating
// constructs and string-keyed obs calls inside the marked body. Place on the
// definition (the lint pass analyses bodies); on a declaration it documents
// the contract for callers.
#if defined(__clang__)
#define DQN_HOT_PATH __attribute__((annotate("dqn::hot_path")))
#else
#define DQN_HOT_PATH
#endif
