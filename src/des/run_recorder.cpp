#include "des/run_recorder.hpp"

#include <utility>

#include "obs/sink.hpp"
#include "obs/telemetry/run_ledger.hpp"

namespace dqn::des {

run_recorder::run_recorder(obs::sink* s, std::string estimator,
                           std::string backend)
    : sink_{s},
      estimator_{std::move(estimator)},
      backend_{std::move(backend)} {
  if (sink_ != nullptr) start_seconds_ = sink_->now();
}

run_recorder::~run_recorder() {
  if (sink_ == nullptr || done_) return;
  obs::telemetry::run_record record;
  record.estimator = std::move(estimator_);
  record.backend = std::move(backend_);
  record.start_seconds = start_seconds_;
  record.wall_seconds = watch_.elapsed_seconds();
  record.deliveries = 0;
  record.status = "error";
  sink_->runs().record(std::move(record));
}

void run_recorder::complete(const run_result& result) {
  done_ = true;
  if (sink_ == nullptr) return;
  obs::telemetry::run_record record;
  record.estimator = std::move(estimator_);
  record.backend = std::move(backend_);
  record.start_seconds = start_seconds_;
  record.wall_seconds = result.wall_seconds;
  record.deliveries = result.deliveries.size();
  record.status = "ok";
  sink_->runs().record(std::move(record));
}

}  // namespace dqn::des
