// The unified estimator run contract. Every network performance estimator in
// the repo — the DES oracle (des::network), the DeepQueueNet engine
// (core::dqn_network), and the three baselines (fluid, RouteNet, MimicNet) —
// accepts the same run_request and produces the same des::run_result, so
// benches and examples switch estimators through one code path instead of
// per-type plumbing.
//
// A run_request is a non-owning view: `host_streams` must outlive the call
// (stream i feeds topo.hosts()[i]; packet src/dst fields are host indices).
// `sink` is optional observability — when non-null it overrides any sink the
// estimator's own config carries for the duration of the run.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "des/records.hpp"
#include "traffic/packet.hpp"

namespace dqn::obs {
class sink;
}  // namespace dqn::obs

namespace dqn::des {

// Which sojourn-estimation backend a DeepQueueNet run rides on (see
// core/delay_provider.hpp). `ptm` is the paper's per-device DNN; `analytical`
// the queueing-theoretic closed forms; `tiered` routes each device by the
// runtime policy below. Estimators without a learned device model (the DES
// oracle, the baselines) ignore the whole policy — the one-contract promise
// of this header is that every estimator accepts the same run_request.
enum class delay_backend : std::uint8_t { ptm, analytical, tiered };

[[nodiscard]] inline const char* to_string(delay_backend backend) noexcept {
  switch (backend) {
    case delay_backend::ptm: return "ptm";
    case delay_backend::analytical: return "analytical";
    case delay_backend::tiered: return "tiered";
  }
  return "unknown";
}

// Runtime policy of the tiered backend, re-evaluated per device per IRSA
// iteration. A device starts on the analytical tier iff its egress-queue
// utilization is strictly below `utilization_threshold` (so threshold 0
// reproduces the pure PTM backend exactly); it is promoted to the
// PTM when utilization exceeds threshold + hysteresis and demoted back when
// it falls below threshold - hysteresis (the band prevents tier flapping
// across iterations). `error_budget` is the relative mean-sojourn deviation
// the analytical tier is allowed: on a device's first analytical window both
// backends run once, and a gap beyond the budget promotes the device to the
// PTM for the rest of the run (<= 0 disables the check).
struct delay_policy {
  delay_backend backend = delay_backend::ptm;
  double utilization_threshold = 0.35;
  double hysteresis = 0.05;
  double error_budget = 0.25;

  delay_policy& with_backend(delay_backend b) noexcept {
    backend = b;
    return *this;
  }
  delay_policy& with_threshold(double t) noexcept {
    utilization_threshold = t;
    return *this;
  }
  delay_policy& with_hysteresis(double h) noexcept {
    hysteresis = h;
    return *this;
  }
  delay_policy& with_error_budget(double budget) noexcept {
    error_budget = budget;
    return *this;
  }
};

struct run_request {
  const std::vector<traffic::packet_stream>* host_streams = nullptr;
  double horizon = 0;
  obs::sink* sink = nullptr;
  // Optional per-run delay-backend override, honored by core::dqn_network
  // (replacing its configured policy for this run only) and ignored
  // gracefully by the DES and the baselines.
  std::optional<delay_policy> delay;
  // Worker-thread override for this run: > 0 replaces the engine's
  // configured partition count (core::engine_config::partitions) for the
  // duration of the run; 0 keeps the configured value. Single-threaded
  // estimators (the DES, the baselines) ignore it.
  std::size_t threads = 0;
};

// Polymorphic face of the contract for code that selects estimators at
// runtime (see bench/ and tests/test_obs.cpp). Implementations bind their
// network context (topology, routing, trained models) at construction or via
// their own setters; run() may be called repeatedly.
class estimator {
 public:
  virtual ~estimator() = default;

  [[nodiscard]] virtual run_result run(const run_request& request) = 0;

  // Short stable identifier, e.g. "des", "deepqueuenet", "fluid".
  [[nodiscard]] virtual const char* estimator_name() const noexcept = 0;
};

}  // namespace dqn::des
