// The unified estimator run contract. Every network performance estimator in
// the repo — the DES oracle (des::network), the DeepQueueNet engine
// (core::dqn_network), and the three baselines (fluid, RouteNet, MimicNet) —
// accepts the same run_request and produces the same des::run_result, so
// benches and examples switch estimators through one code path instead of
// per-type plumbing.
//
// A run_request is a non-owning view: `host_streams` must outlive the call
// (stream i feeds topo.hosts()[i]; packet src/dst fields are host indices).
// `sink` is optional observability — when non-null it overrides any sink the
// estimator's own config carries for the duration of the run.
#pragma once

#include <vector>

#include "des/records.hpp"
#include "traffic/packet.hpp"

namespace dqn::obs {
class sink;
}  // namespace dqn::obs

namespace dqn::des {

struct run_request {
  const std::vector<traffic::packet_stream>* host_streams = nullptr;
  double horizon = 0;
  obs::sink* sink = nullptr;
};

// Polymorphic face of the contract for code that selects estimators at
// runtime (see bench/ and tests/test_obs.cpp). Implementations bind their
// network context (topology, routing, trained models) at construction or via
// their own setters; run() may be called repeatedly.
class estimator {
 public:
  virtual ~estimator() = default;

  [[nodiscard]] virtual run_result run(const run_request& request) = 0;

  // Short stable identifier, e.g. "des", "deepqueuenet", "fluid".
  [[nodiscard]] virtual const char* estimator_name() const noexcept = 0;
};

}  // namespace dqn::des
