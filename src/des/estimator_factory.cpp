#include "des/estimator_factory.hpp"

#include <stdexcept>

#include "baselines/fluid.hpp"
#include "util/check.hpp"

namespace dqn::des {

namespace {

void require(bool ok, const char* estimator, const char* what) {
  if (!ok)
    throw std::invalid_argument{std::string{"make_estimator(\""} + estimator +
                                "\"): estimator_context." + what +
                                " is required"};
}

}  // namespace

std::unique_ptr<estimator> make_estimator(std::string_view name,
                                          const estimator_context& context) {
  if (name == "des") {
    require(context.topo != nullptr, "des", "topo");
    require(context.routes != nullptr, "des", "routes");
    return std::make_unique<network>(*context.topo, *context.routes,
                                     context.des);
  }
  if (name == "deepqueuenet" || name == "dqn") {
    require(context.topo != nullptr, "deepqueuenet", "topo");
    require(context.routes != nullptr, "deepqueuenet", "routes");
    require(context.ptm != nullptr, "deepqueuenet", "ptm");
    return std::make_unique<core::dqn_network>(*context.topo, *context.routes,
                                               context.ptm, context.scheduler,
                                               context.engine);
  }
  if (name == "fluid") {
    require(context.topo != nullptr, "fluid", "topo");
    require(context.routes != nullptr, "fluid", "routes");
    require(context.flows != nullptr, "fluid", "flows");
    require(context.flow_rates_pps != nullptr, "fluid", "flow_rates_pps");
    require(context.mean_packet_size > 0, "fluid", "mean_packet_size");
    return std::make_unique<baselines::fluid_estimator>(
        *context.topo, *context.routes, *context.flows,
        *context.flow_rates_pps, context.mean_packet_size);
  }
  if (name == "routenet")
    throw std::invalid_argument{
        "make_estimator(\"routenet\"): RouteNet needs scenario-specific "
        "training — construct baselines::routenet_estimator and call train() "
        "with make_examples() output (see bench_table4_traffic_generality.cpp)"};
  if (name == "mimicnet")
    throw std::invalid_argument{
        "make_estimator(\"mimicnet\"): MimicNet needs a DES reference run to "
        "train its mimics — construct baselines::mimicnet_estimator and call "
        "train() (see bench_table7_scalability.cpp)"};
  std::string known;
  for (const auto& candidate : estimator_names()) {
    if (!known.empty()) known += ", ";
    known += candidate;
  }
  throw std::invalid_argument{std::string{"make_estimator: unknown estimator "
                                          "\""} +
                              std::string{name} + "\" (known: " + known + ")"};
}

std::vector<std::string> estimator_names() {
  return {"des", "deepqueuenet", "fluid"};
}

}  // namespace dqn::des
