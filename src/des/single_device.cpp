#include "des/single_device.hpp"

#include <stdexcept>
#include <unordered_map>

#include "des/simulator.hpp"

namespace dqn::des {

single_switch_result run_single_switch(const single_switch_config& config,
                                       const std::vector<traffic::packet_stream>& ingress,
                                       const forward_fn& forward, double horizon,
                                       bool sample_queues) {
  if (config.ports == 0)
    throw std::invalid_argument{"run_single_switch: need >= 1 port"};
  if (ingress.size() != config.ports)
    throw std::invalid_argument{"run_single_switch: one stream per ingress port"};

  struct egress {
    traffic_manager tm;
    bool busy = false;
    std::size_t serving_class = 0;  // valid while busy
  };
  simulator sim;
  single_switch_result result;
  std::vector<egress> ports;
  ports.reserve(config.ports);
  for (std::size_t i = 0; i < config.ports; ++i)
    ports.push_back({traffic_manager{config.tm}, false});
  std::unordered_map<std::uint64_t, std::pair<double, std::size_t>> pending;

  // Forward declaration of the service loop as a recursive lambda.
  std::function<void(std::size_t)> try_transmit = [&](std::size_t out_port) {
    auto& port = ports[out_port];
    if (port.busy) return;
    auto pkt = port.tm.dequeue();
    if (!pkt) return;
    port.busy = true;
    port.serving_class =
        port.tm.config().kind == scheduler_kind::fifo
            ? 0
            : std::min<std::size_t>(pkt->priority, port.tm.config().classes - 1);
    const auto it = pending.find(pkt->pid);
    if (it == pending.end())
      throw std::logic_error{"run_single_switch: missing pending record"};
    hop_record h;
    h.pid = pkt->pid;
    h.flow_id = pkt->flow_id;
    h.device = 0;
    h.in_port = it->second.second;
    h.out_port = out_port;
    h.arrival = it->second.first;
    h.departure = sim.now();
    h.size_bytes = pkt->size_bytes;
    h.priority = pkt->priority;
    h.weight = pkt->weight;
    h.protocol = pkt->protocol;
    result.hops.push_back(h);
    pending.erase(it);
    const double tx = static_cast<double>(pkt->size_bytes) * 8.0 / config.bandwidth_bps;
    sim.schedule_in(tx, [&, out_port] {
      ports[out_port].busy = false;
      try_transmit(out_port);
    });
  };

  for (std::size_t in_port = 0; in_port < config.ports; ++in_port) {
    for (const auto& ev : ingress[in_port]) {
      if (ev.time > horizon) break;
      const traffic::packet pkt = ev.pkt;
      sim.schedule_at(ev.time, [&, pkt, in_port] {
        const std::size_t out_port = forward(pkt.flow_id, in_port);
        if (out_port >= config.ports)
          throw std::out_of_range{"run_single_switch: forward() port out of range"};
        if (!ports[out_port].tm.enqueue(pkt)) {
          ++result.drops;
          return;
        }
        pending.emplace(pkt.pid, std::make_pair(sim.now(), in_port));
        try_transmit(out_port);
      });
    }
  }

  if (sample_queues && config.queue_sample_count > 0) {
    const double step = horizon / static_cast<double>(config.queue_sample_count);
    for (std::size_t i = 0; i < config.queue_sample_count; ++i) {
      sim.schedule_at((static_cast<double>(i) + 0.5) * step, [&] {
        const std::size_t classes = ports[0].tm.config().classes;
        std::vector<std::size_t> sample(classes + 1);
        for (std::size_t k = 0; k < classes; ++k)
          sample[k] = ports[0].tm.queue_length(k);
        sample[classes] = ports[0].busy ? ports[0].serving_class + 1 : 0;
        result.queue_samples.push_back(std::move(sample));
      });
    }
  }

  sim.run(horizon * 2 + 1.0);
  return result;
}

}  // namespace dqn::des
