// Discrete-event simulation kernel: a time-ordered event heap with
// deterministic FIFO tie-breaking. This is the substrate equivalent of the
// paper's ns.py (§4.2) — the ground-truth oracle for training data and the
// sequential-DES baseline of Table 7.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "obs/handles.hpp"

namespace dqn::des {

class simulator {
 public:
  [[nodiscard]] double now() const noexcept { return now_; }

  // Schedule `action` at absolute time `when` (>= now).
  void schedule_at(double when, std::function<void()> action);

  // Schedule `action` after `delay` seconds.
  void schedule_in(double delay, std::function<void()> action) {
    schedule_at(now_ + delay, std::move(action));
  }

  // Run until the event queue drains or simulated time exceeds `until`.
  void run(double until);

  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }

  // Pending events right now, and the deepest the heap has ever been — the
  // DES's working-set indicator exported through obs ("des.max_heap_depth").
  [[nodiscard]] std::size_t queue_depth() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t max_queue_depth() const noexcept {
    return max_depth_;
  }

  // Live per-event counting through a pre-resolved obs handle: the event
  // loop increments it lock-free as it processes; a default (null) handle
  // costs one branch per event. des::network installs "des.events" here.
  void set_event_counter(obs::counter_handle handle) noexcept {
    event_counter_ = handle;
  }

 private:
  struct event {
    double time;
    std::uint64_t seq;  // FIFO among equal times, and determinism
    std::function<void()> action;
  };
  struct later {
    bool operator()(const event& a, const event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t max_depth_ = 0;
  obs::counter_handle event_counter_;
  std::priority_queue<event, std::vector<event>, later> queue_;
};

}  // namespace dqn::des
