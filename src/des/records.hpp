// Trace records produced by simulation runs. DES and DeepQueueNet emit the
// same record types, so every metric (RTT, jitter, per-device sojourn,
// anything a user computes later — the packet-level visibility claim) is a
// pure function of these traces.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "topo/graph.hpp"
#include "traffic/packet.hpp"

namespace dqn::des {

// One packet's passage through one device: arrival at the ingress port and
// departure (start of transmission) from the egress port. Sojourn =
// departure - arrival is the PTM's regression target.
struct hop_record {
  std::uint64_t pid = 0;
  std::uint32_t flow_id = 0;
  topo::node_id device = -1;
  std::size_t in_port = 0;
  std::size_t out_port = 0;
  double arrival = 0;
  double departure = 0;
  std::uint32_t size_bytes = 0;
  std::uint8_t priority = 0;
  std::uint16_t weight = 1;
  std::uint8_t protocol = 17;
};

// End-to-end delivery of one packet.
struct delivery_record {
  std::uint64_t pid = 0;
  std::uint32_t flow_id = 0;
  topo::node_id src = -1;
  topo::node_id dst = -1;
  double send_time = 0;
  double delivery_time = 0;

  [[nodiscard]] double latency() const noexcept { return delivery_time - send_time; }
};

struct run_result {
  std::vector<hop_record> hops;            // empty if hop recording disabled
  std::vector<delivery_record> deliveries; // sorted by delivery time
  std::uint64_t drops = 0;
  std::uint64_t events = 0;
  double wall_seconds = 0;
};

// Latency series per flow (delivery order) — the "path-wise" unit of the
// paper's accuracy metrics.
[[nodiscard]] std::map<std::uint32_t, std::vector<double>> per_flow_latencies(
    const run_result& result);

// All end-to-end latencies, in delivery order.
[[nodiscard]] std::vector<double> all_latencies(const run_result& result);

}  // namespace dqn::des
