#include "des/records.hpp"

namespace dqn::des {

std::map<std::uint32_t, std::vector<double>> per_flow_latencies(
    const run_result& result) {
  std::map<std::uint32_t, std::vector<double>> out;
  for (const auto& d : result.deliveries) out[d.flow_id].push_back(d.latency());
  return out;
}

std::vector<double> all_latencies(const run_result& result) {
  std::vector<double> out;
  out.reserve(result.deliveries.size());
  for (const auto& d : result.deliveries) out.push_back(d.latency());
  return out;
}

}  // namespace dqn::des
