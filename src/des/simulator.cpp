#include "des/simulator.hpp"

#include "util/annotations.hpp"
#include "util/check.hpp"

namespace dqn::des {

void simulator::schedule_at(double when, std::function<void()> action) {
  DQN_ENSURE(when >= now_, "simulator::schedule_at: time ", when,
             " is in the past (now = ", now_, ")");
  queue_.push({when, next_seq_++, std::move(action)});
  if (queue_.size() > max_depth_) max_depth_ = queue_.size();
}

// Hot: the DES steady-state loop — pops, advances the clock, dispatches.
// schedule_at (heap push, may reallocate) is deliberately NOT hot-marked.
DQN_HOT_PATH void simulator::run(double until) {
  while (!queue_.empty()) {
    if (queue_.top().time > until) break;
    // priority_queue::top() is const; move out via const_cast-free copy of
    // the action by re-pushing semantics: take a copy, then pop.
    event e{queue_.top().time, queue_.top().seq,
            std::move(const_cast<event&>(queue_.top()).action)};
    queue_.pop();
    now_ = e.time;
    ++processed_;
    event_counter_.add();
    e.action();
  }
  now_ = until;
}

}  // namespace dqn::des
