// Per-egress-port traffic management: the multi-queue packet schedulers the
// paper evaluates (FIFO, SP, WRR, DRR, WFQ; §2.3, §6.1) plus drop-tail
// buffer management. The scheduler logic is a standalone state machine so it
// can be unit- and property-tested without a simulator, and driven by both
// the DES switch and the queueing-theory comparisons.
//
// Class selection: a packet's scheduling class is its `priority` field
// (0 = highest for SP). Weighted disciplines take one weight per class from
// the configuration — the paper's flow-to-weight assignment (Eq. 9).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "traffic/packet.hpp"

namespace dqn::des {

enum class scheduler_kind : std::uint8_t { fifo, sp, wrr, drr, wfq };

[[nodiscard]] const char* to_string(scheduler_kind kind) noexcept;

struct tm_config {
  scheduler_kind kind = scheduler_kind::fifo;
  std::size_t classes = 1;            // number of scheduling classes
  std::vector<double> class_weights;  // per class; required for wrr/drr/wfq
  std::size_t buffer_packets = 4096;  // drop-tail limit across all queues
  std::uint64_t buffer_bytes = 0;     // additional byte limit; 0 = unlimited
  std::uint32_t drr_quantum_bytes = 1500;  // quantum per unit weight
};

class traffic_manager {
 public:
  explicit traffic_manager(tm_config config);

  // Returns false if the packet was dropped (buffer full or bad class).
  bool enqueue(const traffic::packet& pkt);

  // Pop the next packet according to the discipline; nullopt if empty.
  [[nodiscard]] std::optional<traffic::packet> dequeue();

  [[nodiscard]] std::size_t backlog_packets() const noexcept { return backlog_; }
  [[nodiscard]] std::uint64_t backlog_bytes() const noexcept { return backlog_bytes_; }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] bool empty() const noexcept { return backlog_ == 0; }
  [[nodiscard]] const tm_config& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t queue_length(std::size_t klass) const;

 private:
  [[nodiscard]] std::size_t class_of(const traffic::packet& pkt) const noexcept;
  [[nodiscard]] std::optional<traffic::packet> dequeue_sp();
  [[nodiscard]] std::optional<traffic::packet> dequeue_wrr();
  [[nodiscard]] std::optional<traffic::packet> dequeue_drr();
  [[nodiscard]] std::optional<traffic::packet> dequeue_wfq();

  struct wfq_entry {
    traffic::packet pkt;
    double finish_tag = 0;
  };

  tm_config config_;
  std::vector<std::deque<traffic::packet>> queues_;  // fifo/sp/wrr/drr
  std::vector<std::deque<wfq_entry>> wfq_queues_;
  std::vector<double> wfq_last_finish_;  // per class
  double wfq_virtual_time_ = 0;          // SCFQ virtual clock
  std::vector<double> drr_deficit_;
  bool drr_granted_ = false;  // quantum granted to the cursor queue this visit
  std::size_t rr_cursor_ = 0;        // round-robin position (wrr/drr)
  std::uint32_t wrr_served_in_turn_ = 0;
  std::size_t backlog_ = 0;
  std::uint64_t backlog_bytes_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace dqn::des
