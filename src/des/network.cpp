#include "des/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "des/run_recorder.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/sink.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace dqn::des {

namespace {

// Hosts always use a plain FIFO NIC regardless of the switch TM.
tm_config host_tm(const tm_config& base) {
  tm_config cfg;
  cfg.kind = scheduler_kind::fifo;
  cfg.classes = 1;
  cfg.buffer_packets = base.buffer_packets;
  return cfg;
}

}  // namespace

network::network(const topo::topology& topo, const topo::routing& routes,
                 network_config config)
    : topo_{&topo}, routes_{&routes}, config_{std::move(config)} {
  devices_.resize(topo.node_count());
  for (std::size_t i = 0; i < topo.node_count(); ++i) {
    const auto id = static_cast<topo::node_id>(i);
    const auto& node = topo.at(id);
    auto& state = devices_[i];
    state.ports.reserve(node.links.size());
    const tm_config* node_tm = &config_.tm;
    if (const auto it = config_.tm_overrides.find(id);
        it != config_.tm_overrides.end())
      node_tm = &it->second;
    for (std::size_t port = 0; port < node.links.size(); ++port) {
      const auto& link = topo.link_at(node.links[port]);
      const auto peer = topo.peer_of(id, port);
      egress_port ep{
          traffic_manager{node.kind == topo::node_kind::host ? host_tm(config_.tm)
                                                             : *node_tm},
          false, link.bandwidth_bps, link.propagation_delay, peer.node, peer.port};
      state.ports.push_back(std::move(ep));
    }
  }
}

void network::receive(topo::node_id node, std::size_t in_port,
                      const traffic::packet& pkt) {
  const auto& info = topo_->at(node);
  if (info.kind == topo::node_kind::host) {
    if (pkt.dst_host == node) {
      delivery_record d;
      d.pid = pkt.pid;
      d.flow_id = pkt.flow_id;
      d.src = pkt.src_host;
      d.dst = pkt.dst_host;
      d.send_time = send_times_.at(pkt.pid);
      d.delivery_time = sim_.now();
      result_.deliveries.push_back(d);
    }
    // Packets reaching a foreign host are dropped silently; shortest-path
    // routing never produces them.
    return;
  }
  auto& state = devices_[static_cast<std::size_t>(node)];
  const std::size_t out_port = routes_->egress_port(node, pkt.dst_host, pkt.flow_id);
  auto& port = state.ports[out_port];
  if (!port.tm.enqueue(pkt)) {
    ++result_.drops;
    return;
  }
  state.pending.emplace(pkt.pid, std::make_pair(sim_.now(), in_port));
  if (!port.busy) try_transmit(node, out_port);
}

void network::try_transmit(topo::node_id node, std::size_t port_index) {
  auto& state = devices_[static_cast<std::size_t>(node)];
  auto& port = state.ports[port_index];
  if (port.busy) return;
  auto pkt = port.tm.dequeue();
  if (!pkt) return;
  port.busy = true;
  const double now = sim_.now();

  if (topo_->at(node).kind == topo::node_kind::device) {
    const auto it = state.pending.find(pkt->pid);
    DQN_INVARIANT(it != state.pending.end(),
                  "network: dequeued packet ", pkt->pid,
                  " without pending record at node ", node);
    if (config_.record_hops) {
      hop_record h;
      h.pid = pkt->pid;
      h.flow_id = pkt->flow_id;
      h.device = node;
      h.in_port = it->second.second;
      h.out_port = port_index;
      h.arrival = it->second.first;
      h.departure = now;
      h.size_bytes = pkt->size_bytes;
      h.priority = pkt->priority;
      h.weight = pkt->weight;
      h.protocol = pkt->protocol;
      result_.hops.push_back(h);
    }
    state.pending.erase(it);
  }

  const double tx_time = static_cast<double>(pkt->size_bytes) * 8.0 / port.bandwidth_bps;
  const auto peer = port.peer;
  const auto peer_port = port.peer_port;
  const traffic::packet delivered = *pkt;
  // Line frees after serialization; the packet lands after propagation.
  sim_.schedule_in(tx_time, [this, node, port_index] {
    devices_[static_cast<std::size_t>(node)].ports[port_index].busy = false;
    try_transmit(node, port_index);
  });
  sim_.schedule_in(tx_time + port.propagation_delay,
                   [this, peer, peer_port, delivered] {
                     receive(peer, peer_port, delivered);
                   });
}

run_result network::run(const std::vector<traffic::packet_stream>& host_streams,
                        double horizon) {
  const auto hosts = topo_->hosts();
  DQN_ENSURE(host_streams.size() == hosts.size(),
             "network::run: one stream per host required (got ",
             host_streams.size(), " streams for ", hosts.size(), " hosts)");
  util::stopwatch watch;
  result_ = {};
  send_times_.clear();

  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const topo::node_id host = hosts[i];
    for (const auto& ev : host_streams[i]) {
      if (ev.time > horizon) break;
      send_times_.push_back(ev.pkt.pid, ev.time);
      traffic::packet pkt = ev.pkt;
      // Streams address hosts by index among topo.hosts(); translate both
      // endpoints to topology node ids.
      pkt.src_host = host;
      DQN_ENSURE(pkt.dst_host >= 0 &&
                     static_cast<std::size_t>(pkt.dst_host) < hosts.size(),
                 "network::run: dst_host ", pkt.dst_host, " out of range for ",
                 hosts.size(), " hosts (pid ", pkt.pid, ")");
      pkt.dst_host = hosts[static_cast<std::size_t>(pkt.dst_host)];
      sim_.schedule_at(ev.time, [this, host, pkt] {
        // Host NIC: enqueue on the single uplink port.
        auto& state = devices_[static_cast<std::size_t>(host)];
        if (!state.ports[0].tm.enqueue(pkt)) {
          ++result_.drops;
          return;
        }
        if (!state.ports[0].busy) try_transmit(host, 0);
      });
    }
  }

  // All sends are recorded; sort the table once before the event loop reads
  // it (receive() resolves send times per delivery).
  send_times_.finalize();

  // Drain: generous allowance for queued packets to leave the network.
  {
    // Live event counting through a handle (lock-free per event) instead of
    // a one-shot count at the end; the handle is re-installed per run so a
    // run_request's sink override takes effect.
    sim_.set_event_counter(config_.sink != nullptr
                               ? config_.sink->counter_handle_for("des.events")
                               : obs::counter_handle{});
    obs::scoped_timer timer{config_.sink, "des", "run"};
    sim_.run(horizon * 1.5 + 1.0);
    sim_.set_event_counter({});
  }
  result_.events = sim_.events_processed();
  std::sort(result_.deliveries.begin(), result_.deliveries.end(),
            [](const delivery_record& a, const delivery_record& b) {
              if (a.delivery_time != b.delivery_time)
                return a.delivery_time < b.delivery_time;
              return a.pid < b.pid;
            });
  result_.wall_seconds = watch.elapsed_seconds();
  if (config_.sink != nullptr) {
    obs::sink& sink = *config_.sink;
    sink.count("des.drops", static_cast<double>(result_.drops));
    sink.count("des.deliveries", static_cast<double>(result_.deliveries.size()));
    sink.count("des.hops", static_cast<double>(result_.hops.size()));
    sink.gauge("des.max_heap_depth", static_cast<double>(sim_.max_queue_depth()));
    sink.observe("des.wall_seconds", result_.wall_seconds);
  }
  return std::move(result_);
}

run_result network::run(const run_request& request) {
  DQN_ENSURE(request.host_streams != nullptr,
             "network::run: request.host_streams is null");
  obs::sink* const saved = config_.sink;
  if (request.sink != nullptr) config_.sink = request.sink;
  run_recorder recorder{config_.sink, estimator_name(), "-"};
  try {
    run_result result = run(*request.host_streams, request.horizon);
    recorder.complete(result);
    config_.sink = saved;
    return result;
  } catch (...) {
    config_.sink = saved;
    throw;
  }
}

}  // namespace dqn::des
