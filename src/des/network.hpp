// Packet-level DES of a whole network: hosts inject their ingress streams,
// switches forward per the routing tables and schedule per the configured
// TM, and the run yields delivery and (optionally) per-hop records.
//
// Device semantics (consistent with the DeepQueueNet device model, §3.2.2):
//  * switch sojourn = scheduler waiting time (arrival -> start of tx);
//  * the outgoing link then adds len/C serialization + propagation (Eq. 5).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "des/records.hpp"
#include "des/run_api.hpp"
#include "des/simulator.hpp"
#include "des/traffic_manager.hpp"
#include "topo/graph.hpp"
#include "topo/routing.hpp"
#include "traffic/packet.hpp"
#include "util/keyed_vector.hpp"

namespace dqn::des {

struct network_config {
  tm_config tm;             // applied to every device egress port...
  // ...unless overridden here per node (heterogeneous TM deployments:
  // e.g. WFQ at the aggregation layer, FIFO elsewhere).
  std::map<topo::node_id, tm_config> tm_overrides;
  bool record_hops = true;  // disable for the large scalability runs
  // Optional observability: when non-null the run records event counts, peak
  // heap depth, drops, and wall time (null = no-op, zero overhead).
  obs::sink* sink = nullptr;
};

class network : public estimator {
 public:
  network(const topo::topology& topo, const topo::routing& routes,
          network_config config);

  // host_streams[i] is the ingress stream of topo.hosts()[i]. Packet
  // src_host/dst_host fields in the streams are host *indices* (as produced
  // by traffic::make_uniform_flows); they are translated to topology node
  // ids on injection. Runs the DES until `horizon` plus a drain period.
  [[nodiscard]] run_result run(const std::vector<traffic::packet_stream>& host_streams,
                               double horizon);

  // Unified estimator contract (des/run_api.hpp).
  [[nodiscard]] run_result run(const run_request& request) override;
  [[nodiscard]] const char* estimator_name() const noexcept override {
    return "des";
  }

 private:
  struct egress_port {
    traffic_manager tm;
    bool busy = false;
    double bandwidth_bps = 0;
    double propagation_delay = 0;
    topo::node_id peer = -1;
    std::size_t peer_port = 0;
  };
  struct device_state {
    std::vector<egress_port> ports;
    // pid -> (arrival time, ingress port) while the packet sits in a queue.
    // Lookup-only by contract: entries are found and erased by pid, never
    // traversed, so the unordered container cannot leak iteration order
    // into results (the dqn-unordered-iteration check enforces this).
    std::unordered_map<std::uint64_t, std::pair<double, std::size_t>> pending;
  };

  void receive(topo::node_id node, std::size_t in_port, const traffic::packet& pkt);
  void try_transmit(topo::node_id node, std::size_t port);

  const topo::topology* topo_;
  const topo::routing* routes_;
  network_config config_;
  simulator sim_;
  std::vector<device_state> devices_;  // indexed by node id (hosts included)
  // pid -> send time, feeding the exported delivery records: a sorted keyed
  // vector so the table is deterministic however it is consumed (filled and
  // finalized during injection, read during the event loop).
  util::keyed_vector<std::uint64_t, double> send_times_;
  run_result result_;
};

}  // namespace dqn::des
