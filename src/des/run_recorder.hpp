// RAII run-ledger recorder for the unified run API: every estimator's
// run(run_request) override constructs one against the run's effective sink
// and calls complete(result) on the success path. If the run throws, the
// destructor records the execution with status "error" instead — the ledger
// sees every run_request exactly once, crash or not.
//
// Lives in des (not obs) because it speaks run_result; the ledger itself is
// obs::telemetry::run_ledger, owned unconditionally by the sink, so
// recording works with or without a live telemetry plane.
#pragma once

#include <string>

#include "des/run_api.hpp"
#include "util/stopwatch.hpp"

namespace dqn::obs {
class sink;
}  // namespace dqn::obs

namespace dqn::des {

class run_recorder {
 public:
  // Null sink = every call is a no-op (the repo-wide obs convention).
  // `backend` names the delay backend for DQN runs; pass "-" where the
  // notion does not apply (DES ground truth, baselines).
  run_recorder(obs::sink* s, std::string estimator, std::string backend);
  ~run_recorder();

  run_recorder(const run_recorder&) = delete;
  run_recorder& operator=(const run_recorder&) = delete;

  // Record a successful execution (wall + delivery count from the result).
  void complete(const run_result& result);

 private:
  obs::sink* sink_;
  std::string estimator_;
  std::string backend_;
  double start_seconds_ = 0;
  util::stopwatch watch_;
  bool done_ = false;
};

}  // namespace dqn::des
