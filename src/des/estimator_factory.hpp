// String-keyed estimator construction over the unified run contract
// (run_api.hpp) — the pattern of Sniper's QueueModel::create: callers name a
// backend ("des", "deepqueuenet", "fluid") and get a ready des::estimator,
// so benches, examples, and CLI flags select estimators without per-type
// plumbing.
//
// The factory lives in namespace dqn::des but links *above* core and
// baselines (CMake target dqn_estimators): run_api.hpp defines the contract
// at the bottom of the DAG, this header assembles the implementations at the
// top.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.hpp"
#include "des/network.hpp"
#include "des/run_api.hpp"
#include "topo/graph.hpp"
#include "topo/routing.hpp"
#include "traffic/traffic_gen.hpp"

namespace dqn::des {

// Everything any creatable estimator might bind at construction. Pointers
// are non-owning and must outlive the estimator; only the fields an
// estimator actually uses need to be set (make_estimator rejects a missing
// requirement loudly, naming the field).
struct estimator_context {
  const topo::topology* topo = nullptr;    // all estimators
  const topo::routing* routes = nullptr;   // all estimators
  network_config des;                      // "des": oracle configuration
  // "deepqueuenet": the trained PTM plus engine/scheduler configuration
  // (engine.delay selects the delay backend — see core/delay_provider.hpp).
  std::shared_ptr<const core::ptm_model> ptm;
  core::scheduler_context scheduler;
  core::engine_config engine;
  // "fluid": the traffic matrix is the fluid model's input interface.
  const std::vector<traffic::flow_spec>* flows = nullptr;
  const std::vector<double>* flow_rates_pps = nullptr;
  double mean_packet_size = 0;  // bytes
};

// Construct the estimator named `name`. Creatable names: "des",
// "deepqueuenet" (alias "dqn"), "fluid". "routenet" and "mimicnet" exist in
// the tree but need scenario-specific training, so requesting them throws
// std::invalid_argument pointing at their training entry points; any other
// name throws std::invalid_argument listing the known set.
[[nodiscard]] std::unique_ptr<estimator> make_estimator(
    std::string_view name, const estimator_context& context);

// The names make_estimator can construct, in display order.
[[nodiscard]] std::vector<std::string> estimator_names();

}  // namespace dqn::des
