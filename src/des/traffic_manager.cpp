#include "des/traffic_manager.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dqn::des {

const char* to_string(scheduler_kind kind) noexcept {
  switch (kind) {
    case scheduler_kind::fifo: return "FIFO";
    case scheduler_kind::sp: return "SP";
    case scheduler_kind::wrr: return "WRR";
    case scheduler_kind::drr: return "DRR";
    case scheduler_kind::wfq: return "WFQ";
  }
  return "?";
}

traffic_manager::traffic_manager(tm_config config) : config_{std::move(config)} {
  DQN_ENSURE(config_.classes > 0, "traffic_manager: classes must be >= 1");
  DQN_ENSURE(config_.buffer_packets > 0,
             "traffic_manager: buffer must hold >= 1 packet");
  const bool weighted = config_.kind == scheduler_kind::wrr ||
                        config_.kind == scheduler_kind::drr ||
                        config_.kind == scheduler_kind::wfq;
  if (weighted) {
    DQN_ENSURE(config_.class_weights.size() == config_.classes,
               "traffic_manager: ", to_string(config_.kind), " needs ",
               config_.classes, " weights, got ", config_.class_weights.size());
    for (double w : config_.class_weights)
      DQN_ENSURE(w > 0, "traffic_manager: weights must be > 0, got ", w);
  }
  DQN_ENSURE(config_.kind != scheduler_kind::fifo || config_.classes == 1,
             "traffic_manager: FIFO has exactly one class, got ",
             config_.classes);
  if (config_.kind == scheduler_kind::wfq) {
    wfq_queues_.resize(config_.classes);
    wfq_last_finish_.assign(config_.classes, 0.0);
  } else {
    queues_.resize(config_.classes);
  }
  drr_deficit_.assign(config_.classes, 0.0);
}

std::size_t traffic_manager::class_of(const traffic::packet& pkt) const noexcept {
  if (config_.kind == scheduler_kind::fifo) return 0;
  return std::min<std::size_t>(pkt.priority, config_.classes - 1);
}

bool traffic_manager::enqueue(const traffic::packet& pkt) {
  if (backlog_ >= config_.buffer_packets ||
      (config_.buffer_bytes > 0 &&
       backlog_bytes_ + pkt.size_bytes > config_.buffer_bytes)) {
    ++drops_;
    return false;
  }
  const std::size_t klass = class_of(pkt);
  if (config_.kind == scheduler_kind::wfq) {
    // SCFQ finish tag: F = max(V, F_last[class]) + len / weight.
    const double start = std::max(wfq_virtual_time_, wfq_last_finish_[klass]);
    const double finish =
        start + static_cast<double>(pkt.size_bytes) / config_.class_weights[klass];
    wfq_last_finish_[klass] = finish;
    wfq_queues_[klass].push_back({pkt, finish});
  } else {
    queues_[klass].push_back(pkt);
  }
  ++backlog_;
  backlog_bytes_ += pkt.size_bytes;
  return true;
}

std::optional<traffic::packet> traffic_manager::dequeue() {
  if (backlog_ == 0) return std::nullopt;
  std::optional<traffic::packet> out;
  switch (config_.kind) {
    case scheduler_kind::fifo:
    case scheduler_kind::sp:
      out = dequeue_sp();  // FIFO is 1-class SP
      break;
    case scheduler_kind::wrr:
      out = dequeue_wrr();
      break;
    case scheduler_kind::drr:
      out = dequeue_drr();
      break;
    case scheduler_kind::wfq:
      out = dequeue_wfq();
      break;
  }
  if (out) {
    DQN_INVARIANT(backlog_ > 0 && backlog_bytes_ >= out->size_bytes,
                  "traffic_manager: backlog accounting underflow: backlog=",
                  backlog_, " bytes=", backlog_bytes_, " pkt=", out->size_bytes);
    --backlog_;
    backlog_bytes_ -= out->size_bytes;
  }
  return out;
}

std::optional<traffic::packet> traffic_manager::dequeue_sp() {
  for (auto& queue : queues_) {
    if (!queue.empty()) {
      traffic::packet pkt = queue.front();
      queue.pop_front();
      return pkt;
    }
  }
  return std::nullopt;
}

std::optional<traffic::packet> traffic_manager::dequeue_wrr() {
  // Serve up to round(weight) packets from the cursor class per turn,
  // skipping empty queues (work-conserving).
  for (std::size_t scanned = 0; scanned < 2 * config_.classes; ++scanned) {
    auto& queue = queues_[rr_cursor_];
    const auto quota = static_cast<std::uint32_t>(
        std::max(1.0, config_.class_weights[rr_cursor_]));
    if (!queue.empty() && wrr_served_in_turn_ < quota) {
      traffic::packet pkt = queue.front();
      queue.pop_front();
      ++wrr_served_in_turn_;
      if (queue.empty() || wrr_served_in_turn_ >= quota) {
        rr_cursor_ = (rr_cursor_ + 1) % config_.classes;
        wrr_served_in_turn_ = 0;
      }
      return pkt;
    }
    rr_cursor_ = (rr_cursor_ + 1) % config_.classes;
    wrr_served_in_turn_ = 0;
  }
  return std::nullopt;
}

std::optional<traffic::packet> traffic_manager::dequeue_drr() {
  // Deficit round robin (Shreedhar & Varghese): grant the quantum once per
  // visit to a backlogged queue, serve while the head fits in the deficit,
  // then move on. Without the once-per-visit rule a queue could monopolise
  // the scheduler by re-earning its quantum on every call.
  for (std::size_t scanned = 0; scanned < 2 * config_.classes; ++scanned) {
    auto& queue = queues_[rr_cursor_];
    if (queue.empty()) {
      drr_deficit_[rr_cursor_] = 0;  // idle queues lose their deficit
      drr_granted_ = false;
      rr_cursor_ = (rr_cursor_ + 1) % config_.classes;
      continue;
    }
    if (!drr_granted_) {
      drr_deficit_[rr_cursor_] +=
          config_.class_weights[rr_cursor_] * config_.drr_quantum_bytes;
      drr_granted_ = true;
    }
    if (drr_deficit_[rr_cursor_] >= queue.front().size_bytes) {
      traffic::packet pkt = queue.front();
      queue.pop_front();
      drr_deficit_[rr_cursor_] -= pkt.size_bytes;
      if (queue.empty()) {
        drr_deficit_[rr_cursor_] = 0;
        drr_granted_ = false;
        rr_cursor_ = (rr_cursor_ + 1) % config_.classes;
      }
      return pkt;
    }
    // The head no longer fits: this queue's turn ends, keep the deficit.
    drr_granted_ = false;
    rr_cursor_ = (rr_cursor_ + 1) % config_.classes;
  }
  return std::nullopt;
}

std::optional<traffic::packet> traffic_manager::dequeue_wfq() {
  std::size_t best = config_.classes;
  double best_tag = 0;
  for (std::size_t klass = 0; klass < config_.classes; ++klass) {
    if (wfq_queues_[klass].empty()) continue;
    const double tag = wfq_queues_[klass].front().finish_tag;
    if (best == config_.classes || tag < best_tag) {
      best = klass;
      best_tag = tag;
    }
  }
  if (best == config_.classes) return std::nullopt;
  wfq_entry entry = wfq_queues_[best].front();
  wfq_queues_[best].pop_front();
  // Self-clocked fair queueing: the virtual clock jumps to the finish tag of
  // the packet entering service.
  wfq_virtual_time_ = entry.finish_tag;
  return entry.pkt;
}

std::size_t traffic_manager::queue_length(std::size_t klass) const {
  DQN_CHECK_RANGE(klass, config_.classes);
  if (config_.kind == scheduler_kind::wfq) return wfq_queues_[klass].size();
  return queues_[klass].size();
}

}  // namespace dqn::des
