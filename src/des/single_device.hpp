// Single K-port switch DES harness. This is where PTM training data comes
// from (§5.2): feed K ingress packet streams through one switch with a given
// forwarding map and TM configuration, and record each packet's sojourn
// (scheduler waiting time). It is also the ground truth for Table 2 and the
// DES side of the Appendix B numerical comparison (Figure 14).
#pragma once

#include <functional>
#include <vector>

#include "des/records.hpp"
#include "des/traffic_manager.hpp"
#include "traffic/packet.hpp"

namespace dqn::des {

struct single_switch_config {
  std::size_t ports = 4;  // K
  tm_config tm;
  double bandwidth_bps = 10e9;
  double propagation_delay = 1e-6;
  // Number of uniformly-spaced queue-state samples taken over the horizon
  // when sample_queues is set. Time sampling (not arrival sampling) matches
  // the stationary marginals of the queueing model: PASTA does not hold for
  // correlated MAP arrivals.
  std::size_t queue_sample_count = 20'000;
};

// forward(flow_id, in_port) -> out_port, the paper's Eq. 6.
using forward_fn = std::function<std::size_t(std::uint32_t, std::size_t)>;

// ingress[i] is the packet stream arriving at ingress port i. Returns hop
// records (device id 0) with sojourn = departure - arrival, plus queue-state
// samples if `sample_queues` is set (used by the Appendix B comparison).
struct single_switch_result {
  std::vector<hop_record> hops;
  std::uint64_t drops = 0;
  // Queue state of egress port 0 sampled at uniform times (Figure 14): one
  // entry per class with the waiting count, plus a final entry encoding the
  // in-service packet (0 = idle, k+1 = serving class k), so per-class
  // in-system counts are recoverable.
  std::vector<std::vector<std::size_t>> queue_samples;
};

[[nodiscard]] single_switch_result run_single_switch(
    const single_switch_config& config,
    const std::vector<traffic::packet_stream>& ingress, const forward_fn& forward,
    double horizon, bool sample_queues = false);

}  // namespace dqn::des
