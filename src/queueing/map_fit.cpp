#include "queueing/map_fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dqn::queueing {

iat_statistics compute_iat_statistics(std::span<const double> iats) {
  if (iats.size() < 3)
    throw std::invalid_argument{"compute_iat_statistics: need at least 3 IATs"};
  const auto n = static_cast<double>(iats.size());
  double mean = 0;
  for (double x : iats) mean += x;
  mean /= n;
  double var = 0;
  for (double x : iats) var += (x - mean) * (x - mean);
  var /= n;
  double lag_cov = 0;
  for (std::size_t i = 0; i + 1 < iats.size(); ++i)
    lag_cov += (iats[i] - mean) * (iats[i + 1] - mean);
  lag_cov /= (n - 1);
  iat_statistics stats;
  stats.mean = mean;
  stats.scv = var > 0 && mean > 0 ? var / (mean * mean) : 0;
  stats.lag1 = var > 0 ? lag_cov / var : 0;
  std::vector<double> sorted(iats.begin(), iats.end());
  std::sort(sorted.begin(), sorted.end());
  const auto quantile_index = [&](double q) {
    return static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
  };
  stats.q10 = sorted[quantile_index(0.10)];
  stats.q50 = sorted[quantile_index(0.50)];
  stats.q90 = sorted[quantile_index(0.90)];
  return stats;
}

namespace {

enum class map2_family { mmpp, chain, full };

// MMPP parameter vector: log(sigma1), log(sigma2), log(r1), log(r2).
// Chain parameter vector: log(a), log(b), log(c), logit(q).
// Full MAP(2) vector (all 2M^2 - M = 6 degrees of freedom): log exit rates
// R1, R2, plus two 3-way softmaxes splitting each state's exit rate among
// {phase change, arrival w/o switch, arrival w/ switch}.
map_process decode(map2_family family, std::span<const double> params) {
  if (family == map2_family::mmpp)
    return map_process::mmpp2(std::exp(params[0]), std::exp(params[1]),
                              std::exp(params[2]), std::exp(params[3]));
  if (family == map2_family::chain) {
    const double q = 0.05 + 0.95 / (1.0 + std::exp(-params[3]));
    return map_process::chain2(std::exp(params[0]), std::exp(params[1]),
                               std::exp(params[2]), q);
  }
  const double r1 = std::exp(params[0]);
  const double r2 = std::exp(params[1]);
  auto softmax3 = [](double l1, double l2) {
    const double m = std::max({l1, l2, 0.0});
    const double e1 = std::exp(l1 - m), e2 = std::exp(l2 - m), e3 = std::exp(-m);
    const double total = e1 + e2 + e3;
    return std::array<double, 3>{e1 / total, e2 / total, e3 / total};
  };
  const auto s1 = softmax3(params[2], params[3]);
  const auto s2 = softmax3(params[4], params[5]);
  nn::matrix d0{2, 2};
  nn::matrix d1{2, 2};
  d0(0, 0) = -r1;
  d0(0, 1) = r1 * s1[0];        // phase change 1 -> 2
  d1(0, 0) = r1 * s1[1];        // arrival, stay in 1
  d1(0, 1) = r1 * s1[2];        // arrival, switch to 2
  d0(1, 1) = -r2;
  d0(1, 0) = r2 * s2[0];
  d1(1, 1) = r2 * s2[1];
  d1(1, 0) = r2 * s2[2];
  return map_process{std::move(d0), std::move(d1)};
}

double objective(map2_family family, std::span<const double> params,
                 const iat_statistics& target) {
  // Guard the search domain: rates spanning more than ~12 orders of
  // magnitude produce numerically useless models.
  for (double p : params)
    if (!std::isfinite(p) || p < -30 || p > 30) return 1e9;
  try {
    const map_process candidate = decode(family, params);
    const double mean = candidate.iat_mean();
    const double scv = candidate.iat_scv();
    const double lag1 = candidate.iat_lag1_correlation();
    const double e_mean = (mean - target.mean) / target.mean;
    const double e_scv =
        (scv - target.scv) / std::max(target.scv, 0.1);
    const double e_lag = lag1 - target.lag1;
    double value = e_mean * e_mean + e_scv * e_scv + 4.0 * e_lag * e_lag;
    // CDF-quantile terms: pull the model CDF onto the empirical one.
    if (target.q10 > 0) {
      const double e_q10 = candidate.iat_cdf(target.q10) - 0.10;
      const double e_q50 = candidate.iat_cdf(target.q50) - 0.50;
      const double e_q90 = candidate.iat_cdf(target.q90) - 0.90;
      value += 2.0 * (e_q10 * e_q10 + e_q50 * e_q50 + e_q90 * e_q90);
    }
    return value;
  } catch (const std::exception&) {
    return 1e9;
  }
}

// Minimal Nelder-Mead for the 4-parameter fit.
std::vector<double> nelder_mead(std::vector<std::vector<double>> simplex,
                                map2_family family, const iat_statistics& target,
                                int max_iters) {
  const std::size_t dim = simplex.front().size();
  std::vector<double> values(simplex.size());
  for (std::size_t i = 0; i < simplex.size(); ++i)
    values[i] = objective(family, simplex[i], target);

  for (int iter = 0; iter < max_iters; ++iter) {
    // Order the simplex.
    std::vector<std::size_t> order(simplex.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
    const std::size_t best = order.front(), worst = order.back();
    if (values[best] < 1e-12) break;

    // Centroid of all but the worst.
    std::vector<double> centroid(dim, 0.0);
    for (std::size_t i : order)
      if (i != worst)
        for (std::size_t d = 0; d < dim; ++d) centroid[d] += simplex[i][d];
    for (auto& c : centroid) c /= static_cast<double>(simplex.size() - 1);

    auto blend = [&](double alpha) {
      std::vector<double> p(dim);
      for (std::size_t d = 0; d < dim; ++d)
        p[d] = centroid[d] + alpha * (centroid[d] - simplex[worst][d]);
      return p;
    };

    const auto reflected = blend(1.0);
    const double f_reflected = objective(family, reflected, target);
    if (f_reflected < values[best]) {
      const auto expanded = blend(2.0);
      const double f_expanded = objective(family, expanded, target);
      if (f_expanded < f_reflected) {
        simplex[worst] = expanded;
        values[worst] = f_expanded;
      } else {
        simplex[worst] = reflected;
        values[worst] = f_reflected;
      }
    } else if (f_reflected < values[order[order.size() - 2]]) {
      simplex[worst] = reflected;
      values[worst] = f_reflected;
    } else {
      const auto contracted = blend(-0.5);
      const double f_contracted = objective(family, contracted, target);
      if (f_contracted < values[worst]) {
        simplex[worst] = contracted;
        values[worst] = f_contracted;
      } else {
        // Shrink towards the best vertex.
        for (std::size_t i : order) {
          if (i == best) continue;
          for (std::size_t d = 0; d < dim; ++d)
            simplex[i][d] = simplex[best][d] + 0.5 * (simplex[i][d] - simplex[best][d]);
          values[i] = objective(family, simplex[i], target);
        }
      }
    }
  }
  const auto best_it = std::min_element(values.begin(), values.end());
  return simplex[static_cast<std::size_t>(best_it - values.begin())];
}

}  // namespace

map_fit_result fit_mmpp2(std::span<const double> iats, std::uint64_t seed) {
  const iat_statistics target = compute_iat_statistics(iats);
  util::rng rng{seed};
  const double base_rate = 1.0 / target.mean;

  std::vector<double> best_params;
  map2_family best_family = map2_family::mmpp;
  double best_value = 1e18;
  auto polish = [&](map2_family family, std::vector<double> x0) {
    std::vector<std::vector<double>> simplex{x0};
    for (std::size_t d = 0; d < x0.size(); ++d) {
      auto v = x0;
      v[d] += 0.7;
      simplex.push_back(v);
    }
    const auto polished = nelder_mead(std::move(simplex), family, target, 400);
    const double value = objective(family, polished, target);
    if (value < best_value) {
      best_value = value;
      best_params = polished;
      best_family = family;
    }
  };

  // Multi-start over both MAP(2) families: MMPP covers bursty traffic
  // (SCV >= 1), the Markov-switched chain covers smooth/quasi-periodic
  // traffic (SCV < 1). Nelder-Mead polishes each start.
  for (int start = 0; start < 6; ++start) {
    const double burst = std::exp(rng.uniform(0.5, 3.0));     // r1/r2 ratio
    const double switching = std::exp(rng.uniform(-4.0, 0.0)); // sigma vs rate
    polish(map2_family::mmpp,
           {std::log(base_rate * switching), std::log(base_rate * switching * 0.5),
            std::log(base_rate * burst), std::log(base_rate / burst)});
  }
  for (int start = 0; start < 6; ++start) {
    const double spread = std::exp(rng.uniform(-0.5, 1.5));
    polish(map2_family::chain,
           {std::log(base_rate * rng.uniform(0.05, 0.8)),
            std::log(2 * base_rate * spread), std::log(2 * base_rate / spread),
            rng.uniform(-2.0, 4.0)});
  }
  for (int start = 0; start < 8; ++start) {
    polish(map2_family::full,
           {std::log(base_rate * std::exp(rng.uniform(-1.5, 2.5))),
            std::log(base_rate * std::exp(rng.uniform(-1.5, 2.5))),
            rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0),
            rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)});
  }
  if (best_params.empty()) throw std::runtime_error{"fit_mmpp2: all starts failed"};

  map_process fitted = decode(best_family, best_params);
  map_fit_result result{std::move(fitted), target, {}, best_value};
  result.achieved.mean = result.fitted.iat_mean();
  result.achieved.scv = result.fitted.iat_scv();
  result.achieved.lag1 = result.fitted.iat_lag1_correlation();
  return result;
}

namespace {

// MAP(4) = superposition of two full MAP(2)s: 12 parameters (6 each).
map_process decode_map4(std::span<const double> params) {
  return map_process::superpose(decode(map2_family::full, params.subspan(0, 6)),
                                decode(map2_family::full, params.subspan(6, 6)));
}

double objective_map4(std::span<const double> params, const iat_statistics& target) {
  for (double p : params)
    if (!std::isfinite(p) || p < -30 || p > 30) return 1e9;
  try {
    const map_process candidate = decode_map4(params);
    iat_statistics achieved;
    achieved.mean = candidate.iat_mean();
    achieved.scv = candidate.iat_scv();
    achieved.lag1 = candidate.iat_lag1_correlation();
    const double e_mean = (achieved.mean - target.mean) / target.mean;
    const double e_scv =
        (achieved.scv - target.scv) / std::max(target.scv, 0.1);
    const double e_lag = achieved.lag1 - target.lag1;
    double value = e_mean * e_mean + e_scv * e_scv + 4.0 * e_lag * e_lag;
    if (target.q10 > 0) {
      const double e_q10 = candidate.iat_cdf(target.q10) - 0.10;
      const double e_q50 = candidate.iat_cdf(target.q50) - 0.50;
      const double e_q90 = candidate.iat_cdf(target.q90) - 0.90;
      value += 2.0 * (e_q10 * e_q10 + e_q50 * e_q50 + e_q90 * e_q90);
    }
    return value;
  } catch (const std::exception&) {
    return 1e9;
  }
}

std::vector<double> nelder_mead_map4(std::vector<std::vector<double>> simplex,
                                     const iat_statistics& target, int max_iters) {
  // Same Nelder-Mead as the MAP(2) fit, over the 12-parameter objective.
  const std::size_t dim = simplex.front().size();
  std::vector<double> values(simplex.size());
  for (std::size_t i = 0; i < simplex.size(); ++i)
    values[i] = objective_map4(simplex[i], target);
  for (int iter = 0; iter < max_iters; ++iter) {
    std::vector<std::size_t> order(simplex.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
    const std::size_t best = order.front(), worst = order.back();
    if (values[best] < 1e-12) break;
    std::vector<double> centroid(dim, 0.0);
    for (std::size_t i : order)
      if (i != worst)
        for (std::size_t d = 0; d < dim; ++d) centroid[d] += simplex[i][d];
    for (auto& c : centroid) c /= static_cast<double>(simplex.size() - 1);
    auto blend = [&](double alpha) {
      std::vector<double> p(dim);
      for (std::size_t d = 0; d < dim; ++d)
        p[d] = centroid[d] + alpha * (centroid[d] - simplex[worst][d]);
      return p;
    };
    const auto reflected = blend(1.0);
    const double f_reflected = objective_map4(reflected, target);
    if (f_reflected < values[best]) {
      const auto expanded = blend(2.0);
      const double f_expanded = objective_map4(expanded, target);
      if (f_expanded < f_reflected) {
        simplex[worst] = expanded;
        values[worst] = f_expanded;
      } else {
        simplex[worst] = reflected;
        values[worst] = f_reflected;
      }
    } else if (f_reflected < values[order[order.size() - 2]]) {
      simplex[worst] = reflected;
      values[worst] = f_reflected;
    } else {
      const auto contracted = blend(-0.5);
      const double f_contracted = objective_map4(contracted, target);
      if (f_contracted < values[worst]) {
        simplex[worst] = contracted;
        values[worst] = f_contracted;
      } else {
        for (std::size_t i : order) {
          if (i == best) continue;
          for (std::size_t d = 0; d < dim; ++d)
            simplex[i][d] =
                simplex[best][d] + 0.5 * (simplex[i][d] - simplex[best][d]);
          values[i] = objective_map4(simplex[i], target);
        }
      }
    }
  }
  const auto best_it = std::min_element(values.begin(), values.end());
  return simplex[static_cast<std::size_t>(best_it - values.begin())];
}

}  // namespace

map_fit_result fit_map4(std::span<const double> iats, std::uint64_t seed) {
  // Warm start from the best MAP(2): superpose a slowed copy of it with a
  // second component that carries the other half of the rate, then polish
  // all 12 parameters jointly.
  const iat_statistics target = compute_iat_statistics(iats);
  util::rng rng{util::derive_seed(seed, 4)};
  const double base_rate = 1.0 / target.mean;

  std::vector<double> best_params;
  double best_value = 1e18;
  for (int start = 0; start < 8; ++start) {
    std::vector<double> x0;
    for (int component = 0; component < 2; ++component) {
      // Each component carries roughly half the rate.
      x0.push_back(std::log(0.5 * base_rate * std::exp(rng.uniform(-1.5, 2.5))));
      x0.push_back(std::log(0.5 * base_rate * std::exp(rng.uniform(-1.5, 2.5))));
      for (int l = 0; l < 4; ++l) x0.push_back(rng.uniform(-2.0, 2.0));
    }
    std::vector<std::vector<double>> simplex{x0};
    for (std::size_t d = 0; d < x0.size(); ++d) {
      auto v = x0;
      v[d] += 0.7;
      simplex.push_back(v);
    }
    const auto polished = nelder_mead_map4(std::move(simplex), target, 600);
    const double value = objective_map4(polished, target);
    if (value < best_value) {
      best_value = value;
      best_params = polished;
    }
  }
  if (best_params.empty()) throw std::runtime_error{"fit_map4: all starts failed"};
  map_process fitted = decode_map4(best_params);
  map_fit_result result{std::move(fitted), target, {}, best_value};
  result.achieved.mean = result.fitted.iat_mean();
  result.achieved.scv = result.fitted.iat_scv();
  result.achieved.lag1 = result.fitted.iat_lag1_correlation();
  return result;
}

}  // namespace dqn::queueing
