// State-aware queueing model of multi-queue packet schedulers (Appendix B).
//
// A K-class scheduler fed by a MAP-modulated aggregate flow is reformulated
// as a level-dependent quasi-birth-death (LDQBD) process whose level is the
// total queue length l = n·1. We build the block-tridiagonal generator
// exactly as Appendix B.2 specifies and solve the stationary distribution of
// the level-truncated chain by backward block reduction. The per-class
// queue-length marginals reproduce Figure 14; the exponential growth of the
// state space (d_l = M·C(l+K-1, K-1)) reproduces Figure 15.
#pragma once

#include <cstdint>
#include <vector>

#include "queueing/markovian_arrival.hpp"

namespace dqn::queueing {

enum class scheduler_discipline : std::uint8_t { wfq, sp };

struct scheduler_model_config {
  std::vector<double> class_probs;  // p_k, must sum to 1
  double service_rate = 0;          // mu, packets per second
  scheduler_discipline discipline = scheduler_discipline::wfq;
  std::vector<double> weights;      // alpha_k for WFQ (ignored for SP)
  std::size_t truncation_level = 20;
};

class ldqbd_scheduler_model {
 public:
  ldqbd_scheduler_model(map_process arrivals, scheduler_model_config config);

  // Solve the stationary distribution (expensive; deliberately so — this is
  // the cost DeepQueueNet's PTM replaces). Must be called before queries.
  void solve();

  [[nodiscard]] bool solved() const noexcept { return !phi_.empty(); }

  // P(total queue length == l) for l in [0, truncation_level].
  [[nodiscard]] std::vector<double> level_distribution() const;

  // P(queue length of class k == q).
  [[nodiscard]] std::vector<double> class_queue_length_distribution(
      std::size_t class_index) const;

  [[nodiscard]] double mean_queue_length(std::size_t class_index) const;

  // Mean sojourn of class k via Little's law (lambda_k = p_k * lambda).
  [[nodiscard]] double mean_sojourn(std::size_t class_index) const;

  // Total number of CTMC states in the truncated model (Figure 15's cost).
  [[nodiscard]] std::size_t state_count() const;

  [[nodiscard]] std::size_t classes() const noexcept { return config_.class_probs.size(); }

  // Actual service rate allocated to class k in queue state n (Appendix
  // B.1.2). Exposed for tests.
  [[nodiscard]] double service_share(std::span<const std::size_t> n,
                                     std::size_t class_index) const;

 private:
  // All compositions of `level` into `classes()` parts, descending
  // lexicographic order (the paper's "level-ascending-state-descending").
  [[nodiscard]] std::vector<std::vector<std::size_t>> compositions(
      std::size_t level) const;

  [[nodiscard]] matrix build_block(std::size_t from_level, std::size_t to_level) const;

  map_process arrivals_;
  scheduler_model_config config_;
  std::vector<std::vector<std::vector<std::size_t>>> comps_;  // per level
  std::vector<std::vector<double>> phi_;  // stationary vector per level
};

}  // namespace dqn::queueing
