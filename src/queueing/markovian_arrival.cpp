#include "queueing/markovian_arrival.hpp"

#include <cmath>
#include <stdexcept>

namespace dqn::queueing {

namespace {

double dot_ones(std::span<const double> v) {
  double acc = 0;
  for (double x : v) acc += x;
  return acc;
}

}  // namespace

map_process::map_process(matrix d0, matrix d1) : d0_{std::move(d0)}, d1_{std::move(d1)} {
  const std::size_t m = d0_.rows();
  if (m == 0 || d0_.cols() != m || d1_.rows() != m || d1_.cols() != m)
    throw std::invalid_argument{"map_process: D0/D1 must be square and same size"};
  constexpr double tol = 1e-9;
  for (std::size_t i = 0; i < m; ++i) {
    double row_sum = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (i != j && d0_(i, j) < -tol)
        throw std::invalid_argument{"map_process: off-diagonal D0 must be >= 0"};
      if (d1_(i, j) < -tol)
        throw std::invalid_argument{"map_process: D1 must be non-negative"};
      row_sum += d0_(i, j) + d1_(i, j);
    }
    if (d0_(i, i) >= 0)
      throw std::invalid_argument{"map_process: diagonal of D0 must be negative"};
    if (std::abs(row_sum) > tol * std::max(1.0, std::abs(d0_(i, i))))
      throw std::invalid_argument{"map_process: rows of D0 + D1 must sum to zero"};
  }
}

std::vector<double> map_process::stationary() const {
  matrix q = d0_;
  nn::add_inplace(q, d1_);
  return ctmc_stationary(q);
}

std::vector<double> map_process::embedded_stationary() const {
  // pi_a = pi D1 / lambda is the stationary vector of P = (-D0)^{-1} D1.
  const auto pi = stationary();
  const std::size_t m = states();
  std::vector<double> pia(m, 0.0);
  double lambda = 0;
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < m; ++i) pia[j] += pi[i] * d1_(i, j);
    lambda += pia[j];
  }
  for (auto& x : pia) x /= lambda;
  return pia;
}

double map_process::mean_rate() const {
  const auto pi = stationary();
  double lambda = 0;
  for (std::size_t i = 0; i < states(); ++i)
    for (std::size_t j = 0; j < states(); ++j) lambda += pi[i] * d1_(i, j);
  return lambda;
}

double map_process::iat_moment(int k) const {
  if (k < 1) throw std::invalid_argument{"iat_moment: k must be >= 1"};
  const auto pia = embedded_stationary();
  const std::size_t m = states();
  matrix neg_d0 = d0_;
  for (auto& x : neg_d0.data()) x = -x;
  const matrix inv = inverse(neg_d0);
  // v = pi_a (-D0)^{-k}
  std::vector<double> v = pia;
  double factorial = 1;
  for (int step = 1; step <= k; ++step) {
    factorial *= step;
    std::vector<double> next(m, 0.0);
    for (std::size_t j = 0; j < m; ++j)
      for (std::size_t i = 0; i < m; ++i) next[j] += v[i] * inv(i, j);
    v = std::move(next);
  }
  return factorial * dot_ones(v);
}

double map_process::iat_scv() const {
  const double m1 = iat_moment(1);
  const double m2 = iat_moment(2);
  return (m2 - m1 * m1) / (m1 * m1);
}

double map_process::iat_lag1_correlation() const {
  // E[X0 X1] = pi_a (-D0)^{-1} P (-D0)^{-1} 1 with P = (-D0)^{-1} D1.
  const auto pia = embedded_stationary();
  const std::size_t m = states();
  matrix neg_d0 = d0_;
  for (auto& x : neg_d0.data()) x = -x;
  const matrix inv = inverse(neg_d0);
  const matrix p = nn::matmul(inv, d1_);
  const matrix mid = nn::matmul(nn::matmul(inv, p), inv);
  double joint = 0;
  for (std::size_t i = 0; i < m; ++i) {
    double row = 0;
    for (std::size_t j = 0; j < m; ++j) row += mid(i, j);
    joint += pia[i] * row;
  }
  const double m1 = iat_moment(1);
  const double m2 = iat_moment(2);
  const double var = m2 - m1 * m1;
  if (var <= 0) return 0;
  return (joint - m1 * m1) / var;
}

double map_process::iat_cdf(double t) const {
  if (t < 0) return 0;
  const auto pia = embedded_stationary();
  matrix d0t = d0_;
  for (auto& x : d0t.data()) x *= t;
  const matrix e = expm(d0t);
  double survival = 0;
  for (std::size_t i = 0; i < states(); ++i) {
    double row = 0;
    for (std::size_t j = 0; j < states(); ++j) row += e(i, j);
    survival += pia[i] * row;
  }
  return 1.0 - survival;
}

map_process map_process::scaled(double factor) const {
  if (factor <= 0) throw std::invalid_argument{"map_process::scaled: factor must be > 0"};
  matrix d0 = d0_;
  matrix d1 = d1_;
  for (auto& x : d0.data()) x *= factor;
  for (auto& x : d1.data()) x *= factor;
  return map_process{std::move(d0), std::move(d1)};
}

map_process map_process::thinned(double p) const {
  if (p <= 0 || p > 1)
    throw std::invalid_argument{"map_process::thinned: p must be in (0, 1]"};
  matrix d0 = d0_;
  matrix d1 = d1_;
  for (std::size_t i = 0; i < d1.size(); ++i) {
    d0.data()[i] += (1 - p) * d1.data()[i];
    d1.data()[i] *= p;
  }
  return map_process{std::move(d0), std::move(d1)};
}

double map_process::sample_iat(std::size_t& state, util::rng& rng) const {
  const std::size_t m = states();
  if (state >= m) throw std::invalid_argument{"sample_iat: bad state"};
  double elapsed = 0;
  for (;;) {
    const double exit_rate = -d0_(state, state);
    elapsed += rng.exponential(exit_rate);
    // Choose the transition proportionally to its rate.
    double u = rng.uniform() * exit_rate;
    for (std::size_t j = 0; j < m; ++j) {
      if (j != state) {
        u -= d0_(state, j);
        if (u < 0) {
          state = j;
          goto no_arrival;
        }
      }
    }
    for (std::size_t j = 0; j < m; ++j) {
      u -= d1_(state, j);
      if (u < 0) {
        state = j;
        return elapsed;
      }
    }
    // Rounding fell off the end: treat as an arrival staying in state.
    return elapsed;
  no_arrival:;
  }
}

std::size_t map_process::sample_initial_state(util::rng& rng) const {
  const auto pia = embedded_stationary();
  return rng.discrete(pia);
}

map_process map_process::poisson(double lambda) {
  if (lambda <= 0) throw std::invalid_argument{"map_process::poisson: lambda > 0"};
  matrix d0{1, 1};
  matrix d1{1, 1};
  d0(0, 0) = -lambda;
  d1(0, 0) = lambda;
  return map_process{std::move(d0), std::move(d1)};
}

map_process map_process::mmpp2(double sigma1, double sigma2, double r1, double r2) {
  if (sigma1 <= 0 || sigma2 <= 0 || r1 < 0 || r2 < 0 || (r1 == 0 && r2 == 0))
    throw std::invalid_argument{"map_process::mmpp2: invalid parameters"};
  matrix d0{2, 2};
  matrix d1{2, 2};
  d0(0, 0) = -(sigma1 + r1);
  d0(0, 1) = sigma1;
  d0(1, 0) = sigma2;
  d0(1, 1) = -(sigma2 + r2);
  d1(0, 0) = r1;
  d1(1, 1) = r2;
  return map_process{std::move(d0), std::move(d1)};
}

map_process map_process::chain2(double a, double b, double c, double q) {
  if (a < 0 || b <= 0 || c <= 0 || q < 0 || q > 1)
    throw std::invalid_argument{"map_process::chain2: invalid parameters"};
  matrix d0{2, 2};
  matrix d1{2, 2};
  d0(0, 0) = -(a + b);
  d0(0, 1) = b;
  d0(1, 0) = 0;
  d0(1, 1) = -c;
  d1(0, 0) = a;
  d1(0, 1) = 0;
  d1(1, 0) = q * c;
  d1(1, 1) = (1 - q) * c;
  return map_process{std::move(d0), std::move(d1)};
}

map_process map_process::superpose(const map_process& a, const map_process& b) {
  const auto ia = identity(a.states());
  const auto ib = identity(b.states());
  matrix d0 = kron(a.d0(), ib);
  nn::add_inplace(d0, kron(ia, b.d0()));
  matrix d1 = kron(a.d1(), ib);
  nn::add_inplace(d1, kron(ia, b.d1()));
  return map_process{std::move(d0), std::move(d1)};
}

map_process map_process::paper_example() {
  matrix d0{2, 2};
  matrix d1{2, 2};
  d0(0, 0) = -12000; d0(0, 1) = 0;
  d0(1, 0) = 0;      d0(1, 1) = -3000;
  d1(0, 0) = 3600;   d1(0, 1) = 8400;
  d1(1, 0) = 2100;   d1(1, 1) = 900;
  return map_process{std::move(d0), std::move(d1)};
}

}  // namespace dqn::queueing
