// Closed-form sojourn/wait estimates over the queueing substrate: the
// adapter surface core::analytical_delay_provider consumes (delay_provider
// API, ROADMAP "tiered estimation"). Two tiers of fidelity:
//
//  * M/M/1 formulas — the textbook fast path for a single FIFO station fed
//    at rate lambda and drained at rate mu;
//  * stationary per-class means read off a solved ldqbd_scheduler_model —
//    the Appendix B machinery, valid for MAP arrivals and WFQ/SP schedulers.
//
// All rates are packets per second; all returned times are seconds. A
// station at or above capacity has infinite stationary wait — callers decide
// what "infinite" means for them (the tiered policy promotes such devices to
// the PTM long before this point).
#pragma once

#include <vector>

#include "queueing/ldqbd.hpp"

namespace dqn::queueing {

// Stationary M/M/1 mean waiting time (arrival -> start of service):
// W_q = rho / (mu - lambda). Infinity when lambda >= mu.
[[nodiscard]] double mm1_mean_wait(double lambda, double mu);

// Stationary M/M/1 mean sojourn (arrival -> departure): 1 / (mu - lambda).
// Infinity when lambda >= mu.
[[nodiscard]] double mm1_mean_sojourn(double lambda, double mu);

// Per-class stationary mean sojourns (time in system) of a solved LDQBD
// scheduler model, via Little's law. model.solve() must have been called.
[[nodiscard]] std::vector<double> stationary_mean_sojourns(
    const ldqbd_scheduler_model& model);

// Per-class stationary mean *waits* (sojourn minus one mean service time
// 1/service_rate, floored at zero) — the quantity the PTM regresses, so the
// analytical and learned backends are directly comparable.
[[nodiscard]] std::vector<double> stationary_mean_waits(
    const ldqbd_scheduler_model& model, double service_rate);

}  // namespace dqn::queueing
