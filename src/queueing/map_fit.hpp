// Fitting a MAP to observed inter-arrival times (Appendix A.1). We implement
// a moment-matching fit of a 2-state MMPP: mean, squared coefficient of
// variation, and lag-1 autocorrelation of the sample are matched by a
// Nelder-Mead search over the four MMPP parameters in log space. This is the
// "moderate dimension" regime the paper recommends (Figure 12): accurate
// enough to capture burstiness, cheap enough to avoid overfitting.
#pragma once

#include <span>
#include <vector>

#include "queueing/markovian_arrival.hpp"
#include "util/rng.hpp"

namespace dqn::queueing {

struct iat_statistics {
  double mean = 0;
  double scv = 0;   // squared coefficient of variation
  double lag1 = 0;  // lag-1 autocorrelation
  // Sample quantiles (10/50/90%), used by the fit objective so the model CDF
  // tracks the empirical CDF (Figure 12), not just the moments. Zero when
  // unavailable.
  double q10 = 0;
  double q50 = 0;
  double q90 = 0;
};

[[nodiscard]] iat_statistics compute_iat_statistics(std::span<const double> iats);

struct map_fit_result {
  map_process fitted;
  iat_statistics target;   // sample statistics
  iat_statistics achieved; // fitted model's analytic statistics
  double objective = 0;    // final weighted moment error
};

// Fit a MAP(2) to the sample, searching three 2-state families (MMPP,
// Markov-switched hypoexponential chain, and the full 6-parameter MAP(2)).
// Deterministic given `seed` (used for the multi-start initialisation).
[[nodiscard]] map_fit_result fit_mmpp2(std::span<const double> iats,
                                       std::uint64_t seed = 1);

// Fit a MAP(4) built as the superposition of two MAP(2)s (Kronecker sums) —
// the "higher dimensional MAP improves the fitting accuracy" step of
// Appendix A.1. Strictly contains the MAP(2) families above, so the fit is
// never worse than fit_mmpp2's on the same objective.
[[nodiscard]] map_fit_result fit_map4(std::span<const double> iats,
                                      std::uint64_t seed = 1);

}  // namespace dqn::queueing
