// Dense linear algebra for the queueing-theoretic substrate: LU solves,
// inversion, and the matrix exponential (scaling-and-squaring Padé), over the
// same dense matrix type the nn substrate uses. CTMC generators here are
// small (MAP state spaces of 2-8), so dense direct methods are exact and fast.
#pragma once

#include <span>
#include <vector>

#include "nn/matrix.hpp"

namespace dqn::queueing {

using nn::matrix;

// Solve a x = b for x (a square, b a column-stacked matrix). Partial-pivot LU.
[[nodiscard]] matrix solve(const matrix& a, const matrix& b);

// Solve x a = b for a row vector x (i.e. aᵀ xᵀ = bᵀ).
[[nodiscard]] std::vector<double> solve_left(const matrix& a,
                                             std::span<const double> b);

[[nodiscard]] matrix inverse(const matrix& a);

[[nodiscard]] matrix identity(std::size_t n);

// e^{a} via scaling-and-squaring with a degree-6 Padé approximant.
[[nodiscard]] matrix expm(const matrix& a);

// Kronecker product a (x) b.
[[nodiscard]] matrix kron(const matrix& a, const matrix& b);

// Stationary row vector of a CTMC generator q (row sums zero): solves
// pi q = 0, pi 1 = 1 by replacing one equation with the normalisation.
[[nodiscard]] std::vector<double> ctmc_stationary(const matrix& q);

// Stationary row vector of a DTMC transition matrix p: pi p = pi, pi 1 = 1.
[[nodiscard]] std::vector<double> dtmc_stationary(const matrix& p);

}  // namespace dqn::queueing
