#include "queueing/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace dqn::queueing {

namespace {

// In-place partial-pivot LU; returns permutation, throws on singularity.
std::vector<std::size_t> lu_decompose(matrix& a) {
  const std::size_t n = a.rows();
  if (a.cols() != n) throw std::invalid_argument{"lu: matrix must be square"};
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > best) {
        best = std::abs(a(r, col));
        pivot = r;
      }
    }
    if (best < 1e-300) throw std::runtime_error{"lu: singular matrix"};
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(perm[col], perm[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      a(r, col) /= a(col, col);
      const double factor = a(r, col);
      for (std::size_t c = col + 1; c < n; ++c) a(r, c) -= factor * a(col, c);
    }
  }
  return perm;
}

void lu_solve_inplace(const matrix& lu, const std::vector<std::size_t>& perm,
                      std::span<const double> b, std::span<double> x) {
  const std::size_t n = lu.rows();
  // Forward substitution with permutation.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu(i, j) * x[j];
    x[i] = acc;
  }
  // Backward substitution.
  for (std::size_t i = n; i-- > 0;) {
    double acc = x[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= lu(i, j) * x[j];
    x[i] = acc / lu(i, i);
  }
}

}  // namespace

matrix solve(const matrix& a, const matrix& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument{"solve: shape mismatch"};
  matrix lu = a;
  const auto perm = lu_decompose(lu);
  const std::size_t n = a.rows();
  matrix x{n, b.cols()};
  std::vector<double> col(n), out(n);
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < n; ++r) col[r] = b(r, c);
    lu_solve_inplace(lu, perm, col, out);
    for (std::size_t r = 0; r < n; ++r) x(r, c) = out[r];
  }
  return x;
}

std::vector<double> solve_left(const matrix& a, std::span<const double> b) {
  matrix at = nn::transpose(a);
  matrix rhs{b.size(), 1};
  for (std::size_t i = 0; i < b.size(); ++i) rhs(i, 0) = b[i];
  matrix x = solve(at, rhs);
  std::vector<double> out(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) out[i] = x(i, 0);
  return out;
}

matrix identity(std::size_t n) {
  matrix m{n, n};
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1;
  return m;
}

matrix inverse(const matrix& a) { return solve(a, identity(a.rows())); }

matrix expm(const matrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument{"expm: matrix must be square"};
  // Scale so the infinity norm is below 0.5, apply Padé(6,6), square back.
  double norm = 0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double row_sum = 0;
    for (std::size_t c = 0; c < a.cols(); ++c) row_sum += std::abs(a(r, c));
    norm = std::max(norm, row_sum);
  }
  int squarings = 0;
  while (norm > 0.5) {
    norm /= 2;
    ++squarings;
  }
  matrix scaled = a;
  const double factor = std::ldexp(1.0, -squarings);
  for (auto& x : scaled.data()) x *= factor;

  // Padé(6,6): N = sum c_k A^k, D = sum (-1)^k c_k A^k.
  constexpr double coeffs[] = {1.0,        1.0 / 2,      5.0 / 44,    1.0 / 66,
                               1.0 / 792,  1.0 / 15840,  1.0 / 665280};
  const std::size_t n = a.rows();
  matrix power = identity(n);
  matrix num = identity(n);
  matrix den = identity(n);
  for (int k = 1; k <= 6; ++k) {
    power = nn::matmul(power, scaled);
    for (std::size_t i = 0; i < power.size(); ++i) {
      num.data()[i] += coeffs[k] * power.data()[i];
      den.data()[i] += (k % 2 == 0 ? coeffs[k] : -coeffs[k]) * power.data()[i];
    }
  }
  matrix result = solve(den, num);
  for (int s = 0; s < squarings; ++s) result = nn::matmul(result, result);
  return result;
}

matrix kron(const matrix& a, const matrix& b) {
  matrix out{a.rows() * b.rows(), a.cols() * b.cols()};
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double aij = a(i, j);
      if (aij == 0.0) continue;
      for (std::size_t k = 0; k < b.rows(); ++k)
        for (std::size_t l = 0; l < b.cols(); ++l)
          out(i * b.rows() + k, j * b.cols() + l) = aij * b(k, l);
    }
  return out;
}

std::vector<double> ctmc_stationary(const matrix& q) {
  const std::size_t n = q.rows();
  if (q.cols() != n) throw std::invalid_argument{"ctmc_stationary: square required"};
  // pi q = 0 with the last column replaced by the normalisation pi 1 = 1:
  // solve qᵀ' piᵀ = e_n.
  matrix a = nn::transpose(q);
  for (std::size_t c = 0; c < n; ++c) a(n - 1, c) = 1.0;
  matrix b{n, 1};
  b(n - 1, 0) = 1.0;
  matrix x = solve(a, b);
  std::vector<double> pi(n);
  for (std::size_t i = 0; i < n; ++i) pi[i] = x(i, 0);
  return pi;
}

std::vector<double> dtmc_stationary(const matrix& p) {
  const std::size_t n = p.rows();
  if (p.cols() != n) throw std::invalid_argument{"dtmc_stationary: square required"};
  // pi (p - I) = 0, pi 1 = 1.
  matrix q = p;
  for (std::size_t i = 0; i < n; ++i) q(i, i) -= 1.0;
  return ctmc_stationary(q);
}

}  // namespace dqn::queueing
