// Markovian arrival process (MAP): the paper's workhorse traffic model
// (Appendix A). A MAP is a CTMC with rate matrices D0 (no arrival) and D1
// (one arrival); the generator is D0 + D1. This class provides validation,
// stationary analysis, analytic IAT moments/CDF, load scaling, per-class
// thinning (Appendix B.1.1), and exact simulation.
#pragma once

#include <cstddef>
#include <vector>

#include "queueing/linalg.hpp"
#include "util/rng.hpp"

namespace dqn::queueing {

class map_process {
 public:
  // Throws if the pair is not a valid MAP (shape, signs, or row sums).
  map_process(matrix d0, matrix d1);

  [[nodiscard]] const matrix& d0() const noexcept { return d0_; }
  [[nodiscard]] const matrix& d1() const noexcept { return d1_; }
  [[nodiscard]] std::size_t states() const noexcept { return d0_.rows(); }

  // Stationary vector pi of the CTMC: pi (D0 + D1) = 0.
  [[nodiscard]] std::vector<double> stationary() const;

  // Stationary vector pi_a of the chain embedded at arrival epochs:
  // pi_a (-D0)^{-1} D1 = pi_a (Appendix A.1).
  [[nodiscard]] std::vector<double> embedded_stationary() const;

  // Mean arrival rate lambda = pi D1 1.
  [[nodiscard]] double mean_rate() const;

  // k-th raw moment of the stationary inter-arrival time:
  // E[X^k] = k! * pi_a (-D0)^{-k} 1.
  [[nodiscard]] double iat_moment(int k) const;

  [[nodiscard]] double iat_mean() const { return iat_moment(1); }
  // Squared coefficient of variation of the IAT.
  [[nodiscard]] double iat_scv() const;
  // Lag-1 autocorrelation of consecutive IATs.
  [[nodiscard]] double iat_lag1_correlation() const;

  // CDF of the stationary IAT: F(t) = 1 - pi_a e^{D0 t} 1 (Appendix A.1).
  [[nodiscard]] double iat_cdf(double t) const;

  // Return a copy with all rates multiplied by `factor` (rescales lambda
  // while preserving the correlation structure — used to hit target loads).
  [[nodiscard]] map_process scaled(double factor) const;

  // Class-k thinning with probability p (Appendix B.1.1):
  // D0' = D0 + (1-p) D1, D1' = p D1.
  [[nodiscard]] map_process thinned(double p) const;

  // Exact simulation: draw the next inter-arrival time, advancing `state`.
  [[nodiscard]] double sample_iat(std::size_t& state, util::rng& rng) const;

  // Draw the initial state from the embedded stationary distribution.
  [[nodiscard]] std::size_t sample_initial_state(util::rng& rng) const;

  // --- Canned constructors -------------------------------------------------

  // Poisson process as a 1-state MAP.
  [[nodiscard]] static map_process poisson(double lambda);

  // 2-state MMPP: state i emits at rate r_i, switches away at rate sigma_i.
  // Covers bursty traffic (IAT SCV >= 1, positive correlation).
  [[nodiscard]] static map_process mmpp2(double sigma1, double sigma2, double r1,
                                         double r2);

  // 2-phase Markov-switched chain:
  //   D0 = [[-(a+b), b], [0, -c]],  D1 = [[a, 0], [q*c, (1-q)*c]]
  // With a = 0, q = 1 this is the hypoexponential renewal process
  // (SCV in [1/2, 1)); intermediate parameters interpolate towards Poisson.
  // Complements mmpp2 for smooth / quasi-periodic traffic with sub-Poisson
  // variability (e.g. gaming uplinks).
  [[nodiscard]] static map_process chain2(double a, double b, double c, double q);

  // The MAP(2) of the paper's Appendix B.3 numerical example
  // (mean rate 4800 packets/s).
  [[nodiscard]] static map_process paper_example();

  // Superposition of two independent MAPs via Kronecker sums:
  //   D0 = D0a (+) D0b,  D1 = D1a (+) D1b  (state space = product space).
  // The aggregate of two MAP flows is again a MAP; superposing two MAP(2)s
  // yields the MAP(4) family the higher-order fits use (Appendix A.1).
  [[nodiscard]] static map_process superpose(const map_process& a,
                                             const map_process& b);

 private:
  matrix d0_;
  matrix d1_;
};

}  // namespace dqn::queueing
