#include "queueing/sojourn.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace dqn::queueing {

double mm1_mean_wait(double lambda, double mu) {
  DQN_ENSURE(mu > 0, "mm1_mean_wait: service rate must be > 0 (got ", mu, ")");
  DQN_ENSURE(lambda >= 0, "mm1_mean_wait: arrival rate must be >= 0 (got ",
             lambda, ")");
  if (lambda >= mu) return std::numeric_limits<double>::infinity();
  const double rho = lambda / mu;
  return rho / (mu - lambda);
}

double mm1_mean_sojourn(double lambda, double mu) {
  DQN_ENSURE(mu > 0, "mm1_mean_sojourn: service rate must be > 0 (got ", mu,
             ")");
  DQN_ENSURE(lambda >= 0, "mm1_mean_sojourn: arrival rate must be >= 0 (got ",
             lambda, ")");
  if (lambda >= mu) return std::numeric_limits<double>::infinity();
  return 1.0 / (mu - lambda);
}

std::vector<double> stationary_mean_sojourns(const ldqbd_scheduler_model& model) {
  DQN_ENSURE(model.solved(),
             "stationary_mean_sojourns: ldqbd model not solved; call solve()");
  std::vector<double> sojourns(model.classes());
  for (std::size_t k = 0; k < sojourns.size(); ++k)
    sojourns[k] = model.mean_sojourn(k);
  return sojourns;
}

std::vector<double> stationary_mean_waits(const ldqbd_scheduler_model& model,
                                          double service_rate) {
  DQN_ENSURE(service_rate > 0,
             "stationary_mean_waits: service rate must be > 0 (got ",
             service_rate, ")");
  auto waits = stationary_mean_sojourns(model);
  const double mean_service = 1.0 / service_rate;
  for (double& w : waits) w = std::max(0.0, w - mean_service);
  return waits;
}

}  // namespace dqn::queueing
