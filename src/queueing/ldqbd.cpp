#include "queueing/ldqbd.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "util/check.hpp"

namespace dqn::queueing {

ldqbd_scheduler_model::ldqbd_scheduler_model(map_process arrivals,
                                             scheduler_model_config config)
    : arrivals_{std::move(arrivals)}, config_{std::move(config)} {
  if (config_.class_probs.empty())
    throw std::invalid_argument{"ldqbd: need at least one class"};
  double total = 0;
  for (double p : config_.class_probs) {
    if (p <= 0) throw std::invalid_argument{"ldqbd: class probabilities must be > 0"};
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-9)
    throw std::invalid_argument{"ldqbd: class probabilities must sum to 1"};
  if (config_.service_rate <= 0)
    throw std::invalid_argument{"ldqbd: service rate must be > 0"};
  if (config_.discipline == scheduler_discipline::wfq) {
    if (config_.weights.size() != config_.class_probs.size())
      throw std::invalid_argument{"ldqbd: WFQ needs one weight per class"};
    for (double w : config_.weights)
      if (w <= 0) throw std::invalid_argument{"ldqbd: weights must be > 0"};
  }
  if (config_.truncation_level < 2)
    throw std::invalid_argument{"ldqbd: truncation level must be >= 2"};
  comps_.reserve(config_.truncation_level + 1);
  for (std::size_t l = 0; l <= config_.truncation_level; ++l)
    comps_.push_back(compositions(l));
}

std::vector<std::vector<std::size_t>> ldqbd_scheduler_model::compositions(
    std::size_t level) const {
  const std::size_t k = classes();
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::size_t> current(k, 0);
  // Recursive enumeration in descending lexicographic order: the first class
  // takes the largest remaining count first.
  auto recurse = [&](auto&& self, std::size_t index, std::size_t remaining) -> void {
    if (index + 1 == k) {
      current[index] = remaining;
      out.push_back(current);
      return;
    }
    for (std::size_t take = remaining + 1; take-- > 0;) {
      current[index] = take;
      self(self, index + 1, remaining - take);
    }
  };
  recurse(recurse, 0, level);
  return out;
}

double ldqbd_scheduler_model::service_share(std::span<const std::size_t> n,
                                            std::size_t class_index) const {
  if (n[class_index] == 0) return 0;
  if (config_.discipline == scheduler_discipline::sp) {
    // Strict priority: class 0 is the highest priority.
    for (std::size_t i = 0; i < class_index; ++i)
      if (n[i] > 0) return 0;
    return config_.service_rate;
  }
  double active_weight = 0;
  for (std::size_t i = 0; i < n.size(); ++i)
    if (n[i] > 0) active_weight += config_.weights[i];
  return config_.weights[class_index] / active_weight * config_.service_rate;
}

namespace {

// Dense index of a composition within a level's ordered list.
std::size_t find_index(const std::vector<std::vector<std::size_t>>& comps,
                       const std::vector<std::size_t>& n) {
  const auto it = std::find(comps.begin(), comps.end(), n);
  if (it == comps.end()) throw std::logic_error{"ldqbd: composition not found"};
  return static_cast<std::size_t>(it - comps.begin());
}

}  // namespace

matrix ldqbd_scheduler_model::build_block(std::size_t from_level,
                                          std::size_t to_level) const {
  const std::size_t m = arrivals_.states();
  const std::size_t k = classes();
  const auto& from = comps_[from_level];
  const auto& to = comps_[to_level];
  matrix block{from.size() * m, to.size() * m};
  const auto& d0 = arrivals_.d0();
  const auto& d1 = arrivals_.d1();

  for (std::size_t s = 0; s < from.size(); ++s) {
    const auto& n = from[s];
    if (to_level == from_level + 1) {
      // Arrivals: (n, j) -> (n + e_i, jj) at rate p_i * d1[j][jj].
      for (std::size_t i = 0; i < k; ++i) {
        auto n_next = n;
        ++n_next[i];
        const std::size_t s_next = find_index(to, n_next);
        for (std::size_t j = 0; j < m; ++j)
          for (std::size_t jj = 0; jj < m; ++jj)
            block(s * m + j, s_next * m + jj) +=
                config_.class_probs[i] * d1(j, jj);
      }
    } else if (to_level + 1 == from_level) {
      // Departures: (n, j) -> (n - e_i, j) at rate g_i(n).
      for (std::size_t i = 0; i < k; ++i) {
        if (n[i] == 0) continue;
        const double rate = service_share(n, i);
        if (rate <= 0) continue;
        auto n_next = n;
        --n_next[i];
        const std::size_t s_next = find_index(to, n_next);
        for (std::size_t j = 0; j < m; ++j)
          block(s * m + j, s_next * m + j) += rate;
      }
    } else if (to_level == from_level) {
      // Phase changes without arrival, and the diagonal.
      double total_service = 0;
      for (std::size_t i = 0; i < k; ++i) total_service += service_share(n, i);
      for (std::size_t j = 0; j < m; ++j) {
        for (std::size_t jj = 0; jj < m; ++jj) {
          if (j == jj) continue;
          block(s * m + j, s * m + jj) += d0(j, jj);
        }
        block(s * m + j, s * m + j) = d0(j, j) - total_service;
      }
    } else {
      throw std::logic_error{"ldqbd: non-adjacent block requested"};
    }
  }
  return block;
}

void ldqbd_scheduler_model::solve() {
  const std::size_t top = config_.truncation_level;
  const std::size_t m = arrivals_.states();

  // Assemble blocks. At the truncation boundary, arrivals are dropped
  // (loss-system truncation): Q_{L,L} absorbs the missing arrival rate on
  // its diagonal so every row of the truncated generator sums to zero.
  std::vector<matrix> diag(top + 1), up(top), down(top);
  for (std::size_t l = 0; l <= top; ++l) diag[l] = build_block(l, l);
  for (std::size_t l = 0; l < top; ++l) {
    up[l] = build_block(l, l + 1);
    down[l] = build_block(l + 1, l);
  }
  {
    // Fix the top level's diagonal: add back the arrival rates that the
    // truncation removed, so rows sum to zero.
    const matrix overflow = build_block(top, top);  // rebuilt for clarity
    (void)overflow;
    const auto& comps_top = comps_[top];
    const auto& d1 = arrivals_.d1();
    for (std::size_t s = 0; s < comps_top.size(); ++s)
      for (std::size_t j = 0; j < m; ++j) {
        double arrival_rate = 0;
        for (std::size_t jj = 0; jj < m; ++jj) arrival_rate += d1(j, jj);
        diag[top](s * m + j, s * m + j) += arrival_rate;
      }
  }

  // Backward block reduction: S_top = Q_tt; S_l = Q_ll + Q_l,l+1 (-S_{l+1})^{-1} Q_{l+1,l}.
  std::vector<matrix> s_blocks(top + 1);
  s_blocks[top] = diag[top];
  for (std::size_t l = top; l-- > 0;) {
    matrix neg = s_blocks[l + 1];
    for (auto& x : neg.data()) x = -x;
    const matrix mid = queueing::solve(neg, down[l]);  // (-S_{l+1})^{-1} Q_{l+1,l}
    matrix correction = nn::matmul(up[l], mid);
    s_blocks[l] = diag[l];
    nn::add_inplace(s_blocks[l], correction);
  }

  // phi_0 S_0 = 0 with later normalisation.
  std::vector<double> zero(s_blocks[0].rows(), 0.0);
  // Replace one column with ones to pin the scale (solve phi S0' = e_last).
  matrix s0 = s_blocks[0];
  const std::size_t n0 = s0.rows();
  matrix a = nn::transpose(s0);
  for (std::size_t c = 0; c < n0; ++c) a(n0 - 1, c) = 1.0;
  matrix b{n0, 1};
  b(n0 - 1, 0) = 1.0;
  const matrix x = queueing::solve(a, b);
  phi_.assign(top + 1, {});
  phi_[0].resize(n0);
  for (std::size_t i = 0; i < n0; ++i) phi_[0][i] = x(i, 0);

  // Forward sweep: phi_{l+1} = phi_l Q_{l,l+1} (-S_{l+1})^{-1}.
  for (std::size_t l = 0; l < top; ++l) {
    matrix neg = s_blocks[l + 1];
    for (auto& v : neg.data()) v = -v;
    const matrix inv = inverse(neg);
    const std::size_t rows = up[l].rows(), cols = up[l].cols();
    std::vector<double> tmp(cols, 0.0);
    for (std::size_t c = 0; c < cols; ++c)
      for (std::size_t r = 0; r < rows; ++r) tmp[c] += phi_[l][r] * up[l](r, c);
    phi_[l + 1].assign(inv.cols(), 0.0);
    for (std::size_t c = 0; c < inv.cols(); ++c)
      for (std::size_t r = 0; r < inv.rows(); ++r)
        phi_[l + 1][c] += tmp[r] * inv(r, c);
  }

  // Normalise; clamp tiny negative round-off.
  double total = 0;
  for (auto& level : phi_)
    for (auto& p : level) {
      if (p < 0 && p > -1e-12) p = 0;
      total += p;
    }
  if (total <= 0) throw std::runtime_error{"ldqbd::solve: degenerate solution"};
  for (auto& level : phi_)
    for (auto& p : level) p /= total;
}

std::vector<double> ldqbd_scheduler_model::level_distribution() const {
  if (!solved()) throw std::logic_error{"ldqbd: query before solve()"};
  std::vector<double> dist(phi_.size(), 0.0);
  for (std::size_t l = 0; l < phi_.size(); ++l)
    for (double p : phi_[l]) dist[l] += p;
  return dist;
}

std::vector<double> ldqbd_scheduler_model::class_queue_length_distribution(
    std::size_t class_index) const {
  if (!solved()) throw std::logic_error{"ldqbd: query before solve()"};
  if (class_index >= classes())
    throw std::out_of_range{"ldqbd: class index out of range"};
  const std::size_t m = arrivals_.states();
  std::vector<double> dist(config_.truncation_level + 1, 0.0);
  for (std::size_t l = 0; l < phi_.size(); ++l) {
    const auto& comps = comps_[l];
    for (std::size_t s = 0; s < comps.size(); ++s) {
      const std::size_t q = comps[s][class_index];
      for (std::size_t j = 0; j < m; ++j) dist[q] += phi_[l][s * m + j];
    }
  }
  return dist;
}

double ldqbd_scheduler_model::mean_queue_length(std::size_t class_index) const {
  const auto dist = class_queue_length_distribution(class_index);
  double mean = 0;
  for (std::size_t q = 0; q < dist.size(); ++q)
    mean += static_cast<double>(q) * dist[q];
  return mean;
}

double ldqbd_scheduler_model::mean_sojourn(std::size_t class_index) const {
  // Little's law over the class marginal: W_k = L_k / lambda_k with
  // lambda_k = p_k * lambda. Guard the inputs before touching class_probs —
  // mean_queue_length's own range check would fire too late to stop the
  // indexed read below.
  DQN_ENSURE(solved(), "ldqbd::mean_sojourn: query before solve()");
  DQN_CHECK_RANGE(class_index, classes());
  const double lambda_k =
      config_.class_probs[class_index] * arrivals_.mean_rate();
  DQN_ENSURE(lambda_k > 0, "ldqbd::mean_sojourn: class ", class_index,
             " has zero arrival rate (p_k * lambda = ", lambda_k, ")");
  const double sojourn = mean_queue_length(class_index) / lambda_k;
  DQN_INVARIANT(sojourn >= 0 && std::isfinite(sojourn),
                "ldqbd::mean_sojourn: non-finite or negative sojourn ", sojourn,
                " for class ", class_index);
  return sojourn;
}

std::size_t ldqbd_scheduler_model::state_count() const {
  const std::size_t m = arrivals_.states();
  std::size_t count = 0;
  for (const auto& level : comps_) count += level.size() * m;
  return count;
}

}  // namespace dqn::queueing
