// Pre-registered metric handles: the lock-free hot path of the obs layer.
//
// A handle is resolved once (name -> dense id, under the registry's meta
// mutex) and then records without any lock: each recording thread owns a
// private shard of relaxed-atomic cells, and the registry aggregates the
// shards only when a snapshot is taken. This is what lets the engine's
// partition workers, the DES event loop, and the PTM batch loop keep
// always-on instrumentation at nanosecond cost.
//
//   obs::counter_handle events = sink.counter_handle_for("des.events");
//   ...                      // hot loop:
//   events.add();            // relaxed atomic into this thread's shard
//
// A default-constructed handle is null: every record call is a single
// branch, mirroring the repo's null-`obs::sink*` convention. Handles are
// plain (pointer, id) values — copy them freely — but they must not outlive
// the registry (or sink) that created them.
#pragma once

#include <cstdint>

#include "util/annotations.hpp"

namespace dqn::obs {

class metric_registry;

// Small dense ordinal of the calling thread (first call assigns the next
// free one). Shard selection and chrome-trace `tid` attribution both use it.
[[nodiscard]] std::uint32_t thread_ordinal() noexcept;

class counter_handle {
 public:
  counter_handle() = default;

  DQN_HOT_PATH void add(double delta = 1.0) noexcept {
    if (registry_ != nullptr) record(delta);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return registry_ != nullptr;
  }

 private:
  friend class metric_registry;
  counter_handle(metric_registry* registry, std::uint32_t id) noexcept
      : registry_{registry}, id_{id} {}
  void record(double delta) noexcept;

  metric_registry* registry_ = nullptr;
  std::uint32_t id_ = 0;
};

class gauge_handle {
 public:
  gauge_handle() = default;

  DQN_HOT_PATH void set(double value) noexcept {
    if (registry_ != nullptr) record(value);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return registry_ != nullptr;
  }

 private:
  friend class metric_registry;
  gauge_handle(metric_registry* registry, std::uint32_t id) noexcept
      : registry_{registry}, id_{id} {}
  void record(double value) noexcept;

  metric_registry* registry_ = nullptr;
  std::uint32_t id_ = 0;
};

class histogram_handle {
 public:
  histogram_handle() = default;

  DQN_HOT_PATH void observe(double value) noexcept {
    if (registry_ != nullptr) record(value);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return registry_ != nullptr;
  }

 private:
  friend class metric_registry;
  histogram_handle(metric_registry* registry, std::uint32_t id) noexcept
      : registry_{registry}, id_{id} {}
  void record(double value) noexcept;

  metric_registry* registry_ = nullptr;
  std::uint32_t id_ = 0;
};

}  // namespace dqn::obs
