#include "obs/quantile_histogram.hpp"

#include <algorithm>
#include <cmath>

namespace dqn::obs {

std::size_t quantile_histogram::bucket_of(double value) noexcept {
  if (!(value > 0) || std::isinf(value)) {
    // Zero, negatives, NaN: underflow. +inf: overflow.
    return std::isinf(value) && value > 0 ? bucket_count - 1 : 0;
  }
  int exponent = 0;
  const double mantissa = std::frexp(value, &exponent);  // value = m * 2^e, m in [0.5, 1)
  // Shift to v = m' * 2^(e-1) with m' in [1, 2): octave e-1, linear sub-bucket.
  const int octave = exponent - 1;
  if (octave < min_exponent) return 0;
  if (octave >= max_exponent) return bucket_count - 1;
  const auto sub = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sub_buckets) - 1.0,
                       (mantissa * 2.0 - 1.0) * static_cast<double>(sub_buckets)));
  return 1 + static_cast<std::size_t>(octave - min_exponent) * sub_buckets + sub;
}

double quantile_histogram::bucket_value(std::size_t index) noexcept {
  if (index == 0) return std::ldexp(1.0, min_exponent);          // grid floor
  if (index >= bucket_count - 1) return std::ldexp(1.0, max_exponent);  // grid cap
  const std::size_t linear = index - 1;
  const int octave = min_exponent + static_cast<int>(linear / sub_buckets);
  const double sub = static_cast<double>(linear % sub_buckets);
  // Midpoint of the bucket's [1 + s/16, 1 + (s+1)/16) mantissa range.
  const double mantissa = 1.0 + (sub + 0.5) / static_cast<double>(sub_buckets);
  return std::ldexp(mantissa, octave);
}

void quantile_histogram::add(std::size_t bucket, std::uint64_t count) noexcept {
  const std::size_t index = std::min(bucket, bucket_count - 1);
  counts_[index] += count;
  total_ += count;
}

void quantile_histogram::merge(const quantile_histogram& other) noexcept {
  for (std::size_t i = 0; i < bucket_count; ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double quantile_histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(total_)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bucket_count; ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) return bucket_value(i);
  }
  return bucket_value(bucket_count - 1);
}

void quantile_histogram::clear() noexcept {
  counts_.fill(0);
  total_ = 0;
}

}  // namespace dqn::obs
