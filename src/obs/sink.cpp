#include "obs/sink.hpp"

#include "obs/json.hpp"

namespace dqn::obs {

std::string sink::to_json() const {
  const registry_snapshot snap = metrics_.snapshot();
  const auto events = trace_.events();

  std::string out = "{";
  auto scalar_map = [&out](const char* key,
                           const std::map<std::string, double>& values) {
    out += '"';
    out += key;
    out += "\":{";
    bool first = true;
    for (const auto& [name, value] : values) {
      if (!first) out += ',';
      first = false;
      out += '"' + json_escape(name) + "\":" + json_number(value);
    }
    out += '}';
  };

  scalar_map("counters", snap.counters);
  out += ',';
  scalar_map("gauges", snap.gauges);

  out += ",\"histograms\":{";
  bool first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":{";
    out += "\"count\":" + json_number(static_cast<double>(h.count));
    out += ",\"sum\":" + json_number(h.sum);
    out += ",\"mean\":" + json_number(h.mean());
    out += ",\"stddev\":" + json_number(h.stddev());
    out += ",\"min\":" + json_number(h.min);
    out += ",\"max\":" + json_number(h.max);
    out += '}';
  }
  out += '}';

  out += ",\"events\":[";
  first = true;
  for (const auto& ev : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"stage\":\"" + json_escape(ev.stage) + '"';
    out += ",\"name\":\"" + json_escape(ev.name) + '"';
    out += ",\"index\":" + json_number(static_cast<double>(ev.index));
    out += ",\"start\":" + json_number(ev.start);
    out += ",\"duration\":" + json_number(ev.duration);
    out += ",\"value\":" + json_number(ev.value);
    out += '}';
  }
  out += "]}";
  return out;
}

util::text_table sink::summary_table() const {
  const registry_snapshot snap = metrics_.snapshot();
  util::text_table table{{"metric", "kind", "value", "mean", "min", "max"}};
  for (const auto& [name, value] : snap.counters)
    table.add_row({name, "counter", util::fmt(value, 0), "", "", ""});
  for (const auto& [name, value] : snap.gauges)
    table.add_row({name, "gauge", util::fmt(value, 6), "", "", ""});
  for (const auto& [name, h] : snap.histograms)
    table.add_row({name, "histogram", util::fmt(static_cast<double>(h.count), 0),
                   util::fmt(h.mean(), 6), util::fmt(h.min, 6),
                   util::fmt(h.max, 6)});
  return table;
}

}  // namespace dqn::obs
