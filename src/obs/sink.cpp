#include "obs/sink.hpp"

#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/telemetry/telemetry.hpp"

namespace dqn::obs {

sink::sink() = default;

sink::~sink() { stop_telemetry(); }

telemetry::telemetry_plane* sink::start_telemetry(
    const telemetry::telemetry_config& config) {
  if (!config.enabled) return nullptr;
  const util::lock_guard lock{telemetry_mutex_};
  if (!telemetry_)
    telemetry_ =
        std::make_unique<telemetry::telemetry_plane>(*this, runs_, config);
  return telemetry_.get();
}

void sink::stop_telemetry() {
  std::unique_ptr<telemetry::telemetry_plane> plane;
  {
    const util::lock_guard lock{telemetry_mutex_};
    plane = std::move(telemetry_);
  }
  // Destroyed outside the lock: the plane's teardown joins threads whose
  // handlers may call back into this sink.
  plane.reset();
}

telemetry::telemetry_plane* sink::telemetry_plane() noexcept {
  const util::lock_guard lock{telemetry_mutex_};
  return telemetry_.get();
}

std::string sink::to_json() const {
  registry_snapshot snap = metrics_.snapshot();
  const auto events = trace_.events();
  const auto journeys = journeys_.journeys();
  snap.counters["trace.dropped"] =
      snap.counters["trace.dropped"] + static_cast<double>(trace_.dropped());

  std::string out = "{";
  auto scalar_map = [&out](const char* key,
                           const std::map<std::string, double>& values) {
    out += '"';
    out += key;
    out += "\":{";
    bool first = true;
    for (const auto& [name, value] : values) {
      if (!first) out += ',';
      first = false;
      out += '"' + json_escape(name) + "\":" + json_number(value);
    }
    out += '}';
  };

  scalar_map("counters", snap.counters);
  out += ',';
  scalar_map("gauges", snap.gauges);

  out += ",\"histograms\":{";
  bool first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":{";
    out += "\"count\":" + json_number(static_cast<double>(h.count));
    out += ",\"sum\":" + json_number(h.sum);
    out += ",\"mean\":" + json_number(h.mean());
    out += ",\"stddev\":" + json_number(h.stddev());
    out += ",\"min\":" + json_number(h.min);
    out += ",\"max\":" + json_number(h.max);
    out += ",\"p50\":" + json_number(h.p50());
    out += ",\"p90\":" + json_number(h.p90());
    out += ",\"p99\":" + json_number(h.p99());
    out += ",\"p999\":" + json_number(h.p999());
    out += '}';
  }
  out += '}';

  out += ",\"events\":[";
  first = true;
  for (const auto& ev : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"stage\":\"" + json_escape(ev.stage) + '"';
    out += ",\"name\":\"" + json_escape(ev.name) + '"';
    out += ",\"index\":" + json_number(static_cast<double>(ev.index));
    out += ",\"start\":" + json_number(ev.start);
    out += ",\"duration\":" + json_number(ev.duration);
    out += ",\"value\":" + json_number(ev.value);
    out += ",\"span_id\":" + json_number(static_cast<double>(ev.span_id));
    out += ",\"parent_id\":" + json_number(static_cast<double>(ev.parent_id));
    out += ",\"thread\":" + json_number(static_cast<double>(ev.thread));
    out += '}';
  }
  out += ']';

  out += ",\"journeys\":[";
  first = true;
  for (const auto& journey : journeys) {
    if (!first) out += ',';
    first = false;
    out += "{\"pid\":" + json_number(static_cast<double>(journey.pid));
    out += ",\"flow\":" + json_number(static_cast<double>(journey.flow));
    out += ",\"send_time\":" + json_number(journey.send_time);
    out += ",\"delivery_time\":" + json_number(journey.delivery_time);
    out += ",\"hops\":[";
    bool first_hop = true;
    for (const auto& hop : journey.hops) {
      if (!first_hop) out += ',';
      first_hop = false;
      out += "{\"device\":" + json_number(static_cast<double>(hop.device));
      out += ",\"queue\":" + json_number(static_cast<double>(hop.queue));
      out += ",\"arrival\":" + json_number(hop.arrival);
      out += ",\"raw_delay\":" + json_number(hop.raw_delay);
      out += ",\"corrected_delay\":" + json_number(hop.corrected_delay);
      out += ",\"departure\":" + json_number(hop.departure);
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string sink::to_chrome_trace() const {
  return obs::to_chrome_trace(trace_.events());
}

util::text_table sink::summary_table() const {
  const registry_snapshot snap = metrics_.snapshot();
  util::text_table table{
      {"metric", "kind", "value", "mean", "min", "max", "p50", "p99"}};
  for (const auto& [name, value] : snap.counters)
    table.add_row({name, "counter", util::fmt(value, 0), "", "", "", "", ""});
  for (const auto& [name, value] : snap.gauges)
    table.add_row({name, "gauge", util::fmt(value, 6), "", "", "", "", ""});
  for (const auto& [name, h] : snap.histograms)
    table.add_row({name, "histogram", util::fmt(static_cast<double>(h.count), 0),
                   util::fmt(h.mean(), 6), util::fmt(h.min, 6),
                   util::fmt(h.max, 6), util::fmt(h.p50(), 6),
                   util::fmt(h.p99(), 6)});

  const auto counter_value = [&snap](const char* name) {
    const auto it = snap.counters.find(name);
    return it != snap.counters.end() ? it->second : 0.0;
  };
  const double dropped =
      counter_value("trace.dropped") + static_cast<double>(trace_.dropped());
  if (dropped > 0)
    table.add_footer("WARNING: trace.dropped = " + util::fmt(dropped, 0) +
                     " — the event ring overflowed; raise trace_log capacity "
                     "or lower event volume.");
  const double violations = counter_value("contracts.violations");
  if (violations > 0)
    table.add_footer("WARNING: contracts.violations = " +
                     util::fmt(violations, 0) +
                     " — contract failures were logged-and-continued; this "
                     "run's numbers are suspect.");
  return table;
}

}  // namespace dqn::obs
