// RAII span timer built on util::stopwatch: times the enclosing scope and,
// on destruction (or an early stop()), records both a trace event
// (stage/name/index on the sink's timeline) and a histogram sample named
// "<stage>.<name>.seconds". With a null sink the constructor is a pointer
// store and the destructor a branch — no clock reads, no allocation — which
// is what lets instrumented hot paths keep an always-on timer argument.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/sink.hpp"

namespace dqn::obs {

class scoped_timer {
 public:
  scoped_timer(sink* s, std::string_view stage, std::string_view name,
               std::uint64_t index = 0, double value = 0.0)
      : sink_{s} {
    if (sink_ != nullptr) {
      stage_ = stage;
      name_ = name;
      index_ = index;
      value_ = value;
      start_ = sink_->now();
    }
  }

  scoped_timer(const scoped_timer&) = delete;
  scoped_timer& operator=(const scoped_timer&) = delete;

  ~scoped_timer() { stop(); }

  // Update the payload recorded with the event (e.g. a loss computed after
  // construction but before scope exit).
  void set_value(double value) noexcept { value_ = value; }

  // Record now instead of at scope exit; idempotent.
  void stop() {
    if (sink_ == nullptr) return;
    const double seconds = sink_->now() - start_;
    sink_->event(stage_, name_, index_, start_, seconds, value_);
    sink_->observe(stage_ + "." + name_ + ".seconds", seconds);
    sink_ = nullptr;
  }

 private:
  sink* sink_;
  std::string stage_;
  std::string name_;
  std::uint64_t index_ = 0;
  double value_ = 0;
  double start_ = 0;
};

}  // namespace dqn::obs
