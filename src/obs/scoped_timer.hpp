// RAII span timer: a scoped_span (hierarchical trace event with span id,
// parent id, and thread ordinal — see span.hpp) that additionally records
// its duration as a histogram sample named "<stage>.<name>.seconds". With a
// null sink the constructor is a pointer store and the destructor a branch —
// no clock reads, no allocation — which is what lets instrumented hot paths
// keep an always-on timer argument.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/span.hpp"

namespace dqn::obs {

class scoped_timer {
 public:
  scoped_timer(sink* s, std::string_view stage, std::string_view name,
               std::uint64_t index = 0, double value = 0.0,
               std::uint64_t parent = auto_parent)
      : span_{s, stage, name, index, value, parent}, sink_{s} {
    if (sink_ != nullptr) {
      metric_.reserve(stage.size() + name.size() + 9);
      metric_.append(stage).append(1, '.').append(name).append(".seconds");
    }
  }

  scoped_timer(const scoped_timer&) = delete;
  scoped_timer& operator=(const scoped_timer&) = delete;

  ~scoped_timer() { stop(); }

  // Update the payload recorded with the event (e.g. a loss computed after
  // construction but before scope exit).
  void set_value(double value) noexcept { span_.set_value(value); }

  // Span id of the underlying scoped_span (0 for a null sink); pass to
  // spans opened on other threads on this timer's behalf.
  [[nodiscard]] std::uint64_t id() const noexcept { return span_.id(); }

  // Record now instead of at scope exit; idempotent.
  void stop() {
    if (sink_ == nullptr) return;
    const double seconds = span_.stop();
    sink_->observe(metric_, seconds);
    sink_ = nullptr;
  }

 private:
  scoped_span span_;
  sink* sink_;
  std::string metric_;
};

}  // namespace dqn::obs
