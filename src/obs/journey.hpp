// Sampled per-packet journey tracing — the "packet-level visibility" the
// paper promises, surfaced through obs. A journey_tracer follows a sampled
// subset of packets end to end: injection by traffic generation, each
// device hop (egress queue chosen by the PFM, raw PTM-predicted sojourn,
// SEC-corrected sojourn), and final delivery.
//
// Sampling is deterministic: a packet is traced iff a seeded integer hash
// of its pid falls under the configured rate, so two runs over the same
// workload trace the same packets and rate 1.0 traces every packet.
// Recording is mutex-protected (journeys are rare at realistic rates);
// enabled()/sampled() are lock-free so the fast path for unsampled packets
// is a hash and a compare. record_hop() upserts by device id: IRSA
// re-processes devices across iterations, and the last write — the
// converged prediction — wins.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace dqn::obs {

struct journey_hop {
  std::int64_t device = -1;    // topology node id
  std::uint64_t queue = 0;     // egress queue (output port) chosen by the PFM
  double arrival = 0;          // arrival at the egress queue (sim seconds)
  double raw_delay = 0;        // PTM sojourn before SEC correction
  double corrected_delay = 0;  // final sojourn (SEC + feasibility projection)
  double departure = 0;        // arrival + corrected_delay
};

struct packet_journey {
  std::uint64_t pid = 0;
  std::uint64_t flow = 0;
  double send_time = -1.0;      // < 0 until traffic generation records it
  double delivery_time = -1.0;  // < 0 until the packet is delivered
  std::vector<journey_hop> hops;  // sorted by arrival time on export
};

class journey_tracer {
 public:
  static constexpr std::uint64_t default_seed = 0x9e3779b97f4a7c15ull;

  journey_tracer() = default;

  // rate in [0, 1] (clamped). Call before recording starts — configure() is
  // not synchronized against concurrent sampled() calls.
  void configure(double sample_rate, std::uint64_t seed = default_seed);

  [[nodiscard]] bool enabled() const noexcept { return threshold_ != 0; }
  [[nodiscard]] bool sampled(std::uint64_t pid) const noexcept;

  void record_send(std::uint64_t pid, std::uint64_t flow, double time);
  void record_hop(std::uint64_t pid, const journey_hop& hop);
  void record_delivery(std::uint64_t pid, double time);

  // All traced journeys, sorted by pid, each hop list sorted by arrival.
  [[nodiscard]] std::vector<packet_journey> journeys() const;
  [[nodiscard]] std::size_t size() const;

  void clear();

 private:
  // Sampled iff hash(pid) < threshold_; UINT64_MAX means "all". Written only
  // by configure(), which by contract happens-before any recording — not
  // guarded (enabled()/sampled() are deliberately lock-free).
  std::uint64_t threshold_ = 0;
  std::uint64_t seed_ = default_seed;
  mutable util::mutex mutex_;
  std::unordered_map<std::uint64_t, packet_journey> journeys_
      DQN_GUARDED_BY(mutex_);
};

}  // namespace dqn::obs
