#include "obs/telemetry/prometheus.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <set>

#include "obs/quantile_histogram.hpp"

namespace dqn::obs::telemetry {

namespace {

// Decade `le` ladder the 1026 log buckets are accumulated onto: fine enough
// to see orders of magnitude (the natural axis for latencies spanning ns to
// minutes), coarse enough that one histogram family stays ~17 lines.
constexpr std::array<double, 16> kBucketBounds = {
    1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2,
    1e-1, 1e0,  1e1,  1e2,  1e3,  1e4,  1e5,  1e6,
};

bool valid_name_char(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
  const bool digit = c >= '0' && c <= '9';
  return alpha || c == '_' || c == ':' || (digit && !first);
}

// `le` label text of a ladder boundary: trimmed decimal, no exponent juggling
// needed for pure powers of ten.
std::string bound_label(double bound) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%g", bound);
  return buffer;
}

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (name.empty()) return "_";
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (valid_name_char(c, /*first=*/i == 0))
      out += c;
    else if (i == 0 && c >= '0' && c <= '9')
      out += std::string{"_"} + c;  // leading digit: prefix, don't drop
    else
      out += '_';
  }
  return out;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_number(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  // Integral values (counters, bucket counts) print as plain decimals:
  // %.*g would render 10 as "1e+01", which round-trips but reads badly.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buffer, sizeof buffer, "%.0f", value);
    return buffer;
  }
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[64];
    std::snprintf(candidate, sizeof candidate, "%.*g", precision, value);
    double parsed = 0;
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == value) return candidate;
  }
  return buffer;
}

std::string to_prometheus(const registry_snapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  std::set<std::string> emitted;
  const auto claim = [&emitted](const std::string& name) {
    return emitted.insert(name).second;
  };

  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = sanitize_metric_name(name);
    if (!claim(metric)) continue;
    out += "# TYPE " + metric + " counter\n";
    out += metric + ' ' + prometheus_number(value) + '\n';
  }

  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = sanitize_metric_name(name);
    if (!claim(metric)) continue;
    out += "# TYPE " + metric + " gauge\n";
    out += metric + ' ' + prometheus_number(value) + '\n';
  }

  for (const auto& [name, stats] : snapshot.histograms) {
    const std::string metric = sanitize_metric_name(name);
    if (!claim(metric)) continue;
    out += "# TYPE " + metric + " histogram\n";
    // Accumulate the log buckets onto the decade ladder. Underflow (index
    // 0) represents <= grid floor: it lands in the smallest decade. The
    // overflow bucket's representative is the grid cap (~1.7e7), above the
    // ladder, so it contributes only to +Inf — as it should.
    std::array<std::uint64_t, kBucketBounds.size()> per_bound{};
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < quantile_histogram::bucket_count; ++i) {
      const std::uint64_t count = stats.buckets.count_at(i);
      if (count == 0) continue;
      total += count;
      const double value =
          i == 0 ? 0.0 : quantile_histogram::bucket_value(i);
      for (std::size_t b = 0; b < kBucketBounds.size(); ++b) {
        if (value <= kBucketBounds[b]) {
          per_bound[b] += count;
          break;
        }
      }
    }
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kBucketBounds.size(); ++b) {
      cumulative += per_bound[b];
      out += metric + "_bucket{le=\"" + bound_label(kBucketBounds[b]) +
             "\"} " + prometheus_number(static_cast<double>(cumulative)) +
             '\n';
    }
    out += metric + "_bucket{le=\"+Inf\"} " +
           prometheus_number(static_cast<double>(total)) + '\n';
    out += metric + "_sum " + prometheus_number(stats.sum) + '\n';
    out += metric + "_count " +
           prometheus_number(static_cast<double>(stats.count)) + '\n';
    // Tail quantiles as companion gauges (see header rationale).
    const std::array<std::pair<const char*, double>, 3> quantiles = {{
        {"_p50", stats.p50()},
        {"_p99", stats.p99()},
        {"_p999", stats.p999()},
    }};
    for (const auto& [suffix, value] : quantiles) {
      const std::string gauge_name = metric + suffix;
      if (!claim(gauge_name)) continue;
      out += "# TYPE " + gauge_name + " gauge\n";
      out += gauge_name + ' ' + prometheus_number(value) + '\n';
    }
  }
  return out;
}

}  // namespace dqn::obs::telemetry
