#include "obs/telemetry/run_ledger.hpp"

#include <algorithm>
#include <utility>

namespace dqn::obs::telemetry {

run_ledger::run_ledger(std::size_t capacity)
    : capacity_{std::max<std::size_t>(capacity, 1)} {}

std::uint64_t run_ledger::record(run_record record) {
  const util::lock_guard lock{mutex_};
  record.id = next_id_++;
  const std::uint64_t id = record.id;
  records_.push_back(std::move(record));
  if (records_.size() > capacity_) records_.pop_front();
  return id;
}

std::vector<run_record> run_ledger::recent() const {
  const util::lock_guard lock{mutex_};
  return {records_.begin(), records_.end()};
}

std::size_t run_ledger::size() const {
  const util::lock_guard lock{mutex_};
  return records_.size();
}

std::uint64_t run_ledger::total() const {
  const util::lock_guard lock{mutex_};
  return next_id_ - 1;
}

void run_ledger::clear() {
  const util::lock_guard lock{mutex_};
  records_.clear();
  next_id_ = 1;
}

}  // namespace dqn::obs::telemetry
