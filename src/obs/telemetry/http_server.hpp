// Embedded HTTP/1.1 exposition listener — self-contained on POSIX sockets,
// no third-party dependency. One acceptor thread; each accepted connection
// is parsed, answered, and closed inline under short socket timeouts, so
// there are never detached handler threads to leak past shutdown and a
// stalled client cannot wedge the server for more than the timeout.
//
// Scope is deliberately tiny: GET (plus HEAD) requests, path + query string,
// `Connection: close` responses. That is everything a /metrics scrape, a
// curl, or a health-checker needs; it is not a general web server and must
// never listen beyond loopback unless the caller explicitly binds wider
// (telemetry_config.bind_address).
//
// Lifecycle: the constructor binds + listens (throwing on failure, e.g.
// port already in use) and starts the acceptor; stop()/destruction shuts
// the listening socket down and joins. Port 0 binds an ephemeral port; read
// the real one back with port().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace dqn::obs::telemetry {

struct http_request {
  std::string method;  // "GET", "HEAD", ...
  std::string path;    // decoded, no query string, e.g. "/series"
  std::map<std::string, std::string> query;  // decoded key -> value
};

struct http_response {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class http_server {
 public:
  using handler_fn = std::function<http_response(const http_request&)>;

  // Binds `bind_address:port` (port 0 = ephemeral) and starts the acceptor
  // thread. Throws std::runtime_error when the socket cannot be set up.
  http_server(const std::string& bind_address, int port, handler_fn handler);
  ~http_server();

  http_server(const http_server&) = delete;
  http_server& operator=(const http_server&) = delete;

  // Idempotent; wakes the acceptor, closes the listener, joins.
  void stop();

  // The actually-bound port (resolves ephemeral binds).
  [[nodiscard]] int port() const noexcept {
    return port_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool running() const noexcept {
    return !stopping_.load(std::memory_order_acquire);
  }
  // Requests answered (any status) since construction.
  [[nodiscard]] std::uint64_t requests() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

  // Percent-decode a URL component ("%2F" -> "/", "+" -> " "). Exposed for
  // tests; malformed escapes are passed through literally.
  [[nodiscard]] static std::string url_decode(std::string_view text);

  // Parse "path?k=v&k2=v2" into a request's path + query map.
  [[nodiscard]] static http_request parse_target(std::string_view target);

 private:
  void loop();
  void handle_connection(int fd);

  handler_fn handler_;
  int listen_fd_ = -1;
  std::atomic<int> port_{-1};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;  // last member: starts only after everything above
};

}  // namespace dqn::obs::telemetry
