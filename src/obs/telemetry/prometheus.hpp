// Prometheus text exposition (version 0.0.4) of a registry snapshot — the
// format every scraper and `curl /metrics` consumer in the ecosystem parses.
// Self-contained writer, no third-party dependency (mirrors obs/json.hpp).
//
// Mapping:
//  * counters -> `# TYPE <name> counter` + one sample line;
//  * gauges   -> `# TYPE <name> gauge` + one sample line;
//  * histograms -> `# TYPE <name> histogram` with cumulative `_bucket`
//    lines on a fixed decade `le` ladder (accumulated from the log-bucketed
//    quantile_histogram), `_sum` and `_count`, plus companion gauges
//    `<name>_p50/_p99/_p999` so tail quantiles are scrapable directly
//    (bucket interpolation at ~3%-resolution grids loses the tail).
//
// Registry names are dotted ("engine.deliveries"); sanitize_metric_name
// maps them onto the Prometheus grammar [a-zA-Z_:][a-zA-Z0-9_:]* (dots and
// every other invalid byte become '_', a leading digit gets a '_' prefix).
// escape_label_value escapes backslash, double quote, and newline per spec.
#pragma once

#include <string>
#include <string_view>

#include "obs/metric_registry.hpp"

namespace dqn::obs::telemetry {

[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

[[nodiscard]] std::string escape_label_value(std::string_view value);

// Render one value the way Prometheus expects: shortest round-trippable
// decimal, `+Inf`/`-Inf`/`NaN` spellings for non-finite values.
[[nodiscard]] std::string prometheus_number(double value);

// The whole snapshot as one exposition document (ends with a newline).
// Distinct dotted names can sanitize to the same exposition name; later
// (map-ordered) collisions are skipped rather than emitted as duplicate
// families, which scrapers reject.
[[nodiscard]] std::string to_prometheus(const registry_snapshot& snapshot);

}  // namespace dqn::obs::telemetry
