#include "obs/telemetry/resource_stats.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/sink.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#define DQN_HAVE_RUSAGE 1
#endif

#if defined(__linux__)
#include <dirent.h>
#define DQN_HAVE_PROC 1
#endif

namespace dqn::obs::telemetry {

namespace {

#if defined(DQN_HAVE_PROC)

double clock_ticks_per_second() {
  static const double ticks = [] {
    const long hz = sysconf(_SC_CLK_TCK);
    return hz > 0 ? static_cast<double>(hz) : 100.0;
  }();
  return ticks;
}

// utime/stime (clock ticks) from a /proc/<...>/stat line. The comm field
// (2nd) may contain spaces and parentheses, so parsing starts after the
// LAST ')': fields 14 and 15 of the documented layout are then at split
// positions 11 and 12 (0-based, counting from field 3 "state").
bool parse_stat_cpu(const char* path, double* utime, double* stime) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return false;
  char buffer[1024];
  const std::size_t got = std::fread(buffer, 1, sizeof buffer - 1, f);
  std::fclose(f);
  buffer[got] = '\0';
  const char* close = std::strrchr(buffer, ')');
  if (close == nullptr) return false;
  unsigned long long fields[13] = {};
  int index = 0;
  const char* cursor = close + 1;
  char* end = nullptr;
  // Skip field 3 (state, one char) then read numeric fields 4..15.
  while (*cursor == ' ') ++cursor;
  if (*cursor != '\0') ++cursor;  // the state character
  while (index < 13) {
    const unsigned long long value = std::strtoull(cursor, &end, 10);
    if (end == cursor) break;
    fields[index++] = value;
    cursor = end;
  }
  if (index < 13) return false;
  // fields[0..10] are proc fields 4..14... field 14 (utime) is fields[10],
  // field 15 (stime) is fields[11].
  *utime = static_cast<double>(fields[10]) / clock_ticks_per_second();
  *stime = static_cast<double>(fields[11]) / clock_ticks_per_second();
  return true;
}

// kB value of one "Key:   N kB" line in /proc/self/status, or the bare
// number for unitless keys (Threads, ctxt switches).
bool parse_status_value(const char* line, const char* key,
                        std::uint64_t* out) {
  const std::size_t key_len = std::strlen(key);
  if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':')
    return false;
  *out = std::strtoull(line + key_len + 1, nullptr, 10);
  return true;
}

void read_proc_status(process_resource_stats* stats) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return;
  char line[256];
  std::uint64_t value = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (parse_status_value(line, "VmRSS", &value))
      stats->rss_bytes = value * 1024;
    else if (parse_status_value(line, "VmHWM", &value))
      stats->hwm_bytes = value * 1024;
    else if (parse_status_value(line, "Threads", &value))
      stats->threads = value;
    else if (parse_status_value(line, "voluntary_ctxt_switches", &value))
      stats->voluntary_ctx_switches = value;
    else if (parse_status_value(line, "nonvoluntary_ctxt_switches", &value))
      stats->involuntary_ctx_switches = value;
  }
  std::fclose(f);
}

#endif  // DQN_HAVE_PROC

}  // namespace

process_resource_stats sample_process_stats() {
  process_resource_stats stats;
#if defined(DQN_HAVE_RUSAGE)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    stats.utime_seconds = static_cast<double>(usage.ru_utime.tv_sec) +
                          static_cast<double>(usage.ru_utime.tv_usec) * 1e-6;
    stats.stime_seconds = static_cast<double>(usage.ru_stime.tv_sec) +
                          static_cast<double>(usage.ru_stime.tv_usec) * 1e-6;
    // ru_maxrss is kilobytes on Linux (bytes on macOS; the factor is the
    // documented platform contract, not a heuristic).
#if defined(__APPLE__)
    stats.max_rss_bytes = static_cast<std::uint64_t>(usage.ru_maxrss);
#else
    stats.max_rss_bytes = static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
    stats.voluntary_ctx_switches = static_cast<std::uint64_t>(usage.ru_nvcsw);
    stats.involuntary_ctx_switches =
        static_cast<std::uint64_t>(usage.ru_nivcsw);
  }
  stats.threads = 1;
#endif
#if defined(DQN_HAVE_PROC)
  // /proc refines the rusage picture where available: live RSS/HWM, thread
  // count, and scheduler-accounted CPU (kept only if parse succeeds).
  double utime = 0;
  double stime = 0;
  if (parse_stat_cpu("/proc/self/stat", &utime, &stime)) {
    stats.utime_seconds = utime;
    stats.stime_seconds = stime;
  }
  read_proc_status(&stats);
#endif
  return stats;
}

std::vector<thread_cpu_stat> sample_thread_cpu() {
  std::vector<thread_cpu_stat> threads;
#if defined(DQN_HAVE_PROC)
  DIR* dir = opendir("/proc/self/task");
  if (dir == nullptr) return threads;
  while (const dirent* entry = readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    const long tid = std::strtol(entry->d_name, nullptr, 10);
    if (tid <= 0) continue;
    const std::string path =
        std::string{"/proc/self/task/"} + entry->d_name + "/stat";
    double utime = 0;
    double stime = 0;
    if (!parse_stat_cpu(path.c_str(), &utime, &stime)) continue;
    threads.push_back({tid, utime + stime});
  }
  closedir(dir);
  std::sort(threads.begin(), threads.end(),
            [](const thread_cpu_stat& a, const thread_cpu_stat& b) {
              return a.tid < b.tid;
            });
#endif
  return threads;
}

void publish_resource_gauges(sink& s) {
  const process_resource_stats stats = sample_process_stats();
  s.gauge("process.cpu_seconds", stats.cpu_seconds());
  s.gauge("process.utime_seconds", stats.utime_seconds);
  s.gauge("process.stime_seconds", stats.stime_seconds);
  s.gauge("process.rss_bytes", static_cast<double>(stats.rss_bytes));
  s.gauge("process.hwm_bytes", static_cast<double>(stats.hwm_bytes));
  s.gauge("process.max_rss_bytes", static_cast<double>(stats.max_rss_bytes));
  s.gauge("process.voluntary_ctx_switches",
          static_cast<double>(stats.voluntary_ctx_switches));
  s.gauge("process.involuntary_ctx_switches",
          static_cast<double>(stats.involuntary_ctx_switches));
  s.gauge("process.threads", static_cast<double>(stats.threads));
  const auto threads = sample_thread_cpu();
  double busiest = 0;
  for (const auto& thread : threads)
    busiest = std::max(busiest, thread.cpu_seconds);
  s.gauge("process.thread_cpu_seconds_max", busiest);
}

}  // namespace dqn::obs::telemetry
