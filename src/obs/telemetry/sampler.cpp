#include "obs/telemetry/sampler.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/sink.hpp"
#include "obs/telemetry/resource_stats.hpp"

namespace dqn::obs::telemetry {

snapshot_sampler::snapshot_sampler(sink& s, snapshot_ring& ring,
                                   telemetry_config config)
    : sink_{s},
      ring_{ring},
      config_{std::move(config)},
      cpu_seconds_{s.gauge_handle_for("process.cpu_seconds")},
      utime_seconds_{s.gauge_handle_for("process.utime_seconds")},
      stime_seconds_{s.gauge_handle_for("process.stime_seconds")},
      rss_bytes_{s.gauge_handle_for("process.rss_bytes")},
      hwm_bytes_{s.gauge_handle_for("process.hwm_bytes")},
      max_rss_bytes_{s.gauge_handle_for("process.max_rss_bytes")},
      voluntary_ctx_{s.gauge_handle_for("process.voluntary_ctx_switches")},
      involuntary_ctx_{s.gauge_handle_for("process.involuntary_ctx_switches")},
      threads_{s.gauge_handle_for("process.threads")},
      thread_cpu_max_{s.gauge_handle_for("process.thread_cpu_seconds_max")},
      sample_count_{s.gauge_handle_for("telemetry.samples")},
      thread_{[this] { loop(); }} {}

snapshot_sampler::~snapshot_sampler() { stop(); }

void snapshot_sampler::stop() {
  {
    const util::lock_guard lock{stop_mutex_};
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
    tick();  // closing capture: the ring ends with the run's final state
  }
}

std::uint64_t snapshot_sampler::samples() const noexcept {
  const util::lock_guard lock{tick_mutex_};
  return samples_;
}

void snapshot_sampler::tick() {
  // Resource gauges first, through the pre-resolved handles, so the
  // snapshot below already carries this tick's process.* values.
  const process_resource_stats stats = sample_process_stats();
  cpu_seconds_.set(stats.cpu_seconds());
  utime_seconds_.set(stats.utime_seconds);
  stime_seconds_.set(stats.stime_seconds);
  rss_bytes_.set(static_cast<double>(stats.rss_bytes));
  hwm_bytes_.set(static_cast<double>(stats.hwm_bytes));
  max_rss_bytes_.set(static_cast<double>(stats.max_rss_bytes));
  voluntary_ctx_.set(static_cast<double>(stats.voluntary_ctx_switches));
  involuntary_ctx_.set(static_cast<double>(stats.involuntary_ctx_switches));
  threads_.set(static_cast<double>(stats.threads));
  const auto thread_cpu = sample_thread_cpu();
  double busiest = 0;
  for (const auto& thread : thread_cpu)
    busiest = std::max(busiest, thread.cpu_seconds);
  thread_cpu_max_.set(busiest);

  const double now = sink_.now();
  registry_snapshot snap = sink_.metrics().snapshot();

  telemetry_sample sample;
  sample.time_seconds = now;
  {
    const util::lock_guard lock{tick_mutex_};
    sample.interval_seconds =
        have_previous_ ? std::max(0.0, now - previous_time_) : 0.0;
    for (const auto& [name, value] : snap.counters) {
      sample.counter_totals[name] = value;
      double rate = 0;
      if (have_previous_ && sample.interval_seconds > 0) {
        const auto it = previous_.counters.find(name);
        const double prev = it != previous_.counters.end() ? it->second : 0.0;
        rate = (value - prev) / sample.interval_seconds;
      }
      sample.counter_rates[name] = rate;
    }
    sample.gauges = snap.gauges;
    for (const auto& [name, h] : snap.histograms) {
      histogram_point point;
      point.count = h.count;
      point.sum = h.sum;
      point.min = h.min;
      point.max = h.max;
      point.mean = h.mean();
      point.p50 = h.p50();
      point.p99 = h.p99();
      point.p999 = h.p999();
      sample.histograms[name] = point;
    }
    previous_ = std::move(snap);
    previous_time_ = now;
    have_previous_ = true;
    ++samples_;
    sample_count_.set(static_cast<double>(samples_));
  }
  ring_.push(std::move(sample));
}

void snapshot_sampler::loop() {
  const auto period =
      std::chrono::milliseconds{std::max(1u, config_.sample_period_ms)};
  for (;;) {
    {
      util::unique_lock lock{stop_mutex_};
      if (!stopping_) stop_cv_.wait_for(lock, period);
      if (stopping_) return;
    }
    tick();
  }
}

}  // namespace dqn::obs::telemetry
