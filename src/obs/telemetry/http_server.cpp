#include "obs/telemetry/http_server.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0  // not defined on every POSIX platform
#endif

namespace dqn::obs::telemetry {

namespace {

constexpr int kBacklog = 16;
constexpr std::size_t kMaxRequestBytes = 8192;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Status";
  }
}

void set_socket_timeouts(int fd) {
  timeval timeout{};
  timeout.tv_sec = 2;
  timeout.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string http_server::url_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < text.size()) {
      const int hi = hex_digit(text[i + 1]);
      const int lo = hex_digit(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
      } else {
        out += c;
      }
    } else {
      out += c;
    }
  }
  return out;
}

http_request http_server::parse_target(std::string_view target) {
  http_request request;
  const std::size_t question = target.find('?');
  request.path = url_decode(target.substr(0, question));
  if (question == std::string_view::npos) return request;
  std::string_view query = target.substr(question + 1);
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair = query.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (!pair.empty()) {
      const std::string key = url_decode(pair.substr(0, eq));
      const std::string value =
          eq == std::string_view::npos ? "" : url_decode(pair.substr(eq + 1));
      request.query[key] = value;
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return request;
}

http_server::http_server(const std::string& bind_address, int port,
                         handler_fn handler)
    : handler_{std::move(handler)} {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error{std::string{"telemetry http_server: socket(): "} +
                             std::strerror(errno)};
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, bind_address.c_str(), &address.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error{"telemetry http_server: bad bind address '" +
                             bind_address + "'"};
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0 ||
      ::listen(listen_fd_, kBacklog) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error{"telemetry http_server: cannot listen on " +
                             bind_address + ":" + std::to_string(port) + ": " +
                             reason};
  }

  sockaddr_in bound{};
  socklen_t bound_size = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_size) == 0)
    port_.store(static_cast<int>(ntohs(bound.sin_port)),
                std::memory_order_release);
  thread_ = std::thread{[this] { loop(); }};
}

http_server::~http_server() { stop(); }

void http_server::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void http_server::loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener gone — nothing left to serve
    }
    set_socket_timeouts(fd);
    handle_connection(fd);
    ::close(fd);
  }
}

void http_server::handle_connection(int fd) {
  std::string raw;
  raw.reserve(512);
  char buffer[1024];
  while (raw.find("\r\n\r\n") == std::string::npos &&
         raw.size() < kMaxRequestBytes) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) break;  // timeout, reset, or clean close mid-request
    raw.append(buffer, static_cast<std::size_t>(n));
  }

  http_response response;
  bool head_only = false;
  const std::size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) {
    response = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else {
    const std::string_view line{raw.data(), line_end};
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos) {
      response = {400, "text/plain; charset=utf-8", "bad request\n"};
    } else {
      http_request request =
          parse_target(line.substr(sp1 + 1, sp2 - sp1 - 1));
      request.method = std::string{line.substr(0, sp1)};
      head_only = request.method == "HEAD";
      if (request.method != "GET" && request.method != "HEAD") {
        response = {405, "text/plain; charset=utf-8",
                    "only GET is supported\n"};
      } else {
        try {
          response = handler_(request);
        } catch (const std::exception& error) {
          response = {500, "text/plain; charset=utf-8",
                      std::string{"handler error: "} + error.what() + "\n"};
        }
      }
    }
  }

  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     status_text(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (send_all(fd, head.data(), head.size()) && !head_only)
    send_all(fd, response.body.data(), response.body.size());
  requests_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace dqn::obs::telemetry
