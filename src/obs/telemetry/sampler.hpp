// Background snapshot + resource sampler: one thread that every
// `sample_period_ms` (default 250) publishes the `process.*` resource
// gauges and captures a delta snapshot of every registered metric into the
// snapshot ring — counters as cumulative totals plus per-second rates,
// gauges as last value, histograms as merged count/sum/quantiles.
//
// Contention contract: the hot record path never notices the sampler. A
// tick reads the registry through the same shard read side snapshots use —
// per-thread relaxed-atomic cells traversed lock-free; only the registry's
// meta mutex (names, never taken by handle recording) and the ring/gauge
// cells are touched. The resource gauges are written through handles
// pre-resolved at construction, so steady-state ticks take no registry
// locks at all on the write side.
//
// Lifecycle: construction starts the thread, stop()/destruction joins it.
// The sink, ring, and config must outlive the sampler (the telemetry plane
// owns all four — see obs/telemetry/telemetry.hpp).
#pragma once

#include <cstdint>
#include <thread>

#include "obs/metric_registry.hpp"
#include "obs/telemetry/snapshot_ring.hpp"
#include "obs/telemetry/telemetry_config.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace dqn::obs {
class sink;
}  // namespace dqn::obs

namespace dqn::obs::telemetry {

class snapshot_sampler {
 public:
  snapshot_sampler(sink& s, snapshot_ring& ring, telemetry_config config);
  ~snapshot_sampler();

  snapshot_sampler(const snapshot_sampler&) = delete;
  snapshot_sampler& operator=(const snapshot_sampler&) = delete;

  // Idempotent; joins the sampler thread. A final tick runs on the way out
  // so the ring always ends with the run's closing state.
  void stop();

  // Ticks taken so far (including the closing tick).
  [[nodiscard]] std::uint64_t samples() const noexcept;

  // One synchronous capture, callable from any thread — tests drive the
  // delta logic deterministically through this; the background thread calls
  // the same body.
  void tick();

 private:
  void loop();

  sink& sink_;
  snapshot_ring& ring_;
  const telemetry_config config_;

  // Tick state: previous totals for the delta computation. Guarded because
  // tick() is callable both from the sampler thread and from tests/stop().
  mutable util::mutex tick_mutex_;
  registry_snapshot previous_ DQN_GUARDED_BY(tick_mutex_);
  double previous_time_ DQN_GUARDED_BY(tick_mutex_) = 0;
  bool have_previous_ DQN_GUARDED_BY(tick_mutex_) = false;
  std::uint64_t samples_ DQN_GUARDED_BY(tick_mutex_) = 0;

  util::mutex stop_mutex_;
  util::condition_variable stop_cv_;
  bool stopping_ DQN_GUARDED_BY(stop_mutex_) = false;

  gauge_handle cpu_seconds_;
  gauge_handle utime_seconds_;
  gauge_handle stime_seconds_;
  gauge_handle rss_bytes_;
  gauge_handle hwm_bytes_;
  gauge_handle max_rss_bytes_;
  gauge_handle voluntary_ctx_;
  gauge_handle involuntary_ctx_;
  gauge_handle threads_;
  gauge_handle thread_cpu_max_;
  gauge_handle sample_count_;

  std::thread thread_;  // last member: starts only after everything above
};

}  // namespace dqn::obs::telemetry
