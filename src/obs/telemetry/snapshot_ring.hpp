// Bounded ring of timestamped telemetry samples — the time-series half of
// the telemetry plane. The background sampler (obs/telemetry/sampler.hpp)
// pushes one sample per tick: counters as cumulative totals AND per-second
// rates over the tick interval, gauges as last value, histograms reduced to
// count/sum/min/max/mean and the tail quantiles. When full the oldest
// sample is evicted, so an always-on plane holds a sliding window (default
// 240 samples x 250 ms = one minute) at fixed memory.
//
// Concurrency: one writer (the sampler thread), any number of readers (the
// /snapshot and /series endpoint handlers, tests). A mutex serializes both
// sides; samples are plain data copied out whole, so readers never hold
// references into the ring.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace dqn::obs::telemetry {

// Histogram reduced to the numbers a time series needs (the full log-bucket
// array stays with the registry; /metrics renders buckets from there).
struct histogram_point {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double p50 = 0;
  double p99 = 0;
  double p999 = 0;
};

struct telemetry_sample {
  double time_seconds = 0;      // sink-epoch time at capture
  double interval_seconds = 0;  // since the previous sample (0 on the first)
  std::map<std::string, double> counter_totals;
  std::map<std::string, double> counter_rates;  // delta / interval, 1/s
  std::map<std::string, double> gauges;
  std::map<std::string, histogram_point> histograms;
};

class snapshot_ring {
 public:
  explicit snapshot_ring(std::size_t capacity);

  void push(telemetry_sample sample);

  // Newest sample, if any.
  [[nodiscard]] std::optional<telemetry_sample> latest() const;

  // Samples with time_seconds >= since_seconds, oldest first.
  [[nodiscard]] std::vector<telemetry_sample> window(
      double since_seconds) const;

  // Every retained sample, oldest first.
  [[nodiscard]] std::vector<telemetry_sample> all() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  // Samples pushed over the ring's lifetime (>= size(); the difference is
  // what eviction discarded).
  [[nodiscard]] std::uint64_t total_pushed() const;

  void clear();

 private:
  const std::size_t capacity_;
  mutable util::mutex mutex_;
  std::deque<telemetry_sample> samples_ DQN_GUARDED_BY(mutex_);
  std::uint64_t total_pushed_ DQN_GUARDED_BY(mutex_) = 0;
};

}  // namespace dqn::obs::telemetry
