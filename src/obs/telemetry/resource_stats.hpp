// OS-level resource accounting for the telemetry plane: per-process CPU
// time, memory, context switches (via /proc/self and getrusage), and
// per-thread CPU time (via /proc/self/task). On non-Linux hosts the /proc
// readers degrade to the rusage subset gracefully — fields the platform
// cannot provide read as zero, never as garbage.
//
// publish_resource_gauges() writes the sample as ordinary `process.*` gauges
// into a sink, so resource series flow through the same registry, snapshot
// ring, and /metrics exposition as every engine metric (RouteNet-Gauss's
// hardware-efficiency axis measured with the same instrument as accuracy).
#pragma once

#include <cstdint>
#include <vector>

namespace dqn::obs {
class sink;
}  // namespace dqn::obs

namespace dqn::obs::telemetry {

struct thread_cpu_stat {
  long tid = 0;
  double cpu_seconds = 0;  // utime + stime of this kernel thread
};

struct process_resource_stats {
  double utime_seconds = 0;  // user CPU since process start
  double stime_seconds = 0;  // system CPU since process start
  [[nodiscard]] double cpu_seconds() const noexcept {
    return utime_seconds + stime_seconds;
  }
  std::uint64_t rss_bytes = 0;      // current resident set (/proc VmRSS)
  std::uint64_t hwm_bytes = 0;      // resident high-water mark (/proc VmHWM)
  std::uint64_t max_rss_bytes = 0;  // getrusage ru_maxrss (portable peak)
  std::uint64_t voluntary_ctx_switches = 0;
  std::uint64_t involuntary_ctx_switches = 0;
  std::uint64_t threads = 0;  // kernel thread count of the process
};

// One point-in-time sample of the process counters above.
[[nodiscard]] process_resource_stats sample_process_stats();

// CPU time of every kernel thread of this process, in tid order. Empty on
// platforms without /proc/self/task.
[[nodiscard]] std::vector<thread_cpu_stat> sample_thread_cpu();

// Sample and publish as `process.*` gauges (see docs/OBSERVABILITY.md for
// the catalog): cpu/utime/stime seconds, rss/hwm/max_rss bytes, context
// switches, thread count, and the busiest thread's CPU seconds.
void publish_resource_gauges(sink& s);

}  // namespace dqn::obs::telemetry
