// telemetry_plane — the composed live-telemetry subsystem: a snapshot ring,
// the background snapshot + resource sampler feeding it, and (when
// telemetry_config.metrics_port >= 0) the embedded HTTP exposition server.
//
// Ownership: the plane owns the ring, the sampler, and the server; the sink
// owns the plane (sink::start_telemetry) so instrumented code never manages
// telemetry lifetime separately from the sink it records into. The run
// ledger is the one piece the plane borrows rather than owns — it lives in
// the sink unconditionally so estimators can record runs whether or not a
// plane is active.
//
// Endpoints served (all GET, Connection: close):
//   /metrics   Prometheus text exposition of the full registry
//   /snapshot  latest telemetry sample as JSON (ticks once for freshness)
//   /series    ring contents as JSON; ?window=SECONDS trims to recent
//   /runs      recent estimator executions from the run ledger
//   /healthz   liveness probe, "ok"
//
// The render_* methods are public and socket-free: tests and CLI dumps call
// them directly, the HTTP handler is a thin routing layer over them.
#pragma once

#include <memory>
#include <string>

#include "obs/telemetry/http_server.hpp"
#include "obs/telemetry/run_ledger.hpp"
#include "obs/telemetry/sampler.hpp"
#include "obs/telemetry/snapshot_ring.hpp"
#include "obs/telemetry/telemetry_config.hpp"

namespace dqn::obs {
class sink;
}  // namespace dqn::obs

namespace dqn::obs::telemetry {

class telemetry_plane {
 public:
  // Starts the sampler immediately; binds + starts the server when
  // config.metrics_port >= 0 (throwing std::runtime_error if the bind
  // fails). The sink and ledger must outlive the plane.
  telemetry_plane(sink& s, run_ledger& runs, telemetry_config config);
  ~telemetry_plane();

  telemetry_plane(const telemetry_plane&) = delete;
  telemetry_plane& operator=(const telemetry_plane&) = delete;

  // Idempotent: stops the server first (no handler can race a dying
  // sampler), then the sampler (which takes its closing tick).
  void stop();

  [[nodiscard]] const telemetry_config& config() const noexcept {
    return config_;
  }
  [[nodiscard]] snapshot_ring& ring() noexcept { return ring_; }
  [[nodiscard]] const snapshot_ring& ring() const noexcept { return ring_; }
  [[nodiscard]] snapshot_sampler& sampler() noexcept { return sampler_; }

  // Bound exposition port, or -1 when no server was requested.
  [[nodiscard]] int metrics_port() const noexcept {
    return server_ ? server_->port() : -1;
  }
  [[nodiscard]] bool serving() const noexcept {
    return server_ && server_->running();
  }

  // Socket-free endpoint renderers.
  [[nodiscard]] std::string render_metrics() const;
  std::string render_snapshot_json();  // non-const: ticks the sampler
  [[nodiscard]] std::string render_series_json(double window_seconds) const;
  [[nodiscard]] std::string render_runs_json() const;

  // Route one request to the renderer it names (the server's handler).
  http_response handle(const http_request& request);

 private:
  sink& sink_;
  run_ledger& runs_;
  const telemetry_config config_;
  snapshot_ring ring_;
  snapshot_sampler sampler_;
  std::unique_ptr<http_server> server_;
};

}  // namespace dqn::obs::telemetry
