#include "obs/telemetry/telemetry.hpp"

#include <cstdlib>
#include <utility>

#include "obs/json.hpp"
#include "obs/sink.hpp"
#include "obs/telemetry/prometheus.hpp"

namespace dqn::obs::telemetry {

namespace {

void append_map(std::string& out, const char* key,
                const std::map<std::string, double>& values) {
  out += '"';
  out += key;
  out += "\":{";
  bool first = true;
  for (const auto& [name, value] : values) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + json_number(value);
  }
  out += '}';
}

std::string sample_to_json(const telemetry_sample& sample) {
  std::string out = "{";
  out += "\"time_seconds\":" + json_number(sample.time_seconds) + ',';
  out += "\"interval_seconds\":" + json_number(sample.interval_seconds) + ',';
  append_map(out, "counters", sample.counter_totals);
  out += ',';
  append_map(out, "counter_rates", sample.counter_rates);
  out += ',';
  append_map(out, "gauges", sample.gauges);
  out += ",\"histograms\":{";
  bool first = true;
  for (const auto& [name, h] : sample.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":{";
    out += "\"count\":" + json_number(static_cast<double>(h.count)) + ',';
    out += "\"sum\":" + json_number(h.sum) + ',';
    out += "\"min\":" + json_number(h.min) + ',';
    out += "\"max\":" + json_number(h.max) + ',';
    out += "\"mean\":" + json_number(h.mean) + ',';
    out += "\"p50\":" + json_number(h.p50) + ',';
    out += "\"p99\":" + json_number(h.p99) + ',';
    out += "\"p999\":" + json_number(h.p999) + '}';
  }
  out += "}}";
  return out;
}

}  // namespace

telemetry_plane::telemetry_plane(sink& s, run_ledger& runs,
                                 telemetry_config config)
    : sink_{s},
      runs_{runs},
      config_{std::move(config)},
      ring_{config_.ring_capacity},
      sampler_{s, ring_, config_} {
  if (config_.metrics_port >= 0)
    server_ = std::make_unique<http_server>(
        config_.bind_address, config_.metrics_port,
        [this](const http_request& request) { return handle(request); });
}

telemetry_plane::~telemetry_plane() { stop(); }

void telemetry_plane::stop() {
  if (server_) server_->stop();
  sampler_.stop();
}

std::string telemetry_plane::render_metrics() const {
  return to_prometheus(sink_.metrics().snapshot());
}

std::string telemetry_plane::render_snapshot_json() {
  sampler_.tick();
  const auto latest = ring_.latest();
  return latest ? sample_to_json(*latest) : "{}";
}

std::string telemetry_plane::render_series_json(double window_seconds) const {
  const auto samples =
      window_seconds > 0 ? ring_.window(sink_.now() - window_seconds)
                         : ring_.all();
  std::string out = "{\"window_seconds\":" + json_number(window_seconds) +
                    ",\"count\":" +
                    json_number(static_cast<double>(samples.size())) +
                    ",\"samples\":[";
  bool first = true;
  for (const auto& sample : samples) {
    if (!first) out += ',';
    first = false;
    out += sample_to_json(sample);
  }
  out += "]}";
  return out;
}

std::string telemetry_plane::render_runs_json() const {
  const auto records = runs_.recent();
  std::string out =
      "{\"total\":" + json_number(static_cast<double>(runs_.total())) +
      ",\"runs\":[";
  bool first = true;
  for (const auto& record : records) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":" + json_number(static_cast<double>(record.id)) +
           ",\"estimator\":\"" + json_escape(record.estimator) +
           "\",\"backend\":\"" + json_escape(record.backend) +
           "\",\"start_seconds\":" + json_number(record.start_seconds) +
           ",\"wall_seconds\":" + json_number(record.wall_seconds) +
           ",\"deliveries\":" +
           json_number(static_cast<double>(record.deliveries)) +
           ",\"status\":\"" + json_escape(record.status) + "\"}";
  }
  out += "]}";
  return out;
}

http_response telemetry_plane::handle(const http_request& request) {
  static constexpr const char* kJson = "application/json";
  if (request.path == "/metrics")
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            render_metrics()};
  if (request.path == "/snapshot") return {200, kJson, render_snapshot_json()};
  if (request.path == "/series") {
    double window_seconds = 0;  // 0 = whole ring
    const auto it = request.query.find("window");
    if (it != request.query.end()) {
      char* end = nullptr;
      window_seconds = std::strtod(it->second.c_str(), &end);
      if (end == it->second.c_str() || (end && *end != '\0'))
        return {400, "text/plain; charset=utf-8",
                "bad window= value (want seconds)\n"};
    }
    return {200, kJson, render_series_json(window_seconds)};
  }
  if (request.path == "/runs") return {200, kJson, render_runs_json()};
  if (request.path == "/healthz")
    return {200, "text/plain; charset=utf-8", "ok\n"};
  if (request.path == "/")
    return {200, "text/plain; charset=utf-8",
            "deepqueuenet telemetry\n"
            "  /metrics   Prometheus exposition\n"
            "  /snapshot  latest sample (JSON)\n"
            "  /series    ring contents (JSON), ?window=SECONDS\n"
            "  /runs      recent estimator runs (JSON)\n"
            "  /healthz   liveness\n"};
  return {404, "text/plain; charset=utf-8", "not found\n"};
}

}  // namespace dqn::obs::telemetry
