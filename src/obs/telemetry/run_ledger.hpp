// Bounded registry of recent estimator executions — the `/runs` endpoint's
// backing store and the seed of the always-on estimation service's request
// log (ROADMAP: concurrent scenarios over the run API). Every estimator's
// unified run(run_request) override records one entry into the sink it ran
// with: id, estimator name, delay backend, start time, wall seconds,
// delivery count, and status ("ok", or "error" when the run threw).
//
// Bounded like every obs store: the ring keeps the most recent `capacity`
// records (default 256) and total() counts lifetime executions, so a
// long-lived serving process cannot grow the ledger without bound.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace dqn::obs::telemetry {

struct run_record {
  std::uint64_t id = 0;  // assigned by the ledger, monotone per sink
  std::string estimator;  // estimator_name(), e.g. "deepqueuenet"
  std::string backend;    // delay backend ("ptm", ...; "-" when not applicable)
  double start_seconds = 0;  // sink-epoch time the run started
  double wall_seconds = 0;
  std::uint64_t deliveries = 0;
  std::string status;  // "ok" | "error"
};

class run_ledger {
 public:
  static constexpr std::size_t default_capacity = 256;

  explicit run_ledger(std::size_t capacity = default_capacity);

  // Record one completed execution; the record's id field is assigned here
  // (monotone from 1) and returned.
  std::uint64_t record(run_record record);

  // Retained records, oldest first.
  [[nodiscard]] std::vector<run_record> recent() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  // Lifetime executions recorded (>= size()).
  [[nodiscard]] std::uint64_t total() const;

  void clear();

 private:
  const std::size_t capacity_;
  mutable util::mutex mutex_;
  std::deque<run_record> records_ DQN_GUARDED_BY(mutex_);
  std::uint64_t next_id_ DQN_GUARDED_BY(mutex_) = 1;
};

}  // namespace dqn::obs::telemetry
