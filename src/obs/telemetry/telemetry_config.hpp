// Configuration of the live telemetry plane (obs/telemetry/telemetry.hpp):
// a background sampler that turns the metric registry into a bounded time
// series, OS resource gauges, and an optional embedded HTTP exposition
// endpoint. Deliberately dependency-free (no sink include) so config structs
// across the tree — core::engine_config, des::estimator_context — can embed
// it without layering cycles.
//
// The plane is opt-in everywhere: `enabled` defaults to false and a default
// config costs nothing. `metrics_port` stays independent of `enabled` so a
// caller can run the sampler without exposing an endpoint (in-process ring
// consumers, benches) — the server starts only when the port is >= 0.
#pragma once

#include <cstddef>
#include <string>

namespace dqn::obs::telemetry {

struct telemetry_config {
  // Master switch for the background sampler (and, with metrics_port >= 0,
  // the exposition server). Off = the plane is never constructed.
  bool enabled = false;
  // Sampling period of the snapshot + resource sampler. Every tick captures
  // one delta snapshot into the ring and refreshes the process.* gauges.
  unsigned sample_period_ms = 250;
  // Bounded ring of timestamped snapshots; 240 samples at the default
  // 250 ms period keeps a one-minute sliding window.
  std::size_t ring_capacity = 240;
  // HTTP exposition endpoint: < 0 = no server, 0 = bind an ephemeral port
  // (read the bound one back from telemetry_plane::metrics_port()), > 0 =
  // bind exactly this port.
  int metrics_port = -1;
  // Listener bind address; loopback by default — exposing run internals on
  // a routable interface is an explicit caller decision.
  std::string bind_address = "127.0.0.1";

  telemetry_config& with_enabled(bool on) noexcept {
    enabled = on;
    return *this;
  }
  telemetry_config& with_sample_period_ms(unsigned ms) noexcept {
    sample_period_ms = ms;
    return *this;
  }
  telemetry_config& with_ring_capacity(std::size_t capacity) noexcept {
    ring_capacity = capacity;
    return *this;
  }
  telemetry_config& with_metrics_port(int port) noexcept {
    metrics_port = port;
    return *this;
  }
  telemetry_config& with_bind_address(std::string address) {
    bind_address = std::move(address);
    return *this;
  }
};

}  // namespace dqn::obs::telemetry
