#include "obs/telemetry/snapshot_ring.hpp"

#include <algorithm>
#include <utility>

namespace dqn::obs::telemetry {

snapshot_ring::snapshot_ring(std::size_t capacity)
    : capacity_{std::max<std::size_t>(capacity, 1)} {}

void snapshot_ring::push(telemetry_sample sample) {
  const util::lock_guard lock{mutex_};
  samples_.push_back(std::move(sample));
  if (samples_.size() > capacity_) samples_.pop_front();
  ++total_pushed_;
}

std::optional<telemetry_sample> snapshot_ring::latest() const {
  const util::lock_guard lock{mutex_};
  if (samples_.empty()) return std::nullopt;
  return samples_.back();
}

std::vector<telemetry_sample> snapshot_ring::window(
    double since_seconds) const {
  const util::lock_guard lock{mutex_};
  std::vector<telemetry_sample> out;
  for (const auto& sample : samples_) {
    if (sample.time_seconds >= since_seconds) out.push_back(sample);
  }
  return out;
}

std::vector<telemetry_sample> snapshot_ring::all() const {
  const util::lock_guard lock{mutex_};
  return {samples_.begin(), samples_.end()};
}

std::size_t snapshot_ring::size() const {
  const util::lock_guard lock{mutex_};
  return samples_.size();
}

std::uint64_t snapshot_ring::total_pushed() const {
  const util::lock_guard lock{mutex_};
  return total_pushed_;
}

void snapshot_ring::clear() {
  const util::lock_guard lock{mutex_};
  samples_.clear();
  total_pushed_ = 0;
}

}  // namespace dqn::obs::telemetry
