// Hierarchical scoped spans: the structured replacement for flat trace
// events. A scoped_span times its scope and, on destruction (or an early
// stop()), records a trace_event carrying a process-unique span id, the id
// of its parent span, and the recording thread's ordinal — chrome_trace.hpp
// turns the result into a Perfetto-loadable timeline.
//
// Parent linkage is automatic within a thread: each thread keeps a stack of
// open spans, and a new span adopts the innermost open one as its parent.
// Across threads (engine partition workers, thread-pool tasks) pass the
// owning span's id() explicitly as the `parent` argument — the thread-local
// stack of the spawning thread is not visible from the worker.
//
// Null-sink cost is one branch in the constructor and one in stop(); no
// clock reads, ids, or allocation happen for a null sink.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/sink.hpp"

namespace dqn::obs {

// Sentinel for "adopt the calling thread's innermost open span".
inline constexpr std::uint64_t auto_parent = ~std::uint64_t{0};

class scoped_span {
 public:
  scoped_span(sink* s, std::string_view stage, std::string_view name,
              std::uint64_t index = 0, double value = 0.0,
              std::uint64_t parent = auto_parent);

  scoped_span(const scoped_span&) = delete;
  scoped_span& operator=(const scoped_span&) = delete;

  ~scoped_span() { stop(); }

  // Update the payload recorded with the event (e.g. a loss computed after
  // construction but before scope exit).
  void set_value(double value) noexcept { value_ = value; }

  // Process-unique id of this span; 0 for a null sink. Pass it as `parent`
  // to spans opened on other threads on this span's behalf.
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  // Record now instead of at scope exit; idempotent. Returns the span's
  // duration in seconds (0 for a null sink or an already-stopped span).
  double stop();

 private:
  sink* sink_;
  std::string stage_;
  std::string name_;
  std::uint64_t index_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  double value_ = 0;
  double start_ = 0;
};

}  // namespace dqn::obs
