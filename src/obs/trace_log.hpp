// Structured trace of per-stage events. Each event is one timed span inside
// a named pipeline stage ("engine" iteration 3, "ptm" epoch 7, "des" run),
// and spans recorded through obs::scoped_span / obs::scoped_timer carry
// hierarchy: a process-unique span id, the id of the enclosing span (0 =
// root), and the recording thread's ordinal — enough to reconstruct the
// run's full timeline (chrome_trace.hpp renders it for Perfetto).
//
// Storage is a mutex-protected ring buffer: when the log is full the oldest
// event is evicted and counted in dropped(), so long-running always-on
// profiling cannot grow memory without bound. The default capacity
// (default_capacity = 2^18 = 262,144 events, tens of MB worst case) is
// generous enough that quickstart-to-bench-scale runs never drop; raise or
// lower it per sink with set_capacity().
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace dqn::obs {

struct trace_event {
  std::string stage;       // pipeline stage, e.g. "engine", "ptm", "des"
  std::string name;        // event within the stage, e.g. "iteration", "epoch"
  std::uint64_t index = 0; // ordinal within the stage (iteration/epoch number)
  double start = 0;        // seconds since the owning sink's epoch
  double duration = 0;     // span length in seconds
  double value = 0;        // stage-specific payload (loss, changed devices, ...)
  // Span structure (scoped_span fills these; flat sink.event() leaves the
  // ids zero but still stamps the recording thread).
  std::uint64_t span_id = 0;   // process-unique id; 0 = not a span
  std::uint64_t parent_id = 0; // enclosing span; 0 = root
  std::uint32_t thread = 0;    // obs::thread_ordinal() of the recorder
};

class trace_log {
 public:
  static constexpr std::size_t default_capacity = std::size_t{1} << 18;

  void record(trace_event event);

  [[nodiscard]] std::vector<trace_event> events() const;
  [[nodiscard]] std::size_t size() const;

  // Ring-buffer bound: events recorded past it evict the oldest entry.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const;
  // Events evicted so far (never reset by eviction; clear() zeroes it).
  [[nodiscard]] std::uint64_t dropped() const;

  // Events of one (stage, name) pair in record order — the "give me the
  // training curve" accessor.
  [[nodiscard]] std::vector<trace_event> events_of(std::string_view stage,
                                                   std::string_view name) const;

  void clear();

 private:
  mutable util::mutex mutex_;
  std::deque<trace_event> events_ DQN_GUARDED_BY(mutex_);
  std::size_t capacity_ DQN_GUARDED_BY(mutex_) = default_capacity;
  std::uint64_t dropped_ DQN_GUARDED_BY(mutex_) = 0;
};

}  // namespace dqn::obs
