// Structured trace of per-stage events: each event is one timed span inside
// a named pipeline stage ("engine" iteration 3, "ptm" epoch 7, "des" run).
// Unlike the metric_registry's aggregates, the trace keeps every event, so a
// run's time structure — per-iteration IRSA timings, per-epoch training
// curves — survives into the JSON export. Appends are mutex-protected.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dqn::obs {

struct trace_event {
  std::string stage;       // pipeline stage, e.g. "engine", "ptm", "des"
  std::string name;        // event within the stage, e.g. "iteration", "epoch"
  std::uint64_t index = 0; // ordinal within the stage (iteration/epoch number)
  double start = 0;        // seconds since the owning sink's epoch
  double duration = 0;     // span length in seconds
  double value = 0;        // stage-specific payload (loss, changed devices, ...)
};

class trace_log {
 public:
  void record(trace_event event);

  [[nodiscard]] std::vector<trace_event> events() const;
  [[nodiscard]] std::size_t size() const;

  // Events of one (stage, name) pair in record order — the "give me the
  // training curve" accessor.
  [[nodiscard]] std::vector<trace_event> events_of(std::string_view stage,
                                                   std::string_view name) const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<trace_event> events_;
};

}  // namespace dqn::obs
