#include "obs/metric_registry.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/annotations.hpp"
#include "util/check.hpp"
#include "util/mutex.hpp"

namespace dqn::obs {

// ---------------------------------------------------------------- moments

double histogram_stats::stddev() const noexcept {
  if (count < 2) return 0.0;
  return std::sqrt(std::max(0.0, m2) / static_cast<double>(count));
}

double histogram_stats::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  return std::clamp(buckets.quantile(q), min, max);
}

void histogram_stats::observe(double value) noexcept {
  buckets.observe(value);
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  const double delta = value - running_mean;
  running_mean += delta / static_cast<double>(count);
  m2 += delta * (value - running_mean);
}

void histogram_stats::merge(const histogram_stats& other) noexcept {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  // Chan's parallel-variance combination — no large-mean cancellation.
  const double na = static_cast<double>(count);
  const double nb = static_cast<double>(other.count);
  const double delta = other.running_mean - running_mean;
  running_mean += delta * nb / (na + nb);
  m2 += other.m2 + delta * delta * na * nb / (na + nb);
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  buckets.merge(other.buckets);
}

// ---------------------------------------------------------------- shards

namespace {

// Threads with ordinal < kShardSlots get an exclusive shard (single-writer
// relaxed atomics); later threads share a mutex-serialized overflow shard,
// so correctness never depends on the process's thread count.
constexpr std::size_t kShardSlots = 128;

// A fixed array of lazily allocated blocks: cells have stable addresses and
// readers traverse concurrently with writers through atomic block pointers.
// Ownership lives in the unique_ptr array; the atomics only publish.
template <typename Cell, std::size_t BlockSize, std::size_t BlockCount>
struct cell_table {
  using block_type = std::array<Cell, BlockSize>;
  static constexpr std::size_t capacity = BlockSize * BlockCount;

  std::array<std::atomic<block_type*>, BlockCount> blocks{};
  util::mutex install_mutex;
  std::array<std::unique_ptr<block_type>, BlockCount> storage
      DQN_GUARDED_BY(install_mutex);

  cell_table() = default;
  cell_table(const cell_table&) = delete;
  cell_table& operator=(const cell_table&) = delete;

  // Cell for `id`, allocating its block on first touch. The hot path is one
  // acquire load; only the first toucher of a block takes the install mutex.
  Cell& at(std::size_t id) noexcept {
    auto& slot = blocks[id / BlockSize];
    block_type* block = slot.load(std::memory_order_acquire);
    if (block == nullptr) {
      const util::lock_guard lock{install_mutex};
      block = slot.load(std::memory_order_relaxed);
      if (block == nullptr) {
        auto& owned = storage[id / BlockSize];
        owned = std::make_unique<block_type>();
        block = owned.get();
        slot.store(block, std::memory_order_release);
      }
    }
    return (*block)[id % BlockSize];
  }

  [[nodiscard]] const Cell* find(std::size_t id) const noexcept {
    const block_type* block =
        blocks[id / BlockSize].load(std::memory_order_acquire);
    return block == nullptr ? nullptr : &(*block)[id % BlockSize];
  }
  [[nodiscard]] Cell* find(std::size_t id) noexcept {
    block_type* block = blocks[id / BlockSize].load(std::memory_order_acquire);
    return block == nullptr ? nullptr : &(*block)[id % BlockSize];
  }
};

// One histogram's per-shard state: bucket counts plus Welford moments. Only
// the owning thread writes (or the overflow mutex serializes writers), so
// updates are relaxed load/store pairs; readers may see a snapshot that is
// mid-update by one sample, which aggregation tolerates.
struct hist_cell {
  std::array<std::atomic<std::uint64_t>, quantile_histogram::bucket_count>
      buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0};
  std::atomic<double> running_mean{0};
  std::atomic<double> m2{0};
  std::atomic<double> min_value{0};
  std::atomic<double> max_value{0};

  DQN_HOT_PATH void observe_exclusive(double value) noexcept {
    auto& bucket = buckets[quantile_histogram::bucket_of(value)];
    bucket.store(bucket.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    const std::uint64_t n = count.load(std::memory_order_relaxed) + 1;
    sum.store(sum.load(std::memory_order_relaxed) + value,
              std::memory_order_relaxed);
    const double old_mean = running_mean.load(std::memory_order_relaxed);
    const double delta = value - old_mean;
    const double new_mean = old_mean + delta / static_cast<double>(n);
    running_mean.store(new_mean, std::memory_order_relaxed);
    m2.store(m2.load(std::memory_order_relaxed) + delta * (value - new_mean),
             std::memory_order_relaxed);
    if (n == 1) {
      min_value.store(value, std::memory_order_relaxed);
      max_value.store(value, std::memory_order_relaxed);
    } else {
      if (value < min_value.load(std::memory_order_relaxed))
        min_value.store(value, std::memory_order_relaxed);
      if (value > max_value.load(std::memory_order_relaxed))
        max_value.store(value, std::memory_order_relaxed);
    }
    count.store(n, std::memory_order_relaxed);
  }

  void accumulate_into(histogram_stats& out) const noexcept {
    histogram_stats part;
    part.count = count.load(std::memory_order_relaxed);
    if (part.count == 0) return;
    part.sum = sum.load(std::memory_order_relaxed);
    part.running_mean = running_mean.load(std::memory_order_relaxed);
    part.m2 = m2.load(std::memory_order_relaxed);
    part.min = min_value.load(std::memory_order_relaxed);
    part.max = max_value.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < quantile_histogram::bucket_count; ++i) {
      const std::uint64_t n = buckets[i].load(std::memory_order_relaxed);
      if (n != 0) part.buckets.add(i, n);
    }
    out.merge(part);
  }

  void reset() noexcept {
    for (auto& bucket : buckets) bucket.store(0, std::memory_order_relaxed);
    count.store(0, std::memory_order_relaxed);
    sum.store(0, std::memory_order_relaxed);
    running_mean.store(0, std::memory_order_relaxed);
    m2.store(0, std::memory_order_relaxed);
    min_value.store(0, std::memory_order_relaxed);
    max_value.store(0, std::memory_order_relaxed);
  }
};

struct metric_shard {
  cell_table<std::atomic<double>, 64, 64> counters;  // up to 4096 counters
  cell_table<hist_cell, 8, 64> hists;                // up to 512 histograms
};

DQN_HOT_PATH void counter_cell_add(std::atomic<double>& cell,
                                   double delta) noexcept {
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

}  // namespace

// ------------------------------------------------------------------- impl

struct metric_registry::impl {
  mutable util::mutex meta_mutex;
  std::unordered_map<std::string, std::uint32_t> counter_ids
      DQN_GUARDED_BY(meta_mutex);
  std::unordered_map<std::string, std::uint32_t> gauge_ids
      DQN_GUARDED_BY(meta_mutex);
  std::unordered_map<std::string, std::uint32_t> hist_ids
      DQN_GUARDED_BY(meta_mutex);
  std::vector<std::string> counter_names DQN_GUARDED_BY(meta_mutex);
  std::vector<std::string> gauge_names DQN_GUARDED_BY(meta_mutex);
  std::vector<std::string> hist_names DQN_GUARDED_BY(meta_mutex);

  // Gauges are last-write-wins, so they need no sharding: shared cells.
  cell_table<std::atomic<double>, 64, 64> gauges;

  std::array<std::atomic<metric_shard*>, kShardSlots> shards{};
  // Each storage entry is written once, by the slot's owning thread; the
  // atomic publishes the pointer to snapshot readers.
  std::array<std::unique_ptr<metric_shard>, kShardSlots> shard_storage;
  // Lock order (clear() takes both): meta_mutex strictly before
  // overflow_mutex. The overflow shard itself is deliberately NOT
  // DQN_GUARDED_BY(overflow_mutex): its cells are atomics, the mutex only
  // serializes *writers*; snapshot readers traverse it lock-free by design
  // (single-writer relaxed cells — same contract as the per-thread shards).
  metric_shard overflow;
  util::mutex overflow_mutex DQN_ACQUIRED_AFTER(meta_mutex);

  // This thread's exclusive shard, or nullptr when the thread ordinal is
  // past the slot table (caller then serializes on the overflow shard).
  metric_shard* exclusive_shard() noexcept {
    const std::uint32_t ordinal = thread_ordinal();
    if (ordinal >= kShardSlots) return nullptr;
    auto& slot = shards[ordinal];
    metric_shard* shard = slot.load(std::memory_order_relaxed);
    if (shard == nullptr) {
      auto& owned = shard_storage[ordinal];
      owned = std::make_unique<metric_shard>();
      shard = owned.get();
      slot.store(shard, std::memory_order_release);
    }
    return shard;
  }

  // Callers hold meta_mutex: ids/names are the guarded maps above, passed by
  // reference to share one body across the three metric kinds.
  std::uint32_t resolve(std::unordered_map<std::string, std::uint32_t>& ids,
                        std::vector<std::string>& names, std::string_view name,
                        std::size_t capacity, const char* kind)
      DQN_REQUIRES(meta_mutex) {
    std::string key{name};
    if (const auto it = ids.find(key); it != ids.end()) return it->second;
    DQN_ENSURE(names.size() < capacity, "metric_registry: too many ", kind,
               " metrics (capacity ", capacity, ") registering '", key, "'");
    const auto id = static_cast<std::uint32_t>(names.size());
    names.push_back(key);
    ids.emplace(std::move(key), id);
    return id;
  }

  template <typename Fn>
  void for_each_shard(Fn&& fn) const {
    for (const auto& slot : shards) {
      if (const metric_shard* shard = slot.load(std::memory_order_acquire))
        fn(*shard);
    }
    fn(overflow);
  }

  [[nodiscard]] double sum_counter(std::uint32_t id) const {
    double total = 0;
    for_each_shard([&](const metric_shard& shard) {
      if (const auto* cell = shard.counters.find(id))
        total += cell->load(std::memory_order_relaxed);
    });
    return total;
  }

  [[nodiscard]] histogram_stats merge_histogram(std::uint32_t id) const {
    histogram_stats out;
    for_each_shard([&](const metric_shard& shard) {
      if (const auto* cell = shard.hists.find(id)) cell->accumulate_into(out);
    });
    return out;
  }
};

metric_registry::metric_registry() : impl_{std::make_unique<impl>()} {}
metric_registry::~metric_registry() = default;

counter_handle metric_registry::counter_handle_for(std::string_view name) {
  const util::lock_guard lock{impl_->meta_mutex};
  const auto id =
      impl_->resolve(impl_->counter_ids, impl_->counter_names, name,
                    decltype(metric_shard::counters)::capacity, "counter");
  return counter_handle{this, id};
}

gauge_handle metric_registry::gauge_handle_for(std::string_view name) {
  const util::lock_guard lock{impl_->meta_mutex};
  const auto id = impl_->resolve(impl_->gauge_ids, impl_->gauge_names, name,
                                decltype(impl::gauges)::capacity, "gauge");
  return gauge_handle{this, id};
}

histogram_handle metric_registry::histogram_handle_for(std::string_view name) {
  const util::lock_guard lock{impl_->meta_mutex};
  const auto id =
      impl_->resolve(impl_->hist_ids, impl_->hist_names, name,
                    decltype(metric_shard::hists)::capacity, "histogram");
  return histogram_handle{this, id};
}

void metric_registry::add(std::string_view name, double delta) {
  counter_handle_for(name).add(delta);
}

void metric_registry::set(std::string_view name, double value) {
  gauge_handle_for(name).set(value);
}

void metric_registry::observe(std::string_view name, double value) {
  histogram_handle_for(name).observe(value);
}

DQN_HOT_PATH void metric_registry::counter_add(std::uint32_t id,
                                               double delta) noexcept {
  impl& im = *impl_;
  if (metric_shard* shard = im.exclusive_shard()) {
    counter_cell_add(shard->counters.at(id), delta);
    return;
  }
  const util::lock_guard lock{im.overflow_mutex};
  counter_cell_add(im.overflow.counters.at(id), delta);
}

DQN_HOT_PATH void metric_registry::gauge_set(std::uint32_t id,
                                             double value) noexcept {
  impl_->gauges.at(id).store(value, std::memory_order_relaxed);
}

DQN_HOT_PATH void metric_registry::histogram_observe(std::uint32_t id,
                                                     double value) noexcept {
  impl& im = *impl_;
  if (metric_shard* shard = im.exclusive_shard()) {
    shard->hists.at(id).observe_exclusive(value);
    return;
  }
  const util::lock_guard lock{im.overflow_mutex};
  im.overflow.hists.at(id).observe_exclusive(value);
}

double metric_registry::counter(std::string_view name) const {
  impl& im = *impl_;
  std::uint32_t id = 0;
  {
    const util::lock_guard lock{im.meta_mutex};
    const auto it = im.counter_ids.find(std::string{name});
    if (it == im.counter_ids.end()) return 0.0;
    id = it->second;
  }
  return im.sum_counter(id);
}

double metric_registry::gauge(std::string_view name) const {
  impl& im = *impl_;
  std::uint32_t id = 0;
  {
    const util::lock_guard lock{im.meta_mutex};
    const auto it = im.gauge_ids.find(std::string{name});
    if (it == im.gauge_ids.end()) return 0.0;
    id = it->second;
  }
  const auto* cell = im.gauges.find(id);
  return cell != nullptr ? cell->load(std::memory_order_relaxed) : 0.0;
}

histogram_stats metric_registry::histogram(std::string_view name) const {
  impl& im = *impl_;
  std::uint32_t id = 0;
  {
    const util::lock_guard lock{im.meta_mutex};
    const auto it = im.hist_ids.find(std::string{name});
    if (it == im.hist_ids.end()) return histogram_stats{};
    id = it->second;
  }
  return im.merge_histogram(id);
}

registry_snapshot metric_registry::snapshot() const {
  impl& im = *impl_;
  std::vector<std::string> counter_names, gauge_names, hist_names;
  {
    const util::lock_guard lock{im.meta_mutex};
    counter_names = im.counter_names;
    gauge_names = im.gauge_names;
    hist_names = im.hist_names;
  }
  registry_snapshot snap;
  for (std::uint32_t id = 0; id < counter_names.size(); ++id)
    snap.counters[counter_names[id]] = im.sum_counter(id);
  for (std::uint32_t id = 0; id < gauge_names.size(); ++id) {
    const auto* cell = im.gauges.find(id);
    snap.gauges[gauge_names[id]] =
        cell != nullptr ? cell->load(std::memory_order_relaxed) : 0.0;
  }
  for (std::uint32_t id = 0; id < hist_names.size(); ++id)
    snap.histograms[hist_names[id]] = im.merge_histogram(id);
  return snap;
}

void metric_registry::clear() {
  impl& im = *impl_;
  const util::lock_guard meta_lock{im.meta_mutex};
  const util::lock_guard overflow_lock{im.overflow_mutex};
  const auto reset_shard = [&](metric_shard& shard) {
    for (std::uint32_t id = 0; id < im.counter_names.size(); ++id) {
      if (auto* cell = shard.counters.find(id))
        cell->store(0.0, std::memory_order_relaxed);
    }
    for (std::uint32_t id = 0; id < im.hist_names.size(); ++id) {
      if (auto* cell = shard.hists.find(id)) cell->reset();
    }
  };
  for (auto& slot : im.shards) {
    if (metric_shard* shard = slot.load(std::memory_order_acquire))
      reset_shard(*shard);
  }
  reset_shard(im.overflow);
  for (std::uint32_t id = 0; id < im.gauge_names.size(); ++id) {
    if (auto* cell = im.gauges.find(id))
      cell->store(0.0, std::memory_order_relaxed);
  }
}

}  // namespace dqn::obs
