#include "obs/metric_registry.hpp"

#include <algorithm>
#include <cmath>

namespace dqn::obs {

double histogram_stats::stddev() const noexcept {
  if (count < 2) return 0.0;
  const double n = static_cast<double>(count);
  const double var = std::max(0.0, sum_sq / n - (sum / n) * (sum / n));
  return std::sqrt(var);
}

void histogram_stats::observe(double value) noexcept {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  sum_sq += value * value;
}

void histogram_stats::merge(const histogram_stats& other) noexcept {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  sum_sq += other.sum_sq;
}

void metric_registry::add(std::string_view name, double delta) {
  const std::lock_guard lock{mutex_};
  data_.counters[std::string{name}] += delta;
}

void metric_registry::set(std::string_view name, double value) {
  const std::lock_guard lock{mutex_};
  data_.gauges[std::string{name}] = value;
}

void metric_registry::observe(std::string_view name, double value) {
  const std::lock_guard lock{mutex_};
  data_.histograms[std::string{name}].observe(value);
}

double metric_registry::counter(std::string_view name) const {
  const std::lock_guard lock{mutex_};
  const auto it = data_.counters.find(std::string{name});
  return it != data_.counters.end() ? it->second : 0.0;
}

double metric_registry::gauge(std::string_view name) const {
  const std::lock_guard lock{mutex_};
  const auto it = data_.gauges.find(std::string{name});
  return it != data_.gauges.end() ? it->second : 0.0;
}

histogram_stats metric_registry::histogram(std::string_view name) const {
  const std::lock_guard lock{mutex_};
  const auto it = data_.histograms.find(std::string{name});
  return it != data_.histograms.end() ? it->second : histogram_stats{};
}

registry_snapshot metric_registry::snapshot() const {
  const std::lock_guard lock{mutex_};
  return data_;
}

void metric_registry::clear() {
  const std::lock_guard lock{mutex_};
  data_ = {};
}

}  // namespace dqn::obs
