#include "obs/contracts.hpp"

#include <atomic>
#include <string>

#include "util/check.hpp"

namespace dqn::obs {

namespace {

std::atomic<sink*> g_contract_sink{nullptr};

void count_violation(const util::contract_failure_info& info) {
  if (sink* const s = g_contract_sink.load(std::memory_order_acquire);
      s != nullptr) {
    s->count("contracts.violations");
    s->count(std::string{"contracts.violations."} + info.kind);
  }
}

}  // namespace

void install_contract_counter(sink& s) noexcept {
  g_contract_sink.store(&s, std::memory_order_release);
  util::set_contract_observer(&count_violation);
}

void remove_contract_counter() noexcept {
  g_contract_sink.store(nullptr, std::memory_order_release);
  const util::contract_observer prev = util::set_contract_observer(nullptr);
  if (prev != nullptr && prev != &count_violation) {
    // Someone else's observer replaced ours in the meantime; put it back.
    util::set_contract_observer(prev);
  }
}

}  // namespace dqn::obs
