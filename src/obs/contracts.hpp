// Bridges util's contract layer into the obs layer: installing a sink here
// registers a contract observer that bumps the `contracts.violations` counter
// (and a per-kind counter, e.g. `contracts.violations.range`) on every
// contract failure, whatever the active failure mode. Under
// contract_mode::log_and_continue this is how soak runs surface near-misses
// without dying on them.
#pragma once

#include "obs/sink.hpp"

namespace dqn::obs {

// Start counting contract violations into `s`. Replaces any previously
// installed contract observer (there is one global observer slot; the obs
// bridge owns it once installed).
void install_contract_counter(sink& s) noexcept;

// Stop counting; the observer slot is cleared only if the bridge still owns
// it, so an unrelated observer installed afterwards is left untouched.
void remove_contract_counter() noexcept;

}  // namespace dqn::obs
