// obs::sink — the one handle instrumented code carries. It bundles a
// metric_registry (aggregates), a trace_log (hierarchical span events), a
// journey_tracer (sampled per-packet paths), and a shared time base
// (seconds since sink construction) so events from the engine, the DES, and
// PTM training land on one timeline.
//
// The convention throughout the repo: config structs carry an optional
// `obs::sink*` that defaults to nullptr, and every instrumentation site is
// guarded by that pointer — a null sink costs one predictable branch
// (see tests/test_obs.cpp's overhead check). The sink itself is thread-safe;
// pass the same instance to concurrent stages freely.
//
// Hot paths should pre-resolve metric handles (counter_handle_for and
// friends) once and record through them lock-free; the string-keyed
// count/gauge/observe calls below remain as the compatibility path. This is
// enforced, not advisory: scripts/ast_lint.py rejects string-keyed sink
// calls (and handle resolution) inside any DQN_HOT_PATH function — see
// docs/CONCURRENCY.md §hot-path discipline.
//
// Exports: `to_json()` emits the full snapshot (counters, gauges,
// histograms with quantiles, events, journeys) as a JSON document;
// `to_chrome_trace()` renders the span timeline for chrome://tracing /
// Perfetto; `summary_table()` renders the aggregate metrics as a
// util::text_table for terminal output.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "obs/journey.hpp"
#include "obs/metric_registry.hpp"
#include "obs/telemetry/run_ledger.hpp"
#include "obs/trace_log.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace dqn::obs {

namespace telemetry {
class telemetry_plane;
struct telemetry_config;
}  // namespace telemetry

class sink {
 public:
  sink();
  ~sink();  // stops any live telemetry plane before members tear down

  sink(const sink&) = delete;
  sink& operator=(const sink&) = delete;

  // Seconds since this sink was constructed — the epoch for event starts.
  [[nodiscard]] double now() const noexcept { return epoch_.elapsed_seconds(); }

  void count(std::string_view name, double delta = 1.0) {
    metrics_.add(name, delta);
  }
  void gauge(std::string_view name, double value) { metrics_.set(name, value); }
  void observe(std::string_view name, double value) {
    metrics_.observe(name, value);
  }
  void event(std::string_view stage, std::string_view name, std::uint64_t index,
             double start, double duration, double value = 0.0) {
    trace_.record({std::string{stage}, std::string{name}, index, start,
                   duration, value, 0, 0, thread_ordinal()});
  }

  // Pre-registered lock-free handles (see handles.hpp); resolve once
  // outside the hot loop, then record without taking any lock.
  [[nodiscard]] counter_handle counter_handle_for(std::string_view name) {
    return metrics_.counter_handle_for(name);
  }
  [[nodiscard]] gauge_handle gauge_handle_for(std::string_view name) {
    return metrics_.gauge_handle_for(name);
  }
  [[nodiscard]] histogram_handle histogram_handle_for(std::string_view name) {
    return metrics_.histogram_handle_for(name);
  }

  [[nodiscard]] metric_registry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const metric_registry& metrics() const noexcept { return metrics_; }
  [[nodiscard]] trace_log& trace() noexcept { return trace_; }
  [[nodiscard]] const trace_log& trace() const noexcept { return trace_; }
  [[nodiscard]] journey_tracer& journeys() noexcept { return journeys_; }
  [[nodiscard]] const journey_tracer& journeys() const noexcept {
    return journeys_;
  }

  // Bounded ledger of completed estimator executions. Always present (no
  // plane needed) so every run(run_request) can record; the /runs endpoint
  // reads it when a plane is serving.
  [[nodiscard]] telemetry::run_ledger& runs() noexcept { return runs_; }
  [[nodiscard]] const telemetry::run_ledger& runs() const noexcept {
    return runs_;
  }

  // Start the live telemetry plane (background sampler + optional /metrics
  // server — see obs/telemetry/telemetry.hpp) against this sink. Idempotent:
  // a plane that is already running is returned as-is; a config with
  // enabled == false is a no-op returning nullptr. Throws std::runtime_error
  // when an exposition port is requested but cannot be bound.
  telemetry::telemetry_plane* start_telemetry(
      const telemetry::telemetry_config& config);
  // Stop and destroy the plane (final sampler tick included); no-op when
  // none is running.
  void stop_telemetry();
  // The live plane, or nullptr.
  [[nodiscard]] telemetry::telemetry_plane* telemetry_plane() noexcept;

  // Full snapshot as one JSON document:
  //   {"counters": {...}, "gauges": {...}, "histograms": {...},
  //    "events": [...], "journeys": [...]}
  // Histogram objects carry p50/p90/p99/p999 next to the moments, the
  // counters map includes "trace.dropped" (ring-buffer evictions), and
  // events carry span_id/parent_id/thread — all additive next to the
  // original keys, so existing consumers keep parsing.
  [[nodiscard]] std::string to_json() const;

  // The span timeline as Chrome trace-event JSON (chrome_trace.hpp).
  [[nodiscard]] std::string to_chrome_trace() const;

  // Aggregate metrics (no events) as a rendered table. When events were
  // dropped (trace.dropped > 0) or contracts were violated
  // (contracts.violations > 0) the table carries a WARNING footer — a
  // summary that silently hides data loss is worse than none.
  [[nodiscard]] util::text_table summary_table() const;

  void clear() {
    metrics_.clear();
    trace_.clear();
    journeys_.clear();
    runs_.clear();
  }

 private:
  util::stopwatch epoch_;
  metric_registry metrics_;
  trace_log trace_;
  journey_tracer journeys_;
  telemetry::run_ledger runs_;
  util::mutex telemetry_mutex_;
  std::unique_ptr<telemetry::telemetry_plane> telemetry_
      DQN_GUARDED_BY(telemetry_mutex_);
};

}  // namespace dqn::obs
