// Chrome trace-event exporter: renders a trace_log's events as the JSON
// Trace Event Format consumed by chrome://tracing and ui.perfetto.dev.
// Every event becomes a complete ("ph":"X") slice with microsecond ts/dur,
// the recording thread's ordinal as tid, and span/parent ids under "args" —
// one dqn_network::run renders as a timeline of IRSA iterations fanning out
// into per-device PTM inference across partition worker threads.
#pragma once

#include <string>
#include <vector>

#include "obs/trace_log.hpp"

namespace dqn::obs {

[[nodiscard]] std::string to_chrome_trace(const std::vector<trace_event>& events);

}  // namespace dqn::obs
