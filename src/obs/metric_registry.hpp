// Named metric store for the observability layer (obs): counters (monotone
// sums), gauges (last-write-wins), and quantile histograms (Welford moments
// + log-bucketed percentiles).
//
// Two recording paths share one store:
//  * handles (handles.hpp) — resolved once, then lock-free: counter and
//    histogram cells live in per-thread shards of relaxed atomics that only
//    their owning thread writes; gauges are shared atomic cells
//    (last-write-wins needs no sharding). This is the hot path.
//  * the string-keyed API below — the compatibility path: each call resolves
//    the name to a handle under the meta mutex, then records through the
//    same shard machinery.
//
// snapshot() aggregates the shards into plain data (ordered maps keep JSON
// and table output deterministic) so exporters never block recorders while
// formatting. clear() zeroes every cell but keeps registrations, so issued
// handles stay valid across clears.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "obs/handles.hpp"
#include "obs/quantile_histogram.hpp"

namespace dqn::obs {

// Aggregated view of one histogram: exact count/sum/min/max, Welford-style
// running moments for a numerically stable stddev (stable even for
// mean ~ 1e9 with stddev ~ 1, where the old count/sum/sum_sq formulation
// cancels catastrophically), and log-scale buckets for quantiles.
struct histogram_stats {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  // Welford running moments (public so shard aggregation can fill them, but
  // observe()/merge() are the intended mutators).
  double running_mean = 0;
  double m2 = 0;  // sum of squared deviations from the running mean
  quantile_histogram buckets;

  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;

  // Quantile estimate from the log buckets, clamped to the exact observed
  // [min, max]; q in [0, 1]. Resolution is ~3% relative (quantile_histogram).
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p90() const noexcept { return quantile(0.90); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }
  [[nodiscard]] double p999() const noexcept { return quantile(0.999); }

  void observe(double value) noexcept;
  void merge(const histogram_stats& other) noexcept;
};

// Plain-data view of the registry at one instant. Every registered metric
// appears (a pre-registered handle that never recorded reads as zero/empty).
struct registry_snapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, histogram_stats> histograms;
};

class metric_registry {
 public:
  metric_registry();
  ~metric_registry();
  metric_registry(const metric_registry&) = delete;
  metric_registry& operator=(const metric_registry&) = delete;

  // ---- handle path (hot): resolve once, record lock-free ----
  [[nodiscard]] counter_handle counter_handle_for(std::string_view name);
  [[nodiscard]] gauge_handle gauge_handle_for(std::string_view name);
  [[nodiscard]] histogram_handle histogram_handle_for(std::string_view name);

  // ---- string-keyed path (compat): resolves to a handle per call ----
  void add(std::string_view name, double delta = 1.0);
  void set(std::string_view name, double value);
  void observe(std::string_view name, double value);

  [[nodiscard]] double counter(std::string_view name) const;
  [[nodiscard]] double gauge(std::string_view name) const;
  [[nodiscard]] histogram_stats histogram(std::string_view name) const;

  [[nodiscard]] registry_snapshot snapshot() const;

  // Zero every cell; registrations (and issued handles) survive.
  void clear();

 private:
  friend class counter_handle;
  friend class gauge_handle;
  friend class histogram_handle;
  void counter_add(std::uint32_t id, double delta) noexcept;
  void gauge_set(std::uint32_t id, double value) noexcept;
  void histogram_observe(std::uint32_t id, double value) noexcept;

  struct impl;
  std::unique_ptr<impl> impl_;
};

}  // namespace dqn::obs
