// Named metric store for the observability layer (obs): counters (monotone
// sums), gauges (last-write-wins), and histograms (streaming count / sum /
// min / max / sum-of-squares). All mutation paths are mutex-protected so the
// engine's partition workers, the DES, and PTM training can record into one
// registry concurrently; reads take a consistent snapshot.
//
// The registry is deliberately value-oriented: a snapshot is plain data that
// json.hpp and sink.hpp render, so exporters never hold the lock while
// formatting.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace dqn::obs {

// Streaming histogram moments; enough for mean/stddev and range without
// storing samples (per-sample detail belongs in the trace_log).
struct histogram_stats {
  std::uint64_t count = 0;
  double sum = 0;
  double sum_sq = 0;
  double min = 0;
  double max = 0;

  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;

  void observe(double value) noexcept;
  void merge(const histogram_stats& other) noexcept;
};

// Plain-data view of the registry at one instant (ordered maps keep JSON and
// table output deterministic).
struct registry_snapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, histogram_stats> histograms;
};

class metric_registry {
 public:
  // Add `delta` to the named counter (created at zero on first use).
  void add(std::string_view name, double delta = 1.0);

  // Set the named gauge to `value`.
  void set(std::string_view name, double value);

  // Record one sample into the named histogram.
  void observe(std::string_view name, double value);

  [[nodiscard]] double counter(std::string_view name) const;
  [[nodiscard]] double gauge(std::string_view name) const;
  [[nodiscard]] histogram_stats histogram(std::string_view name) const;

  [[nodiscard]] registry_snapshot snapshot() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  registry_snapshot data_;
};

}  // namespace dqn::obs
