#include "obs/chrome_trace.hpp"

#include "obs/json.hpp"

namespace dqn::obs {

std::string to_chrome_trace(const std::vector<trace_event>& events) {
  std::string out = R"({"displayTimeUnit":"ms","traceEvents":[)";
  bool first = true;
  for (const auto& ev : events) {
    if (!first) out += ',';
    first = false;
    out += R"({"name":")" + json_escape(ev.name) + '"';
    out += R"(,"cat":")" + json_escape(ev.stage) + '"';
    out += R"(,"ph":"X")";
    out += ",\"ts\":" + json_number(ev.start * 1e6);
    out += ",\"dur\":" + json_number(ev.duration * 1e6);
    out += ",\"pid\":1";
    out += ",\"tid\":" + json_number(static_cast<double>(ev.thread));
    out += ",\"args\":{";
    out += "\"index\":" + json_number(static_cast<double>(ev.index));
    out += ",\"value\":" + json_number(ev.value);
    out += ",\"span_id\":" + json_number(static_cast<double>(ev.span_id));
    out += ",\"parent_id\":" + json_number(static_cast<double>(ev.parent_id));
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace dqn::obs
