#include "obs/journey.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dqn::obs {
namespace {

// splitmix64 finalizer — cheap, well-mixed, and stable across platforms.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void journey_tracer::configure(double sample_rate, std::uint64_t seed) {
  seed_ = seed;
  if (!(sample_rate > 0.0)) {
    threshold_ = 0;
  } else if (sample_rate >= 1.0) {
    threshold_ = std::numeric_limits<std::uint64_t>::max();
  } else {
    threshold_ = static_cast<std::uint64_t>(
        std::ldexp(sample_rate, 64));
  }
}

bool journey_tracer::sampled(std::uint64_t pid) const noexcept {
  if (threshold_ == 0) return false;
  if (threshold_ == std::numeric_limits<std::uint64_t>::max()) return true;
  return mix(pid ^ seed_) < threshold_;
}

void journey_tracer::record_send(std::uint64_t pid, std::uint64_t flow,
                                 double time) {
  const util::lock_guard lock{mutex_};
  auto& journey = journeys_[pid];
  journey.pid = pid;
  journey.flow = flow;
  journey.send_time = time;
}

void journey_tracer::record_hop(std::uint64_t pid, const journey_hop& hop) {
  const util::lock_guard lock{mutex_};
  auto& journey = journeys_[pid];
  journey.pid = pid;
  for (auto& existing : journey.hops) {
    if (existing.device == hop.device) {
      existing = hop;  // IRSA re-run of the same device: converged value wins
      return;
    }
  }
  journey.hops.push_back(hop);
}

void journey_tracer::record_delivery(std::uint64_t pid, double time) {
  const util::lock_guard lock{mutex_};
  auto& journey = journeys_[pid];
  journey.pid = pid;
  journey.delivery_time = time;
}

std::vector<packet_journey> journey_tracer::journeys() const {
  const util::lock_guard lock{mutex_};
  std::vector<packet_journey> out;
  out.reserve(journeys_.size());
  // dqn-order-insensitive: the snapshot is fully re-sorted by pid directly
  // below, so the collection order never reaches a consumer.
  for (const auto& [pid, journey] : journeys_) out.push_back(journey);
  std::sort(out.begin(), out.end(),
            [](const packet_journey& a, const packet_journey& b) {
              return a.pid < b.pid;
            });
  for (auto& journey : out)
    std::sort(journey.hops.begin(), journey.hops.end(),
              [](const journey_hop& a, const journey_hop& b) {
                return a.arrival < b.arrival;
              });
  return out;
}

std::size_t journey_tracer::size() const {
  const util::lock_guard lock{mutex_};
  return journeys_.size();
}

void journey_tracer::clear() {
  const util::lock_guard lock{mutex_};
  journeys_.clear();
}

}  // namespace dqn::obs
