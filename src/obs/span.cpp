#include "obs/span.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "obs/handles.hpp"

namespace dqn::obs {
namespace {

// Span ids are process-unique (not per-sink) so parent links stay
// unambiguous even if multiple sinks are live in one process.
std::uint64_t next_span_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Per-thread stack of open span ids, for auto_parent resolution. Spans
// normally close LIFO (they are scope-bound), but an explicit out-of-order
// stop() is tolerated: pop removes the matching id wherever it sits.
std::vector<std::uint64_t>& open_spans() noexcept {
  thread_local std::vector<std::uint64_t> stack;
  return stack;
}

std::uint64_t innermost_open_span() noexcept {
  const auto& stack = open_spans();
  return stack.empty() ? 0 : stack.back();
}

void push_open_span(std::uint64_t id) { open_spans().push_back(id); }

void pop_open_span(std::uint64_t id) noexcept {
  auto& stack = open_spans();
  if (!stack.empty() && stack.back() == id) {
    stack.pop_back();
    return;
  }
  const auto it = std::find(stack.rbegin(), stack.rend(), id);
  if (it != stack.rend()) stack.erase(std::next(it).base());
}

}  // namespace

scoped_span::scoped_span(sink* s, std::string_view stage,
                         std::string_view name, std::uint64_t index,
                         double value, std::uint64_t parent)
    : sink_{s} {
  if (sink_ == nullptr) return;
  stage_ = stage;
  name_ = name;
  index_ = index;
  value_ = value;
  id_ = next_span_id();
  parent_ = parent == auto_parent ? innermost_open_span() : parent;
  push_open_span(id_);
  start_ = sink_->now();
}

double scoped_span::stop() {
  if (sink_ == nullptr) return 0.0;
  const double seconds = sink_->now() - start_;
  pop_open_span(id_);
  sink_->trace().record({std::move(stage_), std::move(name_), index_, start_,
                         seconds, value_, id_, parent_, thread_ordinal()});
  sink_ = nullptr;
  return seconds;
}

}  // namespace dqn::obs
