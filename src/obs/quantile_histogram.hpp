// Log-bucketed quantile histogram: fixed-size bucket array over a geometric
// grid (16 sub-buckets per octave, exponents 2^-40 .. 2^24), giving ~3%
// relative quantile resolution over ~19 decades of positive values with no
// per-sample allocation. This is what lets the obs layer report tail
// latency (p99/p99.9 — the metric the paper evaluates with W1 distance)
// from an always-on histogram instead of stored samples.
//
// Values below the grid (including zero and negatives) land in the
// underflow bucket, values above it in the overflow bucket; their quantile
// estimates degrade to the grid edges, so callers that track exact min/max
// (histogram_stats does) should clamp the returned quantile to [min, max].
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace dqn::obs {

class quantile_histogram {
 public:
  // Grid geometry: 64 octaves x 16 linear sub-buckets, plus underflow (index
  // 0) and overflow (last index).
  static constexpr int min_exponent = -40;  // 2^-40 ~ 9.1e-13
  static constexpr int max_exponent = 24;   // 2^24  ~ 1.7e7
  static constexpr std::size_t sub_buckets = 16;
  static constexpr std::size_t bucket_count =
      static_cast<std::size_t>(max_exponent - min_exponent) * sub_buckets + 2;

  // Bucket index of `value` (total function; never out of range).
  [[nodiscard]] static std::size_t bucket_of(double value) noexcept;
  // Representative value of bucket `index` (its geometric interior point).
  [[nodiscard]] static double bucket_value(std::size_t index) noexcept;

  void observe(double value) noexcept { add(bucket_of(value), 1); }
  void add(std::size_t bucket, std::uint64_t count) noexcept;
  void merge(const quantile_histogram& other) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  // Raw count of bucket `index` (callers iterate [0, bucket_count) — the
  // Prometheus exposition accumulates these into coarse `le` buckets).
  [[nodiscard]] std::uint64_t count_at(std::size_t index) const noexcept {
    return index < bucket_count ? counts_[index] : 0;
  }

  // Quantile estimate for q in [0, 1]: the representative value of the
  // bucket holding the ceil(q * total)-th sample. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  void clear() noexcept;

 private:
  std::array<std::uint64_t, bucket_count> counts_{};
  std::uint64_t total_ = 0;
};

}  // namespace dqn::obs
