// Minimal JSON helpers for the obs exporters: string escaping, a
// non-finite-safe number formatter, and a strict syntax validator used by
// tests (and by anything that wants to sanity-check a snapshot before
// shipping it). This is a writer + checker, not a DOM — the repo has no
// JSON dependency and does not need one.
#pragma once

#include <string>
#include <string_view>

namespace dqn::obs {

// Escape `text` for use inside a JSON string literal (quotes not included).
[[nodiscard]] std::string json_escape(std::string_view text);

// Render `value` as a JSON number; NaN and +/-inf (not representable in
// JSON) become null.
[[nodiscard]] std::string json_number(double value);

// Strict recursive-descent syntax check of a complete JSON document.
[[nodiscard]] bool json_is_valid(std::string_view text);

}  // namespace dqn::obs
