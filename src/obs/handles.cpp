#include "obs/handles.hpp"

#include <atomic>

#include "obs/metric_registry.hpp"

namespace dqn::obs {

DQN_HOT_PATH std::uint32_t thread_ordinal() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

DQN_HOT_PATH void counter_handle::record(double delta) noexcept {
  registry_->counter_add(id_, delta);
}

DQN_HOT_PATH void gauge_handle::record(double value) noexcept {
  registry_->gauge_set(id_, value);
}

DQN_HOT_PATH void histogram_handle::record(double value) noexcept {
  registry_->histogram_observe(id_, value);
}

}  // namespace dqn::obs
