#include "obs/trace_log.hpp"

#include <algorithm>

namespace dqn::obs {

void trace_log::record(trace_event event) {
  const util::lock_guard lock{mutex_};
  events_.push_back(std::move(event));
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

std::vector<trace_event> trace_log::events() const {
  const util::lock_guard lock{mutex_};
  return {events_.begin(), events_.end()};
}

std::size_t trace_log::size() const {
  const util::lock_guard lock{mutex_};
  return events_.size();
}

void trace_log::set_capacity(std::size_t capacity) {
  const util::lock_guard lock{mutex_};
  capacity_ = std::max<std::size_t>(capacity, 1);
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

std::size_t trace_log::capacity() const {
  const util::lock_guard lock{mutex_};
  return capacity_;
}

std::uint64_t trace_log::dropped() const {
  const util::lock_guard lock{mutex_};
  return dropped_;
}

std::vector<trace_event> trace_log::events_of(std::string_view stage,
                                              std::string_view name) const {
  const util::lock_guard lock{mutex_};
  std::vector<trace_event> out;
  for (const auto& ev : events_)
    if (ev.stage == stage && ev.name == name) out.push_back(ev);
  return out;
}

void trace_log::clear() {
  const util::lock_guard lock{mutex_};
  events_.clear();
  dropped_ = 0;
}

}  // namespace dqn::obs
