#include "obs/trace_log.hpp"

namespace dqn::obs {

void trace_log::record(trace_event event) {
  const std::lock_guard lock{mutex_};
  events_.push_back(std::move(event));
}

std::vector<trace_event> trace_log::events() const {
  const std::lock_guard lock{mutex_};
  return events_;
}

std::size_t trace_log::size() const {
  const std::lock_guard lock{mutex_};
  return events_.size();
}

std::vector<trace_event> trace_log::events_of(std::string_view stage,
                                              std::string_view name) const {
  const std::lock_guard lock{mutex_};
  std::vector<trace_event> out;
  for (const auto& ev : events_)
    if (ev.stage == stage && ev.name == name) out.push_back(ev);
  return out;
}

void trace_log::clear() {
  const std::lock_guard lock{mutex_};
  events_.clear();
}

}  // namespace dqn::obs
