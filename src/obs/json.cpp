#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace dqn::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  // %.17g round-trips doubles; trim to something readable when exact.
  std::snprintf(buf, sizeof buf, "%.12g", value);
  return buf;
}

namespace {

// Recursive-descent validator. `pos` always points at the next unconsumed
// character; every parse_* returns false on malformed input.
struct validator {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int max_depth = 256;

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool parse_literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool parse_string() {
    if (!consume('"')) return false;
    while (pos < text.size()) {
      const char c = text[pos];
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return false;
        const char esc = text[pos];
        if (esc == 'u') {
          if (pos + 4 >= text.size()) return false;
          for (int i = 1; i <= 4; ++i)
            if (!std::isxdigit(static_cast<unsigned char>(text[pos + i])))
              return false;
          pos += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos;
    }
    return false;
  }

  bool parse_number() {
    const std::size_t begin = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos])))
      return false;
    if (text[pos] == '0') {
      ++pos;
    } else {
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos])))
        return false;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos])))
        return false;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    return pos > begin;
  }

  bool parse_value() {
    if (++depth > max_depth) return false;
    skip_ws();
    bool ok = false;
    if (pos >= text.size()) {
      ok = false;
    } else if (text[pos] == '{') {
      ok = parse_object();
    } else if (text[pos] == '[') {
      ok = parse_array();
    } else if (text[pos] == '"') {
      ok = parse_string();
    } else if (text[pos] == 't') {
      ok = parse_literal("true");
    } else if (text[pos] == 'f') {
      ok = parse_literal("false");
    } else if (text[pos] == 'n') {
      ok = parse_literal("null");
    } else {
      ok = parse_number();
    }
    --depth;
    return ok;
  }

  bool parse_object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      if (!parse_string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      if (!parse_value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      if (!parse_value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
};

}  // namespace

bool json_is_valid(std::string_view text) {
  validator v{text};
  if (!v.parse_value()) return false;
  v.skip_ws();
  return v.pos == text.size();
}

}  // namespace dqn::obs
