// TGUtil (§3.1.1): the traffic-generator factory. Users specify flows and a
// traffic model; TGUtil instantiates per-flow generators (TGens) that
// produce ingress packet streams for the simulators. Trace-based models
// (BC-pAug89 / Anarchy stand-ins, or any recorded IAT list) go through the
// same interface a parsed PCAP would.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "traffic/arrivals.hpp"
#include "traffic/packet.hpp"
#include "traffic/packet_size.hpp"
#include "util/rng.hpp"

namespace dqn::traffic {

enum class traffic_model : std::uint8_t {
  poisson,
  onoff,
  map,
  bc_paug89,  // synthetic stand-in, replayed through trace_arrivals
  anarchy,    // synthetic stand-in, replayed through trace_arrivals
};

[[nodiscard]] const char* to_string(traffic_model model) noexcept;

struct flow_spec {
  std::uint32_t flow_id = 0;
  std::int32_t src_host = -1;
  std::int32_t dst_host = -1;
  std::uint8_t priority = 0;  // SP class, 0 = highest
  std::uint16_t weight = 1;   // WFQ/WRR/DRR weight
  std::uint8_t protocol = 17;
};

// One TGen: produces the packet stream of a single flow.
class traffic_generator {
 public:
  traffic_generator(flow_spec flow, std::unique_ptr<arrival_process> arrivals,
                    std::unique_ptr<packet_size_model> sizes);

  // Generate arrivals in [0, horizon). pid numbering continues from
  // *next_pid, which is advanced.
  [[nodiscard]] packet_stream generate(double horizon, util::rng& rng,
                                       std::uint64_t& next_pid);

  [[nodiscard]] const flow_spec& flow() const noexcept { return flow_; }
  [[nodiscard]] double mean_rate() const { return arrivals_->mean_rate(); }

 private:
  flow_spec flow_;
  std::unique_ptr<arrival_process> arrivals_;
  std::unique_ptr<packet_size_model> sizes_;
};

struct tg_util_config {
  traffic_model model = traffic_model::poisson;
  double per_flow_rate = 1000;  // packets per second
  // For onoff: slot time is derived from per_flow_rate and P(on).
  // For map: a randomly perturbed MMPP2 per flow with the requested rate.
  std::uint64_t seed = 42;
};

// TGUtil factory: builds one TGen per flow.
[[nodiscard]] std::vector<traffic_generator> make_generators(
    const std::vector<flow_spec>& flows, const tg_util_config& config);

// Uniform-random flow set: one flow per (ordered) host picked uniformly at
// random among the others (§6.1: "sources and destinations ... selected
// uniformly at random"). Weights in 1..9 and priorities in 0..classes-1 are
// assigned uniformly (§5.2).
[[nodiscard]] std::vector<flow_spec> make_uniform_flows(std::size_t hosts,
                                                        std::size_t classes,
                                                        util::rng& rng);

// Generate and merge the streams of all flows sharing a source host.
[[nodiscard]] std::vector<packet_stream> per_host_streams(
    std::vector<traffic_generator>& generators, std::size_t hosts, double horizon,
    util::rng& rng);

}  // namespace dqn::traffic
