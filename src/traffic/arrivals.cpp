#include "traffic/arrivals.hpp"

#include <numeric>
#include <stdexcept>

namespace dqn::traffic {

poisson_arrivals::poisson_arrivals(double lambda) : lambda_{lambda} {
  if (lambda <= 0) throw std::invalid_argument{"poisson_arrivals: lambda must be > 0"};
}

double poisson_arrivals::next_interarrival(util::rng& rng) {
  return rng.exponential(lambda_);
}

onoff_arrivals::onoff_arrivals(double slot_seconds, double p_on_to_off,
                               double p_off_to_on)
    : slot_{slot_seconds}, p_on_off_{p_on_to_off}, p_off_on_{p_off_to_on} {
  if (slot_seconds <= 0)
    throw std::invalid_argument{"onoff_arrivals: slot must be > 0"};
  if (p_on_to_off <= 0 || p_on_to_off > 1 || p_off_to_on <= 0 || p_off_to_on > 1)
    throw std::invalid_argument{"onoff_arrivals: transition probabilities in (0,1]"};
}

double onoff_arrivals::next_interarrival(util::rng& rng) {
  // Walk slot-by-slot; emit on each On slot (including state re-entry).
  double gap = 0;
  for (;;) {
    // Transition at the slot boundary.
    if (on_) {
      if (rng.bernoulli(p_on_off_)) on_ = false;
    } else {
      if (rng.bernoulli(p_off_on_)) on_ = true;
    }
    gap += slot_;
    if (on_) return gap;
  }
}

double onoff_arrivals::mean_rate() const {
  // Stationary P(on) of the two-state slot chain.
  const double p_on = p_off_on_ / (p_on_off_ + p_off_on_);
  return p_on / slot_;
}

void onoff_arrivals::reset(util::rng& rng) { on_ = rng.bernoulli(0.5); }

map_arrivals::map_arrivals(queueing::map_process process, util::rng& rng)
    : process_{std::move(process)},
      rate_{process_.mean_rate()},
      state_{process_.sample_initial_state(rng)} {}

double map_arrivals::next_interarrival(util::rng& rng) {
  return process_.sample_iat(state_, rng);
}

void map_arrivals::reset(util::rng& rng) {
  state_ = process_.sample_initial_state(rng);
}

trace_arrivals::trace_arrivals(std::vector<double> iats) : iats_{std::move(iats)} {
  if (iats_.empty()) throw std::invalid_argument{"trace_arrivals: empty trace"};
  for (double iat : iats_)
    if (iat < 0) throw std::invalid_argument{"trace_arrivals: negative IAT"};
  const double total = std::accumulate(iats_.begin(), iats_.end(), 0.0);
  if (total <= 0) throw std::invalid_argument{"trace_arrivals: zero-length trace"};
  rate_ = static_cast<double>(iats_.size()) / total;
}

double trace_arrivals::next_interarrival(util::rng&) {
  const double iat = iats_[position_];
  position_ = (position_ + 1) % iats_.size();
  return iat;
}

}  // namespace dqn::traffic
