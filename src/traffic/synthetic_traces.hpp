// Synthetic stand-ins for the two public traces the paper replays
// (BC-pAug89 from Bellcore and the Anarchy Online gaming trace). We do not
// ship the original datasets; instead we generate traces with the same
// statistical character, exposed through the identical trace-replay
// interface (DESIGN.md §2 records this substitution):
//
//  * BC-pAug89: Ethernet LAN traffic famous for self-similarity. We
//    superpose many On-Off sources with Pareto-distributed On/Off periods
//    (the classical construction that yields long-range dependence).
//  * Anarchy: game-server uplink — quasi-periodic state updates with jitter,
//    punctuated by heavy-tailed activity bursts.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace dqn::traffic {

struct synthetic_trace {
  std::vector<double> iats;        // seconds
  std::vector<std::uint32_t> sizes;  // bytes
};

// n packets of LAN-like self-similar traffic with the given mean rate.
[[nodiscard]] synthetic_trace make_bc_paug89_like(std::size_t n, double mean_rate,
                                                  util::rng& rng);

// n packets of game-uplink-like traffic with the given mean rate.
[[nodiscard]] synthetic_trace make_anarchy_like(std::size_t n, double mean_rate,
                                                util::rng& rng);

}  // namespace dqn::traffic
