// Packet and packet-stream types shared by the DES substrate and the
// DeepQueueNet core. A packet carries the paper's feature vector
// p = <pid, fid, len, trp> (§3.2.1) plus the scheduling attributes the
// feature-engineering stage augments it with (§4.1).
#pragma once

#include <cstdint>
#include <vector>

namespace dqn::traffic {

struct packet {
  std::uint64_t pid = 0;       // unique packet id
  std::uint32_t flow_id = 0;   // fid
  std::uint32_t size_bytes = 0;
  std::uint8_t protocol = 17;  // trp: 6 = TCP, 17 = UDP
  std::uint8_t priority = 0;   // SP class (0 = highest priority)
  std::uint16_t weight = 1;    // WFQ/WRR/DRR weight
  std::int32_t src_host = -1;
  std::int32_t dst_host = -1;
};

// A packet at a point in time — one element of a packet stream tau (Eq. 2).
struct packet_event {
  packet pkt;
  double time = 0;  // arrival time at the observation point, seconds

  friend bool operator<(const packet_event& a, const packet_event& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.pkt.pid < b.pkt.pid;  // deterministic tie-break
  }
};

// A time series of packet arrivals, sorted by time.
using packet_stream = std::vector<packet_event>;

// Merge multiple sorted streams into one sorted stream.
[[nodiscard]] packet_stream merge_streams(std::vector<packet_stream> streams);

// Verify the stream is sorted by time (used by invariant tests and IRSA).
[[nodiscard]] bool is_time_ordered(const packet_stream& stream) noexcept;

}  // namespace dqn::traffic
