#include "traffic/traffic_gen.hpp"

#include <algorithm>
#include <stdexcept>

#include "traffic/synthetic_traces.hpp"

namespace dqn::traffic {

const char* to_string(traffic_model model) noexcept {
  switch (model) {
    case traffic_model::poisson: return "Poisson";
    case traffic_model::onoff: return "OnOff";
    case traffic_model::map: return "MAP";
    case traffic_model::bc_paug89: return "BC-pAug89";
    case traffic_model::anarchy: return "Anarchy";
  }
  return "?";
}

traffic_generator::traffic_generator(flow_spec flow,
                                     std::unique_ptr<arrival_process> arrivals,
                                     std::unique_ptr<packet_size_model> sizes)
    : flow_{flow}, arrivals_{std::move(arrivals)}, sizes_{std::move(sizes)} {
  if (!arrivals_ || !sizes_)
    throw std::invalid_argument{"traffic_generator: null component"};
}

packet_stream traffic_generator::generate(double horizon, util::rng& rng,
                                          std::uint64_t& next_pid) {
  if (horizon <= 0) throw std::invalid_argument{"generate: horizon must be > 0"};
  packet_stream stream;
  arrivals_->reset(rng);
  double t = arrivals_->next_interarrival(rng);
  while (t < horizon) {
    packet p;
    p.pid = next_pid++;
    p.flow_id = flow_.flow_id;
    p.size_bytes = sizes_->next_size(rng);
    p.protocol = flow_.protocol;
    p.priority = flow_.priority;
    p.weight = flow_.weight;
    p.src_host = flow_.src_host;
    p.dst_host = flow_.dst_host;
    stream.push_back({p, t});
    t += arrivals_->next_interarrival(rng);
  }
  return stream;
}

namespace {

std::unique_ptr<arrival_process> make_arrivals(const tg_util_config& config,
                                               std::uint32_t flow_id,
                                               util::rng& rng) {
  const double rate = config.per_flow_rate;
  switch (config.model) {
    case traffic_model::poisson:
      return std::make_unique<poisson_arrivals>(rate);
    case traffic_model::onoff: {
      // Slot chosen so the long-run rate hits the target: rate = P(on)/slot.
      const double p_on = 0.5 / (0.2 + 0.5);
      return std::make_unique<onoff_arrivals>(p_on / rate);
    }
    case traffic_model::map: {
      // A per-flow MMPP2: bursty state ~4x the quiet state, switching a few
      // orders slower than the packet rate, rescaled to the exact target.
      const double burst = rng.uniform(2.0, 6.0);
      auto process = queueing::map_process::mmpp2(rate / 50.0, rate / 80.0,
                                                  rate * burst, rate / burst);
      process = process.scaled(rate / process.mean_rate());
      return std::make_unique<map_arrivals>(std::move(process), rng);
    }
    case traffic_model::bc_paug89: {
      auto trace = make_bc_paug89_like(20'000, rate, rng);
      return std::make_unique<trace_arrivals>(std::move(trace.iats));
    }
    case traffic_model::anarchy: {
      auto trace = make_anarchy_like(20'000, rate, rng);
      return std::make_unique<trace_arrivals>(std::move(trace.iats));
    }
  }
  throw std::invalid_argument{"make_arrivals: unknown model"};
  (void)flow_id;
}

std::unique_ptr<packet_size_model> make_sizes(const tg_util_config& config) {
  switch (config.model) {
    case traffic_model::anarchy:
      return std::make_unique<uniform_size>(60, 700);
    default:
      return std::make_unique<trimodal_size>();
  }
}

}  // namespace

std::vector<traffic_generator> make_generators(const std::vector<flow_spec>& flows,
                                               const tg_util_config& config) {
  std::vector<traffic_generator> generators;
  generators.reserve(flows.size());
  for (const auto& flow : flows) {
    util::rng rng{util::derive_seed(config.seed, flow.flow_id)};
    generators.emplace_back(flow, make_arrivals(config, flow.flow_id, rng),
                            make_sizes(config));
  }
  return generators;
}

std::vector<flow_spec> make_uniform_flows(std::size_t hosts, std::size_t classes,
                                          util::rng& rng) {
  if (hosts < 2) throw std::invalid_argument{"make_uniform_flows: need >= 2 hosts"};
  if (classes == 0) throw std::invalid_argument{"make_uniform_flows: classes >= 1"};
  std::vector<flow_spec> flows;
  flows.reserve(hosts);
  for (std::size_t src = 0; src < hosts; ++src) {
    flow_spec flow;
    flow.flow_id = static_cast<std::uint32_t>(src);
    flow.src_host = static_cast<std::int32_t>(src);
    std::size_t dst = rng.uniform_int(hosts - 1);
    if (dst >= src) ++dst;
    flow.dst_host = static_cast<std::int32_t>(dst);
    flow.priority = static_cast<std::uint8_t>(rng.uniform_int(classes));
    flow.weight = static_cast<std::uint16_t>(rng.uniform_int(1, 9));
    flow.protocol = rng.bernoulli(0.5) ? 6 : 17;
    flows.push_back(flow);
  }
  return flows;
}

std::vector<packet_stream> per_host_streams(std::vector<traffic_generator>& generators,
                                            std::size_t hosts, double horizon,
                                            util::rng& rng) {
  std::vector<std::vector<packet_stream>> buckets(hosts);
  std::uint64_t next_pid = 0;
  for (auto& gen : generators) {
    const auto src = static_cast<std::size_t>(gen.flow().src_host);
    if (src >= hosts) throw std::invalid_argument{"per_host_streams: bad src host"};
    buckets[src].push_back(gen.generate(horizon, rng, next_pid));
  }
  std::vector<packet_stream> streams;
  streams.reserve(hosts);
  for (auto& bucket : buckets) streams.push_back(merge_streams(std::move(bucket)));
  return streams;
}

}  // namespace dqn::traffic
