// Arrival processes (§6.1): Poisson, slotted On-Off, MAP-driven, and trace
// replay. Each process yields successive inter-arrival times; mean_rate() is
// used by TGUtil to calibrate link load factors.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "queueing/markovian_arrival.hpp"
#include "util/rng.hpp"

namespace dqn::traffic {

class arrival_process {
 public:
  virtual ~arrival_process() = default;

  // Time until the next arrival, in seconds.
  [[nodiscard]] virtual double next_interarrival(util::rng& rng) = 0;

  // Long-run mean arrival rate in packets per second.
  [[nodiscard]] virtual double mean_rate() const = 0;

  // Restart internal state (trace position, modulating chain, ...).
  virtual void reset(util::rng& rng) = 0;
};

// Poisson arrivals at rate lambda.
class poisson_arrivals final : public arrival_process {
 public:
  explicit poisson_arrivals(double lambda);
  [[nodiscard]] double next_interarrival(util::rng& rng) override;
  [[nodiscard]] double mean_rate() const override { return lambda_; }
  void reset(util::rng&) override {}

 private:
  double lambda_;
};

// Slotted On-Off source (§6.1: transition probability 0.2 for the On state
// and 0.5 for the Off state). One packet is emitted per On slot.
class onoff_arrivals final : public arrival_process {
 public:
  onoff_arrivals(double slot_seconds, double p_on_to_off = 0.2,
                 double p_off_to_on = 0.5);
  [[nodiscard]] double next_interarrival(util::rng& rng) override;
  [[nodiscard]] double mean_rate() const override;
  void reset(util::rng& rng) override;

 private:
  double slot_;
  double p_on_off_;
  double p_off_on_;
  bool on_ = true;
};

// MAP-driven arrivals (Appendix A).
class map_arrivals final : public arrival_process {
 public:
  map_arrivals(queueing::map_process process, util::rng& rng);
  [[nodiscard]] double next_interarrival(util::rng& rng) override;
  [[nodiscard]] double mean_rate() const override { return rate_; }
  void reset(util::rng& rng) override;

  [[nodiscard]] const queueing::map_process& process() const noexcept {
    return process_;
  }

 private:
  queueing::map_process process_;
  double rate_;
  std::size_t state_;
};

// Replays a recorded IAT sequence, looping when exhausted. This is the same
// code path a parsed PCAP file would feed (§3.1.1: TGUtil accepts traces).
class trace_arrivals final : public arrival_process {
 public:
  explicit trace_arrivals(std::vector<double> iats);
  [[nodiscard]] double next_interarrival(util::rng& rng) override;
  [[nodiscard]] double mean_rate() const override { return rate_; }
  void reset(util::rng&) override { position_ = 0; }

 private:
  std::vector<double> iats_;
  double rate_;
  std::size_t position_ = 0;
};

}  // namespace dqn::traffic
