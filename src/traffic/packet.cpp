#include "traffic/packet.hpp"

#include <algorithm>
#include <queue>

namespace dqn::traffic {

packet_stream merge_streams(std::vector<packet_stream> streams) {
  // K-way merge via a heap of (stream, cursor) pairs.
  struct cursor {
    const packet_stream* stream;
    std::size_t index;
  };
  auto later = [](const cursor& a, const cursor& b) {
    return (*b.stream)[b.index] < (*a.stream)[a.index];
  };
  std::priority_queue<cursor, std::vector<cursor>, decltype(later)> heap{later};
  std::size_t total = 0;
  for (const auto& s : streams) {
    total += s.size();
    if (!s.empty()) heap.push({&s, 0});
  }
  packet_stream merged;
  merged.reserve(total);
  while (!heap.empty()) {
    cursor c = heap.top();
    heap.pop();
    merged.push_back((*c.stream)[c.index]);
    if (++c.index < c.stream->size()) heap.push(c);
  }
  return merged;
}

bool is_time_ordered(const packet_stream& stream) noexcept {
  return std::is_sorted(stream.begin(), stream.end(),
                        [](const packet_event& a, const packet_event& b) {
                          return a.time < b.time;
                        });
}

}  // namespace dqn::traffic
