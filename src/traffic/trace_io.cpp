#include "traffic/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/check.hpp"

namespace dqn::traffic {

namespace {

constexpr const char* header =
    "time,pid,flow_id,size_bytes,protocol,priority,weight,src_host,dst_host";

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t comma = line.find(',', begin);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(begin));
      return fields;
    }
    fields.push_back(line.substr(begin, comma - begin));
    begin = comma + 1;
  }
}

template <typename T>
T parse_number(std::string_view field, std::size_t line_number, const char* what) {
  T value{};
  const auto* begin = field.data();
  const auto* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  DQN_ENSURE(ec == std::errc{} && ptr == end, "trace csv line ", line_number,
             ": bad ", what, " '", std::string{field}, "'");
  return value;
}

double parse_double(std::string_view field, std::size_t line_number,
                    const char* what) {
  // std::from_chars<double> is available in libstdc++ 11+, but go through
  // strtod for wide portability of this I/O path.
  const std::string buffer{field};
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  // strtod consumes zero characters from an empty field and leaves end ==
  // begin, so the emptiness check is not redundant with the full-consumption
  // check below.
  DQN_ENSURE(!buffer.empty() && end == buffer.c_str() + buffer.size(),
             "trace csv line ", line_number, ": bad ", what, " '", buffer,
             "'");
  return value;
}

}  // namespace

void write_trace_csv(std::ostream& out, const packet_stream& stream) {
  // Full round-trip precision for the timestamps.
  out.precision(std::numeric_limits<double>::max_digits10);
  out << header << '\n';
  for (const auto& ev : stream) {
    out << ev.time << ',' << ev.pkt.pid << ',' << ev.pkt.flow_id << ','
        << ev.pkt.size_bytes << ',' << static_cast<int>(ev.pkt.protocol) << ','
        << static_cast<int>(ev.pkt.priority) << ',' << ev.pkt.weight << ','
        << ev.pkt.src_host << ',' << ev.pkt.dst_host << '\n';
  }
}

void write_trace_csv_file(const std::string& path, const packet_stream& stream) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"write_trace_csv_file: cannot open " + path};
  write_trace_csv(out, stream);
  if (!out) throw std::runtime_error{"write_trace_csv_file: write failed: " + path};
}

packet_stream read_trace_csv(std::istream& in) {
  std::string line;
  const bool got_header = static_cast<bool>(std::getline(in, line));
  DQN_ENSURE(got_header && line == header,
             "trace csv: missing or wrong header",
             got_header ? " (got '" + line + "')" : std::string{});
  packet_stream stream;
  std::size_t line_number = 1;
  double previous_time = -1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto fields = split_fields(line);
    DQN_ENSURE(fields.size() == 9, "trace csv line ", line_number,
               ": expected 9 fields, got ", fields.size());
    packet_event ev;
    ev.time = parse_double(fields[0], line_number, "time");
    DQN_ENSURE(ev.time >= previous_time, "trace csv line ", line_number,
               ": times must be non-decreasing (", ev.time, " after ",
               previous_time, ")");
    previous_time = ev.time;
    ev.pkt.pid = parse_number<std::uint64_t>(fields[1], line_number, "pid");
    ev.pkt.flow_id = parse_number<std::uint32_t>(fields[2], line_number, "flow_id");
    ev.pkt.size_bytes =
        parse_number<std::uint32_t>(fields[3], line_number, "size_bytes");
    DQN_ENSURE(ev.pkt.size_bytes > 0, "trace csv line ", line_number,
               ": size_bytes must be > 0");
    ev.pkt.protocol =
        static_cast<std::uint8_t>(parse_number<int>(fields[4], line_number, "protocol"));
    ev.pkt.priority =
        static_cast<std::uint8_t>(parse_number<int>(fields[5], line_number, "priority"));
    ev.pkt.weight =
        static_cast<std::uint16_t>(parse_number<int>(fields[6], line_number, "weight"));
    ev.pkt.src_host =
        parse_number<std::int32_t>(fields[7], line_number, "src_host");
    ev.pkt.dst_host =
        parse_number<std::int32_t>(fields[8], line_number, "dst_host");
    stream.push_back(ev);
  }
  // getline stops on either eof (fine) or a hard read error (not fine):
  // distinguish the two instead of silently returning a truncated stream.
  if (in.bad())
    throw std::runtime_error{"trace csv: stream read error after line " +
                             std::to_string(line_number)};
  return stream;
}

packet_stream read_trace_csv_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"read_trace_csv_file: cannot open " + path};
  return read_trace_csv(in);
}

}  // namespace dqn::traffic
