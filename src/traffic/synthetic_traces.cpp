#include "traffic/synthetic_traces.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dqn::traffic {

namespace {

// Rescale IATs so the empirical mean rate matches `mean_rate`.
void calibrate_rate(std::vector<double>& iats, double mean_rate) {
  const double total = std::accumulate(iats.begin(), iats.end(), 0.0);
  const double current = static_cast<double>(iats.size()) / total;
  const double scale = current / mean_rate;
  for (auto& iat : iats) iat *= scale;
}

}  // namespace

synthetic_trace make_bc_paug89_like(std::size_t n, double mean_rate, util::rng& rng) {
  if (n < 2) throw std::invalid_argument{"make_bc_paug89_like: n too small"};
  if (mean_rate <= 0)
    throw std::invalid_argument{"make_bc_paug89_like: rate must be > 0"};

  // Superpose On-Off sources with Pareto On/Off durations (alpha in (1,2)
  // gives infinite variance => long-range-dependent aggregate).
  constexpr std::size_t sources = 8;
  constexpr double alpha_on = 1.4;
  constexpr double alpha_off = 1.15;
  const double base_emit = 6.0;  // packets per time unit while On (rescaled later)

  std::vector<double> arrivals;
  arrivals.reserve(n + n / 4);
  const double horizon = static_cast<double>(n) / (sources * 0.4 * base_emit);
  for (std::size_t s = 0; s < sources; ++s) {
    double t = rng.uniform(0.0, 1.0);  // desynchronize the sources
    bool on = rng.bernoulli(0.5);
    while (t < horizon) {
      const double duration =
          on ? rng.pareto(alpha_on, 1.0) : rng.pareto(alpha_off, 1.5);
      if (on) {
        double u = t;
        const double end = std::min(t + duration, horizon);
        while (u < end) {
          u += rng.exponential(base_emit);
          if (u < end) arrivals.push_back(u);
        }
      }
      t += duration;
      on = !on;
    }
  }
  std::sort(arrivals.begin(), arrivals.end());
  if (arrivals.size() < 2)
    throw std::runtime_error{"make_bc_paug89_like: degenerate trace"};
  if (arrivals.size() > n) arrivals.resize(n);

  synthetic_trace trace;
  trace.iats.reserve(arrivals.size());
  for (std::size_t i = 1; i < arrivals.size(); ++i)
    trace.iats.push_back(std::max(1e-9, arrivals[i] - arrivals[i - 1]));
  calibrate_rate(trace.iats, mean_rate);

  // Bellcore's packet sizes were LAN-dominated: small control segments plus
  // full MTU frames.
  trace.sizes.reserve(trace.iats.size());
  const std::array<double, 3> probs = {0.55, 0.20, 0.25};
  const std::array<std::uint32_t, 3> sizes = {64, 552, 1500};
  for (std::size_t i = 0; i < trace.iats.size(); ++i)
    trace.sizes.push_back(sizes[rng.discrete(probs)]);
  return trace;
}

synthetic_trace make_anarchy_like(std::size_t n, double mean_rate, util::rng& rng) {
  if (n < 2) throw std::invalid_argument{"make_anarchy_like: n too small"};
  if (mean_rate <= 0)
    throw std::invalid_argument{"make_anarchy_like: rate must be > 0"};

  // Quasi-periodic client updates (game tick with jitter) with occasional
  // heavy-tailed bursts (combat/zone events emit clustered packets).
  synthetic_trace trace;
  trace.iats.reserve(n);
  trace.sizes.reserve(n);
  const double tick = 1.0;  // rescaled later
  std::size_t produced = 0;
  while (produced < n) {
    if (rng.bernoulli(0.12)) {
      // Burst: a cluster of back-to-back packets.
      const auto burst_len =
          static_cast<std::size_t>(std::min(20.0, rng.pareto(1.5, 2.0)));
      for (std::size_t b = 0; b < burst_len && produced < n; ++b) {
        trace.iats.push_back(tick * rng.uniform(0.01, 0.06));
        trace.sizes.push_back(
            static_cast<std::uint32_t>(rng.uniform_int(200, 700)));
        ++produced;
      }
    } else {
      trace.iats.push_back(tick * std::max(0.05, rng.normal(1.0, 0.35)));
      // Steady game updates are small.
      trace.sizes.push_back(static_cast<std::uint32_t>(rng.uniform_int(60, 180)));
      ++produced;
    }
  }
  calibrate_rate(trace.iats, mean_rate);
  return trace;
}

}  // namespace dqn::traffic
