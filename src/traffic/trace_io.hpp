// Trace import/export: the file-based half of TGUtil (§3.1.1 — "users can
// use an existing set of PCAP files") and of packet-level visibility (§1 —
// output traces should feed any external analysis).
//
// Format: CSV with a header, one packet event per line:
//   time,pid,flow_id,size_bytes,protocol,priority,weight,src_host,dst_host
// This is the information content the prototype uses from a capture (§1:
// path, size, inter-arrival, arrival/departure times); a PCAP parser would
// populate the same records.
#pragma once

#include <iosfwd>
#include <string>

#include "traffic/packet.hpp"

namespace dqn::traffic {

// Write a stream; the inverse of read_trace_csv.
void write_trace_csv(std::ostream& out, const packet_stream& stream);
void write_trace_csv_file(const std::string& path, const packet_stream& stream);

// Parse a trace. Validates the header, field count, numeric ranges, and
// time ordering; throws std::runtime_error with a line number on errors.
[[nodiscard]] packet_stream read_trace_csv(std::istream& in);
[[nodiscard]] packet_stream read_trace_csv_file(const std::string& path);

}  // namespace dqn::traffic
