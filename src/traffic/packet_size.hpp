// Packet-size models. The queueing appendix uses constant 1426-byte packets;
// the network experiments use the classic trimodal Internet mix.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace dqn::traffic {

class packet_size_model {
 public:
  virtual ~packet_size_model() = default;
  [[nodiscard]] virtual std::uint32_t next_size(util::rng& rng) = 0;
  [[nodiscard]] virtual double mean_size() const = 0;  // bytes
};

class constant_size final : public packet_size_model {
 public:
  explicit constant_size(std::uint32_t bytes);
  [[nodiscard]] std::uint32_t next_size(util::rng&) override { return bytes_; }
  [[nodiscard]] double mean_size() const override { return bytes_; }

 private:
  std::uint32_t bytes_;
};

// Trimodal Internet mix: 64 B (40%), 576 B (20%), 1500 B (40%).
class trimodal_size final : public packet_size_model {
 public:
  trimodal_size() = default;
  [[nodiscard]] std::uint32_t next_size(util::rng& rng) override;
  [[nodiscard]] double mean_size() const override;
};

// Uniform in [lo, hi] bytes.
class uniform_size final : public packet_size_model {
 public:
  uniform_size(std::uint32_t lo, std::uint32_t hi);
  [[nodiscard]] std::uint32_t next_size(util::rng& rng) override;
  [[nodiscard]] double mean_size() const override;

 private:
  std::uint32_t lo_;
  std::uint32_t hi_;
};

}  // namespace dqn::traffic
