#include "traffic/packet_size.hpp"

#include <array>
#include <stdexcept>

namespace dqn::traffic {

constant_size::constant_size(std::uint32_t bytes) : bytes_{bytes} {
  if (bytes == 0) throw std::invalid_argument{"constant_size: bytes must be > 0"};
}

namespace {
constexpr std::array<std::uint32_t, 3> trimodal_sizes = {64, 576, 1500};
constexpr std::array<double, 3> trimodal_probs = {0.4, 0.2, 0.4};
}  // namespace

std::uint32_t trimodal_size::next_size(util::rng& rng) {
  return trimodal_sizes[rng.discrete(trimodal_probs)];
}

double trimodal_size::mean_size() const {
  double mean = 0;
  for (std::size_t i = 0; i < trimodal_sizes.size(); ++i)
    mean += trimodal_probs[i] * trimodal_sizes[i];
  return mean;
}

uniform_size::uniform_size(std::uint32_t lo, std::uint32_t hi) : lo_{lo}, hi_{hi} {
  if (lo == 0 || hi < lo) throw std::invalid_argument{"uniform_size: bad range"};
}

std::uint32_t uniform_size::next_size(util::rng& rng) {
  return static_cast<std::uint32_t>(rng.uniform_int(lo_, hi_));
}

double uniform_size::mean_size() const { return (lo_ + hi_) / 2.0; }

}  // namespace dqn::traffic
