// Network topology: hosts and switches connected by full-duplex links. Each
// endpoint of a link occupies one port of its node; port indices are
// assigned in connection order and are the indices PFM forwarding tensors
// use. Links carry bandwidth and propagation delay — in DeepQueueNet links
// are devices too (§1, footnote 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dqn::topo {

using node_id = std::int32_t;

enum class node_kind : std::uint8_t { host, device };  // device = switch/router

struct link {
  node_id node_a = -1;
  std::size_t port_a = 0;
  node_id node_b = -1;
  std::size_t port_b = 0;
  double bandwidth_bps = 10e9;   // the paper's evaluation uses 10 Gbps links
  double propagation_delay = 1e-6;  // seconds
};

struct node {
  node_kind kind = node_kind::device;
  std::string name;
  std::vector<std::size_t> links;  // indices into topology::links(), by port
};

class topology {
 public:
  node_id add_host(std::string name);
  node_id add_device(std::string name);

  // Connect two nodes with a full-duplex link; returns the link index.
  std::size_t connect(node_id a, node_id b, double bandwidth_bps = 10e9,
                      double propagation_delay = 1e-6);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
  [[nodiscard]] const node& at(node_id id) const;
  [[nodiscard]] const link& link_at(std::size_t index) const;
  [[nodiscard]] const std::vector<node>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] const std::vector<link>& links() const noexcept { return links_; }

  [[nodiscard]] std::size_t port_count(node_id id) const { return at(id).links.size(); }

  // The neighbour reached through `port` of node `id`, and the port on the
  // neighbour's side of that link.
  struct peer {
    node_id node = -1;
    std::size_t port = 0;
    std::size_t link_index = 0;
  };
  [[nodiscard]] peer peer_of(node_id id, std::size_t port) const;

  [[nodiscard]] std::vector<node_id> hosts() const;
  [[nodiscard]] std::vector<node_id> devices() const;

  // Hop-count diameter over all node pairs (IRSA's iteration bound,
  // Theorem 3.1).
  [[nodiscard]] std::size_t diameter() const;

  // BFS hop distance from `from` to every node (-1 if unreachable).
  [[nodiscard]] std::vector<int> hop_distances(node_id from) const;

 private:
  std::vector<node> nodes_;
  std::vector<link> links_;
};

}  // namespace dqn::topo
