// Shortest-path routing with per-flow ECMP. The paper assumes routing tables
// are given in the setup phase and stable during simulation (§2.4); this
// module computes them once per topology. Equal-cost next hops are resolved
// by a stable hash of the flow id so a flow's packets never change path
// (avoiding reordering by design).
#pragma once

#include <cstdint>
#include <vector>

#include "topo/graph.hpp"

namespace dqn::topo {

class routing {
 public:
  // Computes BFS next-hop sets from every node towards every host.
  explicit routing(const topology& topo, std::uint64_t ecmp_salt = 0);

  // The egress port of `current` towards `dst_host` for this flow; throws if
  // the destination is unreachable.
  [[nodiscard]] std::size_t egress_port(node_id current, node_id dst_host,
                                        std::uint32_t flow_id) const;

  // All equal-cost egress ports (for tests and for the PFM builder).
  [[nodiscard]] const std::vector<std::size_t>& equal_cost_ports(
      node_id current, node_id dst_host) const;

  // The full node path a flow takes from src_host to dst_host.
  [[nodiscard]] std::vector<node_id> flow_path(node_id src_host, node_id dst_host,
                                               std::uint32_t flow_id) const;

 private:
  const topology* topo_;
  std::uint64_t salt_;
  // next_ports_[dst][node] = equal-cost egress ports of `node` towards `dst`.
  std::vector<std::vector<std::vector<std::size_t>>> next_ports_;
};

}  // namespace dqn::topo
