#include "topo/routing.hpp"

#include <stdexcept>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dqn::topo {

routing::routing(const topology& topo, std::uint64_t ecmp_salt)
    : topo_{&topo}, salt_{ecmp_salt} {
  const std::size_t n = topo.node_count();
  next_ports_.assign(n, {});
  for (const node_id dst : topo.hosts()) {
    const auto dist = topo.hop_distances(dst);
    auto& table = next_ports_[static_cast<std::size_t>(dst)];
    table.assign(n, {});
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = static_cast<node_id>(i);
      if (id == dst || dist[i] < 0) continue;
      // A port is a shortest-path next hop if it strictly decreases the
      // BFS distance to the destination.
      for (std::size_t port = 0; port < topo.port_count(id); ++port) {
        const auto peer = topo.peer_of(id, port);
        if (dist[static_cast<std::size_t>(peer.node)] == dist[i] - 1)
          table[i].push_back(port);
      }
    }
  }
}

const std::vector<std::size_t>& routing::equal_cost_ports(node_id current,
                                                          node_id dst_host) const {
  DQN_CHECK(dst_host >= 0 &&
                static_cast<std::size_t>(dst_host) < next_ports_.size() &&
                !next_ports_[static_cast<std::size_t>(dst_host)].empty(),
            "routing: node ", dst_host, " is not a known destination host");
  const auto& table = next_ports_[static_cast<std::size_t>(dst_host)];
  DQN_CHECK_RANGE(current, table.size());
  return table[static_cast<std::size_t>(current)];
}

std::size_t routing::egress_port(node_id current, node_id dst_host,
                                 std::uint32_t flow_id) const {
  const auto& ports = equal_cost_ports(current, dst_host);
  if (ports.empty())
    throw std::runtime_error{"routing: destination unreachable from node"};
  if (ports.size() == 1) return ports.front();
  // Stable per-flow hash over the equal-cost set.
  std::uint64_t h = salt_ ^ (0x9e3779b97f4a7c15ULL * (flow_id + 1));
  h ^= static_cast<std::uint64_t>(current) * 0xbf58476d1ce4e5b9ULL;
  (void)util::splitmix64(h);
  return ports[util::splitmix64(h) % ports.size()];
}

std::vector<node_id> routing::flow_path(node_id src_host, node_id dst_host,
                                        std::uint32_t flow_id) const {
  std::vector<node_id> path{src_host};
  node_id current = src_host;
  // Guard against accidental loops: a shortest-path walk can never exceed
  // the node count.
  for (std::size_t steps = 0; steps <= topo_->node_count(); ++steps) {
    if (current == dst_host) return path;
    const std::size_t port = egress_port(current, dst_host, flow_id);
    current = topo_->peer_of(current, port).node;
    path.push_back(current);
  }
  throw std::runtime_error{"routing::flow_path: path did not terminate"};
}

}  // namespace dqn::topo
