#include "topo/builders.hpp"

#include <array>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace dqn::topo {

namespace {

// Attach a host named "h<index>" to each given switch.
void attach_host(topology& topo, node_id sw, std::size_t index, link_params lp) {
  const node_id host = topo.add_host("h" + std::to_string(index));
  topo.connect(host, sw, lp.bandwidth_bps, lp.propagation_delay);
}

}  // namespace

topology make_line(std::size_t switches, link_params lp) {
  if (switches < 2) throw std::invalid_argument{"make_line: need >= 2 switches"};
  topology topo;
  std::vector<node_id> sw;
  sw.reserve(switches);
  for (std::size_t i = 0; i < switches; ++i)
    sw.push_back(topo.add_device("s" + std::to_string(i)));
  for (std::size_t i = 0; i + 1 < switches; ++i)
    topo.connect(sw[i], sw[i + 1], lp.bandwidth_bps, lp.propagation_delay);
  for (std::size_t i = 0; i < switches; ++i) attach_host(topo, sw[i], i, lp);
  return topo;
}

topology make_torus2d(std::size_t rows, std::size_t cols, link_params lp) {
  if (rows < 2 || cols < 2)
    throw std::invalid_argument{"make_torus2d: need >= 2x2"};
  topology topo;
  std::vector<node_id> sw(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      sw[r * cols + c] =
          topo.add_device("s" + std::to_string(r) + "_" + std::to_string(c));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const node_id here = sw[r * cols + c];
      const node_id right = sw[r * cols + (c + 1) % cols];
      const node_id down = sw[((r + 1) % rows) * cols + c];
      // Wrap links are skipped for 2-wide dimensions (they would duplicate).
      if (cols > 2 || c + 1 < cols)
        topo.connect(here, right, lp.bandwidth_bps, lp.propagation_delay);
      if (rows > 2 || r + 1 < rows)
        topo.connect(here, down, lp.bandwidth_bps, lp.propagation_delay);
    }
  }
  for (std::size_t i = 0; i < sw.size(); ++i) attach_host(topo, sw[i], i, lp);
  return topo;
}

topology make_fattree(std::size_t tors_per_cluster, std::size_t servers_per_tor,
                      std::size_t clusters, link_params lp) {
  if (tors_per_cluster == 0 || servers_per_tor == 0 || clusters == 0)
    throw std::invalid_argument{"make_fattree: all parameters must be >= 1"};
  topology topo;
  const std::size_t t = tors_per_cluster;
  // Core layer: t^2 switches; aggregation switch j of every cluster uplinks
  // to cores [j*t, (j+1)*t).
  std::vector<node_id> cores;
  for (std::size_t i = 0; i < t * t; ++i)
    cores.push_back(topo.add_device("core" + std::to_string(i)));
  std::size_t host_index = 0;
  for (std::size_t c = 0; c < clusters; ++c) {
    std::vector<node_id> aggs, tors;
    for (std::size_t j = 0; j < t; ++j)
      aggs.push_back(
          topo.add_device("agg" + std::to_string(c) + "_" + std::to_string(j)));
    for (std::size_t j = 0; j < t; ++j)
      tors.push_back(
          topo.add_device("tor" + std::to_string(c) + "_" + std::to_string(j)));
    // Full bipartite ToR <-> Agg within the cluster.
    for (node_id tor : tors)
      for (node_id agg : aggs)
        topo.connect(tor, agg, lp.bandwidth_bps, lp.propagation_delay);
    // Agg j <-> its core group.
    for (std::size_t j = 0; j < t; ++j)
      for (std::size_t k = 0; k < t; ++k)
        topo.connect(aggs[j], cores[j * t + k], lp.bandwidth_bps,
                     lp.propagation_delay);
    // Servers.
    for (node_id tor : tors)
      for (std::size_t s = 0; s < servers_per_tor; ++s)
        attach_host(topo, tor, host_index++, lp);
  }
  return topo;
}

topology make_fattree8(link_params lp) { return make_fattree(2, 2, 2, lp); }
topology make_fattree16(link_params lp) { return make_fattree(2, 4, 2, lp); }
topology make_fattree64(link_params lp) { return make_fattree(4, 4, 4, lp); }
topology make_fattree128(link_params lp) { return make_fattree(4, 4, 8, lp); }

namespace {

// Propagation delay of a fibre span: ~2/3 c.
constexpr double fibre_delay_per_km = 1.0 / 200'000.0;  // seconds

}  // namespace

topology make_abilene(link_params lp) {
  topology topo;
  const std::array<const char*, 11> pops = {
      "Seattle",  "Sunnyvale", "LosAngeles", "Denver",  "KansasCity", "Houston",
      "Chicago",  "Indianapolis", "Atlanta", "WashingtonDC", "NewYork"};
  std::vector<node_id> sw;
  for (const char* name : pops) sw.push_back(topo.add_device(name));
  // The 14 Abilene backbone links with approximate fibre-route lengths (km):
  // WAN latency is dominated by geography, which the link model carries
  // exactly (Eq. 5) and learned estimators must extrapolate to.
  struct edge {
    int a, b;
    double km;
  };
  const std::array<edge, 14> edges = {{
      {0, 1, 1100},   // Seattle - Sunnyvale
      {0, 3, 1650},   // Seattle - Denver
      {1, 2, 550},    // Sunnyvale - LosAngeles
      {1, 3, 1530},   // Sunnyvale - Denver
      {2, 5, 2200},   // LosAngeles - Houston
      {3, 4, 970},    // Denver - KansasCity
      {4, 5, 1180},   // KansasCity - Houston
      {4, 7, 720},    // KansasCity - Indianapolis
      {5, 8, 1130},   // Houston - Atlanta
      {6, 7, 290},    // Chicago - Indianapolis
      {6, 10, 1150},  // Chicago - NewYork
      {7, 8, 690},    // Indianapolis - Atlanta
      {8, 9, 870},    // Atlanta - WashingtonDC
      {9, 10, 330},   // WashingtonDC - NewYork
  }};
  for (const auto& [a, b, km] : edges)
    topo.connect(sw[static_cast<std::size_t>(a)], sw[static_cast<std::size_t>(b)],
                 lp.bandwidth_bps, km * fibre_delay_per_km);
  for (std::size_t i = 0; i < sw.size(); ++i) attach_host(topo, sw[i], i, lp);
  return topo;
}

topology make_geant(link_params lp) {
  // GÉANT (2004 reference topology, 22 PoPs / 36 links) as distributed with
  // the Internet Topology Zoo and used by the RouteNet line of work.
  topology topo;
  const std::array<const char*, 22> pops = {
      "AT", "BE", "CH", "CZ", "DE", "ES", "FR", "GR", "HR", "HU", "IE",
      "IL", "IT", "LU", "NL", "NY", "PL", "PT", "SE", "SI", "SK", "UK"};
  std::vector<node_id> sw;
  for (const char* name : pops) sw.push_back(topo.add_device(name));
  struct edge {
    int a, b;
    double km;  // approximate inter-PoP fibre length
  };
  const std::array<edge, 36> edges = {{
      {0, 2, 700},    {0, 3, 300},    {0, 4, 600},    {0, 9, 250},
      {0, 12, 800},   {0, 19, 300},   {1, 4, 200},    {1, 6, 300},
      {1, 13, 200},   {1, 14, 200},   {2, 4, 400},    {2, 6, 450},
      {2, 12, 350},   {3, 4, 300},    {3, 16, 550},   {3, 20, 300},
      {4, 6, 500},    {4, 12, 850},   {4, 14, 400},   {4, 15, 6200},
      {4, 18, 900},   {5, 6, 1100},   {5, 12, 1400},  {5, 17, 500},
      {6, 13, 300},   {6, 21, 400},   {7, 12, 1100},  {7, 21, 2400},
      {8, 9, 300},    {8, 19, 150},   {9, 20, 200},   {10, 21, 500},
      {11, 14, 3400}, {14, 21, 400},  {15, 21, 5600}, {16, 18, 800},
  }};
  for (const auto& [a, b, km] : edges)
    topo.connect(sw[static_cast<std::size_t>(a)], sw[static_cast<std::size_t>(b)],
                 lp.bandwidth_bps, km * fibre_delay_per_km);
  for (std::size_t i = 0; i < sw.size(); ++i) attach_host(topo, sw[i], i, lp);
  return topo;
}

}  // namespace dqn::topo
