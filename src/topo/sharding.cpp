#include "topo/sharding.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"

namespace dqn::topo {

namespace {

// Indices into `devices` adjacent to devices[i] (hosts are skipped: only
// device-device links carry boundary windows between shards). Built from
// port order, so the traversal order is a pure function of the topology.
std::vector<std::vector<std::size_t>> device_adjacency(
    const topology& topo, const std::vector<node_id>& devices) {
  std::vector<std::size_t> index_of(topo.node_count(), devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i)
    index_of[static_cast<std::size_t>(devices[i])] = i;
  std::vector<std::vector<std::size_t>> adjacent(devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const node& dev = topo.at(devices[i]);
    adjacent[i].reserve(dev.links.size());
    for (std::size_t port = 0; port < dev.links.size(); ++port) {
      const topology::peer peer = topo.peer_of(devices[i], port);
      const std::size_t j = index_of[static_cast<std::size_t>(peer.node)];
      if (j < devices.size()) adjacent[i].push_back(j);
    }
  }
  return adjacent;
}

std::vector<std::size_t> shard_of_round_robin(std::size_t device_count,
                                              std::size_t shard_count) {
  std::vector<std::size_t> shard_of(device_count);
  for (std::size_t i = 0; i < device_count; ++i) shard_of[i] = i % shard_count;
  return shard_of;
}

// Greedy BFS-grow: shard s claims `quota(s)` devices by breadth-first
// expansion from the lowest-index unassigned device, so each shard is a
// connected cluster wherever the topology allows and cross-shard links
// approximate a cluster cut instead of a round-robin shuffle.
std::vector<std::size_t> shard_of_bfs(
    const std::vector<std::vector<std::size_t>>& adjacent,
    std::size_t shard_count) {
  const std::size_t device_count = adjacent.size();
  const std::size_t base = device_count / shard_count;
  const std::size_t extra = device_count % shard_count;
  std::vector<std::size_t> shard_of(device_count, shard_count);
  std::size_t next_seed = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    std::size_t quota = base + (s < extra ? 1 : 0);
    std::deque<std::size_t> frontier;
    while (quota > 0) {
      if (frontier.empty()) {
        // Grow from the lowest-index unassigned device: restarts cover
        // disconnected components and quota-exhausted neighbourhoods.
        while (next_seed < device_count && shard_of[next_seed] != shard_count)
          ++next_seed;
        DQN_CHECK(next_seed < device_count,
                  "sharding: quotas exceed unassigned devices");
        frontier.push_back(next_seed);
        shard_of[next_seed] = s;
      } else {
        const std::size_t here = frontier.front();
        frontier.pop_front();
        for (const std::size_t neighbour : adjacent[here]) {
          if (quota == 0) break;
          if (shard_of[neighbour] != shard_count) continue;
          shard_of[neighbour] = s;
          frontier.push_back(neighbour);
          --quota;
        }
        continue;  // claiming the frontier seed itself consumed no quota here
      }
      --quota;
    }
  }
  return shard_of;
}

}  // namespace

shard_plan shard_devices(const topology& topo,
                         const std::vector<node_id>& devices,
                         std::size_t shard_count, shard_strategy strategy) {
  DQN_ENSURE(shard_count > 0, "shard_devices: shard_count must be >= 1");
  shard_plan plan;
  if (devices.empty()) return plan;
  const std::size_t shards = std::min(shard_count, devices.size());
  const auto adjacent = device_adjacency(topo, devices);
  const std::vector<std::size_t> shard_of =
      strategy == shard_strategy::topology
          ? shard_of_bfs(adjacent, shards)
          : shard_of_round_robin(devices.size(), shards);
  plan.shards.resize(shards);
  for (std::size_t i = 0; i < devices.size(); ++i)
    plan.shards[shard_of[i]].push_back(i);
  // Count each device-device link once (adjacency lists both directions).
  std::size_t crossing_directed = 0;
  for (std::size_t i = 0; i < devices.size(); ++i)
    for (const std::size_t j : adjacent[i])
      if (shard_of[i] != shard_of[j]) ++crossing_directed;
  plan.cross_shard_links = crossing_directed / 2;
  return plan;
}

}  // namespace dqn::topo
