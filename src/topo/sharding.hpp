// Device sharding for the parallel engine: split a topology's device set
// into `shard_count` groups, one per engine worker.
//
// Two strategies:
//  * round_robin — device d goes to shard d % shards. The original engine
//    partitioning, kept as the fallback and as the determinism reference
//    (delivery records must be bit-identical across strategies and shard
//    counts — the shard only decides WHERE a device is computed).
//  * topology    — greedy BFS-grow over the device-device adjacency of
//    topo::graph, minimizing links that cross shards (the MimicNet-style
//    cluster cut): each shard grows breadth-first from the lowest-index
//    unassigned device until it reaches its size quota, so neighbouring
//    devices — which exchange the boundary windows every IRSA iteration —
//    land on the same worker and their exchange stays within one core's
//    cache.
//
// Both strategies are pure functions of (topology, devices, shard_count):
// no randomness, index-ordered traversal, reproducible across runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "topo/graph.hpp"

namespace dqn::topo {

enum class shard_strategy : std::uint8_t { round_robin, topology };

[[nodiscard]] inline const char* to_string(shard_strategy strategy) noexcept {
  switch (strategy) {
    case shard_strategy::round_robin: return "round_robin";
    case shard_strategy::topology: return "topology";
  }
  return "unknown";
}

struct shard_plan {
  // shards[s] holds indices into the `devices` vector passed to
  // shard_devices (NOT node ids), each index appearing in exactly one
  // shard. Shard sizes differ by at most one.
  std::vector<std::vector<std::size_t>> shards;
  // Device-device links whose endpoints landed in different shards — the
  // boundary-exchange traffic between workers (lower is better; the
  // topology strategy exists to shrink this versus round_robin).
  std::size_t cross_shard_links = 0;
};

// Partition `devices` (as returned by topology::devices()) into
// min(shard_count, devices.size()) shards. An empty device list yields an
// empty plan; shard_count == 0 is rejected.
[[nodiscard]] shard_plan shard_devices(const topology& topo,
                                       const std::vector<node_id>& devices,
                                       std::size_t shard_count,
                                       shard_strategy strategy);

}  // namespace dqn::topo
