// Topology builders for every network the evaluation uses (§6.1): Line,
// 2dTorus, FatTree (MimicNet's parameterisation, Table 3), and the Abilene
// and GÉANT wide-area networks from the Internet Topology Zoo.
#pragma once

#include <cstddef>

#include "topo/graph.hpp"

namespace dqn::topo {

struct link_params {
  double bandwidth_bps = 10e9;     // §6: "links in the topology is 10Gbps"
  double propagation_delay = 1e-6;
};

// Line-N: N switches in a row, one host per switch (Line4, Line6).
[[nodiscard]] topology make_line(std::size_t switches, link_params lp = {});

// rows x cols 2-D torus of switches, one host per switch (2dTorus 4x4, 6x6).
[[nodiscard]] topology make_torus2d(std::size_t rows, std::size_t cols,
                                    link_params lp = {});

// MimicNet-style fat-tree (Table 3): `clusters` pods, each with
// `tors_per_cluster` ToR and aggregation switches, `servers_per_tor` hosts
// per ToR, and tors_per_cluster^2 core switches.
[[nodiscard]] topology make_fattree(std::size_t tors_per_cluster,
                                    std::size_t servers_per_tor,
                                    std::size_t clusters, link_params lp = {});

// FatTree16 / FatTree64 / FatTree128 exactly as Table 3 parameterises them;
// FatTree8 halves FatTree16's servers per ToR — the small scaling case the
// Table-7 measured-speedup bench pairs with FatTree16.
[[nodiscard]] topology make_fattree8(link_params lp = {});
[[nodiscard]] topology make_fattree16(link_params lp = {});
[[nodiscard]] topology make_fattree64(link_params lp = {});
[[nodiscard]] topology make_fattree128(link_params lp = {});

// Abilene (Internet2 backbone, 11 PoPs / 14 links), one host per PoP.
[[nodiscard]] topology make_abilene(link_params lp = {});

// GÉANT (pan-European research backbone, 22 PoPs), one host per PoP.
[[nodiscard]] topology make_geant(link_params lp = {});

}  // namespace dqn::topo
