#include "topo/graph.hpp"

#include <deque>

#include "util/check.hpp"

namespace dqn::topo {

node_id topology::add_host(std::string name) {
  nodes_.push_back({node_kind::host, std::move(name), {}});
  return static_cast<node_id>(nodes_.size() - 1);
}

node_id topology::add_device(std::string name) {
  nodes_.push_back({node_kind::device, std::move(name), {}});
  return static_cast<node_id>(nodes_.size() - 1);
}

std::size_t topology::connect(node_id a, node_id b, double bandwidth_bps,
                              double propagation_delay) {
  DQN_ENSURE(a >= 0 && b >= 0 && static_cast<std::size_t>(a) < nodes_.size() &&
                 static_cast<std::size_t>(b) < nodes_.size(),
             "topology::connect: unknown node ", a, " or ", b, " (have ",
             nodes_.size(), ")");
  DQN_ENSURE(a != b, "topology::connect: self-loop on node ", a);
  DQN_ENSURE(bandwidth_bps > 0 && propagation_delay >= 0,
             "topology::connect: bad link parameters bandwidth=", bandwidth_bps,
             " delay=", propagation_delay);
  link l;
  l.node_a = a;
  l.port_a = nodes_[static_cast<std::size_t>(a)].links.size();
  l.node_b = b;
  l.port_b = nodes_[static_cast<std::size_t>(b)].links.size();
  l.bandwidth_bps = bandwidth_bps;
  l.propagation_delay = propagation_delay;
  links_.push_back(l);
  const std::size_t index = links_.size() - 1;
  nodes_[static_cast<std::size_t>(a)].links.push_back(index);
  nodes_[static_cast<std::size_t>(b)].links.push_back(index);
  return index;
}

const node& topology::at(node_id id) const {
  DQN_CHECK_RANGE(id, nodes_.size());
  return nodes_[static_cast<std::size_t>(id)];
}

const link& topology::link_at(std::size_t index) const {
  DQN_CHECK_RANGE(index, links_.size());
  return links_[index];
}

topology::peer topology::peer_of(node_id id, std::size_t port) const {
  const node& n = at(id);
  DQN_CHECK_RANGE(port, n.links.size());
  const link& l = links_[n.links[port]];
  peer p;
  p.link_index = n.links[port];
  if (l.node_a == id) {
    p.node = l.node_b;
    p.port = l.port_b;
  } else {
    p.node = l.node_a;
    p.port = l.port_a;
  }
  return p;
}

std::vector<node_id> topology::hosts() const {
  std::vector<node_id> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].kind == node_kind::host) out.push_back(static_cast<node_id>(i));
  return out;
}

std::vector<node_id> topology::devices() const {
  std::vector<node_id> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].kind == node_kind::device) out.push_back(static_cast<node_id>(i));
  return out;
}

std::vector<int> topology::hop_distances(node_id from) const {
  (void)at(from);  // bounds check
  std::vector<int> dist(nodes_.size(), -1);
  std::deque<node_id> frontier{from};
  dist[static_cast<std::size_t>(from)] = 0;
  while (!frontier.empty()) {
    const node_id current = frontier.front();
    frontier.pop_front();
    const node& n = nodes_[static_cast<std::size_t>(current)];
    for (std::size_t port = 0; port < n.links.size(); ++port) {
      const peer p = peer_of(current, port);
      if (dist[static_cast<std::size_t>(p.node)] == -1) {
        dist[static_cast<std::size_t>(p.node)] =
            dist[static_cast<std::size_t>(current)] + 1;
        frontier.push_back(p.node);
      }
    }
  }
  return dist;
}

std::size_t topology::diameter() const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto dist = hop_distances(static_cast<node_id>(i));
    for (int d : dist)
      if (d > 0) best = std::max(best, static_cast<std::size_t>(d));
  }
  return best;
}

}  // namespace dqn::topo
