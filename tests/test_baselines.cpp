#include <gtest/gtest.h>

#include <numeric>

#include "baselines/mimicnet.hpp"
#include "baselines/routenet.hpp"
#include "des/network.hpp"
#include "topo/builders.hpp"
#include "topo/routing.hpp"
#include "traffic/traffic_gen.hpp"
#include "util/rng.hpp"

namespace {

using namespace dqn;

struct scenario {
  std::vector<traffic::flow_spec> flows;
  std::vector<traffic::packet_stream> streams;
  std::vector<double> rates;
};

scenario make_scenario(std::size_t hosts, traffic::traffic_model model, double rate,
                       double horizon, std::uint64_t seed) {
  scenario s;
  util::rng rng{seed};
  s.flows = traffic::make_uniform_flows(hosts, 1, rng);
  traffic::tg_util_config tg;
  tg.model = model;
  tg.per_flow_rate = rate;
  tg.seed = seed;
  auto generators = traffic::make_generators(s.flows, tg);
  s.streams = traffic::per_host_streams(generators, hosts, horizon, rng);
  for (const auto& gen : generators) s.rates.push_back(gen.mean_rate());
  return s;
}

TEST(routenet, fits_training_distribution) {
  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};
  const auto s = make_scenario(16, traffic::traffic_model::map, 40'000.0, 0.2, 31);
  des::network oracle{topo, routes, {}};
  const auto truth = oracle.run(s.streams, 0.2);

  baselines::routenet_estimator rn;
  const auto examples = baselines::routenet_estimator::make_examples(
      topo, routes, s.flows, s.rates, 712.0, truth);
  ASSERT_GE(examples.size(), 8u);
  rn.train(examples, 400);

  // In-distribution predictions should land in the right order of magnitude.
  const auto predictions = rn.predict_flows(topo, routes, s.flows, s.rates, 712.0);
  const auto per_flow = des::per_flow_latencies(truth);
  for (const auto& [flow, kpis] : predictions) {
    const auto it = per_flow.find(flow);
    if (it == per_flow.end() || it->second.size() < 4) continue;
    const double truth_avg =
        std::accumulate(it->second.begin(), it->second.end(), 0.0) /
        static_cast<double>(it->second.size());
    EXPECT_GT(kpis.avg_rtt, 0.0);
    EXPECT_LT(std::abs(kpis.avg_rtt - truth_avg) / truth_avg, 1.5)
        << "flow " << flow;
  }
}

TEST(routenet, is_blind_to_traffic_model_changes) {
  // The defining failure mode (§6.1): identical traffic matrix, different
  // arrival process => identical RouteNet inputs => identical predictions.
  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};
  const auto map_scenario =
      make_scenario(16, traffic::traffic_model::map, 40'000.0, 0.1, 32);
  des::network oracle{topo, routes, {}};
  const auto truth = oracle.run(map_scenario.streams, 0.1);
  baselines::routenet_estimator rn;
  rn.train(baselines::routenet_estimator::make_examples(topo, routes,
                                                        map_scenario.flows,
                                                        map_scenario.rates, 712.0,
                                                        truth),
           200);
  // Same flows, same rates: the features cannot distinguish Poisson/On-Off.
  const auto pred_a =
      rn.predict_flows(topo, routes, map_scenario.flows, map_scenario.rates, 712.0);
  const auto pred_b =
      rn.predict_flows(topo, routes, map_scenario.flows, map_scenario.rates, 712.0);
  for (const auto& [flow, kpis] : pred_a) {
    EXPECT_DOUBLE_EQ(kpis.avg_rtt, pred_b.at(flow).avg_rtt);
    EXPECT_DOUBLE_EQ(kpis.p99_rtt, pred_b.at(flow).p99_rtt);
  }
}

TEST(routenet, compare_routenet_produces_metrics) {
  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};
  const auto s = make_scenario(16, traffic::traffic_model::map, 40'000.0, 0.2, 33);
  des::network oracle{topo, routes, {}};
  const auto truth = oracle.run(s.streams, 0.2);
  baselines::routenet_estimator rn;
  rn.train(baselines::routenet_estimator::make_examples(topo, routes, s.flows,
                                                        s.rates, 712.0, truth),
           300);
  const auto predictions = rn.predict_flows(topo, routes, s.flows, s.rates, 712.0);
  const auto cmp = baselines::compare_routenet(truth, predictions, 0.02, 4);
  EXPECT_GT(cmp.samples, 8u);
  EXPECT_GE(cmp.w1_avg_rtt, 0.0);
}

TEST(routenet, untrained_predict_throws) {
  baselines::routenet_estimator rn;
  EXPECT_THROW((void)rn.predict(std::vector<double>(8, 0.0)), std::logic_error);
}

TEST(mimicnet, trains_from_reference_and_predicts_fattree) {
  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};
  const auto s = make_scenario(16, traffic::traffic_model::map, 40'000.0, 0.1, 34);
  des::network_config oracle_cfg;
  oracle_cfg.record_hops = true;
  des::network oracle{topo, routes, oracle_cfg};
  const auto truth = oracle.run(s.streams, 0.1);

  baselines::mimicnet_estimator mn;
  mn.train(topo, truth, 40);
  ASSERT_TRUE(mn.trained());

  const auto pred = mn.predict(topo, routes, s.streams, 0.1);
  ASSERT_EQ(pred.deliveries.size(), truth.deliveries.size());
  // Mean latency in the right ballpark (mimics are accurate on fat-trees).
  double mt = 0, mp = 0;
  for (const auto& d : truth.deliveries) mt += d.latency();
  for (const auto& d : pred.deliveries) mp += d.latency();
  mt /= static_cast<double>(truth.deliveries.size());
  mp /= static_cast<double>(pred.deliveries.size());
  EXPECT_LT(std::abs(mp - mt) / mt, 0.5);
}

TEST(mimicnet, scale_generalizes_to_larger_fattree) {
  // Train on FatTree16, predict on FatTree64 — MimicNet's core claim.
  const auto small = topo::make_fattree16();
  const topo::routing small_routes{small};
  const auto s16 = make_scenario(16, traffic::traffic_model::map, 40'000.0, 0.1, 35);
  des::network_config oracle_cfg;
  oracle_cfg.record_hops = true;
  des::network oracle{small, small_routes, oracle_cfg};
  const auto truth16 = oracle.run(s16.streams, 0.1);
  baselines::mimicnet_estimator mn;
  mn.train(small, truth16, 40);

  const auto large = topo::make_fattree64();
  const topo::routing large_routes{large};
  const auto s64 = make_scenario(64, traffic::traffic_model::map, 20'000.0, 0.02, 36);
  const auto pred = mn.predict(large, large_routes, s64.streams, 0.02);
  std::size_t injected = 0;
  for (const auto& stream : s64.streams) injected += stream.size();
  EXPECT_EQ(pred.deliveries.size(), injected);
  for (const auto& d : pred.deliveries) EXPECT_GT(d.latency(), 0.0);
}

TEST(mimicnet, untrained_predict_throws) {
  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};
  baselines::mimicnet_estimator mn;
  EXPECT_THROW((void)mn.predict(topo, routes, {}, 1.0), std::logic_error);
}

TEST(mimicnet, train_requires_hop_records) {
  const auto topo = topo::make_fattree16();
  baselines::mimicnet_estimator mn;
  des::run_result no_hops;
  EXPECT_THROW(mn.train(topo, no_hops), std::invalid_argument);
}

}  // namespace
