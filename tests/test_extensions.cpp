// Coverage for the heterogeneous-TM and buffer-management extensions:
// per-node TM overrides in the DES and the engine, byte-limited drop-tail,
// and the device model's deterministic drop decisions.
#include <gtest/gtest.h>

#include <memory>

#include "core/dutil.hpp"
#include "core/engine.hpp"
#include "des/network.hpp"
#include "des/traffic_manager.hpp"
#include "topo/builders.hpp"
#include "topo/routing.hpp"
#include "traffic/traffic_gen.hpp"
#include "util/rng.hpp"

namespace {

using namespace dqn;

std::shared_ptr<const core::ptm_model> shared_ptm() {
  static const core::device_model_bundle bundle = [] {
    core::dutil_config cfg;
    cfg.ports = 4;
    cfg.streams = 24;
    cfg.packets_per_stream = 600;
    cfg.ptm.time_steps = 8;
    cfg.ptm.mlp_hidden = {48, 24};
    cfg.ptm.epochs = 8;
    cfg.seed = 123;
    return core::train_device_model(cfg);
  }();
  return std::shared_ptr<const core::ptm_model>{&bundle.model,
                                                [](const core::ptm_model*) {}};
}

TEST(traffic_manager_bytes, byte_limit_drops_independent_of_packet_limit) {
  des::tm_config cfg;
  cfg.buffer_packets = 1000;
  cfg.buffer_bytes = 2500;
  des::traffic_manager tm{cfg};
  traffic::packet p;
  p.size_bytes = 1000;
  EXPECT_TRUE(tm.enqueue(p));
  EXPECT_TRUE(tm.enqueue(p));
  EXPECT_FALSE(tm.enqueue(p));  // 3000 > 2500
  EXPECT_EQ(tm.drops(), 1u);
  p.size_bytes = 400;
  EXPECT_TRUE(tm.enqueue(p));  // 2400 <= 2500
}

TEST(traffic_manager_bytes, zero_byte_limit_means_unlimited) {
  des::tm_config cfg;
  cfg.buffer_packets = 8;
  cfg.buffer_bytes = 0;
  des::traffic_manager tm{cfg};
  traffic::packet p;
  p.size_bytes = 100'000;
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(tm.enqueue(p));
  EXPECT_FALSE(tm.enqueue(p));  // packet limit still applies
}

// A 3-switch line whose middle link is the 100 Mbps bottleneck; host links
// and the first hop run at 1 Gbps so the queue builds at s1's egress.
topo::topology bottleneck_line() {
  topo::topology t;
  const auto s0 = t.add_device("s0");
  const auto s1 = t.add_device("s1");
  const auto s2 = t.add_device("s2");
  t.connect(s0, s1, 1e9, 1e-6);
  t.connect(s1, s2, 1e8, 1e-6);  // bottleneck
  const auto h0 = t.add_host("h0");
  t.connect(h0, s0, 1e9, 1e-6);
  const auto h2 = t.add_host("h2");
  t.connect(h2, s2, 1e9, 1e-6);
  return t;
}

TEST(heterogeneous_tm, des_applies_per_node_override) {
  // Middle switch runs 2-class SP, the rest FIFO: under bottleneck overload
  // the priority-0 class must beat priority-1, which FIFO cannot produce.
  const auto topo = bottleneck_line();
  const topo::routing routes{topo};
  des::network_config cfg;
  des::tm_config sp;
  sp.kind = des::scheduler_kind::sp;
  sp.classes = 2;
  cfg.tm_overrides[topo.devices()[1]] = sp;
  des::network net{topo, routes, cfg};

  util::rng rng{5};
  traffic::packet_stream stream;
  std::uint64_t pid = 0;
  double t = 0;
  // 1.5x overload of the bottleneck link.
  for (;;) {
    t += rng.exponential(1.5 * 1e8 / (1000 * 8.0));
    if (t >= 0.5) break;
    traffic::packet p;
    p.pid = pid++;
    p.flow_id = pid % 2;  // two flows, one per class
    p.size_bytes = 1000;
    p.priority = static_cast<std::uint8_t>(pid % 2);
    p.src_host = 0;
    p.dst_host = 1;  // host index of h2
    stream.push_back({p, t});
  }
  std::vector<traffic::packet_stream> streams(2);
  streams[0] = stream;
  const auto result = net.run(streams, 0.5);
  double high = 0, low = 0;
  std::size_t nh = 0, nl = 0;
  for (const auto& d : result.deliveries) {
    if (d.flow_id == 0) {
      high += d.latency();
      ++nh;
    } else {
      low += d.latency();
      ++nl;
    }
  }
  ASSERT_GT(nh, 100u);
  ASSERT_GT(nl, 100u);
  EXPECT_LT(high / static_cast<double>(nh),
            0.5 * (low / static_cast<double>(nl)));
}

TEST(heterogeneous_tm, engine_override_changes_predictions) {
  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};
  util::rng rng{9};
  auto flows = traffic::make_uniform_flows(16, 2, rng);
  traffic::tg_util_config tg;
  tg.per_flow_rate = 40'000;
  auto generators = traffic::make_generators(flows, tg);
  const auto streams = traffic::per_host_streams(generators, 16, 0.01, rng);

  core::dqn_network plain{topo, routes, shared_ptm(), {}, {}};
  core::dqn_network mixed{topo, routes, shared_ptm(), {}, {}};
  core::scheduler_context sp_ctx;
  sp_ctx.kind = des::scheduler_kind::sp;
  for (const auto dev : topo.devices())
    if (topo.at(dev).name.starts_with("agg"))
      mixed.set_device_context(dev, sp_ctx);

  const auto r1 = plain.run(streams, 0.01);
  const auto r2 = mixed.run(streams, 0.01);
  ASSERT_EQ(r1.deliveries.size(), r2.deliveries.size());
  double diff = 0;
  std::map<std::uint64_t, double> base;
  for (const auto& d : r1.deliveries) base[d.pid] = d.latency();
  for (const auto& d : r2.deliveries) diff += std::abs(d.latency() - base.at(d.pid));
  EXPECT_GT(diff, 0.0);
}

TEST(drop_model, device_model_drops_when_buffer_exceeded) {
  core::scheduler_context ctx;
  ctx.bandwidth_bps = 1e8;    // 1000B packet = 80 us service
  ctx.buffer_bytes = 2500;
  core::device_model dev{shared_ptm(), ctx};
  // A burst of 5 back-to-back packets: the first enters service immediately
  // (0 backlog), the next two queue (1000, 2000 bytes), the rest exceed
  // 2500 bytes of backlog and drop.
  std::vector<traffic::packet_stream> ingress(1);
  for (int i = 0; i < 5; ++i) {
    traffic::packet p;
    p.pid = static_cast<std::uint64_t>(i);
    p.size_bytes = 1000;
    ingress[0].push_back({p, 0.0});
  }
  std::vector<traffic::packet> dropped;
  const auto egress = dev.process(
      ingress, [](std::uint32_t, std::size_t) { return 0u; }, true, nullptr,
      &dropped);
  EXPECT_EQ(egress[0].size() + dropped.size(), 5u);
  EXPECT_EQ(dropped.size(), 2u);
}

TEST(drop_model, no_buffer_limit_never_drops) {
  core::device_model dev{shared_ptm(), {}};
  std::vector<traffic::packet_stream> ingress(1);
  for (int i = 0; i < 50; ++i) {
    traffic::packet p;
    p.pid = static_cast<std::uint64_t>(i);
    p.size_bytes = 1500;
    ingress[0].push_back({p, 0.0});
  }
  std::vector<traffic::packet> dropped;
  const auto egress = dev.process(
      ingress, [](std::uint32_t, std::size_t) { return 0u; }, true, nullptr,
      &dropped);
  EXPECT_TRUE(dropped.empty());
  EXPECT_EQ(egress[0].size(), 50u);
}

TEST(drop_model, engine_counts_drops_and_conserves) {
  const auto topo = bottleneck_line();
  const topo::routing routes{topo};
  core::scheduler_context ctx;
  ctx.bandwidth_bps = 1e8;  // bottleneck egress line rate
  ctx.buffer_bytes = 8'000;
  core::dqn_network net{topo, routes, shared_ptm(), ctx, {}};

  // 1.5x overload of the bottleneck: drops must occur at s1.
  util::rng rng{11};
  traffic::packet_stream stream;
  std::uint64_t pid = 0;
  double t = 0;
  for (;;) {
    t += rng.exponential(1.5 * 1e8 / (1000 * 8.0));
    if (t >= 0.3) break;
    traffic::packet p;
    p.pid = pid++;
    p.flow_id = 1;
    p.size_bytes = 1000;
    p.src_host = 0;
    p.dst_host = 1;
    stream.push_back({p, t});
  }
  std::vector<traffic::packet_stream> streams(2);
  streams[0] = stream;
  const auto result = net.run(streams, 0.3);
  EXPECT_GT(result.drops, 0u);
  EXPECT_EQ(result.deliveries.size() + result.drops, stream.size());
}

TEST(drop_model, dqn_drop_rate_tracks_des) {
  // Same overloaded bottleneck, same byte budget: the DES and the DQN drop
  // model discard comparable fractions.
  const double bw = 1e8;
  const std::uint64_t buffer_bytes = 16'000;
  const auto topo = bottleneck_line();
  const topo::routing routes{topo};

  util::rng rng{13};
  traffic::packet_stream stream;
  std::uint64_t pid = 0;
  double t = 0;
  for (;;) {
    t += rng.exponential(1.3 * bw / (1000 * 8.0));
    if (t >= 1.0) break;
    traffic::packet p;
    p.pid = pid++;
    p.flow_id = 1;
    p.size_bytes = 1000;
    p.src_host = 0;
    p.dst_host = 1;
    stream.push_back({p, t});
  }
  std::vector<traffic::packet_stream> streams(2);
  streams[0] = stream;

  des::network_config des_cfg;
  des_cfg.tm.buffer_bytes = buffer_bytes;
  des_cfg.tm.buffer_packets = 1 << 20;
  des::network oracle{topo, routes, des_cfg};
  const auto truth = oracle.run(streams, 1.0);

  core::scheduler_context ctx;
  ctx.bandwidth_bps = bw;
  ctx.buffer_bytes = buffer_bytes;
  core::dqn_network net{topo, routes, shared_ptm(), ctx, {}};
  const auto pred = net.run(streams, 1.0);

  const double truth_rate =
      static_cast<double>(truth.drops) / static_cast<double>(stream.size());
  const double pred_rate =
      static_cast<double>(pred.drops) / static_cast<double>(stream.size());
  EXPECT_GT(truth_rate, 0.05);
  EXPECT_NEAR(pred_rate, truth_rate, 0.5 * truth_rate);
}

}  // namespace
