#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <vector>

#include "topo/builders.hpp"
#include "topo/graph.hpp"
#include "topo/routing.hpp"
#include "topo/sharding.hpp"
#include "util/check.hpp"

namespace {

using namespace dqn::topo;

TEST(graph, connect_assigns_sequential_ports) {
  topology t;
  const auto a = t.add_device("a");
  const auto b = t.add_device("b");
  const auto c = t.add_device("c");
  t.connect(a, b);
  t.connect(a, c);
  EXPECT_EQ(t.port_count(a), 2u);
  EXPECT_EQ(t.port_count(b), 1u);
  EXPECT_EQ(t.peer_of(a, 0).node, b);
  EXPECT_EQ(t.peer_of(a, 1).node, c);
  EXPECT_EQ(t.peer_of(b, 0).node, a);
  EXPECT_EQ(t.peer_of(b, 0).port, 0u);
}

TEST(graph, rejects_bad_connections) {
  topology t;
  const auto a = t.add_device("a");
  EXPECT_THROW(t.connect(a, a), dqn::util::contract_violation);
  EXPECT_THROW(t.connect(a, 99), dqn::util::contract_violation);
  const auto b = t.add_device("b");
  EXPECT_THROW(t.connect(a, b, 0.0), dqn::util::contract_violation);
}

TEST(graph, hop_distances_bfs) {
  // a - b - c, a - c (triangle plus tail d).
  topology t;
  const auto a = t.add_device("a");
  const auto b = t.add_device("b");
  const auto c = t.add_device("c");
  const auto d = t.add_device("d");
  t.connect(a, b);
  t.connect(b, c);
  t.connect(a, c);
  t.connect(c, d);
  const auto dist = t.hop_distances(a);
  EXPECT_EQ(dist[static_cast<std::size_t>(a)], 0);
  EXPECT_EQ(dist[static_cast<std::size_t>(b)], 1);
  EXPECT_EQ(dist[static_cast<std::size_t>(c)], 1);
  EXPECT_EQ(dist[static_cast<std::size_t>(d)], 2);
}

TEST(graph, diameter_of_line) {
  const auto t = make_line(4);
  // Host - s0 - s1 - s2 - s3 - host: diameter 5.
  EXPECT_EQ(t.diameter(), 5u);
}

TEST(builders, line_shape) {
  const auto t = make_line(6);
  EXPECT_EQ(t.hosts().size(), 6u);
  EXPECT_EQ(t.devices().size(), 6u);
  EXPECT_EQ(t.link_count(), 5u + 6u);  // chain + host links
}

TEST(builders, torus_shape_and_degree) {
  const auto t = make_torus2d(4, 4);
  EXPECT_EQ(t.hosts().size(), 16u);
  EXPECT_EQ(t.devices().size(), 16u);
  // Each switch: 4 torus neighbours + 1 host.
  for (const auto sw : t.devices()) EXPECT_EQ(t.port_count(sw), 5u);
  EXPECT_EQ(t.link_count(), 32u + 16u);
}

TEST(builders, torus_2x2_has_no_duplicate_links) {
  const auto t = make_torus2d(2, 2);
  // 2x2 torus without wrap duplicates: 4 links + 4 host links.
  EXPECT_EQ(t.link_count(), 8u);
}

TEST(builders, fattree16_matches_table3) {
  const auto t = make_fattree16();
  EXPECT_EQ(t.hosts().size(), 16u);  // 2 clusters x 2 ToR x 4 servers
  // Devices: 4 cores + 2 clusters x (2 agg + 2 tor) = 12.
  EXPECT_EQ(t.devices().size(), 12u);
}

TEST(builders, fattree64_and_128_host_counts) {
  EXPECT_EQ(make_fattree64().hosts().size(), 64u);
  EXPECT_EQ(make_fattree128().hosts().size(), 128u);
}

TEST(builders, abilene_shape) {
  const auto t = make_abilene();
  EXPECT_EQ(t.devices().size(), 11u);
  EXPECT_EQ(t.hosts().size(), 11u);
  EXPECT_EQ(t.link_count(), 14u + 11u);
}

TEST(builders, geant_shape) {
  const auto t = make_geant();
  EXPECT_EQ(t.devices().size(), 22u);
  EXPECT_EQ(t.hosts().size(), 22u);
  EXPECT_EQ(t.link_count(), 36u + 22u);
}

TEST(builders, all_topologies_are_connected) {
  for (const auto& t :
       {make_line(4), make_torus2d(4, 4), make_fattree16(), make_fattree64(),
        make_abilene(), make_geant()}) {
    const auto dist = t.hop_distances(0);
    for (int d : dist) EXPECT_GE(d, 0);
  }
}

TEST(routing, line_path_is_the_only_path) {
  const auto t = make_line(4);
  const routing routes{t};
  const auto hosts = t.hosts();
  const auto path = routes.flow_path(hosts[0], hosts[3], 7);
  // host0 -> s0 -> s1 -> s2 -> s3 -> host3.
  ASSERT_EQ(path.size(), 6u);
  EXPECT_EQ(path.front(), hosts[0]);
  EXPECT_EQ(path.back(), hosts[3]);
}

TEST(routing, paths_are_shortest) {
  const auto t = make_fattree16();
  const routing routes{t};
  const auto hosts = t.hosts();
  for (std::size_t i = 0; i < hosts.size(); i += 3) {
    for (std::size_t j = 0; j < hosts.size(); j += 5) {
      if (i == j) continue;
      const auto dist = t.hop_distances(hosts[j]);
      const auto path = routes.flow_path(hosts[i], hosts[j], 42);
      EXPECT_EQ(static_cast<int>(path.size() - 1),
                dist[static_cast<std::size_t>(hosts[i])]);
    }
  }
}

TEST(routing, ecmp_is_per_flow_stable) {
  const auto t = make_fattree16();
  const routing routes{t};
  const auto hosts = t.hosts();
  const auto p1 = routes.flow_path(hosts[0], hosts[12], 5);
  const auto p2 = routes.flow_path(hosts[0], hosts[12], 5);
  EXPECT_EQ(p1, p2);
}

TEST(routing, ecmp_spreads_flows_across_equal_cost_paths) {
  const auto t = make_fattree16();
  const routing routes{t};
  const auto hosts = t.hosts();
  std::set<std::vector<node_id>> distinct;
  for (std::uint32_t flow = 0; flow < 64; ++flow)
    distinct.insert(routes.flow_path(hosts[0], hosts[12], flow));
  // Inter-cluster traffic in this fat-tree has several equal-cost paths.
  EXPECT_GT(distinct.size(), 1u);
}

TEST(routing, equal_cost_ports_decrease_distance) {
  const auto t = make_torus2d(4, 4);
  const routing routes{t};
  const auto hosts = t.hosts();
  const auto dist = t.hop_distances(hosts[10]);
  for (const auto dev : t.devices()) {
    for (const std::size_t port : routes.equal_cost_ports(dev, hosts[10])) {
      const auto peer = t.peer_of(dev, port);
      EXPECT_EQ(dist[static_cast<std::size_t>(peer.node)],
                dist[static_cast<std::size_t>(dev)] - 1);
    }
  }
}

TEST(routing, unreachable_destination_throws) {
  topology t;
  const auto h1 = t.add_host("h1");
  const auto h2 = t.add_host("h2");
  const auto s = t.add_device("s");
  t.connect(h1, s);
  (void)h2;  // never connected
  const routing routes{t};
  EXPECT_THROW((void)routes.egress_port(s, h2, 0), std::runtime_error);
}

TEST(routing, rejects_non_host_destination) {
  const auto t = make_line(3);
  const routing routes{t};
  const auto sw = t.devices()[0];
  if (dqn::util::contracts_enabled) {
    EXPECT_THROW((void)routes.equal_cost_ports(sw, sw), dqn::util::contract_violation);
  }
}

// Parameterized sweep: every evaluation topology yields a working routing.
// --- shard planning (core/engine.cpp consumes these plans) -----------------

// Every shard plan must be a partition of the device-index range: each index
// appears exactly once, and shard sizes stay balanced (differ by <= 1) so no
// worker is starved before stealing even starts.
void expect_valid_partition(const shard_plan& plan, std::size_t device_count,
                            std::size_t shard_count) {
  ASSERT_EQ(plan.shards.size(), shard_count);
  std::set<std::size_t> seen;
  std::size_t min_size = device_count;
  std::size_t max_size = 0;
  for (const auto& shard : plan.shards) {
    min_size = std::min(min_size, shard.size());
    max_size = std::max(max_size, shard.size());
    for (const auto index : shard) {
      EXPECT_LT(index, device_count);
      EXPECT_TRUE(seen.insert(index).second) << "device index " << index
                                             << " assigned twice";
    }
  }
  EXPECT_EQ(seen.size(), device_count);
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(sharding, both_strategies_partition_all_devices) {
  const auto t = make_fattree16();
  const auto devices = t.devices();
  for (const auto strategy :
       {shard_strategy::round_robin, shard_strategy::topology}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{3},
                                     std::size_t{4}, std::size_t{7}}) {
      const auto plan = shard_devices(t, devices, shards, strategy);
      expect_valid_partition(plan, devices.size(), shards);
    }
  }
}

TEST(sharding, plan_is_deterministic_across_calls) {
  const auto t = make_fattree16();
  const auto devices = t.devices();
  const auto first = shard_devices(t, devices, 4, shard_strategy::topology);
  const auto second = shard_devices(t, devices, 4, shard_strategy::topology);
  EXPECT_EQ(first.shards, second.shards);
  EXPECT_EQ(first.cross_shard_links, second.cross_shard_links);
}

TEST(sharding, topology_strategy_cuts_fewer_links_than_round_robin) {
  // The BFS-grown plan exists to keep pods together; on a clustered fat-tree
  // it must strictly beat the index shuffle.
  const auto t = make_fattree16();
  const auto devices = t.devices();
  const auto bfs = shard_devices(t, devices, 4, shard_strategy::topology);
  const auto rr = shard_devices(t, devices, 4, shard_strategy::round_robin);
  EXPECT_LT(bfs.cross_shard_links, rr.cross_shard_links);
  EXPECT_GT(rr.cross_shard_links, 0u);
}

TEST(sharding, single_shard_has_no_cross_links) {
  const auto t = make_fattree16();
  const auto devices = t.devices();
  for (const auto strategy :
       {shard_strategy::round_robin, shard_strategy::topology}) {
    const auto plan = shard_devices(t, devices, 1, strategy);
    EXPECT_EQ(plan.cross_shard_links, 0u);
  }
}

TEST(sharding, shard_count_clamps_to_device_count) {
  const auto t = make_line(3);  // 3 switches
  const auto devices = t.devices();
  ASSERT_EQ(devices.size(), 3u);
  const auto plan = shard_devices(t, devices, 8, shard_strategy::topology);
  expect_valid_partition(plan, devices.size(), 3u);
}

TEST(sharding, zero_shards_rejected) {
  const auto t = make_line(3);
  const auto devices = t.devices();
  EXPECT_THROW(shard_devices(t, devices, 0, shard_strategy::topology),
               dqn::util::contract_violation);
}

struct topo_case {
  const char* name;
  topology (*build)();
};

topology build_line4() { return make_line(4); }
topology build_line6() { return make_line(6); }
topology build_torus44() { return make_torus2d(4, 4); }
topology build_torus66() { return make_torus2d(6, 6); }
topology build_ft16() { return make_fattree16(); }
topology build_abilene() { return make_abilene(); }
topology build_geant() { return make_geant(); }

class all_topologies : public ::testing::TestWithParam<topo_case> {};

TEST_P(all_topologies, every_host_pair_is_routable) {
  const auto t = GetParam().build();
  const routing routes{t};
  const auto hosts = t.hosts();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const auto j = (i + hosts.size() / 2 + 1) % hosts.size();
    if (i == j) continue;
    const auto path = routes.flow_path(hosts[i], hosts[j], 3);
    EXPECT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), hosts[i]);
    EXPECT_EQ(path.back(), hosts[j]);
  }
}

TEST_P(all_topologies, diameter_is_positive_and_bounded) {
  const auto t = GetParam().build();
  const auto d = t.diameter();
  EXPECT_GT(d, 0u);
  EXPECT_LT(d, t.node_count());
}

INSTANTIATE_TEST_SUITE_P(
    evaluation_topologies, all_topologies,
    ::testing::Values(topo_case{"Line4", build_line4},
                      topo_case{"Line6", build_line6},
                      topo_case{"Torus4x4", build_torus44},
                      topo_case{"Torus6x6", build_torus66},
                      topo_case{"FatTree16", build_ft16},
                      topo_case{"Abilene", build_abilene},
                      topo_case{"GEANT", build_geant}),
    [](const auto& param_info) { return param_info.param.name; });

}  // namespace
