// Additional edge-case coverage across modules: activation math, optimizer
// bias correction, routing ECMP determinism properties, DES record helpers,
// metric bucket boundaries, PTM error paths, and queueing linear algebra.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <set>
#include <sstream>

#include "core/dlib.hpp"
#include "core/features.hpp"
#include "core/metrics.hpp"
#include "core/pfm.hpp"
#include "core/ptm.hpp"
#include "des/records.hpp"
#include "des/simulator.hpp"
#include "nn/adam.hpp"
#include "nn/dense.hpp"
#include "queueing/linalg.hpp"
#include "queueing/markovian_arrival.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "topo/builders.hpp"
#include "topo/routing.hpp"
#include "util/rng.hpp"
#include "util/check.hpp"

namespace {

using namespace dqn;

// --- nn ---------------------------------------------------------------------

TEST(activations, values_and_output_derivatives) {
  using nn::activation;
  EXPECT_DOUBLE_EQ(nn::apply_activation(activation::identity, 3.5), 3.5);
  EXPECT_DOUBLE_EQ(nn::apply_activation(activation::relu, -2.0), 0.0);
  EXPECT_DOUBLE_EQ(nn::apply_activation(activation::relu, 2.0), 2.0);
  EXPECT_NEAR(nn::apply_activation(activation::tanh, 0.5), std::tanh(0.5), 1e-15);
  EXPECT_NEAR(nn::apply_activation(activation::sigmoid, 0.0), 0.5, 1e-15);
  // Derivatives expressed from outputs.
  EXPECT_DOUBLE_EQ(nn::activation_grad_from_output(activation::identity, 7.0), 1.0);
  EXPECT_DOUBLE_EQ(nn::activation_grad_from_output(activation::relu, 0.0), 0.0);
  const double y = std::tanh(0.3);
  EXPECT_NEAR(nn::activation_grad_from_output(activation::tanh, y), 1 - y * y,
              1e-15);
  EXPECT_NEAR(nn::activation_grad_from_output(activation::sigmoid, 0.25),
              0.25 * 0.75, 1e-15);
}

TEST(adam, first_step_equals_learning_rate) {
  // With bias correction, the first update magnitude is ~lr regardless of
  // gradient scale.
  for (const double gradient : {1e-6, 1.0, 100.0}) {
    nn::aligned_vector w{0.0};
    nn::aligned_vector g{gradient};
    nn::adam_config cfg;
    cfg.learning_rate = 0.01;
    cfg.grad_clip = 0;  // disable clipping for this check
    nn::adam opt{{{&w, &g}}, cfg};
    opt.step();
    EXPECT_NEAR(std::abs(w[0]), 0.01, 1e-4) << "gradient " << gradient;
  }
}

TEST(glorot_init, respects_limit) {
  util::rng rng{3};
  const auto m = nn::matrix::glorot(40, 60, rng);
  const double limit = std::sqrt(6.0 / (40 + 60));
  for (double v : m.data()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

// --- topo -------------------------------------------------------------------

TEST(routing_salt, changes_ecmp_assignment_but_stays_valid) {
  const auto topo = topo::make_fattree64();
  const topo::routing a{topo, 1};
  const topo::routing b{topo, 2};
  const auto hosts = topo.hosts();
  std::size_t differing = 0;
  for (std::uint32_t flow = 0; flow < 32; ++flow) {
    const auto pa = a.flow_path(hosts[0], hosts[40], flow);
    const auto pb = b.flow_path(hosts[0], hosts[40], flow);
    if (pa != pb) ++differing;
    EXPECT_EQ(pa.size(), pb.size());  // both shortest
  }
  EXPECT_GT(differing, 0u);
}

TEST(wan_topologies, carry_geographic_propagation) {
  const auto abilene = topo::make_abilene();
  double max_delay = 0;
  for (const auto& link : abilene.links())
    max_delay = std::max(max_delay, link.propagation_delay);
  // Transcontinental spans are multi-millisecond.
  EXPECT_GT(max_delay, 5e-3);
  const auto geant = topo::make_geant();
  double geant_max = 0;
  for (const auto& link : geant.links())
    geant_max = std::max(geant_max, link.propagation_delay);
  EXPECT_GT(geant_max, 10e-3);  // the transatlantic NY link
}

TEST(fattree, port_counts_match_structure) {
  const auto t = topo::make_fattree16();  // T=2, S=4, C=2
  for (const auto dev : t.devices()) {
    const auto& name = t.at(dev).name;
    if (name.starts_with("tor")) {
      EXPECT_EQ(t.port_count(dev), 2u + 4u) << name;  // aggs + servers
    } else if (name.starts_with("agg")) {
      EXPECT_EQ(t.port_count(dev), 2u + 2u) << name;  // tors + cores
    } else if (name.starts_with("core")) {
      EXPECT_EQ(t.port_count(dev), 2u) << name;  // one agg per cluster
    }
  }
}

// --- des --------------------------------------------------------------------

TEST(records, per_flow_latencies_groups_and_orders) {
  des::run_result result;
  for (int i = 0; i < 6; ++i) {
    des::delivery_record d;
    d.pid = static_cast<std::uint64_t>(i);
    d.flow_id = static_cast<std::uint32_t>(i % 2);
    d.send_time = i * 1.0;
    d.delivery_time = i * 1.0 + 0.5 + 0.1 * i;
    result.deliveries.push_back(d);
  }
  const auto by_flow = des::per_flow_latencies(result);
  ASSERT_EQ(by_flow.size(), 2u);
  EXPECT_EQ(by_flow.at(0).size(), 3u);
  const auto all = des::all_latencies(result);
  EXPECT_EQ(all.size(), 6u);
}

TEST(simulator, drains_to_horizon_even_with_no_events) {
  des::simulator sim;
  sim.run(5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.events_processed(), 0u);
}

// --- core -------------------------------------------------------------------

TEST(metrics, bucket_boundary_packets_are_not_lost) {
  des::run_result result;
  // 40 deliveries per flow, send times straddling bucket edges exactly.
  for (int i = 0; i < 40; ++i) {
    des::delivery_record d;
    d.pid = static_cast<std::uint64_t>(i);
    d.flow_id = 1;
    d.send_time = i * 0.05;  // buckets of 0.5 -> edges at 0.5, 1.0, ...
    d.delivery_time = d.send_time + 1e-3;
    result.deliveries.push_back(d);
  }
  const auto buckets = core::bucketed_latencies(result, 0.5);
  std::size_t total = 0;
  for (const auto& [key, latencies] : buckets) total += latencies.size();
  EXPECT_EQ(total, 40u);
}

TEST(ptm_errors, predict_before_train_throws) {
  core::ptm_config cfg;
  cfg.time_steps = 4;
  core::ptm_model model{cfg};
  std::vector<double> windows(4 * core::feature_count, 0.0);
  EXPECT_THROW((void)model.predict(windows), std::logic_error);
}

TEST(ptm_errors, train_rejects_mismatched_time_steps) {
  core::ptm_config cfg;
  cfg.time_steps = 4;
  core::ptm_model model{cfg};
  core::ptm_dataset data;
  data.time_steps = 8;
  EXPECT_THROW((void)model.train(data), dqn::util::contract_violation);
}

TEST(pfm_errors, out_of_range_port_throws) {
  std::vector<traffic::packet_stream> ingress(2);
  traffic::packet p;
  ingress[0].push_back({p, 0.0});
  if (dqn::util::contracts_enabled) {
    EXPECT_THROW((void)core::apply_forwarding(
                     ingress, [](std::uint32_t, std::size_t) { return 5u; }, 2),
                 dqn::util::contract_violation);
  }
}

TEST(dlib, default_directory_honours_env) {
  ::setenv("DQN_MODEL_DIR", "/tmp/dqn_env_test_dir", 1);
  EXPECT_EQ(core::device_model_library::default_directory(),
            std::filesystem::path{"/tmp/dqn_env_test_dir"});
  ::unsetenv("DQN_MODEL_DIR");
  EXPECT_EQ(core::device_model_library::default_directory(),
            std::filesystem::path{"dqn_models"});
  std::filesystem::remove_all("/tmp/dqn_env_test_dir");
}

TEST(dlib, rejects_path_traversal_keys) {
  core::device_model_library lib{"/tmp/dqn_key_test"};
  EXPECT_THROW((void)lib.contains("../evil"), dqn::util::contract_violation);
  EXPECT_THROW((void)lib.contains(""), dqn::util::contract_violation);
  std::filesystem::remove_all("/tmp/dqn_key_test");
}

// --- stats ------------------------------------------------------------------

TEST(percentile, extremes_are_exact_order_statistics) {
  const std::vector<double> xs{5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 1.0), 9.0);
}

TEST(ecdf, single_sample) {
  const std::vector<double> xs{2.0};
  const stats::ecdf f{xs};
  EXPECT_DOUBLE_EQ(f(1.9), 0.0);
  EXPECT_DOUBLE_EQ(f(2.0), 1.0);
}

// --- queueing ---------------------------------------------------------------

TEST(kron, identity_products) {
  const auto i2 = queueing::identity(2);
  const auto i3 = queueing::identity(3);
  const auto prod = queueing::kron(i2, i3);
  ASSERT_EQ(prod.rows(), 6u);
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 6; ++c)
      EXPECT_DOUBLE_EQ(prod(r, c), r == c ? 1.0 : 0.0);
}

TEST(kron, matches_hand_computed_values) {
  nn::matrix a{2, 2, {1, 2, 3, 4}};
  nn::matrix b{2, 2, {0, 5, 6, 7}};
  const auto k = queueing::kron(a, b);
  EXPECT_DOUBLE_EQ(k(0, 1), 5.0);      // block (0,0) = a00*b: b01
  EXPECT_DOUBLE_EQ(k(1, 0), 6.0);      // block (0,0) = a00*b: b10
  EXPECT_DOUBLE_EQ(k(0, 3), 2.0 * 5);  // block (0,1) = a01*b: b01
  EXPECT_DOUBLE_EQ(k(2, 3), 4.0 * 5);  // block (1,1) = a11*b: b01
  EXPECT_DOUBLE_EQ(k(3, 3), 4.0 * 7);  // block (1,1) = a11*b: b11
}

TEST(superpose, scv_between_components) {
  // Superposing smooth + bursty lands between the two (for comparable rates).
  const auto smooth = queueing::map_process::chain2(0, 20, 20, 1.0);  // SCV 0.5
  const auto bursty = queueing::map_process::mmpp2(1, 1, 30, 2);       // SCV > 1
  const auto sum = queueing::map_process::superpose(smooth, bursty);
  EXPECT_GT(sum.iat_scv(), smooth.iat_scv());
  EXPECT_LT(sum.iat_scv(), bursty.iat_scv());
}

TEST(expm, inverse_property) {
  // expm(A) * expm(-A) = I.
  util::rng rng{5};
  nn::matrix a{3, 3};
  for (auto& v : a.data()) v = rng.normal(0, 0.5);
  nn::matrix neg = a;
  for (auto& v : neg.data()) v = -v;
  const auto prod = nn::matmul(queueing::expm(a), queueing::expm(neg));
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-10);
}

}  // namespace
