#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "des/network.hpp"
#include "des/simulator.hpp"
#include "des/single_device.hpp"
#include "des/traffic_manager.hpp"
#include "topo/builders.hpp"
#include "topo/routing.hpp"
#include "traffic/traffic_gen.hpp"
#include "util/rng.hpp"
#include "util/check.hpp"

namespace {

using namespace dqn::des;
using dqn::traffic::packet;
using dqn::traffic::packet_event;
using dqn::traffic::packet_stream;

packet make_packet(std::uint64_t pid, std::uint32_t bytes, std::uint8_t priority = 0) {
  packet p;
  p.pid = pid;
  p.flow_id = static_cast<std::uint32_t>(pid % 4);
  p.size_bytes = bytes;
  p.priority = priority;
  return p;
}

// --- Simulator kernel ------------------------------------------------------

TEST(simulator, executes_in_time_order) {
  simulator sim;
  std::vector<int> order;
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.run(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(simulator, fifo_among_equal_times) {
  simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.run(5.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(simulator, stops_at_horizon) {
  simulator sim;
  bool ran = false;
  sim.schedule_at(5.0, [&] { ran = true; });
  sim.run(2.0);
  EXPECT_FALSE(ran);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(simulator, events_can_schedule_events) {
  simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(0.1, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run(10.0);
  EXPECT_EQ(depth, 5);
}

TEST(simulator, rejects_past_events) {
  simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.run(2.0);
  EXPECT_THROW(sim.schedule_at(1.5, [] {}), dqn::util::contract_violation);
}

// --- Traffic managers -------------------------------------------------------

TEST(traffic_manager, fifo_preserves_order) {
  tm_config fifo_cfg;
  fifo_cfg.kind = scheduler_kind::fifo;
  traffic_manager tm{fifo_cfg};
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(tm.enqueue(make_packet(i, 100)));
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto p = tm.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->pid, i);
  }
  EXPECT_FALSE(tm.dequeue().has_value());
}

TEST(traffic_manager, drop_tail_when_full) {
  tm_config small_cfg;
  small_cfg.kind = scheduler_kind::fifo;
  small_cfg.buffer_packets = 2;
  traffic_manager tm{small_cfg};
  EXPECT_TRUE(tm.enqueue(make_packet(0, 100)));
  EXPECT_TRUE(tm.enqueue(make_packet(1, 100)));
  EXPECT_FALSE(tm.enqueue(make_packet(2, 100)));
  EXPECT_EQ(tm.drops(), 1u);
  EXPECT_EQ(tm.backlog_packets(), 2u);
}

TEST(traffic_manager, sp_serves_high_priority_first) {
  tm_config cfg;
  cfg.kind = scheduler_kind::sp;
  cfg.classes = 3;
  traffic_manager tm{cfg};
  EXPECT_TRUE(tm.enqueue(make_packet(0, 100, 2)));
  EXPECT_TRUE(tm.enqueue(make_packet(1, 100, 0)));
  EXPECT_TRUE(tm.enqueue(make_packet(2, 100, 1)));
  EXPECT_EQ(tm.dequeue()->pid, 1u);  // priority 0 first
  EXPECT_EQ(tm.dequeue()->pid, 2u);
  EXPECT_EQ(tm.dequeue()->pid, 0u);
}

TEST(traffic_manager, sp_fifo_within_class) {
  tm_config cfg;
  cfg.kind = scheduler_kind::sp;
  cfg.classes = 2;
  traffic_manager tm{cfg};
  EXPECT_TRUE(tm.enqueue(make_packet(10, 100, 1)));
  EXPECT_TRUE(tm.enqueue(make_packet(11, 100, 1)));
  EXPECT_EQ(tm.dequeue()->pid, 10u);
  EXPECT_EQ(tm.dequeue()->pid, 11u);
}

TEST(traffic_manager, wrr_respects_weights_over_a_round) {
  tm_config cfg;
  cfg.kind = scheduler_kind::wrr;
  cfg.classes = 2;
  cfg.class_weights = {3.0, 1.0};
  traffic_manager tm{cfg};
  for (std::uint64_t i = 0; i < 12; ++i)
    EXPECT_TRUE(tm.enqueue(make_packet(i, 100, i % 2 == 0 ? 0 : 1)));
  std::map<int, int> served_in_first_round;
  for (int i = 0; i < 4; ++i) {
    const auto p = tm.dequeue();
    ASSERT_TRUE(p.has_value());
    ++served_in_first_round[p->priority];
  }
  EXPECT_EQ(served_in_first_round[0], 3);
  EXPECT_EQ(served_in_first_round[1], 1);
}

TEST(traffic_manager, wrr_skips_empty_queues) {
  tm_config cfg;
  cfg.kind = scheduler_kind::wrr;
  cfg.classes = 2;
  cfg.class_weights = {1.0, 5.0};
  traffic_manager tm{cfg};
  EXPECT_TRUE(tm.enqueue(make_packet(0, 100, 0)));  // only class 0 backlogged
  EXPECT_EQ(tm.dequeue()->pid, 0u);
  EXPECT_FALSE(tm.dequeue().has_value());
}

TEST(traffic_manager, drr_shares_bytes_by_weight) {
  // Equal packet sizes, weights 2:1 -> byte share 2:1 over a long horizon.
  tm_config cfg;
  cfg.kind = scheduler_kind::drr;
  cfg.classes = 2;
  cfg.class_weights = {2.0, 1.0};
  cfg.drr_quantum_bytes = 500;
  traffic_manager tm{cfg};
  for (std::uint64_t i = 0; i < 600; ++i)
    EXPECT_TRUE(tm.enqueue(make_packet(i, 500, i % 2 == 0 ? 0 : 1)));
  std::map<int, int> served;
  for (int i = 0; i < 300; ++i) {
    const auto p = tm.dequeue();
    ASSERT_TRUE(p.has_value());
    ++served[p->priority];
  }
  EXPECT_NEAR(served[0] / double(served[1]), 2.0, 0.15);
}

TEST(traffic_manager, drr_large_packets_wait_for_deficit) {
  tm_config cfg;
  cfg.kind = scheduler_kind::drr;
  cfg.classes = 2;
  cfg.class_weights = {1.0, 1.0};
  cfg.drr_quantum_bytes = 100;
  traffic_manager tm{cfg};
  EXPECT_TRUE(tm.enqueue(make_packet(0, 250, 0)));  // needs 3 quanta
  EXPECT_TRUE(tm.enqueue(make_packet(1, 100, 1)));
  // Class 1's small packet is served while class 0 accumulates deficit.
  EXPECT_EQ(tm.dequeue()->pid, 1u);
  EXPECT_EQ(tm.dequeue()->pid, 0u);
}

TEST(traffic_manager, wfq_shares_service_by_weight) {
  tm_config cfg;
  cfg.kind = scheduler_kind::wfq;
  cfg.classes = 2;
  cfg.class_weights = {4.0, 1.0};
  traffic_manager tm{cfg};
  for (std::uint64_t i = 0; i < 500; ++i)
    EXPECT_TRUE(tm.enqueue(make_packet(i, 1000, i % 2 == 0 ? 0 : 1)));
  std::map<int, int> served;
  for (int i = 0; i < 200; ++i) ++served[tm.dequeue()->priority];
  EXPECT_NEAR(served[0] / double(served[1]), 4.0, 0.5);
}

TEST(traffic_manager, wfq_equal_weights_interleave) {
  tm_config cfg;
  cfg.kind = scheduler_kind::wfq;
  cfg.classes = 2;
  cfg.class_weights = {1.0, 1.0};
  traffic_manager tm{cfg};
  for (std::uint64_t i = 0; i < 100; ++i)
    EXPECT_TRUE(tm.enqueue(make_packet(i, 1000, i % 2 == 0 ? 0 : 1)));
  std::map<int, int> served;
  for (int i = 0; i < 50; ++i) ++served[tm.dequeue()->priority];
  EXPECT_NEAR(served[0], served[1], 2);
}

TEST(traffic_manager, work_conservation_across_disciplines) {
  // Whatever the discipline, a non-empty TM always dequeues a packet, and
  // total enqueued == total dequeued + backlog.
  for (const auto kind : {scheduler_kind::fifo, scheduler_kind::sp,
                          scheduler_kind::wrr, scheduler_kind::drr,
                          scheduler_kind::wfq}) {
    tm_config cfg;
    cfg.kind = kind;
    cfg.classes = kind == scheduler_kind::fifo ? 1 : 3;
    if (kind == scheduler_kind::wrr || kind == scheduler_kind::drr ||
        kind == scheduler_kind::wfq)
      cfg.class_weights = {5.0, 3.0, 1.0};
    traffic_manager tm{cfg};
    dqn::util::rng rng{5};
    std::size_t enqueued = 0;
    for (std::uint64_t i = 0; i < 200; ++i) {
      if (tm.enqueue(make_packet(
              i, static_cast<std::uint32_t>(rng.uniform_int(64, 1500)),
              static_cast<std::uint8_t>(rng.uniform_int(cfg.classes)))))
        ++enqueued;
    }
    std::size_t dequeued = 0;
    while (dequeued < 150) {
      ASSERT_TRUE(tm.dequeue().has_value()) << to_string(kind);
      ++dequeued;
    }
    EXPECT_EQ(tm.backlog_packets(), enqueued - dequeued) << to_string(kind);
  }
}

TEST(traffic_manager, rejects_invalid_configs) {
  tm_config no_weights;
  no_weights.kind = scheduler_kind::wfq;
  no_weights.classes = 2;
  EXPECT_THROW(traffic_manager{no_weights}, dqn::util::contract_violation);
  tm_config multi_fifo;
  multi_fifo.kind = scheduler_kind::fifo;
  multi_fifo.classes = 2;
  EXPECT_THROW(traffic_manager{multi_fifo}, dqn::util::contract_violation);
}

// --- Single-switch harness ---------------------------------------------------

TEST(single_switch, sojourn_at_idle_queue_is_zero) {
  single_switch_config cfg;
  cfg.ports = 2;
  cfg.bandwidth_bps = 1e9;
  packet_stream sparse;
  for (int i = 0; i < 10; ++i)
    sparse.push_back({make_packet(static_cast<std::uint64_t>(i), 1000), i * 1.0});
  const auto result = run_single_switch(
      cfg, {sparse, {}}, [](std::uint32_t, std::size_t) { return 1u; }, 20.0);
  ASSERT_EQ(result.hops.size(), 10u);
  for (const auto& hop : result.hops)
    EXPECT_NEAR(hop.departure - hop.arrival, 0.0, 1e-12);
}

TEST(single_switch, back_to_back_packets_queue_behind_each_other) {
  single_switch_config cfg;
  cfg.ports = 1;
  cfg.bandwidth_bps = 1e6;  // 1000-byte packet takes 8 ms
  packet_stream burst;
  for (int i = 0; i < 4; ++i)
    burst.push_back({make_packet(static_cast<std::uint64_t>(i), 1000), 0.0});
  const auto result = run_single_switch(
      cfg, {burst}, [](std::uint32_t, std::size_t) { return 0u; }, 1.0);
  ASSERT_EQ(result.hops.size(), 4u);
  // Packet i waits i * 8ms (service of predecessors).
  std::vector<double> sojourns;
  for (const auto& hop : result.hops) sojourns.push_back(hop.departure - hop.arrival);
  std::sort(sojourns.begin(), sojourns.end());
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(sojourns[i], i * 0.008, 1e-9);
}

TEST(single_switch, mm1_waiting_time_matches_theory) {
  // Poisson arrivals + exponential sizes: E[W_queue] = rho/(mu-lambda).
  dqn::util::rng rng{42};
  const double lambda = 600.0, mu = 1000.0;
  const double mean_bytes = 1250.0;
  packet_stream stream;
  double t = 0;
  std::uint64_t pid = 0;
  while (t < 200.0) {
    t += rng.exponential(lambda);
    auto p = make_packet(pid++,
                         std::max<std::uint32_t>(
                             1, static_cast<std::uint32_t>(std::lround(
                                    rng.exponential(1.0 / mean_bytes)))));
    stream.push_back({p, t});
  }
  single_switch_config cfg;
  cfg.ports = 1;
  cfg.bandwidth_bps = mean_bytes * 8.0 * mu;
  const auto result = run_single_switch(
      cfg, {stream}, [](std::uint32_t, std::size_t) { return 0u; }, 200.0);
  double total_wait = 0;
  for (const auto& hop : result.hops) total_wait += hop.departure - hop.arrival;
  const double mean_wait = total_wait / static_cast<double>(result.hops.size());
  const double rho = lambda / mu;
  EXPECT_NEAR(mean_wait, rho / (mu - lambda), 0.15 * rho / (mu - lambda));
}

TEST(single_switch, drops_counted_when_buffer_overflows) {
  single_switch_config cfg;
  cfg.ports = 1;
  cfg.bandwidth_bps = 1e6;
  cfg.tm.buffer_packets = 4;
  packet_stream flood;
  for (int i = 0; i < 100; ++i)
    flood.push_back({make_packet(static_cast<std::uint64_t>(i), 1500), 0.0});
  const auto result = run_single_switch(
      cfg, {flood}, [](std::uint32_t, std::size_t) { return 0u; }, 5.0);
  EXPECT_GT(result.drops, 0u);
  EXPECT_EQ(result.hops.size() + result.drops, 100u);
}

// --- Whole-network DES -------------------------------------------------------

TEST(network, low_load_latency_equals_path_delay) {
  // One widely-spaced flow over Line4: latency = per-hop serialization +
  // propagation, with zero queueing.
  const auto topo = dqn::topo::make_line(4);
  const dqn::topo::routing routes{topo};
  network_config cfg;
  network net{topo, routes, cfg};

  packet_stream stream;
  for (int i = 0; i < 20; ++i) {
    auto p = make_packet(static_cast<std::uint64_t>(i), 1000);
    p.flow_id = 1;
    p.src_host = 0;
    p.dst_host = 3;  // host index
    stream.push_back({p, 0.1 + i * 0.01});
  }
  std::vector<packet_stream> host_streams(4);
  host_streams[0] = stream;
  const auto result = net.run(host_streams, 1.0);
  ASSERT_EQ(result.deliveries.size(), 20u);
  // Path: host0 uplink + 3 switch hops + final downlink = 5 links of 10G,
  // each 0.8us serialization + 1us propagation.
  const double expected = 5 * (1000 * 8.0 / 10e9 + 1e-6);
  for (const auto& d : result.deliveries) EXPECT_NEAR(d.latency(), expected, 1e-9);
}

TEST(network, conserves_packets_at_moderate_load) {
  const auto topo = dqn::topo::make_fattree16();
  const dqn::topo::routing routes{topo};
  dqn::util::rng rng{7};
  auto flows = dqn::traffic::make_uniform_flows(16, 1, rng);
  dqn::traffic::tg_util_config tg;
  tg.model = dqn::traffic::traffic_model::poisson;
  tg.per_flow_rate = 20'000.0;
  auto generators = dqn::traffic::make_generators(flows, tg);
  const auto streams = dqn::traffic::per_host_streams(generators, 16, 0.2, rng);
  std::size_t injected = 0;
  for (const auto& s : streams) injected += s.size();

  network net{topo, routes, {}};
  const auto result = net.run(streams, 0.2);
  EXPECT_EQ(result.deliveries.size() + result.drops, injected);
  EXPECT_EQ(result.drops, 0u);  // moderate load, large buffers
}

TEST(network, hop_records_cover_every_switch_on_path) {
  const auto topo = dqn::topo::make_line(3);
  const dqn::topo::routing routes{topo};
  network_config net_cfg;
  net_cfg.record_hops = true;
  network net{topo, routes, net_cfg};
  packet_stream stream;
  auto p = make_packet(0, 500);
  p.flow_id = 9;
  p.dst_host = 2;
  stream.push_back({p, 0.0});
  std::vector<packet_stream> host_streams(3);
  host_streams[0] = stream;
  const auto result = net.run(host_streams, 1.0);
  ASSERT_EQ(result.deliveries.size(), 1u);
  EXPECT_EQ(result.hops.size(), 3u);  // s0, s1, s2
}

TEST(network, queueing_latency_grows_with_load) {
  const auto topo = dqn::topo::make_line(2);
  const dqn::topo::routing routes{topo};
  auto run_at = [&](double rate) {
    dqn::util::rng rng{11};
    std::vector<dqn::traffic::flow_spec> flows;
    for (std::uint32_t f = 0; f < 2; ++f) {
      dqn::traffic::flow_spec flow;
      flow.flow_id = f;
      flow.src_host = static_cast<std::int32_t>(f);
      flow.dst_host = static_cast<std::int32_t>(1 - f);
      flows.push_back(flow);
    }
    dqn::traffic::tg_util_config tg;
    tg.model = dqn::traffic::traffic_model::poisson;
    tg.per_flow_rate = rate;
    auto generators = dqn::traffic::make_generators(flows, tg);
    const auto streams = dqn::traffic::per_host_streams(generators, 2, 0.5, rng);
    network net{topo, routes, {}};
    const auto result = net.run(streams, 0.5);
    double total = 0;
    for (const auto& d : result.deliveries) total += d.latency();
    return total / static_cast<double>(result.deliveries.size());
  };
  // 10G links, ~712B mean packets -> ~1.75 Mpps capacity.
  const double low = run_at(100'000.0);   // ~6% load
  const double high = run_at(1'500'000.0);  // ~85% load
  EXPECT_GT(high, low * 1.5);
}

TEST(network, rejects_wrong_stream_count) {
  const auto topo = dqn::topo::make_line(2);
  const dqn::topo::routing routes{topo};
  network net{topo, routes, {}};
  EXPECT_THROW((void)net.run({}, 1.0), dqn::util::contract_violation);
}

}  // namespace
