// Unit tests for the contracts layer (util/check.hpp): macro semantics,
// failure modes, the observer hook, the obs-layer violation counter, and one
// negative contract test per swept module. The per-module tests double as the
// guarantee that DQN_CHECK sites are actually live in checked builds — the
// remaining negative coverage lives next to each module's own test suite
// (test_nn, test_topo, test_des, test_obs, test_more_coverage,
// test_trace_io_and_fluid).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "des/traffic_manager.hpp"
#include "nn/seq.hpp"
#include "obs/contracts.hpp"
#include "obs/sink.hpp"
#include "topo/builders.hpp"
#include "util/check.hpp"

namespace {

using dqn::util::contract_failure_info;
using dqn::util::contract_mode;
using dqn::util::contract_violation;
using dqn::util::contract_violation_count;
using dqn::util::contracts_enabled;
using dqn::util::reset_contract_violation_count;
using dqn::util::scoped_contract_mode;
using dqn::util::set_contract_observer;

// The observer slot is a single global; tests that install one always restore
// the previous value via this RAII helper.
class scoped_observer {
 public:
  explicit scoped_observer(dqn::util::contract_observer obs)
      : previous_{set_contract_observer(obs)} {}
  scoped_observer(const scoped_observer&) = delete;
  scoped_observer& operator=(const scoped_observer&) = delete;
  ~scoped_observer() { set_contract_observer(previous_); }

 private:
  dqn::util::contract_observer previous_;
};

TEST(contracts, ensure_throws_with_location_and_message) {
  const int got = 3;
  try {
    DQN_ENSURE(got == 4, "got ", got, ", want 4");
    FAIL() << "DQN_ENSURE did not throw";
  } catch (const contract_violation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("ensure failed"), std::string::npos) << what;
    EXPECT_NE(what.find("got == 4"), std::string::npos) << what;
    EXPECT_NE(what.find("got 3, want 4"), std::string::npos) << what;
  }
}

TEST(contracts, ensure_passes_silently) {
  const auto before = contract_violation_count();
  DQN_ENSURE(1 + 1 == 2);
  DQN_ENSURE(true, "never formatted");
  EXPECT_EQ(contract_violation_count(), before);
}

TEST(contracts, violation_is_a_logic_error) {
  EXPECT_THROW(DQN_ENSURE(false), std::logic_error);
}

TEST(contracts, check_respects_build_mode) {
  const auto before = contract_violation_count();
  if (contracts_enabled) {
    EXPECT_THROW(DQN_CHECK(false, "live"), contract_violation);
    EXPECT_EQ(contract_violation_count(), before + 1);
  } else {
    DQN_CHECK(false, "compiled out");
    EXPECT_EQ(contract_violation_count(), before);
  }
}

TEST(contracts, check_range_reports_both_values) {
  if (!contracts_enabled) GTEST_SKIP() << "DQN_CHECK_RANGE compiled out";
  const std::size_t index = 7;
  const std::size_t size = 3;
  try {
    DQN_CHECK_RANGE(index, size);
    FAIL() << "DQN_CHECK_RANGE did not throw";
  } catch (const contract_violation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("range failed"), std::string::npos) << what;
    EXPECT_NE(what.find("index = 7"), std::string::npos) << what;
    EXPECT_NE(what.find("size = 3"), std::string::npos) << what;
  }
}

TEST(contracts, check_range_rejects_negative_signed_index) {
  if (!contracts_enabled) GTEST_SKIP() << "DQN_CHECK_RANGE compiled out";
  const int index = -1;
  EXPECT_THROW(DQN_CHECK_RANGE(index, std::size_t{10}), contract_violation);
}

TEST(contracts, invariant_reports_kind) {
  if (!contracts_enabled) GTEST_SKIP() << "DQN_INVARIANT compiled out";
  try {
    DQN_INVARIANT(false, "broken");
    FAIL() << "DQN_INVARIANT did not throw";
  } catch (const contract_violation& e) {
    EXPECT_NE(std::string{e.what()}.find("invariant failed"),
              std::string::npos);
  }
}

TEST(contracts, unreachable_always_throws_in_throw_mode) {
  // DQN_UNREACHABLE is always live, whatever the build mode.
  EXPECT_THROW(DQN_UNREACHABLE("should not get here"), contract_violation);
}

TEST(contracts, disabled_macros_do_not_evaluate_operands) {
  if (contracts_enabled) GTEST_SKIP() << "checks are live in this build";
  bool evaluated = false;
  auto touch = [&evaluated] {
    evaluated = true;
    return false;
  };
  DQN_CHECK(touch(), "side effect");
  EXPECT_FALSE(evaluated);
}

TEST(contracts, log_and_continue_returns_and_counts) {
  reset_contract_violation_count();
  scoped_contract_mode mode{contract_mode::log_and_continue};
  DQN_ENSURE(false, "survivable");
  DQN_ENSURE(false, "survivable again");
  EXPECT_EQ(contract_violation_count(), 2u);
}

TEST(contracts, scoped_mode_restores_previous_mode) {
  ASSERT_EQ(dqn::util::get_contract_mode(), contract_mode::throw_exception);
  {
    scoped_contract_mode mode{contract_mode::log_and_continue};
    EXPECT_EQ(dqn::util::get_contract_mode(),
              contract_mode::log_and_continue);
  }
  EXPECT_EQ(dqn::util::get_contract_mode(), contract_mode::throw_exception);
}

namespace observer_state {
std::atomic<int> calls{0};
std::string last_kind;

void record(const contract_failure_info& info) {
  calls.fetch_add(1);
  last_kind = info.kind;
}

void throwing(const contract_failure_info&) { throw std::runtime_error{"x"}; }
}  // namespace observer_state

TEST(contracts, observer_sees_every_violation) {
  observer_state::calls = 0;
  scoped_observer obs{&observer_state::record};
  EXPECT_THROW(DQN_ENSURE(false, "observed"), contract_violation);
  EXPECT_EQ(observer_state::calls.load(), 1);
  EXPECT_EQ(observer_state::last_kind, "ensure");
}

TEST(contracts, throwing_observer_does_not_change_failure_semantics) {
  scoped_observer obs{&observer_state::throwing};
  // Still the configured mode's exception, not the observer's.
  EXPECT_THROW(DQN_ENSURE(false), contract_violation);
}

TEST(contracts, set_observer_returns_previous) {
  const auto prev = set_contract_observer(&observer_state::record);
  EXPECT_EQ(set_contract_observer(prev), &observer_state::record);
}

TEST(contracts, obs_bridge_counts_violations_per_kind) {
  dqn::obs::sink sink;
  dqn::obs::install_contract_counter(sink);
  EXPECT_THROW(DQN_ENSURE(false, "counted"), contract_violation);
  EXPECT_THROW(DQN_ENSURE(false, "counted again"), contract_violation);
  dqn::obs::remove_contract_counter();
  EXPECT_EQ(sink.metrics().counter("contracts.violations"), 2.0);
  EXPECT_EQ(sink.metrics().counter("contracts.violations.ensure"), 2.0);
  // Removed: further violations no longer reach the sink.
  EXPECT_THROW(DQN_ENSURE(false, "not counted"), contract_violation);
  EXPECT_EQ(sink.metrics().counter("contracts.violations"), 2.0);
}

TEST(contracts, obs_bridge_counts_under_log_and_continue) {
  // The soak-run configuration from the module comment: violations are
  // logged, execution continues, and the sink keeps score.
  dqn::obs::sink sink;
  dqn::obs::install_contract_counter(sink);
  {
    scoped_contract_mode mode{contract_mode::log_and_continue};
    DQN_ENSURE(false, "soak");
  }
  dqn::obs::remove_contract_counter();
  EXPECT_EQ(sink.metrics().counter("contracts.violations"), 1.0);
}

// ---------------------------------------------------------------------------
// One negative contract test per swept module.
// ---------------------------------------------------------------------------

TEST(contracts_modules, nn_seq_batch_rejects_out_of_range_slice) {
  if (!contracts_enabled) GTEST_SKIP() << "DQN_CHECK compiled out";
  const dqn::nn::seq_batch batch{2, 3, 4};
  EXPECT_THROW((void)batch.time_slice(3), contract_violation);
  EXPECT_THROW((void)batch.sample(2), contract_violation);
}

TEST(contracts_modules, topo_rejects_unknown_node) {
  if (!contracts_enabled) GTEST_SKIP() << "DQN_CHECK compiled out";
  const auto topo = dqn::topo::make_line(3);
  EXPECT_THROW((void)topo.at(-1), contract_violation);
  EXPECT_THROW((void)topo.at(99), contract_violation);
  EXPECT_THROW((void)topo.link_at(99), contract_violation);
}

TEST(contracts_modules, des_rejects_unknown_queue_class) {
  if (!contracts_enabled) GTEST_SKIP() << "DQN_CHECK compiled out";
  dqn::des::tm_config cfg;
  cfg.kind = dqn::des::scheduler_kind::fifo;
  cfg.classes = 1;
  const dqn::des::traffic_manager tm{cfg};
  EXPECT_THROW((void)tm.queue_length(1), contract_violation);
}

TEST(contracts_modules, des_rejects_bad_scheduler_config_in_every_build) {
  // DQN_ENSURE path: live in Release too.
  dqn::des::tm_config cfg;
  cfg.kind = dqn::des::scheduler_kind::wrr;
  cfg.classes = 2;
  cfg.class_weights = {1.0};  // one weight short
  EXPECT_THROW(dqn::des::traffic_manager{cfg}, contract_violation);
}

}  // namespace
