// Live telemetry plane (src/obs/telemetry): Prometheus exposition
// correctness (name sanitization, label escaping, bucket monotonicity, a
// full parse round-trip of the rendered document), the snapshot ring, the
// background sampler's delta arithmetic, OS resource stats, the run ledger
// (direct and through the unified estimator API), the embedded HTTP server
// end-to-end on an ephemeral loopback port, the summary-table WARNING
// footer, and the run-recorder error path (des/run_recorder.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "des/estimator_factory.hpp"
#include "des/run_api.hpp"
#include "des/run_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metric_registry.hpp"
#include "obs/sink.hpp"
#include "obs/telemetry/http_server.hpp"
#include "obs/telemetry/prometheus.hpp"
#include "obs/telemetry/resource_stats.hpp"
#include "obs/telemetry/run_ledger.hpp"
#include "obs/telemetry/sampler.hpp"
#include "obs/telemetry/snapshot_ring.hpp"
#include "obs/telemetry/telemetry.hpp"
#include "obs/telemetry/telemetry_config.hpp"
#include "topo/builders.hpp"
#include "topo/routing.hpp"
#include "traffic/traffic_gen.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace dqn;
using namespace dqn::obs::telemetry;

// ---------------------------------------------------------------- exposition

TEST(telemetry_prometheus, sanitizes_metric_names) {
  EXPECT_EQ(sanitize_metric_name("engine.deliveries"), "engine_deliveries");
  EXPECT_EQ(sanitize_metric_name("des.wall-seconds"), "des_wall_seconds");
  EXPECT_EQ(sanitize_metric_name("a:b_c9"), "a:b_c9");  // all legal, kept
  EXPECT_EQ(sanitize_metric_name("9lives"), "_9lives");  // no leading digit
  EXPECT_EQ(sanitize_metric_name(""), "_");
  EXPECT_EQ(sanitize_metric_name("p50%"), "p50_");
}

TEST(telemetry_prometheus, escapes_label_values) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
}

TEST(telemetry_prometheus, renders_numbers_that_round_trip) {
  EXPECT_EQ(prometheus_number(0.0), "0");
  EXPECT_EQ(prometheus_number(42.0), "42");
  EXPECT_EQ(prometheus_number(0.1), "0.1");
  EXPECT_EQ(prometheus_number(std::nan("")), "NaN");
  EXPECT_EQ(prometheus_number(HUGE_VAL), "+Inf");
  EXPECT_EQ(prometheus_number(-HUGE_VAL), "-Inf");
  // Shortest representation still parses back to the exact double.
  const double awkward = 1.0 / 3.0;
  EXPECT_DOUBLE_EQ(std::stod(prometheus_number(awkward)), awkward);
}

// Minimal exposition-format parser: every line must be a `# TYPE` comment or
// a `name[{labels}] value` sample with a legal metric name and a parseable
// value. Fills `samples` with (name-with-labels, value) pairs. Void so the
// fatal ASSERT macros are usable inside.
void parse_exposition(const std::string& text,
                      std::vector<std::pair<std::string, double>>& samples) {
  std::istringstream in{text};
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream comment{line.substr(7)};
      std::string name, type;
      comment >> name >> type;
      ASSERT_FALSE(name.empty());
      ASSERT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string key = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(key.empty()) << line;
    // Name = key up to '{'; must match [a-zA-Z_:][a-zA-Z0-9_:]*.
    const std::string name = key.substr(0, key.find('{'));
    for (std::size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      c == '_' || c == ':' ||
                      (i > 0 && c >= '0' && c <= '9');
      ASSERT_TRUE(ok) << "bad metric name char in: " << line;
    }
    double parsed = 0;
    if (value == "NaN") parsed = std::nan("");
    else if (value == "+Inf") parsed = HUGE_VAL;
    else if (value == "-Inf") parsed = -HUGE_VAL;
    else parsed = std::stod(value);
    samples.emplace_back(key, parsed);
  }
}

TEST(telemetry_prometheus, exposition_parses_and_buckets_are_monotone) {
  obs::sink sink;
  sink.count("engine.deliveries", 123);
  sink.gauge("engine.pool_queue_depth", 3);
  // Values spanning many decades, plus a zero (underflow bucket) and a
  // beyond-the-ladder outlier that must only land in +Inf.
  for (const double v : {0.0, 1e-8, 1e-6, 1e-6, 3e-4, 0.02, 0.5, 12.0, 1e9})
    sink.observe("engine.device_infer_seconds", v);

  const std::string text = to_prometheus(sink.metrics().snapshot());
  std::vector<std::pair<std::string, double>> samples;
  parse_exposition(text, samples);
  ASSERT_FALSE(samples.empty());

  EXPECT_NE(text.find("# TYPE engine_deliveries counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE engine_pool_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE engine_device_infer_seconds histogram"),
            std::string::npos);

  // Cumulative bucket counts never decrease, and +Inf equals _count.
  std::vector<double> bucket_counts;
  double inf_count = -1, total_count = -1, sum = -1;
  double p50 = -1, p999 = -1;
  for (const auto& [key, value] : samples) {
    if (key.rfind("engine_device_infer_seconds_bucket{le=\"+Inf\"}", 0) == 0)
      inf_count = value;
    else if (key.rfind("engine_device_infer_seconds_bucket", 0) == 0)
      bucket_counts.push_back(value);
    else if (key == "engine_device_infer_seconds_count")
      total_count = value;
    else if (key == "engine_device_infer_seconds_sum")
      sum = value;
    else if (key == "engine_device_infer_seconds_p50")
      p50 = value;
    else if (key == "engine_device_infer_seconds_p999")
      p999 = value;
  }
  ASSERT_FALSE(bucket_counts.empty());
  EXPECT_TRUE(std::is_sorted(bucket_counts.begin(), bucket_counts.end()));
  EXPECT_DOUBLE_EQ(inf_count, 9.0);
  EXPECT_DOUBLE_EQ(total_count, 9.0);
  // The 1e9 outlier is past the ladder: the last finite bound holds 8.
  EXPECT_DOUBLE_EQ(bucket_counts.back(), 8.0);
  EXPECT_GT(sum, 1e9 - 1);
  // Companion quantile gauges ride along and are ordered.
  ASSERT_GE(p50, 0);
  EXPECT_LE(p50, p999);
}

TEST(telemetry_prometheus, colliding_sanitized_names_keep_one_family) {
  obs::metric_registry reg;
  reg.add("a.b", 1);
  reg.add("a_b", 2);  // sanitizes to the same family
  obs::registry_snapshot snap = reg.snapshot();
  const std::string text = to_prometheus(snap);
  // Exactly one TYPE line for a_b — the duplicate is skipped, not emitted
  // twice (which scrapers reject).
  std::size_t occurrences = 0;
  for (std::size_t pos = text.find("# TYPE a_b counter");
       pos != std::string::npos;
       pos = text.find("# TYPE a_b counter", pos + 1))
    ++occurrences;
  EXPECT_EQ(occurrences, 1u);
}

// ----------------------------------------------------------------- the ring

TEST(telemetry_ring, bounded_with_eviction_and_windowing) {
  snapshot_ring ring{3};
  for (int i = 0; i < 5; ++i) {
    telemetry_sample sample;
    sample.time_seconds = i;
    ring.push(std::move(sample));
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_EQ(ring.total_pushed(), 5u);
  ASSERT_TRUE(ring.latest().has_value());
  EXPECT_DOUBLE_EQ(ring.latest()->time_seconds, 4.0);
  const auto recent = ring.window(3.0);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_DOUBLE_EQ(recent.front().time_seconds, 3.0);
  EXPECT_EQ(ring.all().size(), 3u);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_FALSE(ring.latest().has_value());
}

// -------------------------------------------------------------- the sampler

TEST(telemetry_sampler, tick_computes_deltas_and_publishes_resources) {
  obs::sink sink;
  snapshot_ring ring{16};
  // A very long period: the background thread effectively never fires on
  // its own, every tick below is driven by the test.
  auto config = telemetry_config{}.with_enabled(true).with_sample_period_ms(
      60 * 60 * 1000);
  snapshot_sampler sampler{sink, ring, config};

  sink.count("engine.deliveries", 100);
  sampler.tick();
  sink.count("engine.deliveries", 50);
  sampler.tick();

  EXPECT_GE(sampler.samples(), 2u);
  const auto latest = ring.latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->counter_totals.at("engine.deliveries"), 150.0);
  EXPECT_GT(latest->interval_seconds, 0.0);
  // Rate = delta / interval for the 50 added between the ticks.
  const double rate = latest->counter_rates.at("engine.deliveries");
  EXPECT_NEAR(rate * latest->interval_seconds, 50.0, 1e-6);
  // The tick published the process gauges into the registry.
  const auto snap = sink.metrics().snapshot();
  EXPECT_TRUE(snap.gauges.count("process.cpu_seconds") == 1);
  EXPECT_TRUE(snap.gauges.count("process.max_rss_bytes") == 1);
  EXPECT_TRUE(snap.gauges.count("telemetry.samples") == 1);
  sampler.stop();  // idempotent with the destructor
}

TEST(telemetry_resources, process_stats_are_sane) {
  const process_resource_stats stats = sample_process_stats();
  EXPECT_GE(stats.cpu_seconds(), 0.0);
#if defined(__linux__)
  EXPECT_GT(stats.rss_bytes, 0u);
  EXPECT_GE(stats.threads, 1u);
  const auto threads = sample_thread_cpu();
  EXPECT_GE(threads.size(), 1u);
#endif
  EXPECT_GT(stats.max_rss_bytes, 0u);
  obs::sink sink;
  publish_resource_gauges(sink);
  EXPECT_GT(sink.metrics().gauge("process.max_rss_bytes"), 0.0);
}

// ------------------------------------------------------------ the run ledger

TEST(telemetry_ledger, bounded_and_monotone_ids) {
  run_ledger ledger{2};
  for (int i = 0; i < 4; ++i) {
    run_record record;
    record.estimator = "e" + std::to_string(i);
    record.status = "ok";
    EXPECT_EQ(ledger.record(std::move(record)),
              static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_EQ(ledger.size(), 2u);
  EXPECT_EQ(ledger.total(), 4u);
  const auto recent = ledger.recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent.front().estimator, "e2");
  EXPECT_EQ(recent.back().estimator, "e3");
}

std::vector<traffic::packet_stream> tiny_streams(std::size_t hosts,
                                                 double horizon) {
  util::rng rng{7};
  auto flows = traffic::make_uniform_flows(hosts, 1, rng);
  traffic::tg_util_config tg;
  tg.per_flow_rate = 20'000.0;
  tg.seed = 7;
  auto generators = traffic::make_generators(flows, tg);
  return traffic::per_host_streams(generators, hosts, horizon, rng);
}

TEST(telemetry_ledger, estimator_run_records_into_the_sink) {
  const auto topo = topo::make_line(2);
  const topo::routing routes{topo};
  const auto streams = tiny_streams(topo.hosts().size(), 0.005);

  des::estimator_context context;
  context.topo = &topo;
  context.routes = &routes;
  const auto oracle = des::make_estimator("des", context);

  obs::sink sink;
  des::run_request request;
  request.host_streams = &streams;
  request.horizon = 0.005;
  request.sink = &sink;
  const auto result = oracle->run(request);
  EXPECT_FALSE(result.deliveries.empty());

  const auto runs = sink.runs().recent();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs.front().estimator, "des");
  EXPECT_EQ(runs.front().backend, "-");
  EXPECT_EQ(runs.front().status, "ok");
  EXPECT_EQ(runs.front().deliveries, result.deliveries.size());
  EXPECT_GT(runs.front().wall_seconds, 0.0);
}

TEST(telemetry_ledger, recorder_destructor_records_the_error_path) {
  obs::sink sink;
  {
    des::run_recorder recorder{&sink, "deepqueuenet", "ptm"};
    // No complete(): simulates run() throwing past the recorder.
  }
  const auto runs = sink.runs().recent();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs.front().status, "error");
  EXPECT_EQ(runs.front().backend, "ptm");
  EXPECT_EQ(runs.front().deliveries, 0u);
}

// ----------------------------------------------------------- the HTTP plane

// Minimal blocking HTTP GET against loopback; returns the full response
// (status line + headers + body), or "" on connection failure.
std::string http_get(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof address) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[2048];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(telemetry_http, url_decode_and_target_parsing) {
  EXPECT_EQ(http_server::url_decode("a%2Fb+c"), "a/b c");
  EXPECT_EQ(http_server::url_decode("%zz"), "%zz");  // malformed kept as-is
  const auto request = http_server::parse_target("/series?window=10&k=v%20w");
  EXPECT_EQ(request.path, "/series");
  EXPECT_EQ(request.query.at("window"), "10");
  EXPECT_EQ(request.query.at("k"), "v w");
}

TEST(telemetry_http, serves_all_endpoints_on_an_ephemeral_port) {
  obs::sink sink;
  sink.count("engine.deliveries", 7);
  const auto config = telemetry_config{}
                          .with_enabled(true)
                          .with_sample_period_ms(10)
                          .with_metrics_port(0);
  auto* plane = sink.start_telemetry(config);
  ASSERT_NE(plane, nullptr);
  ASSERT_TRUE(plane->serving());
  const int port = plane->metrics_port();
  ASSERT_GT(port, 0);

  // Idempotent start: same plane back, same port.
  EXPECT_EQ(sink.start_telemetry(config), plane);
  EXPECT_EQ(sink.telemetry_plane(), plane);

  const std::string health = http_get(port, "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("# TYPE engine_deliveries counter"),
            std::string::npos);

  // Counters are monotone across scrapes.
  sink.count("engine.deliveries", 3);
  const std::string metrics2 = http_get(port, "/metrics");
  EXPECT_NE(metrics2.find("engine_deliveries 10"), std::string::npos);

  const auto body_of = [](const std::string& response) {
    const std::size_t split = response.find("\r\n\r\n");
    return split == std::string::npos ? std::string{}
                                      : response.substr(split + 4);
  };
  for (const char* target : {"/snapshot", "/series", "/series?window=5",
                             "/runs"}) {
    const std::string response = http_get(port, target);
    EXPECT_NE(response.find("200 OK"), std::string::npos) << target;
    EXPECT_TRUE(obs::json_is_valid(body_of(response))) << target;
  }

  EXPECT_NE(http_get(port, "/nope").find("404"), std::string::npos);
  EXPECT_NE(http_get(port, "/series?window=abc").find("400"),
            std::string::npos);

  sink.stop_telemetry();
  EXPECT_EQ(sink.telemetry_plane(), nullptr);
  // The socket is really gone: a fresh connection fails or yields nothing.
  EXPECT_EQ(http_get(port, "/healthz").find("200 OK"), std::string::npos);

  // The plane can be started again after a stop.
  auto* second = sink.start_telemetry(config);
  ASSERT_NE(second, nullptr);
  EXPECT_GT(second->metrics_port(), 0);
  sink.stop_telemetry();
}

TEST(telemetry_http, disabled_config_is_a_no_op) {
  obs::sink sink;
  EXPECT_EQ(sink.start_telemetry(telemetry_config{}), nullptr);
  EXPECT_EQ(sink.telemetry_plane(), nullptr);
  sink.stop_telemetry();  // harmless without a plane
}

// ------------------------------------------------------- the summary footer

TEST(telemetry_summary, footer_warns_on_data_loss_counters) {
  obs::sink clean;
  clean.count("engine.deliveries", 5);
  EXPECT_TRUE(clean.summary_table().footer().empty());

  obs::sink lossy;
  lossy.count("trace.dropped", 12);
  lossy.count("contracts.violations", 2);
  const auto table = lossy.summary_table();
  ASSERT_EQ(table.footer().size(), 2u);
  EXPECT_NE(table.footer()[0].find("trace.dropped"), std::string::npos);
  EXPECT_NE(table.footer()[1].find("contracts.violations"),
            std::string::npos);
  // Footer lines render into the text output too.
  EXPECT_NE(table.to_string().find("WARNING"), std::string::npos);

  util::text_table plain{{"a"}};
  plain.add_row({"1"});
  plain.add_footer("note");
  EXPECT_NE(plain.to_string().find("note"), std::string::npos);
  // CSV stays machine-clean: no footer lines.
  EXPECT_EQ(plain.to_csv().find("note"), std::string::npos);
}

}  // namespace
