// Tests for the trace CSV I/O (TGUtil's file interface), the fluid
// baseline, and the MAP superposition / MAP(4) fitting extensions.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "baselines/fluid.hpp"
#include "queueing/map_fit.hpp"
#include "queueing/markovian_arrival.hpp"
#include "topo/builders.hpp"
#include "topo/routing.hpp"
#include "traffic/trace_io.hpp"
#include "util/rng.hpp"
#include "util/check.hpp"

namespace {

using namespace dqn;

traffic::packet_stream sample_stream() {
  traffic::packet_stream stream;
  dqn::util::rng rng{1};
  double t = 0;
  for (int i = 0; i < 200; ++i) {
    t += rng.exponential(1000.0);
    traffic::packet p;
    p.pid = static_cast<std::uint64_t>(i);
    p.flow_id = static_cast<std::uint32_t>(i % 5);
    p.size_bytes = static_cast<std::uint32_t>(rng.uniform_int(64, 1500));
    p.protocol = i % 2 == 0 ? 6 : 17;
    p.priority = static_cast<std::uint8_t>(i % 3);
    p.weight = static_cast<std::uint16_t>(1 + i % 9);
    p.src_host = 0;
    p.dst_host = 1;
    stream.push_back({p, t});
  }
  return stream;
}

TEST(trace_io, roundtrip_preserves_everything) {
  const auto original = sample_stream();
  std::stringstream buffer;
  traffic::write_trace_csv(buffer, original);
  const auto loaded = traffic::read_trace_csv(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(loaded[i].time, original[i].time, 1e-9 * original[i].time);
    EXPECT_EQ(loaded[i].pkt.pid, original[i].pkt.pid);
    EXPECT_EQ(loaded[i].pkt.flow_id, original[i].pkt.flow_id);
    EXPECT_EQ(loaded[i].pkt.size_bytes, original[i].pkt.size_bytes);
    EXPECT_EQ(loaded[i].pkt.protocol, original[i].pkt.protocol);
    EXPECT_EQ(loaded[i].pkt.priority, original[i].pkt.priority);
    EXPECT_EQ(loaded[i].pkt.weight, original[i].pkt.weight);
    EXPECT_EQ(loaded[i].pkt.src_host, original[i].pkt.src_host);
    EXPECT_EQ(loaded[i].pkt.dst_host, original[i].pkt.dst_host);
  }
}

TEST(trace_io, rejects_malformed_input) {
  {
    std::stringstream bad{"not,a,header\n"};
    EXPECT_THROW((void)traffic::read_trace_csv(bad), dqn::util::contract_violation);
  }
  {
    std::stringstream missing_fields;
    missing_fields << "time,pid,flow_id,size_bytes,protocol,priority,weight,"
                      "src_host,dst_host\n1.0,1,2\n";
    EXPECT_THROW((void)traffic::read_trace_csv(missing_fields), dqn::util::contract_violation);
  }
  {
    std::stringstream bad_number;
    bad_number << "time,pid,flow_id,size_bytes,protocol,priority,weight,"
                  "src_host,dst_host\n1.0,x,0,100,17,0,1,0,1\n";
    EXPECT_THROW((void)traffic::read_trace_csv(bad_number), dqn::util::contract_violation);
  }
  {
    std::stringstream out_of_order;
    out_of_order << "time,pid,flow_id,size_bytes,protocol,priority,weight,"
                    "src_host,dst_host\n"
                 << "2.0,0,0,100,17,0,1,0,1\n"
                 << "1.0,1,0,100,17,0,1,0,1\n";
    EXPECT_THROW((void)traffic::read_trace_csv(out_of_order), dqn::util::contract_violation);
  }
  {
    std::stringstream zero_size;
    zero_size << "time,pid,flow_id,size_bytes,protocol,priority,weight,"
                 "src_host,dst_host\n1.0,0,0,0,17,0,1,0,1\n";
    EXPECT_THROW((void)traffic::read_trace_csv(zero_size), dqn::util::contract_violation);
  }
}

TEST(trace_io, file_roundtrip) {
  const auto path = std::string{"/tmp/dqn_trace_test.csv"};
  const auto original = sample_stream();
  traffic::write_trace_csv_file(path, original);
  const auto loaded = traffic::read_trace_csv_file(path);
  EXPECT_EQ(loaded.size(), original.size());
  std::remove(path.c_str());
}

TEST(trace_io, missing_file_throws) {
  EXPECT_THROW((void)traffic::read_trace_csv_file("/nonexistent/trace.csv"),
               std::runtime_error);
}

// --- Fluid baseline -------------------------------------------------------

TEST(fluid, line_delay_matches_mm1_sum) {
  const auto topo = topo::make_line(2, {.bandwidth_bps = 1e8});
  const topo::routing routes{topo};
  std::vector<traffic::flow_spec> flows(1);
  flows[0].flow_id = 0;
  flows[0].src_host = 0;
  flows[0].dst_host = 1;
  const double mean_size = 1000.0;
  const double mu = 1e8 / (8 * mean_size);   // 12500 pps per link
  const double lambda = 5000.0;
  const auto delays = baselines::fluid_estimator::predict_mean_delays(
      topo, routes, flows, {lambda}, mean_size);
  ASSERT_EQ(delays.size(), 1u);
  // Path: host uplink, s0-s1, downlink = 3 links, each 1/(mu-lambda)+prop.
  const double expected = 3 * (1.0 / (mu - lambda) + 1e-6);
  EXPECT_NEAR(delays.at(0), expected, 1e-9);
}

TEST(fluid, overloaded_link_gives_infinite_delay) {
  const auto topo = topo::make_line(2, {.bandwidth_bps = 1e8});
  const topo::routing routes{topo};
  std::vector<traffic::flow_spec> flows(1);
  flows[0].flow_id = 0;
  flows[0].src_host = 0;
  flows[0].dst_host = 1;
  const auto delays = baselines::fluid_estimator::predict_mean_delays(
      topo, routes, flows, {20'000.0}, 1000.0);  // > 12.5k pps capacity
  EXPECT_TRUE(std::isinf(delays.at(0)));
}

TEST(fluid, link_loads_aggregate_over_flows) {
  // Two flows sharing the middle link raise each other's delay.
  const auto topo = topo::make_line(2, {.bandwidth_bps = 1e8});
  const topo::routing routes{topo};
  std::vector<traffic::flow_spec> one(1);
  one[0] = {.flow_id = 0, .src_host = 0, .dst_host = 1};
  std::vector<traffic::flow_spec> two(2);
  two[0] = {.flow_id = 0, .src_host = 0, .dst_host = 1};
  two[1] = {.flow_id = 1, .src_host = 0, .dst_host = 1};
  const auto alone = baselines::fluid_estimator::predict_mean_delays(
      topo, routes, one, {4000.0}, 1000.0);
  const auto shared = baselines::fluid_estimator::predict_mean_delays(
      topo, routes, two, {4000.0, 4000.0}, 1000.0);
  EXPECT_GT(shared.at(0), alone.at(0));
}

// --- MAP superposition and MAP(4) fit --------------------------------------

TEST(map_superpose, rate_adds_and_shape_is_valid) {
  const auto a = queueing::map_process::poisson(100.0);
  const auto b = queueing::map_process::mmpp2(1.0, 2.0, 40.0, 5.0);
  const auto sum = queueing::map_process::superpose(a, b);
  EXPECT_EQ(sum.states(), a.states() * b.states());
  EXPECT_NEAR(sum.mean_rate(), a.mean_rate() + b.mean_rate(),
              1e-6 * (a.mean_rate() + b.mean_rate()));
}

TEST(map_superpose, two_poissons_make_a_poisson) {
  const auto sum = queueing::map_process::superpose(
      queueing::map_process::poisson(10.0), queueing::map_process::poisson(30.0));
  EXPECT_NEAR(sum.mean_rate(), 40.0, 1e-9);
  EXPECT_NEAR(sum.iat_scv(), 1.0, 1e-9);
  EXPECT_NEAR(sum.iat_lag1_correlation(), 0.0, 1e-9);
}

TEST(map_fit4, not_worse_than_map2_on_hard_sample) {
  // Bimodal IATs with positive correlation: beyond MAP(2)'s reach.
  dqn::util::rng rng{7};
  std::vector<double> iats;
  bool burst = false;
  for (int i = 0; i < 30'000; ++i) {
    if (rng.bernoulli(0.1)) burst = !burst;
    iats.push_back(burst ? rng.exponential(2000.0) : 0.001 + rng.exponential(5000.0));
  }
  const auto fit2 = queueing::fit_mmpp2(iats);
  const auto fit4 = queueing::fit_map4(iats);
  EXPECT_LE(fit4.objective, fit2.objective * 1.15);
  EXPECT_NEAR(fit4.achieved.mean, fit4.target.mean, 0.1 * fit4.target.mean);
}

}  // namespace
