// Property-based scheduler tests: weight-share and work-conservation
// invariants swept across disciplines, weight vectors, and packet-size
// mixes (TEST_P). These are the invariants the queueing model of Appendix B
// assumes and the PTM must learn.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "des/single_device.hpp"
#include "des/traffic_manager.hpp"
#include "util/rng.hpp"

namespace {

using namespace dqn::des;
using dqn::traffic::packet;

struct share_case {
  const char* name;
  scheduler_kind kind;
  std::vector<double> weights;
  bool byte_fair;  // DRR/WFQ are byte-fair; WRR is packet-fair
};

class weight_share : public ::testing::TestWithParam<share_case> {};

TEST_P(weight_share, long_run_share_tracks_weights) {
  const auto& param = GetParam();
  tm_config cfg;
  cfg.kind = param.kind;
  cfg.classes = param.weights.size();
  cfg.class_weights = param.weights;
  cfg.buffer_packets = 100'000;
  traffic_manager tm{cfg};

  // Saturate every class with equal-size packets.
  dqn::util::rng rng{17};
  const std::uint32_t size = 1000;
  std::uint64_t pid = 0;
  for (int i = 0; i < 30'000; ++i) {
    packet p;
    p.pid = pid++;
    p.size_bytes = size;
    p.priority = static_cast<std::uint8_t>(i % cfg.classes);
    ASSERT_TRUE(tm.enqueue(p));
  }
  std::map<int, double> served_bytes;
  for (int i = 0; i < 12'000; ++i) {
    const auto p = tm.dequeue();
    ASSERT_TRUE(p.has_value());
    served_bytes[p->priority] += p->size_bytes;
  }
  const double weight_total =
      std::accumulate(param.weights.begin(), param.weights.end(), 0.0);
  double bytes_total = 0;
  for (const auto& [klass, bytes] : served_bytes) bytes_total += bytes;
  for (std::size_t k = 0; k < param.weights.size(); ++k) {
    const double expected = param.weights[k] / weight_total;
    const double actual = served_bytes[static_cast<int>(k)] / bytes_total;
    EXPECT_NEAR(actual, expected, 0.08)
        << param.name << " class " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    disciplines_and_weights, weight_share,
    ::testing::Values(
        share_case{"wrr_2to1", scheduler_kind::wrr, {2, 1}, false},
        share_case{"wrr_5to4", scheduler_kind::wrr, {5, 4}, false},
        share_case{"wrr_331", scheduler_kind::wrr, {3, 3, 1}, false},
        share_case{"drr_2to1", scheduler_kind::drr, {2, 1}, true},
        share_case{"drr_9to1", scheduler_kind::drr, {9, 1}, true},
        share_case{"drr_124", scheduler_kind::drr, {1, 2, 4}, true},
        share_case{"wfq_2to1", scheduler_kind::wfq, {2, 1}, true},
        share_case{"wfq_5to4", scheduler_kind::wfq, {5, 4}, true},
        share_case{"wfq_9to1", scheduler_kind::wfq, {9, 1}, true},
        share_case{"wfq_111", scheduler_kind::wfq, {1, 1, 1}, true}),
    [](const auto& param_info) { return param_info.param.name; });

class byte_fairness : public ::testing::TestWithParam<scheduler_kind> {};

TEST_P(byte_fairness, equal_weights_split_bytes_evenly_with_mixed_sizes) {
  // Class 0 sends small packets, class 1 large ones. Byte-fair schedulers
  // must still split service bytes ~50/50 under saturation.
  tm_config cfg;
  cfg.kind = GetParam();
  cfg.classes = 2;
  cfg.class_weights = {1, 1};
  cfg.buffer_packets = 100'000;
  traffic_manager tm{cfg};
  std::uint64_t pid = 0;
  for (int i = 0; i < 40'000; ++i) {
    packet p;
    p.pid = pid++;
    p.priority = static_cast<std::uint8_t>(i % 2);
    p.size_bytes = p.priority == 0 ? 200 : 1400;
    ASSERT_TRUE(tm.enqueue(p));
  }
  std::map<int, double> served_bytes;
  for (int i = 0; i < 15'000; ++i) {
    const auto p = tm.dequeue();
    ASSERT_TRUE(p.has_value());
    served_bytes[p->priority] += p->size_bytes;
  }
  const double total = served_bytes[0] + served_bytes[1];
  EXPECT_NEAR(served_bytes[0] / total, 0.5, 0.08) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(byte_fair_schedulers, byte_fairness,
                         ::testing::Values(scheduler_kind::drr,
                                           scheduler_kind::wfq),
                         [](const auto& param_info) { return to_string(param_info.param); });

class work_conservation : public ::testing::TestWithParam<scheduler_kind> {};

TEST_P(work_conservation, single_switch_is_work_conserving) {
  // Under sustained backlog the output line never idles: total departures
  // over a busy interval equal capacity * time (within one service).
  const auto kind = GetParam();
  dqn::util::rng rng{29};
  single_switch_config cfg;
  cfg.ports = 1;
  cfg.tm.kind = kind;
  cfg.tm.classes = kind == scheduler_kind::fifo ? 1 : 2;
  if (kind == scheduler_kind::wrr || kind == scheduler_kind::drr ||
      kind == scheduler_kind::wfq)
    cfg.tm.class_weights = {3, 1};
  cfg.tm.buffer_packets = 1'000'000;
  cfg.bandwidth_bps = 1e8;
  // Offered load 2x capacity for the first half of the horizon.
  dqn::traffic::packet_stream stream;
  double t = 0;
  std::uint64_t pid = 0;
  const double capacity_pps = cfg.bandwidth_bps / (1000.0 * 8.0);
  while (t < 0.5) {
    t += rng.exponential(2 * capacity_pps);
    packet p;
    p.pid = pid++;
    p.size_bytes = 1000;
    p.priority = static_cast<std::uint8_t>(pid % cfg.tm.classes);
    stream.push_back({p, t});
  }
  const auto result = run_single_switch(
      cfg, {stream}, [](std::uint32_t, std::size_t) { return 0u; }, 0.5);
  // Departures within [0.1, 0.4] (steady backlog): rate == capacity.
  std::size_t departures = 0;
  for (const auto& hop : result.hops)
    if (hop.departure >= 0.1 && hop.departure < 0.4) ++departures;
  const double measured_rate = static_cast<double>(departures) / 0.3;
  EXPECT_NEAR(measured_rate, capacity_pps, 0.02 * capacity_pps)
      << to_string(kind);
}

INSTANTIATE_TEST_SUITE_P(all_disciplines, work_conservation,
                         ::testing::Values(scheduler_kind::fifo,
                                           scheduler_kind::sp,
                                           scheduler_kind::wrr,
                                           scheduler_kind::drr,
                                           scheduler_kind::wfq),
                         [](const auto& param_info) { return to_string(param_info.param); });

TEST(sp_property, high_priority_latency_insensitive_to_low_priority_load) {
  // Adding low-priority traffic must not increase high-priority waiting
  // (up to one non-preempted service time).
  auto mean_high_wait = [](double low_rate) {
    dqn::util::rng rng{31};
    single_switch_config cfg;
    cfg.ports = 1;
    cfg.tm.kind = scheduler_kind::sp;
    cfg.tm.classes = 2;
    cfg.bandwidth_bps = 1e8;
    dqn::traffic::packet_stream stream;
    std::uint64_t pid = 0;
    for (const auto& [rate, priority] :
         {std::pair{3000.0, std::uint8_t{0}}, std::pair{low_rate, std::uint8_t{1}}}) {
      if (rate <= 0) continue;
      double t = 0;
      while (t < 5.0) {
        t += rng.exponential(rate);
        packet p;
        p.pid = pid++;
        p.size_bytes = 1000;
        p.priority = priority;
        stream.push_back({p, t});
      }
    }
    std::sort(stream.begin(), stream.end());
    const auto result = run_single_switch(
        cfg, {stream}, [](std::uint32_t, std::size_t) { return 0u; }, 5.0);
    double total = 0;
    std::size_t count = 0;
    for (const auto& hop : result.hops) {
      if (hop.priority != 0) continue;
      total += hop.departure - hop.arrival;
      ++count;
    }
    return total / static_cast<double>(count);
  };
  const double alone = mean_high_wait(0.0);
  const double contended = mean_high_wait(8000.0);  // ~64% extra load
  // Non-preemptive SP: at most one residual low-priority service (80 us) of
  // extra wait on average.
  EXPECT_LT(contended, alone + 80e-6);
}

}  // namespace
