// Integration tests: PTM training via DUtil, DLib persistence, the IRSA
// engine against the DES oracle, and the end-to-end metric machinery. One
// small PTM is trained once and shared across the tests in this binary.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <numeric>

#include "core/dlib.hpp"
#include "core/dutil.hpp"
#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "des/network.hpp"
#include "topo/builders.hpp"
#include "topo/routing.hpp"
#include "traffic/traffic_gen.hpp"
#include "util/rng.hpp"
#include "util/check.hpp"

namespace {

using namespace dqn;

core::dutil_config tiny_dutil_config() {
  core::dutil_config cfg;
  cfg.ports = 4;
  cfg.streams = 40;
  cfg.packets_per_stream = 800;
  cfg.ptm.arch = core::ptm_arch::mlp;
  cfg.ptm.time_steps = 8;
  cfg.ptm.mlp_hidden = {64, 32};
  cfg.ptm.epochs = 12;
  cfg.seed = 2024;
  return cfg;
}

// Shared trained model (expensive; built once per test binary).
const core::device_model_bundle& shared_bundle() {
  static const core::device_model_bundle bundle =
      core::train_device_model(tiny_dutil_config());
  return bundle;
}

std::shared_ptr<const core::ptm_model> shared_ptm() {
  return std::shared_ptr<const core::ptm_model>{&shared_bundle().model,
                                                [](const core::ptm_model*) {}};
}

TEST(dutil, generates_consistent_stream_samples) {
  auto cfg = tiny_dutil_config();
  util::rng rng{1};
  const auto sample = core::generate_stream_sample(cfg, rng);
  ASSERT_GT(sample.data.count(), 100u);
  EXPECT_EQ(sample.data.targets.size(), sample.data.count());
  EXPECT_EQ(sample.data.windows.size(),
            sample.data.count() * cfg.ptm.time_steps * core::feature_count);
  for (double target : sample.data.targets) EXPECT_GE(target, 0.0);
  EXPECT_GE(sample.load, cfg.load_lo);
  EXPECT_LE(sample.load, cfg.load_hi);
}

TEST(dutil, load_override_and_scheduler_pinning) {
  auto cfg = tiny_dutil_config();
  util::rng rng{2};
  const auto kind = des::scheduler_kind::wfq;
  const double load = 0.55;
  const auto sample = core::generate_stream_sample(cfg, rng, &kind, &load);
  EXPECT_EQ(sample.scheduler, kind);
  EXPECT_DOUBLE_EQ(sample.load, load);
}

TEST(dutil, training_reduces_mse) {
  const auto& bundle = shared_bundle();
  ASSERT_GE(bundle.report.epoch_mse.size(), 2u);
  EXPECT_LT(bundle.report.epoch_mse.back(), bundle.report.epoch_mse.front());
}

TEST(dutil, trained_model_beats_zero_predictor_on_validation) {
  const auto& bundle = shared_bundle();
  ASSERT_GT(bundle.validation.count(), 0u);
  // normalized w1 of the zero predictor is 1 by construction; the model
  // must do substantially better.
  const double w1 = core::evaluate_w1(bundle.model, bundle.validation);
  EXPECT_LT(w1, 0.5);
}

TEST(dutil, sec_refinement_does_not_hurt) {
  const auto& bundle = shared_bundle();
  const double with_sec = core::evaluate_w1(bundle.model, bundle.validation, true);
  const double without_sec =
      core::evaluate_w1(bundle.model, bundle.validation, false);
  EXPECT_LE(with_sec, without_sec * 1.25);
}

TEST(dlib, store_fetch_roundtrip_preserves_predictions) {
  const auto dir = std::filesystem::temp_directory_path() / "dqn_test_models";
  std::filesystem::remove_all(dir);
  core::device_model_library lib{dir};
  const auto key = core::device_model_library::model_key(core::ptm_arch::mlp, 4, 1);
  EXPECT_FALSE(lib.contains(key));
  lib.store(key, shared_bundle().model);
  ASSERT_TRUE(lib.contains(key));
  const auto loaded = lib.fetch(key);
  const auto& validation = shared_bundle().validation;
  const auto before = shared_bundle().model.predict(validation.windows);
  const auto after = loaded.predict(validation.windows);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_DOUBLE_EQ(before[i], after[i]);
  std::filesystem::remove_all(dir);
}

TEST(dlib, fetch_missing_key_throws) {
  const auto dir = std::filesystem::temp_directory_path() / "dqn_test_models2";
  std::filesystem::remove_all(dir);
  core::device_model_library lib{dir};
  EXPECT_THROW((void)lib.fetch("nope"), std::runtime_error);
  std::filesystem::remove_all(dir);
}

// --- Device model -------------------------------------------------------------

TEST(device_model, conserves_packets_and_orders_egress) {
  core::device_model dev{shared_ptm(), {}};
  util::rng rng{3};
  std::vector<traffic::packet_stream> ingress(4);
  std::size_t total = 0;
  for (std::size_t port = 0; port < 4; ++port) {
    double t = 0;
    for (int i = 0; i < 40; ++i) {
      t += rng.exponential(1e5);
      traffic::packet p;
      p.pid = port * 1000 + static_cast<std::uint64_t>(i);
      p.flow_id = static_cast<std::uint32_t>(rng.uniform_int(6));
      p.size_bytes = 1000;
      ingress[port].push_back({p, t});
      ++total;
    }
  }
  std::vector<core::predicted_hop> hops;
  const auto egress = dev.process(
      ingress, [](std::uint32_t fid, std::size_t) { return fid % 4; }, true, &hops);
  std::size_t out_total = 0;
  for (const auto& stream : egress) {
    EXPECT_TRUE(traffic::is_time_ordered(stream));
    out_total += stream.size();
  }
  EXPECT_EQ(out_total, total);
  EXPECT_EQ(hops.size(), total);
  for (const auto& hop : hops) EXPECT_GE(hop.departure, hop.arrival);
}

TEST(device_model, link_adds_serialization_and_propagation) {
  traffic::packet_stream in;
  traffic::packet p;
  p.pid = 1;
  p.size_bytes = 1000;
  in.push_back({p, 2.0});
  const auto out = core::apply_link(in, 10e9, 5e-6);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].time, 2.0 + 1000 * 8.0 / 10e9 + 5e-6, 1e-15);
}

// --- Engine (IRSA) --------------------------------------------------------------

std::vector<traffic::packet_stream> make_scenario(std::size_t hosts, double rate,
                                                  double horizon,
                                                  std::uint64_t seed) {
  util::rng rng{seed};
  auto flows = traffic::make_uniform_flows(hosts, 1, rng);
  traffic::tg_util_config tg;
  tg.model = traffic::traffic_model::poisson;
  tg.per_flow_rate = rate;
  tg.seed = seed;
  auto generators = traffic::make_generators(flows, tg);
  return traffic::per_host_streams(generators, hosts, horizon, rng);
}

TEST(engine, converges_within_diameter_iterations) {
  const auto topo = topo::make_line(4);
  const topo::routing routes{topo};
  core::dqn_network net{topo, routes, shared_ptm(), {}, {}};
  const auto streams = make_scenario(4, 30'000.0, 0.02, 5);
  (void)net.run(streams, 0.02);
  EXPECT_LE(net.stats().iterations, 1 + topo.diameter());
  EXPECT_GT(net.stats().device_inferences, 0u);
}

TEST(engine, delivers_every_injected_packet) {
  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};
  core::dqn_network net{topo, routes, shared_ptm(), {}, {}};
  const auto streams = make_scenario(16, 20'000.0, 0.01, 6);
  std::size_t injected = 0;
  for (const auto& s : streams) injected += s.size();
  const auto result = net.run(streams, 0.01);
  EXPECT_EQ(result.deliveries.size(), injected);
}

TEST(engine, partition_count_does_not_change_results) {
  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};
  const auto streams = make_scenario(16, 20'000.0, 0.01, 7);
  core::engine_config cfg1;
  cfg1.partitions = 1;
  core::engine_config cfg4;
  cfg4.partitions = 4;
  core::dqn_network net1{topo, routes, shared_ptm(), {}, cfg1};
  core::dqn_network net4{topo, routes, shared_ptm(), {}, cfg4};
  const auto r1 = net1.run(streams, 0.01);
  const auto r4 = net4.run(streams, 0.01);
  ASSERT_EQ(r1.deliveries.size(), r4.deliveries.size());
  for (std::size_t i = 0; i < r1.deliveries.size(); ++i) {
    EXPECT_EQ(r1.deliveries[i].pid, r4.deliveries[i].pid);
    EXPECT_NEAR(r1.deliveries[i].delivery_time, r4.deliveries[i].delivery_time,
                1e-12);
  }
}

TEST(engine, latency_at_least_sum_of_link_delays) {
  const auto topo = topo::make_line(3);
  const topo::routing routes{topo};
  core::dqn_network net{topo, routes, shared_ptm(), {}, {}};
  const auto streams = make_scenario(3, 10'000.0, 0.02, 8);
  const auto result = net.run(streams, 0.02);
  ASSERT_GT(result.deliveries.size(), 0u);
  const auto hosts = topo.hosts();
  for (const auto& d : result.deliveries) {
    const auto path = routes.flow_path(d.src, d.dst, d.flow_id);
    // Minimum latency: per-link 64B serialization + propagation.
    const double min_latency =
        static_cast<double>(path.size() - 1) * (64 * 8.0 / 10e9 + 1e-6);
    EXPECT_GE(d.latency(), min_latency * 0.999);
  }
  (void)hosts;
}

TEST(engine, tracks_des_latencies_at_moderate_load) {
  // End-to-end accuracy smoke test: DQN's mean latency within a factor of
  // the DES oracle on a FatTree16 at moderate load (the full accuracy
  // evaluation lives in the benches).
  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};
  const auto streams = make_scenario(16, 60'000.0, 0.05, 9);

  des::network oracle{topo, routes, {}};
  const auto truth = oracle.run(streams, 0.05);
  core::dqn_network net{topo, routes, shared_ptm(), {}, {}};
  const auto pred = net.run(streams, 0.05);

  const auto t = des::all_latencies(truth);
  const auto p = des::all_latencies(pred);
  ASSERT_GT(t.size(), 100u);
  ASSERT_EQ(p.size(), t.size());
  const double mean_t = std::accumulate(t.begin(), t.end(), 0.0) /
                        static_cast<double>(t.size());
  const double mean_p = std::accumulate(p.begin(), p.end(), 0.0) /
                        static_cast<double>(p.size());
  EXPECT_LT(std::abs(mean_p - mean_t) / mean_t, 0.5);
}

TEST(engine, egress_stream_visibility) {
  const auto topo = topo::make_line(3);
  const topo::routing routes{topo};
  core::engine_config cfg;
  cfg.record_hops = true;
  core::dqn_network net{topo, routes, shared_ptm(), {}, cfg};
  const auto streams = make_scenario(3, 10'000.0, 0.01, 10);
  const auto result = net.run(streams, 0.01);
  EXPECT_GT(result.hops.size(), 0u);
  // Any switch's egress stream is inspectable after the run.
  const auto sw = topo.devices()[1];
  for (std::size_t port = 0; port < topo.port_count(sw); ++port)
    EXPECT_NO_THROW((void)net.egress_stream(sw, port));
  if (dqn::util::contracts_enabled) {
    EXPECT_THROW((void)net.egress_stream(sw, 99), dqn::util::contract_violation);
  }
}

// --- Metrics ---------------------------------------------------------------------

TEST(metrics, identical_runs_have_zero_w1_and_unit_rho) {
  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};
  const auto streams = make_scenario(16, 40'000.0, 0.1, 11);
  des::network oracle{topo, routes, {}};
  const auto truth = oracle.run(streams, 0.1);
  const auto cmp = core::compare_runs(truth, truth, 0.01, 4);
  EXPECT_NEAR(cmp.w1_avg_rtt, 0.0, 1e-12);
  EXPECT_NEAR(cmp.w1_p99_rtt, 0.0, 1e-12);
  EXPECT_NEAR(cmp.rho_avg_rtt.rho, 1.0, 1e-9);
  EXPECT_GT(cmp.samples, 10u);
}

TEST(metrics, shifted_run_has_positive_w1) {
  const auto topo = topo::make_line(2);
  const topo::routing routes{topo};
  const auto streams = make_scenario(2, 40'000.0, 0.1, 12);
  des::network oracle{topo, routes, {}};
  const auto truth = oracle.run(streams, 0.1);
  auto shifted = truth;
  for (auto& d : shifted.deliveries) d.delivery_time += 1e-3;
  const auto cmp = core::compare_runs(truth, shifted, 0.01, 4);
  EXPECT_GT(cmp.w1_avg_rtt, 0.1);
}

TEST(metrics, too_few_samples_throws) {
  des::run_result empty_truth;
  EXPECT_THROW((void)core::compare_runs(empty_truth, empty_truth, 0.1),
               std::runtime_error);
}

}  // namespace
