// Kernel-layer tests: GEMM backend parity against the retained naive
// reference (1e-10 relative, randomized shapes including odd sizes), fused
// epilogue parity, blocked transpose, workspace arena semantics, and the
// zero-allocation guarantee for steady-state inference (asserted with a
// global operator-new counting hook).
#include <gtest/gtest.h>

// This TU replaces the global allocation functions with malloc/free-backed
// counting versions (below). GCC pairs the *declared* ::operator new with
// std::free at inlined call sites and warns, even though the replacement
// really does allocate with malloc — a known false positive for replaced
// global news that forward to malloc.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <vector>

#include "core/features.hpp"
#include "core/ptm.hpp"
#include "nn/aligned.hpp"
#include "nn/dense.hpp"
#include "nn/kernels/epilogue.hpp"
#include "nn/kernels/gemm.hpp"
#include "nn/kernels/gemm_tables.hpp"
#include "nn/lstm.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"
#include "nn/seq.hpp"
#include "nn/seq_regressor.hpp"
#include "nn/workspace.hpp"
#include "obs/sink.hpp"
#include "util/rng.hpp"

// ---------------------------------------------------------------------------
// Global allocation hook: counts every path into the heap so the tests can
// assert that a steady-state forward pass performs zero allocations. The
// overrides forward to malloc/free, which keeps them sanitizer-compatible.

namespace {
std::atomic<std::size_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  const auto alignment = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded))
    return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace dqn;
using nn::kernels::backend;

struct gemm_shape {
  std::size_t m, n, k;
};

// Odd sizes on purpose: they exercise every SIMD tail path (row tails < 4,
// column tails < 8/16, k tails).
constexpr gemm_shape kShapes[] = {
    {1, 1, 1},   {2, 3, 4},    {5, 7, 3},    {7, 5, 11},  {13, 17, 9},
    {16, 16, 16}, {21, 21, 16}, {33, 9, 17},  {4, 64, 8},  {64, 3, 5},
    {3, 31, 29},  {64, 64, 21}, {19, 128, 2}, {1, 40, 40}, {40, 1, 40},
};

void fill_random(std::vector<double>& v, util::rng& rng) {
  for (auto& x : v) x = rng.uniform(-2.0, 2.0);
}

double max_abs(const std::vector<double>& v) {
  double m = 0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

std::vector<backend> compiled_backends() {
  std::vector<backend> out{backend::blocked};
  if (nn::kernels::backend_supported(backend::avx2)) out.push_back(backend::avx2);
  if (nn::kernels::backend_supported(backend::avx512))
    out.push_back(backend::avx512);
  return out;
}

using gemm_call = void (*)(backend, const double*, const double*, double*,
                           std::size_t, std::size_t, std::size_t, bool);

void check_parity(gemm_call call, const gemm_shape& s) {
  util::rng rng{s.m * 1000003 + s.n * 1009 + s.k};
  // A holds m*k elements in every operand order (m×k or k×m), B holds k*n
  // (k×n or n×k), so one sizing covers nn/tn/nt alike.
  std::vector<double> a(s.m * s.k), b(s.k * s.n), c_init(s.m * s.n);
  fill_random(a, rng);
  fill_random(b, rng);
  fill_random(c_init, rng);
  for (const bool accumulate : {false, true}) {
    std::vector<double> ref = c_init;
    call(backend::naive, a.data(), b.data(), ref.data(), s.m, s.n, s.k,
         accumulate);
    const double tol = 1e-10 * std::max(1.0, max_abs(ref));
    for (const backend be : compiled_backends()) {
      std::vector<double> got = c_init;
      call(be, a.data(), b.data(), got.data(), s.m, s.n, s.k, accumulate);
      for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_NEAR(ref[i], got[i], tol)
            << nn::kernels::to_string(be) << " m=" << s.m << " n=" << s.n
            << " k=" << s.k << " acc=" << accumulate << " at " << i;
    }
  }
}

TEST(gemm_kernels, nn_matches_naive_reference) {
  for (const auto& s : kShapes)
    check_parity(
        [](backend be, const double* a, const double* b, double* c,
           std::size_t m, std::size_t n, std::size_t k, bool acc) {
          nn::kernels::gemm_nn(be, a, b, c, m, n, k, acc);
        },
        s);
}

TEST(gemm_kernels, tn_matches_naive_reference) {
  for (const auto& s : kShapes)
    check_parity(
        [](backend be, const double* a, const double* b, double* c,
           std::size_t m, std::size_t n, std::size_t k, bool acc) {
          nn::kernels::gemm_tn(be, a, b, c, m, n, k, acc);
        },
        s);
}

TEST(gemm_kernels, nt_matches_naive_reference) {
  for (const auto& s : kShapes)
    check_parity(
        [](backend be, const double* a, const double* b, double* c,
           std::size_t m, std::size_t n, std::size_t k, bool acc) {
          nn::kernels::gemm_nt(be, a, b, c, m, n, k, acc);
        },
        s);
}

TEST(gemm_kernels, backend_tables_expose_compiled_backends) {
  // The scalar tables are always compiled in.
  EXPECT_TRUE(nn::kernels::detail::naive_table().complete());
  EXPECT_TRUE(nn::kernels::detail::blocked_table().complete());
  // A backend is only "supported" when its table was compiled in.
  if (!nn::kernels::detail::avx2_table().complete()) {
    EXPECT_FALSE(nn::kernels::backend_supported(backend::avx2));
  }
  if (!nn::kernels::detail::avx512_table().complete()) {
    EXPECT_FALSE(nn::kernels::backend_supported(backend::avx512));
  }
}

TEST(gemm_kernels, dispatch_force_and_reset) {
  const backend before = nn::kernels::active_backend();
  nn::kernels::force_backend(backend::naive);
  EXPECT_EQ(nn::kernels::active_backend(), backend::naive);
  nn::kernels::force_backend(backend::blocked);
  EXPECT_EQ(nn::kernels::active_backend(), backend::blocked);
  nn::kernels::reset_backend();
  // Without DQN_KERNEL_BACKEND, reset lands on the strongest supported
  // backend; naive is never auto-selected.
  EXPECT_EQ(nn::kernels::active_backend(),
            nn::kernels::best_supported_backend());
  EXPECT_NE(nn::kernels::active_backend(), backend::naive);
  nn::kernels::force_backend(before);
}

TEST(gemm_kernels, force_unsupported_backend_throws) {
  EXPECT_THROW(nn::kernels::force_backend(static_cast<backend>(250)),
               std::invalid_argument);
}

TEST(gemm_kernels, report_dispatch_records_gauge_and_event) {
  obs::sink sink;
  nn::kernels::report_dispatch(sink);
  EXPECT_EQ(sink.metrics().gauge("nn.kernel_backend"),
            static_cast<double>(nn::kernels::active_backend()));
}

TEST(gemm_kernels, transpose_blocked_matches_scalar) {
  util::rng rng{11};
  for (const auto& s : kShapes) {
    nn::matrix m{s.m, s.n};
    for (auto& x : m.data()) x = rng.uniform(-3.0, 3.0);
    const nn::matrix t = nn::transpose(m);
    ASSERT_EQ(t.rows(), s.n);
    ASSERT_EQ(t.cols(), s.m);
    for (std::size_t r = 0; r < s.m; ++r)
      for (std::size_t c = 0; c < s.n; ++c)
        ASSERT_EQ(m(r, c), t(c, r)) << s.m << "x" << s.n;
  }
}

// ---------------------------------------------------------------------------
// Fused epilogues: bit-identical to the unfused bias + activation sequence.

TEST(epilogue, bias_act_matches_unfused_for_all_activations) {
  util::rng rng{5};
  const std::size_t rows = 7, cols = 13;
  for (const auto act :
       {nn::activation::identity, nn::activation::relu, nn::activation::tanh,
        nn::activation::sigmoid}) {
    nn::matrix y{rows, cols};
    for (auto& v : y.data()) v = rng.uniform(-2.0, 2.0);
    nn::aligned_vector bias(cols);
    for (auto& v : bias) v = rng.uniform(-1.0, 1.0);

    nn::matrix ref = y;
    nn::add_row_vector(ref, bias);
    for (auto& v : ref.data()) v = nn::apply_activation(act, v);

    nn::kernels::bias_act(y.data().data(), bias.data(), rows, cols,
                          static_cast<nn::kernels::unary>(act));
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_EQ(ref.data()[i], y.data()[i]) << "act " << static_cast<int>(act);
  }
}

TEST(epilogue, lstm_gates_and_state_match_scalar_formulas) {
  util::rng rng{6};
  const std::size_t batch = 5, hidden = 9;
  nn::matrix z{batch, 4 * hidden};
  for (auto& v : z.data()) v = rng.uniform(-2.0, 2.0);
  nn::aligned_vector bias(4 * hidden);
  for (auto& v : bias) v = rng.uniform(-1.0, 1.0);
  nn::matrix c{batch, hidden};
  for (auto& v : c.data()) v = rng.uniform(-1.0, 1.0);
  nn::matrix h{batch, hidden};

  // Scalar reference, the exact formulas lstm::step uses.
  const auto sigmoid = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
  nn::matrix c_ref{batch, hidden}, h_ref{batch, hidden};
  nn::matrix gates_ref{batch, 4 * hidden};
  for (std::size_t bi = 0; bi < batch; ++bi)
    for (std::size_t j = 0; j < hidden; ++j) {
      const double gi = sigmoid(z(bi, j) + bias[j]);
      const double gf = sigmoid(z(bi, hidden + j) + bias[hidden + j]);
      const double gg = std::tanh(z(bi, 2 * hidden + j) + bias[2 * hidden + j]);
      const double go = sigmoid(z(bi, 3 * hidden + j) + bias[3 * hidden + j]);
      gates_ref(bi, j) = gi;
      gates_ref(bi, hidden + j) = gf;
      gates_ref(bi, 2 * hidden + j) = gg;
      gates_ref(bi, 3 * hidden + j) = go;
      const double cn = gf * c(bi, j) + gi * gg;
      c_ref(bi, j) = cn;
      h_ref(bi, j) = go * std::tanh(cn);
    }

  nn::kernels::lstm_gates(z.data().data(), bias.data(), batch, hidden);
  for (std::size_t i = 0; i < z.size(); ++i)
    ASSERT_EQ(gates_ref.data()[i], z.data()[i]);
  nn::kernels::lstm_state(z.data().data(), c.data().data(), h.data().data(),
                          batch, hidden);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_EQ(c_ref.data()[i], c.data()[i]);
    ASSERT_EQ(h_ref.data()[i], h.data()[i]);
  }
}

// ---------------------------------------------------------------------------
// Workspace arena semantics.

TEST(workspace, reset_reuses_slots_without_growing) {
  nn::workspace ws;
  nn::matrix& a = ws.take(8, 16);
  nn::seq_batch& s = ws.take_seq(4, 7, 3);
  const std::size_t grown = ws.grow_count();
  EXPECT_GT(grown, 0u);
  EXPECT_GT(ws.bytes(), 0u);
  double* const a_ptr = a.data().data();
  double* const s_ptr = s.data().data();
  for (int pass = 0; pass < 5; ++pass) {
    ws.reset();
    nn::matrix& a2 = ws.take(8, 16);
    nn::seq_batch& s2 = ws.take_seq(4, 7, 3);
    EXPECT_EQ(a2.data().data(), a_ptr);
    EXPECT_EQ(s2.data().data(), s_ptr);
  }
  EXPECT_EQ(ws.grow_count(), grown);
}

TEST(workspace, shrinking_shapes_do_not_grow) {
  nn::workspace ws;
  (void)ws.take(32, 32);
  const std::size_t grown = ws.grow_count();
  ws.reset();
  nn::matrix& small = ws.take(4, 4);
  EXPECT_EQ(small.rows(), 4u);
  EXPECT_EQ(small.cols(), 4u);
  EXPECT_EQ(ws.grow_count(), grown);  // capacity retained, no new allocation
}

TEST(workspace, slot_references_stay_stable_as_arena_grows) {
  nn::workspace ws;
  nn::matrix& first = ws.take(3, 3);
  first.fill(42.0);
  for (int i = 0; i < 100; ++i) (void)ws.take(5, 5);
  EXPECT_EQ(first(0, 0), 42.0);  // deque-backed: no reallocation moved it
  EXPECT_EQ(ws.slots_in_use(), 101u);
}

TEST(workspace, take_zeroed_clears_previous_contents) {
  nn::workspace ws;
  ws.take(4, 4).fill(9.0);
  ws.reset();
  nn::matrix& z = ws.take_zeroed(4, 4);
  for (double v : z.data()) EXPECT_EQ(v, 0.0);
}

// ---------------------------------------------------------------------------
// Workspace forward paths agree with forward_const bit-for-bit, and the
// steady state allocates nothing.

nn::seq_batch random_batch(std::size_t batch, std::size_t time,
                           std::size_t features, util::rng& rng) {
  nn::seq_batch x{batch, time, features};
  for (auto& v : x.data()) v = rng.uniform(-1.0, 1.0);
  return x;
}

TEST(workspace_forward, seq_regressor_matches_forward_const_exactly) {
  util::rng rng{21};
  nn::seq_regressor_config cfg;
  cfg.input_dim = 6;
  cfg.lstm_hidden = {8, 4};
  cfg.heads = 2;
  cfg.key_dim = 4;
  cfg.value_dim = 4;
  cfg.attention_out = 8;
  cfg.head_hidden = 8;
  nn::seq_regressor net{cfg, rng};
  const nn::seq_batch x = random_batch(5, 9, 6, rng);
  const nn::matrix ref = net.forward_const(x);
  nn::workspace ws;
  ws.reset();
  const nn::matrix& got = net.forward(x, ws);
  ASSERT_EQ(got.rows(), ref.rows());
  ASSERT_EQ(got.cols(), ref.cols());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_DOUBLE_EQ(ref.data()[i], got.data()[i]);
}

TEST(workspace_forward, mlp_and_dense_match_forward_const_exactly) {
  util::rng rng{22};
  nn::mlp net{{7, 11, 5, 1}, nn::activation::tanh, rng};
  nn::matrix x{9, 7};
  for (auto& v : x.data()) v = rng.uniform(-1.0, 1.0);
  const nn::matrix ref = net.forward_const(x);
  nn::workspace ws;
  const nn::matrix& got = net.forward(x, ws);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_DOUBLE_EQ(ref.data()[i], got.data()[i]);

  nn::dense layer{7, 3, nn::activation::sigmoid, rng};
  const nn::matrix dref = layer.forward_const(x);
  ws.reset();
  const nn::matrix& dgot = layer.forward(x, ws);
  for (std::size_t i = 0; i < dref.size(); ++i)
    EXPECT_DOUBLE_EQ(dref.data()[i], dgot.data()[i]);
}

TEST(workspace_forward, bilstm_matches_forward_const_exactly) {
  util::rng rng{23};
  nn::bilstm layer{5, 6, rng};
  const nn::seq_batch x = random_batch(4, 7, 5, rng);
  const nn::seq_batch ref = layer.forward_const(x);
  nn::workspace ws;
  const nn::seq_batch& got = layer.forward(x, ws);
  ASSERT_EQ(got.data().size(), ref.data().size());
  for (std::size_t i = 0; i < ref.data().size(); ++i)
    EXPECT_DOUBLE_EQ(ref.data()[i], got.data()[i]);
}

TEST(workspace_forward, steady_state_seq_regressor_is_allocation_free) {
  util::rng rng{24};
  nn::seq_regressor_config cfg;
  cfg.input_dim = 6;
  cfg.lstm_hidden = {8, 4};
  cfg.heads = 2;
  cfg.key_dim = 4;
  cfg.value_dim = 4;
  cfg.attention_out = 8;
  cfg.head_hidden = 8;
  nn::seq_regressor net{cfg, rng};
  const nn::seq_batch x = random_batch(5, 9, 6, rng);
  nn::workspace ws;
  // Warm up: the first pass grows the arena to its high-water shapes.
  for (int i = 0; i < 2; ++i) {
    ws.reset();
    (void)net.forward(x, ws);
  }
  const std::size_t grown = ws.grow_count();
  ws.reset();
  const std::size_t before = g_heap_allocs.load(std::memory_order_relaxed);
  const nn::matrix& out = net.forward(x, ws);
  const std::size_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "steady-state forward allocated";
  EXPECT_EQ(ws.grow_count(), grown);
  EXPECT_EQ(out.rows(), 5u);
}

TEST(workspace_forward, steady_state_mlp_is_allocation_free) {
  util::rng rng{25};
  nn::mlp net{{14, 16, 8, 1}, nn::activation::tanh, rng};
  nn::matrix x{21, 14};
  for (auto& v : x.data()) v = rng.uniform(-1.0, 1.0);
  nn::workspace ws;
  for (int i = 0; i < 2; ++i) {
    ws.reset();
    (void)net.forward(x, ws);
  }
  ws.reset();
  const std::size_t before = g_heap_allocs.load(std::memory_order_relaxed);
  const nn::matrix& out = net.forward(x, ws);
  const std::size_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(out.rows(), 21u);
}

// ---------------------------------------------------------------------------
// PTM integration: the workspace predict overload agrees with the legacy
// signature and exports the nn.workspace_bytes gauge.

core::ptm_model tiny_trained_ptm(obs::sink* sink = nullptr) {
  core::ptm_config cfg;
  cfg.arch = core::ptm_arch::mlp;
  cfg.time_steps = 4;
  cfg.mlp_hidden = {8};
  cfg.epochs = 2;
  cfg.batch_size = 8;
  cfg.sink = sink;
  core::ptm_model model{cfg};
  util::rng rng{31};
  core::ptm_dataset data;
  data.time_steps = cfg.time_steps;
  const std::size_t count = 32;
  data.windows.resize(count * cfg.time_steps * core::feature_count);
  for (auto& v : data.windows) v = rng.uniform(0.0, 1.0);
  data.targets.resize(count);
  for (auto& v : data.targets) v = rng.uniform(1e-6, 1e-3);
  (void)model.train(data);
  return model;
}

TEST(ptm_workspace, predict_overloads_agree_and_reuse_arena) {
  obs::sink sink;
  const core::ptm_model model = tiny_trained_ptm(&sink);
  util::rng rng{32};
  std::vector<double> windows(6 * 4 * core::feature_count);
  for (auto& v : windows) v = rng.uniform(0.0, 1.0);

  const auto legacy = model.predict(windows);
  nn::workspace ws;
  const auto with_ws = model.predict(windows, ws);
  ASSERT_EQ(legacy.size(), with_ws.size());
  for (std::size_t i = 0; i < legacy.size(); ++i)
    EXPECT_DOUBLE_EQ(legacy[i], with_ws[i]);

  // Arena stops growing after the first pass over this shape.
  const std::size_t grown = ws.grow_count();
  for (int i = 0; i < 3; ++i) (void)model.predict(windows, ws);
  EXPECT_EQ(ws.grow_count(), grown);

  // The gauge reflects the arena's footprint.
  EXPECT_EQ(sink.metrics().gauge("nn.workspace_bytes"),
            static_cast<double>(ws.bytes()));
}

}  // namespace
