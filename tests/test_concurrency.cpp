// Concurrency stress tests: exact-count checks over the mutex-protected obs
// primitives, the thread pool, the contracts counter, and the partitioned
// IRSA engine path. These are the workloads the TSan CI job
// (-DDQN_SANITIZE=thread) drives; under the plain build they still verify
// that no updates are lost under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/delay_provider.hpp"
#include "core/dutil.hpp"
#include "core/engine.hpp"
#include "core/features.hpp"
#include "des/run_api.hpp"
#include "obs/contracts.hpp"
#include "obs/handles.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "obs/trace_log.hpp"
#include "topo/builders.hpp"
#include "topo/routing.hpp"
#include "traffic/traffic_gen.hpp"
#include "util/annotations.hpp"
#include "util/check.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/work_stealing_pool.hpp"

namespace {

using namespace dqn;

void run_threads(std::size_t count, const std::function<void(std::size_t)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(count);
  for (std::size_t t = 0; t < count; ++t) threads.emplace_back(fn, t);
  for (auto& thread : threads) thread.join();
}

TEST(concurrency, thread_pool_loses_no_tasks_under_concurrent_submit) {
  constexpr std::size_t producers = 8;
  constexpr std::size_t tasks_per_producer = 200;
  std::atomic<std::size_t> executed{0};
  {
    util::thread_pool pool{4};
    std::vector<std::future<void>> futures[producers];
    std::mutex futures_mutex;
    run_threads(producers, [&](std::size_t t) {
      for (std::size_t i = 0; i < tasks_per_producer; ++i) {
        auto future = pool.submit([&executed] { executed.fetch_add(1); });
        const std::lock_guard lock{futures_mutex};
        futures[t].push_back(std::move(future));
      }
    });
    for (auto& per_producer : futures)
      for (auto& future : per_producer) future.get();
  }
  EXPECT_EQ(executed.load(), producers * tasks_per_producer);
}

TEST(concurrency, thread_pool_parallel_for_from_competing_threads) {
  // Two callers sharing one pool must each see all their own iterations.
  util::thread_pool pool{4};
  std::atomic<std::size_t> total{0};
  run_threads(4, [&](std::size_t) {
    pool.parallel_for(250, [&total](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 4u * 250u);
}

TEST(concurrency, thread_pool_destructor_drains_queued_tasks) {
  std::atomic<std::size_t> executed{0};
  std::vector<std::future<void>> futures;
  {
    util::thread_pool pool{2};
    for (std::size_t i = 0; i < 100; ++i)
      futures.push_back(pool.submit([&executed] { executed.fetch_add(1); }));
    // Destructor runs here with tasks likely still queued.
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(executed.load(), 100u);
}

TEST(concurrency, metric_registry_counts_exactly_under_contention) {
  obs::metric_registry registry;
  constexpr std::size_t writers = 8;
  constexpr std::size_t ops = 500;
  std::atomic<bool> stop{false};
  // A reader hammering snapshots while writers mutate: the snapshot must
  // always be internally consistent, and the final counts exact.
  std::thread reader{[&] {
    while (!stop.load()) {
      const auto snap = registry.snapshot();
      (void)snap;
    }
  }};
  run_threads(writers, [&](std::size_t t) {
    for (std::size_t i = 0; i < ops; ++i) {
      registry.add("shared.counter");
      registry.observe("shared.histogram", static_cast<double>(i));
      registry.set("shared.gauge", static_cast<double>(t));
    }
  });
  stop.store(true);
  reader.join();
  EXPECT_EQ(registry.counter("shared.counter"),
            static_cast<double>(writers * ops));
  EXPECT_EQ(registry.histogram("shared.histogram").count, writers * ops);
}

TEST(concurrency, trace_log_keeps_every_event) {
  obs::trace_log log;
  constexpr std::size_t writers = 4;
  constexpr std::size_t events = 500;
  run_threads(writers, [&](std::size_t t) {
    for (std::size_t i = 0; i < events; ++i) {
      obs::trace_event ev;
      ev.stage = "writer" + std::to_string(t);
      ev.name = "tick";
      ev.index = i;
      log.record(ev);
    }
  });
  EXPECT_EQ(log.size(), writers * events);
  for (std::size_t t = 0; t < writers; ++t) {
    const auto mine = log.events_of("writer" + std::to_string(t), "tick");
    EXPECT_EQ(mine.size(), events);
  }
}

// The sharded lock-free handle path: many threads hammer the same
// pre-resolved counter/gauge/histogram handles while a reader thread takes
// snapshots concurrently. Counters and histogram counts must be exact; the
// gauge must end on one of the written values; every snapshot the reader
// observed must be internally consistent (count never exceeds the final
// total). This is the dedicated TSan workload for the per-thread shards.
TEST(concurrency, sharded_handles_are_exact_under_snapshotting_reader) {
  constexpr std::size_t writers = 8;
  constexpr std::size_t ops = 5'000;
  obs::sink sink;
  auto counter = sink.counter_handle_for("stress.counter");
  auto gauge = sink.gauge_handle_for("stress.gauge");
  auto histogram = sink.histogram_handle_for("stress.hist");

  std::atomic<bool> done{false};
  std::thread reader{[&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = sink.metrics().snapshot();
      const auto it = snap.histograms.find("stress.hist");
      if (it != snap.histograms.end()) {
        EXPECT_LE(it->second.count, writers * ops);
      }
    }
  }};
  run_threads(writers, [&](std::size_t t) {
    obs::counter_handle my_counter = counter;      // handles are value types
    obs::gauge_handle my_gauge = gauge;
    obs::histogram_handle my_histogram = histogram;
    for (std::size_t i = 0; i < ops; ++i) {
      my_counter.add();
      my_gauge.set(static_cast<double>(t + 1));
      my_histogram.observe(static_cast<double>(i % 100));
    }
  });
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_DOUBLE_EQ(sink.metrics().counter("stress.counter"),
                   static_cast<double>(writers * ops));
  const double last_gauge = sink.metrics().gauge("stress.gauge");
  EXPECT_GE(last_gauge, 1.0);
  EXPECT_LE(last_gauge, static_cast<double>(writers));
  const auto h = sink.metrics().histogram("stress.hist");
  EXPECT_EQ(h.count, writers * ops);
  EXPECT_DOUBLE_EQ(h.min, 0.0);
  EXPECT_DOUBLE_EQ(h.max, 99.0);
}

// Spans opened concurrently on many threads (each nesting two levels, all
// parented to one root via its explicit id) must all land in the ring with
// correct parentage and per-thread ordinals.
TEST(concurrency, spans_record_hierarchy_from_competing_threads) {
  constexpr std::size_t workers = 6;
  obs::sink sink;
  obs::scoped_span root{&sink, "stress", "root"};
  run_threads(workers, [&, parent = root.id()](std::size_t t) {
    obs::scoped_span outer{&sink, "stress", "outer", t, 0.0, parent};
    obs::scoped_span inner{&sink, "stress", "inner", t};
  });
  root.stop();

  const auto outers = sink.trace().events_of("stress", "outer");
  const auto inners = sink.trace().events_of("stress", "inner");
  ASSERT_EQ(outers.size(), workers);
  ASSERT_EQ(inners.size(), workers);
  for (const auto& ev : outers) EXPECT_EQ(ev.parent_id, root.id());
  // Each inner span auto-parents to its own thread's outer span.
  std::map<std::uint64_t, std::uint64_t> outer_by_index;
  for (const auto& ev : outers) outer_by_index[ev.index] = ev.span_id;
  for (const auto& ev : inners)
    EXPECT_EQ(ev.parent_id, outer_by_index[ev.index]);
}

TEST(concurrency, sink_accepts_concurrent_mixed_traffic) {
  obs::sink sink;
  run_threads(6, [&](std::size_t t) {
    for (std::size_t i = 0; i < 200; ++i) {
      sink.count("c");
      sink.observe("h", static_cast<double>(i));
      sink.event("stage", "ev", i, 0.0, 0.0, static_cast<double>(t));
    }
  });
  EXPECT_EQ(sink.metrics().counter("c"), 6.0 * 200.0);
  EXPECT_EQ(sink.trace().size(), 6u * 200u);
}

TEST(concurrency, contract_violations_count_exactly_across_threads) {
  util::reset_contract_violation_count();
  obs::sink sink;
  obs::install_contract_counter(sink);
  constexpr std::size_t threads = 8;
  constexpr std::size_t violations = 250;
  run_threads(threads, [](std::size_t) {
    for (std::size_t i = 0; i < violations; ++i) {
      try {
        DQN_ENSURE(false, "stress");
      } catch (const util::contract_violation&) {
      }
    }
  });
  obs::remove_contract_counter();
  EXPECT_EQ(util::contract_violation_count(), threads * violations);
  EXPECT_EQ(sink.metrics().counter("contracts.violations"),
            static_cast<double>(threads * violations));
  util::reset_contract_violation_count();
}

// One tiny trained PTM shared by the engine/provider tests below (training
// dominates their runtime).
std::shared_ptr<const core::ptm_model> tiny_ptm() {
  static const core::device_model_bundle bundle = [] {
    core::dutil_config cfg;
    cfg.ports = 4;
    cfg.streams = 20;
    cfg.packets_per_stream = 400;
    cfg.ptm.time_steps = 8;
    cfg.ptm.mlp_hidden = {32, 16};
    cfg.ptm.epochs = 5;
    cfg.seed = 7;
    return core::train_device_model(cfg);
  }();
  return {&bundle.model, [](const core::ptm_model*) {}};
}

TEST(concurrency, partitioned_engine_matches_single_partition_run) {
  // The IRSA inference loop fans device partitions out over the thread pool;
  // under TSan this is the test that drives that path. Determinism check:
  // 4 partitions must produce byte-identical deliveries to 1 partition.
  const auto ptm = tiny_ptm();

  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};
  util::rng rng{11};
  auto flows = traffic::make_uniform_flows(16, 1, rng);
  traffic::tg_util_config tg;
  tg.per_flow_rate = 30'000.0;
  tg.seed = 11;
  auto generators = traffic::make_generators(flows, tg);
  const auto streams = traffic::per_host_streams(generators, 16, 0.005, rng);

  core::engine_config serial_cfg;
  serial_cfg.partitions = 1;
  core::engine_config parallel_cfg;
  parallel_cfg.partitions = 4;
  core::dqn_network serial{topo, routes, ptm, {}, serial_cfg};
  core::dqn_network parallel{topo, routes, ptm, {}, parallel_cfg};

  const auto serial_result = serial.run(streams, 0.005);
  const auto parallel_result = parallel.run(streams, 0.005);

  ASSERT_EQ(serial_result.deliveries.size(), parallel_result.deliveries.size());
  for (std::size_t i = 0; i < serial_result.deliveries.size(); ++i) {
    EXPECT_EQ(serial_result.deliveries[i].pid,
              parallel_result.deliveries[i].pid);
    EXPECT_DOUBLE_EQ(serial_result.deliveries[i].delivery_time,
                     parallel_result.deliveries[i].delivery_time);
  }
}

// The delay provider's threading contract: estimate_sojourn may run
// concurrently for *different* devices. Each thread hammers its own device
// id against one shared tiered provider; the relaxed tier counters must stay
// exact and no thread may observe another's tier state. This is the TSan
// workload for the tiered dispatch path.
TEST(concurrency, tiered_provider_counts_exactly_across_devices) {
  constexpr std::size_t workers = 8;
  constexpr std::size_t calls_per_worker = 50;
  constexpr std::size_t packets = 10;

  des::delay_policy policy;
  policy.backend = des::delay_backend::tiered;
  policy.utilization_threshold = 1e9;  // everything analytical
  policy.hysteresis = 0;
  policy.error_budget = 0;
  core::tiered_delay_provider provider{tiny_ptm(), policy};
  provider.prepare(workers + 1);

  traffic::packet_stream stream;
  double t = 0;
  for (std::size_t i = 0; i < packets; ++i) {
    traffic::packet p;
    p.pid = i;
    p.size_bytes = 1000;
    t += 5e-6;
    stream.push_back({p, t});
  }
  const core::scheduler_context ctx;
  const auto rows = core::compute_features(stream, ctx);

  run_threads(workers, [&](std::size_t worker) {
    core::device_state state;
    state.device = static_cast<std::int64_t>(worker);
    state.arrivals = &stream;
    state.feature_rows = rows;
    state.ctx = &ctx;
    state.utilization = 0.1;
    for (std::size_t i = 0; i < calls_per_worker; ++i) {
      const auto sojourns = provider.estimate_sojourn(state, t);
      EXPECT_EQ(sojourns.size(), packets);
    }
  });

  const auto stats = provider.stats();
  EXPECT_EQ(stats.analytical_calls, workers * calls_per_worker);
  EXPECT_EQ(stats.analytical_packets, workers * calls_per_worker * packets);
  EXPECT_EQ(stats.ptm_calls, 0u);
  EXPECT_EQ(stats.promotions, 0u);
  EXPECT_DOUBLE_EQ(stats.analytical_fraction(), 1.0);
}

// Same determinism bar as the pure-PTM partition test, with the tiered
// policy's per-device hysteresis + error-budget state in the loop: tier
// decisions depend only on a device's own utilization history, so partition
// count must not change a single delivery.
TEST(concurrency, partitioned_tiered_engine_matches_single_partition_run) {
  const auto ptm = tiny_ptm();
  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};
  util::rng rng{11};
  auto flows = traffic::make_uniform_flows(16, 1, rng);
  traffic::tg_util_config tg;
  tg.per_flow_rate = 30'000.0;
  tg.seed = 11;
  auto generators = traffic::make_generators(flows, tg);
  const auto streams = traffic::per_host_streams(generators, 16, 0.005, rng);

  const auto policy = des::delay_policy{}
                          .with_backend(des::delay_backend::tiered)
                          .with_threshold(0.35)
                          .with_hysteresis(0.05)
                          .with_error_budget(0.25);
  core::engine_config serial_cfg;
  serial_cfg.partitions = 1;
  serial_cfg.delay = policy;
  core::engine_config parallel_cfg;
  parallel_cfg.partitions = 4;
  parallel_cfg.delay = policy;
  core::dqn_network serial{topo, routes, ptm, {}, serial_cfg};
  core::dqn_network parallel{topo, routes, ptm, {}, parallel_cfg};

  const auto serial_result = serial.run(streams, 0.005);
  const auto parallel_result = parallel.run(streams, 0.005);

  ASSERT_EQ(serial_result.deliveries.size(), parallel_result.deliveries.size());
  for (std::size_t i = 0; i < serial_result.deliveries.size(); ++i) {
    EXPECT_EQ(serial_result.deliveries[i].pid,
              parallel_result.deliveries[i].pid);
    EXPECT_DOUBLE_EQ(serial_result.deliveries[i].delivery_time,
                     parallel_result.deliveries[i].delivery_time);
  }
}

// util/mutex.hpp + util/annotations.hpp: the annotated primitives must be
// drop-in equivalents of the std types they wrap — exact counts under
// contention through a DQN_GUARDED_BY member, lock() release via try_lock
// observability, and a working condition-variable handshake. (The *static*
// guarantees — a compile break on unlocked access — are pinned by
// tests/lint_fixtures/ and the CI -Wthread-safety build; this exercises the
// runtime half.)
TEST(concurrency, util_mutex_guards_exact_count_under_contention) {
  struct guarded_counter {
    util::mutex mutex;
    long value DQN_GUARDED_BY(mutex) = 0;
  };
  guarded_counter counter;
  constexpr std::size_t threads = 8;
  constexpr std::size_t increments = 5'000;
  run_threads(threads, [&](std::size_t) {
    for (std::size_t i = 0; i < increments; ++i) {
      const util::lock_guard lock{counter.mutex};
      ++counter.value;
    }
  });
  const util::lock_guard lock{counter.mutex};
  EXPECT_EQ(counter.value, static_cast<long>(threads * increments));
}

TEST(concurrency, util_mutex_try_lock_reflects_lock_state) {
  util::mutex mutex;
  mutex.lock();
  std::thread prober{[&mutex] { EXPECT_FALSE(mutex.try_lock()); }};
  prober.join();
  mutex.unlock();
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(concurrency, util_condition_variable_handshake) {
  util::mutex mutex;
  util::condition_variable cv;
  // (guarded_by is member/global-only; a function-local can't carry it.)
  bool ready = false;
  long observed = -1;
  std::thread waiter{[&] {
    util::unique_lock lock{mutex};
    while (!ready) cv.wait(lock);
    observed = 42;
  }};
  {
    const util::lock_guard lock{mutex};
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

// --- work-stealing scheduler (util/work_stealing_pool.hpp) ---------------
//
// The deque semantics the engine's determinism contract leans on: owners
// drain their seed order FIFO, thieves take the back half, and every task
// runs exactly once no matter who ran it.

TEST(concurrency, steal_deque_owner_fifo_and_steal_half) {
  util::steal_deque deque;
  for (std::size_t task = 1; task <= 5; ++task) deque.push_back(task);
  EXPECT_EQ(deque.size(), 5u);

  std::size_t task = 0;
  ASSERT_TRUE(deque.pop_front(&task));
  EXPECT_EQ(task, 1u);  // FIFO: seed order

  // Thief takes ceil(4/2) = 2 from the back, in deque order.
  const auto stolen = deque.steal_half();
  ASSERT_EQ(stolen.size(), 2u);
  EXPECT_EQ(stolen[0], 4u);
  EXPECT_EQ(stolen[1], 5u);

  ASSERT_TRUE(deque.pop_front(&task));
  EXPECT_EQ(task, 2u);
  ASSERT_TRUE(deque.pop_front(&task));
  EXPECT_EQ(task, 3u);
  EXPECT_FALSE(deque.pop_front(&task));  // exhausted
  EXPECT_TRUE(deque.empty());
  EXPECT_TRUE(deque.steal_half().empty());

  // A single remaining task IS stolen (the owner may be busy for ms).
  deque.push_back(9);
  const auto last = deque.steal_half();
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0], 9u);
}

TEST(concurrency, steal_deque_concurrent_steal_stress_loses_nothing) {
  // One owner popping the front races four thieves stealing the back; the
  // union of what everyone got must be exactly the seeded set. This is the
  // TSan workload for the deque locking.
  constexpr std::size_t tasks = 10'000;
  constexpr std::size_t thieves = 4;
  util::steal_deque deque;
  for (std::size_t task = 0; task < tasks; ++task) deque.push_back(task);

  std::vector<std::vector<std::size_t>> got(1 + thieves);
  std::atomic<bool> owner_done{false};
  run_threads(1 + thieves, [&](std::size_t t) {
    if (t == 0) {
      std::size_t task = 0;
      while (deque.pop_front(&task)) got[t].push_back(task);
      owner_done.store(true);
    } else {
      for (;;) {
        const auto stolen = deque.steal_half();
        got[t].insert(got[t].end(), stolen.begin(), stolen.end());
        if (stolen.empty() && owner_done.load()) break;
        std::this_thread::yield();
      }
    }
  });

  std::vector<std::uint8_t> seen(tasks, 0);
  std::size_t total = 0;
  for (const auto& list : got)
    for (const std::size_t task : list) {
      EXPECT_EQ(seen[task], 0u) << "task " << task << " ran twice";
      seen[task] = 1;
      ++total;
    }
  EXPECT_EQ(total, tasks);
}

TEST(concurrency, work_stealing_pool_runs_each_task_exactly_once) {
  constexpr std::size_t workers = 4;
  constexpr std::size_t tasks = 500;
  util::work_stealing_pool pool{workers};
  EXPECT_EQ(pool.size(), workers);
  EXPECT_FALSE(pool.pinned());

  std::vector<std::vector<std::size_t>> seeds(workers);
  for (std::size_t task = 0; task < tasks; ++task)
    seeds[task % workers].push_back(task);
  std::vector<std::atomic<int>> counts(tasks);
  (void)pool.run_round(seeds, [&counts](std::size_t task, std::size_t) {
    counts[task].fetch_add(1);
  });
  EXPECT_EQ(pool.remaining(), 0u);
  for (std::size_t task = 0; task < tasks; ++task)
    EXPECT_EQ(counts[task].load(), 1) << "task " << task;
}

TEST(concurrency, work_stealing_pool_steals_from_imbalanced_seed) {
  // Everything seeded on worker 0, each task sleeping: the other three
  // workers have nothing of their own and MUST steal to finish the round.
  constexpr std::size_t workers = 4;
  constexpr std::size_t tasks = 24;
  util::work_stealing_pool pool{workers};
  std::vector<std::vector<std::size_t>> seeds(workers);
  for (std::size_t task = 0; task < tasks; ++task) seeds[0].push_back(task);

  std::vector<std::atomic<int>> counts(tasks);
  std::atomic<std::size_t> ran_elsewhere{0};
  const std::uint64_t steals =
      pool.run_round(seeds, [&](std::size_t task, std::size_t worker) {
        std::this_thread::sleep_for(std::chrono::milliseconds{2});
        counts[task].fetch_add(1);
        if (worker != 0) ran_elsewhere.fetch_add(1);
      });
  for (std::size_t task = 0; task < tasks; ++task)
    EXPECT_EQ(counts[task].load(), 1);
  EXPECT_GT(steals, 0u);
  EXPECT_GT(ran_elsewhere.load(), 0u);
  EXPECT_EQ(pool.total_steals(), steals);
}

TEST(concurrency, work_stealing_pool_propagates_first_exception) {
  util::work_stealing_pool pool{2};
  std::vector<std::vector<std::size_t>> seeds(2);
  for (std::size_t task = 0; task < 10; ++task)
    seeds[task % 2].push_back(task);
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(
      (void)pool.run_round(seeds,
                           [&executed](std::size_t task, std::size_t) {
                             executed.fetch_add(1);
                             if (task == 3)
                               throw std::runtime_error{"task 3 failed"};
                           }),
      std::runtime_error);
  // The round barrier holds on failure: every task still ran.
  EXPECT_EQ(executed.load(), 10u);
  EXPECT_EQ(pool.remaining(), 0u);

  // And the pool is reusable afterwards.
  std::atomic<std::size_t> second{0};
  (void)pool.run_round(seeds, [&second](std::size_t, std::size_t) {
    second.fetch_add(1);
  });
  EXPECT_EQ(second.load(), 10u);
}

TEST(concurrency, work_stealing_pool_rounds_accumulate_exactly) {
  constexpr std::size_t workers = 3;
  constexpr std::size_t rounds = 20;
  constexpr std::size_t tasks = 60;
  util::work_stealing_pool pool{workers};
  std::vector<std::vector<std::size_t>> seeds(workers);
  for (std::size_t task = 0; task < tasks; ++task)
    seeds[task % workers].push_back(task);
  std::atomic<std::size_t> executed{0};
  for (std::size_t round = 0; round < rounds; ++round) {
    (void)pool.run_round(seeds, [&executed](std::size_t, std::size_t) {
      executed.fetch_add(1);
    });
    EXPECT_EQ(pool.remaining(), 0u);
  }
  EXPECT_EQ(executed.load(), rounds * tasks);
  EXPECT_THROW((void)pool.run_round({}, [](std::size_t, std::size_t) {}),
               std::invalid_argument);
}

// Acceptance workload for the engine.steals / engine.shard_imbalance
// exports: a single hot flow concentrates essentially all inference work in
// one topology shard. With one unstealable batch per shard the slowest
// worker carries the run (imbalance >> 0); with single-device batches the
// idle workers steal it back.
TEST(concurrency, sharded_engine_exports_steals_and_imbalance) {
  const auto ptm = tiny_ptm();
  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};

  // One flow, host 0 -> host 8 (cross-cluster): only the devices on that
  // path see traffic; every other shard's devices are near-free to compute.
  std::vector<traffic::packet_stream> streams(16);
  double t = 0;
  for (std::uint64_t pid = 0; pid < 300; ++pid) {
    traffic::packet p;
    p.pid = pid;
    p.flow_id = 1;
    p.dst_host = 8;
    p.size_bytes = 1000;
    t += 1.2e-5;
    streams[0].push_back({p, t});
  }

  // Imbalance: one batch per shard (nothing to steal after the first pop),
  // so the hot shard's worker is the critical path of every iteration.
  core::engine_config lumped_cfg;
  lumped_cfg.partitions = 4;
  lumped_cfg.sharding = topo::shard_strategy::topology;
  lumped_cfg.steal_batch = topo.devices().size();
  lumped_cfg.irsa_skip_unchanged = false;
  core::dqn_network lumped{topo, routes, ptm, {}, lumped_cfg};
  const auto lumped_result = lumped.run(streams, 0.005);
  EXPECT_EQ(lumped.stats().workers, 4u);
  EXPECT_GT(lumped.stats().cross_shard_links, 0u);
  EXPECT_GT(lumped.stats().shard_imbalance, 0.0);

  // Stealing: single-device batches; the idle workers drain the hot shard.
  // Steal counts are timing-dependent (never results), so accumulate runs
  // until observed rather than asserting one race resolution.
  core::engine_config stealing_cfg = lumped_cfg;
  stealing_cfg.steal_batch = 1;
  core::dqn_network stealing{topo, routes, ptm, {}, stealing_cfg};
  std::uint64_t steals = 0;
  des::run_result stealing_result;
  for (int attempt = 0; attempt < 8 && steals == 0; ++attempt) {
    stealing_result = stealing.run(streams, 0.005);
    steals += stealing.stats().steals;
  }
  EXPECT_GT(steals, 0u);

  // Work placement must not change results: lumped and stealing runs agree
  // bit for bit.
  ASSERT_EQ(lumped_result.deliveries.size(), stealing_result.deliveries.size());
  for (std::size_t i = 0; i < lumped_result.deliveries.size(); ++i) {
    EXPECT_EQ(lumped_result.deliveries[i].pid,
              stealing_result.deliveries[i].pid);
    EXPECT_DOUBLE_EQ(lumped_result.deliveries[i].delivery_time,
                     stealing_result.deliveries[i].delivery_time);
  }

  // The stats round-trip through the registry (engine_stats contract).
  obs::sink sink;
  lumped.stats().publish(sink);
  const auto rebuilt = core::engine_stats::from_registry(sink.metrics());
  EXPECT_EQ(rebuilt.steals, lumped.stats().steals);
  EXPECT_EQ(rebuilt.workers, lumped.stats().workers);
  EXPECT_EQ(rebuilt.cross_shard_links, lumped.stats().cross_shard_links);
  EXPECT_DOUBLE_EQ(rebuilt.shard_imbalance, lumped.stats().shard_imbalance);
}

}  // namespace
