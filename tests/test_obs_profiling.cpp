// The rebuilt obs profiling layer: sharded lock-free metric handles,
// log-bucketed quantile histograms with Welford moments, hierarchical spans
// and the Chrome trace exporter, the bounded trace ring, and sampled
// per-packet journey tracing — including the end-to-end engine run where
// journeys at sample rate 1.0 must agree hop-for-hop with the engine's own
// predicted-hop records.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/dutil.hpp"
#include "core/engine.hpp"
#include "des/records.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/handles.hpp"
#include "obs/journey.hpp"
#include "obs/json.hpp"
#include "obs/metric_registry.hpp"
#include "obs/quantile_histogram.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "topo/builders.hpp"
#include "topo/routing.hpp"
#include "traffic/traffic_gen.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace dqn;

// ---------------------------------------------------------------- handles

TEST(obs_handles, counter_gauge_histogram_roundtrip_through_handles) {
  obs::metric_registry registry;
  auto counter = registry.counter_handle_for("c");
  auto gauge = registry.gauge_handle_for("g");
  auto histogram = registry.histogram_handle_for("h");

  counter.add();
  counter.add(4.0);
  gauge.set(2.5);
  histogram.observe(1.0);
  histogram.observe(3.0);

  EXPECT_DOUBLE_EQ(registry.counter("c"), 5.0);
  EXPECT_DOUBLE_EQ(registry.gauge("g"), 2.5);
  const auto h = registry.histogram("h");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.sum, 4.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 3.0);
}

TEST(obs_handles, null_handles_are_inert) {
  obs::counter_handle counter;
  obs::gauge_handle gauge;
  obs::histogram_handle histogram;
  counter.add();
  gauge.set(1.0);
  histogram.observe(1.0);  // must not crash; nothing to assert beyond that
}

TEST(obs_handles, string_path_and_handle_path_share_one_metric) {
  obs::metric_registry registry;
  auto counter = registry.counter_handle_for("shared.counter");
  registry.add("shared.counter", 2.0);
  counter.add(3.0);
  EXPECT_DOUBLE_EQ(registry.counter("shared.counter"), 5.0);

  auto histogram = registry.histogram_handle_for("shared.hist");
  registry.observe("shared.hist", 1.0);
  histogram.observe(2.0);
  EXPECT_EQ(registry.histogram("shared.hist").count, 2u);
  EXPECT_DOUBLE_EQ(registry.histogram("shared.hist").sum, 3.0);
}

TEST(obs_handles, clear_zeroes_values_but_keeps_handles_valid) {
  obs::metric_registry registry;
  auto counter = registry.counter_handle_for("c");
  counter.add(7.0);
  registry.clear();
  EXPECT_DOUBLE_EQ(registry.counter("c"), 0.0);
  counter.add();  // the registration survives clear(); the handle still works
  EXPECT_DOUBLE_EQ(registry.counter("c"), 1.0);
  // Registered-but-zero metrics still appear in the snapshot.
  EXPECT_EQ(registry.snapshot().counters.count("c"), 1u);
}

TEST(obs_handles, shard_aggregation_is_exact_under_contention) {
  constexpr std::size_t threads = 8;
  constexpr std::size_t ops = 20'000;
  obs::metric_registry registry;
  auto counter = registry.counter_handle_for("hot.counter");
  auto histogram = registry.histogram_handle_for("hot.hist");

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t)
    workers.emplace_back([counter, histogram]() mutable {
      for (std::size_t i = 0; i < ops; ++i) {
        counter.add();
        histogram.observe(1.0);
      }
    });
  for (auto& worker : workers) worker.join();

  EXPECT_DOUBLE_EQ(registry.counter("hot.counter"),
                   static_cast<double>(threads * ops));
  const auto h = registry.histogram("hot.hist");
  EXPECT_EQ(h.count, threads * ops);
  EXPECT_DOUBLE_EQ(h.sum, static_cast<double>(threads * ops));
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 1.0);
  EXPECT_NEAR(h.stddev(), 0.0, 1e-12);
}

TEST(obs_handles, null_and_live_recording_are_cheap) {
  // Null handle: one branch per call. Live handle: a relaxed store into the
  // calling thread's exclusive shard (~ns). Bounds are loose for CI boxes.
  constexpr std::size_t n = 10'000'000;
  {
    obs::counter_handle null_handle;
    util::stopwatch watch;
    for (std::size_t i = 0; i < n; ++i) null_handle.add();
    EXPECT_LT(watch.elapsed_seconds(), 0.5);
  }
  {
    obs::metric_registry registry;
    auto live = registry.counter_handle_for("fast");
    util::stopwatch watch;
    for (std::size_t i = 0; i < n; ++i) live.add();
    EXPECT_LT(watch.elapsed_seconds(), 2.0);
    EXPECT_DOUBLE_EQ(registry.counter("fast"), static_cast<double>(n));
  }
}

// ----------------------------------------------------- quantile histograms

TEST(obs_quantiles, bucket_quantiles_track_exact_quantiles) {
  obs::quantile_histogram buckets;
  util::rng rng{11};
  std::vector<double> values(100'000);
  for (auto& v : values) {
    v = rng.exponential(1e4);  // ~100us-mean sojourns, heavy upper tail
    buckets.observe(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact =
        values[static_cast<std::size_t>(q * (static_cast<double>(values.size()) - 1))];
    const double approx = buckets.quantile(q);
    EXPECT_NEAR(approx, exact, exact * 0.06)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(obs_quantiles, histogram_stats_quantiles_clamped_to_observed_range) {
  obs::histogram_stats stats;
  for (int i = 1; i <= 100; ++i) stats.observe(static_cast<double>(i));
  EXPECT_GE(stats.p50(), stats.min);
  EXPECT_LE(stats.p999(), stats.max);
  EXPECT_NEAR(stats.p50(), 50.0, 50.0 * 0.05);
  EXPECT_NEAR(stats.p99(), 99.0, 99.0 * 0.05);
  EXPECT_LE(stats.p50(), stats.p90());
  EXPECT_LE(stats.p90(), stats.p99());
}

TEST(obs_quantiles, stddev_is_stable_for_large_mean_small_variance) {
  // Regression: the old count/sum/sum_sq stddev cancels catastrophically
  // here (sum_sq ~ 1e24, variance ~ 1); Welford moments do not.
  obs::histogram_stats stats;
  constexpr double mean = 1e9;
  for (int i = 0; i < 10'000; ++i)
    stats.observe(mean + ((i % 2 == 0) ? 1.0 : -1.0));
  EXPECT_NEAR(stats.mean(), mean, 1e-3);
  EXPECT_NEAR(stats.stddev(), 1.0, 1e-3);
}

TEST(obs_quantiles, merge_matches_joint_stream_with_welford_moments) {
  obs::histogram_stats a, b, joint;
  util::rng rng{5};
  for (int i = 0; i < 5'000; ++i) {
    const double v = 1e9 + rng.normal(0.0, 3.0);
    ((i % 2 == 0) ? a : b).observe(v);
    joint.observe(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count, joint.count);
  EXPECT_NEAR(a.mean(), joint.mean(), 1e-3);
  EXPECT_NEAR(a.stddev(), joint.stddev(), 1e-6);
  EXPECT_NEAR(a.p50(), joint.p50(), std::abs(joint.p50()) * 1e-12);
}

// ------------------------------------------------------- spans and traces

TEST(obs_spans, auto_parent_nests_within_a_thread) {
  obs::sink sink;
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    obs::scoped_span outer{&sink, "t", "outer"};
    outer_id = outer.id();
    ASSERT_NE(outer_id, 0u);
    {
      obs::scoped_span inner{&sink, "t", "inner"};
      inner_id = inner.id();
    }
  }
  const auto outer_events = sink.trace().events_of("t", "outer");
  const auto inner_events = sink.trace().events_of("t", "inner");
  ASSERT_EQ(outer_events.size(), 1u);
  ASSERT_EQ(inner_events.size(), 1u);
  EXPECT_EQ(outer_events[0].span_id, outer_id);
  EXPECT_EQ(outer_events[0].parent_id, 0u);
  EXPECT_EQ(inner_events[0].span_id, inner_id);
  EXPECT_EQ(inner_events[0].parent_id, outer_id);
}

TEST(obs_spans, explicit_parent_links_across_threads) {
  obs::sink sink;
  obs::scoped_span root{&sink, "t", "root"};
  std::thread worker{[&sink, parent = root.id()] {
    obs::scoped_span child{&sink, "t", "child", 0, 0.0, parent};
    obs::scoped_span grandchild{&sink, "t", "grandchild"};
  }};
  worker.join();
  root.stop();

  const auto root_events = sink.trace().events_of("t", "root");
  const auto child_events = sink.trace().events_of("t", "child");
  const auto grandchild_events = sink.trace().events_of("t", "grandchild");
  ASSERT_EQ(root_events.size(), 1u);
  ASSERT_EQ(child_events.size(), 1u);
  ASSERT_EQ(grandchild_events.size(), 1u);
  EXPECT_EQ(child_events[0].parent_id, root_events[0].span_id);
  // auto_parent on the worker thread resolves to the worker's open span.
  EXPECT_EQ(grandchild_events[0].parent_id, child_events[0].span_id);
  // Span events carry the recording thread's ordinal.
  EXPECT_NE(child_events[0].thread, root_events[0].thread);
}

TEST(obs_spans, scoped_timer_still_records_event_and_histogram) {
  obs::sink sink;
  {
    obs::scoped_timer timer{&sink, "stage", "work", 3};
    EXPECT_NE(timer.id(), 0u);
  }
  const auto events = sink.trace().events_of("stage", "work");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].span_id, 0u);
  EXPECT_EQ(sink.metrics().histogram("stage.work.seconds").count, 1u);
}

TEST(obs_trace_ring, capacity_bounds_memory_and_counts_drops) {
  obs::sink sink;
  sink.trace().set_capacity(4);
  for (std::uint64_t i = 0; i < 10; ++i)
    sink.event("ring", "ev", i, 0.0, 0.0);
  EXPECT_EQ(sink.trace().size(), 4u);
  EXPECT_EQ(sink.trace().dropped(), 6u);
  // The survivors are the newest events, in order.
  const auto events = sink.trace().events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].index, 6 + i);
  // The drop count is exported as a counter in the JSON snapshot.
  const std::string doc = sink.to_json();
  EXPECT_NE(doc.find("\"trace.dropped\":6"), std::string::npos);
}

TEST(obs_chrome_trace, emits_valid_complete_events_with_hierarchy) {
  obs::sink sink;
  {
    obs::scoped_span outer{&sink, "engine", "run"};
    obs::scoped_span inner{&sink, "engine", "iteration", 0, 2.0};
  }
  const std::string trace = sink.to_chrome_trace();
  EXPECT_TRUE(obs::json_is_valid(trace));
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ts\":"), std::string::npos);
  EXPECT_NE(trace.find("\"dur\":"), std::string::npos);
  EXPECT_NE(trace.find("\"tid\":"), std::string::npos);
  EXPECT_NE(trace.find("\"span_id\":"), std::string::npos);
  EXPECT_NE(trace.find("\"parent_id\":"), std::string::npos);
  // The iteration span names its parent (the run span) in args.
  const auto events = sink.trace().events_of("engine", "iteration");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(trace.find("\"parent_id\":" +
                       obs::json_number(static_cast<double>(events[0].parent_id))),
            std::string::npos);
}

// ------------------------------------------------------------- journeys

TEST(obs_journeys, sampling_is_deterministic_and_rate_faithful) {
  obs::journey_tracer a, b;
  a.configure(0.5, 123);
  b.configure(0.5, 123);
  std::size_t sampled = 0;
  for (std::uint64_t pid = 0; pid < 10'000; ++pid) {
    EXPECT_EQ(a.sampled(pid), b.sampled(pid));
    if (a.sampled(pid)) ++sampled;
  }
  EXPECT_GT(sampled, 4'500u);
  EXPECT_LT(sampled, 5'500u);

  obs::journey_tracer all, none;
  all.configure(1.0);
  none.configure(0.0);
  EXPECT_TRUE(all.enabled());
  EXPECT_FALSE(none.enabled());
  for (std::uint64_t pid = 0; pid < 1'000; ++pid) {
    EXPECT_TRUE(all.sampled(pid));
    EXPECT_FALSE(none.sampled(pid));
  }
}

TEST(obs_journeys, record_hop_upserts_by_device_and_sorts_output) {
  obs::journey_tracer tracer;
  tracer.configure(1.0);
  tracer.record_send(7, 2, 0.001);
  // Second hop arrives first in time but is recorded first: journeys() must
  // sort hops by arrival. The device-3 hop is then re-recorded (IRSA
  // re-processing) with updated values — the last write wins.
  tracer.record_hop(7, {5, 1, 0.004, 1e-5, 2e-5, 0.00402});
  tracer.record_hop(7, {3, 0, 0.002, 9e-6, 9e-6, 0.002009});
  tracer.record_hop(7, {3, 0, 0.002, 1e-5, 1.5e-5, 0.002015});
  tracer.record_delivery(7, 0.005);

  const auto journeys = tracer.journeys();
  ASSERT_EQ(journeys.size(), 1u);
  const auto& journey = journeys[0];
  EXPECT_EQ(journey.pid, 7u);
  EXPECT_EQ(journey.flow, 2u);
  EXPECT_DOUBLE_EQ(journey.send_time, 0.001);
  EXPECT_DOUBLE_EQ(journey.delivery_time, 0.005);
  ASSERT_EQ(journey.hops.size(), 2u);
  EXPECT_EQ(journey.hops[0].device, 3);
  EXPECT_DOUBLE_EQ(journey.hops[0].corrected_delay, 1.5e-5);  // upserted
  EXPECT_EQ(journey.hops[1].device, 5);
}

// One fixture-style trained PTM for the end-to-end engine tests.
std::shared_ptr<const core::ptm_model> shared_ptm() {
  static const core::device_model_bundle bundle = [] {
    core::dutil_config cfg;
    cfg.ports = 4;
    cfg.streams = 30;
    cfg.packets_per_stream = 600;
    cfg.ptm.time_steps = 8;
    cfg.ptm.mlp_hidden = {48, 24};
    cfg.ptm.epochs = 10;
    cfg.seed = 99;
    return core::train_device_model(cfg);
  }();
  return std::shared_ptr<const core::ptm_model>{&bundle.model,
                                                [](const core::ptm_model*) {}};
}

std::vector<traffic::packet_stream> make_streams(std::size_t hosts, double rate,
                                                 double horizon,
                                                 std::uint64_t seed) {
  util::rng rng{seed};
  auto flows = traffic::make_uniform_flows(hosts, 1, rng);
  traffic::tg_util_config tg;
  tg.per_flow_rate = rate;
  tg.seed = seed;
  auto generators = traffic::make_generators(flows, tg);
  return traffic::per_host_streams(generators, hosts, horizon, rng);
}

TEST(obs_journeys, engine_run_at_rate_one_matches_hop_records) {
  const auto topo = topo::make_line(3);
  const topo::routing routes{topo};
  const double horizon = 0.01;
  const auto streams = make_streams(3, 40'000.0, horizon, 12);

  obs::sink sink;
  sink.journeys().configure(1.0);
  core::engine_config cfg;
  cfg.partitions = 2;
  cfg.record_hops = true;
  cfg.sink = &sink;
  core::dqn_network net{topo, routes, shared_ptm(), {}, cfg};
  const auto result = net.run(streams, horizon);
  ASSERT_FALSE(result.deliveries.empty());
  ASSERT_FALSE(result.hops.empty());

  const auto journeys = sink.journeys().journeys();
  ASSERT_FALSE(journeys.empty());

  // Index the engine's own per-packet hop records (the ground truth the
  // journeys must agree with) by pid, in arrival order.
  std::map<std::uint64_t, std::vector<des::hop_record>> hops_by_pid;
  for (const auto& hop : result.hops) hops_by_pid[hop.pid].push_back(hop);
  for (auto& [pid, hops] : hops_by_pid)
    std::sort(hops.begin(), hops.end(),
              [](const des::hop_record& a, const des::hop_record& b) {
                return a.arrival < b.arrival;
              });

  std::size_t delivered_journeys = 0;
  for (const auto& journey : journeys) {
    const auto it = hops_by_pid.find(journey.pid);
    ASSERT_NE(it, hops_by_pid.end()) << "pid " << journey.pid;
    const auto& truth = it->second;
    ASSERT_EQ(journey.hops.size(), truth.size()) << "pid " << journey.pid;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(journey.hops[i].device, truth[i].device);
      EXPECT_EQ(journey.hops[i].queue, truth[i].out_port);
      EXPECT_DOUBLE_EQ(journey.hops[i].arrival, truth[i].arrival);
      EXPECT_DOUBLE_EQ(journey.hops[i].departure, truth[i].departure);
      // corrected = departure - arrival by construction; raw is the pre-SEC
      // sojourn and must be a finite non-negative prediction.
      EXPECT_DOUBLE_EQ(journey.hops[i].corrected_delay,
                       truth[i].departure - truth[i].arrival);
      EXPECT_GE(journey.hops[i].raw_delay, 0.0);
      EXPECT_TRUE(std::isfinite(journey.hops[i].raw_delay));
    }
    if (journey.delivery_time >= 0) ++delivered_journeys;
  }
  // Every delivered packet's journey closes with its delivery time.
  EXPECT_EQ(delivered_journeys, result.deliveries.size());
  for (const auto& d : result.deliveries) {
    const auto it = std::find_if(
        journeys.begin(), journeys.end(),
        [&d](const obs::packet_journey& j) { return j.pid == d.pid; });
    ASSERT_NE(it, journeys.end());
    EXPECT_DOUBLE_EQ(it->send_time, d.send_time);
    EXPECT_DOUBLE_EQ(it->delivery_time, d.delivery_time);
  }

  // The snapshot carries the journeys and the quantile keys, and stays valid.
  const std::string doc = sink.to_json();
  EXPECT_TRUE(obs::json_is_valid(doc));
  EXPECT_NE(doc.find("\"journeys\":["), std::string::npos);
  EXPECT_NE(doc.find("\"raw_delay\""), std::string::npos);
  EXPECT_NE(doc.find("\"p50\""), std::string::npos);
  EXPECT_NE(doc.find("\"p999\""), std::string::npos);
}

TEST(obs_journeys, disabled_tracer_records_nothing_in_engine_run) {
  const auto topo = topo::make_line(3);
  const topo::routing routes{topo};
  const double horizon = 0.005;
  const auto streams = make_streams(3, 40'000.0, horizon, 12);

  obs::sink sink;  // journeys not configured: rate 0
  core::engine_config cfg;
  cfg.sink = &sink;
  core::dqn_network net{topo, routes, shared_ptm(), {}, cfg};
  (void)net.run(streams, horizon);
  EXPECT_EQ(sink.journeys().size(), 0u);
}

}  // namespace
