#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/dbscan.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "stats/pearson.hpp"
#include "stats/wasserstein.hpp"
#include "util/rng.hpp"

namespace {

using namespace dqn::stats;

TEST(descriptive, mean_and_variance) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(1.25));
}

TEST(descriptive, empty_throws) {
  const std::vector<double> empty;
  EXPECT_THROW((void)mean(empty), std::invalid_argument);
  EXPECT_THROW((void)percentile(empty, 0.5), std::invalid_argument);
  EXPECT_THROW((void)bounds(empty), std::invalid_argument);
}

TEST(descriptive, percentile_interpolates) {
  const std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 10.0);
}

TEST(descriptive, percentile_unsorted_input) {
  const std::vector<double> xs{9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 5.0);
}

TEST(descriptive, percentile_rejects_bad_q) {
  const std::vector<double> xs{1, 2};
  EXPECT_THROW((void)percentile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, 1.1), std::invalid_argument);
}

TEST(descriptive, jitter_series_absolute_differences) {
  const std::vector<double> lat{1.0, 3.0, 2.0};
  const auto jitter = jitter_series(lat);
  ASSERT_EQ(jitter.size(), 2u);
  EXPECT_DOUBLE_EQ(jitter[0], 2.0);
  EXPECT_DOUBLE_EQ(jitter[1], 1.0);
}

TEST(descriptive, jitter_of_short_series_is_empty) {
  const std::vector<double> one{1.0};
  EXPECT_TRUE(jitter_series(one).empty());
}

// --- Wasserstein --------------------------------------------------------

TEST(wasserstein, identical_distributions_have_zero_distance) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(wasserstein1(a, a), 0.0);
}

TEST(wasserstein, point_masses) {
  // W1 between delta(0) and delta(3) is 3.
  const std::vector<double> a{0, 0, 0};
  const std::vector<double> b{3, 3, 3};
  EXPECT_DOUBLE_EQ(wasserstein1(a, b), 3.0);
}

TEST(wasserstein, known_shift) {
  // Shifting a distribution by c moves it exactly c in W1.
  const std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b;
  for (double x : a) b.push_back(x + 2.5);
  EXPECT_NEAR(wasserstein1(a, b), 2.5, 1e-12);
}

TEST(wasserstein, symmetry) {
  const std::vector<double> a{0.3, 1.7, 2.2};
  const std::vector<double> b{0.1, 5.0};
  EXPECT_DOUBLE_EQ(wasserstein1(a, b), wasserstein1(b, a));
}

TEST(wasserstein, triangle_inequality_on_random_samples) {
  dqn::util::rng rng{3};
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a, b, c;
    for (int i = 0; i < 30; ++i) {
      a.push_back(rng.normal(0, 1));
      b.push_back(rng.normal(1, 2));
      c.push_back(rng.exponential(0.5));
    }
    EXPECT_LE(wasserstein1(a, c),
              wasserstein1(a, b) + wasserstein1(b, c) + 1e-9);
  }
}

TEST(wasserstein, different_sample_sizes) {
  const std::vector<double> a{0, 1};
  const std::vector<double> b{0, 0.5, 1};
  // Quantile functions: a jumps at 1/2; b at 1/3 and 2/3. Distance = 1/6.
  EXPECT_NEAR(wasserstein1(a, b), 1.0 / 6.0, 1e-12);
}

TEST(wasserstein, normalized_zero_predictor_scores_one) {
  const std::vector<double> label{2, 4, 6};
  const std::vector<double> zeros{0, 0, 0};
  EXPECT_NEAR(normalized_w1(zeros, label), 1.0, 1e-12);
}

TEST(wasserstein, normalized_perfect_predictor_scores_zero) {
  const std::vector<double> label{2, 4, 6};
  EXPECT_DOUBLE_EQ(normalized_w1(label, label), 0.0);
}

TEST(wasserstein, normalized_rejects_zero_label) {
  const std::vector<double> zeros{0, 0};
  EXPECT_THROW((void)normalized_w1(zeros, zeros), std::invalid_argument);
}

TEST(wasserstein, empty_throws) {
  const std::vector<double> a{1};
  const std::vector<double> empty;
  EXPECT_THROW((void)wasserstein1(a, empty), std::invalid_argument);
}

// --- Pearson ------------------------------------------------------------

TEST(pearson, perfect_positive_correlation) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double v : x) y.push_back(3 * v + 1);
  const auto r = pearson(x, y);
  EXPECT_NEAR(r.rho, 1.0, 1e-12);
}

TEST(pearson, perfect_negative_correlation) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double v : x) y.push_back(-2 * v);
  EXPECT_NEAR(pearson(x, y).rho, -1.0, 1e-12);
}

TEST(pearson, independent_samples_near_zero) {
  dqn::util::rng rng{4};
  std::vector<double> x, y;
  for (int i = 0; i < 5000; ++i) {
    x.push_back(rng.normal());
    y.push_back(rng.normal());
  }
  const auto r = pearson(x, y);
  EXPECT_NEAR(r.rho, 0.0, 0.05);
  EXPECT_LT(r.ci_low, 0.0);
  EXPECT_GT(r.ci_high, 0.0);
}

TEST(pearson, ci_contains_rho_and_narrows_with_n) {
  dqn::util::rng rng{5};
  auto make = [&](int n) {
    std::vector<double> x, y;
    for (int i = 0; i < n; ++i) {
      const double v = rng.normal();
      x.push_back(v);
      y.push_back(v + 0.5 * rng.normal());
    }
    return pearson(x, y);
  };
  const auto small = make(50);
  const auto large = make(5000);
  EXPECT_LE(small.ci_low, small.rho);
  EXPECT_GE(small.ci_high, small.rho);
  EXPECT_LT(large.ci_high - large.ci_low, small.ci_high - small.ci_low);
}

TEST(pearson, rejects_degenerate_inputs) {
  const std::vector<double> constant{1, 1, 1, 1};
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> shorter{1, 2, 3};
  EXPECT_THROW((void)pearson(x, constant), std::invalid_argument);
  EXPECT_THROW((void)pearson(x, shorter), std::invalid_argument);
}

// --- ECDF ---------------------------------------------------------------

TEST(ecdf, step_function_values) {
  const std::vector<double> xs{1, 2, 3};
  const ecdf f{xs};
  EXPECT_DOUBLE_EQ(f(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(f(2.5), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(f(3.0), 1.0);
  EXPECT_DOUBLE_EQ(f(99), 1.0);
}

TEST(ecdf, curve_is_monotone) {
  dqn::util::rng rng{6};
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.exponential(1.0));
  const ecdf f{xs};
  const auto curve = f.curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
}

// --- DBSCAN -------------------------------------------------------------

TEST(dbscan, separates_two_1d_clusters) {
  std::vector<double> points;
  for (int i = 0; i < 20; ++i) points.push_back(0.0 + i * 0.01);
  for (int i = 0; i < 20; ++i) points.push_back(10.0 + i * 0.01);
  const auto labels = dbscan_1d(points, {.eps = 0.05, .min_points = 3});
  ASSERT_EQ(labels.size(), 40u);
  EXPECT_EQ(labels[0], labels[19]);
  EXPECT_EQ(labels[20], labels[39]);
  EXPECT_NE(labels[0], labels[20]);
  EXPECT_NE(labels[0], dbscan_noise);
}

TEST(dbscan, labels_isolated_points_as_noise) {
  std::vector<double> points;
  for (int i = 0; i < 10; ++i) points.push_back(i * 0.01);
  points.push_back(50.0);
  const auto labels = dbscan_1d(points, {.eps = 0.05, .min_points = 3});
  EXPECT_EQ(labels.back(), dbscan_noise);
}

TEST(dbscan, every_point_in_a_dense_blob_gets_the_same_cluster) {
  dqn::util::rng rng{8};
  std::vector<double> points;
  for (int i = 0; i < 100; ++i) points.push_back(rng.uniform(0.0, 1.0));
  const auto labels = dbscan_1d(points, {.eps = 0.2, .min_points = 3});
  for (int label : labels) EXPECT_EQ(label, labels[0]);
}

TEST(dbscan, nd_version_matches_1d_on_line_data) {
  std::vector<double> points;
  for (int i = 0; i < 15; ++i) points.push_back(i < 8 ? i * 0.01 : 5.0 + i * 0.01);
  const auto l1 = dbscan_1d(points, {.eps = 0.1, .min_points = 3});
  const auto l2 = dbscan(points, 1, {.eps = 0.1, .min_points = 3});
  EXPECT_EQ(l1, l2);
}

TEST(dbscan, nd_two_gaussian_blobs) {
  dqn::util::rng rng{9};
  std::vector<double> points;
  for (int i = 0; i < 50; ++i) {
    points.push_back(rng.normal(0, 0.1));
    points.push_back(rng.normal(0, 0.1));
  }
  for (int i = 0; i < 50; ++i) {
    points.push_back(rng.normal(5, 0.1));
    points.push_back(rng.normal(5, 0.1));
  }
  const auto labels = dbscan(points, 2, {.eps = 0.5, .min_points = 4});
  EXPECT_NE(labels[0], dbscan_noise);
  EXPECT_NE(labels[50], dbscan_noise);
  EXPECT_NE(labels[0], labels[50]);
}

TEST(dbscan, rejects_bad_parameters) {
  const std::vector<double> points{1, 2, 3};
  EXPECT_THROW((void)dbscan_1d(points, {.eps = 0.0, .min_points = 2}),
               std::invalid_argument);
  EXPECT_THROW((void)dbscan_1d(points, {.eps = 1.0, .min_points = 0}),
               std::invalid_argument);
  EXPECT_THROW((void)dbscan(points, 2, {.eps = 1.0, .min_points = 2}),
               std::invalid_argument);
}

// Property sweep: W1 metric axioms over randomly generated sample pairs.
class wasserstein_axioms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(wasserstein_axioms, nonnegativity_symmetry_identity) {
  dqn::util::rng rng{GetParam()};
  std::vector<double> a, b;
  const int n = 10 + static_cast<int>(rng.uniform_int(100));
  for (int i = 0; i < n; ++i) {
    a.push_back(rng.normal(rng.uniform(-3, 3), rng.uniform(0.1, 2.0)));
    b.push_back(rng.exponential(rng.uniform(0.2, 3.0)));
  }
  const double d_ab = wasserstein1(a, b);
  EXPECT_GE(d_ab, 0.0);
  EXPECT_DOUBLE_EQ(d_ab, wasserstein1(b, a));
  EXPECT_NEAR(wasserstein1(a, a), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(random_seeds, wasserstein_axioms,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
