// Determinism regression tests: the repo's reproducibility contract is that
// a run is a pure function of (topology, streams, seed, model) — neither
// the partition count nor run-to-run state may change a single output bit.
// These tests guard the deterministic-container sweep (util::keyed_vector
// replacing iterated unordered maps; see docs/STATIC_ANALYSIS.md) and are
// part of the TSan matrix: under -DDQN_SANITIZE=thread the partitioned
// comparison doubles as a race detector for the keyed tables.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "core/dutil.hpp"
#include "core/engine.hpp"
#include "des/network.hpp"
#include "des/records.hpp"
#include "topo/builders.hpp"
#include "topo/routing.hpp"
#include "traffic/traffic_gen.hpp"
#include "util/keyed_vector.hpp"
#include "util/rng.hpp"

namespace {

using namespace dqn;

// --- util::keyed_vector: the sanctioned unordered_map replacement ---------

TEST(determinism, keyed_vector_sorted_iteration_and_lookup) {
  util::keyed_vector<std::uint64_t, double> kv;
  kv.reserve(4);
  kv.push_back(30, 3.0);
  kv.push_back(10, 1.0);
  kv.push_back(20, 2.0);
  EXPECT_FALSE(kv.finalized());
  kv.finalize();
  ASSERT_TRUE(kv.finalized());
  ASSERT_EQ(kv.size(), 3u);

  // Iteration is ascending key order regardless of insertion order.
  std::vector<std::uint64_t> keys;
  for (const auto& [key, value] : kv) keys.push_back(key);
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{10, 20, 30}));

  EXPECT_EQ(kv.at(20), 2.0);
  ASSERT_NE(kv.find(10), nullptr);
  EXPECT_EQ(*kv.find(10), 1.0);
  EXPECT_EQ(kv.find(99), nullptr);
}

TEST(determinism, keyed_vector_duplicate_keys_keep_first_insert) {
  // Mirrors unordered_map::emplace semantics: later duplicates are ignored.
  util::keyed_vector<std::uint32_t, int> kv;
  kv.push_back(7, 1);
  kv.push_back(7, 2);
  kv.push_back(3, 9);
  kv.finalize();
  ASSERT_EQ(kv.size(), 2u);
  EXPECT_EQ(kv.at(7), 1);
  EXPECT_EQ(kv.at(3), 9);
}

TEST(determinism, keyed_vector_clear_resets_to_building_state) {
  util::keyed_vector<std::uint64_t, double> kv;
  kv.push_back(1, 1.0);
  kv.finalize();
  kv.clear();
  EXPECT_TRUE(kv.empty());
  EXPECT_TRUE(kv.finalized());  // empty is trivially sorted
  kv.push_back(2, 2.0);
  EXPECT_FALSE(kv.finalized());  // building again: lookups are gated
  kv.finalize();
  EXPECT_EQ(kv.at(2), 2.0);
}

// --- whole-run bit-identity ------------------------------------------------

// Exact bitwise comparison: EXPECT_DOUBLE_EQ would accept 4-ulp drift, which
// is precisely what a nondeterministic accumulation order produces.
bool same_bits(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

void expect_bit_identical(const des::run_result& a, const des::run_result& b) {
  ASSERT_EQ(a.deliveries.size(), b.deliveries.size());
  ASSERT_EQ(a.drops, b.drops);
  for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
    const auto& da = a.deliveries[i];
    const auto& db = b.deliveries[i];
    EXPECT_EQ(da.pid, db.pid) << "delivery " << i;
    EXPECT_EQ(da.flow_id, db.flow_id) << "delivery " << i;
    EXPECT_EQ(da.src, db.src) << "delivery " << i;
    EXPECT_EQ(da.dst, db.dst) << "delivery " << i;
    EXPECT_TRUE(same_bits(da.send_time, db.send_time))
        << "delivery " << i << " send_time bits differ";
    EXPECT_TRUE(same_bits(da.delivery_time, db.delivery_time))
        << "delivery " << i << " delivery_time bits differ";
  }
}

// One tiny trained PTM shared by the engine tests (training dominates).
std::shared_ptr<const core::ptm_model> tiny_ptm() {
  static const core::device_model_bundle bundle = [] {
    core::dutil_config cfg;
    cfg.ports = 4;
    cfg.streams = 20;
    cfg.packets_per_stream = 400;
    cfg.ptm.time_steps = 8;
    cfg.ptm.mlp_hidden = {32, 16};
    cfg.ptm.epochs = 5;
    cfg.seed = 7;
    return core::train_device_model(cfg);
  }();
  return {&bundle.model, [](const core::ptm_model*) {}};
}

std::vector<traffic::packet_stream> fattree_streams() {
  util::rng rng{11};
  auto flows = traffic::make_uniform_flows(16, 1, rng);
  traffic::tg_util_config tg;
  tg.per_flow_rate = 30'000.0;
  tg.seed = 11;
  auto generators = traffic::make_generators(flows, tg);
  return traffic::per_host_streams(generators, 16, 0.005, rng);
}

TEST(determinism, engine_bit_identical_across_partition_counts) {
  const auto ptm = tiny_ptm();
  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};
  const auto streams = fattree_streams();

  core::engine_config serial_cfg;
  serial_cfg.partitions = 1;
  core::engine_config parallel_cfg;
  parallel_cfg.partitions = 4;
  core::dqn_network serial{topo, routes, ptm, {}, serial_cfg};
  core::dqn_network parallel{topo, routes, ptm, {}, parallel_cfg};

  const auto serial_result = serial.run(streams, 0.005);
  const auto parallel_result = parallel.run(streams, 0.005);
  expect_bit_identical(serial_result, parallel_result);
}

// The sharded engine's core promise (ISSUE 10): deliveries are a pure
// function of (topology, streams, seed, model) — 1/2/8 shards with
// topology-aware sharding, work stealing (single-device batches maximize
// steal traffic), and core pinning all reproduce the 1-shard run bit for
// bit. The shard plan only decides WHERE a device is computed; every device
// writes its own double-buffer slot from read-only t-1 state.
TEST(determinism, engine_bit_identical_across_shard_counts_with_stealing) {
  const auto ptm = tiny_ptm();
  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};
  const auto streams = fattree_streams();

  core::engine_config base_cfg;
  base_cfg.sharding = topo::shard_strategy::topology;
  base_cfg.steal_batch = 1;
  base_cfg.pin_threads = true;
  core::engine_config one_cfg = base_cfg;
  one_cfg.partitions = 1;
  core::dqn_network one{topo, routes, ptm, {}, one_cfg};
  const auto one_result = one.run(streams, 0.005);

  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
    core::engine_config cfg = base_cfg;
    cfg.partitions = shards;
    core::dqn_network net{topo, routes, ptm, {}, cfg};
    const auto result = net.run(streams, 0.005);
    EXPECT_EQ(net.stats().workers, shards);
    expect_bit_identical(one_result, result);
  }
}

// Shard strategy is equally irrelevant to results: topology-aware BFS
// clusters and the round-robin reference produce identical deliveries.
TEST(determinism, engine_bit_identical_across_shard_strategies) {
  const auto ptm = tiny_ptm();
  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};
  const auto streams = fattree_streams();

  core::engine_config topo_cfg;
  topo_cfg.partitions = 4;
  topo_cfg.sharding = topo::shard_strategy::topology;
  core::engine_config rr_cfg;
  rr_cfg.partitions = 4;
  rr_cfg.sharding = topo::shard_strategy::round_robin;
  core::dqn_network topo_net{topo, routes, ptm, {}, topo_cfg};
  core::dqn_network rr_net{topo, routes, ptm, {}, rr_cfg};

  const auto topo_result = topo_net.run(streams, 0.005);
  const auto rr_result = rr_net.run(streams, 0.005);
  expect_bit_identical(topo_result, rr_result);
  // The BFS-grown plan's raison d'être: fewer worker-crossing links than
  // the round-robin shuffle on a clustered topology.
  EXPECT_LT(topo_net.stats().cross_shard_links,
            rr_net.stats().cross_shard_links);
}

TEST(determinism, engine_bit_identical_across_consecutive_runs) {
  const auto ptm = tiny_ptm();
  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};
  const auto streams = fattree_streams();

  core::engine_config cfg;
  cfg.partitions = 4;
  core::dqn_network first{topo, routes, ptm, {}, cfg};
  core::dqn_network second{topo, routes, ptm, {}, cfg};
  const auto first_result = first.run(streams, 0.005);
  const auto second_result = second.run(streams, 0.005);
  expect_bit_identical(first_result, second_result);
}

TEST(determinism, des_network_bit_identical_across_consecutive_runs) {
  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};
  const auto streams = fattree_streams();

  des::network_config cfg;
  cfg.record_hops = false;
  des::network first{topo, routes, cfg};
  des::network second{topo, routes, cfg};
  const auto first_result = first.run(streams, 0.005);
  const auto second_result = second.run(streams, 0.005);
  expect_bit_identical(first_result, second_result);
}

}  // namespace
