#include <gtest/gtest.h>

#include <initializer_list>
#include <set>
#include <sstream>

#include "core/features.hpp"
#include "core/pfm.hpp"
#include "core/sec.hpp"
#include "util/rng.hpp"
#include "util/check.hpp"

namespace {

using namespace dqn::core;
using dqn::traffic::packet;
using dqn::traffic::packet_event;
using dqn::traffic::packet_stream;

packet_stream make_stream(std::initializer_list<std::pair<double, std::uint32_t>> items) {
  packet_stream s;
  std::uint64_t pid = 0;
  for (const auto& [time, bytes] : items) {
    packet p;
    p.pid = pid++;
    p.flow_id = static_cast<std::uint32_t>(pid % 3);
    p.size_bytes = bytes;
    s.push_back({p, time});
  }
  return s;
}

TEST(features, row_layout_and_iat) {
  const auto stream = make_stream({{0.0, 100}, {0.5, 200}, {0.6, 300}});
  scheduler_context ctx;
  ctx.kind = dqn::des::scheduler_kind::fifo;
  const auto rows = compute_features(stream, ctx);
  ASSERT_EQ(rows.size(), 3 * feature_count);
  EXPECT_DOUBLE_EQ(rows[0 * feature_count + f_len], 100.0);
  EXPECT_DOUBLE_EQ(rows[0 * feature_count + f_iat], 0.0);  // first packet
  EXPECT_DOUBLE_EQ(rows[1 * feature_count + f_iat], 0.5);
  EXPECT_NEAR(rows[2 * feature_count + f_iat], 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(rows[0 * feature_count + f_sched_fifo], 1.0);
  EXPECT_DOUBLE_EQ(rows[0 * feature_count + f_sched_wfq], 0.0);
}

TEST(features, workload_ema_uses_smoothing_factor) {
  const auto stream = make_stream({{0.0, 1000}, {1.0, 0}});
  scheduler_context ctx;
  const auto rows = compute_features(stream, ctx);
  // First packet seeds the EMA; second: 0.95*1000 + 0.05*0.
  EXPECT_DOUBLE_EQ(rows[0 * feature_count + f_workload_bytes], 1000.0);
  EXPECT_DOUBLE_EQ(rows[1 * feature_count + f_workload_bytes], 950.0);
}

TEST(features, scheduler_one_hot_is_exclusive) {
  const auto stream = make_stream({{0.0, 100}});
  for (const auto kind :
       {dqn::des::scheduler_kind::fifo, dqn::des::scheduler_kind::sp,
        dqn::des::scheduler_kind::wrr, dqn::des::scheduler_kind::drr,
        dqn::des::scheduler_kind::wfq}) {
    scheduler_context ctx;
    ctx.kind = kind;
    const auto rows = compute_features(stream, ctx);
    double one_hot_sum = 0;
    for (std::size_t f = f_sched_fifo; f <= f_sched_wfq; ++f)
      one_hot_sum += rows[f];
    EXPECT_DOUBLE_EQ(one_hot_sum, 1.0);
  }
}

TEST(features, weight_of_uses_class_table) {
  scheduler_context ctx;
  ctx.kind = dqn::des::scheduler_kind::wfq;
  ctx.class_weights = {9.0, 4.0, 1.0};
  packet p;
  p.priority = 1;
  EXPECT_DOUBLE_EQ(ctx.weight_of(p), 4.0);
  p.priority = 7;  // out of range clamps to last class
  EXPECT_DOUBLE_EQ(ctx.weight_of(p), 1.0);
}

TEST(windows, sliding_window_alignment) {
  const auto stream = make_stream({{0.0, 100}, {0.1, 200}, {0.2, 300}, {0.3, 400}});
  scheduler_context ctx;
  const auto rows = compute_features(stream, ctx);
  const auto windows = make_windows(rows, 3);
  // 4 windows of 3 steps each.
  ASSERT_EQ(windows.size(), 4 * 3 * feature_count);
  // Window 3 (last) covers rows 1,2,3.
  EXPECT_DOUBLE_EQ(windows[(3 * 3 + 0) * feature_count + f_len], 200.0);
  EXPECT_DOUBLE_EQ(windows[(3 * 3 + 2) * feature_count + f_len], 400.0);
  // Window 0 is front-padded with row 0.
  EXPECT_DOUBLE_EQ(windows[(0 * 3 + 0) * feature_count + f_len], 100.0);
  EXPECT_DOUBLE_EQ(windows[(0 * 3 + 1) * feature_count + f_len], 100.0);
  EXPECT_DOUBLE_EQ(windows[(0 * 3 + 2) * feature_count + f_len], 100.0);
}

TEST(windows, rejects_bad_shapes) {
  std::vector<double> rows(feature_count + 1, 0.0);
  EXPECT_THROW((void)make_windows(rows, 3), dqn::util::contract_violation);
  std::vector<double> good(feature_count, 0.0);
  EXPECT_THROW((void)make_windows(good, 0), dqn::util::contract_violation);
}

// --- PFM -------------------------------------------------------------------

TEST(pfm, routes_by_flow_and_sorts_by_time) {
  std::vector<packet_stream> ingress(2);
  packet a;
  a.pid = 1;
  a.flow_id = 0;
  packet b;
  b.pid = 2;
  b.flow_id = 1;
  ingress[0].push_back({a, 0.5});
  ingress[1].push_back({b, 0.2});
  auto forward = [](std::uint32_t fid, std::size_t) -> std::size_t {
    return fid == 0 ? 1u : 1u;  // both to egress 1
  };
  const auto egress = apply_forwarding(ingress, forward, 2);
  ASSERT_EQ(egress[1].size(), 2u);
  EXPECT_TRUE(egress[0].empty());
  EXPECT_EQ(egress[1][0].pkt.pid, 2u);  // earlier time first
  EXPECT_EQ(egress[1][1].pkt.pid, 1u);
}

TEST(pfm, conservation_no_packet_lost_or_duplicated) {
  dqn::util::rng rng{3};
  std::vector<packet_stream> ingress(4);
  std::size_t total = 0;
  for (std::size_t port = 0; port < 4; ++port) {
    double t = 0;
    for (int i = 0; i < 50; ++i) {
      t += rng.exponential(100.0);
      packet p;
      p.pid = port * 1000 + static_cast<std::uint64_t>(i);
      p.flow_id = static_cast<std::uint32_t>(rng.uniform_int(8));
      ingress[port].push_back({p, t});
      ++total;
    }
  }
  auto forward = [](std::uint32_t fid, std::size_t) -> std::size_t {
    return fid % 4;
  };
  const auto egress = apply_forwarding(ingress, forward, 4);
  std::set<std::uint64_t> pids;
  std::size_t egress_total = 0;
  for (const auto& stream : egress) {
    EXPECT_TRUE(dqn::traffic::is_time_ordered(stream));
    for (const auto& ev : stream) {
      EXPECT_TRUE(pids.insert(ev.pkt.pid).second);
      ++egress_total;
    }
  }
  EXPECT_EQ(egress_total, total);
}

TEST(pfm, dense_tensor_matches_sparse_application) {
  dqn::util::rng rng{4};
  std::vector<packet_stream> ingress(3);
  for (std::size_t port = 0; port < 3; ++port) {
    double t = 0;
    for (int i = 0; i < 20; ++i) {
      t += rng.exponential(10.0);
      packet p;
      p.pid = port * 100 + static_cast<std::uint64_t>(i);
      p.flow_id = static_cast<std::uint32_t>(rng.uniform_int(5));
      ingress[port].push_back({p, t});
    }
  }
  auto forward = [](std::uint32_t fid, std::size_t in_port) -> std::size_t {
    return (fid + in_port) % 3;
  };
  const auto tensor = build_forwarding_tensor(ingress, forward, 3);
  const auto via_tensor = apply_tensor(tensor, ingress);
  const auto via_sparse = apply_forwarding(ingress, forward, 3);
  ASSERT_EQ(via_tensor.size(), via_sparse.size());
  for (std::size_t port = 0; port < 3; ++port) {
    ASSERT_EQ(via_tensor[port].size(), via_sparse[port].size());
    for (std::size_t i = 0; i < via_tensor[port].size(); ++i)
      EXPECT_EQ(via_tensor[port][i].pkt.pid, via_sparse[port][i].pkt.pid);
  }
}

TEST(pfm, tensor_rows_have_unit_fanout) {
  std::vector<packet_stream> ingress(2);
  packet p;
  p.pid = 0;
  p.flow_id = 3;
  ingress[0].push_back({p, 0.0});
  const auto tensor = build_forwarding_tensor(
      ingress, [](std::uint32_t, std::size_t) { return 1u; }, 2);
  EXPECT_EQ(tensor.fanout(0, 0), 1u);  // real packet: exactly one egress
  EXPECT_EQ(tensor.fanout(1, 0), 0u);  // padding: no egress
}

// --- SEC ---------------------------------------------------------------------

TEST(sec, corrects_constant_bias) {
  // Predictor overestimates by exactly 0.5 everywhere.
  std::vector<double> predictions, truths;
  dqn::util::rng rng{5};
  for (int i = 0; i < 200; ++i) {
    const double truth = rng.uniform(1.0, 2.0);
    truths.push_back(truth);
    predictions.push_back(truth + 0.5);
  }
  sec_table sec;
  sec.fit(predictions, truths, 0.2, 4);
  ASSERT_TRUE(sec.fitted());
  EXPECT_NEAR(sec.correct(1.8), 1.3, 0.1);
}

TEST(sec, corrects_region_dependent_bias) {
  // Overestimates small sojourns, underestimates large ones (the paper's
  // Figure 6 shape: error is not monotonic but locally consistent).
  std::vector<double> predictions, truths;
  dqn::util::rng rng{6};
  for (int i = 0; i < 300; ++i) {
    const double truth = rng.uniform(0.0, 1.0);
    truths.push_back(truth);
    predictions.push_back(truth + 0.2);
  }
  for (int i = 0; i < 300; ++i) {
    const double truth = rng.uniform(5.0, 6.0);
    truths.push_back(truth);
    predictions.push_back(truth - 0.3);
  }
  sec_table sec;
  sec.fit(predictions, truths, 0.02, 6);
  ASSERT_GE(sec.bins().size(), 2u);
  EXPECT_NEAR(sec.correct(0.7), 0.5, 0.1);   // subtract +0.2 bias
  EXPECT_NEAR(sec.correct(5.2), 5.5, 0.1);   // add back the -0.3 bias
}

TEST(sec, unfitted_table_is_identity) {
  const sec_table sec;
  EXPECT_DOUBLE_EQ(sec.correct(3.14), 3.14);
}

TEST(sec, degenerate_constant_predictions_single_bin) {
  std::vector<double> predictions(50, 2.0);
  std::vector<double> truths(50, 1.5);
  sec_table sec;
  sec.fit(predictions, truths);
  ASSERT_EQ(sec.bins().size(), 1u);
  EXPECT_NEAR(sec.correct(2.0), 1.5, 1e-9);
}

TEST(sec, save_load_roundtrip) {
  std::vector<double> predictions, truths;
  dqn::util::rng rng{7};
  for (int i = 0; i < 100; ++i) {
    const double truth = rng.uniform(0.0, 1.0);
    truths.push_back(truth);
    predictions.push_back(truth + 0.1);
  }
  sec_table sec;
  sec.fit(predictions, truths, 0.1, 4);
  std::stringstream buffer;
  sec.save(buffer);
  sec_table loaded;
  loaded.load(buffer);
  EXPECT_EQ(loaded.bins().size(), sec.bins().size());
  EXPECT_DOUBLE_EQ(loaded.correct(0.5), sec.correct(0.5));
}

TEST(sec, quantile_fallback_on_dense_predictions) {
  // Uniformly dense predictions chain into one DBSCAN cluster; the fallback
  // must still produce multiple bins with local corrections.
  std::vector<double> predictions, truths;
  dqn::util::rng rng{8};
  for (int i = 0; i < 2000; ++i) {
    const double truth = rng.uniform(0.0, 10.0);
    truths.push_back(truth);
    // Bias grows linearly with the prediction: +0 at 0, +1 at 10.
    predictions.push_back(truth + truth / 10.0);
  }
  sec_table sec;
  sec.fit(predictions, truths, 0.05, 8);
  ASSERT_GE(sec.bins().size(), 4u);
  // Local corrections: small predictions barely corrected, large ones by ~1.
  EXPECT_NEAR(sec.correct(0.5), 0.5, 0.3);
  EXPECT_NEAR(sec.correct(10.0), 9.1, 0.5);
}

TEST(features, unfinished_work_lindley_recursion) {
  // Two back-to-back 1250-byte packets on a 10 Gbps line: the second one
  // finds exactly one service time (1 us) of unfinished work.
  packet_stream stream;
  packet p;
  p.pid = 1;
  p.size_bytes = 1250;
  stream.push_back({p, 0.0});
  p.pid = 2;
  stream.push_back({p, 0.0});
  p.pid = 3;
  stream.push_back({p, 10.0});  // long gap: queue fully drains
  scheduler_context ctx;  // bandwidth 10 Gbps default
  const auto rows = compute_features(stream, ctx);
  EXPECT_DOUBLE_EQ(rows[0 * feature_count + f_unfinished_work], 0.0);
  EXPECT_NEAR(rows[1 * feature_count + f_unfinished_work], 1e-6, 1e-12);
  EXPECT_DOUBLE_EQ(rows[2 * feature_count + f_unfinished_work], 0.0);
}

TEST(features, unfinished_work_uses_context_bandwidth) {
  packet_stream stream;
  packet p;
  p.size_bytes = 1250;
  stream.push_back({p, 0.0});
  stream.push_back({p, 0.0});
  scheduler_context ctx;
  ctx.bandwidth_bps = 1e9;  // 10x slower line -> 10x more unfinished work
  const auto rows = compute_features(stream, ctx);
  EXPECT_NEAR(rows[1 * feature_count + f_unfinished_work], 1e-5, 1e-12);
}

TEST(features, per_class_work_tracks_priorities) {
  // 10 Gbps line, 1250 B packets (1 us service). Arrivals at t=0:
  // class 1, class 0, class 1 back-to-back; then class 1 after the queue
  // drains.
  packet_stream stream;
  packet p;
  p.size_bytes = 1250;
  p.priority = 1;
  p.pid = 1;
  stream.push_back({p, 0.0});
  p.priority = 0;
  p.pid = 2;
  stream.push_back({p, 0.0});
  p.priority = 1;
  p.pid = 3;
  stream.push_back({p, 0.0});
  p.priority = 1;
  p.pid = 4;
  stream.push_back({p, 10.0});
  scheduler_context ctx;
  ctx.kind = dqn::des::scheduler_kind::sp;
  const auto rows = compute_features(stream, ctx);
  auto at = [&](std::size_t i, std::size_t f) { return rows[i * feature_count + f]; };
  // Packet 1 (class 1): empty system.
  EXPECT_DOUBLE_EQ(at(0, f_higher_class_work), 0.0);
  EXPECT_DOUBLE_EQ(at(0, f_own_class_work), 0.0);
  // Packet 2 (class 0): the class-1 packet ahead contributes nothing to
  // higher-priority work; own-or-higher (class 0) work is 0 too.
  EXPECT_DOUBLE_EQ(at(1, f_higher_class_work), 0.0);
  EXPECT_DOUBLE_EQ(at(1, f_own_class_work), 0.0);
  // Packet 3 (class 1): one class-0 packet (1 us) of higher work; own-or-
  // higher work covers both earlier packets (2 us).
  EXPECT_NEAR(at(2, f_higher_class_work), 1e-6, 1e-12);
  EXPECT_NEAR(at(2, f_own_class_work), 2e-6, 1e-12);
  // Packet 4: the queue fully drained during the 10 s gap.
  EXPECT_DOUBLE_EQ(at(3, f_higher_class_work), 0.0);
  EXPECT_DOUBLE_EQ(at(3, f_own_class_work), 0.0);
}

TEST(sec, mismatched_sizes_throw) {
  sec_table sec;
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{1, 2};
  EXPECT_THROW(sec.fit(a, b), dqn::util::contract_violation);
}

}  // namespace
