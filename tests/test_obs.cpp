// Observability subsystem (src/obs) and the unified estimator run API:
// registry thread-safety, JSON export validity, null-sink overhead, the
// engine/DES instrumentation invariants on a FatTree16 run, lifecycle misuse
// errors, the engine_config builder chain, and call-compatibility of the
// des::estimator implementations.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/dutil.hpp"
#include "core/engine.hpp"
#include "des/network.hpp"
#include "des/run_api.hpp"
#include "obs/json.hpp"
#include "obs/metric_registry.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/sink.hpp"
#include "topo/builders.hpp"
#include "topo/routing.hpp"
#include "traffic/traffic_gen.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"
#include "util/check.hpp"

namespace {

using namespace dqn;

std::shared_ptr<const core::ptm_model> shared_ptm() {
  static const core::device_model_bundle bundle = [] {
    core::dutil_config cfg;
    cfg.ports = 4;
    cfg.streams = 30;
    cfg.packets_per_stream = 600;
    cfg.ptm.time_steps = 8;
    cfg.ptm.mlp_hidden = {48, 24};
    cfg.ptm.epochs = 10;
    cfg.seed = 99;
    return core::train_device_model(cfg);
  }();
  return std::shared_ptr<const core::ptm_model>{&bundle.model,
                                                [](const core::ptm_model*) {}};
}

std::vector<traffic::packet_stream> make_streams(std::size_t hosts, double rate,
                                                 double horizon,
                                                 std::uint64_t seed) {
  util::rng rng{seed};
  auto flows = traffic::make_uniform_flows(hosts, 1, rng);
  traffic::tg_util_config tg;
  tg.per_flow_rate = rate;
  tg.seed = seed;
  auto generators = traffic::make_generators(flows, tg);
  return traffic::per_host_streams(generators, hosts, horizon, rng);
}

TEST(obs_registry, counters_gauges_histograms_roundtrip) {
  obs::metric_registry reg;
  reg.add("c");
  reg.add("c", 2.5);
  reg.set("g", 7.0);
  reg.set("g", -1.0);  // last write wins
  reg.observe("h", 1.0);
  reg.observe("h", 3.0);
  EXPECT_DOUBLE_EQ(reg.counter("c"), 3.5);
  EXPECT_DOUBLE_EQ(reg.gauge("g"), -1.0);
  const auto h = reg.histogram("h");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 3.0);
  EXPECT_NEAR(h.stddev(), 1.0, 1e-12);
  // Unknown names read as empty/zero rather than throwing.
  EXPECT_DOUBLE_EQ(reg.counter("missing"), 0.0);
  EXPECT_EQ(reg.histogram("missing").count, 0u);
}

TEST(obs_registry, histogram_merge_matches_joint_stream) {
  obs::histogram_stats a, b, joint;
  util::rng rng{5};
  for (int i = 0; i < 100; ++i) {
    const double v = rng.exponential(1.0);
    (i % 2 == 0 ? a : b).observe(v);
    joint.observe(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count, joint.count);
  EXPECT_NEAR(a.mean(), joint.mean(), 1e-12);
  EXPECT_NEAR(a.stddev(), joint.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min, joint.min);
  EXPECT_DOUBLE_EQ(a.max, joint.max);
}

TEST(obs_registry, concurrent_mutation_under_parallel_for_is_exact) {
  obs::metric_registry reg;
  util::thread_pool pool{4};
  constexpr std::size_t n = 20'000;
  pool.parallel_for(n, [&](std::size_t i) {
    reg.add("hits");
    reg.observe("values", static_cast<double>(i % 10));
    reg.set("last", static_cast<double>(i));
  });
  EXPECT_DOUBLE_EQ(reg.counter("hits"), static_cast<double>(n));
  const auto h = reg.histogram("values");
  EXPECT_EQ(h.count, n);
  EXPECT_DOUBLE_EQ(h.sum, 4.5 * n);  // mean of 0..9 over full cycles
  EXPECT_DOUBLE_EQ(h.min, 0.0);
  EXPECT_DOUBLE_EQ(h.max, 9.0);
}

TEST(obs_sink, concurrent_events_all_recorded) {
  obs::sink sink;
  util::thread_pool pool{4};
  constexpr std::size_t n = 5'000;
  pool.parallel_for(n, [&](std::size_t i) {
    obs::scoped_timer timer{&sink, "test", "span", i};
  });
  EXPECT_EQ(sink.trace().size(), n);
  EXPECT_EQ(sink.metrics().histogram("test.span.seconds").count, n);
}

TEST(obs_json, escape_and_number_edge_cases) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(obs::json_number(std::nan("")), "null");
  EXPECT_EQ(obs::json_number(INFINITY), "null");
  EXPECT_TRUE(obs::json_is_valid(obs::json_number(0.25)));
}

TEST(obs_json, validator_accepts_and_rejects) {
  EXPECT_TRUE(obs::json_is_valid(R"({"a": [1, 2.5e-3, null, true, "x\n"]})"));
  EXPECT_FALSE(obs::json_is_valid(""));
  EXPECT_FALSE(obs::json_is_valid("{"));
  EXPECT_FALSE(obs::json_is_valid(R"({"a": 1,})"));
  EXPECT_FALSE(obs::json_is_valid("[1 2]"));
  EXPECT_FALSE(obs::json_is_valid(R"("unterminated)"));
  EXPECT_FALSE(obs::json_is_valid("{} trailing"));
}

TEST(obs_sink, to_json_is_valid_and_carries_all_sections) {
  obs::sink sink;
  sink.count("engine.iterations", 3);
  sink.gauge("engine.wall_seconds", 0.5);
  sink.observe("ptm.epoch_mse", 0.125);
  sink.observe("ptm.epoch_mse", std::nan(""));  // must not break the export
  sink.event("engine", "iteration", 0, 0.0, 0.01, 5.0);
  sink.event("weird \"stage\"\n", "name\\", 1, 0.0, 0.0);  // escaping stress
  const std::string doc = sink.to_json();
  EXPECT_TRUE(obs::json_is_valid(doc));
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"gauges\""), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
  EXPECT_NE(doc.find("\"events\""), std::string::npos);
  EXPECT_NE(doc.find("engine.iterations"), std::string::npos);
  // The summary table renders one row per metric without throwing.
  const auto table = sink.summary_table();
  EXPECT_FALSE(table.to_string().empty());
}

TEST(obs_timer, null_sink_overhead_is_negligible) {
  // A null-sink span is a pointer store plus one branch — no clock reads.
  // Bound it loosely (200ns/span) so the test is robust on loaded CI boxes;
  // the real cost is a few ns (see bench_micro_kernels bm_obs_scoped_timer).
  constexpr std::size_t n = 1'000'000;
  util::stopwatch watch;
  for (std::size_t i = 0; i < n; ++i) {
    obs::scoped_timer timer{nullptr, "hot", "span", i};
  }
  EXPECT_LT(watch.elapsed_seconds(), 0.2);
}

TEST(obs_timer, records_event_and_histogram_with_value) {
  obs::sink sink;
  {
    obs::scoped_timer timer{&sink, "stage", "work", 7};
    timer.set_value(42.0);
  }
  const auto events = sink.trace().events_of("stage", "work");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].index, 7u);
  EXPECT_DOUBLE_EQ(events[0].value, 42.0);
  EXPECT_GE(events[0].duration, 0.0);
  EXPECT_EQ(sink.metrics().histogram("stage.work.seconds").count, 1u);
}

TEST(engine_config, builder_chain_equals_field_assignment) {
  obs::sink sink;
  const auto built = core::engine_config{}
                         .with_partitions(3)
                         .with_max_iterations(5)
                         .with_sec(false)
                         .with_convergence_epsilon(1e-6)
                         .with_hop_records(true)
                         .with_host_nic_model(false)
                         .with_irsa_skip(false)
                         .with_sink(&sink);
  core::engine_config direct;
  direct.partitions = 3;
  direct.max_iterations = 5;
  direct.apply_sec = false;
  direct.convergence_epsilon = 1e-6;
  direct.record_hops = true;
  direct.model_host_nics = false;
  direct.irsa_skip_unchanged = false;
  direct.sink = &sink;
  EXPECT_EQ(built.partitions, direct.partitions);
  EXPECT_EQ(built.max_iterations, direct.max_iterations);
  EXPECT_EQ(built.apply_sec, direct.apply_sec);
  EXPECT_DOUBLE_EQ(built.convergence_epsilon, direct.convergence_epsilon);
  EXPECT_EQ(built.record_hops, direct.record_hops);
  EXPECT_EQ(built.model_host_nics, direct.model_host_nics);
  EXPECT_EQ(built.irsa_skip_unchanged, direct.irsa_skip_unchanged);
  EXPECT_EQ(built.sink, direct.sink);
  // Aggregate/designated initialization still compiles (the struct stayed an
  // aggregate despite the member setters).
  const core::engine_config designated{
      .partitions = 2, .apply_sec = false, .delay = {}, .telemetry = {}};
  EXPECT_EQ(designated.partitions, 2u);
  EXPECT_FALSE(designated.apply_sec);
}

TEST(engine_obs, fattree_run_invariants_and_registry_equivalence) {
  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};
  const auto streams = make_streams(16, 20'000.0, 0.005, 3);

  obs::sink sink;
  auto cfg = core::engine_config{}.with_partitions(2).with_sink(&sink);
  core::dqn_network net{topo, routes, shared_ptm(), {}, cfg};
  const auto result = net.run(streams, 0.005);
  EXPECT_FALSE(result.deliveries.empty());

  const auto& stats = net.stats();
  EXPECT_GE(stats.busy_seconds, stats.critical_path_seconds);
  EXPECT_GE(stats.device_inferences, stats.iterations);
  EXPECT_GT(stats.iterations, 0u);

  // engine_stats is re-expressed on the registry: reconstructing it from the
  // published metrics must give back the same numbers.
  const auto rebuilt = core::engine_stats::from_registry(sink.metrics());
  EXPECT_EQ(rebuilt.iterations, stats.iterations);
  EXPECT_EQ(rebuilt.device_inferences, stats.device_inferences);
  EXPECT_EQ(rebuilt.devices_skipped, stats.devices_skipped);
  EXPECT_DOUBLE_EQ(rebuilt.wall_seconds, stats.wall_seconds);
  EXPECT_DOUBLE_EQ(rebuilt.busy_seconds, stats.busy_seconds);
  EXPECT_DOUBLE_EQ(rebuilt.critical_path_seconds, stats.critical_path_seconds);

  // One trace event per IRSA iteration, indices 0..iterations-1.
  const auto iterations = sink.trace().events_of("engine", "iteration");
  ASSERT_EQ(iterations.size(), stats.iterations);
  for (std::size_t i = 0; i < iterations.size(); ++i)
    EXPECT_EQ(iterations[i].index, i);
  // The last iteration converged: no device changed its egress.
  EXPECT_DOUBLE_EQ(iterations.back().value, 0.0);

  EXPECT_TRUE(obs::json_is_valid(sink.to_json()));
}

TEST(engine_obs, misuse_errors_are_loud_and_typed) {
  const auto topo = topo::make_line(3);
  const topo::routing routes{topo};
  core::dqn_network net{topo, routes, shared_ptm(), {}, {}};
  // egress_stream before any run().
  EXPECT_THROW((void)net.egress_stream(0, 0), std::logic_error);

  const auto streams = make_streams(3, 30'000.0, 0.01, 4);
  (void)net.run(streams, 0.01);
  // set_device_context after run() cannot apply retroactively.
  EXPECT_THROW(net.set_device_context(0, core::scheduler_context{}),
               std::logic_error);
  // Out-of-range coordinates name the offending node/port.
  if (dqn::util::contracts_enabled) {
    EXPECT_THROW((void)net.egress_stream(9999, 0), dqn::util::contract_violation);
  }
  const auto devices = topo.devices();
  if (dqn::util::contracts_enabled) {
    EXPECT_THROW((void)net.egress_stream(devices.front(), 9999), dqn::util::contract_violation);
  }
}

TEST(run_api, estimators_are_call_compatible) {
  const auto topo = topo::make_line(3);
  const topo::routing routes{topo};
  const double horizon = 0.01;
  const auto streams = make_streams(3, 30'000.0, horizon, 6);

  des::network oracle{topo, routes, {}};
  core::dqn_network net{topo, routes, shared_ptm(), {}, {}};

  obs::sink sink;
  des::run_request request;
  request.host_streams = &streams;
  request.horizon = horizon;
  request.sink = &sink;

  for (des::estimator* est : {static_cast<des::estimator*>(&oracle),
                              static_cast<des::estimator*>(&net)}) {
    const auto result = est->run(request);
    EXPECT_FALSE(result.deliveries.empty()) << est->estimator_name();
    EXPECT_GT(result.wall_seconds, 0.0) << est->estimator_name();
  }
  EXPECT_STREQ(oracle.estimator_name(), "des");
  EXPECT_STREQ(net.estimator_name(), "deepqueuenet");

  // The request sink overrode the (null) configured sinks for both runs.
  EXPECT_GT(sink.metrics().counter("des.events"), 0.0);
  EXPECT_GT(sink.metrics().counter("engine.iterations"), 0.0);

  // A null host_streams pointer is rejected, not dereferenced.
  des::run_request bad;
  bad.horizon = horizon;
  EXPECT_THROW((void)oracle.run(bad), dqn::util::contract_violation);
  EXPECT_THROW((void)net.run(bad), dqn::util::contract_violation);
}

}  // namespace
