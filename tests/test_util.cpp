#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using dqn::util::rng;

TEST(rng, deterministic_for_same_seed) {
  rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(rng, different_seeds_diverge) {
  rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(rng, uniform_in_unit_interval) {
  rng r{7};
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(rng, uniform_mean_is_half) {
  rng r{7};
  double total = 0;
  constexpr int n = 100'000;
  for (int i = 0; i < n; ++i) total += r.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(rng, uniform_int_range_and_coverage) {
  rng r{9};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(rng, uniform_int_inclusive_bounds) {
  rng r{10};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(rng, exponential_mean) {
  rng r{11};
  double total = 0;
  constexpr int n = 200'000;
  for (int i = 0; i < n; ++i) total += r.exponential(4.0);
  EXPECT_NEAR(total / n, 0.25, 0.005);
}

TEST(rng, exponential_rejects_nonpositive_rate) {
  rng r{1};
  EXPECT_THROW((void)r.exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)r.exponential(-1.0), std::invalid_argument);
}

TEST(rng, normal_moments) {
  rng r{12};
  double total = 0, total_sq = 0;
  constexpr int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(2.0, 3.0);
    total += x;
    total_sq += x * x;
  }
  const double mean = total / n;
  const double var = total_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(rng, pareto_minimum_respected) {
  rng r{13};
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(r.pareto(1.5, 2.0), 2.0);
}

TEST(rng, pareto_mean_matches_formula) {
  // E[X] = alpha*xm/(alpha-1) for alpha > 1.
  rng r{14};
  double total = 0;
  constexpr int n = 400'000;
  for (int i = 0; i < n; ++i) total += r.pareto(3.0, 1.0);
  EXPECT_NEAR(total / n, 1.5, 0.02);
}

TEST(rng, discrete_follows_weights) {
  rng r{15};
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  constexpr int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[r.discrete(weights)];
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / double(n), 0.6, 0.01);
}

TEST(rng, discrete_rejects_bad_weights) {
  rng r{1};
  const std::vector<double> negative = {1.0, -1.0};
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW((void)r.discrete(negative), std::invalid_argument);
  EXPECT_THROW((void)r.discrete(zeros), std::invalid_argument);
}

TEST(rng, shuffle_is_permutation) {
  rng r{16};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(rng, derive_seed_decorrelates_streams) {
  const auto s1 = dqn::util::derive_seed(42, 0);
  const auto s2 = dqn::util::derive_seed(42, 1);
  EXPECT_NE(s1, s2);
  rng a{s1}, b{s2};
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(thread_pool, runs_all_tasks) {
  dqn::util::thread_pool pool{4};
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(thread_pool, parallel_for_covers_range_exactly_once) {
  dqn::util::thread_pool pool{3};
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(thread_pool, propagates_exceptions) {
  dqn::util::thread_pool pool{2};
  auto f = pool.submit([] { throw std::runtime_error{"boom"}; });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(thread_pool, rejects_zero_threads) {
  EXPECT_THROW(dqn::util::thread_pool{0}, std::invalid_argument);
}

TEST(format_duration, renders_paper_style) {
  EXPECT_EQ(dqn::util::format_duration(0.5), "500ms");
  EXPECT_EQ(dqn::util::format_duration(12), "12s");
  EXPECT_EQ(dqn::util::format_duration(75), "1m15s");
  EXPECT_EQ(dqn::util::format_duration(3600 * 2 + 22 * 60 + 11), "2h22m11s");
}

TEST(text_table, renders_rows_and_csv) {
  dqn::util::text_table table{{"a", "bb"}};
  table.add_row({"1", "2"});
  const auto text = table.to_string();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(table.to_csv(), "a,bb\n1,2\n");
}

TEST(text_table, rejects_mismatched_rows) {
  dqn::util::text_table table{{"a", "b"}};
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(fmt, formats_decimals) {
  EXPECT_EQ(dqn::util::fmt(0.12345, 3), "0.123");
  EXPECT_EQ(dqn::util::fmt(2.0, 1), "2.0");
}

}  // namespace
