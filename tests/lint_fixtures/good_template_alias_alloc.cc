// GOOD twin of bad_template_alias_alloc.cc: the alias is fine — allocation
// through it belongs in unmarked setup code; the hot kernel only reads the
// caller-provided buffer. Both the ast_lint.py floor and the
// dqn-hot-path-alloc plugin check pass this file.
#include <vector>

#include "util/annotations.hpp"

namespace fixture {

using scratch_t = std::vector<double>;

inline scratch_t make_scratch(std::size_t n) {
  return scratch_t(n, 0.0);  // staging allocation in cold setup code
}

DQN_HOT_PATH inline double smooth(const scratch_t& rows) {
  double total = 0;
  for (const double r : rows) total += r;
  return total;
}

}  // namespace fixture
