// BAD fixture: writes a DQN_GUARDED_BY member without holding its mutex.
// clang -Werror=thread-safety must refuse to compile this file; the good
// twin (good_guarded_member.cc) locks first. Never built into a target —
// scripts/test_lint_fixtures.sh compiles it with -fsyntax-only only.
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace fixture {

class counter {
 public:
  // VIOLATION: value_ is guarded by mutex_, which is not held here.
  void bump() { ++value_; }

  [[nodiscard]] long read() {
    const dqn::util::lock_guard lock{mutex_};
    return value_;
  }

 private:
  dqn::util::mutex mutex_;
  long value_ DQN_GUARDED_BY(mutex_) = 0;
};

}  // namespace fixture
