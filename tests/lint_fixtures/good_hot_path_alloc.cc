// GOOD twin of bad_hot_path_alloc.cc: the kernel only reads and writes
// caller-provided buffers — container types in the *parameter list* are
// fine; the hot-path rules apply to the body. ast_lint.py passes this file.
#include <vector>

#include "util/annotations.hpp"

namespace fixture {

DQN_HOT_PATH inline double sum_sizes(const std::vector<double>& sizes) {
  double total = 0;
  for (const double s : sizes) total += s;
  return total;
}

// Staging (allocation) belongs in unmarked setup code like this.
inline std::vector<double> make_sizes(std::size_t n) {
  return std::vector<double>(n, 1.0);
}

}  // namespace fixture
