// BAD fixture: order-sensitive range-for over std::unordered_map. Hash
// iteration order is load-factor- and library-version-dependent, so the
// float accumulation, the stream output, and the container append below all
// leak nondeterminism into results. scripts/ast_lint.py must report
// [unordered-iteration] here; the plugin check dqn-unordered-iteration must
// agree (scripts/test_lint_fixtures.sh asserts both).
#include <cstdint>
#include <iostream>
#include <unordered_map>
#include <vector>

namespace fixture {

inline double total_delay(const std::unordered_map<std::uint64_t, double>& delays) {
  double total = 0;
  for (const auto& [pid, d] : delays) total += d;  // VIOLATION: float accumulation
  return total;
}

inline void dump(const std::unordered_map<std::uint64_t, double>& delays,
                 std::vector<double>& out) {
  for (const auto& [pid, d] : delays) {
    std::cout << pid << '\n';  // VIOLATION: output in hash order
    out.push_back(d);          // VIOLATION: append in hash order
  }
}

}  // namespace fixture
