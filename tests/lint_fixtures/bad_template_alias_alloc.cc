// BAD fixture (plugin-only): allocation through a template alias inside a
// DQN_HOT_PATH body. There is no textual growth call and no literal
// `std::vector` spelling in the hot body, so the ast_lint.py builtin floor
// cannot see it — only the dqn-hot-path-alloc plugin check resolves the
// alias to an allocating std:: record. test_lint_fixtures.sh therefore
// expects: builtin = clean, plugin = rejected. This asymmetry is the
// documented capability gap (docs/STATIC_ANALYSIS.md).
#include <vector>

#include "util/annotations.hpp"

namespace fixture {

using scratch_t = std::vector<double>;  // alias hides the allocating type

DQN_HOT_PATH inline double smooth(const scratch_t& rows) {
  scratch_t copy = rows;  // VIOLATION (plugin): per-call heap allocation
  double total = 0;
  for (const double r : copy) total += r;
  return total;
}

}  // namespace fixture
