// GOOD twin of bad_narrowing_float.cc: every narrowing is either explicit
// (static_cast documents the decision), exactly representable (constants
// that survive the conversion), or avoided by keeping the wider type.
#include <cstdint>
#include <vector>

namespace fixture {

inline float to_feature(double sojourn) {
  return static_cast<float>(sojourn);  // explicit: reviewed truncation
}

inline void pack(std::vector<float>& row, double rate, std::int64_t node) {
  row[0] = static_cast<float>(rate * 2.0);
  row[1] = 0.25;  // exactly representable constant: exempt
  (void)node;
}

inline double keep_wide(double sojourn) {
  return sojourn;  // no conversion at all
}

inline std::int16_t small_constant() {
  return 512;  // fits std::int16_t exactly: exempt
}

}  // namespace fixture
