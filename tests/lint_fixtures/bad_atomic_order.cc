// BAD fixture: atomic accesses with the defaulted (seq_cst) memory order.
// scripts/ast_lint.py must report [atomic-order] findings here; the good
// twin (good_atomic_order.cc) names every order — including seq_cst, with
// the required one-line justification.
#include <atomic>

namespace fixture {

inline std::atomic<long> events{0};

inline long drain() {
  events.fetch_add(1);                 // VIOLATION: implicit order
  const long seen = events.load();     // VIOLATION: implicit order
  events.store(0);                     // VIOLATION: implicit order
  return seen;
}

}  // namespace fixture
