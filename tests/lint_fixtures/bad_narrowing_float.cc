// BAD fixture (plugin-only): implicit double->float narrowing and a
// width-reducing integral conversion. The dqn-narrowing-float plugin check
// rejects these; the ast_lint.py builtin floor has no type information and
// treats the file as clean (the documented capability gap,
// docs/STATIC_ANALYSIS.md). run via test_lint_fixtures.sh with
// PathFilter '.*' so the fixture path is in scope.
#include <cstdint>
#include <vector>

namespace fixture {

inline float to_feature(double sojourn) {
  return sojourn;  // VIOLATION (plugin): silently drops 29 mantissa bits
}

inline void pack(std::vector<float>& row, double rate, std::int64_t node) {
  row[0] = rate * 2.0;  // VIOLATION (plugin): double expression into float
  row[1] = static_cast<float>(static_cast<std::int16_t>(node));
}

inline std::int16_t to_port(std::int64_t node) {
  return node;  // VIOLATION (plugin): 64 -> 16 bit truncation
}

}  // namespace fixture
