// GOOD twin of bad_guarded_member.cc: every access to the guarded member
// holds the mutex, so clang -Werror=thread-safety compiles this file clean.
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace fixture {

class counter {
 public:
  void bump() {
    const dqn::util::lock_guard lock{mutex_};
    ++value_;
  }

  [[nodiscard]] long read() {
    const dqn::util::lock_guard lock{mutex_};
    return value_;
  }

 private:
  dqn::util::mutex mutex_;
  long value_ DQN_GUARDED_BY(mutex_) = 0;
};

}  // namespace fixture
