// GOOD twin of bad_atomic_order.cc: every atomic access names its order.
// Where seq_cst is genuinely required the repo convention is to spell it out
// and justify it in one line (exactly as done for `seen` below) — the rule
// bans *implicit* orders, not strong ones. ast_lint.py passes this file.
#include <atomic>

namespace fixture {

inline std::atomic<long> events{0};

inline long drain() {
  events.fetch_add(1, std::memory_order_relaxed);
  // seq_cst required: drain points must be totally ordered across threads so
  // two concurrent drains cannot both observe the same pre-reset count.
  const long seen = events.load(std::memory_order_seq_cst);
  events.store(0, std::memory_order_release);
  return seen;
}

}  // namespace fixture
