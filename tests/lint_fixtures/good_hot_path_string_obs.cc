// GOOD twin of bad_hot_path_string_obs.cc: the handle was resolved once at
// setup (outside any hot function); the hot body records through it with no
// string in sight. ast_lint.py passes this file.
#include "util/annotations.hpp"

namespace fixture {

struct counter_handle {
  void add(double delta) { (void)delta; }
};

DQN_HOT_PATH inline void on_packet(counter_handle& pkts) { pkts.add(1.0); }

}  // namespace fixture
