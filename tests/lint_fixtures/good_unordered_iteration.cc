// GOOD twin of bad_unordered_iteration.cc: three sanctioned shapes.
//  1. util::keyed_vector — the structural fix: deterministic (sorted)
//     iteration order by construction.
//  2. Iterating a sorted copy of the keys.
//  3. A genuinely commutative-and-exact loop carrying the
//     `// dqn-order-insensitive: <rationale>` annotation.
// ast_lint.py and the dqn-unordered-iteration plugin check both pass this.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/keyed_vector.hpp"

namespace fixture {

inline double total_delay(
    const dqn::util::keyed_vector<std::uint64_t, double>& delay_table) {
  double total = 0;
  // sorted key order by construction: deterministic accumulation
  for (const auto& [pid, d] : delay_table) total += d;
  return total;
}

inline std::vector<double> in_pid_order(
    const std::unordered_map<std::uint64_t, double>& delays) {
  std::vector<std::uint64_t> pids;
  pids.reserve(delays.size());
  // dqn-order-insensitive: collecting the key set is a pure gather; the
  // sort directly below fixes the order before anything consumes it.
  for (const auto& [pid, d] : delays) pids.push_back(pid);
  std::sort(pids.begin(), pids.end());
  std::vector<double> out;
  out.reserve(pids.size());
  for (const std::uint64_t pid : pids) out.push_back(delays.at(pid));
  return out;
}

inline std::uint64_t key_checksum(
    const std::unordered_map<std::uint64_t, double>& delays) {
  std::uint64_t sum = 0;
  // dqn-order-insensitive: integer addition is commutative and exact, so
  // the checksum is identical in any visit order.
  for (const auto& [pid, d] : delays) sum += pid;
  return sum;
}

}  // namespace fixture
