// BAD fixture: allocating constructs inside a DQN_HOT_PATH body.
// scripts/ast_lint.py must report [hot-path-alloc] findings here; the good
// twin (good_hot_path_alloc.cc) runs over caller-provided pre-sized buffers.
#include <string>
#include <vector>

#include "util/annotations.hpp"

namespace fixture {

DQN_HOT_PATH inline double sum_sizes(const std::vector<double>& sizes) {
  std::vector<double> copy = sizes;  // VIOLATION: container declaration
  copy.push_back(0.0);               // VIOLATION: container growth
  std::string label = std::to_string(copy.size());  // VIOLATION: string alloc
  double total = 0;
  for (const double s : copy) total += s;
  return total + static_cast<double>(label.size());
}

}  // namespace fixture
