// BAD fixture: string-keyed obs calls inside a DQN_HOT_PATH body.
// scripts/ast_lint.py must report [hot-path-string-obs] findings here; the
// good twin (good_hot_path_string_obs.cc) records through a pre-resolved
// handle. (The sink stand-in mirrors obs::sink's compat API shape.)
#include <string_view>

#include "util/annotations.hpp"

namespace fixture {

struct sink {
  void count(std::string_view name, double delta) {
    (void)name;
    (void)delta;
  }
  [[nodiscard]] int counter_handle_for(std::string_view name) {
    (void)name;
    return 0;
  }
};

DQN_HOT_PATH inline void on_packet(sink& s) {
  s.count("pkts", 1.0);                      // VIOLATION: string-keyed call
  (void)s.counter_handle_for("pkts.bytes");  // VIOLATION: handle resolution
}

}  // namespace fixture
