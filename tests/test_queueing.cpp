#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "queueing/linalg.hpp"
#include "queueing/map_fit.hpp"
#include "queueing/markovian_arrival.hpp"
#include "util/rng.hpp"

namespace {

using namespace dqn::queueing;
using dqn::nn::matrix;

TEST(linalg, solve_known_system) {
  matrix a{2, 2, {2, 1, 1, 3}};
  matrix b{2, 1, {5, 10}};
  const matrix x = solve(a, b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 3.0, 1e-12);
}

TEST(linalg, inverse_times_original_is_identity) {
  dqn::util::rng r{1};
  matrix a{4, 4};
  for (auto& v : a.data()) v = r.normal(0, 1);
  for (std::size_t i = 0; i < 4; ++i) a(i, i) += 4;  // diagonally dominant
  const matrix inv = inverse(a);
  const matrix product = dqn::nn::matmul(a, inv);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NEAR(product(i, j), i == j ? 1.0 : 0.0, 1e-10);
}

TEST(linalg, singular_matrix_throws) {
  matrix a{2, 2, {1, 2, 2, 4}};
  matrix b{2, 1, {1, 1}};
  EXPECT_THROW((void)solve(a, b), std::runtime_error);
}

TEST(linalg, expm_of_zero_is_identity) {
  const matrix e = expm(matrix{3, 3});
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_NEAR(e(i, j), i == j ? 1.0 : 0.0, 1e-12);
}

TEST(linalg, expm_diagonal_matches_scalar_exp) {
  matrix a{2, 2};
  a(0, 0) = -1.0;
  a(1, 1) = 2.5;
  const matrix e = expm(a);
  EXPECT_NEAR(e(0, 0), std::exp(-1.0), 1e-10);
  EXPECT_NEAR(e(1, 1), std::exp(2.5), 1e-10);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-12);
}

TEST(linalg, expm_rotation_block) {
  // exp([[0,-t],[t,0]]) = [[cos t, -sin t], [sin t, cos t]].
  const double t = 0.7;
  matrix a{2, 2, {0, -t, t, 0}};
  const matrix e = expm(a);
  EXPECT_NEAR(e(0, 0), std::cos(t), 1e-10);
  EXPECT_NEAR(e(0, 1), -std::sin(t), 1e-10);
  EXPECT_NEAR(e(1, 0), std::sin(t), 1e-10);
}

TEST(linalg, ctmc_stationary_two_state) {
  // Rates 1->2 at 2, 2->1 at 3: pi = (0.6, 0.4).
  matrix q{2, 2, {-2, 2, 3, -3}};
  const auto pi = ctmc_stationary(q);
  EXPECT_NEAR(pi[0], 0.6, 1e-12);
  EXPECT_NEAR(pi[1], 0.4, 1e-12);
}

TEST(linalg, dtmc_stationary_two_state) {
  matrix p{2, 2, {0.9, 0.1, 0.3, 0.7}};
  const auto pi = dtmc_stationary(p);
  EXPECT_NEAR(pi[0], 0.75, 1e-12);
  EXPECT_NEAR(pi[1], 0.25, 1e-12);
}

// --- MAP ------------------------------------------------------------------

TEST(map_process, poisson_special_case_analytics) {
  const auto m = map_process::poisson(5.0);
  EXPECT_NEAR(m.mean_rate(), 5.0, 1e-12);
  EXPECT_NEAR(m.iat_mean(), 0.2, 1e-12);
  EXPECT_NEAR(m.iat_scv(), 1.0, 1e-12);  // exponential: SCV = 1
  EXPECT_NEAR(m.iat_lag1_correlation(), 0.0, 1e-12);
  // CDF is 1 - e^{-5t}.
  EXPECT_NEAR(m.iat_cdf(0.2), 1 - std::exp(-1.0), 1e-10);
}

TEST(map_process, validation_rejects_bad_matrices) {
  matrix d0{2, 2, {-1, 0.5, 0, -1}};
  matrix d1{2, 2, {0.5, 0, 0.5, 0.5}};
  EXPECT_NO_THROW(map_process(d0, d1));
  matrix bad_d1{2, 2, {0.4, 0, 0.5, 0.5}};  // row sums not zero
  EXPECT_THROW(map_process(d0, bad_d1), std::invalid_argument);
  matrix neg_d1{2, 2, {0.5, 0, 1.0, -0.5}};
  EXPECT_THROW(map_process(d0, neg_d1), std::invalid_argument);
}

TEST(map_process, paper_example_rate_is_4800) {
  // Appendix B.3: "the average arriving rate of the aggregate flow is 4800
  // packets per sec according to the MAP(2) model."
  const auto m = map_process::paper_example();
  EXPECT_NEAR(m.mean_rate(), 4800.0, 1.0);
}

TEST(map_process, mmpp2_is_bursty) {
  const auto m = map_process::mmpp2(1.0, 1.0, 20.0, 1.0);
  EXPECT_GT(m.iat_scv(), 1.0);               // burstier than Poisson
  EXPECT_GT(m.iat_lag1_correlation(), 0.0);  // positively correlated IATs
}

TEST(map_process, scaled_rescales_rate_but_keeps_shape) {
  const auto m = map_process::mmpp2(0.7, 1.3, 9.0, 2.0);
  const auto scaled = m.scaled(3.0);
  EXPECT_NEAR(scaled.mean_rate(), 3.0 * m.mean_rate(), 1e-9);
  EXPECT_NEAR(scaled.iat_scv(), m.iat_scv(), 1e-9);
  EXPECT_NEAR(scaled.iat_lag1_correlation(), m.iat_lag1_correlation(), 1e-9);
}

TEST(map_process, thinning_reduces_rate_proportionally) {
  const auto m = map_process::paper_example();
  const auto thinned = m.thinned(0.3);
  EXPECT_NEAR(thinned.mean_rate(), 0.3 * m.mean_rate(), 1e-6);
}

TEST(map_process, simulated_iats_match_analytic_moments) {
  const auto m = map_process::mmpp2(2.0, 3.0, 40.0, 5.0);
  dqn::util::rng rng{77};
  std::size_t state = m.sample_initial_state(rng);
  constexpr int n = 200'000;
  double total = 0, total_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double iat = m.sample_iat(state, rng);
    total += iat;
    total_sq += iat * iat;
  }
  const double mean = total / n;
  const double m2 = total_sq / n;
  EXPECT_NEAR(mean, m.iat_mean(), 0.02 * m.iat_mean());
  EXPECT_NEAR(m2, m.iat_moment(2), 0.05 * m.iat_moment(2));
}

TEST(map_process, simulated_cdf_matches_analytic_cdf) {
  const auto m = map_process::mmpp2(1.5, 2.5, 30.0, 4.0);
  dqn::util::rng rng{78};
  std::size_t state = m.sample_initial_state(rng);
  std::vector<double> iats(100'000);
  for (auto& iat : iats) iat = m.sample_iat(state, rng);
  std::sort(iats.begin(), iats.end());
  for (const double q : {0.25, 0.5, 0.9}) {
    const double x = iats[static_cast<std::size_t>(
        q * static_cast<double>(iats.size()))];
    EXPECT_NEAR(m.iat_cdf(x), q, 0.01);
  }
}

TEST(map_process, embedded_stationary_sums_to_one) {
  const auto m = map_process::paper_example();
  const auto pia = m.embedded_stationary();
  double total = 0;
  for (double p : pia) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

// --- MAP fitting (Figure 12) -----------------------------------------------

TEST(map_fit, statistics_of_known_sample) {
  // Constant IATs: SCV 0, lag1 undefined -> 0.
  const std::vector<double> iats(100, 0.5);
  const auto stats = compute_iat_statistics(iats);
  EXPECT_NEAR(stats.mean, 0.5, 1e-12);
  EXPECT_NEAR(stats.scv, 0.0, 1e-12);
}

TEST(map_fit, recovers_poisson_like_traffic) {
  dqn::util::rng rng{80};
  std::vector<double> iats(50'000);
  for (auto& iat : iats) iat = rng.exponential(10.0);
  const auto fit = fit_mmpp2(iats);
  EXPECT_NEAR(fit.achieved.mean, 0.1, 0.01);
  EXPECT_NEAR(fit.achieved.scv, 1.0, 0.15);
}

TEST(map_fit, recovers_bursty_mmpp) {
  const auto truth = map_process::mmpp2(1.0, 2.0, 50.0, 4.0);
  dqn::util::rng rng{81};
  std::size_t state = truth.sample_initial_state(rng);
  std::vector<double> iats(80'000);
  for (auto& iat : iats) iat = truth.sample_iat(state, rng);
  const auto fit = fit_mmpp2(iats);
  // Moment targets should be matched within a few percent.
  EXPECT_NEAR(fit.achieved.mean, fit.target.mean, 0.05 * fit.target.mean);
  EXPECT_NEAR(fit.achieved.scv, fit.target.scv, 0.15 * fit.target.scv);
  EXPECT_NEAR(fit.achieved.lag1, fit.target.lag1, 0.1);
  // And the fitted model's CDF should track the empirical one (Figure 12).
  std::sort(iats.begin(), iats.end());
  for (const double q : {0.25, 0.5, 0.75, 0.95}) {
    const double x = iats[static_cast<std::size_t>(
        q * static_cast<double>(iats.size()))];
    EXPECT_NEAR(fit.fitted.iat_cdf(x), q, 0.12) << "quantile " << q;
  }
}

TEST(map_process, chain2_covers_sub_poisson_variability) {
  // Pure hypoexponential chain (a=0, q=1): SCV = (b^2+c^2)/(b+c)^2 < 1.
  const auto m = map_process::chain2(0.0, 10.0, 10.0, 1.0);
  EXPECT_NEAR(m.iat_scv(), 0.5, 1e-9);
  EXPECT_NEAR(m.iat_mean(), 0.2, 1e-9);
  EXPECT_NEAR(m.iat_lag1_correlation(), 0.0, 1e-9);
}

TEST(map_process, chain2_validates_parameters) {
  EXPECT_THROW((void)map_process::chain2(-1, 1, 1, 0.5), std::invalid_argument);
  EXPECT_THROW((void)map_process::chain2(0, 0, 1, 0.5), std::invalid_argument);
  EXPECT_THROW((void)map_process::chain2(0, 1, 1, 1.5), std::invalid_argument);
}

TEST(map_process, chain2_simulation_matches_analytics) {
  const auto m = map_process::chain2(2.0, 8.0, 12.0, 0.7);
  dqn::util::rng rng{55};
  std::size_t state = m.sample_initial_state(rng);
  double total = 0;
  constexpr int n = 100'000;
  for (int i = 0; i < n; ++i) total += m.sample_iat(state, rng);
  EXPECT_NEAR(total / n, m.iat_mean(), 0.02 * m.iat_mean());
}

TEST(map_fit, handles_sub_poisson_samples) {
  // Erlang-2-like IATs: SCV 0.5, below MMPP(2)'s floor of 1 — the fitter
  // must fall back to the chain/full families.
  dqn::util::rng rng{83};
  std::vector<double> iats(40'000);
  for (auto& iat : iats) iat = rng.exponential(20.0) + rng.exponential(20.0);
  const auto fit = fit_mmpp2(iats);
  EXPECT_NEAR(fit.achieved.mean, 0.1, 0.01);
  EXPECT_LT(fit.achieved.scv, 0.75);
}

TEST(map_fit, quantile_terms_pull_cdf_onto_sample) {
  dqn::util::rng rng{84};
  std::vector<double> iats(60'000);
  for (auto& iat : iats) iat = rng.exponential(5.0);
  const auto fit = fit_mmpp2(iats);
  EXPECT_NEAR(fit.fitted.iat_cdf(fit.target.q50), 0.5, 0.05);
  EXPECT_NEAR(fit.fitted.iat_cdf(fit.target.q90), 0.9, 0.05);
}

TEST(map_fit, rejects_tiny_samples) {
  const std::vector<double> iats{0.1, 0.2};
  EXPECT_THROW((void)fit_mmpp2(iats), std::invalid_argument);
}

}  // namespace
