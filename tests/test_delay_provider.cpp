// Delay-provider API tests (core/delay_provider.hpp): backend parity against
// closed-form queueing theory, the tiered policy's threshold/hysteresis state
// machine and error-budget spot check, the policy extremes reproducing the
// pure backends bit-for-bit through the engine, the per-run delay override of
// des::run_request, and the string-keyed estimator factory.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <random>
#include <stdexcept>
#include <vector>

#include "core/delay_provider.hpp"
#include "core/dutil.hpp"
#include "core/engine.hpp"
#include "core/features.hpp"
#include "des/estimator_factory.hpp"
#include "des/run_api.hpp"
#include "obs/sink.hpp"
#include "queueing/sojourn.hpp"
#include "topo/builders.hpp"
#include "topo/routing.hpp"
#include "traffic/traffic_gen.hpp"
#include "util/rng.hpp"

namespace {

using namespace dqn;

// One tiny trained PTM shared by every test in this binary (training
// dominates test time; the model just needs to be valid, not accurate).
const core::device_model_bundle& tiny_bundle() {
  static const core::device_model_bundle bundle = [] {
    core::dutil_config cfg;
    cfg.ports = 4;
    cfg.streams = 20;
    cfg.packets_per_stream = 400;
    cfg.ptm.time_steps = 8;
    cfg.ptm.mlp_hidden = {32, 16};
    cfg.ptm.epochs = 5;
    cfg.seed = 7;
    return core::train_device_model(cfg);
  }();
  return bundle;
}

std::shared_ptr<const core::ptm_model> tiny_ptm() {
  return {&tiny_bundle().model, [](const core::ptm_model*) {}};
}

traffic::packet_stream make_stream(std::size_t n, double gap,
                                   std::uint32_t size_bytes = 1000) {
  traffic::packet_stream stream;
  double t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    traffic::packet p;
    p.pid = i;
    p.size_bytes = size_bytes;
    t += gap;
    stream.push_back({p, t});
  }
  return stream;
}

// A ready-to-estimate device_state over one arrival series. Owns the rows so
// the state's spans stay valid for the fixture's lifetime.
struct probe {
  traffic::packet_stream stream;
  core::scheduler_context ctx;
  std::vector<double> rows;
  core::device_state state;

  explicit probe(traffic::packet_stream arrivals, double bandwidth_bps = 1e9,
                 std::int64_t device = 1)
      : stream{std::move(arrivals)} {
    ctx.bandwidth_bps = bandwidth_bps;
    rows = core::compute_features(stream, ctx);
    state.device = device;
    state.arrivals = &stream;
    state.feature_rows = rows;
    state.ctx = &ctx;
  }
};

TEST(delay_provider, analytical_fifo_waits_are_exact_lindley) {
  // Six spaced packets then a burst: the analytical backend's FIFO wait must
  // reproduce the Lindley recursion U_i = max(0, U_{i-1} + s_{i-1} - iat_i)
  // exactly — it is the same unfinished-work quantity the feature stage
  // computes, read back as the estimate.
  traffic::packet_stream stream = make_stream(6, 1e-3, 1500);
  double t = stream.back().time;
  for (std::size_t i = 0; i < 4; ++i) {
    traffic::packet p;
    p.pid = 100 + i;
    p.size_bytes = 1500;
    t += 2e-6;
    stream.push_back({p, t});
  }
  probe pr{std::move(stream)};

  core::analytical_delay_provider provider;
  std::vector<double> raw;
  pr.state.raw_out = &raw;
  const auto waits = provider.estimate_sojourn(pr.state, 0.0);

  ASSERT_EQ(waits.size(), pr.stream.size());
  double unfinished = 0;
  double prev_time = pr.stream.front().time;
  double prev_service = 0;
  for (std::size_t i = 0; i < pr.stream.size(); ++i) {
    const double iat = pr.stream[i].time - prev_time;
    unfinished = std::max(0.0, unfinished + prev_service - iat);
    EXPECT_NEAR(waits[i], unfinished, 1e-12) << "packet " << i;
    prev_time = pr.stream[i].time;
    prev_service = pr.stream[i].pkt.size_bytes * 8.0 / pr.ctx.bandwidth_bps;
  }
  // No SEC stage: the raw trace echoes the estimates.
  ASSERT_EQ(raw.size(), waits.size());
  for (std::size_t i = 0; i < waits.size(); ++i)
    EXPECT_DOUBLE_EQ(raw[i], waits[i]);
}

TEST(delay_provider, mm1_closed_forms_match_textbook_values) {
  const double mu = 125'000.0;  // 1 Gbps line, 1000-byte packets
  const double lambda = 0.5 * mu;
  EXPECT_NEAR(queueing::mm1_mean_wait(lambda, mu), 0.5 / (mu - lambda), 1e-15);
  EXPECT_NEAR(queueing::mm1_mean_sojourn(lambda, mu), 1.0 / (mu - lambda),
              1e-15);
  EXPECT_TRUE(std::isinf(queueing::mm1_mean_wait(mu, mu)));
}

TEST(delay_provider, ldqbd_reference_collapses_to_mm1_for_fifo) {
  core::scheduler_context ctx;
  ctx.bandwidth_bps = 1e9;
  const double mean_bytes = 1000.0;
  const double mu = ctx.bandwidth_bps / (mean_bytes * 8.0);
  const double lambda = 0.5 * mu;
  const auto waits = core::analytical_delay_provider::ldqbd_reference_waits(
      ctx, lambda, mean_bytes);
  ASSERT_EQ(waits.size(), 1u);
  const double expected = queueing::mm1_mean_wait(lambda, mu);
  EXPECT_NEAR(waits[0], expected, 0.05 * expected);
}

TEST(delay_provider, analytical_empirical_mean_matches_ldqbd_reference) {
  // M/M/1 workload (Poisson arrivals, exponential sizes at rho = 0.5): the
  // analytical backend's per-packet waits must average to the stationary
  // LDQBD/MAP reference. Fixed seed keeps the check deterministic.
  const double bandwidth = 1e9;
  const double mean_bytes = 1000.0;
  const double mu = bandwidth / (mean_bytes * 8.0);
  const double lambda = 0.5 * mu;
  std::mt19937_64 rng{424242};
  std::exponential_distribution<double> gap{lambda};
  std::exponential_distribution<double> size{1.0 / mean_bytes};

  traffic::packet_stream stream;
  double t = 0;
  for (std::size_t i = 0; i < 20'000; ++i) {
    traffic::packet p;
    p.pid = i;
    p.size_bytes = static_cast<std::uint32_t>(std::max(1.0, size(rng)));
    t += gap(rng);
    stream.push_back({p, t});
  }
  probe pr{std::move(stream), bandwidth};

  core::analytical_delay_provider provider;
  const auto waits = provider.estimate_sojourn(pr.state, t);
  double mean = 0;
  for (const double w : waits) mean += w;
  mean /= static_cast<double>(waits.size());

  const auto reference = core::analytical_delay_provider::ldqbd_reference_waits(
      pr.ctx, lambda, mean_bytes);
  ASSERT_EQ(reference.size(), 1u);
  EXPECT_NEAR(mean, reference[0], 0.25 * reference[0]);
}

TEST(delay_provider, tiered_hysteresis_state_machine) {
  des::delay_policy policy;
  policy.backend = des::delay_backend::tiered;
  policy.utilization_threshold = 0.5;
  policy.hysteresis = 0.1;
  policy.error_budget = 0;  // isolate the threshold machinery
  core::tiered_delay_provider provider{tiny_ptm(), policy};
  provider.prepare(4);

  probe pr{make_stream(10, 5e-6)};
  const auto call = [&](double utilization) {
    pr.state.utilization = utilization;
    return provider.estimate_sojourn(pr.state, 5e-5);
  };

  call(0.3);  // below threshold: analytical
  EXPECT_EQ(provider.stats().analytical_calls, 1u);
  EXPECT_EQ(provider.stats().ptm_calls, 0u);

  call(0.55);  // inside the band (not > 0.6): stays analytical
  EXPECT_EQ(provider.stats().analytical_calls, 2u);
  EXPECT_EQ(provider.stats().promotions, 0u);

  call(0.65);  // above threshold + band: promoted
  EXPECT_EQ(provider.stats().ptm_calls, 1u);
  EXPECT_EQ(provider.stats().promotions, 1u);

  call(0.45);  // inside the band (not < 0.4): stays PTM
  EXPECT_EQ(provider.stats().ptm_calls, 2u);
  EXPECT_EQ(provider.stats().demotions, 0u);

  call(0.35);  // below threshold - band: demoted
  EXPECT_EQ(provider.stats().analytical_calls, 3u);
  EXPECT_EQ(provider.stats().demotions, 1u);

  // A fresh device at exactly the threshold goes PTM (strict comparison, so
  // threshold 0 means pure PTM even for idle zero-utilization windows).
  pr.state.device = 2;
  call(0.5);
  EXPECT_EQ(provider.stats().ptm_calls, 3u);

  const auto stats = provider.stats();
  EXPECT_EQ(stats.analytical_packets, 3u * 10u);
  EXPECT_EQ(stats.ptm_packets, 3u * 10u);
  EXPECT_DOUBLE_EQ(stats.analytical_fraction(), 0.5);
}

TEST(delay_provider, tiered_unprepared_slot_decides_statelessly) {
  des::delay_policy policy;
  policy.backend = des::delay_backend::tiered;
  policy.utilization_threshold = 0.5;
  policy.hysteresis = 0.1;
  policy.error_budget = 0;
  core::tiered_delay_provider provider{tiny_ptm(), policy};  // no prepare()

  probe pr{make_stream(5, 5e-6), 1e9, /*device=*/5};
  pr.state.utilization = 0.3;
  (void)provider.estimate_sojourn(pr.state, 5e-5);
  EXPECT_EQ(provider.stats().analytical_calls, 1u);
  pr.state.utilization = 0.7;
  (void)provider.estimate_sojourn(pr.state, 5e-5);
  EXPECT_EQ(provider.stats().ptm_calls, 1u);
  // Stateless fallback keeps no hysteresis memory: no transition counted.
  EXPECT_EQ(provider.stats().promotions, 0u);
}

TEST(delay_provider, tiered_error_budget_pins_device_to_ptm) {
  des::delay_policy policy;
  policy.backend = des::delay_backend::tiered;
  policy.utilization_threshold = 1e9;  // everything starts analytical
  policy.hysteresis = 0;
  policy.error_budget = 1e-9;  // no learned model clears this bar
  core::tiered_delay_provider provider{tiny_ptm(), policy};
  provider.prepare(4);

  probe pr{make_stream(10, 5e-6)};
  const auto first = provider.estimate_sojourn(pr.state, 5e-5);

  // The spot check ran both backends, failed the budget, and returned the
  // learned values; the device is pinned to the PTM permanently.
  EXPECT_EQ(provider.stats().budget_promotions, 1u);
  core::ptm_delay_provider learned{tiny_ptm()};
  const auto expected = learned.estimate_sojourn(pr.state, 5e-5);
  ASSERT_EQ(first.size(), expected.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_DOUBLE_EQ(first[i], expected[i]);

  pr.state.utilization = 0.0;  // far below threshold, but pinned wins
  (void)provider.estimate_sojourn(pr.state, 5e-5);
  EXPECT_EQ(provider.stats().ptm_calls, 2u);
  EXPECT_EQ(provider.stats().demotions, 0u);
}

TEST(delay_provider, tiered_error_budget_passes_with_generous_budget) {
  des::delay_policy policy;
  policy.backend = des::delay_backend::tiered;
  policy.utilization_threshold = 1e9;
  policy.hysteresis = 0;
  policy.error_budget = 1e9;  // any deviation is within budget
  core::tiered_delay_provider provider{tiny_ptm(), policy};
  provider.prepare(4);

  probe pr{make_stream(10, 5e-6)};
  const auto first = provider.estimate_sojourn(pr.state, 5e-5);
  EXPECT_EQ(provider.stats().budget_promotions, 0u);

  core::analytical_delay_provider analytical;
  const auto expected = analytical.estimate_sojourn(pr.state, 5e-5);
  ASSERT_EQ(first.size(), expected.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_DOUBLE_EQ(first[i], expected[i]);
  EXPECT_EQ(provider.stats().analytical_packets, 10u);
}

TEST(delay_provider, tiered_publish_emits_deltas_against_shared_sink) {
  des::delay_policy policy;
  policy.backend = des::delay_backend::tiered;
  policy.utilization_threshold = 1e9;
  policy.hysteresis = 0;
  policy.error_budget = 0;
  core::tiered_delay_provider provider{tiny_ptm(), policy};
  provider.prepare(4);

  probe pr{make_stream(10, 5e-6)};
  obs::sink sink;
  (void)provider.estimate_sojourn(pr.state, 5e-5);
  provider.publish(sink);
  (void)provider.estimate_sojourn(pr.state, 5e-5);
  provider.publish(sink);  // second publish must add only the delta

  EXPECT_DOUBLE_EQ(sink.metrics().counter("tiered.analytical_packets"), 20.0);
  EXPECT_DOUBLE_EQ(sink.metrics().counter("tiered.analytical_calls"), 2.0);
  EXPECT_DOUBLE_EQ(sink.metrics().gauge("tiered.analytical_fraction"), 1.0);
}

// ---------------------------------------------------------------------------
// Engine-level parity: the tiered policy extremes must reproduce the pure
// backends bit-for-bit, and run_request.delay must override per run only.
// ---------------------------------------------------------------------------

struct engine_scenario {
  topo::topology topo = topo::make_fattree16();
  topo::routing routes{topo};
  std::vector<traffic::packet_stream> streams;
  double horizon = 0.005;

  engine_scenario() {
    util::rng rng{11};
    auto flows = traffic::make_uniform_flows(16, 1, rng);
    traffic::tg_util_config tg;
    tg.per_flow_rate = 30'000.0;
    tg.seed = 11;
    auto generators = traffic::make_generators(flows, tg);
    streams = traffic::per_host_streams(generators, 16, horizon, rng);
  }

  [[nodiscard]] des::run_result run(const des::delay_policy& policy) const {
    core::engine_config cfg;
    cfg.partitions = 2;
    cfg.delay = policy;
    core::dqn_network net{topo, routes, tiny_ptm(), {}, cfg};
    return net.run(streams, horizon);
  }
};

void expect_identical_deliveries(const des::run_result& a,
                                 const des::run_result& b) {
  ASSERT_EQ(a.deliveries.size(), b.deliveries.size());
  for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
    EXPECT_EQ(a.deliveries[i].pid, b.deliveries[i].pid);
    EXPECT_DOUBLE_EQ(a.deliveries[i].delivery_time,
                     b.deliveries[i].delivery_time);
  }
}

TEST(delay_provider, tiered_threshold_zero_is_pure_ptm_through_engine) {
  const engine_scenario sc;
  const auto ptm_result =
      sc.run(des::delay_policy{}.with_backend(des::delay_backend::ptm));
  const auto tiered_result =
      sc.run(des::delay_policy{}
                 .with_backend(des::delay_backend::tiered)
                 .with_threshold(0)
                 .with_hysteresis(0));
  ASSERT_FALSE(ptm_result.deliveries.empty());
  expect_identical_deliveries(ptm_result, tiered_result);
}

TEST(delay_provider, tiered_huge_threshold_is_pure_analytical_through_engine) {
  const engine_scenario sc;
  const auto analytical_result =
      sc.run(des::delay_policy{}.with_backend(des::delay_backend::analytical));
  const auto tiered_result =
      sc.run(des::delay_policy{}
                 .with_backend(des::delay_backend::tiered)
                 .with_threshold(1e9)
                 .with_hysteresis(0)
                 .with_error_budget(0));
  ASSERT_FALSE(analytical_result.deliveries.empty());
  expect_identical_deliveries(analytical_result, tiered_result);
}

TEST(delay_provider, run_request_delay_override_lasts_one_run) {
  const engine_scenario sc;
  core::engine_config cfg;
  cfg.partitions = 2;
  core::dqn_network net{sc.topo, sc.routes, tiny_ptm(), {}, cfg};
  EXPECT_STREQ(net.provider().name(), "ptm");

  des::run_request request;
  request.host_streams = &sc.streams;
  request.horizon = sc.horizon;
  request.delay =
      des::delay_policy{}.with_backend(des::delay_backend::analytical);
  const auto overridden = net.run(request);
  const auto analytical_result =
      sc.run(des::delay_policy{}.with_backend(des::delay_backend::analytical));
  expect_identical_deliveries(overridden, analytical_result);

  // The override does not stick: the configured provider is restored.
  EXPECT_STREQ(net.provider().name(), "ptm");
  request.delay.reset();
  const auto plain = net.run(request);
  const auto ptm_result =
      sc.run(des::delay_policy{}.with_backend(des::delay_backend::ptm));
  expect_identical_deliveries(plain, ptm_result);
}

// ---------------------------------------------------------------------------
// String-keyed estimator factory (des/estimator_factory.hpp).
// ---------------------------------------------------------------------------

TEST(estimator_factory, creates_every_advertised_estimator) {
  const engine_scenario sc;
  des::estimator_context context;
  context.topo = &sc.topo;
  context.routes = &sc.routes;
  context.ptm = tiny_ptm();

  util::rng rng{11};
  const auto flows = traffic::make_uniform_flows(16, 1, rng);
  const std::vector<double> rates(flows.size(), 30'000.0);
  context.flows = &flows;
  context.flow_rates_pps = &rates;
  context.mean_packet_size = 1000.0;

  for (const auto& name : des::estimator_names()) {
    const auto estimator = des::make_estimator(name, context);
    ASSERT_NE(estimator, nullptr) << name;
    EXPECT_EQ(estimator->estimator_name(), name);
  }
  // The alias resolves to the engine.
  EXPECT_STREQ(des::make_estimator("dqn", context)->estimator_name(),
               "deepqueuenet");
}

TEST(estimator_factory, rejects_unknown_and_untrained_names) {
  const engine_scenario sc;
  des::estimator_context context;
  context.topo = &sc.topo;
  context.routes = &sc.routes;
  context.ptm = tiny_ptm();

  EXPECT_THROW((void)des::make_estimator("quantum", context),
               std::invalid_argument);
  EXPECT_THROW((void)des::make_estimator("routenet", context),
               std::invalid_argument);
  EXPECT_THROW((void)des::make_estimator("mimicnet", context),
               std::invalid_argument);

  // Missing requirements are named loudly rather than dereferenced.
  des::estimator_context incomplete;
  incomplete.topo = &sc.topo;
  incomplete.routes = &sc.routes;
  EXPECT_THROW((void)des::make_estimator("deepqueuenet", incomplete),
               std::invalid_argument);
}

}  // namespace
