#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "des/single_device.hpp"
#include "queueing/ldqbd.hpp"
#include "queueing/markovian_arrival.hpp"
#include "traffic/packet.hpp"
#include "util/rng.hpp"

namespace {

using namespace dqn::queueing;

TEST(ldqbd, mm1_special_case_matches_closed_form) {
  // K = 1 class, Poisson arrivals: the LDQBD is a truncated M/M/1 whose
  // stationary queue-length law is geometric: P(L = n) = (1-rho) rho^n.
  const double lambda = 6.0, mu = 10.0, rho = lambda / mu;
  scheduler_model_config cfg;
  cfg.class_probs = {1.0};
  cfg.service_rate = mu;
  cfg.discipline = scheduler_discipline::wfq;
  cfg.weights = {1.0};
  cfg.truncation_level = 60;  // truncation error ~ rho^60, negligible
  ldqbd_scheduler_model model{map_process::poisson(lambda), cfg};
  model.solve();
  const auto dist = model.level_distribution();
  for (std::size_t n = 0; n < 10; ++n)
    EXPECT_NEAR(dist[n], (1 - rho) * std::pow(rho, double(n)), 1e-6)
        << "queue length " << n;
  EXPECT_NEAR(model.mean_queue_length(0), rho / (1 - rho), 1e-3);
}

TEST(ldqbd, mean_sojourn_satisfies_littles_law_mm1) {
  const double lambda = 4.0, mu = 10.0;
  scheduler_model_config cfg;
  cfg.class_probs = {1.0};
  cfg.service_rate = mu;
  cfg.discipline = scheduler_discipline::wfq;
  cfg.weights = {1.0};
  cfg.truncation_level = 60;
  ldqbd_scheduler_model model{map_process::poisson(lambda), cfg};
  model.solve();
  // M/M/1 sojourn: 1/(mu - lambda).
  EXPECT_NEAR(model.mean_sojourn(0), 1.0 / (mu - lambda), 1e-3);
}

TEST(ldqbd, distributions_sum_to_one) {
  scheduler_model_config cfg;
  cfg.class_probs = {0.3, 0.7};
  cfg.service_rate = 12.0;
  cfg.discipline = scheduler_discipline::sp;
  cfg.truncation_level = 25;
  ldqbd_scheduler_model model{map_process::mmpp2(0.5, 0.8, 9.0, 3.0), cfg};
  model.solve();
  double level_total = 0;
  for (double p : model.level_distribution()) {
    EXPECT_GE(p, -1e-12);
    level_total += p;
  }
  EXPECT_NEAR(level_total, 1.0, 1e-9);
  for (std::size_t k = 0; k < 2; ++k) {
    double class_total = 0;
    for (double p : model.class_queue_length_distribution(k)) class_total += p;
    EXPECT_NEAR(class_total, 1.0, 1e-9);
  }
}

TEST(ldqbd, sp_starves_low_priority) {
  // Under SP the high-priority class sees an M/M/1-like queue while the low
  // priority class queues behind it: E[n_low] > E[n_high].
  scheduler_model_config cfg;
  cfg.class_probs = {0.5, 0.5};
  cfg.service_rate = 10.0;
  cfg.discipline = scheduler_discipline::sp;
  cfg.truncation_level = 30;
  ldqbd_scheduler_model model{map_process::poisson(7.0), cfg};
  model.solve();
  EXPECT_GT(model.mean_queue_length(1), model.mean_queue_length(0));
}

TEST(ldqbd, wfq_weights_shift_queue_mass) {
  scheduler_model_config cfg;
  cfg.class_probs = {0.5, 0.5};
  cfg.service_rate = 10.0;
  cfg.discipline = scheduler_discipline::wfq;
  cfg.weights = {9.0, 1.0};
  cfg.truncation_level = 30;
  ldqbd_scheduler_model model{map_process::poisson(7.0), cfg};
  model.solve();
  // The heavily-weighted class is served faster when both are backlogged.
  EXPECT_LT(model.mean_queue_length(0), model.mean_queue_length(1));
}

TEST(ldqbd, equal_weights_equal_classes_are_symmetric) {
  scheduler_model_config cfg;
  cfg.class_probs = {0.5, 0.5};
  cfg.service_rate = 10.0;
  cfg.discipline = scheduler_discipline::wfq;
  cfg.weights = {1.0, 1.0};
  cfg.truncation_level = 25;
  ldqbd_scheduler_model model{map_process::poisson(6.0), cfg};
  model.solve();
  EXPECT_NEAR(model.mean_queue_length(0), model.mean_queue_length(1), 1e-6);
}

TEST(ldqbd, state_count_grows_binomially) {
  auto count_for = [](std::size_t classes) {
    scheduler_model_config cfg;
    cfg.class_probs.assign(classes, 1.0 / double(classes));
    cfg.service_rate = 10.0;
    cfg.discipline = scheduler_discipline::sp;
    cfg.truncation_level = 10;
    ldqbd_scheduler_model model{map_process::poisson(5.0), cfg};
    return model.state_count();
  };
  // d_l = M * C(l + K - 1, K - 1): total for L=10, M=1-state Poisson.
  EXPECT_EQ(count_for(1), 11u);
  EXPECT_EQ(count_for(2), 66u);   // sum_{l=0..10} (l+1)
  EXPECT_EQ(count_for(3), 286u);  // sum C(l+2,2)
}

TEST(ldqbd, service_share_definitions) {
  scheduler_model_config cfg;
  cfg.class_probs = {0.5, 0.5};
  cfg.service_rate = 10.0;
  cfg.discipline = scheduler_discipline::wfq;
  cfg.weights = {3.0, 1.0};
  cfg.truncation_level = 5;
  ldqbd_scheduler_model model{map_process::poisson(1.0), cfg};
  const std::vector<std::size_t> both{2, 3};
  EXPECT_NEAR(model.service_share(both, 0), 7.5, 1e-12);
  EXPECT_NEAR(model.service_share(both, 1), 2.5, 1e-12);
  const std::vector<std::size_t> only_second{0, 3};
  EXPECT_NEAR(model.service_share(only_second, 0), 0.0, 1e-12);
  EXPECT_NEAR(model.service_share(only_second, 1), 10.0, 1e-12);  // work conserving
}

TEST(ldqbd, sp_service_share) {
  scheduler_model_config cfg;
  cfg.class_probs = {0.5, 0.5};
  cfg.service_rate = 8.0;
  cfg.discipline = scheduler_discipline::sp;
  cfg.truncation_level = 5;
  ldqbd_scheduler_model model{map_process::poisson(1.0), cfg};
  const std::vector<std::size_t> both{1, 1};
  EXPECT_NEAR(model.service_share(both, 0), 8.0, 1e-12);
  EXPECT_NEAR(model.service_share(both, 1), 0.0, 1e-12);
}

TEST(ldqbd, rejects_invalid_configs) {
  scheduler_model_config cfg;
  cfg.class_probs = {0.6, 0.6};  // sums to 1.2
  cfg.service_rate = 10.0;
  cfg.discipline = scheduler_discipline::sp;
  EXPECT_THROW(
      (ldqbd_scheduler_model{map_process::poisson(1.0), cfg}),
      std::invalid_argument);
  cfg.class_probs = {1.0};
  cfg.service_rate = 0.0;
  EXPECT_THROW(
      (ldqbd_scheduler_model{map_process::poisson(1.0), cfg}),
      std::invalid_argument);
}

TEST(ldqbd, query_before_solve_throws) {
  scheduler_model_config cfg;
  cfg.class_probs = {1.0};
  cfg.service_rate = 10.0;
  cfg.discipline = scheduler_discipline::sp;
  ldqbd_scheduler_model model{map_process::poisson(1.0), cfg};
  EXPECT_THROW((void)model.level_distribution(), std::logic_error);
}

// Cross-validation against the DES (a compact version of Figure 14).
TEST(ldqbd, matches_des_queue_length_distribution_under_sp) {
  // 2-class SP, Poisson aggregate. The model assumes exponential service, so
  // the DES draws exponentially-sized packets (mean 125 B) over a link whose
  // rate serves mu packets/s at the mean size.
  const double mu = 10'000.0;  // packets/s service rate
  const double lambda = 5'000.0;
  const double mean_packet_bytes = 125.0;
  scheduler_model_config cfg;
  cfg.class_probs = {0.5, 0.5};
  cfg.service_rate = mu;
  cfg.discipline = scheduler_discipline::sp;
  cfg.truncation_level = 40;
  ldqbd_scheduler_model model{map_process::poisson(lambda), cfg};
  model.solve();

  // DES: one egress queue, SP with 2 classes.
  dqn::util::rng rng{99};
  dqn::traffic::packet_stream stream;
  double t = 0;
  std::uint64_t pid = 0;
  while (t < 40.0) {
    t += rng.exponential(lambda);
    dqn::traffic::packet p;
    p.pid = pid++;
    p.flow_id = static_cast<std::uint32_t>(pid % 7);
    p.size_bytes = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               std::lround(rng.exponential(1.0 / mean_packet_bytes))));
    p.priority = rng.bernoulli(0.5) ? 0 : 1;
    stream.push_back({p, t});
  }
  dqn::des::single_switch_config sw;
  sw.ports = 1;
  sw.tm.kind = dqn::des::scheduler_kind::sp;
  sw.tm.classes = 2;
  sw.bandwidth_bps = mean_packet_bytes * 8.0 * mu;
  auto result = dqn::des::run_single_switch(
      sw, {stream}, [](std::uint32_t, std::size_t) { return 0u; }, 40.0,
      /*sample_queues=*/true);

  // Empirical P(total queue <= n) at arrival epochs (PASTA) vs the model.
  std::vector<double> empirical(cfg.truncation_level + 1, 0.0);
  for (const auto& sample : result.queue_samples) {
    // Waiting counts per class plus the in-service packet (encoded as
    // class+1 in the final entry).
    std::size_t total = sample.back() > 0 ? 1 : 0;
    for (std::size_t k = 0; k + 1 < sample.size(); ++k) total += sample[k];
    if (total <= cfg.truncation_level) empirical[total] += 1.0;
  }
  const double n_samples = static_cast<double>(result.queue_samples.size());
  for (auto& p : empirical) p /= n_samples;
  const auto theoretical = model.level_distribution();
  double cum_emp = 0, cum_theory = 0;
  for (std::size_t n = 0; n <= 10; ++n) {
    cum_emp += empirical[n];
    cum_theory += theoretical[n];
    EXPECT_NEAR(cum_emp, cum_theory, 0.06) << "CDF at queue length " << n;
  }
}

}  // namespace
