// Further engine coverage: host-NIC modeling, iteration controls, hop
// recording, and SEC's effect at the network level. Shares one tiny trained
// model across the binary.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>

#include "core/dutil.hpp"
#include "core/engine.hpp"
#include "des/network.hpp"
#include "topo/builders.hpp"
#include "topo/routing.hpp"
#include "traffic/traffic_gen.hpp"
#include "util/rng.hpp"

namespace {

using namespace dqn;

std::shared_ptr<const core::ptm_model> shared_ptm() {
  static const core::device_model_bundle bundle = [] {
    core::dutil_config cfg;
    cfg.ports = 4;
    cfg.streams = 30;
    cfg.packets_per_stream = 600;
    cfg.ptm.time_steps = 8;
    cfg.ptm.mlp_hidden = {48, 24};
    cfg.ptm.epochs = 10;
    cfg.seed = 99;
    return core::train_device_model(cfg);
  }();
  return std::shared_ptr<const core::ptm_model>{&bundle.model,
                                                [](const core::ptm_model*) {}};
}

std::vector<traffic::packet_stream> make_streams(std::size_t hosts, double rate,
                                                 double horizon,
                                                 std::uint64_t seed) {
  util::rng rng{seed};
  auto flows = traffic::make_uniform_flows(hosts, 1, rng);
  traffic::tg_util_config tg;
  tg.per_flow_rate = rate;
  tg.seed = seed;
  auto generators = traffic::make_generators(flows, tg);
  return traffic::per_host_streams(generators, hosts, horizon, rng);
}

TEST(engine_extra, host_nic_modeling_adds_nonnegative_delay) {
  const auto topo = topo::make_line(3);
  const topo::routing routes{topo};
  const auto streams = make_streams(3, 50'000.0, 0.02, 1);
  core::engine_config with_nic;
  with_nic.model_host_nics = true;
  core::engine_config without_nic;
  without_nic.model_host_nics = false;
  core::dqn_network net_with{topo, routes, shared_ptm(), {}, with_nic};
  core::dqn_network net_without{topo, routes, shared_ptm(), {}, without_nic};
  const auto r_with = net_with.run(streams, 0.02);
  const auto r_without = net_without.run(streams, 0.02);
  ASSERT_EQ(r_with.deliveries.size(), r_without.deliveries.size());
  double sum_with = 0, sum_without = 0;
  for (const auto& d : r_with.deliveries) sum_with += d.latency();
  for (const auto& d : r_without.deliveries) sum_without += d.latency();
  EXPECT_GE(sum_with, sum_without);
}

TEST(engine_extra, max_iterations_override_caps_irsa) {
  const auto topo = topo::make_fattree16();
  const topo::routing routes{topo};
  core::engine_config cfg;
  cfg.max_iterations = 2;
  core::dqn_network net{topo, routes, shared_ptm(), {}, cfg};
  const auto streams = make_streams(16, 20'000.0, 0.005, 2);
  (void)net.run(streams, 0.005);
  EXPECT_LE(net.stats().iterations, 2u);
}

TEST(engine_extra, hop_records_match_deliveries_paths) {
  const auto topo = topo::make_line(4);
  const topo::routing routes{topo};
  core::engine_config cfg;
  cfg.record_hops = true;
  core::dqn_network net{topo, routes, shared_ptm(), {}, cfg};
  const auto streams = make_streams(4, 20'000.0, 0.01, 3);
  const auto result = net.run(streams, 0.01);
  ASSERT_GT(result.deliveries.size(), 0u);
  // Each delivered packet appears in exactly path_length-2 hop records
  // (one per switch; hosts are not devices).
  std::map<std::uint64_t, std::size_t> hop_counts;
  for (const auto& h : result.hops) ++hop_counts[h.pid];
  for (const auto& d : result.deliveries) {
    const auto path = routes.flow_path(d.src, d.dst, d.flow_id);
    EXPECT_EQ(hop_counts[d.pid], path.size() - 2) << "pid " << d.pid;
  }
}

TEST(engine_extra, sec_toggle_preserves_conservation) {
  // SEC corrections are significance-gated (sec.cpp): for a well-calibrated
  // model they may legitimately be a no-op, but toggling SEC must never
  // change which packets are delivered — only (possibly) their timing.
  const auto topo = topo::make_line(3);
  const topo::routing routes{topo};
  const auto streams = make_streams(3, 80'000.0, 0.02, 4);
  core::engine_config on;
  core::engine_config off;
  off.apply_sec = false;
  core::dqn_network net_on{topo, routes, shared_ptm(), {}, on};
  core::dqn_network net_off{topo, routes, shared_ptm(), {}, off};
  const auto r_on = net_on.run(streams, 0.02);
  const auto r_off = net_off.run(streams, 0.02);
  ASSERT_EQ(r_on.deliveries.size(), r_off.deliveries.size());
  std::set<std::uint64_t> pids_on, pids_off;
  for (const auto& d : r_on.deliveries) pids_on.insert(d.pid);
  for (const auto& d : r_off.deliveries) pids_off.insert(d.pid);
  EXPECT_EQ(pids_on, pids_off);
}

TEST(engine_extra, deterministic_across_runs) {
  const auto topo = topo::make_torus2d(2, 2);
  const topo::routing routes{topo};
  const auto streams = make_streams(4, 30'000.0, 0.01, 5);
  core::dqn_network net1{topo, routes, shared_ptm(), {}, {}};
  core::dqn_network net2{topo, routes, shared_ptm(), {}, {}};
  const auto r1 = net1.run(streams, 0.01);
  const auto r2 = net2.run(streams, 0.01);
  ASSERT_EQ(r1.deliveries.size(), r2.deliveries.size());
  for (std::size_t i = 0; i < r1.deliveries.size(); ++i) {
    EXPECT_EQ(r1.deliveries[i].pid, r2.deliveries[i].pid);
    EXPECT_DOUBLE_EQ(r1.deliveries[i].delivery_time, r2.deliveries[i].delivery_time);
  }
}

TEST(engine_extra, works_on_every_evaluation_topology) {
  for (auto build : {+[] { return topo::make_line(4); },
                     +[] { return topo::make_torus2d(4, 4); },
                     +[] { return topo::make_abilene(); },
                     +[] { return topo::make_geant(); },
                     +[] { return topo::make_fattree16(); }}) {
    const auto topo = build();
    const topo::routing routes{topo};
    core::dqn_network net{topo, routes, shared_ptm(), {}, {}};
    const auto streams = make_streams(topo.hosts().size(), 10'000.0, 0.004, 6);
    std::size_t injected = 0;
    for (const auto& s : streams) injected += s.size();
    const auto result = net.run(streams, 0.004);
    EXPECT_EQ(result.deliveries.size(), injected);
    EXPECT_LE(net.stats().iterations, 1 + topo.diameter());
  }
}

TEST(engine_extra, zero_traffic_is_handled) {
  const auto topo = topo::make_line(2);
  const topo::routing routes{topo};
  core::dqn_network net{topo, routes, shared_ptm(), {}, {}};
  const auto result = net.run(std::vector<traffic::packet_stream>(2), 1.0);
  EXPECT_TRUE(result.deliveries.empty());
}

}  // namespace
