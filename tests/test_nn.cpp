#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nn/adam.hpp"
#include "nn/attention.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"
#include "nn/scaler.hpp"
#include "nn/seq.hpp"
#include "nn/seq_regressor.hpp"
#include "util/rng.hpp"
#include "util/check.hpp"

namespace {

using namespace dqn::nn;
using dqn::util::rng;

TEST(matrix, matmul_known_values) {
  matrix a{2, 3, {1, 2, 3, 4, 5, 6}};
  matrix b{3, 2, {7, 8, 9, 10, 11, 12}};
  const matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(matrix, matmul_tn_equals_transpose_then_matmul) {
  rng r{1};
  const matrix a = matrix::randn(4, 3, r, 1.0);
  const matrix b = matrix::randn(4, 5, r, 1.0);
  const matrix direct = matmul_tn(a, b);
  const matrix reference = matmul(transpose(a), b);
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_NEAR(direct.data()[i], reference.data()[i], 1e-12);
}

TEST(matrix, matmul_nt_equals_matmul_with_transpose) {
  rng r{2};
  const matrix a = matrix::randn(3, 4, r, 1.0);
  const matrix b = matrix::randn(5, 4, r, 1.0);
  const matrix direct = matmul_nt(a, b);
  const matrix reference = matmul(a, transpose(b));
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_NEAR(direct.data()[i], reference.data()[i], 1e-12);
}

TEST(matrix, shape_mismatch_throws) {
  matrix a{2, 3};
  matrix b{2, 3};
  if (!dqn::util::contracts_enabled)
    GTEST_SKIP() << "DQN_CHECK compiled out in this build";
  EXPECT_THROW((void)matmul(a, b), dqn::util::contract_violation);
  EXPECT_THROW(add_inplace(a, matrix{3, 2}), dqn::util::contract_violation);
}

TEST(matrix, save_load_roundtrip) {
  rng r{3};
  const matrix m = matrix::randn(4, 7, r, 2.0);
  std::stringstream buffer;
  save_matrix(buffer, m);
  const matrix loaded = load_matrix(buffer);
  ASSERT_EQ(loaded.rows(), m.rows());
  ASSERT_EQ(loaded.cols(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i)
    EXPECT_DOUBLE_EQ(loaded.data()[i], m.data()[i]);
}

TEST(seq_batch, slices_and_samples_are_views_of_same_data) {
  seq_batch x{2, 3, 4};
  x.at(1, 2, 3) = 42.0;
  EXPECT_DOUBLE_EQ(x.time_slice(2)(1, 3), 42.0);
  EXPECT_DOUBLE_EQ(x.sample(1)(2, 3), 42.0);
}

// --- Gradient checking ----------------------------------------------------
//
// Loss = 0.5 * sum(output^2); analytic grads via backward(output), numeric
// via central differences on every parameter.

template <typename Forward, typename Backward>
void check_gradients(param_list& params, Forward&& forward, Backward&& backward,
                     double tolerance = 1e-6) {
  // Analytic pass.
  zero_grads(params);
  backward();
  std::vector<std::vector<double>> analytic;
  for (auto& p : params)
    analytic.emplace_back(p.grad->begin(), p.grad->end());

  const double eps = 1e-5;
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    auto& value = *params[pi].value;
    for (std::size_t j = 0; j < value.size(); ++j) {
      const double original = value[j];
      value[j] = original + eps;
      const double up = forward();
      value[j] = original - eps;
      const double down = forward();
      value[j] = original;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(analytic[pi][j], numeric, tolerance)
          << "param block " << pi << " index " << j;
    }
  }
}

double half_sum_squares(const matrix& y) {
  double loss = 0;
  for (double v : y.data()) loss += 0.5 * v * v;
  return loss;
}

double half_sum_squares(const seq_batch& y) {
  double loss = 0;
  for (double v : y.data()) loss += 0.5 * v * v;
  return loss;
}

TEST(gradients, dense_layer) {
  rng r{10};
  dense layer{3, 2, activation::tanh, r};
  const matrix x = matrix::randn(4, 3, r, 1.0);
  param_list params;
  layer.collect_params(params);
  auto forward = [&] { return half_sum_squares(layer.forward(x)); };
  auto backward = [&] {
    const matrix y = layer.forward(x);
    (void)layer.backward(y);  // dL/dy = y for 0.5*sum(y^2)
  };
  check_gradients(params, forward, backward);
}

TEST(gradients, dense_input_gradient) {
  rng r{11};
  dense layer{3, 2, activation::sigmoid, r};
  matrix x = matrix::randn(2, 3, r, 1.0);
  const matrix y0 = layer.forward(x);
  const matrix grad_x = layer.backward(y0);
  const double eps = 1e-5;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double original = x.data()[i];
    x.data()[i] = original + eps;
    const double up = half_sum_squares(layer.forward(x));
    x.data()[i] = original - eps;
    const double down = half_sum_squares(layer.forward(x));
    x.data()[i] = original;
    EXPECT_NEAR(grad_x.data()[i], (up - down) / (2 * eps), 1e-6);
  }
}

TEST(gradients, lstm_layer) {
  rng r{12};
  lstm layer{3, 4, /*reverse=*/false, r};
  seq_batch x{2, 5, 3};
  for (auto& v : x.data()) v = r.normal(0, 1);
  param_list params;
  layer.collect_params(params);
  auto forward = [&] { return half_sum_squares(layer.forward(x)); };
  auto backward = [&] {
    const seq_batch y = layer.forward(x);
    (void)layer.backward(y);
  };
  check_gradients(params, forward, backward, 1e-5);
}

TEST(gradients, lstm_reverse_direction) {
  rng r{13};
  lstm layer{2, 3, /*reverse=*/true, r};
  seq_batch x{1, 4, 2};
  for (auto& v : x.data()) v = r.normal(0, 1);
  param_list params;
  layer.collect_params(params);
  auto forward = [&] { return half_sum_squares(layer.forward(x)); };
  auto backward = [&] {
    const seq_batch y = layer.forward(x);
    (void)layer.backward(y);
  };
  check_gradients(params, forward, backward, 1e-5);
}

TEST(gradients, bilstm_layer) {
  rng r{14};
  bilstm layer{3, 3, r};
  seq_batch x{2, 4, 3};
  for (auto& v : x.data()) v = r.normal(0, 1);
  param_list params;
  layer.collect_params(params);
  auto forward = [&] { return half_sum_squares(layer.forward(x)); };
  auto backward = [&] {
    const seq_batch y = layer.forward(x);
    (void)layer.backward(y);
  };
  check_gradients(params, forward, backward, 1e-5);
}

TEST(gradients, multi_head_attention) {
  rng r{15};
  attention_config cfg;
  cfg.model_dim = 4;
  cfg.heads = 2;
  cfg.key_dim = 3;
  cfg.value_dim = 3;
  cfg.out_dim = 4;
  multi_head_attention layer{cfg, r};
  seq_batch x{2, 5, 4};
  for (auto& v : x.data()) v = r.normal(0, 1);
  param_list params;
  layer.collect_params(params);
  auto forward = [&] { return half_sum_squares(layer.forward(x)); };
  auto backward = [&] {
    const seq_batch y = layer.forward(x);
    (void)layer.backward(y);
  };
  check_gradients(params, forward, backward, 1e-5);
}

TEST(gradients, attention_input_gradient) {
  rng r{16};
  attention_config cfg;
  cfg.model_dim = 3;
  cfg.heads = 1;
  cfg.key_dim = 2;
  cfg.value_dim = 2;
  cfg.out_dim = 3;
  multi_head_attention layer{cfg, r};
  seq_batch x{1, 4, 3};
  for (auto& v : x.data()) v = r.normal(0, 1);
  const seq_batch y0 = layer.forward(x);
  const seq_batch grad_x = layer.backward(y0);
  const double eps = 1e-5;
  for (std::size_t i = 0; i < x.data().size(); ++i) {
    const double original = x.data()[i];
    x.data()[i] = original + eps;
    const double up = half_sum_squares(layer.forward(x));
    x.data()[i] = original - eps;
    const double down = half_sum_squares(layer.forward(x));
    x.data()[i] = original;
    EXPECT_NEAR(grad_x.data()[i], (up - down) / (2 * eps), 1e-6);
  }
}

TEST(gradients, seq_regressor_mse) {
  rng r{17};
  seq_regressor_config cfg;
  cfg.input_dim = 3;
  cfg.lstm_hidden = {3};
  cfg.heads = 2;
  cfg.key_dim = 2;
  cfg.value_dim = 2;
  cfg.attention_out = 4;
  cfg.head_hidden = 4;
  seq_regressor model{cfg, r};
  seq_batch x{3, 4, 3};
  for (auto& v : x.data()) v = r.normal(0, 1);
  matrix targets{3, 1};
  for (auto& v : targets.data()) v = r.normal(0, 1);
  param_list params;
  model.collect_params(params);
  auto forward = [&] {
    const matrix pred = model.forward_const(x);
    double loss = 0;
    for (std::size_t i = 0; i < pred.rows(); ++i) {
      const double diff = pred(i, 0) - targets(i, 0);
      loss += diff * diff;
    }
    return loss / static_cast<double>(pred.rows());
  };
  auto backward = [&] {
    const matrix pred = model.forward(x);
    (void)model.backward_mse(pred, targets);
  };
  check_gradients(params, forward, backward, 1e-5);
}

// --- Forward consistency and training ------------------------------------

TEST(forward_const, matches_training_forward) {
  rng r{18};
  seq_regressor_config cfg;
  cfg.input_dim = 4;
  cfg.lstm_hidden = {4, 3};
  seq_regressor model{cfg, r};
  seq_batch x{2, 6, 4};
  for (auto& v : x.data()) v = r.normal(0, 1);
  const matrix a = model.forward(x);
  const matrix b = model.forward_const(x);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
}

TEST(adam, minimizes_quadratic) {
  // Minimize (w - 3)^2 elementwise.
  aligned_vector w(8, 0.0);
  aligned_vector g(8, 0.0);
  param_list params{{&w, &g}};
  adam_config cfg;
  cfg.learning_rate = 0.05;
  adam opt{params, cfg};
  for (int step = 0; step < 500; ++step) {
    for (std::size_t i = 0; i < w.size(); ++i) g[i] = 2 * (w[i] - 3.0);
    opt.step();
  }
  for (double v : w) EXPECT_NEAR(v, 3.0, 1e-3);
}

TEST(adam, grad_clip_bounds_update) {
  aligned_vector w{0.0};
  aligned_vector g{1e9};
  adam_config cfg;
  cfg.grad_clip = 1.0;
  cfg.learning_rate = 0.1;
  adam opt{{{&w, &g}}, cfg};
  opt.step();
  EXPECT_LT(std::abs(w[0]), 1.0);
}

TEST(mlp, learns_xor_like_function) {
  rng r{19};
  mlp net{{2, 8, 1}, activation::tanh, r};
  matrix x{4, 2, {0, 0, 0, 1, 1, 0, 1, 1}};
  matrix y{4, 1, {0, 1, 1, 0}};
  param_list params;
  net.collect_params(params);
  adam opt{params, {.learning_rate = 0.02}};
  for (int step = 0; step < 3000; ++step) {
    const matrix pred = net.forward(x);
    matrix grad{4, 1};
    for (std::size_t i = 0; i < 4; ++i) grad(i, 0) = 2 * (pred(i, 0) - y(i, 0)) / 4;
    (void)net.backward(grad);
    opt.step();
  }
  const matrix pred = net.forward_const(x);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(pred(i, 0), y(i, 0), 0.1);
}

TEST(seq_regressor, learns_sum_of_last_inputs) {
  // Target = sum of feature 0 over the last 2 time steps: needs temporal
  // context, exercises the full stack end-to-end.
  rng r{20};
  seq_regressor_config cfg;
  cfg.input_dim = 2;
  cfg.lstm_hidden = {8};
  cfg.heads = 2;
  cfg.key_dim = 4;
  cfg.value_dim = 4;
  cfg.attention_out = 8;
  cfg.head_hidden = 8;
  seq_regressor model{cfg, r};
  param_list params;
  model.collect_params(params);
  adam opt{params, {.learning_rate = 5e-3}};

  const std::size_t batch = 32, time = 5;
  double final_loss = 1e9;
  for (int step = 0; step < 400; ++step) {
    seq_batch x{batch, time, 2};
    matrix y{batch, 1};
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t t = 0; t < time; ++t) {
        x.at(b, t, 0) = r.uniform(-1, 1);
        x.at(b, t, 1) = r.uniform(-1, 1);
      }
      y(b, 0) = x.at(b, time - 1, 0) + x.at(b, time - 2, 0);
    }
    const matrix pred = model.forward(x);
    final_loss = model.backward_mse(pred, y);
    opt.step();
  }
  EXPECT_LT(final_loss, 0.05);
}

// --- Scalers --------------------------------------------------------------

TEST(min_max_scaler, scales_to_unit_interval) {
  min_max_scaler scaler;
  const std::vector<double> rows{0, 10, 5, 20, 10, 15};  // 3 rows x 2 features
  scaler.fit(rows, 2);
  EXPECT_DOUBLE_EQ(scaler.transform_one(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaler.transform_one(0, 10), 1.0);
  EXPECT_DOUBLE_EQ(scaler.transform_one(1, 15), 0.5);
  EXPECT_DOUBLE_EQ(scaler.inverse_one(1, 0.5), 15.0);
}

TEST(min_max_scaler, constant_feature_maps_to_zero) {
  min_max_scaler scaler;
  const std::vector<double> rows{5, 5, 5};
  scaler.fit(rows, 1);
  EXPECT_DOUBLE_EQ(scaler.transform_one(0, 5), 0.0);
}

TEST(min_max_scaler, save_load_roundtrip) {
  min_max_scaler scaler;
  const std::vector<double> rows{0, 1, 2, 3};
  scaler.fit(rows, 2);
  std::stringstream buffer;
  scaler.save(buffer);
  min_max_scaler loaded;
  loaded.load(buffer);
  EXPECT_DOUBLE_EQ(loaded.transform_one(0, 1), scaler.transform_one(0, 1));
}

TEST(target_scaler, roundtrip) {
  target_scaler scaler;
  const std::vector<double> ys{2, 4, 10};
  scaler.fit(ys);
  EXPECT_DOUBLE_EQ(scaler.transform(2), 0.0);
  EXPECT_DOUBLE_EQ(scaler.transform(10), 1.0);
  EXPECT_DOUBLE_EQ(scaler.inverse(scaler.transform(7.0)), 7.0);
}

TEST(serialization, seq_regressor_roundtrip_preserves_outputs) {
  rng r{21};
  seq_regressor_config cfg;
  cfg.input_dim = 3;
  cfg.lstm_hidden = {4, 3};
  seq_regressor model{cfg, r};
  seq_batch x{2, 5, 3};
  for (auto& v : x.data()) v = r.normal(0, 1);
  const matrix before = model.forward_const(x);

  std::stringstream buffer;
  model.save(buffer);
  seq_regressor loaded;
  loaded.load(buffer);
  const matrix after = loaded.forward_const(x);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_DOUBLE_EQ(before.data()[i], after.data()[i]);
}

TEST(serialization, mlp_roundtrip_preserves_outputs) {
  rng r{22};
  mlp net{{3, 5, 2}, activation::relu, r};
  const matrix x = matrix::randn(4, 3, r, 1.0);
  const matrix before = net.forward_const(x);
  std::stringstream buffer;
  net.save(buffer);
  mlp loaded;
  loaded.load(buffer);
  const matrix after = loaded.forward_const(x);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_DOUBLE_EQ(before.data()[i], after.data()[i]);
}

}  // namespace
