#include <gtest/gtest.h>

#include <numeric>

#include "queueing/map_fit.hpp"
#include "traffic/arrivals.hpp"
#include "traffic/packet.hpp"
#include "traffic/packet_size.hpp"
#include "traffic/synthetic_traces.hpp"
#include "traffic/traffic_gen.hpp"
#include "util/rng.hpp"

namespace {

using namespace dqn::traffic;
using dqn::util::rng;

double empirical_rate(arrival_process& process, rng& r, int n) {
  double total = 0;
  for (int i = 0; i < n; ++i) total += process.next_interarrival(r);
  return n / total;
}

TEST(arrivals, poisson_hits_target_rate) {
  rng r{1};
  poisson_arrivals p{250.0};
  EXPECT_NEAR(empirical_rate(p, r, 100'000), 250.0, 5.0);
  EXPECT_DOUBLE_EQ(p.mean_rate(), 250.0);
}

TEST(arrivals, poisson_rejects_bad_rate) {
  EXPECT_THROW(poisson_arrivals{0.0}, std::invalid_argument);
}

TEST(arrivals, onoff_long_run_rate_matches_stationary_occupancy) {
  // P(on) = 0.5 / 0.7; one packet per on-slot.
  rng r{2};
  onoff_arrivals a{0.001};
  EXPECT_NEAR(a.mean_rate(), (0.5 / 0.7) / 0.001, 1e-9);
  EXPECT_NEAR(empirical_rate(a, r, 100'000), a.mean_rate(),
              0.02 * a.mean_rate());
}

TEST(arrivals, onoff_interarrivals_are_slot_multiples) {
  rng r{3};
  onoff_arrivals a{0.5};
  for (int i = 0; i < 1000; ++i) {
    const double iat = a.next_interarrival(r);
    const double slots = iat / 0.5;
    EXPECT_NEAR(slots, std::round(slots), 1e-9);
    EXPECT_GE(slots, 1.0);
  }
}

TEST(arrivals, map_rate_matches_process) {
  rng r{4};
  auto process = dqn::queueing::map_process::paper_example();
  map_arrivals a{process, r};
  EXPECT_NEAR(a.mean_rate(), 4800.0, 1.0);
  EXPECT_NEAR(empirical_rate(a, r, 200'000), 4800.0, 100.0);
}

TEST(arrivals, trace_replay_loops_and_reports_rate) {
  rng r{5};
  trace_arrivals a{{0.1, 0.2, 0.3}};
  EXPECT_NEAR(a.mean_rate(), 3.0 / 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(a.next_interarrival(r), 0.1);
  EXPECT_DOUBLE_EQ(a.next_interarrival(r), 0.2);
  EXPECT_DOUBLE_EQ(a.next_interarrival(r), 0.3);
  EXPECT_DOUBLE_EQ(a.next_interarrival(r), 0.1);  // wrapped
  a.reset(r);
  EXPECT_DOUBLE_EQ(a.next_interarrival(r), 0.1);
}

TEST(arrivals, trace_rejects_empty_or_negative) {
  EXPECT_THROW((trace_arrivals{std::vector<double>{}}), std::invalid_argument);
  EXPECT_THROW((trace_arrivals{std::vector<double>{0.1, -0.1}}),
               std::invalid_argument);
}

TEST(packet_size, trimodal_mean_and_support) {
  rng r{6};
  trimodal_size sizes;
  EXPECT_NEAR(sizes.mean_size(), 0.4 * 64 + 0.2 * 576 + 0.4 * 1500, 1e-9);
  double total = 0;
  constexpr int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const auto s = sizes.next_size(r);
    EXPECT_TRUE(s == 64 || s == 576 || s == 1500);
    total += s;
  }
  EXPECT_NEAR(total / n, sizes.mean_size(), 10.0);
}

TEST(packet_size, uniform_bounds) {
  rng r{7};
  uniform_size sizes{100, 200};
  for (int i = 0; i < 10'000; ++i) {
    const auto s = sizes.next_size(r);
    EXPECT_GE(s, 100u);
    EXPECT_LE(s, 200u);
  }
  EXPECT_DOUBLE_EQ(sizes.mean_size(), 150.0);
}

TEST(synthetic_traces, bc_paug89_like_is_bursty_and_calibrated) {
  rng r{8};
  const auto trace = make_bc_paug89_like(20'000, 1000.0, r);
  ASSERT_GT(trace.iats.size(), 1000u);
  EXPECT_EQ(trace.iats.size(), trace.sizes.size());
  const double total = std::accumulate(trace.iats.begin(), trace.iats.end(), 0.0);
  EXPECT_NEAR(static_cast<double>(trace.iats.size()) / total, 1000.0, 1.0);
  // Self-similar-style traffic has SCV well above Poisson's 1.
  const auto stats = dqn::queueing::compute_iat_statistics(trace.iats);
  EXPECT_GT(stats.scv, 1.5);
}

TEST(synthetic_traces, anarchy_like_is_quasi_periodic_with_bursts) {
  rng r{9};
  const auto trace = make_anarchy_like(20'000, 500.0, r);
  ASSERT_EQ(trace.iats.size(), 20'000u);
  const double total = std::accumulate(trace.iats.begin(), trace.iats.end(), 0.0);
  EXPECT_NEAR(static_cast<double>(trace.iats.size()) / total, 500.0, 1.0);
  const auto stats = dqn::queueing::compute_iat_statistics(trace.iats);
  // Bursts create positive lag-1 correlation.
  EXPECT_GT(stats.lag1, 0.05);
}

TEST(packet_stream, merge_preserves_order_and_count) {
  packet_stream a, b;
  for (int i = 0; i < 10; ++i) {
    a.push_back({{.pid = static_cast<std::uint64_t>(i)}, i * 0.3});
    b.push_back({{.pid = static_cast<std::uint64_t>(100 + i)}, 0.1 + i * 0.25});
  }
  const auto merged = merge_streams({a, b});
  EXPECT_EQ(merged.size(), 20u);
  EXPECT_TRUE(is_time_ordered(merged));
}

TEST(packet_stream, merge_of_empty_is_empty) {
  EXPECT_TRUE(merge_streams({}).empty());
  EXPECT_TRUE(merge_streams({packet_stream{}, packet_stream{}}).empty());
}

TEST(traffic_gen, uniform_flows_are_valid) {
  rng r{10};
  const auto flows = make_uniform_flows(16, 3, r);
  ASSERT_EQ(flows.size(), 16u);
  for (const auto& flow : flows) {
    EXPECT_NE(flow.src_host, flow.dst_host);
    EXPECT_GE(flow.dst_host, 0);
    EXPECT_LT(flow.dst_host, 16);
    EXPECT_LT(flow.priority, 3);
    EXPECT_GE(flow.weight, 1);
    EXPECT_LE(flow.weight, 9);
  }
}

TEST(traffic_gen, generators_produce_streams_at_requested_rate) {
  rng r{11};
  auto flows = make_uniform_flows(4, 1, r);
  tg_util_config cfg;
  cfg.model = traffic_model::poisson;
  cfg.per_flow_rate = 2000.0;
  auto generators = make_generators(flows, cfg);
  ASSERT_EQ(generators.size(), 4u);
  std::uint64_t pid = 0;
  rng gen_rng{12};
  const auto stream = generators[0].generate(5.0, gen_rng, pid);
  EXPECT_NEAR(static_cast<double>(stream.size()) / 5.0, 2000.0, 150.0);
  EXPECT_TRUE(is_time_ordered(stream));
  // pids are unique and sequential.
  EXPECT_EQ(pid, stream.size());
}

TEST(traffic_gen, per_host_streams_cover_all_hosts) {
  rng r{13};
  auto flows = make_uniform_flows(6, 2, r);
  tg_util_config cfg;
  cfg.model = traffic_model::onoff;
  cfg.per_flow_rate = 500.0;
  auto generators = make_generators(flows, cfg);
  const auto streams = per_host_streams(generators, 6, 2.0, r);
  ASSERT_EQ(streams.size(), 6u);
  std::set<std::uint64_t> pids;
  for (const auto& stream : streams) {
    EXPECT_TRUE(is_time_ordered(stream));
    for (const auto& ev : stream) EXPECT_TRUE(pids.insert(ev.pkt.pid).second);
  }
  EXPECT_GT(pids.size(), 100u);
}

// Every traffic model must flow through the same generator interface.
class traffic_model_sweep : public ::testing::TestWithParam<traffic_model> {};

TEST_P(traffic_model_sweep, generates_calibrated_streams) {
  rng r{14};
  auto flows = make_uniform_flows(2, 1, r);
  tg_util_config cfg;
  cfg.model = GetParam();
  cfg.per_flow_rate = 1000.0;
  auto generators = make_generators(flows, cfg);
  std::uint64_t pid = 0;
  rng gen_rng{15};
  const auto stream = generators[0].generate(10.0, gen_rng, pid);
  ASSERT_GT(stream.size(), 100u);
  EXPECT_TRUE(is_time_ordered(stream));
  // All models are calibrated to the requested mean rate (loosest for the
  // bursty ones).
  EXPECT_NEAR(static_cast<double>(stream.size()) / 10.0, 1000.0, 400.0);
}

INSTANTIATE_TEST_SUITE_P(all_models, traffic_model_sweep,
                         ::testing::Values(traffic_model::poisson,
                                           traffic_model::onoff,
                                           traffic_model::map,
                                           traffic_model::bc_paug89,
                                           traffic_model::anarchy),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case traffic_model::poisson: return "Poisson";
                             case traffic_model::onoff: return "OnOff";
                             case traffic_model::map: return "MAP";
                             case traffic_model::bc_paug89: return "BCpAug89";
                             case traffic_model::anarchy: return "Anarchy";
                           }
                           return "Unknown";
                         });

}  // namespace
