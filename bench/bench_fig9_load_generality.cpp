// Figure 9: inference accuracy of DeepQueueNet across traffic intensities,
// including load factors never seen in training. The PTM trains on loads in
// [0.1, 0.8] (§5.2); we evaluate single-device sojourn accuracy at loads
// 0.1 .. 0.9 and expect w1 to stay low even at the unseen 0.9.
#include "bench/common.hpp"

#include <cstdio>

using namespace dqn;

int main() {
  std::printf("=== Figure 9: inference accuracy vs traffic intensity ===\n");
  std::printf("(PTM trained on loads 0.1-0.8; 0.9 is unseen)\n\n");

  auto cfg = bench::standard_dutil(8, 12, 1e9);
  auto model = bench::cached_model(cfg);

  util::text_table table{{"load", "w1 (FIFO)", "w1 (WFQ)", "seen in training"}};
  for (const double load : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    double w1_by_sched[2] = {0, 0};
    int idx = 0;
    for (const auto sched :
         {des::scheduler_kind::fifo, des::scheduler_kind::wfq}) {
      util::rng rng{util::derive_seed(4242, static_cast<std::uint64_t>(load * 100) +
                                                (idx + 1) * 1000)};
      core::ptm_dataset eval;
      eval.time_steps = cfg.ptm.time_steps;
      for (int i = 0; i < 6; ++i) {
        const auto sample =
            core::generate_stream_sample(cfg, rng, &sched, &load);
        eval.append(sample.data);
      }
      w1_by_sched[idx++] = core::evaluate_w1(*model, eval);
    }
    table.add_row({util::fmt(load, 1), util::fmt(w1_by_sched[0], 4),
                   util::fmt(w1_by_sched[1], 4), load <= 0.8 ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("expected shape (paper Fig. 9): w1 stays low across the range, "
              "including the unseen 0.9 load.\n");
  return 0;
}
