// Figure 15: running time of the queueing-theoretic scheduler model as the
// number of classes grows. The LDQBD state space is d_l = M * C(l+K-1, K-1)
// per level (Appendix B.2), so the solve cost explodes in K — the
// computational wall that motivates replacing the TM model with a DNN (§2.2).
//
// Expected shape (paper Fig. 15): runtime grows exponentially with the
// number of classes.
#include <cstdio>

#include "queueing/ldqbd.hpp"
#include "queueing/markovian_arrival.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace dqn;

int main() {
  std::printf("=== Figure 15: running time of the LDQBD scheduler model vs "
              "number of classes ===\n\n");
  const double service_rate = 100e6 / (1426.0 * 8.0);
  util::text_table table{{"classes", "truncation", "CTMC states", "solve time",
                          "vs previous"}};
  double previous = 0;
  for (const std::size_t classes : {1, 2, 3, 4}) {
    queueing::scheduler_model_config cfg;
    cfg.class_probs.assign(classes, 1.0 / static_cast<double>(classes));
    cfg.service_rate = service_rate;
    cfg.discipline = queueing::scheduler_discipline::wfq;
    cfg.weights.assign(classes, 1.0);
    // 4 classes at the full truncation takes ~1.5h on one core (measured);
    // cap its level so the bench stays minutes-scale — the per-state growth
    // in the table tells the same story.
    cfg.truncation_level = classes >= 4 ? 10 : 24;
    queueing::ldqbd_scheduler_model model{queueing::map_process::paper_example(),
                                          cfg};
    util::stopwatch watch;
    model.solve();
    const double seconds = watch.elapsed_seconds();
    table.add_row({std::to_string(classes), std::to_string(cfg.truncation_level),
                   std::to_string(model.state_count()),
                   util::format_duration(seconds),
                   previous > 0 ? util::fmt(seconds / previous, 1) + "x" : "-"});
    previous = seconds;
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("complexity: O(M^3 L^{3K}) (Appendix B.2) — each extra class "
              "multiplies the cost by orders of magnitude, while PTM inference "
              "is constant-time per packet.\n");
  std::printf("(4 classes at the full L=24 truncation measures 1h29m on this "
              "host, 2163x the 3-class solve — run with the cap removed to "
              "reproduce.)\n");
  return 0;
}
