// Ablation (DESIGN.md §4): the paper's BLSTM+attention PTM versus the
// windowed-MLP PTM this reproduction uses by default for network-scale runs.
// Both architectures train on identical data and are scored on identical
// exogenous streams; we also measure inference throughput, which is why the
// MLP is the CPU default (the paper runs the attention model on V100s).
#include "bench/common.hpp"

#include <cstdio>
#include <memory>

#include "core/delay_provider.hpp"

using namespace dqn;

int main() {
  std::printf("=== Ablation: PTM architecture (BLSTM+attention vs windowed MLP) ===\n\n");
  const double scale = bench::bench_scale();

  auto base = bench::standard_dutil(4, 12, 1e9);
  base.streams = static_cast<std::size_t>(28 * scale) + 4;
  base.ptm.epochs = static_cast<std::size_t>(8 * scale) + 2;
  base.seed += 0xab1a;

  util::text_table table{{"architecture", "params/layout", "train time",
                          "val w1", "inference us/window"}};

  // Exogenous evaluation set shared by both models.
  core::ptm_dataset exogenous;
  exogenous.time_steps = base.ptm.time_steps;
  {
    util::rng rng{991};
    for (int i = 0; i < 6; ++i)
      exogenous.append(core::generate_stream_sample(base, rng).data);
  }

  for (const auto arch : {core::ptm_arch::mlp, core::ptm_arch::attention}) {
    auto cfg = base;
    cfg.ptm.arch = arch;
    cfg.ptm.lstm_hidden = {16, 8};
    cfg.ptm.key_dim = 8;
    cfg.ptm.value_dim = 8;
    cfg.ptm.attention_out = 16;
    const auto bundle = core::train_device_model(cfg);
    const double w1 = core::evaluate_w1(bundle.model, exogenous);

    // Inference throughput on the exogenous windows, timed through the
    // delay-provider layer the engine itself dispatches through (the
    // non-owning alias keeps bundle.model in place).
    core::ptm_delay_provider provider{std::shared_ptr<const core::ptm_model>{
        &bundle.model, [](const core::ptm_model*) {}}};
    util::stopwatch watch;
    const auto predictions = provider.predict_windows(exogenous.windows);
    const double us_per_window =
        watch.elapsed_seconds() * 1e6 / static_cast<double>(predictions.size());

    const std::string layout =
        arch == core::ptm_arch::mlp
            ? std::to_string(cfg.ptm.time_steps * core::feature_count) + "-" +
                  std::to_string(cfg.ptm.mlp_hidden[0]) + "-" +
                  std::to_string(cfg.ptm.mlp_hidden[1]) + "-1"
            : "BLSTM(16,8)+3 heads";
    table.add_row({core::to_string(arch), layout,
                   util::format_duration(bundle.report.train_seconds),
                   util::fmt(w1, 4), util::fmt(us_per_window, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("reading: at this CPU-scale training budget the two architectures\n"
              "are comparably accurate (either can win on a given draw); the\n"
              "MLP is ~10x cheaper per window, hence the default for\n"
              "whole-network simulation (DESIGN.md §2). Set\n"
              "DQN_PTM_ARCH=attention to run everything with the paper's\n"
              "architecture; at the paper's data/GPU scale its capacity\n"
              "advantage is expected to dominate.\n");
  return 0;
}
