// Table 7: inference execution time with parallelization on FatTree16/64/128.
//
// For each network we run the same workload through (a) the sequential
// packet-level DES, (b) MimicNet (trained once on FatTree16), and (c)
// DeepQueueNet with 1, 2, and 4 engine partitions — the CPU-thread analogue
// of the paper's 1/2/4 GPUs (Figure 11; DESIGN.md §2).
//
// Expected shape (paper): DES wall time explodes with network size while
// DQN's grows mildly and parallelizes near-linearly in partitions; MimicNet
// is fastest on its native fat-trees (pure per-packet model composition, no
// IRSA iterations).
#include "bench/common.hpp"

#include <cstdio>
#include <functional>

#include "baselines/mimicnet.hpp"
#include "core/delay_provider.hpp"
#include "obs/telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

using namespace dqn;

int main() {
  std::printf("=== Table 7: inference execution time with parallelization ===\n\n");
  const double scale = bench::bench_scale();
  const des::tm_config fifo_tm;
  auto ptm = bench::network_model();

  // MimicNet trained once from a FatTree16 reference run.
  baselines::mimicnet_estimator mn;
  {
    auto s = bench::make_scenario_load(topo::make_fattree16(bench::bench_links()),
                                       traffic::traffic_model::poisson, 0.5,
                                       0.05 * scale, 777);
    des::network_config oracle_cfg;
    oracle_cfg.tm = fifo_tm;
    oracle_cfg.record_hops = true;
    des::network oracle{s.topo(), *s.routes, oracle_cfg};
    const auto truth = oracle.run(s.streams, s.horizon);
    mn.train(s.topo(), truth, 80);
  }

  struct scale_case {
    const char* name;
    std::function<topo::topology()> build;
    double load;
    double horizon;
  };
  const scale_case cases[] = {
      {"FatTree16", [] { return topo::make_fattree16(bench::bench_links()); },
       0.5, 0.15 * scale},
      {"FatTree64", [] { return topo::make_fattree64(bench::bench_links()); },
       0.5, 0.06 * scale},
      {"FatTree128", [] { return topo::make_fattree128(bench::bench_links()); },
       0.5, 0.036 * scale},
  };

  // "time" for DeepQueueNet rows is the projected wall time with one
  // execution unit per partition (engine_stats::projected_wall_seconds):
  // partitions are accounted by per-thread CPU time and the per-iteration
  // critical path, which is what a machine with `partitions` free cores (or
  // the paper's GPUs) would observe. This host may have a single core, so
  // raw wall time cannot show parallel speedup directly (DESIGN.md §2).
  util::text_table table{
      {"topology", "method", "#partitions", "packets", "time", "speedup"}};

  for (const auto& sc : cases) {
    const auto s = bench::make_scenario_load(
        sc.build(), traffic::traffic_model::poisson, sc.load, sc.horizon, 1000);
    std::size_t packets = 0;
    for (const auto& stream : s.streams) packets += stream.size();
    const std::string pkts = std::to_string(packets);

    // Sequential DES (hop recording off: pure simulation cost).
    {
      des::network_config oracle_cfg;
      oracle_cfg.tm = fifo_tm;
      oracle_cfg.record_hops = false;
      des::network oracle{s.topo(), *s.routes, oracle_cfg};
      util::stopwatch watch;
      const auto result = oracle.run(s.streams, sc.horizon);
      (void)result;
      table.add_row({sc.name, "DES", "-", pkts,
                     util::format_duration(watch.elapsed_seconds()), "-"});
    }

    // MimicNet.
    {
      util::stopwatch watch;
      const auto result = mn.predict(s.topo(), *s.routes, s.streams, sc.horizon);
      (void)result;
      table.add_row({sc.name, "MimicNet", "1", pkts,
                     util::format_duration(watch.elapsed_seconds()), "-"});
    }

    // DeepQueueNet with 1/2/4 partitions.
    double base_seconds = 0;
    for (const std::size_t partitions : {std::size_t{1}, std::size_t{2},
                                         std::size_t{4}}) {
      core::scheduler_context ctx;
      ctx.bandwidth_bps = bench::bench_link_bps;
      core::engine_config cfg;
      cfg.partitions = partitions;
      // Measure the paper's execution profile: Algorithm 1 re-infers every
      // device each iteration (our skip refinement makes late iterations
      // nearly serial and Amdahl-limits the parallel speedup).
      cfg.irsa_skip_unchanged = false;
      core::dqn_network net{s.topo(), *s.routes, ptm, ctx, cfg};
      const auto result = net.run(s.streams, sc.horizon);
      (void)result;
      const double seconds = net.stats().projected_wall_seconds();
      std::string speedup = "baseline";
      if (partitions == 1) {
        base_seconds = seconds;
      } else {
        speedup = util::fmt(base_seconds / seconds, 2) + "-fold";
      }
      table.add_row({sc.name, "DeepQueueNet", std::to_string(partitions), pkts,
                     util::format_duration(seconds), speedup});
      std::printf("[dqn] %-11s partitions=%zu: %s projected "
                  "(%s measured wall, %zu IRSA iterations)\n",
                  sc.name, partitions, util::format_duration(seconds).c_str(),
                  util::format_duration(net.stats().wall_seconds).c_str(),
                  net.stats().iterations);
    }

    // Tiered delay backend (core/delay_provider.hpp): pure-PTM versus the
    // tiered analytical/PTM policy on the identical scenario and engine
    // configuration. These rows report MEASURED wall time — the tiered win
    // is devices skipping DNN inference entirely, which shows up on any
    // machine regardless of core count.
    {
      auto context = bench::compare_context(s, ptm, fifo_tm,
                                            /*apply_sec=*/true,
                                            /*partitions=*/4);
      const auto measured_wall = [&](des::delay_backend backend,
                                     double* fraction) {
        context.engine.delay.backend = backend;
        const auto net = des::make_estimator("deepqueuenet", context);
        des::run_request request;
        request.host_streams = &s.streams;
        request.horizon = sc.horizon;
        const auto result = net->run(request);
        (void)result;
        const auto& engine = dynamic_cast<const core::dqn_network&>(*net);
        if (fraction != nullptr) {
          const auto* tiered = dynamic_cast<const core::tiered_delay_provider*>(
              &engine.provider());
          *fraction =
              tiered != nullptr ? tiered->stats().analytical_fraction() : 0.0;
        }
        return engine.stats().wall_seconds;
      };
      const double ptm_wall = measured_wall(des::delay_backend::ptm, nullptr);
      double fraction = 0;
      const double tiered_wall =
          measured_wall(des::delay_backend::tiered, &fraction);
      table.add_row({sc.name, "DQN-tiered", "4", pkts,
                     util::format_duration(tiered_wall),
                     util::fmt(ptm_wall / tiered_wall, 2) + "-fold vs ptm"});
      std::printf("[tiered] %-11s measured: ptm %s, tiered %s (%.2fx), "
                  "analytical fraction %.3f\n",
                  sc.name, util::format_duration(ptm_wall).c_str(),
                  util::format_duration(tiered_wall).c_str(),
                  ptm_wall / tiered_wall, fraction);
      if (obs::sink* sink = bench::bench_sink(); sink != nullptr) {
        sink->gauge("table7.tiered_speedup", ptm_wall / tiered_wall);
        sink->gauge("table7.ptm_wall_seconds", ptm_wall);
        sink->gauge("table7.tiered_wall_seconds", tiered_wall);
      }
    }
  }

  // Live-telemetry overhead on the Table-7 workload: the identical
  // FatTree16 run with the telemetry plane off and on (default 250 ms
  // sampler + /metrics endpoint on an ephemeral loopback port, scraped once
  // mid-measurement via the renderer). Best-of-3 walls on both sides; the
  // ENSURE below is a loose in-bench sanity bound — CI's perf-smoke gate
  // holds the tight one.
  {
    const auto s = bench::make_scenario_load(
        topo::make_fattree16(bench::bench_links()),
        traffic::traffic_model::poisson, 0.5, 0.05 * scale, 1000);
    std::size_t packets = 0;
    for (const auto& stream : s.streams) packets += stream.size();
    auto context = bench::compare_context(s, ptm, fifo_tm,
                                          /*apply_sec=*/true,
                                          /*partitions=*/4);
    const auto net = des::make_estimator("deepqueuenet", context);
    des::run_request request;
    request.host_streams = &s.streams;
    request.horizon = s.horizon;
    const auto best_wall = [&](obs::sink* run_sink) {
      request.sink = run_sink;
      double best = 0;
      for (int rep = 0; rep < 3; ++rep) {
        const auto result = net->run(request);
        best = rep == 0 ? result.wall_seconds
                        : std::min(best, result.wall_seconds);
      }
      return best;
    };
    obs::sink off_sink;
    const double off_wall = best_wall(&off_sink);
    obs::sink on_sink;
    const auto telemetry_cfg = obs::telemetry::telemetry_config{}
                                   .with_enabled(true)
                                   .with_metrics_port(0);
    auto* plane = on_sink.start_telemetry(telemetry_cfg);
    const double on_wall = best_wall(&on_sink);
    const std::string exposition = plane->render_metrics();
    DQN_ENSURE(exposition.find("# TYPE engine_deliveries counter") !=
                   std::string::npos,
               "table7: /metrics exposition is missing the engine counters");
    const auto samples = plane->sampler().samples();
    on_sink.stop_telemetry();
    const double overhead = off_wall > 0 ? on_wall / off_wall - 1.0 : 0.0;
    std::printf("[telemetry] FatTree16 best-of-3: off %s, on %s "
                "(overhead %+.2f%%, %llu samples)\n",
                util::format_duration(off_wall).c_str(),
                util::format_duration(on_wall).c_str(), overhead * 100.0,
                static_cast<unsigned long long>(samples));
    DQN_ENSURE(overhead < 0.10,
               "table7: telemetry overhead ", overhead,
               " exceeds the 10% in-bench sanity bound");
    table.add_row({"FatTree16", "DQN+telemetry", "4", std::to_string(packets),
                   util::format_duration(on_wall),
                   util::fmt(overhead * 100.0, 2) + "% overhead"});
    if (obs::sink* sink = bench::bench_sink(); sink != nullptr) {
      sink->gauge("table7.telemetry_overhead_fraction", overhead);
      sink->gauge("table7.telemetry_off_wall_seconds", off_wall);
      sink->gauge("table7.telemetry_on_wall_seconds", on_wall);
    }
  }

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "notes (DQN_BENCH_SCALE=%g):\n"
      " * the reproduced shapes are (a) near-linear DeepQueueNet speedup in\n"
      "   partitions, (b) DQN time roughly flat in network size while DES\n"
      "   grows with it, (c) MimicNet fastest per execution unit on its\n"
      "   native fat-trees;\n"
      " * absolute DES-vs-DQN ordering is inverted relative to the paper:\n"
      "   per-packet DNN inference on one CPU core cannot beat a lean C++\n"
      "   DES kernel — the paper's 100-800x DES deficit comes from GPU\n"
      "   inference throughput (~1000x a core) against a full-stack OMNeT++\n"
      "   model. The partitioned-inference code path is identical\n"
      "   (DESIGN.md §2).\n",
      scale);
  return 0;
}
