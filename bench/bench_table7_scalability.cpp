// Table 7: inference execution time with parallelization on fat-trees.
//
// For each network we run the same workload through (a) the sequential
// packet-level DES, (b) MimicNet (trained once on FatTree16), and (c)
// DeepQueueNet with 1/2/4/8 workers — the CPU-thread analogue of the
// paper's multi-GPU model parallelism (Figure 11; DESIGN.md §2).
//
// DeepQueueNet rows report MEASURED wall-clock time: the sharded engine
// (topology-aware shards + work stealing + double-buffered boundary
// exchange) genuinely executes across cores, so speedup columns are real on
// any machine with free cores. engine_stats::projected_wall_seconds — the
// per-thread-CPU-clock projection the pre-sharded engine reported — survives
// only as a printf diagnostic to sanity-check the measurement (projected ≈
// measured when >= `workers` cores are free; on a 1-core box measured wall
// is flat in workers while the projection still shows the parallel shape).
//
// `--threads N` runs the CI perf-smoke slice instead: best-of-3 measured
// wall on the FatTree16 workload at N workers, emitted as one JSON line
// (with a delivery fingerprint so the gate can assert bit-identical results
// across thread counts). See .github/workflows/ci.yml perf-smoke.
#include "bench/common.hpp"

#include <cstdio>
#include <cstring>
#include <functional>

#include "baselines/mimicnet.hpp"
#include "core/delay_provider.hpp"
#include "obs/telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

using namespace dqn;

namespace {

// Order- and bit-sensitive digest of the delivery records (FNV-1a over pid +
// the raw delivery_time bits): equal fingerprints across thread counts means
// the sharded engine reproduced the exact same deliveries.
std::uint64_t delivery_fingerprint(const des::run_result& result) {
  std::uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (value >> shift) & 0xffu;
      hash *= 1099511628211ull;
    }
  };
  for (const auto& d : result.deliveries) {
    mix(d.pid);
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d.delivery_time, sizeof bits);
    mix(bits);
  }
  return hash;
}

// The CI perf-smoke slice: FatTree16, the paper's execution profile
// (Algorithm 1 re-infers every device each iteration), best-of-3 measured
// wall at `threads` workers. One JSON line on stdout.
int run_threads_smoke(std::size_t threads) {
  const double scale = bench::bench_scale();
  auto ptm = bench::network_model();
  const auto s = bench::make_scenario_load(
      topo::make_fattree16(bench::bench_links()),
      traffic::traffic_model::poisson, 0.5, 0.15 * scale, 1000);
  core::scheduler_context ctx;
  ctx.bandwidth_bps = bench::bench_link_bps;
  core::engine_config cfg;
  cfg.partitions = threads;
  cfg.irsa_skip_unchanged = false;
  core::dqn_network net{s.topo(), *s.routes, ptm, ctx, cfg};
  double best_wall = 0;
  des::run_result result;
  for (int rep = 0; rep < 3; ++rep) {
    result = net.run(s.streams, s.horizon);
    best_wall = rep == 0 ? result.wall_seconds
                         : std::min(best_wall, result.wall_seconds);
  }
  const auto& stats = net.stats();
  std::printf("{\"threads\":%zu,\"wall_seconds\":%.6f,\"deliveries\":%zu,"
              "\"delivery_fingerprint\":\"%016llx\",\"iterations\":%zu,"
              "\"steals\":%llu,\"cross_shard_links\":%zu,"
              "\"shard_imbalance\":%.4f,\"projected_wall_seconds\":%.6f}\n",
              threads, best_wall, result.deliveries.size(),
              static_cast<unsigned long long>(delivery_fingerprint(result)),
              stats.iterations, static_cast<unsigned long long>(stats.steals),
              stats.cross_shard_links, stats.shard_imbalance,
              stats.projected_wall_seconds());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string{argv[i]} == "--threads" && i + 1 < argc) {
      const long threads = std::atol(argv[i + 1]);
      DQN_ENSURE(threads > 0, "bench_table7: --threads must be >= 1");
      return run_threads_smoke(static_cast<std::size_t>(threads));
    }
  }

  std::printf("=== Table 7: inference execution time with parallelization ===\n\n");
  const double scale = bench::bench_scale();
  const des::tm_config fifo_tm;
  auto ptm = bench::network_model();

  // MimicNet trained once from a FatTree16 reference run.
  baselines::mimicnet_estimator mn;
  {
    auto s = bench::make_scenario_load(topo::make_fattree16(bench::bench_links()),
                                       traffic::traffic_model::poisson, 0.5,
                                       0.05 * scale, 777);
    des::network_config oracle_cfg;
    oracle_cfg.tm = fifo_tm;
    oracle_cfg.record_hops = true;
    des::network oracle{s.topo(), *s.routes, oracle_cfg};
    const auto truth = oracle.run(s.streams, s.horizon);
    mn.train(s.topo(), truth, 80);
  }

  struct scale_case {
    const char* name;
    std::function<topo::topology()> build;
    double load;
    double horizon;
  };
  const scale_case cases[] = {
      {"FatTree8", [] { return topo::make_fattree8(bench::bench_links()); },
       0.5, 0.15 * scale},
      {"FatTree16", [] { return topo::make_fattree16(bench::bench_links()); },
       0.5, 0.15 * scale},
      {"FatTree64", [] { return topo::make_fattree64(bench::bench_links()); },
       0.5, 0.06 * scale},
      {"FatTree128", [] { return topo::make_fattree128(bench::bench_links()); },
       0.5, 0.036 * scale},
  };

  // "time" for DeepQueueNet rows is MEASURED wall-clock time of the sharded
  // engine. Speedup columns therefore depend on free cores: near-linear on a
  // many-core box, flat on a loaded or single-core one (the projected
  // diagnostic printed alongside shows what a dedicated `workers`-core
  // machine would observe).
  util::text_table table{
      {"topology", "method", "#workers", "packets", "time", "speedup"}};

  for (const auto& sc : cases) {
    const auto s = bench::make_scenario_load(
        sc.build(), traffic::traffic_model::poisson, sc.load, sc.horizon, 1000);
    std::size_t packets = 0;
    for (const auto& stream : s.streams) packets += stream.size();
    const std::string pkts = std::to_string(packets);
    const bool is_fattree16 = std::string{sc.name} == "FatTree16";

    // Sequential DES (hop recording off: pure simulation cost).
    {
      des::network_config oracle_cfg;
      oracle_cfg.tm = fifo_tm;
      oracle_cfg.record_hops = false;
      des::network oracle{s.topo(), *s.routes, oracle_cfg};
      util::stopwatch watch;
      const auto result = oracle.run(s.streams, sc.horizon);
      (void)result;
      table.add_row({sc.name, "DES", "-", pkts,
                     util::format_duration(watch.elapsed_seconds()), "-"});
    }

    // MimicNet.
    {
      util::stopwatch watch;
      const auto result = mn.predict(s.topo(), *s.routes, s.streams, sc.horizon);
      (void)result;
      table.add_row({sc.name, "MimicNet", "1", pkts,
                     util::format_duration(watch.elapsed_seconds()), "-"});
    }

    // DeepQueueNet with 1/2/4/8 workers: measured wall time.
    double base_seconds = 0;
    std::uint64_t base_fingerprint = 0;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}, std::size_t{8}}) {
      core::scheduler_context ctx;
      ctx.bandwidth_bps = bench::bench_link_bps;
      core::engine_config cfg;
      cfg.partitions = workers;
      // Measure the paper's execution profile: Algorithm 1 re-infers every
      // device each iteration (our skip refinement makes late iterations
      // nearly serial and Amdahl-limits the parallel speedup).
      cfg.irsa_skip_unchanged = false;
      core::dqn_network net{s.topo(), *s.routes, ptm, ctx, cfg};
      const auto result = net.run(s.streams, sc.horizon);
      const double seconds = net.stats().wall_seconds;
      const std::uint64_t fingerprint = delivery_fingerprint(result);
      std::string speedup = "baseline";
      if (workers == 1) {
        base_seconds = seconds;
        base_fingerprint = fingerprint;
      } else {
        speedup = util::fmt(base_seconds / seconds, 2) + "-fold";
        // The determinism contract, enforced in-bench: sharded execution
        // reproduces the single-worker deliveries bit for bit.
        DQN_ENSURE(fingerprint == base_fingerprint,
                   "table7: ", sc.name, " deliveries diverged at ", workers,
                   " workers (fingerprint mismatch)");
      }
      table.add_row({sc.name, "DeepQueueNet", std::to_string(workers), pkts,
                     util::format_duration(seconds), speedup});
      std::printf("[dqn] %-11s workers=%zu: %s measured wall "
                  "(%s projected, %zu IRSA iterations, %llu steals, "
                  "imbalance %.3f)\n",
                  sc.name, workers, util::format_duration(seconds).c_str(),
                  util::format_duration(net.stats().projected_wall_seconds())
                      .c_str(),
                  net.stats().iterations,
                  static_cast<unsigned long long>(net.stats().steals),
                  net.stats().shard_imbalance);
      if (is_fattree16) {
        if (obs::sink* sink = bench::bench_sink(); sink != nullptr) {
          const std::string suffix = "_w" + std::to_string(workers);
          sink->gauge("table7.measured_wall" + suffix, seconds);
          if (workers > 1)
            sink->gauge("table7.measured_speedup" + suffix,
                        base_seconds / seconds);
        }
      }
    }

    // Tiered delay backend (core/delay_provider.hpp): pure-PTM versus the
    // tiered analytical/PTM policy on the identical scenario and engine
    // configuration. These rows report MEASURED wall time — the tiered win
    // is devices skipping DNN inference entirely, which shows up on any
    // machine regardless of core count.
    {
      auto context = bench::compare_context(s, ptm, fifo_tm,
                                            /*apply_sec=*/true,
                                            /*partitions=*/4);
      const auto measured_wall = [&](des::delay_backend backend,
                                     double* fraction) {
        context.engine.delay.backend = backend;
        const auto net = des::make_estimator("deepqueuenet", context);
        des::run_request request;
        request.host_streams = &s.streams;
        request.horizon = sc.horizon;
        const auto result = net->run(request);
        (void)result;
        const auto& engine = dynamic_cast<const core::dqn_network&>(*net);
        if (fraction != nullptr) {
          const auto* tiered = dynamic_cast<const core::tiered_delay_provider*>(
              &engine.provider());
          *fraction =
              tiered != nullptr ? tiered->stats().analytical_fraction() : 0.0;
        }
        return engine.stats().wall_seconds;
      };
      const double ptm_wall = measured_wall(des::delay_backend::ptm, nullptr);
      double fraction = 0;
      const double tiered_wall =
          measured_wall(des::delay_backend::tiered, &fraction);
      table.add_row({sc.name, "DQN-tiered", "4", pkts,
                     util::format_duration(tiered_wall),
                     util::fmt(ptm_wall / tiered_wall, 2) + "-fold vs ptm"});
      std::printf("[tiered] %-11s measured: ptm %s, tiered %s (%.2fx), "
                  "analytical fraction %.3f\n",
                  sc.name, util::format_duration(ptm_wall).c_str(),
                  util::format_duration(tiered_wall).c_str(),
                  ptm_wall / tiered_wall, fraction);
      if (obs::sink* sink = bench::bench_sink(); sink != nullptr) {
        sink->gauge("table7.tiered_speedup", ptm_wall / tiered_wall);
        sink->gauge("table7.ptm_wall_seconds", ptm_wall);
        sink->gauge("table7.tiered_wall_seconds", tiered_wall);
      }
    }
  }

  // Live-telemetry overhead on the Table-7 workload: the identical
  // FatTree16 run with the telemetry plane off and on (default 250 ms
  // sampler + /metrics endpoint on an ephemeral loopback port, scraped once
  // mid-measurement via the renderer). Best-of-3 walls on both sides; the
  // ENSURE below is a loose in-bench sanity bound — CI's perf-smoke gate
  // holds the tight one.
  {
    const auto s = bench::make_scenario_load(
        topo::make_fattree16(bench::bench_links()),
        traffic::traffic_model::poisson, 0.5, 0.05 * scale, 1000);
    std::size_t packets = 0;
    for (const auto& stream : s.streams) packets += stream.size();
    auto context = bench::compare_context(s, ptm, fifo_tm,
                                          /*apply_sec=*/true,
                                          /*partitions=*/4);
    const auto net = des::make_estimator("deepqueuenet", context);
    des::run_request request;
    request.host_streams = &s.streams;
    request.horizon = s.horizon;
    const auto best_wall = [&](obs::sink* run_sink) {
      request.sink = run_sink;
      double best = 0;
      for (int rep = 0; rep < 3; ++rep) {
        const auto result = net->run(request);
        best = rep == 0 ? result.wall_seconds
                        : std::min(best, result.wall_seconds);
      }
      return best;
    };
    obs::sink off_sink;
    const double off_wall = best_wall(&off_sink);
    obs::sink on_sink;
    const auto telemetry_cfg = obs::telemetry::telemetry_config{}
                                   .with_enabled(true)
                                   .with_metrics_port(0);
    auto* plane = on_sink.start_telemetry(telemetry_cfg);
    const double on_wall = best_wall(&on_sink);
    const std::string exposition = plane->render_metrics();
    DQN_ENSURE(exposition.find("# TYPE engine_deliveries counter") !=
                   std::string::npos,
               "table7: /metrics exposition is missing the engine counters");
    const auto samples = plane->sampler().samples();
    on_sink.stop_telemetry();
    const double overhead = off_wall > 0 ? on_wall / off_wall - 1.0 : 0.0;
    std::printf("[telemetry] FatTree16 best-of-3: off %s, on %s "
                "(overhead %+.2f%%, %llu samples)\n",
                util::format_duration(off_wall).c_str(),
                util::format_duration(on_wall).c_str(), overhead * 100.0,
                static_cast<unsigned long long>(samples));
    DQN_ENSURE(overhead < 0.10,
               "table7: telemetry overhead ", overhead,
               " exceeds the 10% in-bench sanity bound");
    table.add_row({"FatTree16", "DQN+telemetry", "4", std::to_string(packets),
                   util::format_duration(on_wall),
                   util::fmt(overhead * 100.0, 2) + "% overhead"});
    if (obs::sink* sink = bench::bench_sink(); sink != nullptr) {
      sink->gauge("table7.telemetry_overhead_fraction", overhead);
      sink->gauge("table7.telemetry_off_wall_seconds", off_wall);
      sink->gauge("table7.telemetry_on_wall_seconds", on_wall);
    }
  }

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "notes (DQN_BENCH_SCALE=%g):\n"
      " * DeepQueueNet rows are measured wall time of the sharded engine\n"
      "   (topology shards + work stealing + double-buffered exchange);\n"
      "   speedup in workers is real and requires free cores to show —\n"
      "   CI's perf-smoke gate holds the 4-worker floor on a 4-vCPU runner;\n"
      " * the reproduced shapes are (a) DeepQueueNet speedup in workers,\n"
      "   (b) DQN time roughly flat in network size while DES grows with\n"
      "   it, (c) MimicNet fastest per execution unit on its native\n"
      "   fat-trees;\n"
      " * absolute DES-vs-DQN ordering is inverted relative to the paper:\n"
      "   per-packet DNN inference on CPU cores cannot beat a lean C++\n"
      "   DES kernel — the paper's 100-800x DES deficit comes from GPU\n"
      "   inference throughput (~1000x a core) against a full-stack OMNeT++\n"
      "   model. The partitioned-inference code path is identical\n"
      "   (DESIGN.md §2).\n",
      scale);
  return 0;
}
