// Extension bench (no paper counterpart; §2.3 notes current EPEs cannot
// support buffer management at all): drop-rate fidelity of DeepQueueNet's
// deterministic drop-tail replay against the DES across buffer sizes, on an
// overloaded bottleneck. Dropped packets have latency +inf (§1), so the
// measured quantity is the drop *rate* and the latency distribution of the
// survivors.
#include "bench/common.hpp"

#include <cstdio>

#include "stats/descriptive.hpp"

using namespace dqn;

namespace {

topo::topology bottleneck_line() {
  topo::topology t;
  const auto s0 = t.add_device("s0");
  const auto s1 = t.add_device("s1");
  const auto s2 = t.add_device("s2");
  t.connect(s0, s1, 1e9, 1e-6);
  t.connect(s1, s2, 1e8, 1e-6);  // the bottleneck
  const auto h0 = t.add_host("h0");
  t.connect(h0, s0, 1e9, 1e-6);
  const auto h2 = t.add_host("h2");
  t.connect(h2, s2, 1e9, 1e-6);
  return t;
}

}  // namespace

int main() {
  std::printf("=== Extension: buffer management (drop-tail) fidelity ===\n");
  std::printf("1.5x overloaded 100 Mbps bottleneck, drop-tail buffers in bytes\n\n");
  auto ptm = bench::network_model();

  const auto topo = bottleneck_line();
  const topo::routing routes{topo};
  const double horizon = 2.0 * bench::bench_scale();

  util::rng rng{2026};
  traffic::packet_stream stream;
  std::uint64_t pid = 0;
  double t = 0;
  for (;;) {
    t += rng.exponential(1.5 * 1e8 / (1000 * 8.0));
    if (t >= horizon) break;
    traffic::packet p;
    p.pid = pid++;
    p.flow_id = 1 + pid % 4;
    p.size_bytes = 1000;
    p.src_host = 0;
    p.dst_host = 1;
    stream.push_back({p, t});
  }
  std::vector<traffic::packet_stream> streams(2);
  streams[0] = stream;

  util::text_table table{{"buffer (bytes)", "DES drop rate", "DQN drop rate",
                          "DES survivor p99 (us)", "DQN survivor p99 (us)"}};
  for (const std::uint64_t buffer_bytes : {8'000, 16'000, 32'000, 64'000}) {
    des::network_config des_cfg;
    des_cfg.tm.buffer_bytes = buffer_bytes;
    des_cfg.tm.buffer_packets = 1 << 20;
    des_cfg.record_hops = false;
    des::network oracle{topo, routes, des_cfg};
    const auto truth = oracle.run(streams, horizon);

    core::scheduler_context ctx;
    ctx.bandwidth_bps = 1e8;
    ctx.buffer_bytes = buffer_bytes;
    core::dqn_network net{topo, routes, ptm, ctx, {}};
    const auto pred = net.run(streams, horizon);

    const auto truth_lat = des::all_latencies(truth);
    const auto pred_lat = des::all_latencies(pred);
    table.add_row(
        {std::to_string(buffer_bytes),
         util::fmt(static_cast<double>(truth.drops) /
                       static_cast<double>(stream.size()),
                   4),
         util::fmt(static_cast<double>(pred.drops) /
                       static_cast<double>(stream.size()),
                   4),
         util::fmt(stats::percentile(truth_lat, 0.99) * 1e6, 1),
         util::fmt(stats::percentile(pred_lat, 0.99) * 1e6, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("expected shape: drop rates match closely (both implement exact "
              "drop-tail over the same arrival series); survivor tail latency "
              "grows with the buffer in both systems.\n");
  return 0;
}
