// Extension bench: the flow-level fluid estimator (§2.2's continuous
// simulator class) against DeepQueueNet and the DES on FatTree16 + Poisson.
//
// The fluid model is instantaneous and needs no training, but it only
// produces steady-state per-path *means*; the paper's criticism — no latency
// distribution, no percentiles — falls out of the comparison: its avgRTT is
// usable, its tail columns simply do not exist.
#include "bench/common.hpp"

#include <cstdio>

#include "baselines/fluid.hpp"
#include "stats/descriptive.hpp"
#include "stats/wasserstein.hpp"

using namespace dqn;

int main() {
  std::printf("=== Extension: flow-level fluid baseline (FatTree16, Poisson) ===\n\n");
  auto ptm = bench::network_model();
  const double horizon = 0.08 * bench::bench_scale();
  const des::tm_config fifo_tm;

  const auto s = bench::make_scenario_load(
      topo::make_fattree16(bench::bench_links()), traffic::traffic_model::poisson,
      0.6, horizon, 314);
  const auto result = bench::run_and_compare(s, ptm, fifo_tm, horizon / 10.0);

  // Per-flow ground truth and the three estimators' mean delays.
  const auto truth_by_flow = des::per_flow_latencies(result.truth);
  const auto pred_by_flow = des::per_flow_latencies(result.prediction);
  const auto fluid = baselines::fluid_estimator::predict_mean_delays(
      s.topo(), *s.routes, s.flows, s.flow_rates, 712.0);

  std::vector<double> truth_means, dqn_means, fluid_means;
  std::vector<double> truth_p99, dqn_p99;
  for (const auto& [flow, latencies] : truth_by_flow) {
    if (latencies.size() < 8) continue;
    const auto it = pred_by_flow.find(flow);
    const auto fl = fluid.find(flow);
    if (it == pred_by_flow.end() || fl == fluid.end()) continue;
    if (!std::isfinite(fl->second)) continue;
    truth_means.push_back(stats::mean(latencies));
    truth_p99.push_back(stats::percentile(latencies, 0.99));
    dqn_means.push_back(stats::mean(it->second));
    dqn_p99.push_back(stats::percentile(it->second, 0.99));
    fluid_means.push_back(fl->second);
  }

  util::text_table table{
      {"estimator", "avgRTT w1", "p99RTT w1", "latency distribution?",
       "training needed?"}};
  table.add_row({"DeepQueueNet",
                 util::fmt(stats::normalized_w1(dqn_means, truth_means), 4),
                 util::fmt(stats::normalized_w1(dqn_p99, truth_p99), 4),
                 "yes (per packet)", "one device model"});
  table.add_row({"Fluid (M/M/1 net)",
                 util::fmt(stats::normalized_w1(fluid_means, truth_means), 4),
                 "n/a (means only)", "no", "none"});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("reading (paper §2.2): the fluid model gets rough means for "
              "free but cannot produce the latency distribution practical "
              "engineering needs; DeepQueueNet provides full packet-level "
              "traces.\n");
  return 0;
}
