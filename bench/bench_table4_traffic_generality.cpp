// Table 4 + Table 8 + Figure 8: generality for traffic generation models.
//
// FatTree16, FIFO (baseline configuration). DeepQueueNet (one pre-trained
// device model, no retraining) is evaluated against the DES ground truth
// under five traffic models: MAP, Poisson, On-Off, and replayed
// BC-pAug89-like / Anarchy-like traces. RouteNet is trained on the MAP
// scenario only (its input is the traffic matrix) and evaluated on MAP /
// Poisson / On-Off.
//
// Expected shape (paper): DQN w1 stays low (~1e-2) across ALL models;
// RouteNet is acceptable on MAP (its training distribution) and fails by
// 1-2 orders of magnitude on Poisson and On-Off. Pearson rho for DQN stays
// near 1 (Table 8).
#include "bench/common.hpp"

#include <cstdio>

#include "baselines/routenet.hpp"
#include "stats/descriptive.hpp"

using namespace dqn;

int main() {
  std::printf("=== Table 4 / Table 8 / Figure 8: traffic-model generality "
              "(FatTree16, FIFO) ===\n\n");
  const double scale = bench::bench_scale();
  const double horizon = 0.08 * scale;
  const double target_load = 0.6;  // max-link utilisation (PTM trained to 0.8)
  const double bucket = horizon / 10.0;

  auto ptm = bench::network_model();
  const des::tm_config fifo_tm;

  util::text_table w1_table{{"system", "traffic", "avgRTT(w1)", "p99RTT(w1)",
                             "avgJitter(w1)", "p99Jitter(w1)"}};
  util::text_table rho_table{{"system", "traffic", "avgRTT rho[CI]",
                              "p99RTT rho[CI]", "avgJitter rho[CI]",
                              "p99Jitter rho[CI]"}};

  const std::pair<traffic::traffic_model, const char*> models[] = {
      {traffic::traffic_model::map, "MAP"},
      {traffic::traffic_model::poisson, "Poisson"},
      {traffic::traffic_model::onoff, "Onoff"},
      {traffic::traffic_model::bc_paug89, "BC-pAug89"},
      {traffic::traffic_model::anarchy, "Anarchy"},
  };

  // --- DeepQueueNet rows ---------------------------------------------------
  std::vector<bench::scenario> scenarios;
  std::vector<des::run_result> truths;
  util::text_table qq{{"quantile", "MAP truth (us)", "MAP DQN (us)",
                       "Poisson truth (us)", "Poisson DQN (us)"}};
  std::vector<std::vector<double>> qq_columns(4);
  for (const auto& [model, name] : models) {
    auto s = bench::make_scenario_load(topo::make_fattree16(bench::bench_links()),
                                       model, target_load, horizon, 42);
    const auto result = bench::run_and_compare(s, ptm, fifo_tm, bucket);
    w1_table.add_row(bench::w1_row("DQN", name, result.comparison));
    rho_table.add_row(bench::rho_row("DQN", name, result.comparison));
    std::printf("[dqn] %-10s done: %zu deliveries, %zu IRSA iterations\n", name,
                result.truth.deliveries.size(), result.engine_stats.iterations);
    // Figure 8 (scatter vs y=x): latency quantile pairs for MAP and Poisson.
    if (model == traffic::traffic_model::map ||
        model == traffic::traffic_model::poisson) {
      const std::size_t base = model == traffic::traffic_model::map ? 0 : 2;
      qq_columns[base] = des::all_latencies(result.truth);
      qq_columns[base + 1] = des::all_latencies(result.prediction);
    }
    truths.push_back(result.truth);
    scenarios.push_back(std::move(s));
  }
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    std::vector<std::string> row{util::fmt(q, 2)};
    for (const auto& column : qq_columns)
      row.push_back(util::fmt(stats::percentile(column, q) * 1e6, 2));
    qq.add_row(std::move(row));
  }
  std::printf("\n--- Figure 8 (latency quantile pairs; a perfect predictor "
              "puts DQN columns on y=x against truth) ---\n%s\n",
              qq.to_string().c_str());

  // --- RouteNet rows ---------------------------------------------------------
  // Trained on MAP scenarios only (multiple seeds & rate multipliers so the
  // readout sees rate variation), then applied to MAP / Poisson / On-Off.
  baselines::routenet_estimator rn;
  {
    std::vector<baselines::routenet_estimator::training_example> examples;
    int run_index = 0;
    for (const double mult : {0.6, 1.0, 1.2}) {
      auto s = bench::make_scenario_load(topo::make_fattree16(bench::bench_links()),
                                         traffic::traffic_model::map,
                                         target_load * mult, horizon,
                                         100 + run_index++);
      des::network_config oracle_cfg;
      oracle_cfg.tm = fifo_tm;
      oracle_cfg.record_hops = false;
      des::network oracle{s.topo(), *s.routes, oracle_cfg};
      const auto truth = oracle.run(s.streams, horizon);
      auto batch = baselines::routenet_estimator::make_examples(
          s.topo(), *s.routes, s.flows, s.flow_rates, 712.0, truth);
      examples.insert(examples.end(), batch.begin(), batch.end());
    }
    rn.train(examples, 600);
    std::printf("[routenet] trained on %zu MAP path examples\n", examples.size());
  }
  for (std::size_t i = 0; i < 3; ++i) {  // MAP, Poisson, Onoff
    const auto& s = scenarios[i];
    const auto predictions =
        rn.predict_flows(s.topo(), *s.routes, s.flows, s.flow_rates, 712.0);
    const auto cmp = baselines::compare_routenet(truths[i], predictions, bucket, 6);
    w1_table.add_row(bench::w1_row("RN", models[i].second, cmp));
    rho_table.add_row(bench::rho_row("RN", models[i].second, cmp));
  }

  std::printf("\n--- Table 4 (normalized w1, path-wise; lower is better) ---\n%s\n",
              w1_table.to_string().c_str());
  std::printf("--- Table 8 (Pearson rho with 95%% CI; closer to 1 is better) ---\n%s\n",
              rho_table.to_string().c_str());
  std::printf(
      "readings:\n"
      " * DQN rows can be ~0 to display precision: under FIFO the sojourn\n"
      "   equals the work-conserving (Lindley) bound the device model carries\n"
      "   as prior knowledge, so prediction is exact regardless of the\n"
      "   arrival process — the strongest possible form of the paper's\n"
      "   traffic-generality claim (the learned part is exercised in the\n"
      "   multi-class Table 6).\n"
      " * RouteNet collapses onto its MAP-trained predictions (its\n"
      "   traffic-matrix input cannot see inter-arrival processes), so its\n"
      "   Poisson/On-Off rows blow up — the paper's Figure 8.\n");
  return 0;
}
